//! Cross-crate integration tests: the whole toolchain from mini-CUDA
//! source through analysis, rewriting, partitioning, enumerators, runtime
//! and simulator.

use mekong_core::prelude::*;

fn f32s(bytes: &[u8]) -> Vec<f32> {
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// A multi-kernel application: init, then iterate a blur, then scale —
/// exercising model records for several kernels, buffer reuse across
/// kernels, and coherence between kernels with different access shapes.
const MULTI_KERNEL: &str = r#"
__global__ void init(int n, float a[n]) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= n) return;
    a[i] = (float)(i % 17);
}

__global__ void blur(int n, float a[n], float b[n]) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= n) return;
    float c = a[i];
    float l = i > 0 ? a[i - 1] : c;
    float r = i < n - 1 ? a[i + 1] : c;
    b[i] = (l + c + r) / 3.0f;
}

__global__ void scale(int n, float alpha, float b[n], float c[n]) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= n) return;
    c[i] = alpha * b[i];
}
"#;

fn run_multi_kernel(gpus: usize, n: usize, blur_iters: usize) -> Vec<f32> {
    let program = compile_source(MULTI_KERNEL).unwrap();
    for k in &program.kernels {
        assert!(
            k.is_partitionable(),
            "kernel {} rejected: {:?}",
            k.original.name,
            k.model.verdict
        );
    }
    let mut rt = MgpuRuntime::new(Machine::new(MachineSpec::kepler_system(gpus), true));
    let grid = Dim3::new1((n as u32).div_ceil(64));
    let block = Dim3::new1(64);
    let a = rt.malloc(n * 4, 4).unwrap();
    let b = rt.malloc(n * 4, 4).unwrap();
    let c = rt.malloc(n * 4, 4).unwrap();
    let n_arg = LaunchArg::Scalar(Value::I64(n as i64));
    rt.launch(
        program.kernel("init").unwrap(),
        grid,
        block,
        &[n_arg, LaunchArg::Buf(a)],
    )
    .unwrap();
    let (mut src, mut dst) = (a, b);
    for _ in 0..blur_iters {
        rt.launch(
            program.kernel("blur").unwrap(),
            grid,
            block,
            &[n_arg, LaunchArg::Buf(src), LaunchArg::Buf(dst)],
        )
        .unwrap();
        std::mem::swap(&mut src, &mut dst);
    }
    rt.launch(
        program.kernel("scale").unwrap(),
        grid,
        block,
        &[
            n_arg,
            LaunchArg::Scalar(Value::F32(10.0)),
            LaunchArg::Buf(src),
            LaunchArg::Buf(c),
        ],
    )
    .unwrap();
    rt.synchronize();
    let mut out = vec![0u8; n * 4];
    rt.memcpy_d2h(c, &mut out).unwrap();
    f32s(&out)
}

#[test]
fn multi_kernel_app_is_device_count_invariant() {
    let n = 1000;
    let iters = 5;
    let reference = run_multi_kernel(1, n, iters);
    for gpus in [2, 3, 4, 7, 8] {
        let got = run_multi_kernel(gpus, n, iters);
        assert_eq!(got, reference, "mismatch with {gpus} GPUs");
    }
}

#[test]
fn rewritten_source_contains_figure4_for_each_launch() {
    let src = r#"
__global__ void k(int n, float a[n]) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= n) return;
    a[i] = 1.0f;
}
int main() {
    k<<<g1, b1>>>(n, a);
    k<<<g2, b2>>>(n, a);
    return 0;
}
"#;
    let program = compile_source(src).unwrap();
    assert_eq!(program.launch_sites.len(), 2);
    assert_eq!(
        program
            .rewritten_host
            .matches("mekongSyncReadBuffers")
            .count(),
        2
    );
    assert_eq!(
        program
            .rewritten_host
            .matches("mekongUpdateTrackers")
            .count(),
        2
    );
}

#[test]
fn model_json_is_the_pass_boundary() {
    let program = compile_source(MULTI_KERNEL).unwrap();
    // The JSON on disk fully reconstructs the model.
    let back = AppModel::from_json(&program.model_json).unwrap();
    assert_eq!(back.kernels.len(), 3);
    for k in &back.kernels {
        assert!(k.verdict.is_partitionable());
    }
    // Enumerators can be rebuilt from the deserialized model.
    for k in &back.kernels {
        let _ = KernelEnumerators::build(k).unwrap();
    }
}

#[test]
fn gpu_count_is_hidden_from_the_application() {
    // §8.4: cudaGetDeviceCount is replaced by a function that returns 1.
    let rt = MgpuRuntime::new(Machine::new(MachineSpec::kepler_system(16), false));
    assert_eq!(rt.visible_device_count(), 1);
    assert_eq!(rt.n_devices(), 16);
}

#[test]
fn partitioned_and_reference_agree_on_2d_kernel() {
    // Column-sum kernel: each x-thread sums a column; checks 2-D arrays
    // with loops and X-axis splits end-to-end.
    let src = r#"
__global__ void colsum(int n, float m[n][n], float s[n]) {
    int col = blockIdx.x * blockDim.x + threadIdx.x;
    if (col >= n) return;
    float acc = 0.0f;
    for (int r = 0; r < n; r++) {
        acc += m[r][col];
    }
    s[col] = acc;
}
"#;
    let program = compile_source(src).unwrap();
    let ck = program.kernel("colsum").unwrap();
    assert!(ck.is_partitionable(), "{:?}", ck.model.verdict);
    let n = 96usize;
    let m_host: Vec<f32> = (0..n * n).map(|i| ((i * 7) % 23) as f32).collect();
    let mut want = vec![0.0f32; n];
    for col in 0..n {
        want[col] = (0..n).map(|r| m_host[r * n + col]).sum();
    }
    for gpus in [1, 4] {
        let mut rt = MgpuRuntime::new(Machine::new(MachineSpec::kepler_system(gpus), true));
        let m = rt.malloc(n * n * 4, 4).unwrap();
        let s = rt.malloc(n * 4, 4).unwrap();
        let mb: Vec<u8> = m_host.iter().flat_map(|v| v.to_le_bytes()).collect();
        rt.memcpy_h2d(m, &mb).unwrap();
        rt.launch(
            ck,
            Dim3::new1((n as u32).div_ceil(32)),
            Dim3::new1(32),
            &[
                LaunchArg::Scalar(Value::I64(n as i64)),
                LaunchArg::Buf(m),
                LaunchArg::Buf(s),
            ],
        )
        .unwrap();
        rt.synchronize();
        let mut out = vec![0u8; n * 4];
        rt.memcpy_d2h(s, &mut out).unwrap();
        assert_eq!(f32s(&out), want, "colsum mismatch on {gpus} GPUs");
    }
}

#[test]
fn unsupported_patterns_fall_back_cleanly() {
    // Indirect write: analysis flags it, multi-GPU launch refuses, the
    // single-device fallback still executes it.
    let src = r#"
__global__ void scatter(int n, float idx[n], float out[n]) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= n) return;
    out[(int)(idx[i])] = 1.0f;
}
"#;
    let program = compile_source(src).unwrap();
    let ck = program.kernel("scatter").unwrap();
    assert!(!ck.is_partitionable());
    let n = 64usize;
    let mut rt = MgpuRuntime::new(Machine::new(MachineSpec::kepler_system(4), true));
    let idx = rt.malloc(n * 4, 4).unwrap();
    let out = rt.malloc(n * 4, 4).unwrap();
    let idx_host: Vec<u8> = (0..n)
        .flat_map(|i| (((i * 3) % n) as f32).to_le_bytes())
        .collect();
    rt.memcpy_h2d(idx, &idx_host).unwrap();
    let args = [
        LaunchArg::Scalar(Value::I64(n as i64)),
        LaunchArg::Buf(idx),
        LaunchArg::Buf(out),
    ];
    let grid = Dim3::new1(1);
    let block = Dim3::new1(64);
    assert!(rt.launch(ck, grid, block, &args).is_err());
    rt.launch_unpartitioned(ck, grid, block, &args, 0).unwrap();
    rt.synchronize();
    let mut host = vec![0u8; n * 4];
    rt.memcpy_d2h(out, &mut host).unwrap();
    // (i*3) mod 64 hits every slot gcd(3,64)=1 -> all ones.
    assert!(f32s(&host).iter().all(|&v| v == 1.0));
}

#[test]
fn alternating_split_axes_stay_coherent() {
    // Transpose twice: the transpose kernel writes B[col][row], so its
    // write map couples the outermost array dim to the grid's X axis and
    // the analysis splits X; a row-scaled kernel in between splits Y.
    // Consecutive kernels with different split axes force nearly all data
    // to cross partitions between launches — the hardest coherence case.
    let src = r#"
__global__ void transpose(int n, float a[n][n], float b[n][n]) {
    int col = blockIdx.x * blockDim.x + threadIdx.x;
    int row = blockIdx.y * blockDim.y + threadIdx.y;
    if (row >= n || col >= n) return;
    b[col][row] = a[row][col];
}

__global__ void rowscale(int n, float a[n][n], float b[n][n]) {
    int col = blockIdx.x * blockDim.x + threadIdx.x;
    int row = blockIdx.y * blockDim.y + threadIdx.y;
    if (row >= n || col >= n) return;
    b[row][col] = a[row][col] * 2.0f;
}
"#;
    let program = compile_source(src).unwrap();
    let tp = program.kernel("transpose").unwrap();
    let rs = program.kernel("rowscale").unwrap();
    assert!(tp.is_partitionable(), "{:?}", tp.model.verdict);
    assert!(rs.is_partitionable(), "{:?}", rs.model.verdict);
    assert_eq!(tp.model.partitioning, SplitAxis::X);
    assert_eq!(rs.model.partitioning, SplitAxis::Y);

    let n = 64usize;
    let a_host: Vec<f32> = (0..n * n).map(|i| i as f32).collect();
    let run = |gpus: usize| -> Vec<f32> {
        let mut rt = MgpuRuntime::new(Machine::new(MachineSpec::kepler_system(gpus), true));
        let grid = Dim3::new2((n as u32).div_ceil(8), (n as u32).div_ceil(8));
        let block = Dim3::new2(8, 8);
        let a = rt.malloc(n * n * 4, 4).unwrap();
        let b = rt.malloc(n * n * 4, 4).unwrap();
        let c = rt.malloc(n * n * 4, 4).unwrap();
        let d = rt.malloc(n * n * 4, 4).unwrap();
        let bytes: Vec<u8> = a_host.iter().flat_map(|v| v.to_le_bytes()).collect();
        rt.memcpy_h2d(a, &bytes).unwrap();
        let n_arg = LaunchArg::Scalar(Value::I64(n as i64));
        // transpose -> rowscale -> transpose: result = 2 * A.
        rt.launch(
            tp,
            grid,
            block,
            &[n_arg, LaunchArg::Buf(a), LaunchArg::Buf(b)],
        )
        .unwrap();
        rt.launch(
            rs,
            grid,
            block,
            &[n_arg, LaunchArg::Buf(b), LaunchArg::Buf(c)],
        )
        .unwrap();
        rt.launch(
            tp,
            grid,
            block,
            &[n_arg, LaunchArg::Buf(c), LaunchArg::Buf(d)],
        )
        .unwrap();
        rt.synchronize();
        let mut out = vec![0u8; n * n * 4];
        rt.memcpy_d2h(d, &mut out).unwrap();
        f32s(&out)
    };
    let want: Vec<f32> = a_host.iter().map(|v| 2.0 * v).collect();
    for gpus in [1, 2, 4, 6] {
        assert_eq!(run(gpus), want, "mismatch with {gpus} GPUs");
    }
}

#[test]
fn source_annotations_rescue_scatter_end_to_end() {
    // §11 extension: the programmer declares the write pattern of an
    // indirect store the analysis cannot model; the kernel then runs
    // partitioned and produces the single-device result. The permutation
    // here is the identity shifted within blocks (i ^ 1), which the
    // declared map over-approximates to the 1:1 block range — accurate at
    // block granularity.
    let src = r#"
// @mekong scatter write out : [bdz, bdy, bdx, gdz, gdy, gdx, n] ->
//   { [boz, boy, box, biz, biy, bix] -> [e] :
//     box <= e and e < box + bdx and 0 <= e and e < n }
__global__ void scatter(int n, float idx[n], float a[n], float out[n]) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= n) return;
    out[(int)(idx[i])] = a[i];
}
"#;
    let program = compile_source(src).unwrap();
    let ck = program.kernel("scatter").unwrap();
    assert!(
        ck.is_partitionable(),
        "annotation should rescue the kernel: {:?}",
        ck.model.verdict
    );

    let n = 256usize;
    let perm: Vec<usize> = (0..n).map(|i| i ^ 1).collect();
    let run = |gpus: usize| -> Vec<f32> {
        let mut rt = MgpuRuntime::new(Machine::new(MachineSpec::kepler_system(gpus), true));
        let idx = rt.malloc(n * 4, 4).unwrap();
        let a = rt.malloc(n * 4, 4).unwrap();
        let out = rt.malloc(n * 4, 4).unwrap();
        let idx_host: Vec<u8> = perm
            .iter()
            .flat_map(|&p| (p as f32).to_le_bytes())
            .collect();
        let a_host: Vec<u8> = (0..n).flat_map(|i| (i as f32).to_le_bytes()).collect();
        rt.memcpy_h2d(idx, &idx_host).unwrap();
        rt.memcpy_h2d(a, &a_host).unwrap();
        rt.launch(
            ck,
            Dim3::new1(4),
            Dim3::new1(64),
            &[
                LaunchArg::Scalar(Value::I64(n as i64)),
                LaunchArg::Buf(idx),
                LaunchArg::Buf(a),
                LaunchArg::Buf(out),
            ],
        )
        .unwrap();
        rt.synchronize();
        let mut host = vec![0u8; n * 4];
        rt.memcpy_d2h(out, &mut host).unwrap();
        f32s(&host)
    };
    let single = run(1);
    for gpus in [2, 4] {
        assert_eq!(run(gpus), single, "mismatch with {gpus} GPUs");
    }
    for i in 0..n {
        assert_eq!(single[perm[i]], i as f32);
    }
}

#[test]
fn three_dimensional_kernel_partitions_correctly() {
    // A 3-D volume update with a z-halo: exercises the z components of
    // the grid dimensions, the zyx tuple ordering, and (depending on the
    // suggested axis) 3-D partition boxes.
    let src = r#"
__global__ void relax3d(int n, float a[n][n][n], float b[n][n][n]) {
    int x = blockIdx.x * blockDim.x + threadIdx.x;
    int y = blockIdx.y * blockDim.y + threadIdx.y;
    int z = blockIdx.z * blockDim.z + threadIdx.z;
    if (x >= n || y >= n || z >= n) return;
    float c = a[z][y][x];
    float zl = z > 0 ? a[z - 1][y][x] : c;
    float zh = z < n - 1 ? a[z + 1][y][x] : c;
    b[z][y][x] = 0.5f * c + 0.25f * zl + 0.25f * zh;
}
"#;
    let program = compile_source(src).unwrap();
    let ck = program.kernel("relax3d").unwrap();
    assert!(ck.is_partitionable(), "{:?}", ck.model.verdict);
    assert_eq!(ck.model.partitioning, SplitAxis::Z);

    let n = 24usize;
    let init: Vec<f32> = (0..n * n * n).map(|i| ((i * 31) % 101) as f32).collect();
    // CPU reference, one step.
    let mut want = init.clone();
    for z in 0..n {
        for y in 0..n {
            for x in 0..n {
                let at = |zz: usize| init[(zz * n + y) * n + x];
                let c = at(z);
                let zl = if z > 0 { at(z - 1) } else { c };
                let zh = if z < n - 1 { at(z + 1) } else { c };
                want[(z * n + y) * n + x] = 0.5 * c + 0.25 * zl + 0.25 * zh;
            }
        }
    }
    let run = |gpus: usize| -> Vec<f32> {
        let mut rt = MgpuRuntime::new(Machine::new(MachineSpec::kepler_system(gpus), true));
        let bytes = n * n * n * 4;
        let a = rt.malloc(bytes, 4).unwrap();
        let b = rt.malloc(bytes, 4).unwrap();
        let init_b: Vec<u8> = init.iter().flat_map(|v| v.to_le_bytes()).collect();
        rt.memcpy_h2d(a, &init_b).unwrap();
        let block = Dim3::new3(8, 4, 2);
        let grid = Dim3::new3(
            (n as u32).div_ceil(8),
            (n as u32).div_ceil(4),
            (n as u32).div_ceil(2),
        );
        rt.launch(
            ck,
            grid,
            block,
            &[
                LaunchArg::Scalar(Value::I64(n as i64)),
                LaunchArg::Buf(a),
                LaunchArg::Buf(b),
            ],
        )
        .unwrap();
        rt.synchronize();
        let mut out = vec![0u8; bytes];
        rt.memcpy_d2h(b, &mut out).unwrap();
        f32s(&out)
    };
    for gpus in [1, 3, 4] {
        let got = run(gpus);
        for i in 0..got.len() {
            assert!(
                (got[i] - want[i]).abs() < 1e-4,
                "voxel {i} with {gpus} GPUs: {} vs {}",
                got[i],
                want[i]
            );
        }
    }
}

#[test]
fn compile_stats_are_populated() {
    let program = compile_source(MULTI_KERNEL).unwrap();
    assert!(program.stats.pass1.as_nanos() > 0);
    assert!(program.stats.pass2.as_nanos() > 0);
    assert!(program.stats.total() > program.stats.pass1);
}
