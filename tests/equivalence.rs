//! Property-based end-to-end test: for randomly generated affine kernels
//! from the supported family, the partitioned multi-GPU execution is
//! bit-identical to the single-device execution — the paper's core
//! correctness claim.

use mekong_core::prelude::*;
use proptest::prelude::*;

/// A randomly parameterized 1-D kernel: reads a window `[i-left, i+right]`
/// (clamped via selects), optional second input, writes `out[i]`.
#[derive(Debug, Clone)]
struct StencilSpec {
    left: i64,
    right: i64,
    scale: f64,
    use_second: bool,
    n: usize,
    gpus: usize,
    block: u32,
}

fn arb_spec() -> impl Strategy<Value = StencilSpec> {
    (
        0i64..=3,
        0i64..=3,
        1u32..=4,
        proptest::bool::ANY,
        64usize..=500,
        2usize..=6,
        (3u32..=7),
    )
        .prop_map(
            |(left, right, scale, use_second, n, gpus, block_pow)| StencilSpec {
                left,
                right,
                scale: scale as f64,
                use_second,
                n,
                gpus,
                block: 1 << block_pow, // 8..=128
            },
        )
}

fn source_for(spec: &StencilSpec) -> String {
    let l = spec.left;
    let r = spec.right;
    let s = spec.scale;
    let second_param = if spec.use_second { ", float w[n]" } else { "" };
    let second_term = if spec.use_second { " + w[i]" } else { "" };
    format!(
        r#"
__global__ void gen(int n, float a[n]{second_param}, float out[n]) {{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= n) return;
    float lo = i >= {l} ? a[i - {l}] : a[i];
    float hi = i < n - {r} ? a[i + {r}] : a[i];
    out[i] = {s:.1}f * (lo + hi){second_term};
}}
"#
    )
}

fn run(spec: &StencilSpec, gpus: usize) -> Vec<u8> {
    let src = source_for(spec);
    let program = compile_source(&src).unwrap();
    let ck = program.kernel("gen").unwrap();
    assert!(
        ck.is_partitionable(),
        "generated kernel rejected: {:?}\n{src}",
        ck.model.verdict
    );
    let n = spec.n;
    let mut rt = MgpuRuntime::new(Machine::new(MachineSpec::kepler_system(gpus), true));
    let grid = Dim3::new1((n as u32).div_ceil(spec.block));
    let block = Dim3::new1(spec.block);
    let a = rt.malloc(n * 4, 4).unwrap();
    let a_host: Vec<u8> = (0..n)
        .flat_map(|i| (((i * 37 + 11) % 101) as f32 * 0.25).to_le_bytes())
        .collect();
    rt.memcpy_h2d(a, &a_host).unwrap();
    let out = rt.malloc(n * 4, 4).unwrap();
    let mut args = vec![LaunchArg::Scalar(Value::I64(n as i64)), LaunchArg::Buf(a)];
    if spec.use_second {
        let w = rt.malloc(n * 4, 4).unwrap();
        let w_host: Vec<u8> = (0..n)
            .flat_map(|i| (((i * 13) % 29) as f32).to_le_bytes())
            .collect();
        rt.memcpy_h2d(w, &w_host).unwrap();
        args.push(LaunchArg::Buf(w));
    }
    args.push(LaunchArg::Buf(out));
    rt.launch(ck, grid, block, &args).unwrap();
    rt.synchronize();
    let mut bytes = vec![0u8; n * 4];
    rt.memcpy_d2h(out, &mut bytes).unwrap();
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Multi-GPU result == single-GPU result, bit for bit.
    #[test]
    fn partitioned_execution_is_bit_identical(spec in arb_spec()) {
        let single = run(&spec, 1);
        let multi = run(&spec, spec.gpus);
        prop_assert_eq!(single, multi);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Iterated ping-pong stays coherent across devices for random
    /// iteration counts and device counts.
    #[test]
    fn iterated_pingpong_is_device_count_invariant(
        n in 100usize..400,
        gpus in 2usize..6,
        iters in 1usize..6,
    ) {
        let src = r#"
__global__ void step(int n, float a[n], float b[n]) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= n) return;
    float c = a[i];
    float l = i > 0 ? a[i - 1] : c;
    float r = i < n - 1 ? a[i + 1] : c;
    b[i] = 0.25f * l + 0.5f * c + 0.25f * r;
}
"#;
        let program = compile_source(src).unwrap();
        let ck = program.kernel("step").unwrap();
        let run_iters = |gpus: usize| -> Vec<u8> {
            let mut rt = MgpuRuntime::new(Machine::new(MachineSpec::kepler_system(gpus), true));
            let grid = Dim3::new1((n as u32).div_ceil(32));
            let block = Dim3::new1(32);
            let a = rt.malloc(n * 4, 4).unwrap();
            let b = rt.malloc(n * 4, 4).unwrap();
            let init: Vec<u8> = (0..n)
                .flat_map(|i| ((i % 13) as f32).to_le_bytes())
                .collect();
            rt.memcpy_h2d(a, &init).unwrap();
            rt.memcpy_h2d(b, &init).unwrap();
            let (mut s, mut d) = (a, b);
            for _ in 0..iters {
                rt.launch(ck, grid, block, &[
                    LaunchArg::Scalar(Value::I64(n as i64)),
                    LaunchArg::Buf(s),
                    LaunchArg::Buf(d),
                ]).unwrap();
                std::mem::swap(&mut s, &mut d);
            }
            rt.synchronize();
            let mut out = vec![0u8; n * 4];
            rt.memcpy_d2h(s, &mut out).unwrap();
            out
        };
        prop_assert_eq!(run_iters(1), run_iters(gpus));
    }
}
