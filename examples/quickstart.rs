//! Quickstart: compile a single-GPU mini-CUDA program and run it on a
//! simulated 4-GPU machine — no user intervention, as the paper promises.
//!
//! ```text
//! cargo run -p mekong-core --example quickstart
//! ```

use mekong_core::prelude::*;

const SOURCE: &str = r#"
__global__ void saxpy(int n, float alpha, float x[n], float y[n]) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= n) return;
    y[i] = alpha * x[i] + y[i];
}

int main() {
    float *x, *y;
    cudaMalloc(&x, n * sizeof(float));
    cudaMalloc(&y, n * sizeof(float));
    cudaMemcpy(x, h_x, n * sizeof(float), cudaMemcpyHostToDevice);
    cudaMemcpy(y, h_y, n * sizeof(float), cudaMemcpyHostToDevice);
    saxpy<<<(n + 255) / 256, 256>>>(n, 2.0f, x, y);
    cudaMemcpy(h_y, y, n * sizeof(float), cudaMemcpyDeviceToHost);
    return 0;
}
"#;

fn main() {
    // 1. The two-pass pipeline: analysis -> rewrite -> partition/codegen.
    let program = compile_source(SOURCE).expect("pipeline");
    let ck = program.kernel("saxpy").expect("kernel record");
    println!("kernel `saxpy`:");
    println!("  verdict:        {:?}", ck.model.verdict);
    println!("  split axis:     {}", ck.model.partitioning);
    println!("  launch sites rewritten: {}", program.launch_sites.len());
    println!();
    println!("--- rewritten host code (excerpt) ---");
    for line in program
        .rewritten_host
        .lines()
        .filter(|l| l.contains("mekong"))
        .take(8)
    {
        println!("{line}");
    }
    println!();

    // 2. Run it on a simulated 4-GPU machine, functionally.
    let gpus = 4;
    let machine = Machine::new(MachineSpec::kepler_system(gpus), true);
    let mut rt = MgpuRuntime::new(machine);
    let n = 10_000usize;
    let x = rt.malloc(n * 4, 4).unwrap();
    let y = rt.malloc(n * 4, 4).unwrap();
    let h_x: Vec<u8> = (0..n).flat_map(|i| (i as f32).to_le_bytes()).collect();
    let h_y: Vec<u8> = (0..n).flat_map(|_| 1.0f32.to_le_bytes()).collect();
    rt.memcpy_h2d(x, &h_x).unwrap();
    rt.memcpy_h2d(y, &h_y).unwrap();
    rt.launch(
        ck,
        Dim3::new1((n as u32).div_ceil(256)),
        Dim3::new1(256),
        &[
            LaunchArg::Scalar(Value::I64(n as i64)),
            LaunchArg::Scalar(Value::F32(2.0)),
            LaunchArg::Buf(x),
            LaunchArg::Buf(y),
        ],
    )
    .unwrap();
    rt.synchronize();
    let mut out = vec![0u8; n * 4];
    rt.memcpy_d2h(y, &mut out).unwrap();
    let v9999 = f32::from_le_bytes(out[4 * 9999..].try_into().unwrap());
    println!("ran saxpy over {n} elements on {gpus} simulated GPUs");
    println!("  y[9999] = {v9999} (expected {})", 2.0 * 9999.0 + 1.0);
    println!("  simulated time: {:.3} ms", rt.elapsed() * 1e3);
    assert_eq!(v9999, 2.0 * 9999.0 + 1.0);
    println!("OK");
}
