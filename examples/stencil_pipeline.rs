//! An end-to-end domain scenario: an iterative 2-D heat stencil (the
//! Hotspot pattern from the paper's evaluation), compiled from mini-CUDA
//! source and executed on 1..8 simulated GPUs — functional verification
//! against a CPU reference plus a mini scaling sweep.
//!
//! ```text
//! cargo run --release -p mekong-core --example stencil_pipeline
//! ```

use mekong_core::prelude::*;

const SOURCE: &str = r#"
__global__ void heat(int n, float inp[n][n], float out[n][n]) {
    int x = blockIdx.x * blockDim.x + threadIdx.x;
    int y = blockIdx.y * blockDim.y + threadIdx.y;
    if (x >= n || y >= n) return;
    float c = inp[y][x];
    float l = x > 0 ? inp[y][x - 1] : c;
    float r = x < n - 1 ? inp[y][x + 1] : c;
    float u = y > 0 ? inp[y - 1][x] : c;
    float d = y < n - 1 ? inp[y + 1][x] : c;
    out[y][x] = 0.2f * (c + l + r + u + d);
}
"#;

fn cpu_reference(n: usize, grid: &[f32], iters: usize) -> Vec<f32> {
    let mut cur = grid.to_vec();
    let mut next = grid.to_vec();
    for _ in 0..iters {
        for y in 0..n {
            for x in 0..n {
                let c = cur[y * n + x];
                let l = if x > 0 { cur[y * n + x - 1] } else { c };
                let r = if x < n - 1 { cur[y * n + x + 1] } else { c };
                let u = if y > 0 { cur[(y - 1) * n + x] } else { c };
                let d = if y < n - 1 { cur[(y + 1) * n + x] } else { c };
                next[y * n + x] = 0.2 * (c + l + r + u + d);
            }
        }
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}

fn main() {
    let program = compile_source(SOURCE).expect("pipeline");
    let ck = program.kernel("heat").unwrap();
    println!(
        "heat kernel: verdict {:?}, split axis {}",
        ck.model.verdict, ck.model.partitioning
    );

    let n = 256usize;
    let iters = 10;
    let block = Dim3::new2(32, 4);
    let grid = Dim3::new2((n as u32).div_ceil(32), (n as u32).div_ceil(4));
    let init: Vec<f32> = (0..n * n)
        .map(|i| if i % 977 == 0 { 100.0 } else { 0.0 })
        .collect();
    let init_bytes: Vec<u8> = init.iter().flat_map(|v| v.to_le_bytes()).collect();
    let want = cpu_reference(n, &init, iters);

    // Functional runs on 1..8 devices, plus a timing sweep.
    println!(
        "\n{:>5} {:>12} {:>10} {:>10}",
        "GPUs", "sim time", "speedup", "verified"
    );
    let mut t1 = 0.0f64;
    for gpus in [1usize, 2, 4, 8] {
        let mut rt = MgpuRuntime::new(Machine::new(MachineSpec::kepler_system(gpus), true));
        let a = rt.malloc(n * n * 4, 4).unwrap();
        let b = rt.malloc(n * n * 4, 4).unwrap();
        rt.memcpy_h2d(a, &init_bytes).unwrap();
        rt.memcpy_h2d(b, &init_bytes).unwrap();
        let (mut src, mut dst) = (a, b);
        for _ in 0..iters {
            rt.launch(
                ck,
                grid,
                block,
                &[
                    LaunchArg::Scalar(Value::I64(n as i64)),
                    LaunchArg::Buf(src),
                    LaunchArg::Buf(dst),
                ],
            )
            .unwrap();
            std::mem::swap(&mut src, &mut dst);
        }
        rt.synchronize();
        let mut out = vec![0u8; n * n * 4];
        rt.memcpy_d2h(src, &mut out).unwrap();
        let got: Vec<f32> = out
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let ok = got
            .iter()
            .zip(&want)
            .all(|(g, w)| (g - w).abs() <= 1e-4 * w.abs().max(1.0));
        let t = rt.elapsed();
        if gpus == 1 {
            t1 = t;
        }
        println!(
            "{gpus:>5} {:>9.3} ms {:>9.2}x {:>10}",
            t * 1e3,
            t1 / t,
            if ok { "yes" } else { "NO" }
        );
        assert!(ok, "functional mismatch on {gpus} GPUs");
    }
    println!("\nall device counts produced the CPU-reference result bit-for-bit (f32)");
    println!(
        "(at this miniature size the per-iteration halo exchanges dwarf the\n\
         compute, so multi-GPU is slower — exactly the overhead behavior the\n\
         paper analyzes; run `cargo run -p mekong-bench --bin fig6` for the\n\
         paper-scale speedups)"
    );
}
