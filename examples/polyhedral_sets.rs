//! Figure 1 of the paper, reproduced with the polyhedral library: the set
//! S1, its image S2 under the translation M, and the union — plus the
//! isl-style scan code the enumerator generates for them (Figures 3/5's
//! row scanning).
//!
//! ```text
//! cargo run -p mekong-core --example polyhedral_sets
//! ```

use mekong_poly::{Enumerator, Map, Set};

fn render(set: &Set, label: &str) {
    println!("{label} = {set}");
    let pts = set.points_sorted(&[]);
    // Draw the grid (y down, x right) like Figure 1.
    let max = 8i64;
    for y in (0..max).rev() {
        let mut line = String::from("    ");
        for x in 0..max {
            line.push(if pts.contains(&vec![y, x]) { '#' } else { '.' });
            line.push(' ');
        }
        println!("{line}");
    }
    println!("    |S| = {} points\n", pts.len());
}

fn main() {
    // Equation (1): S1 = { [y, x] : 0 <= y <= x and 0 <= x <= 4 }
    let s1 = Set::parse("{ [y, x] : 0 <= y and y <= x and 0 <= x and x <= 4 }").unwrap();
    render(&s1, "S1");

    // Equation (2): M = { [y, x] -> [y+1, x+3] }
    let m = Map::parse("{ [y, x] -> [y1, x1] : y1 = y + 1 and x1 = x + 3 }").unwrap();
    let s2 = m.image(&s1).unwrap();
    render(&s2, "S2 = M(S1)");

    // Equation (4): U = S1 ∪ S2
    let u = s1.union(&s2).unwrap();
    render(&u, "U = S1 ∪ S2");

    // §6: the generated row scan for S1 (what isl's AST generation would
    // emit as C, here interpreted at runtime).
    let e = Enumerator::build(&s1).unwrap();
    println!("generated scan for S1 (pseudo-C):");
    print!("{}", e.to_pseudo_c(&["y".into(), "x".into()], &[]));
    println!("\nrow ranges of S1 (first/last element per row, §6.1):");
    for r in e.rows_merged(&[]) {
        println!("    row {:?}: columns {}..={}", r.prefix, r.lo, r.hi);
    }
}
