//! The source-to-source host transformation of §5, on its own: feed in a
//! CUDA host program, get back the multi-GPU version with the Figure 4
//! launch-replacement sequence.
//!
//! ```text
//! cargo run -p mekong-core --example rewrite_host_code
//! ```

use mekong_core::prelude::*;

const SOURCE: &str = r#"
__global__ void scale(int n, float a[n], float b[n]) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= n) return;
    b[i] = 2.0f * a[i];
}

int main() {
    int n = 1 << 20;
    float *a, *b;
    cudaMalloc(&a, n * sizeof(float));
    cudaMalloc(&b, n * sizeof(float));
    cudaMemcpy(a, host_a, n * sizeof(float), cudaMemcpyHostToDevice);
    scale<<<(n + 127) / 128, 128>>>(n, a, b);
    cudaDeviceSynchronize();
    cudaMemcpy(host_b, b, n * sizeof(float), cudaMemcpyDeviceToHost);
    cudaFree(a);
    cudaFree(b);
    return 0;
}
"#;

fn main() {
    let program = parse_program(SOURCE).expect("parse");
    println!(
        "found {} kernel(s); host code below is fed to the rewriter\n",
        program.kernels.len()
    );
    let rewritten = rewrite_host(&program.host_source).expect("rewrite");
    println!("=== rewritten host code ===");
    println!("{}", rewritten.source);
    println!("=== launch sites ===");
    for l in &rewritten.launches {
        println!(
            "line {}: {}<<<{}, {}>>>({})",
            l.line,
            l.kernel,
            l.grid,
            l.block,
            l.args.join(", ")
        );
    }
}
