//! Parallel functional execution of a kernel over its grid with
//! CUDA-faithful cross-block isolation.
//!
//! Every thread block runs against a *shadow memory*: loads read the
//! pre-launch device memory overlaid with the block's own prior writes
//! (read-your-writes within the block); writes go to a private overlay.
//! After all blocks finish, overlays are applied to the device memory.
//! This is exactly the visibility CUDA guarantees between thread blocks —
//! "reliable communication is only possible within a thread block" (§2.1)
//! — made deterministic.

use mekong_kernel::interp::{ExecMode, KernelArg};
use mekong_kernel::{execute_block, Dim3, ExecStats, Kernel, MemAccess, ScalarTy, Value};
use rayon::prelude::*;
use std::collections::HashMap;

/// Byte-addressable multi-buffer memory (device memory).
#[derive(Debug, Default)]
pub struct BufStore {
    buffers: Vec<Vec<u8>>,
}

impl BufStore {
    pub fn new() -> BufStore {
        BufStore::default()
    }

    /// Allocate `bytes` zeroed bytes; returns a handle.
    pub fn alloc(&mut self, bytes: usize) -> usize {
        self.buffers.push(vec![0u8; bytes]);
        self.buffers.len() - 1
    }

    pub fn len_of(&self, handle: usize) -> Option<usize> {
        self.buffers.get(handle).map(|b| b.len())
    }

    pub fn bytes(&self, handle: usize) -> &[u8] {
        &self.buffers[handle]
    }

    pub fn bytes_mut(&mut self, handle: usize) -> &mut [u8] {
        &mut self.buffers[handle]
    }
}

impl MemAccess for BufStore {
    fn load(&self, array: usize, offset: usize, ty: ScalarTy) -> Value {
        let sz = ty.size_bytes();
        let start = offset * sz;
        Value::from_le_bytes(ty, &self.buffers[array][start..start + sz])
    }

    fn store(&mut self, array: usize, offset: usize, value: Value) {
        let sz = value.ty().size_bytes();
        let start = offset * sz;
        value.to_le_bytes(&mut self.buffers[array][start..start + sz]);
    }
}

/// A block-private overlay over an immutable base memory.
struct ShadowMem<'a> {
    base: &'a BufStore,
    writes: HashMap<(usize, usize), Value>,
    /// When set, every load is logged `(array, offset)` — the oracle
    /// side of the may-read differential tests. `MemAccess::load` takes
    /// `&self`, hence the cell; blocks never share a `ShadowMem`.
    reads: Option<std::cell::RefCell<Vec<(usize, usize)>>>,
}

impl MemAccess for ShadowMem<'_> {
    fn load(&self, array: usize, offset: usize, ty: ScalarTy) -> Value {
        if let Some(log) = &self.reads {
            log.borrow_mut().push((array, offset));
        }
        if let Some(v) = self.writes.get(&(array, offset)) {
            return *v;
        }
        self.base.load(array, offset, ty)
    }

    fn store(&mut self, array: usize, offset: usize, value: Value) {
        self.writes.insert((array, offset), value);
    }
}

/// Execute the whole grid functionally, blocks in parallel, and apply the
/// write overlays. Returns aggregate execution statistics.
pub fn run_grid_parallel(
    kernel: &Kernel,
    args: &[KernelArg],
    grid_dim: Dim3,
    block_dim: Dim3,
    mem: &mut BufStore,
) -> mekong_kernel::Result<ExecStats> {
    run_grid_recording(kernel, args, grid_dim, block_dim, mem).map(|(s, _)| s)
}

/// Like [`run_grid_parallel`], but additionally returns the **observed
/// write set**: for every buffer, the sorted, merged element ranges the
/// launch actually wrote. This is the instrumentation path the paper's
/// conclusion proposes for kernels whose write patterns cannot be modeled
/// statically (§11: "using instrumentation to collect write patterns").
/// Observed written byte ranges, keyed by buffer argument index.
pub type ObservedWrites = HashMap<usize, Vec<(u64, u64)>>;

/// Observed read element ranges, keyed by buffer argument index — the
/// dynamic ground truth that every static may-read box must contain.
pub type ObservedReads = HashMap<usize, Vec<(u64, u64)>>;

/// One block's functional result plus its shadow access logs.
type BlockRecording = mekong_kernel::Result<(
    ExecStats,
    HashMap<(usize, usize), Value>,
    Vec<(usize, usize)>,
)>;

pub fn run_grid_recording(
    kernel: &Kernel,
    args: &[KernelArg],
    grid_dim: Dim3,
    block_dim: Dim3,
    mem: &mut BufStore,
) -> mekong_kernel::Result<(ExecStats, ObservedWrites)> {
    run_grid_recording_rw(kernel, args, grid_dim, block_dim, mem, false).map(|(s, w, _)| (s, w))
}

/// Like [`run_grid_recording`], but when `record_reads` is set it also
/// returns the **observed read set**: for every buffer, the sorted,
/// merged element ranges any thread loaded. This is the shadow-memory
/// oracle the interval abstract interpreter is differentially tested
/// against — every dynamic read must land inside the static may-read
/// box.
pub fn run_grid_recording_rw(
    kernel: &Kernel,
    args: &[KernelArg],
    grid_dim: Dim3,
    block_dim: Dim3,
    mem: &mut BufStore,
    record_reads: bool,
) -> mekong_kernel::Result<(ExecStats, ObservedWrites, ObservedReads)> {
    let blocks: Vec<Dim3> = (0..grid_dim.z)
        .flat_map(|z| {
            (0..grid_dim.y).flat_map(move |y| (0..grid_dim.x).map(move |x| Dim3::new3(x, y, z)))
        })
        .collect();

    let results: Vec<BlockRecording> = blocks
        .par_iter()
        .map(|&block_idx| {
            let mut shadow = ShadowMem {
                base: mem,
                writes: HashMap::new(),
                reads: record_reads.then(|| std::cell::RefCell::new(Vec::new())),
            };
            let stats = execute_block(
                kernel,
                args,
                block_idx,
                block_dim,
                grid_dim,
                &mut shadow,
                ExecMode::Functional,
            )?;
            let reads = shadow.reads.map(|c| c.into_inner()).unwrap_or_default();
            Ok((stats, shadow.writes, reads))
        })
        .collect();

    let mut total = ExecStats::default();
    let mut observed: ObservedWrites = HashMap::new();
    let mut observed_reads: ObservedReads = HashMap::new();
    for r in results {
        let (stats, writes, reads) = r?;
        total.add(&stats);
        for ((array, offset), v) in writes {
            observed
                .entry(array)
                .or_default()
                .push((offset as u64, offset as u64 + 1));
            mem.store(array, offset, v);
        }
        for (array, offset) in reads {
            observed_reads
                .entry(array)
                .or_default()
                .push((offset as u64, offset as u64 + 1));
        }
    }
    // Merge per-buffer ranges.
    for ranges in observed.values_mut().chain(observed_reads.values_mut()) {
        ranges.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(ranges.len());
        for &(s, e) in ranges.iter() {
            if let Some(last) = merged.last_mut() {
                if s <= last.1 {
                    last.1 = last.1.max(e);
                    continue;
                }
            }
            merged.push((s, e));
        }
        *ranges = merged;
    }
    Ok((total, observed, observed_reads))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mekong_kernel::builder::*;
    use mekong_kernel::{ExecMode, Kernel};

    fn fill_f32(mem: &mut BufStore, handle: usize, vals: &[f32]) {
        for (i, v) in vals.iter().enumerate() {
            mem.store(handle, i, Value::F32(*v));
        }
    }

    fn read_f32(mem: &BufStore, handle: usize, n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| match mem.load(handle, i, ScalarTy::F32) {
                Value::F32(v) => v,
                _ => unreachable!(),
            })
            .collect()
    }

    /// In-place-looking stencil with separate in/out buffers: blocks must
    /// see the pre-launch input even while others write output.
    #[test]
    fn parallel_blocks_match_sequential() {
        let k = Kernel {
            name: "blur".into(),
            params: vec![
                scalar("n"),
                array_f32("input", &[ext("n")]),
                array_f32("output", &[ext("n")]),
            ],
            body: vec![
                let_("i", global_x()),
                guard_return(v("i").lt(i(1)).or(v("i").ge(v("n") - i(1)))),
                store(
                    "output",
                    vec![v("i")],
                    (load("input", vec![v("i") - i(1)])
                        + load("input", vec![v("i")])
                        + load("input", vec![v("i") + i(1)]))
                        / f(3.0),
                ),
            ],
        };
        let n = 4096usize;
        let grid = Dim3::new1(32);
        let block = Dim3::new1(128);
        let input: Vec<f32> = (0..n).map(|i| (i % 97) as f32).collect();

        // Sequential reference.
        let mut seq = BufStore::new();
        let a = seq.alloc(n * 4);
        let b = seq.alloc(n * 4);
        fill_f32(&mut seq, a, &input);
        let args = [
            KernelArg::Scalar(Value::I64(n as i64)),
            KernelArg::Array(a),
            KernelArg::Array(b),
        ];
        mekong_kernel::execute_grid(&k, &args, grid, block, &mut seq, ExecMode::Functional)
            .unwrap();
        let want = read_f32(&seq, b, n);

        // Parallel shadow execution.
        let mut par = BufStore::new();
        let a2 = par.alloc(n * 4);
        let b2 = par.alloc(n * 4);
        fill_f32(&mut par, a2, &input);
        let args2 = [
            KernelArg::Scalar(Value::I64(n as i64)),
            KernelArg::Array(a2),
            KernelArg::Array(b2),
        ];
        let stats = run_grid_parallel(&k, &args2, grid, block, &mut par).unwrap();
        let got = read_f32(&par, b2, n);
        assert_eq!(got, want);
        assert_eq!(stats.stores, (n - 2) as u64);
    }

    #[test]
    fn read_your_writes_within_block() {
        // Each thread writes then reads back its own element.
        let k = Kernel {
            name: "rw".into(),
            params: vec![scalar("n"), array_f32("buf", &[ext("n")])],
            body: vec![
                let_("i", global_x()),
                guard_return(v("i").ge(v("n"))),
                store("buf", vec![v("i")], f(7.0)),
                store("buf", vec![v("i")], load("buf", vec![v("i")]) + f(1.0)),
            ],
        };
        let n = 256usize;
        let mut mem = BufStore::new();
        let b = mem.alloc(n * 4);
        let args = [KernelArg::Scalar(Value::I64(n as i64)), KernelArg::Array(b)];
        run_grid_parallel(&k, &args, Dim3::new1(4), Dim3::new1(64), &mut mem).unwrap();
        assert!(read_f32(&mem, b, n).iter().all(|&v| v == 8.0));
    }

    #[test]
    fn blocks_do_not_see_each_others_writes() {
        // Each thread reads the slot written by a thread one whole block
        // earlier (blockDim = 64, so i-64 always lives in another block) —
        // it must observe the pre-launch value (0), not the concurrent
        // write, no matter how blocks are scheduled.
        let k = Kernel {
            name: "peek".into(),
            params: vec![
                scalar("n"),
                array_f32("a", &[ext("n")]),
                array_f32("seen", &[ext("n")]),
            ],
            body: vec![
                let_("i", global_x()),
                guard_return(v("i").ge(v("n"))),
                if_(
                    v("i").ge(i(64)),
                    vec![store("seen", vec![v("i")], load("a", vec![v("i") - i(64)]))],
                    vec![],
                ),
                store("a", vec![v("i")], f(5.0)),
            ],
        };
        let n = 512usize;
        let mut mem = BufStore::new();
        let a = mem.alloc(n * 4);
        let seen = mem.alloc(n * 4);
        let args = [
            KernelArg::Scalar(Value::I64(n as i64)),
            KernelArg::Array(a),
            KernelArg::Array(seen),
        ];
        run_grid_parallel(&k, &args, Dim3::new1(8), Dim3::new1(64), &mut mem).unwrap();
        // All "seen" values are the pre-launch zeros: deterministic
        // regardless of block scheduling.
        assert!(read_f32(&mem, seen, n).iter().all(|&v| v == 0.0));
        assert!(read_f32(&mem, a, n).iter().all(|&v| v == 5.0));
    }
}
