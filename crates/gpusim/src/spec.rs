//! Machine specifications and calibration constants.

use serde::{Deserialize, Serialize};

/// What kind of executor sits behind a device slot. Partitioning is
/// class-agnostic — a "device" is any unit that owns memory and runs a
/// grid range — but copy pricing and roofline parameters differ per
/// class (a host socket has no PCIe hop to host memory).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceClass {
    /// A simulated GPU die behind the PCIe/NVLink interconnect.
    #[default]
    SimGpu,
    /// A host CPU socket: kernels run on host threads against host
    /// memory; "transfers" to/from the host are memcpys.
    HostCpu,
}

/// Performance characteristics of one device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceSpec {
    pub name: String,
    /// Executor class (default `SimGpu` — specs serialized before
    /// device classes existed describe GPU machines).
    #[serde(default)]
    pub class: DeviceClass,
    /// Peak single-precision throughput, FLOP/s.
    pub flops: f64,
    /// Integer/address ALU throughput, op/s.
    pub int_ops: f64,
    /// Device memory bandwidth, bytes/s.
    pub mem_bw: f64,
    /// Fixed kernel launch overhead, seconds (driver + dispatch; for a
    /// `HostCpu` device, thread-pool wakeup).
    pub launch_overhead: f64,
}

/// Characteristics of the inter-device interconnect.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Effective aggregate peer-copy bandwidth, bytes/s.
    pub bandwidth: f64,
    /// Per-transfer setup latency, seconds.
    pub latency: f64,
    /// Peer copies staged through host memory (true for the PCIe-tree K80
    /// system): all peer transfers serialize on the single host staging
    /// engine instead of overlapping pairwise.
    pub host_staged: bool,
}

/// The whole machine: devices behind one interconnect. Homogeneous by
/// default (`device` describes every device); heterogeneous systems
/// override individual devices via [`MachineSpec::with_device_override`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MachineSpec {
    pub n_devices: usize,
    pub device: DeviceSpec,
    /// Per-device replacements for `device`, as `(index, spec)` pairs.
    /// Empty for homogeneous machines (the default; serde-compatible
    /// with specs serialized before heterogeneity existed).
    #[serde(default)]
    pub device_overrides: Vec<(usize, DeviceSpec)>,
    pub link: LinkSpec,
    /// Host↔device link bandwidth, bytes/s (PCIe x16 per root port).
    pub h2d_bandwidth: f64,
    /// Host↔device latency, seconds.
    pub h2d_latency: f64,
    /// Host-side cost charged per enumerated element range (tracker
    /// query plus memcpy issue), seconds. Used by the runtime to model
    /// the "Patterns" overhead of Figure 7/8.
    pub host_per_range: f64,
    /// Host-side cost per tracker segment update, seconds.
    pub host_per_segment: f64,
    /// Host-side cost to orchestrate one partitioned kernel launch
    /// (argument marshalling, enumerator setup), seconds.
    pub host_per_launch: f64,
    /// Host-side cost to replay a captured launch plan (one cache lookup
    /// plus iterating pre-resolved commands), seconds. Charged *instead
    /// of* the per-range/per-segment pattern costs on a plan-cache hit —
    /// the CUDA-Graphs-style amortization of the §5 launch rewrite.
    pub host_per_replay: f64,
    /// Host memcpy bandwidth, bytes/s: prices host↔host "copies" to and
    /// between `HostCpu` devices, which never cross PCIe. 0 (e.g. in a
    /// spec built before device classes existed) falls back to
    /// [`MachineSpec::DEFAULT_HOST_COPY_BANDWIDTH`].
    #[serde(default)]
    pub host_copy_bandwidth: f64,
    /// Host memcpy setup latency, seconds. 0 falls back to
    /// [`MachineSpec::DEFAULT_HOST_COPY_LATENCY`].
    #[serde(default)]
    pub host_copy_latency: f64,
}

impl MachineSpec {
    /// Fallback host memcpy bandwidth (dual-channel DDR4-class) when a
    /// spec predates the field.
    pub const DEFAULT_HOST_COPY_BANDWIDTH: f64 = 20.0e9;
    /// Fallback host memcpy setup latency.
    pub const DEFAULT_HOST_COPY_LATENCY: f64 = 0.3e-6;

    /// The spec of device `d`: the override when one exists, else the
    /// shared `device` spec.
    pub fn device_spec(&self, d: usize) -> &DeviceSpec {
        self.device_overrides
            .iter()
            .find(|(i, _)| *i == d)
            .map(|(_, s)| s)
            .unwrap_or(&self.device)
    }

    /// Executor class of device `d`.
    pub fn device_class(&self, d: usize) -> DeviceClass {
        self.device_spec(d).class
    }

    /// Does any device slot run on host cores? Pricing paths use this to
    /// keep pure-GPU machines on the exact legacy cost expressions.
    pub fn has_host_cpu(&self) -> bool {
        self.device.class == DeviceClass::HostCpu
            || self
                .device_overrides
                .iter()
                .any(|(_, s)| s.class == DeviceClass::HostCpu)
    }

    /// Host memcpy bandwidth with the pre-class-era fallback.
    pub fn host_copy_bw(&self) -> f64 {
        if self.host_copy_bandwidth > 0.0 {
            self.host_copy_bandwidth
        } else {
            Self::DEFAULT_HOST_COPY_BANDWIDTH
        }
    }

    /// Host memcpy latency with the pre-class-era fallback.
    pub fn host_copy_lat(&self) -> f64 {
        if self.host_copy_latency > 0.0 {
            self.host_copy_latency
        } else {
            Self::DEFAULT_HOST_COPY_LATENCY
        }
    }

    /// `(latency, bandwidth, staged)` pricing one peer copy from device
    /// `a` to device `b`, by class pair:
    ///
    /// * GPU↔GPU — the interconnect [`MachineSpec::link`], staged when
    ///   `link.host_staged` (bit-exact with the pre-class model);
    /// * CPU↔CPU — a host memcpy: no PCIe hop, never engages the
    ///   staging engine;
    /// * mixed — one PCIe crossing at H2D constants (the bytes end in,
    ///   or start from, host memory — no second hop, no staging bounce).
    pub fn pair_copy_params(&self, a: usize, b: usize) -> (f64, f64, bool) {
        use DeviceClass::*;
        match (self.device_class(a), self.device_class(b)) {
            (SimGpu, SimGpu) => (
                self.link.latency,
                self.link.bandwidth,
                self.link.host_staged,
            ),
            (HostCpu, HostCpu) => (self.host_copy_lat(), self.host_copy_bw(), false),
            _ => (self.h2d_latency, self.h2d_bandwidth, false),
        }
    }

    /// `(latency, bandwidth)` of a host↔device transfer involving device
    /// `d`: PCIe constants for a GPU, a memcpy for a CPU socket.
    pub fn host_link_params(&self, d: usize) -> (f64, f64) {
        match self.device_class(d) {
            DeviceClass::SimGpu => (self.h2d_latency, self.h2d_bandwidth),
            DeviceClass::HostCpu => (self.host_copy_lat(), self.host_copy_bw()),
        }
    }

    /// Is every device identical?
    pub fn is_homogeneous(&self) -> bool {
        self.device_overrides.is_empty()
    }

    /// Peer-link proximity rank between two devices, used to pick the
    /// *source* of a copy when several replica holders are equally valid:
    /// 0 for the device itself, 1 for its board partner (K80-style
    /// dual-GPU boards pair devices `2k`/`2k+1`), 2 for everything else.
    /// The simulator charges the same uniform [`MachineSpec::link`]
    /// cost regardless of the pair; the tuner's perimeter cost model
    /// additionally scales per-transfer setup latency by this hop
    /// count when pricing a tiling's halo exchanges.
    pub fn link_hops(a: usize, b: usize) -> u32 {
        if a == b {
            0
        } else if a / 2 == b / 2 {
            1
        } else {
            2
        }
    }

    /// Replace the spec of device `d` (builder style), making the
    /// machine heterogeneous.
    pub fn with_device_override(mut self, d: usize, spec: DeviceSpec) -> MachineSpec {
        assert!(d < self.n_devices, "device {d} out of range");
        self.device_overrides.retain(|(i, _)| *i != d);
        self.device_overrides.push((d, spec));
        self
    }

    /// The machine a device subset of this one presents: `devices.len()`
    /// devices behind the same interconnect, with per-device overrides
    /// remapped to subset positions. A fleet scheduler uses this to hand
    /// a tenant a runtime over `devices` while pricing links with the
    /// full machine's constants.
    pub fn subset(&self, devices: &[usize]) -> MachineSpec {
        assert!(!devices.is_empty(), "subset of zero devices");
        let overrides = devices
            .iter()
            .enumerate()
            .filter_map(|(pos, &d)| {
                assert!(d < self.n_devices, "device {d} out of range");
                self.device_overrides
                    .iter()
                    .find(|(i, _)| *i == d)
                    .map(|(_, s)| (pos, s.clone()))
            })
            .collect();
        MachineSpec {
            n_devices: devices.len(),
            device_overrides: overrides,
            ..self.clone()
        }
    }

    /// A Kepler-class system patterned on the paper's testbed: `n` logical
    /// GPUs (K80 dies: ~4.37 SP TFLOP/s, 240 GB/s HBM... GDDR5), PCIe 3.0
    /// interconnect with host-staged peer copies.
    pub fn kepler_system(n_devices: usize) -> MachineSpec {
        MachineSpec {
            n_devices,
            device_overrides: Vec::new(),
            device: DeviceSpec {
                name: "K80-die".into(),
                class: DeviceClass::SimGpu,
                // Effective (not peak) single-precision rate: real kernels
                // on a GK210 die sustain roughly a third of the 4.37 TFLOP/s
                // peak.
                flops: 1.5e12,
                int_ops: 2.0e12,
                mem_bw: 240.0e9,
                launch_overhead: 8.0e-6,
            },
            link: LinkSpec {
                bandwidth: 15.0e9,
                latency: 15.0e-6,
                host_staged: true,
            },
            h2d_bandwidth: 11.0e9,
            h2d_latency: 10.0e-6,
            host_per_range: 0.6e-6,
            host_per_segment: 0.25e-6,
            host_per_launch: 4.0e-6,
            host_per_replay: 1.0e-6,
            host_copy_bandwidth: Self::DEFAULT_HOST_COPY_BANDWIDTH,
            host_copy_latency: Self::DEFAULT_HOST_COPY_LATENCY,
        }
    }

    /// A host CPU socket as a device: `cores` cores of effective AVX
    /// FMA throughput against one socket's DDR channels. Effective (not
    /// peak) rates, like the K80 constants: ~12 GFLOP/s and ~20 Gop/s
    /// per core sustained, 60 GB/s per socket.
    pub fn host_cpu_device(cores: usize) -> DeviceSpec {
        DeviceSpec {
            name: format!("host-cpu-{cores}c"),
            class: DeviceClass::HostCpu,
            flops: cores as f64 * 12.0e9,
            int_ops: cores as f64 * 20.0e9,
            mem_bw: 60.0e9,
            // Thread-pool dispatch, far below a driver launch.
            launch_overhead: 1.0e-6,
        }
    }

    /// A pure-host machine: `n_sockets` CPU sockets (16 cores each)
    /// sharing host memory. Peer "links" are memcpys — the `link` field
    /// keeps the Kepler constants but every pair prices through
    /// [`MachineSpec::pair_copy_params`] as host copies.
    pub fn cpu_system(n_sockets: usize) -> MachineSpec {
        let mut spec = MachineSpec::kepler_system(n_sockets);
        spec.device = MachineSpec::host_cpu_device(16);
        spec
    }

    /// A heterogeneous machine: `n_gpus` Kepler dies (devices
    /// `0..n_gpus`) plus `n_cpus` 16-core host sockets appended after
    /// them. The tuner's proportional-shares machinery sees the class
    /// rooflines through `device_spec` and sizes each class's share.
    pub fn hybrid_system(n_gpus: usize, n_cpus: usize) -> MachineSpec {
        let mut spec = MachineSpec::kepler_system(n_gpus + n_cpus);
        for c in 0..n_cpus {
            spec = spec.with_device_override(n_gpus + c, MachineSpec::host_cpu_device(16));
        }
        spec
    }

    /// A single-GPU reference machine with the same device silicon
    /// (baseline for speedups).
    pub fn kepler_single() -> MachineSpec {
        MachineSpec::kepler_system(1)
    }

    /// A hypothetical NVLink-class system with the *same* device silicon:
    /// direct peer links (no host staging, transfers overlap pairwise),
    /// 40 GB/s per link, 3 µs setup. Used by the interconnect ablation to
    /// quantify how much of the scaling limits in Figure 6 are the
    /// PCIe-tree interconnect rather than the partitioning approach —
    /// the paper's §1 argument that future NUMA-ish GPU systems make
    /// automatic partitioning more attractive, not less.
    pub fn nvlink_system(n_devices: usize) -> MachineSpec {
        let mut spec = MachineSpec::kepler_system(n_devices);
        spec.link = LinkSpec {
            bandwidth: 40.0e9,
            latency: 3.0e-6,
            host_staged: false,
        };
        spec.h2d_bandwidth = 12.0e9;
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kepler_constants_sane() {
        let m = MachineSpec::kepler_system(16);
        assert_eq!(m.n_devices, 16);
        assert!(m.device.flops > 1e12);
        assert!(m.device.mem_bw > 1e11);
        assert!(m.link.bandwidth < m.device.mem_bw);
        assert!(m.link.host_staged);
    }

    #[test]
    fn device_overrides_make_machines_heterogeneous() {
        let base = MachineSpec::kepler_system(3);
        assert!(base.is_homogeneous());
        let fast = DeviceSpec {
            flops: base.device.flops * 2.0,
            mem_bw: base.device.mem_bw * 2.0,
            ..base.device.clone()
        };
        let m = base.with_device_override(1, fast);
        assert!(!m.is_homogeneous());
        assert_eq!(m.device_spec(0).flops, m.device_spec(2).flops);
        assert_eq!(m.device_spec(1).flops, m.device_spec(0).flops * 2.0);
        // Overriding the same device twice keeps the last spec.
        let base_device = m.device.clone();
        let m = m.with_device_override(1, base_device);
        assert!(m.device_overrides.len() == 1);
        assert_eq!(m.device_spec(1).flops, m.device_spec(0).flops);
    }

    #[test]
    fn class_pair_pricing_matches_device_classes() {
        let m = MachineSpec::hybrid_system(2, 1);
        assert!(m.has_host_cpu());
        assert_eq!(m.device_class(0), DeviceClass::SimGpu);
        assert_eq!(m.device_class(2), DeviceClass::HostCpu);
        // GPU↔GPU: the interconnect, staged on the PCIe tree.
        assert_eq!(
            m.pair_copy_params(0, 1),
            (m.link.latency, m.link.bandwidth, true)
        );
        // Mixed: one PCIe crossing, never staged.
        assert_eq!(
            m.pair_copy_params(0, 2),
            (m.h2d_latency, m.h2d_bandwidth, false)
        );
        // CPU↔CPU (pure-host machine): a memcpy.
        let c = MachineSpec::cpu_system(2);
        assert!(c.has_host_cpu() && c.is_homogeneous());
        assert_eq!(
            c.pair_copy_params(0, 1),
            (c.host_copy_lat(), c.host_copy_bw(), false)
        );
        assert_eq!(c.host_link_params(0), (c.host_copy_lat(), c.host_copy_bw()));
        // Pure-GPU machines keep the exact legacy constants.
        let g = MachineSpec::kepler_system(2);
        assert!(!g.has_host_cpu());
        assert_eq!(g.host_link_params(1), (g.h2d_latency, g.h2d_bandwidth));
    }

    #[test]
    fn host_copy_constants_fall_back_when_zeroed() {
        let mut m = MachineSpec::cpu_system(1);
        m.host_copy_bandwidth = 0.0;
        m.host_copy_latency = 0.0;
        assert_eq!(m.host_copy_bw(), MachineSpec::DEFAULT_HOST_COPY_BANDWIDTH);
        assert_eq!(m.host_copy_lat(), MachineSpec::DEFAULT_HOST_COPY_LATENCY);
    }

    #[test]
    fn subset_remaps_overrides_to_subset_positions() {
        let base = MachineSpec::kepler_system(4);
        let fast = DeviceSpec {
            flops: base.device.flops * 2.0,
            ..base.device.clone()
        };
        let m = base.with_device_override(2, fast);
        let sub = m.subset(&[2, 3]);
        assert_eq!(sub.n_devices, 2);
        // Physical device 2 is subset position 0.
        assert_eq!(sub.device_spec(0).flops, m.device_spec(2).flops);
        assert_eq!(sub.device_spec(1).flops, m.device.flops);
        // A homogeneous subset of a heterogeneous machine carries no
        // overrides at all.
        assert!(m.subset(&[0, 1]).is_homogeneous());
    }
}
