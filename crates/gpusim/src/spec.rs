//! Machine specifications and calibration constants.

use serde::{Deserialize, Serialize};

/// Performance characteristics of one device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceSpec {
    pub name: String,
    /// Peak single-precision throughput, FLOP/s.
    pub flops: f64,
    /// Integer/address ALU throughput, op/s.
    pub int_ops: f64,
    /// Device memory bandwidth, bytes/s.
    pub mem_bw: f64,
    /// Fixed kernel launch overhead, seconds (driver + dispatch).
    pub launch_overhead: f64,
}

/// Characteristics of the inter-device interconnect.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Effective aggregate peer-copy bandwidth, bytes/s.
    pub bandwidth: f64,
    /// Per-transfer setup latency, seconds.
    pub latency: f64,
    /// Peer copies staged through host memory (true for the PCIe-tree K80
    /// system): all peer transfers serialize on the single host staging
    /// engine instead of overlapping pairwise.
    pub host_staged: bool,
}

/// The whole machine: devices behind one interconnect. Homogeneous by
/// default (`device` describes every device); heterogeneous systems
/// override individual devices via [`MachineSpec::with_device_override`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MachineSpec {
    pub n_devices: usize,
    pub device: DeviceSpec,
    /// Per-device replacements for `device`, as `(index, spec)` pairs.
    /// Empty for homogeneous machines (the default; serde-compatible
    /// with specs serialized before heterogeneity existed).
    #[serde(default)]
    pub device_overrides: Vec<(usize, DeviceSpec)>,
    pub link: LinkSpec,
    /// Host↔device link bandwidth, bytes/s (PCIe x16 per root port).
    pub h2d_bandwidth: f64,
    /// Host↔device latency, seconds.
    pub h2d_latency: f64,
    /// Host-side cost charged per enumerated element range (tracker
    /// query plus memcpy issue), seconds. Used by the runtime to model
    /// the "Patterns" overhead of Figure 7/8.
    pub host_per_range: f64,
    /// Host-side cost per tracker segment update, seconds.
    pub host_per_segment: f64,
    /// Host-side cost to orchestrate one partitioned kernel launch
    /// (argument marshalling, enumerator setup), seconds.
    pub host_per_launch: f64,
    /// Host-side cost to replay a captured launch plan (one cache lookup
    /// plus iterating pre-resolved commands), seconds. Charged *instead
    /// of* the per-range/per-segment pattern costs on a plan-cache hit —
    /// the CUDA-Graphs-style amortization of the §5 launch rewrite.
    pub host_per_replay: f64,
}

impl MachineSpec {
    /// The spec of device `d`: the override when one exists, else the
    /// shared `device` spec.
    pub fn device_spec(&self, d: usize) -> &DeviceSpec {
        self.device_overrides
            .iter()
            .find(|(i, _)| *i == d)
            .map(|(_, s)| s)
            .unwrap_or(&self.device)
    }

    /// Is every device identical?
    pub fn is_homogeneous(&self) -> bool {
        self.device_overrides.is_empty()
    }

    /// Peer-link proximity rank between two devices, used to pick the
    /// *source* of a copy when several replica holders are equally valid:
    /// 0 for the device itself, 1 for its board partner (K80-style
    /// dual-GPU boards pair devices `2k`/`2k+1`), 2 for everything else.
    /// The simulator charges the same uniform [`MachineSpec::link`]
    /// cost regardless of the pair; the tuner's perimeter cost model
    /// additionally scales per-transfer setup latency by this hop
    /// count when pricing a tiling's halo exchanges.
    pub fn link_hops(a: usize, b: usize) -> u32 {
        if a == b {
            0
        } else if a / 2 == b / 2 {
            1
        } else {
            2
        }
    }

    /// Replace the spec of device `d` (builder style), making the
    /// machine heterogeneous.
    pub fn with_device_override(mut self, d: usize, spec: DeviceSpec) -> MachineSpec {
        assert!(d < self.n_devices, "device {d} out of range");
        self.device_overrides.retain(|(i, _)| *i != d);
        self.device_overrides.push((d, spec));
        self
    }

    /// The machine a device subset of this one presents: `devices.len()`
    /// devices behind the same interconnect, with per-device overrides
    /// remapped to subset positions. A fleet scheduler uses this to hand
    /// a tenant a runtime over `devices` while pricing links with the
    /// full machine's constants.
    pub fn subset(&self, devices: &[usize]) -> MachineSpec {
        assert!(!devices.is_empty(), "subset of zero devices");
        let overrides = devices
            .iter()
            .enumerate()
            .filter_map(|(pos, &d)| {
                assert!(d < self.n_devices, "device {d} out of range");
                self.device_overrides
                    .iter()
                    .find(|(i, _)| *i == d)
                    .map(|(_, s)| (pos, s.clone()))
            })
            .collect();
        MachineSpec {
            n_devices: devices.len(),
            device_overrides: overrides,
            ..self.clone()
        }
    }

    /// A Kepler-class system patterned on the paper's testbed: `n` logical
    /// GPUs (K80 dies: ~4.37 SP TFLOP/s, 240 GB/s HBM... GDDR5), PCIe 3.0
    /// interconnect with host-staged peer copies.
    pub fn kepler_system(n_devices: usize) -> MachineSpec {
        MachineSpec {
            n_devices,
            device_overrides: Vec::new(),
            device: DeviceSpec {
                name: "K80-die".into(),
                // Effective (not peak) single-precision rate: real kernels
                // on a GK210 die sustain roughly a third of the 4.37 TFLOP/s
                // peak.
                flops: 1.5e12,
                int_ops: 2.0e12,
                mem_bw: 240.0e9,
                launch_overhead: 8.0e-6,
            },
            link: LinkSpec {
                bandwidth: 15.0e9,
                latency: 15.0e-6,
                host_staged: true,
            },
            h2d_bandwidth: 11.0e9,
            h2d_latency: 10.0e-6,
            host_per_range: 0.6e-6,
            host_per_segment: 0.25e-6,
            host_per_launch: 4.0e-6,
            host_per_replay: 1.0e-6,
        }
    }

    /// A single-GPU reference machine with the same device silicon
    /// (baseline for speedups).
    pub fn kepler_single() -> MachineSpec {
        MachineSpec::kepler_system(1)
    }

    /// A hypothetical NVLink-class system with the *same* device silicon:
    /// direct peer links (no host staging, transfers overlap pairwise),
    /// 40 GB/s per link, 3 µs setup. Used by the interconnect ablation to
    /// quantify how much of the scaling limits in Figure 6 are the
    /// PCIe-tree interconnect rather than the partitioning approach —
    /// the paper's §1 argument that future NUMA-ish GPU systems make
    /// automatic partitioning more attractive, not less.
    pub fn nvlink_system(n_devices: usize) -> MachineSpec {
        let mut spec = MachineSpec::kepler_system(n_devices);
        spec.link = LinkSpec {
            bandwidth: 40.0e9,
            latency: 3.0e-6,
            host_staged: false,
        };
        spec.h2d_bandwidth = 12.0e9;
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kepler_constants_sane() {
        let m = MachineSpec::kepler_system(16);
        assert_eq!(m.n_devices, 16);
        assert!(m.device.flops > 1e12);
        assert!(m.device.mem_bw > 1e11);
        assert!(m.link.bandwidth < m.device.mem_bw);
        assert!(m.link.host_staged);
    }

    #[test]
    fn device_overrides_make_machines_heterogeneous() {
        let base = MachineSpec::kepler_system(3);
        assert!(base.is_homogeneous());
        let fast = DeviceSpec {
            flops: base.device.flops * 2.0,
            mem_bw: base.device.mem_bw * 2.0,
            ..base.device.clone()
        };
        let m = base.with_device_override(1, fast);
        assert!(!m.is_homogeneous());
        assert_eq!(m.device_spec(0).flops, m.device_spec(2).flops);
        assert_eq!(m.device_spec(1).flops, m.device_spec(0).flops * 2.0);
        // Overriding the same device twice keeps the last spec.
        let base_device = m.device.clone();
        let m = m.with_device_override(1, base_device);
        assert!(m.device_overrides.len() == 1);
        assert_eq!(m.device_spec(1).flops, m.device_spec(0).flops);
    }

    #[test]
    fn subset_remaps_overrides_to_subset_positions() {
        let base = MachineSpec::kepler_system(4);
        let fast = DeviceSpec {
            flops: base.device.flops * 2.0,
            ..base.device.clone()
        };
        let m = base.with_device_override(2, fast);
        let sub = m.subset(&[2, 3]);
        assert_eq!(sub.n_devices, 2);
        // Physical device 2 is subset position 0.
        assert_eq!(sub.device_spec(0).flops, m.device_spec(2).flops);
        assert_eq!(sub.device_spec(1).flops, m.device.flops);
        // A homogeneous subset of a heterogeneous machine carries no
        // overrides at all.
        assert!(m.subset(&[0, 1]).is_homogeneous());
    }
}
