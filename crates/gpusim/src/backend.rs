//! The machine-level executor abstraction.
//!
//! `Backend` is the op surface the partitioning runtime drives:
//! allocation, host↔device and peer copies (plain, strided, pipelined),
//! kernel launches (eager, pipelined, recording), stream events,
//! per-device clocks and the shared operation counters. Everything the
//! runtime does above this line — trackers, validity sets, plan
//! capture/replay, the tuner — is backend-agnostic: a "device" is any
//! unit that owns memory and executes a grid range.
//!
//! Two implementations exist:
//!
//! * [`crate::Machine`] (alias [`SimMachine`]) — the simulated multi-GPU
//!   machine, with async command streams and the PCIe/NVLink timing
//!   model. It also hosts `HostCpu`-class device slots for mixed
//!   CPU+GPU machines ([`crate::spec::MachineSpec::hybrid_system`]),
//!   pricing each copy by its endpoints' classes.
//! * [`crate::cpu::CpuBackend`] — a pure-host executor: every device is
//!   a CPU socket, kernels fan out over host threads (the same
//!   block-isolated shadow-memory engine), and all "transfers" are
//!   memcpys priced with the host-memory constants — no PCIe hop
//!   anywhere.

use crate::machine::{DevBuf, OpCounters, SimArg, SimTime, TimeBreakdown, TimeCat};
use crate::spec::MachineSpec;
use crate::Result;
use mekong_kernel::{Dim3, Kernel};
use std::collections::HashMap;

/// Element ranges observed per buffer handle by a recording launch.
pub type ObservedWriteSets = HashMap<usize, Vec<(u64, u64)>>;

/// A machine-level executor: device memories, copies, launches, clocks.
///
/// Object-safe — the runtime holds a `Box<dyn Backend>` and dispatches
/// every copy and launch through it on both the eager and pipelined
/// paths. Implementations with no stream engine treat the stream ops as
/// no-ops (`stream_mark` returns 0, `stream_wait_cross` does nothing);
/// the runtime's event edges then degenerate to program order, which is
/// always correct for a synchronous executor.
pub trait Backend {
    /// The machine specification (devices, links, host-cost constants).
    fn spec(&self) -> &MachineSpec;
    /// Number of devices.
    fn n_devices(&self) -> usize;
    /// Does this backend materialize bytes (vs. timing-only)?
    fn is_functional(&self) -> bool;

    /// Streamed (deferred-effect) execution, if the backend has it.
    fn is_streamed(&self) -> bool;
    /// Enable/disable streamed execution (no-op without streams).
    fn set_streamed(&mut self, on: bool);
    /// β configuration: charge (or zero) transfer time.
    fn set_transfer_timing(&mut self, on: bool);
    /// γ configuration: charge (or zero) pattern time.
    fn set_pattern_timing(&mut self, on: bool);

    /// Current host clock.
    fn now(&self) -> SimTime;
    /// Informational time breakdown.
    fn breakdown(&self) -> TimeBreakdown;
    /// Operation counters.
    fn counters(&self) -> OpCounters;
    /// Reset clocks, breakdown and counters (memory contents stay).
    fn reset_clock(&mut self);

    // Runtime-reported statistics (see the [`OpCounters`] fields).
    fn note_plan_hit(&mut self);
    fn note_plan_miss(&mut self);
    fn note_plan_shared_hit(&mut self);
    fn note_plan_evictions(&mut self, n: u64);
    fn note_tuner_choice(&mut self, encoded: u32, predict_bytes: u64);
    fn note_tuner_measured(&mut self, bytes_per_launch: u64);
    fn note_check_safe(&mut self);
    fn note_check_rejected(&mut self);
    fn note_replica_hits(&mut self, runs: u64, bytes_saved: u64);
    fn note_replica_invalidations(&mut self, n: u64);
    fn note_mayread(&mut self, fetch_bytes: u64, overfetch_bytes: u64);

    /// Allocate `bytes` on device `d`.
    fn alloc(&mut self, d: usize, bytes: usize) -> Result<DevBuf>;
    /// Charge host-side work (advances the host clock; devices keep
    /// running).
    fn charge_host(&mut self, seconds: SimTime, cat: TimeCat);

    /// Host → device copy. Synchronous unless `async_`.
    fn copy_h2d(&mut self, src: &[u8], dst: DevBuf, dst_offset: usize, async_: bool) -> Result<()>;
    /// Device → host copy. Synchronous unless `async_`.
    fn copy_d2h(
        &mut self,
        src: DevBuf,
        src_offset: usize,
        dst: &mut [u8],
        async_: bool,
    ) -> Result<()>;
    /// Host → device copy without host data (timing + counters only).
    fn copy_h2d_timed(
        &mut self,
        dst: DevBuf,
        dst_offset: usize,
        len: usize,
        async_: bool,
    ) -> Result<()>;
    /// Device → host copy without a host destination (timing + counters).
    fn copy_d2h_timed(
        &mut self,
        src: DevBuf,
        src_offset: usize,
        len: usize,
        async_: bool,
    ) -> Result<()>;

    /// Peer copy (asynchronous; compute-clock charged).
    fn copy_d2d(
        &mut self,
        src: DevBuf,
        src_offset: usize,
        dst: DevBuf,
        dst_offset: usize,
        len: usize,
    ) -> Result<()>;
    /// Pipelined peer copy on the copy-engine clocks with event-edge
    /// dependencies; returns the completion time.
    fn copy_d2d_pipelined(
        &mut self,
        src: DevBuf,
        src_offset: usize,
        dst: DevBuf,
        dst_offset: usize,
        len: usize,
        deps: &[SimTime],
    ) -> Result<SimTime>;
    /// Strided (rectangular) peer copy as one DMA transaction.
    fn copy_d2d_strided(
        &mut self,
        src: DevBuf,
        dst: DevBuf,
        offset: usize,
        run: usize,
        stride: usize,
        count: usize,
    ) -> Result<()>;
    /// Pipelined strided peer copy; returns the completion time.
    #[allow(clippy::too_many_arguments)]
    fn copy_d2d_strided_pipelined(
        &mut self,
        src: DevBuf,
        dst: DevBuf,
        offset: usize,
        run: usize,
        stride: usize,
        count: usize,
        deps: &[SimTime],
    ) -> Result<SimTime>;

    /// Launch a kernel asynchronously on device `d`.
    fn launch(
        &mut self,
        d: usize,
        kernel: &Kernel,
        args: &[SimArg],
        grid_dim: Dim3,
        block_dim: Dim3,
    ) -> Result<()>;
    /// Launch with an explicit memory-traffic estimate (the partition's
    /// polyhedral footprint) feeding the roofline's bandwidth term.
    fn launch_with_traffic(
        &mut self,
        d: usize,
        kernel: &Kernel,
        args: &[SimArg],
        grid_dim: Dim3,
        block_dim: Dim3,
        traffic: Option<u64>,
    ) -> Result<()>;
    /// Pipelined launch with event-edge dependencies; returns the
    /// completion time.
    #[allow(clippy::too_many_arguments)]
    fn launch_pipelined(
        &mut self,
        d: usize,
        kernel: &Kernel,
        args: &[SimArg],
        grid_dim: Dim3,
        block_dim: Dim3,
        traffic: Option<u64>,
        deps: &[SimTime],
    ) -> Result<SimTime>;
    /// Launch recording the observed write set per buffer (functional
    /// backends only; instrumentation-penalized).
    fn launch_recording(
        &mut self,
        d: usize,
        kernel: &Kernel,
        args: &[SimArg],
        grid_dim: Dim3,
        block_dim: Dim3,
    ) -> Result<ObservedWriteSets>;

    /// Block host until device `d` is idle.
    fn sync_device(&mut self, d: usize) -> Result<()>;
    /// Block host until all devices are idle; panics on deferred errors.
    fn sync_all(&mut self);
    /// [`Backend::sync_all`] surfacing deferred stream errors.
    fn try_sync_all(&mut self) -> Result<()>;
    /// Advance the host clock to `t` (no-op when already past).
    fn join_host(&mut self, t: SimTime);

    /// Current event token of device `d`'s stream (0 without streams).
    fn stream_mark(&self, d: usize) -> u64;
    /// Queue a cross-stream event wait (no-op without streams).
    fn stream_wait_cross(&mut self, waiter: usize, source: usize, event: u64);

    /// Read back a whole device buffer (functional backends only; test
    /// helper that bypasses the clock).
    fn debug_read(&self, buf: DevBuf) -> Option<Vec<u8>>;
    /// Write a whole device buffer directly (functional test helper).
    fn debug_write(&mut self, buf: DevBuf, data: &[u8]);
}

/// The simulated multi-GPU machine is the canonical backend.
pub type SimMachine = crate::Machine;

impl Backend for crate::Machine {
    fn spec(&self) -> &MachineSpec {
        crate::Machine::spec(self)
    }
    fn n_devices(&self) -> usize {
        crate::Machine::n_devices(self)
    }
    fn is_functional(&self) -> bool {
        crate::Machine::is_functional(self)
    }
    fn is_streamed(&self) -> bool {
        crate::Machine::is_streamed(self)
    }
    fn set_streamed(&mut self, on: bool) {
        crate::Machine::set_streamed(self, on)
    }
    fn set_transfer_timing(&mut self, on: bool) {
        crate::Machine::set_transfer_timing(self, on)
    }
    fn set_pattern_timing(&mut self, on: bool) {
        crate::Machine::set_pattern_timing(self, on)
    }
    fn now(&self) -> SimTime {
        crate::Machine::now(self)
    }
    fn breakdown(&self) -> TimeBreakdown {
        crate::Machine::breakdown(self)
    }
    fn counters(&self) -> OpCounters {
        crate::Machine::counters(self)
    }
    fn reset_clock(&mut self) {
        crate::Machine::reset_clock(self)
    }
    fn note_plan_hit(&mut self) {
        crate::Machine::note_plan_hit(self)
    }
    fn note_plan_miss(&mut self) {
        crate::Machine::note_plan_miss(self)
    }
    fn note_plan_shared_hit(&mut self) {
        crate::Machine::note_plan_shared_hit(self)
    }
    fn note_plan_evictions(&mut self, n: u64) {
        crate::Machine::note_plan_evictions(self, n)
    }
    fn note_tuner_choice(&mut self, encoded: u32, predict_bytes: u64) {
        crate::Machine::note_tuner_choice(self, encoded, predict_bytes)
    }
    fn note_tuner_measured(&mut self, bytes_per_launch: u64) {
        crate::Machine::note_tuner_measured(self, bytes_per_launch)
    }
    fn note_check_safe(&mut self) {
        crate::Machine::note_check_safe(self)
    }
    fn note_check_rejected(&mut self) {
        crate::Machine::note_check_rejected(self)
    }
    fn note_replica_hits(&mut self, runs: u64, bytes_saved: u64) {
        crate::Machine::note_replica_hits(self, runs, bytes_saved)
    }
    fn note_replica_invalidations(&mut self, n: u64) {
        crate::Machine::note_replica_invalidations(self, n)
    }
    fn note_mayread(&mut self, fetch_bytes: u64, overfetch_bytes: u64) {
        crate::Machine::note_mayread(self, fetch_bytes, overfetch_bytes)
    }
    fn alloc(&mut self, d: usize, bytes: usize) -> Result<DevBuf> {
        crate::Machine::alloc(self, d, bytes)
    }
    fn charge_host(&mut self, seconds: SimTime, cat: TimeCat) {
        crate::Machine::charge_host(self, seconds, cat)
    }
    fn copy_h2d(&mut self, src: &[u8], dst: DevBuf, dst_offset: usize, async_: bool) -> Result<()> {
        crate::Machine::copy_h2d(self, src, dst, dst_offset, async_)
    }
    fn copy_d2h(
        &mut self,
        src: DevBuf,
        src_offset: usize,
        dst: &mut [u8],
        async_: bool,
    ) -> Result<()> {
        crate::Machine::copy_d2h(self, src, src_offset, dst, async_)
    }
    fn copy_h2d_timed(
        &mut self,
        dst: DevBuf,
        dst_offset: usize,
        len: usize,
        async_: bool,
    ) -> Result<()> {
        crate::Machine::copy_h2d_timed(self, dst, dst_offset, len, async_)
    }
    fn copy_d2h_timed(
        &mut self,
        src: DevBuf,
        src_offset: usize,
        len: usize,
        async_: bool,
    ) -> Result<()> {
        crate::Machine::copy_d2h_timed(self, src, src_offset, len, async_)
    }
    fn copy_d2d(
        &mut self,
        src: DevBuf,
        src_offset: usize,
        dst: DevBuf,
        dst_offset: usize,
        len: usize,
    ) -> Result<()> {
        crate::Machine::copy_d2d(self, src, src_offset, dst, dst_offset, len)
    }
    fn copy_d2d_pipelined(
        &mut self,
        src: DevBuf,
        src_offset: usize,
        dst: DevBuf,
        dst_offset: usize,
        len: usize,
        deps: &[SimTime],
    ) -> Result<SimTime> {
        crate::Machine::copy_d2d_pipelined(self, src, src_offset, dst, dst_offset, len, deps)
    }
    fn copy_d2d_strided(
        &mut self,
        src: DevBuf,
        dst: DevBuf,
        offset: usize,
        run: usize,
        stride: usize,
        count: usize,
    ) -> Result<()> {
        crate::Machine::copy_d2d_strided(self, src, dst, offset, run, stride, count)
    }
    fn copy_d2d_strided_pipelined(
        &mut self,
        src: DevBuf,
        dst: DevBuf,
        offset: usize,
        run: usize,
        stride: usize,
        count: usize,
        deps: &[SimTime],
    ) -> Result<SimTime> {
        crate::Machine::copy_d2d_strided_pipelined(self, src, dst, offset, run, stride, count, deps)
    }
    fn launch(
        &mut self,
        d: usize,
        kernel: &Kernel,
        args: &[SimArg],
        grid_dim: Dim3,
        block_dim: Dim3,
    ) -> Result<()> {
        crate::Machine::launch(self, d, kernel, args, grid_dim, block_dim)
    }
    fn launch_with_traffic(
        &mut self,
        d: usize,
        kernel: &Kernel,
        args: &[SimArg],
        grid_dim: Dim3,
        block_dim: Dim3,
        traffic: Option<u64>,
    ) -> Result<()> {
        crate::Machine::launch_with_traffic(self, d, kernel, args, grid_dim, block_dim, traffic)
    }
    fn launch_pipelined(
        &mut self,
        d: usize,
        kernel: &Kernel,
        args: &[SimArg],
        grid_dim: Dim3,
        block_dim: Dim3,
        traffic: Option<u64>,
        deps: &[SimTime],
    ) -> Result<SimTime> {
        crate::Machine::launch_pipelined(self, d, kernel, args, grid_dim, block_dim, traffic, deps)
    }
    fn launch_recording(
        &mut self,
        d: usize,
        kernel: &Kernel,
        args: &[SimArg],
        grid_dim: Dim3,
        block_dim: Dim3,
    ) -> Result<ObservedWriteSets> {
        crate::Machine::launch_recording(self, d, kernel, args, grid_dim, block_dim)
    }
    fn sync_device(&mut self, d: usize) -> Result<()> {
        crate::Machine::sync_device(self, d)
    }
    fn sync_all(&mut self) {
        crate::Machine::sync_all(self)
    }
    fn try_sync_all(&mut self) -> Result<()> {
        crate::Machine::try_sync_all(self)
    }
    fn join_host(&mut self, t: SimTime) {
        crate::Machine::join_host(self, t)
    }
    fn stream_mark(&self, d: usize) -> u64 {
        crate::Machine::stream_mark(self, d)
    }
    fn stream_wait_cross(&mut self, waiter: usize, source: usize, event: u64) {
        crate::Machine::stream_wait_cross(self, waiter, source, event)
    }
    fn debug_read(&self, buf: DevBuf) -> Option<Vec<u8>> {
        crate::Machine::debug_read(self, buf)
    }
    fn debug_write(&mut self, buf: DevBuf, data: &[u8]) {
        crate::Machine::debug_write(self, buf, data)
    }
}
