//! Per-device command streams: the asynchronous execution engine.
//!
//! The timing model already treats launches and copies as asynchronous —
//! every operation is *charged* to the per-device clocks at submission.
//! Functionally, however, the serial engine applied byte effects on the
//! host thread at submission time, so a functional 4-GPU run executed its
//! partitions one after another in wall-clock time.
//!
//! This module defers the **byte effects** instead: each device owns a
//! command stream (an ordered queue of [`StreamOp`]s), and a flush drains
//! all streams concurrently, one worker thread per device. Simulated time
//! is untouched — it was already charged at enqueue — so streamed and
//! serial execution report identical clocks and counters; only wall-clock
//! time and scheduling change, exactly like enabling real CUDA streams.
//!
//! Ordering guarantees mirror CUDA's stream semantics:
//!
//! * ops on one device execute in submission order;
//! * a peer copy enqueued on the destination device carries an **event
//!   token**: the length of the source device's stream at submission. The
//!   worker waits until the source stream has completed that many ops, so
//!   the copy observes exactly the source bytes it would have seen under
//!   serial execution (Figure 4's barrier between sync and launch phases).
//!
//! Deadlock freedom: an op may only wait on ops submitted strictly before
//! it (host submission is a total order), so the wait graph is a DAG.

use crate::shadow::BufStore;
use mekong_kernel::interp::KernelArg;
use mekong_kernel::{Dim3, Kernel};
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::VecDeque;

/// A deferred byte effect on one device's memory.
pub enum StreamOp {
    /// Host payload landing in device memory (functional half of an H2D
    /// copy; the bytes were snapshotted at submission, so the host buffer
    /// is immediately reusable).
    WriteBytes {
        handle: usize,
        offset: usize,
        data: Vec<u8>,
    },
    /// Functional kernel execution over the device store.
    Kernel {
        kernel: Box<Kernel>,
        args: Vec<KernelArg>,
        grid: Dim3,
        block: Dim3,
    },
    /// Peer copy into this device. Waits until `src_device`'s stream has
    /// completed `src_event` ops before reading.
    CopyD2D {
        src_device: usize,
        src_event: u64,
        src_handle: usize,
        src_offset: usize,
        dst_handle: usize,
        dst_offset: usize,
        len: usize,
    },
    /// Cross-stream event wait: stall this stream until `device`'s stream
    /// has completed `event` ops. Used by the launch-ahead pipeline to
    /// order a kernel after in-flight peer copies that still *read* bytes
    /// this kernel is about to overwrite (write-after-read), now that no
    /// global barrier separates the sync and launch phases.
    WaitEvent { device: usize, event: u64 },
}

/// One device's command stream plus its completion-event state.
pub struct DeviceStream {
    /// Pending ops, oldest first.
    pub(crate) queue: Mutex<VecDeque<StreamOp>>,
    /// Ops ever submitted (host side; monotonic across flushes). The
    /// value at submission time doubles as the event token peers wait on.
    pub(crate) submitted: u64,
    /// Ops ever completed; workers advance it under the mutex.
    completed: Mutex<u64>,
    /// Signalled on every completion; peers `wait_event` on it.
    done: Condvar,
}

impl DeviceStream {
    pub(crate) fn new() -> DeviceStream {
        DeviceStream {
            queue: Mutex::new(VecDeque::new()),
            submitted: 0,
            completed: Mutex::new(0),
            done: Condvar::new(),
        }
    }

    /// Submit an op (host thread; requires `&mut` — submission is never
    /// concurrent with a flush).
    pub(crate) fn push(&mut self, op: StreamOp) {
        self.queue.get_mut().push_back(op);
        self.submitted += 1;
    }

    pub(crate) fn is_idle(&self) -> bool {
        self.queue.lock().is_empty()
    }

    /// Record one completed op and wake any waiting peers.
    pub(crate) fn signal_completion(&self) {
        *self.completed.lock() += 1;
        self.done.notify_all();
    }

    /// Block until this stream has completed at least `event` ops.
    pub(crate) fn wait_event(&self, event: u64) {
        let mut done = self.completed.lock();
        while *done < event {
            done = self.done.wait(done);
        }
    }
}

/// Apply one op to its device's store (worker thread). `stores[d]` is the
/// per-device memory; peers are read under their own lock, two-phase, so
/// no worker ever holds two store locks at once.
pub(crate) fn apply_op(
    op: StreamOp,
    device: usize,
    stores: &[&RwLock<BufStore>],
    streams: &[DeviceStream],
) -> crate::Result<()> {
    match op {
        StreamOp::WriteBytes {
            handle,
            offset,
            data,
        } => {
            let mut store = stores[device].write();
            store.bytes_mut(handle)[offset..offset + data.len()].copy_from_slice(&data);
            Ok(())
        }
        StreamOp::Kernel {
            kernel,
            args,
            grid,
            block,
        } => {
            let mut store = stores[device].write();
            crate::shadow::run_grid_parallel(&kernel, &args, grid, block, &mut store)?;
            Ok(())
        }
        StreamOp::CopyD2D {
            src_device,
            src_event,
            src_handle,
            src_offset,
            dst_handle,
            dst_offset,
            len,
        } => {
            streams[src_device].wait_event(src_event);
            // Two-phase: snapshot the source under a read lock, release,
            // then write the destination. Safe even when src == dst.
            let data = {
                let src = stores[src_device].read();
                src.bytes(src_handle)[src_offset..src_offset + len].to_vec()
            };
            let mut dst = stores[device].write();
            dst.bytes_mut(dst_handle)[dst_offset..dst_offset + len].copy_from_slice(&data);
            Ok(())
        }
        StreamOp::WaitEvent { device, event } => {
            streams[device].wait_event(event);
            Ok(())
        }
    }
}
