//! A pure-host backend: CPU sockets as devices.
//!
//! `CpuBackend` implements [`crate::backend::Backend`] with no GPU and
//! no PCIe anywhere: every device slot is a host CPU socket
//! ([`crate::spec::DeviceClass::HostCpu`]), kernels execute each
//! partition's grid range on host threads — the same rayon-fanned,
//! block-isolated shadow-memory engine the simulator uses
//! ([`crate::shadow::run_grid_parallel`]) — against real host buffers,
//! and every "transfer" (H2D, D2H, peer) is a host memcpy priced with
//! the [`crate::spec::MachineSpec`] host-memory constants.
//!
//! Execution is synchronous: there is no command-stream engine, so
//! effects land at submission and the stream ops degenerate to no-ops
//! (`stream_mark` → 0, `stream_wait_cross` → nothing). The clock
//! algebra mirrors the simulator's — per-socket compute and copy-engine
//! clocks, launches and async copies return immediately, syncs join —
//! so the pipelined runtime paths schedule identically, just with
//! host-scale constants.

use crate::backend::{Backend, ObservedWriteSets};
use crate::machine::{
    sample_kernel_profile, DevBuf, KernelTimeKey, OpCounters, SimArg, SimTime, TimeBreakdown,
    TimeCat,
};
use crate::shadow::{run_grid_parallel, run_grid_recording, BufStore};
use crate::spec::{DeviceClass, MachineSpec};
use crate::{Result, SimError};
use mekong_kernel::interp::KernelArg;
use mekong_kernel::{Dim3, Kernel};
use std::collections::HashMap;

/// One socket's memory: real bytes in functional mode, sizes otherwise.
enum SocketMem {
    Real(BufStore),
    Virtual(Vec<usize>),
}

struct Socket {
    mem: SocketMem,
    busy_until: SimTime,
    /// Copy-engine clock: pipelined copies land here so the runtime's
    /// launch-ahead window overlaps "transfers" (memcpys on another
    /// core) with compute, exactly like the simulator.
    copy_busy_until: SimTime,
}

/// The rayon-based host executor.
pub struct CpuBackend {
    spec: MachineSpec,
    functional: bool,
    sockets: Vec<Socket>,
    host_now: SimTime,
    breakdown: TimeBreakdown,
    counters: OpCounters,
    transfer_timing: bool,
    pattern_timing: bool,
    kernel_time_cache: HashMap<KernelTimeKey, SimTime>,
}

impl CpuBackend {
    /// Create a host backend over `spec`. Every device slot must be
    /// `HostCpu`-class (build specs with [`MachineSpec::cpu_system`] or
    /// a subset of a hybrid machine's CPU slots); mixed machines run on
    /// [`crate::Machine`], which hosts both classes.
    pub fn new(spec: MachineSpec, functional: bool) -> CpuBackend {
        for d in 0..spec.n_devices {
            assert_eq!(
                spec.device_class(d),
                DeviceClass::HostCpu,
                "CpuBackend hosts HostCpu devices only (device {d} is {:?})",
                spec.device_class(d)
            );
        }
        let sockets = (0..spec.n_devices)
            .map(|_| Socket {
                mem: if functional {
                    SocketMem::Real(BufStore::new())
                } else {
                    SocketMem::Virtual(Vec::new())
                },
                busy_until: 0.0,
                copy_busy_until: 0.0,
            })
            .collect();
        CpuBackend {
            spec,
            functional,
            sockets,
            host_now: 0.0,
            breakdown: TimeBreakdown::default(),
            counters: OpCounters::default(),
            transfer_timing: true,
            pattern_timing: true,
            kernel_time_cache: HashMap::new(),
        }
    }

    /// A functional host machine with `n_sockets` 16-core sockets.
    pub fn system(n_sockets: usize, functional: bool) -> CpuBackend {
        CpuBackend::new(MachineSpec::cpu_system(n_sockets), functional)
    }

    fn socket(&mut self, d: usize) -> Result<&mut Socket> {
        let n = self.sockets.len();
        self.sockets.get_mut(d).ok_or(SimError::NoSuchDevice {
            device: d,
            n_devices: n,
        })
    }

    fn check_range(buf: &DevBuf, offset: usize, len: usize) -> Result<()> {
        if offset + len > buf.len {
            return Err(SimError::CopyOutOfRange {
                buffer_len: buf.len,
                offset,
                len,
            });
        }
        Ok(())
    }

    fn check_strided(
        src: &DevBuf,
        dst: &DevBuf,
        offset: usize,
        run: usize,
        stride: usize,
        count: usize,
    ) -> Result<usize> {
        if count == 0 || run == 0 {
            return Ok(0);
        }
        if stride < run {
            return Err(SimError::BadStride { run, stride });
        }
        let span = (count - 1) * stride + run;
        Self::check_range(src, offset, span)?;
        Self::check_range(dst, offset, span)?;
        Ok(run * count)
    }

    /// Host memcpy cost: one setup latency plus the bytes over the host
    /// copy bandwidth. Used for every transfer class this backend has.
    fn memcpy_time(&self, len: usize) -> SimTime {
        if self.transfer_timing {
            self.spec.host_copy_lat() + len as f64 / self.spec.host_copy_bw()
        } else {
            0.0
        }
    }

    /// Move `len` bytes between two sockets' stores (functional only).
    fn move_bytes(
        &mut self,
        src: DevBuf,
        src_offset: usize,
        dst: DevBuf,
        dst_offset: usize,
        len: usize,
    ) -> Result<()> {
        if !self.functional || len == 0 {
            return Ok(());
        }
        let data: Vec<u8> = match &self.sockets[src.device].mem {
            SocketMem::Real(store) => {
                store.bytes(src.handle)[src_offset..src_offset + len].to_vec()
            }
            SocketMem::Virtual(_) => Vec::new(),
        };
        if let SocketMem::Real(store) = &mut self.socket(dst.device)?.mem {
            store.bytes_mut(dst.handle)[dst_offset..dst_offset + len].copy_from_slice(&data);
        }
        Ok(())
    }

    /// Memoized roofline time for one launch on socket `d`.
    fn kernel_time(
        &mut self,
        d: usize,
        kernel: &Kernel,
        kargs: &[KernelArg],
        grid_dim: Dim3,
        block_dim: Dim3,
        traffic: Option<u64>,
    ) -> Result<SimTime> {
        let key = KernelTimeKey {
            kernel: kernel.name.clone(),
            device: if self.spec.is_homogeneous() { 0 } else { d },
            grid: grid_dim,
            block: block_dim,
            scalars: kargs
                .iter()
                .filter_map(|a| match a {
                    KernelArg::Scalar(v) => Some(v.as_f64() as i64),
                    _ => None,
                })
                .collect(),
            traffic,
        };
        if let Some(&t) = self.kernel_time_cache.get(&key) {
            return Ok(t);
        }
        let total_threads = grid_dim.count() * block_dim.count();
        let t = if total_threads == 0 {
            0.0
        } else {
            let profile = sample_kernel_profile(kernel, kargs, grid_dim, block_dim)?;
            let flops = profile.flops_per_thread * total_threads as f64;
            let intops = profile.intops_per_thread * total_threads as f64;
            let bytes = match traffic {
                Some(t) => t as f64,
                None => profile.bytes_per_thread * total_threads as f64,
            };
            let spec = self.spec.device_spec(d);
            (flops / spec.flops)
                .max(intops / spec.int_ops)
                .max(bytes / spec.mem_bw)
        };
        self.kernel_time_cache.insert(key, t);
        Ok(t)
    }

    fn resolve_args(d: usize, args: &[SimArg]) -> Result<Vec<KernelArg>> {
        let mut kargs = Vec::with_capacity(args.len());
        for a in args {
            match a {
                SimArg::Scalar(v) => kargs.push(KernelArg::Scalar(*v)),
                SimArg::Buf(b) => {
                    if b.device != d {
                        return Err(SimError::BadBuffer {
                            device: d,
                            handle: b.handle,
                        });
                    }
                    kargs.push(KernelArg::Array(b.handle));
                }
            }
        }
        Ok(kargs)
    }

    #[allow(clippy::too_many_arguments)]
    fn launch_core(
        &mut self,
        d: usize,
        kernel: &Kernel,
        args: &[SimArg],
        grid_dim: Dim3,
        block_dim: Dim3,
        traffic: Option<u64>,
        deps: &[SimTime],
    ) -> Result<SimTime> {
        self.counters.launches += 1;
        let kargs = Self::resolve_args(d, args)?;
        self.socket(d)?;
        let t_kernel = self.kernel_time(d, kernel, &kargs, grid_dim, block_dim, traffic)?;
        self.charge_host(self.spec.host_per_launch, TimeCat::Application);
        // Eager execution: the grid range fans out over host threads
        // right here — no stream to defer to.
        if let SocketMem::Real(store) = &mut self.sockets[d].mem {
            run_grid_parallel(kernel, &kargs, grid_dim, block_dim, store)?;
        }
        let overhead = self.spec.device_spec(d).launch_overhead;
        let sock = &mut self.sockets[d];
        let mut start = self.host_now.max(sock.busy_until);
        for &dep in deps {
            start = start.max(dep);
        }
        let t = overhead + t_kernel;
        sock.busy_until = start + t;
        self.breakdown.app += t;
        Ok(start + t)
    }
}

impl Backend for CpuBackend {
    fn spec(&self) -> &MachineSpec {
        &self.spec
    }
    fn n_devices(&self) -> usize {
        self.spec.n_devices
    }
    fn is_functional(&self) -> bool {
        self.functional
    }
    fn is_streamed(&self) -> bool {
        false
    }
    fn set_streamed(&mut self, _on: bool) {}
    fn set_transfer_timing(&mut self, on: bool) {
        self.transfer_timing = on;
    }
    fn set_pattern_timing(&mut self, on: bool) {
        self.pattern_timing = on;
    }
    fn now(&self) -> SimTime {
        self.host_now
    }
    fn breakdown(&self) -> TimeBreakdown {
        self.breakdown
    }
    fn counters(&self) -> OpCounters {
        self.counters
    }
    fn reset_clock(&mut self) {
        self.host_now = 0.0;
        self.breakdown = TimeBreakdown::default();
        self.counters = OpCounters::default();
        for s in &mut self.sockets {
            s.busy_until = 0.0;
            s.copy_busy_until = 0.0;
        }
    }
    fn note_plan_hit(&mut self) {
        self.counters.plan_hits += 1;
    }
    fn note_plan_miss(&mut self) {
        self.counters.plan_misses += 1;
    }
    fn note_plan_shared_hit(&mut self) {
        self.counters.plan_shared_hits += 1;
    }
    fn note_plan_evictions(&mut self, n: u64) {
        self.counters.plan_evictions += n;
    }
    fn note_tuner_choice(&mut self, encoded: u32, predict_bytes: u64) {
        self.counters.strategy_chosen = encoded;
        self.counters.tuner_predict_bytes = predict_bytes;
    }
    fn note_tuner_measured(&mut self, bytes_per_launch: u64) {
        self.counters.tuner_measured_bytes = bytes_per_launch;
    }
    fn note_check_safe(&mut self) {
        self.counters.checked_safe += 1;
    }
    fn note_check_rejected(&mut self) {
        self.counters.checked_rejected += 1;
    }
    fn note_replica_hits(&mut self, runs: u64, bytes_saved: u64) {
        self.counters.replica_hits += runs;
        self.counters.refetch_bytes_saved += bytes_saved;
    }
    fn note_replica_invalidations(&mut self, n: u64) {
        self.counters.replica_invalidations += n;
    }
    fn note_mayread(&mut self, fetch_bytes: u64, overfetch_bytes: u64) {
        self.counters.mayread_fetch_bytes += fetch_bytes;
        self.counters.mayread_overfetch_bytes += overfetch_bytes;
    }
    fn alloc(&mut self, d: usize, bytes: usize) -> Result<DevBuf> {
        let sock = self.socket(d)?;
        let handle = match &mut sock.mem {
            SocketMem::Real(store) => store.alloc(bytes),
            SocketMem::Virtual(sizes) => {
                sizes.push(bytes);
                sizes.len() - 1
            }
        };
        Ok(DevBuf {
            device: d,
            handle,
            len: bytes,
        })
    }
    fn charge_host(&mut self, seconds: SimTime, cat: TimeCat) {
        let seconds = match cat {
            TimeCat::Pattern if !self.pattern_timing => 0.0,
            TimeCat::Transfer if !self.transfer_timing => 0.0,
            _ => seconds,
        };
        self.host_now += seconds;
        match cat {
            TimeCat::Application => self.breakdown.app += seconds,
            TimeCat::Transfer => self.breakdown.transfer += seconds,
            TimeCat::Pattern => self.breakdown.pattern += seconds,
        }
    }
    fn copy_h2d(&mut self, src: &[u8], dst: DevBuf, dst_offset: usize, async_: bool) -> Result<()> {
        Self::check_range(&dst, dst_offset, src.len())?;
        self.counters.h2d_copies += 1;
        self.counters.h2d_bytes += src.len() as u64;
        let t = self.memcpy_time(src.len());
        let host_now = self.host_now;
        let sock = self.socket(dst.device)?;
        if let SocketMem::Real(store) = &mut sock.mem {
            store.bytes_mut(dst.handle)[dst_offset..dst_offset + src.len()].copy_from_slice(src);
        }
        let start = host_now.max(sock.busy_until);
        sock.busy_until = start + t;
        let busy = sock.busy_until;
        self.breakdown.transfer += t;
        if !async_ {
            self.host_now = busy;
        }
        Ok(())
    }
    fn copy_d2h(
        &mut self,
        src: DevBuf,
        src_offset: usize,
        dst: &mut [u8],
        async_: bool,
    ) -> Result<()> {
        Self::check_range(&src, src_offset, dst.len())?;
        self.counters.d2h_copies += 1;
        self.counters.d2h_bytes += dst.len() as u64;
        let t = self.memcpy_time(dst.len());
        let host_now = self.host_now;
        let sock = self.socket(src.device)?;
        if let SocketMem::Real(store) = &mut sock.mem {
            dst.copy_from_slice(&store.bytes(src.handle)[src_offset..src_offset + dst.len()]);
        }
        let start = host_now.max(sock.busy_until);
        sock.busy_until = start + t;
        let busy = sock.busy_until;
        self.breakdown.transfer += t;
        if !async_ {
            self.host_now = busy;
        }
        Ok(())
    }
    fn copy_h2d_timed(
        &mut self,
        dst: DevBuf,
        dst_offset: usize,
        len: usize,
        async_: bool,
    ) -> Result<()> {
        Self::check_range(&dst, dst_offset, len)?;
        self.counters.h2d_copies += 1;
        self.counters.h2d_bytes += len as u64;
        let t = self.memcpy_time(len);
        let host_now = self.host_now;
        let sock = self.socket(dst.device)?;
        let start = host_now.max(sock.busy_until);
        sock.busy_until = start + t;
        let busy = sock.busy_until;
        self.breakdown.transfer += t;
        if !async_ {
            self.host_now = busy;
        }
        Ok(())
    }
    fn copy_d2h_timed(
        &mut self,
        src: DevBuf,
        src_offset: usize,
        len: usize,
        async_: bool,
    ) -> Result<()> {
        Self::check_range(&src, src_offset, len)?;
        self.counters.d2h_copies += 1;
        self.counters.d2h_bytes += len as u64;
        let t = self.memcpy_time(len);
        let host_now = self.host_now;
        let sock = self.socket(src.device)?;
        let start = host_now.max(sock.busy_until);
        sock.busy_until = start + t;
        let busy = sock.busy_until;
        self.breakdown.transfer += t;
        if !async_ {
            self.host_now = busy;
        }
        Ok(())
    }
    fn copy_d2d(
        &mut self,
        src: DevBuf,
        src_offset: usize,
        dst: DevBuf,
        dst_offset: usize,
        len: usize,
    ) -> Result<()> {
        Self::check_range(&src, src_offset, len)?;
        Self::check_range(&dst, dst_offset, len)?;
        self.counters.d2d_copies += 1;
        self.counters.d2d_bytes += len as u64;
        let t = self.memcpy_time(len);
        self.move_bytes(src, src_offset, dst, dst_offset, len)?;
        // A socket-to-socket memcpy busies both endpoints' memory
        // controllers; there is no shared staging engine to serialize on.
        let start = self
            .host_now
            .max(self.sockets[src.device].busy_until)
            .max(self.sockets[dst.device].busy_until);
        let end = start + t;
        self.sockets[src.device].busy_until = end;
        self.sockets[dst.device].busy_until = end;
        self.breakdown.transfer += t;
        Ok(())
    }
    fn copy_d2d_pipelined(
        &mut self,
        src: DevBuf,
        src_offset: usize,
        dst: DevBuf,
        dst_offset: usize,
        len: usize,
        deps: &[SimTime],
    ) -> Result<SimTime> {
        Self::check_range(&src, src_offset, len)?;
        Self::check_range(&dst, dst_offset, len)?;
        self.counters.d2d_copies += 1;
        self.counters.d2d_bytes += len as u64;
        let t = self.memcpy_time(len);
        self.move_bytes(src, src_offset, dst, dst_offset, len)?;
        let mut start = self
            .host_now
            .max(self.sockets[src.device].copy_busy_until)
            .max(self.sockets[dst.device].copy_busy_until);
        for &d in deps {
            start = start.max(d);
        }
        let end = start + t;
        self.sockets[src.device].copy_busy_until = end;
        self.sockets[dst.device].copy_busy_until = end;
        self.breakdown.transfer += t;
        Ok(end)
    }
    fn copy_d2d_strided(
        &mut self,
        src: DevBuf,
        dst: DevBuf,
        offset: usize,
        run: usize,
        stride: usize,
        count: usize,
    ) -> Result<()> {
        let bytes = Self::check_strided(&src, &dst, offset, run, stride, count)?;
        if bytes == 0 {
            return Ok(());
        }
        self.counters.d2d_copies += 1;
        self.counters.d2d_bytes += bytes as u64;
        let t = self.memcpy_time(bytes);
        for i in 0..count {
            let off = offset + i * stride;
            self.move_bytes(src, off, dst, off, run)?;
        }
        let start = self
            .host_now
            .max(self.sockets[src.device].busy_until)
            .max(self.sockets[dst.device].busy_until);
        let end = start + t;
        self.sockets[src.device].busy_until = end;
        self.sockets[dst.device].busy_until = end;
        self.breakdown.transfer += t;
        Ok(())
    }
    fn copy_d2d_strided_pipelined(
        &mut self,
        src: DevBuf,
        dst: DevBuf,
        offset: usize,
        run: usize,
        stride: usize,
        count: usize,
        deps: &[SimTime],
    ) -> Result<SimTime> {
        let bytes = Self::check_strided(&src, &dst, offset, run, stride, count)?;
        if bytes == 0 {
            return Ok(self.host_now);
        }
        self.counters.d2d_copies += 1;
        self.counters.d2d_bytes += bytes as u64;
        let t = self.memcpy_time(bytes);
        for i in 0..count {
            let off = offset + i * stride;
            self.move_bytes(src, off, dst, off, run)?;
        }
        let mut start = self
            .host_now
            .max(self.sockets[src.device].copy_busy_until)
            .max(self.sockets[dst.device].copy_busy_until);
        for &d in deps {
            start = start.max(d);
        }
        let end = start + t;
        self.sockets[src.device].copy_busy_until = end;
        self.sockets[dst.device].copy_busy_until = end;
        self.breakdown.transfer += t;
        Ok(end)
    }
    fn launch(
        &mut self,
        d: usize,
        kernel: &Kernel,
        args: &[SimArg],
        grid_dim: Dim3,
        block_dim: Dim3,
    ) -> Result<()> {
        self.launch_core(d, kernel, args, grid_dim, block_dim, None, &[])
            .map(|_| ())
    }
    fn launch_with_traffic(
        &mut self,
        d: usize,
        kernel: &Kernel,
        args: &[SimArg],
        grid_dim: Dim3,
        block_dim: Dim3,
        traffic: Option<u64>,
    ) -> Result<()> {
        self.launch_core(d, kernel, args, grid_dim, block_dim, traffic, &[])
            .map(|_| ())
    }
    fn launch_pipelined(
        &mut self,
        d: usize,
        kernel: &Kernel,
        args: &[SimArg],
        grid_dim: Dim3,
        block_dim: Dim3,
        traffic: Option<u64>,
        deps: &[SimTime],
    ) -> Result<SimTime> {
        self.launch_core(d, kernel, args, grid_dim, block_dim, traffic, deps)
    }
    fn launch_recording(
        &mut self,
        d: usize,
        kernel: &Kernel,
        args: &[SimArg],
        grid_dim: Dim3,
        block_dim: Dim3,
    ) -> Result<ObservedWriteSets> {
        const INSTRUMENTATION_FACTOR: f64 = 2.0;
        if !self.functional {
            return Err(SimError::BadBuffer {
                device: d,
                handle: usize::MAX,
            });
        }
        self.counters.launches += 1;
        let kargs = Self::resolve_args(d, args)?;
        let t_kernel = self.kernel_time(d, kernel, &kargs, grid_dim, block_dim, None)?;
        self.charge_host(self.spec.host_per_launch, TimeCat::Application);
        let observed = match &mut self.socket(d)?.mem {
            SocketMem::Real(store) => {
                let (_, obs) = run_grid_recording(kernel, &kargs, grid_dim, block_dim, store)?;
                obs
            }
            SocketMem::Virtual(_) => unreachable!("checked functional above"),
        };
        let overhead = self.spec.device_spec(d).launch_overhead;
        let sock = &mut self.sockets[d];
        let start = self.host_now.max(sock.busy_until);
        let t = overhead + t_kernel * INSTRUMENTATION_FACTOR;
        sock.busy_until = start + t;
        self.breakdown.app += t;
        Ok(observed)
    }
    fn sync_device(&mut self, d: usize) -> Result<()> {
        let sock = self.socket(d)?;
        let busy = sock.busy_until.max(sock.copy_busy_until);
        self.host_now = self.host_now.max(busy);
        Ok(())
    }
    fn sync_all(&mut self) {
        self.try_sync_all().expect("CpuBackend sync_all");
    }
    fn try_sync_all(&mut self) -> Result<()> {
        for s in &self.sockets {
            self.host_now = self.host_now.max(s.busy_until).max(s.copy_busy_until);
        }
        Ok(())
    }
    fn join_host(&mut self, t: SimTime) {
        self.host_now = self.host_now.max(t);
    }
    fn stream_mark(&self, _d: usize) -> u64 {
        0
    }
    fn stream_wait_cross(&mut self, _waiter: usize, _source: usize, _event: u64) {}
    fn debug_read(&self, buf: DevBuf) -> Option<Vec<u8>> {
        match &self.sockets[buf.device].mem {
            SocketMem::Real(store) => Some(store.bytes(buf.handle).to_vec()),
            SocketMem::Virtual(_) => None,
        }
    }
    fn debug_write(&mut self, buf: DevBuf, data: &[u8]) {
        if let SocketMem::Real(store) = &mut self.sockets[buf.device].mem {
            store.bytes_mut(buf.handle)[..data.len()].copy_from_slice(data);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mekong_kernel::builder::*;
    use mekong_kernel::{Kernel, Value};

    fn saxpy() -> Kernel {
        Kernel {
            name: "saxpy".into(),
            params: vec![
                scalar("n"),
                array_f32("x", &[ext("n")]),
                array_f32("y", &[ext("n")]),
            ],
            body: vec![
                let_("i", global_x()),
                guard_return(v("i").ge(v("n"))),
                store(
                    "y",
                    vec![v("i")],
                    load("x", vec![v("i")]) * f(2.0) + load("y", vec![v("i")]),
                ),
            ],
        }
    }

    #[test]
    fn functional_roundtrip_on_host_sockets() {
        let mut m = CpuBackend::system(2, true);
        let n = 1024usize;
        let x = m.alloc(0, n * 4).unwrap();
        let y = m.alloc(0, n * 4).unwrap();
        let host_x: Vec<u8> = (0..n).flat_map(|i| (i as f32).to_le_bytes()).collect();
        m.copy_h2d(&host_x, x, 0, false).unwrap();
        m.copy_h2d(&vec![0u8; n * 4], y, 0, false).unwrap();
        m.launch(
            0,
            &saxpy(),
            &[
                SimArg::Scalar(Value::I64(n as i64)),
                SimArg::Buf(x),
                SimArg::Buf(y),
            ],
            Dim3::new1(8),
            Dim3::new1(128),
        )
        .unwrap();
        m.sync_all();
        let mut out = vec![0u8; n * 4];
        m.copy_d2h(y, 0, &mut out, false).unwrap();
        for (i, c) in out.chunks_exact(4).enumerate() {
            assert_eq!(f32::from_le_bytes(c.try_into().unwrap()), 2.0 * i as f32);
        }
        let c = m.counters();
        assert_eq!((c.launches, c.h2d_copies, c.d2h_copies), (1, 2, 1));
        assert!(m.now() > 0.0);
    }

    #[test]
    fn host_copies_cost_memcpys_not_pcie() {
        // The same 64 MiB transfer must be much cheaper on the host
        // backend than over the simulated PCIe link.
        let len = 64 << 20;
        let mut cpu = CpuBackend::system(1, false);
        let b = cpu.alloc(0, len).unwrap();
        cpu.copy_h2d_timed(b, 0, len, false).unwrap();
        let t_host = cpu.now();
        let mut gpu = crate::Machine::new(MachineSpec::kepler_system(1), false);
        let g = gpu.alloc(0, len).unwrap();
        gpu.copy_h2d_timed(g, 0, len, false).unwrap();
        assert!(t_host < gpu.now(), "{t_host} !< {}", gpu.now());
        let spec = cpu.spec().clone();
        let expect = spec.host_copy_lat() + len as f64 / spec.host_copy_bw();
        assert!((t_host - expect).abs() < 1e-12);
    }

    #[test]
    fn peer_memcpy_moves_bytes_between_sockets() {
        let mut m = CpuBackend::system(2, true);
        let a = m.alloc(0, 64).unwrap();
        let b = m.alloc(1, 64).unwrap();
        m.debug_write(a, &[7u8; 64]);
        m.copy_d2d(a, 16, b, 16, 32).unwrap();
        let out = m.debug_read(b).unwrap();
        assert_eq!(&out[16..48], &[7u8; 32]);
        assert_eq!(&out[..16], &[0u8; 16]);
        assert_eq!(m.counters().d2d_copies, 1);
        assert_eq!(m.counters().d2d_bytes, 32);
    }

    #[test]
    fn stream_ops_are_no_ops() {
        let mut m = CpuBackend::system(2, true);
        assert!(!m.is_streamed());
        m.set_streamed(true);
        assert!(!m.is_streamed());
        assert_eq!(m.stream_mark(0), 0);
        m.stream_wait_cross(0, 1, 5);
        assert!(m.try_sync_all().is_ok());
    }
}
