//! # mekong-gpusim — a multi-GPU machine simulator
//!
//! The hardware substitute for the paper's 8×K80 (16 logical GPUs)
//! testbed. It provides:
//!
//! * **Per-device memories** — kernels on different devices only see their
//!   device's buffers, so coherence bugs in the runtime become functional
//!   failures, not just timing artifacts.
//! * **Functional kernel execution** — the thread-grid interpreter from
//!   `mekong-kernel`, fanned out over blocks with rayon. Cross-block
//!   isolation is enforced with shadow write-buffers: every block reads
//!   the pre-launch state and its own writes, exactly the coherence that
//!   CUDA guarantees between thread blocks (§2.1).
//! * **A calibrated timing model** — simulated clocks per device plus a
//!   host clock. Kernels cost a roofline time
//!   `max(flops/F, bytes/B, intops/I)` measured by sampling threads in
//!   counting mode; transfers cost `latency + bytes/bandwidth` on the
//!   PCIe link; host-side metadata work is charged explicitly by the
//!   runtime. Asynchronous semantics follow CUDA: launches and async
//!   copies return immediately, `synchronize` joins the clocks.
//!
//! Absolute times are *model* times; the reproduction targets the shape
//! of the paper's results (who wins, where scaling saturates), not the
//! testbed's absolute numbers.

pub mod backend;
pub mod cpu;
pub mod machine;
pub mod shadow;
pub mod spec;
pub mod stream;

pub use backend::{Backend, ObservedWriteSets, SimMachine};
pub use cpu::CpuBackend;
pub use machine::{
    sample_kernel_profile, DevBuf, Machine, OpCounters, SimArg, SimTime, ThreadProfile,
    TimeBreakdown, TimeCat,
};
pub use spec::{DeviceClass, DeviceSpec, LinkSpec, MachineSpec};

/// Errors from the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Kernel interpretation failed.
    Kernel(mekong_kernel::KernelError),
    /// A buffer handle was used on the wrong device or after free.
    BadBuffer { device: usize, handle: usize },
    /// Copy range exceeds buffer size.
    CopyOutOfRange {
        buffer_len: usize,
        offset: usize,
        len: usize,
    },
    /// Device index out of range.
    NoSuchDevice { device: usize, n_devices: usize },
    /// A strided copy whose runs would overlap (stride smaller than
    /// the run length).
    BadStride { run: usize, stride: usize },
}

impl From<mekong_kernel::KernelError> for SimError {
    fn from(e: mekong_kernel::KernelError) -> Self {
        SimError::Kernel(e)
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Kernel(e) => write!(f, "kernel error: {e}"),
            SimError::BadBuffer { device, handle } => {
                write!(f, "bad buffer handle {handle} on device {device}")
            }
            SimError::CopyOutOfRange {
                buffer_len,
                offset,
                len,
            } => write!(
                f,
                "copy [{offset}, {}) exceeds buffer of {buffer_len} bytes",
                offset + len
            ),
            SimError::NoSuchDevice { device, n_devices } => {
                write!(f, "device {device} out of range ({n_devices} devices)")
            }
            SimError::BadStride { run, stride } => {
                write!(f, "strided copy: stride {stride} smaller than run {run}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Result alias.
pub type Result<T> = std::result::Result<T, SimError>;
