//! The simulated multi-GPU machine: device memories + clocks.

use crate::shadow::{run_grid_parallel, BufStore};
use crate::spec::MachineSpec;
use crate::stream::{apply_op, DeviceStream, StreamOp};
use crate::{Result, SimError};
use mekong_kernel::interp::{ExecMode, KernelArg};
use mekong_kernel::{execute_thread, Dim3, ExecStats, Kernel, ThreadCtx, Value};
use parking_lot::{Mutex, RwLock};

/// Simulated time, in seconds.
pub type SimTime = f64;

/// What a charged time interval was spent on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeCat {
    /// Kernel execution (and launch overhead) — present in the
    /// single-device baseline too.
    Application,
    /// Inter-device / host-device data movement.
    Transfer,
    /// Host-side metadata work: enumerator runs, tracker queries and
    /// updates ("Patterns" in Figure 7).
    Pattern,
}

/// Accumulated simulated time per category (informational; the Figure 7
/// breakdown is *measured* via α/β/γ configurations like the paper does).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TimeBreakdown {
    pub app: SimTime,
    pub transfer: SimTime,
    pub pattern: SimTime,
}

/// A buffer living on one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DevBuf {
    pub device: usize,
    pub handle: usize,
    pub len: usize,
}

enum DeviceMem {
    /// Functional mode: real bytes. The lock lets stream workers of
    /// different devices read each other's stores during a flush; the
    /// host side always uses `get_mut` (no contention outside flushes).
    Real(RwLock<BufStore>),
    /// Performance mode: sizes only.
    Virtual(Vec<usize>),
}

struct Device {
    mem: DeviceMem,
    busy_until: SimTime,
    /// Copy-engine (DMA) clock: pipelined peer copies advance this
    /// instead of `busy_until`, so a halo exchange can stream while the
    /// SMs compute. Non-pipelined ops ignore it; syncs join it.
    copy_busy_until: SimTime,
}

/// Operation counters (inspected by tests and the benchmark harness).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounters {
    pub launches: u64,
    pub h2d_copies: u64,
    pub d2h_copies: u64,
    pub d2d_copies: u64,
    pub h2d_bytes: u64,
    pub d2h_bytes: u64,
    pub d2d_bytes: u64,
    /// Launch-plan cache hits (runtime capture/replay; see mekong-runtime).
    pub plan_hits: u64,
    /// Launch-plan cache misses: launches that walked trackers and
    /// captured a fresh plan (or ran with capture disabled).
    pub plan_misses: u64,
    /// Plan-cache hits on a plan captured by a *different* namespace —
    /// another tenant of a shared cache, or a loaded snapshot from a
    /// previous process (multi-tenant serving, see mekong-serve).
    pub plan_shared_hits: u64,
    /// Captured plans evicted by the plan cache's LRU capacity bound
    /// (`RuntimeConfig::plan_cache_capacity` in mekong-runtime).
    pub plan_evictions: u64,
    /// The most recent autotuner decision, encoded as
    /// `(axis + 1) | parts << 8 | weighted << 16` for 1-D splits, with
    /// 2-D rectangular tilings additionally carrying
    /// `(axis2 + 1) << 17 | parts2 << 19` (0 = no decision yet; axes
    /// are zyx indices, so 1/2/3 means Z/Y/X). The runtime's tuner
    /// reports decisions here; `mekong-tuner` decodes them back into a
    /// human-readable strategy string.
    pub strategy_chosen: u32,
    /// Predicted steady-state transfer bytes *per launch* of the most
    /// recent autotuner decision.
    pub tuner_predict_bytes: u64,
    /// Measured transfer bytes per launch (averaged over the tuner's
    /// observation window) for the most recently refined decision;
    /// 0 until a window completes.
    pub tuner_measured_bytes: u64,
    /// Partitioned launches whose split axis carried a static
    /// write-disjointness proof (see mekong-check).
    pub checked_safe: u64,
    /// Partitioned launches whose split axis had no proof: refused, or
    /// merely counted when `RuntimeConfig::enforce_partition_safety` is
    /// off.
    pub checked_rejected: u64,
    /// Read-sync segment runs served by a *local replica* of remote-fresh
    /// bytes (replica-aware coherence, see mekong-runtime): under
    /// single-owner tracking each would have been a D2D copy.
    pub replica_hits: u64,
    /// Replica copies evicted by writes and H2D uploads (per overlapped
    /// segment, the holder devices other than the writer).
    pub replica_invalidations: u64,
    /// Peer-transfer bytes the replica hits avoided re-fetching.
    pub refetch_bytes_saved: u64,
    /// Bytes fetched to satisfy *bounded may-read* footprints: interval
    /// boxes the abstract interpreter emitted for non-affine reads
    /// (see mekong-analysis). Counts the enumerated box bytes per
    /// partitioned launch.
    pub mayread_fetch_bytes: u64,
    /// Over-fetch of those boxes: bytes fetched beyond what a
    /// single-device run of the same launch would touch (the whole-grid
    /// box). 0 when running unpartitioned.
    pub mayread_overfetch_bytes: u64,
}

/// A kernel launch argument at the machine level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimArg {
    Scalar(Value),
    Buf(DevBuf),
}

/// The simulated machine.
pub struct Machine {
    spec: MachineSpec,
    functional: bool,
    devices: Vec<Device>,
    host_now: SimTime,
    breakdown: TimeBreakdown,
    counters: OpCounters,
    /// β configuration: transfers execute (functionally) but cost no time.
    transfer_timing: bool,
    /// γ configuration: pattern charges cost no time.
    pattern_timing: bool,
    /// The host staging engine: when `link.host_staged`, peer copies
    /// serialize on this shared resource.
    link_busy_until: SimTime,
    /// Memoized roofline kernel times. The estimate depends only on the
    /// kernel, the launch geometry and the scalar arguments — iterative
    /// workloads relaunch identical configurations thousands of times.
    kernel_time_cache: std::collections::HashMap<KernelTimeKey, SimTime>,
    /// Streamed execution: functional byte effects are queued per device
    /// and drained concurrently at sync points (see [`crate::stream`]).
    /// Off = the serial engine (apply effects on the host thread at
    /// submission). Timing and counters are identical either way.
    streamed: bool,
    /// One command stream per device.
    streams: Vec<DeviceStream>,
    /// First error raised by a stream worker; surfaced at the next
    /// [`Machine::try_sync_all`] (or panics in [`Machine::sync_all`]).
    stream_error: Mutex<Option<SimError>>,
}

/// Cache key for the roofline estimate (shared with the CPU backend).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct KernelTimeKey {
    pub(crate) kernel: String,
    /// 0 on homogeneous machines (every device prices identically, so
    /// partitions share memo entries); the device index when overrides
    /// make the roofline device-dependent.
    pub(crate) device: usize,
    pub(crate) grid: Dim3,
    pub(crate) block: Dim3,
    pub(crate) scalars: Vec<i64>,
    pub(crate) traffic: Option<u64>,
}

impl Machine {
    /// Create a machine. `functional = true` materializes device memory
    /// and executes kernels on real data; `false` is performance mode
    /// (metadata and timing only).
    pub fn new(spec: MachineSpec, functional: bool) -> Machine {
        let devices = (0..spec.n_devices)
            .map(|_| Device {
                mem: if functional {
                    DeviceMem::Real(RwLock::new(BufStore::new()))
                } else {
                    DeviceMem::Virtual(Vec::new())
                },
                busy_until: 0.0,
                copy_busy_until: 0.0,
            })
            .collect();
        let streams = (0..spec.n_devices).map(|_| DeviceStream::new()).collect();
        Machine {
            spec,
            functional,
            devices,
            host_now: 0.0,
            breakdown: TimeBreakdown::default(),
            counters: OpCounters::default(),
            transfer_timing: true,
            pattern_timing: true,
            link_busy_until: 0.0,
            kernel_time_cache: std::collections::HashMap::new(),
            streamed: true,
            streams,
            stream_error: Mutex::new(None),
        }
    }

    /// Switch between streamed (default) and serial execution of the
    /// functional byte effects. Pending ops are flushed first, so the
    /// switch is safe at any point. Performance-mode machines have no
    /// byte effects; the flag is irrelevant there.
    pub fn set_streamed(&mut self, on: bool) {
        self.flush_streams();
        self.streamed = on;
    }

    /// Is streamed execution enabled?
    pub fn is_streamed(&self) -> bool {
        self.streamed
    }

    /// True when this launch/copy should defer its byte effect.
    fn defer_effects(&self) -> bool {
        self.functional && self.streamed
    }

    /// Drain every device's command stream, one worker thread per busy
    /// device. Byte effects are applied in submission order per device;
    /// peer copies wait on their source event (see [`crate::stream`]).
    /// No-op when nothing is pending. Takes `&self`: submission requires
    /// `&mut self`, so no op can be submitted while a flush runs.
    pub fn flush_streams(&self) {
        if !self.functional || self.streams.iter().all(|s| s.is_idle()) {
            return;
        }
        let stores: Vec<&RwLock<BufStore>> = self
            .devices
            .iter()
            .map(|dev| match &dev.mem {
                DeviceMem::Real(store) => store,
                DeviceMem::Virtual(_) => unreachable!("functional machine has real stores"),
            })
            .collect();
        std::thread::scope(|scope| {
            for (d, stream) in self.streams.iter().enumerate() {
                if stream.is_idle() {
                    continue;
                }
                let stores = &stores;
                scope.spawn(move || loop {
                    let op = stream.queue.lock().pop_front();
                    let Some(op) = op else { break };
                    if let Err(e) = apply_op(op, d, stores, &self.streams) {
                        self.stream_error.lock().get_or_insert(e);
                    }
                    // Completion is signalled even after an error so
                    // dependent peers never deadlock.
                    stream.signal_completion();
                });
            }
        });
    }

    /// The machine specification.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// Number of devices.
    pub fn n_devices(&self) -> usize {
        self.spec.n_devices
    }

    /// Is this a functional (data-materializing) machine?
    pub fn is_functional(&self) -> bool {
        self.functional
    }

    /// Disable/enable transfer timing (the paper's β measurement: "execution
    /// with disabled transfers, but dependency resolution and tracker
    /// updates are performed").
    pub fn set_transfer_timing(&mut self, on: bool) {
        self.transfer_timing = on;
    }

    /// Disable/enable pattern timing (γ: "disabled dependency resolution
    /// and tracker updates").
    pub fn set_pattern_timing(&mut self, on: bool) {
        self.pattern_timing = on;
    }

    /// Current host clock.
    pub fn now(&self) -> SimTime {
        self.host_now
    }

    /// Informational time breakdown.
    pub fn breakdown(&self) -> TimeBreakdown {
        self.breakdown
    }

    /// Operation counters.
    pub fn counters(&self) -> OpCounters {
        self.counters
    }

    /// Record a launch-plan cache hit (runtime capture/replay).
    pub fn note_plan_hit(&mut self) {
        self.counters.plan_hits += 1;
    }

    /// Record a launch-plan cache miss.
    pub fn note_plan_miss(&mut self) {
        self.counters.plan_misses += 1;
    }

    /// Record a plan-cache hit whose plan was captured by a different
    /// namespace (cross-tenant sharing; also bump `note_plan_hit`
    /// separately — shared hits are a subset of hits).
    pub fn note_plan_shared_hit(&mut self) {
        self.counters.plan_shared_hits += 1;
    }

    /// Record captured plans evicted by the cache's LRU capacity bound.
    pub fn note_plan_evictions(&mut self, n: u64) {
        self.counters.plan_evictions += n;
    }

    /// Record an autotuner decision: the encoded strategy (see
    /// [`OpCounters::strategy_chosen`]) and its predicted steady-state
    /// transfer bytes per launch.
    pub fn note_tuner_choice(&mut self, encoded: u32, predict_bytes: u64) {
        self.counters.strategy_chosen = encoded;
        self.counters.tuner_predict_bytes = predict_bytes;
    }

    /// Record a completed autotuner observation window: measured transfer
    /// bytes per launch for the current strategy.
    pub fn note_tuner_measured(&mut self, bytes_per_launch: u64) {
        self.counters.tuner_measured_bytes = bytes_per_launch;
    }

    /// Record a partitioned launch whose split axis carried a static
    /// write-disjointness proof.
    pub fn note_check_safe(&mut self) {
        self.counters.checked_safe += 1;
    }

    /// Record a partitioned launch whose split axis had no proof
    /// (refused, or executed anyway with enforcement off).
    pub fn note_check_rejected(&mut self) {
        self.counters.checked_rejected += 1;
    }

    /// Record read-sync segment runs served by a local replica instead of
    /// a D2D re-fetch, and the bytes that saved.
    pub fn note_replica_hits(&mut self, runs: u64, bytes_saved: u64) {
        self.counters.replica_hits += runs;
        self.counters.refetch_bytes_saved += bytes_saved;
    }

    /// Record replica copies evicted by a write or H2D upload.
    pub fn note_replica_invalidations(&mut self, n: u64) {
        self.counters.replica_invalidations += n;
    }

    /// Record bounded may-read box traffic of a partitioned launch: the
    /// bytes enumerated from interval-box footprints, and how many of
    /// them exceed the single-device (whole-grid) box.
    pub fn note_mayread(&mut self, fetch_bytes: u64, overfetch_bytes: u64) {
        self.counters.mayread_fetch_bytes += fetch_bytes;
        self.counters.mayread_overfetch_bytes += overfetch_bytes;
    }

    /// Reset clocks, breakdown and counters (memory contents stay).
    pub fn reset_clock(&mut self) {
        self.host_now = 0.0;
        self.breakdown = TimeBreakdown::default();
        self.counters = OpCounters::default();
        self.link_busy_until = 0.0;
        for d in &mut self.devices {
            d.busy_until = 0.0;
            d.copy_busy_until = 0.0;
        }
    }

    fn device(&mut self, d: usize) -> Result<&mut Device> {
        let n = self.devices.len();
        self.devices.get_mut(d).ok_or(SimError::NoSuchDevice {
            device: d,
            n_devices: n,
        })
    }

    /// Allocate `bytes` on device `d`.
    pub fn alloc(&mut self, d: usize, bytes: usize) -> Result<DevBuf> {
        let dev = self.device(d)?;
        let handle = match &mut dev.mem {
            DeviceMem::Real(store) => store.get_mut().alloc(bytes),
            DeviceMem::Virtual(sizes) => {
                sizes.push(bytes);
                sizes.len() - 1
            }
        };
        Ok(DevBuf {
            device: d,
            handle,
            len: bytes,
        })
    }

    fn check_range(buf: &DevBuf, offset: usize, len: usize) -> Result<()> {
        if offset + len > buf.len {
            return Err(SimError::CopyOutOfRange {
                buffer_len: buf.len,
                offset,
                len,
            });
        }
        Ok(())
    }

    /// Charge host-side work of the given category (advances the host
    /// clock; devices keep running).
    pub fn charge_host(&mut self, seconds: SimTime, cat: TimeCat) {
        let seconds = match cat {
            TimeCat::Pattern if !self.pattern_timing => 0.0,
            TimeCat::Transfer if !self.transfer_timing => 0.0,
            _ => seconds,
        };
        self.host_now += seconds;
        match cat {
            TimeCat::Application => self.breakdown.app += seconds,
            TimeCat::Transfer => self.breakdown.transfer += seconds,
            TimeCat::Pattern => self.breakdown.pattern += seconds,
        }
    }

    /// Host → device copy. Synchronous unless `async_`.
    pub fn copy_h2d(
        &mut self,
        src: &[u8],
        dst: DevBuf,
        dst_offset: usize,
        async_: bool,
    ) -> Result<()> {
        Self::check_range(&dst, dst_offset, src.len())?;
        self.counters.h2d_copies += 1;
        self.counters.h2d_bytes += src.len() as u64;
        let t = if self.transfer_timing {
            // Class-aware: a HostCpu device "uploads" with a memcpy
            // (host_copy constants), a GPU crosses PCIe. Identical to the
            // pre-class expression on pure-GPU machines.
            let (lat, bw) = self.spec.host_link_params(dst.device);
            lat + src.len() as f64 / bw
        } else {
            0.0
        };
        self.device(dst.device)?;
        let host_now = self.host_now;
        if self.defer_effects() {
            // Snapshot the payload now (the host buffer is reusable on
            // return, like a pinned staging copy); land it at flush time.
            self.streams[dst.device].push(StreamOp::WriteBytes {
                handle: dst.handle,
                offset: dst_offset,
                data: src.to_vec(),
            });
        } else if let DeviceMem::Real(store) = &mut self.devices[dst.device].mem {
            store.get_mut().bytes_mut(dst.handle)[dst_offset..dst_offset + src.len()]
                .copy_from_slice(src);
        }
        let dev = &mut self.devices[dst.device];
        let start = host_now.max(dev.busy_until);
        dev.busy_until = start + t;
        let busy = dev.busy_until;
        self.breakdown.transfer += t;
        if !async_ {
            self.host_now = busy;
        }
        Ok(())
    }

    /// Device → host copy. Synchronous unless `async_`.
    pub fn copy_d2h(
        &mut self,
        src: DevBuf,
        src_offset: usize,
        dst: &mut [u8],
        async_: bool,
    ) -> Result<()> {
        Self::check_range(&src, src_offset, dst.len())?;
        self.counters.d2h_copies += 1;
        self.counters.d2h_bytes += dst.len() as u64;
        let t = if self.transfer_timing {
            let (lat, bw) = self.spec.host_link_params(src.device);
            lat + dst.len() as f64 / bw
        } else {
            0.0
        };
        self.device(src.device)?;
        // A D2H read observes device bytes: drain pending effects first.
        self.flush_streams();
        let host_now = self.host_now;
        let dev = &mut self.devices[src.device];
        if let DeviceMem::Real(store) = &mut dev.mem {
            dst.copy_from_slice(
                &store.get_mut().bytes(src.handle)[src_offset..src_offset + dst.len()],
            );
        }
        let start = host_now.max(dev.busy_until);
        dev.busy_until = start + t;
        let busy = dev.busy_until;
        self.breakdown.transfer += t;
        if !async_ {
            self.host_now = busy;
        }
        Ok(())
    }

    /// Host → device copy without host data: timing and counters only.
    /// For performance-mode harnesses where no host payload exists.
    pub fn copy_h2d_timed(
        &mut self,
        dst: DevBuf,
        dst_offset: usize,
        len: usize,
        async_: bool,
    ) -> Result<()> {
        Self::check_range(&dst, dst_offset, len)?;
        self.counters.h2d_copies += 1;
        self.counters.h2d_bytes += len as u64;
        let t = if self.transfer_timing {
            let (lat, bw) = self.spec.host_link_params(dst.device);
            lat + len as f64 / bw
        } else {
            0.0
        };
        self.device(dst.device)?;
        let host_now = self.host_now;
        let dev = &mut self.devices[dst.device];
        let start = host_now.max(dev.busy_until);
        dev.busy_until = start + t;
        let busy = dev.busy_until;
        self.breakdown.transfer += t;
        if !async_ {
            self.host_now = busy;
        }
        Ok(())
    }

    /// Device → host copy without a host destination: timing and counters
    /// only (performance mode).
    pub fn copy_d2h_timed(
        &mut self,
        src: DevBuf,
        src_offset: usize,
        len: usize,
        async_: bool,
    ) -> Result<()> {
        Self::check_range(&src, src_offset, len)?;
        self.counters.d2h_copies += 1;
        self.counters.d2h_bytes += len as u64;
        let t = if self.transfer_timing {
            let (lat, bw) = self.spec.host_link_params(src.device);
            lat + len as f64 / bw
        } else {
            0.0
        };
        self.device(src.device)?;
        let host_now = self.host_now;
        let dev = &mut self.devices[src.device];
        let start = host_now.max(dev.busy_until);
        dev.busy_until = start + t;
        let busy = dev.busy_until;
        self.breakdown.transfer += t;
        if !async_ {
            self.host_now = busy;
        }
        Ok(())
    }

    /// Device → device copy (peer). On a host-staged interconnect the
    /// bytes cross PCIe twice. Asynchronous (the runtime's buffer sync
    /// issues these in bulk, paper §8.3).
    pub fn copy_d2d(
        &mut self,
        src: DevBuf,
        src_offset: usize,
        dst: DevBuf,
        dst_offset: usize,
        len: usize,
    ) -> Result<()> {
        Self::check_range(&src, src_offset, len)?;
        Self::check_range(&dst, dst_offset, len)?;
        self.counters.d2d_copies += 1;
        self.counters.d2d_bytes += len as u64;
        // Class-aware pair pricing: GPU↔GPU uses the interconnect (and
        // its staging engine), CPU↔CPU a memcpy, mixed one PCIe hop.
        let (lat, bw, staged) = self.spec.pair_copy_params(src.device, dst.device);
        let t = if self.transfer_timing {
            lat + len as f64 / bw
        } else {
            0.0
        };
        // Move the bytes.
        self.move_bytes_d2d(src, src_offset, dst, dst_offset, len)?;
        // Clock: engages both endpoints and, on a host-staged system, the
        // shared staging engine — peer copies then serialize globally.
        let mut start = self
            .host_now
            .max(self.devices[src.device].busy_until)
            .max(self.devices[dst.device].busy_until);
        if staged {
            start = start.max(self.link_busy_until);
        }
        let end = start + t;
        self.devices[src.device].busy_until = end;
        self.devices[dst.device].busy_until = end;
        if staged {
            self.link_busy_until = end;
        }
        self.breakdown.transfer += t;
        Ok(())
    }

    /// Functional half of a peer copy: queue it on the destination stream
    /// (with the source-event token) or move the bytes serially.
    fn move_bytes_d2d(
        &mut self,
        src: DevBuf,
        src_offset: usize,
        dst: DevBuf,
        dst_offset: usize,
        len: usize,
    ) -> Result<()> {
        if !self.functional || len == 0 {
            return Ok(());
        }
        if self.defer_effects() {
            // Event token: everything submitted to the source stream
            // so far must land before this copy reads (§8.3 ordering).
            let src_event = self.streams[src.device].submitted;
            self.streams[dst.device].push(StreamOp::CopyD2D {
                src_device: src.device,
                src_event,
                src_handle: src.handle,
                src_offset,
                dst_handle: dst.handle,
                dst_offset,
                len,
            });
        } else {
            let data: Vec<u8> = {
                let sdev = &self.devices[src.device];
                match &sdev.mem {
                    DeviceMem::Real(store) => {
                        store.read().bytes(src.handle)[src_offset..src_offset + len].to_vec()
                    }
                    DeviceMem::Virtual(_) => Vec::new(),
                }
            };
            let ddev = self.device(dst.device)?;
            if let DeviceMem::Real(store) = &mut ddev.mem {
                store.get_mut().bytes_mut(dst.handle)[dst_offset..dst_offset + len]
                    .copy_from_slice(&data);
            }
        }
        Ok(())
    }

    /// Pipelined peer copy: charged to the endpoints' **copy-engine**
    /// clocks (and the staging engine when host-staged) instead of their
    /// compute clocks, so an in-flight halo exchange overlaps compute.
    /// `deps` are event edges from the caller's dependency DAG — the copy
    /// cannot start before any of them. Returns the copy's completion
    /// time so the caller can thread it into later edges.
    pub fn copy_d2d_pipelined(
        &mut self,
        src: DevBuf,
        src_offset: usize,
        dst: DevBuf,
        dst_offset: usize,
        len: usize,
        deps: &[SimTime],
    ) -> Result<SimTime> {
        Self::check_range(&src, src_offset, len)?;
        Self::check_range(&dst, dst_offset, len)?;
        self.counters.d2d_copies += 1;
        self.counters.d2d_bytes += len as u64;
        let (lat, bw, staged) = self.spec.pair_copy_params(src.device, dst.device);
        let t = if self.transfer_timing {
            lat + len as f64 / bw
        } else {
            0.0
        };
        self.move_bytes_d2d(src, src_offset, dst, dst_offset, len)?;
        let mut start = self
            .host_now
            .max(self.devices[src.device].copy_busy_until)
            .max(self.devices[dst.device].copy_busy_until);
        for &d in deps {
            start = start.max(d);
        }
        if staged {
            start = start.max(self.link_busy_until);
        }
        let end = start + t;
        self.devices[src.device].copy_busy_until = end;
        self.devices[dst.device].copy_busy_until = end;
        if staged {
            self.link_busy_until = end;
        }
        self.breakdown.transfer += t;
        Ok(end)
    }

    /// Strided (rectangular) peer copy: `count` runs of `run` bytes,
    /// `stride` bytes apart, at the *same* offsets on both endpoints —
    /// the column-halo shape of a 2-D grid tiling. Modeled as **one**
    /// DMA transaction (a `cudaMemcpy2D`-style descriptor): one link
    /// latency plus the aggregate bytes, and one `d2d_copies` tick.
    pub fn copy_d2d_strided(
        &mut self,
        src: DevBuf,
        dst: DevBuf,
        offset: usize,
        run: usize,
        stride: usize,
        count: usize,
    ) -> Result<()> {
        let (_, bytes) = Self::check_strided(&src, &dst, offset, run, stride, count)?;
        if bytes == 0 {
            return Ok(());
        }
        self.counters.d2d_copies += 1;
        self.counters.d2d_bytes += bytes as u64;
        let (lat, bw, staged) = self.spec.pair_copy_params(src.device, dst.device);
        let t = if self.transfer_timing {
            lat + bytes as f64 / bw
        } else {
            0.0
        };
        for i in 0..count {
            let off = offset + i * stride;
            self.move_bytes_d2d(src, off, dst, off, run)?;
        }
        let mut start = self
            .host_now
            .max(self.devices[src.device].busy_until)
            .max(self.devices[dst.device].busy_until);
        if staged {
            start = start.max(self.link_busy_until);
        }
        let end = start + t;
        self.devices[src.device].busy_until = end;
        self.devices[dst.device].busy_until = end;
        if staged {
            self.link_busy_until = end;
        }
        self.breakdown.transfer += t;
        Ok(())
    }

    /// Pipelined [`Machine::copy_d2d_strided`]: charged to the
    /// copy-engine clocks with the caller's event-edge dependencies,
    /// like [`Machine::copy_d2d_pipelined`]. Returns the completion
    /// time.
    #[allow(clippy::too_many_arguments)]
    pub fn copy_d2d_strided_pipelined(
        &mut self,
        src: DevBuf,
        dst: DevBuf,
        offset: usize,
        run: usize,
        stride: usize,
        count: usize,
        deps: &[SimTime],
    ) -> Result<SimTime> {
        let (_, bytes) = Self::check_strided(&src, &dst, offset, run, stride, count)?;
        if bytes == 0 {
            return Ok(self.host_now);
        }
        self.counters.d2d_copies += 1;
        self.counters.d2d_bytes += bytes as u64;
        let (lat, bw, staged) = self.spec.pair_copy_params(src.device, dst.device);
        let t = if self.transfer_timing {
            lat + bytes as f64 / bw
        } else {
            0.0
        };
        for i in 0..count {
            let off = offset + i * stride;
            self.move_bytes_d2d(src, off, dst, off, run)?;
        }
        let mut start = self
            .host_now
            .max(self.devices[src.device].copy_busy_until)
            .max(self.devices[dst.device].copy_busy_until);
        for &d in deps {
            start = start.max(d);
        }
        if staged {
            start = start.max(self.link_busy_until);
        }
        let end = start + t;
        self.devices[src.device].copy_busy_until = end;
        self.devices[dst.device].copy_busy_until = end;
        if staged {
            self.link_busy_until = end;
        }
        self.breakdown.transfer += t;
        Ok(end)
    }

    /// Validate a strided copy's shape against both endpoints; returns
    /// `(span, payload bytes)`.
    fn check_strided(
        src: &DevBuf,
        dst: &DevBuf,
        offset: usize,
        run: usize,
        stride: usize,
        count: usize,
    ) -> Result<(usize, usize)> {
        if count == 0 || run == 0 {
            return Ok((0, 0));
        }
        if stride < run {
            return Err(SimError::BadStride { run, stride });
        }
        let span = (count - 1) * stride + run;
        Self::check_range(src, offset, span)?;
        Self::check_range(dst, offset, span)?;
        Ok((span, run * count))
    }

    /// Launch a kernel asynchronously on device `d`.
    ///
    /// Functional machines execute the grid (rayon-parallel over blocks);
    /// all machines charge the roofline time model, calibrated by sampling
    /// threads in counting mode.
    pub fn launch(
        &mut self,
        d: usize,
        kernel: &Kernel,
        args: &[SimArg],
        grid_dim: Dim3,
        block_dim: Dim3,
    ) -> Result<()> {
        self.launch_with_traffic(d, kernel, args, grid_dim, block_dim, None)
    }

    /// [`Machine::launch`] with an explicit memory-traffic estimate.
    ///
    /// `traffic` is the number of unique bytes the launch touches — for
    /// partitioned kernels the **polyhedral footprint** of the partition
    /// (sum of the read/write enumerator ranges). It feeds the roofline's
    /// bandwidth term and models on-chip reuse: per-thread byte counts
    /// treat every load as a DRAM access, wildly overestimating traffic
    /// for broadcast patterns (N-Body) and tiled reuse (Matmul). Without
    /// a hint the sampled per-thread bytes are used (no-reuse worst case).
    pub fn launch_with_traffic(
        &mut self,
        d: usize,
        kernel: &Kernel,
        args: &[SimArg],
        grid_dim: Dim3,
        block_dim: Dim3,
        traffic: Option<u64>,
    ) -> Result<()> {
        self.launch_core(d, kernel, args, grid_dim, block_dim, traffic, &[])
            .map(|_| ())
    }

    /// Pipelined launch: like [`Machine::launch_with_traffic`], but the
    /// kernel additionally waits for the `deps` event edges (its incoming
    /// halo copies, prior readers of its write buffers) and the completion
    /// time is returned for the caller's dependency DAG.
    #[allow(clippy::too_many_arguments)]
    pub fn launch_pipelined(
        &mut self,
        d: usize,
        kernel: &Kernel,
        args: &[SimArg],
        grid_dim: Dim3,
        block_dim: Dim3,
        traffic: Option<u64>,
        deps: &[SimTime],
    ) -> Result<SimTime> {
        self.launch_core(d, kernel, args, grid_dim, block_dim, traffic, deps)
    }

    #[allow(clippy::too_many_arguments)]
    fn launch_core(
        &mut self,
        d: usize,
        kernel: &Kernel,
        args: &[SimArg],
        grid_dim: Dim3,
        block_dim: Dim3,
        traffic: Option<u64>,
        deps: &[SimTime],
    ) -> Result<SimTime> {
        self.counters.launches += 1;
        // Resolve args to interpreter args; validate buffer residency.
        let mut kargs = Vec::with_capacity(args.len());
        for a in args {
            match a {
                SimArg::Scalar(v) => kargs.push(KernelArg::Scalar(*v)),
                SimArg::Buf(b) => {
                    if b.device != d {
                        return Err(SimError::BadBuffer {
                            device: d,
                            handle: b.handle,
                        });
                    }
                    kargs.push(KernelArg::Array(b.handle));
                }
            }
        }
        // Cost model: sample threads (memoized per geometry + scalars).
        let key = KernelTimeKey {
            kernel: kernel.name.clone(),
            device: if self.spec.is_homogeneous() { 0 } else { d },
            grid: grid_dim,
            block: block_dim,
            scalars: kargs
                .iter()
                .filter_map(|a| match a {
                    KernelArg::Scalar(v) => Some(v.as_f64() as i64),
                    _ => None,
                })
                .collect(),
            traffic,
        };
        let t_kernel = match self.kernel_time_cache.get(&key) {
            Some(&t) => t,
            None => {
                let t = self.kernel_time(d, kernel, &kargs, grid_dim, block_dim, traffic)?;
                self.kernel_time_cache.insert(key, t);
                t
            }
        };
        // Host dispatch cost (sequential, like a real cudaLaunchKernel).
        self.charge_host(self.spec.host_per_launch, TimeCat::Application);
        // Functional execution: streamed machines defer it to the flush
        // (partitions on different devices then run concurrently); serial
        // machines run it here on the host thread.
        if self.defer_effects() {
            self.streams[d].push(StreamOp::Kernel {
                kernel: Box::new(kernel.clone()),
                args: kargs,
                grid: grid_dim,
                block: block_dim,
            });
        } else if self.functional {
            let dev = &mut self.devices[d];
            if let DeviceMem::Real(store) = &mut dev.mem {
                run_grid_parallel(kernel, &kargs, grid_dim, block_dim, store.get_mut())?;
            }
        }
        let overhead = self.spec.device_spec(d).launch_overhead;
        let dev = &mut self.devices[d];
        let mut start = self.host_now.max(dev.busy_until);
        for &dep in deps {
            start = start.max(dep);
        }
        let t = overhead + t_kernel;
        dev.busy_until = start + t;
        self.breakdown.app += t;
        Ok(start + t)
    }

    /// Launch a kernel on device `d` and record its **observed write
    /// set** per buffer handle (element ranges, merged). The paper's §11
    /// instrumentation path for statically unmodelable write patterns.
    /// Functional machines only; the recorded launch is charged an
    /// instrumentation penalty on top of the roofline time (the paper's
    /// related work reports "significant runtime overhead" for this
    /// technique, cf. VAST).
    pub fn launch_recording(
        &mut self,
        d: usize,
        kernel: &Kernel,
        args: &[SimArg],
        grid_dim: Dim3,
        block_dim: Dim3,
    ) -> Result<std::collections::HashMap<usize, Vec<(u64, u64)>>> {
        const INSTRUMENTATION_FACTOR: f64 = 2.0;
        if !self.functional {
            return Err(SimError::BadBuffer {
                device: d,
                handle: usize::MAX,
            });
        }
        self.counters.launches += 1;
        let mut kargs = Vec::with_capacity(args.len());
        for a in args {
            match a {
                SimArg::Scalar(v) => kargs.push(KernelArg::Scalar(*v)),
                SimArg::Buf(b) => {
                    if b.device != d {
                        return Err(SimError::BadBuffer {
                            device: d,
                            handle: b.handle,
                        });
                    }
                    kargs.push(KernelArg::Array(b.handle));
                }
            }
        }
        let t_kernel = self.kernel_time(d, kernel, &kargs, grid_dim, block_dim, None)?;
        self.charge_host(self.spec.host_per_launch, TimeCat::Application);
        // Recording needs the final bytes and runs synchronously.
        self.flush_streams();
        let observed = {
            let dev = &mut self.devices[d];
            match &mut dev.mem {
                DeviceMem::Real(store) => {
                    let (_, obs) = crate::shadow::run_grid_recording(
                        kernel,
                        &kargs,
                        grid_dim,
                        block_dim,
                        store.get_mut(),
                    )?;
                    obs
                }
                DeviceMem::Virtual(_) => unreachable!("checked functional above"),
            }
        };
        let overhead = self.spec.device_spec(d).launch_overhead;
        let dev = &mut self.devices[d];
        let start = self.host_now.max(dev.busy_until);
        let t = overhead + t_kernel * INSTRUMENTATION_FACTOR;
        dev.busy_until = start + t;
        self.breakdown.app += t;
        Ok(observed)
    }

    /// Roofline kernel-time estimate from sampled per-thread statistics,
    /// priced with device `d`'s spec.
    fn kernel_time(
        &self,
        d: usize,
        kernel: &Kernel,
        args: &[KernelArg],
        grid_dim: Dim3,
        block_dim: Dim3,
        traffic: Option<u64>,
    ) -> Result<SimTime> {
        let total_threads = grid_dim.count() * block_dim.count();
        if total_threads == 0 {
            return Ok(0.0);
        }
        let profile = sample_kernel_profile(kernel, args, grid_dim, block_dim)?;
        let flops = profile.flops_per_thread * total_threads as f64;
        let intops = profile.intops_per_thread * total_threads as f64;
        // Memory traffic: the polyhedral footprint when provided (models
        // on-chip reuse), else the no-reuse per-thread total.
        let bytes = match traffic {
            Some(t) => t as f64,
            None => profile.bytes_per_thread * total_threads as f64,
        };
        let spec = self.spec.device_spec(d);
        let t = (flops / spec.flops)
            .max(intops / spec.int_ops)
            .max(bytes / spec.mem_bw);
        Ok(t)
    }

    /// Block host until device `d` is idle (cudaStreamSynchronize-like).
    /// All streams are flushed: a peer copy on `d` may depend on another
    /// device's stream, so a partial drain could not make progress.
    pub fn sync_device(&mut self, d: usize) -> Result<()> {
        self.flush_streams();
        let dev = self.device(d)?;
        let busy = dev.busy_until.max(dev.copy_busy_until);
        self.host_now = self.host_now.max(busy);
        Ok(())
    }

    /// Advance the host clock to `t` (no-op when already past). The
    /// launch-ahead pipeline uses this to model the host blocking on an
    /// in-flight launch when the window is full or flushed.
    pub fn join_host(&mut self, t: SimTime) {
        self.host_now = self.host_now.max(t);
    }

    /// Current event token of device `d`'s stream: the number of ops
    /// submitted so far. A peer passing this to
    /// [`Machine::stream_wait_cross`] waits for everything submitted to
    /// `d` up to this point.
    pub fn stream_mark(&self, d: usize) -> u64 {
        self.streams[d].submitted
    }

    /// Queue a cross-stream event wait: device `waiter`'s stream stalls
    /// until device `source`'s stream has completed `event` ops. Only
    /// meaningful on streamed functional machines; a no-op otherwise.
    /// Deadlock-free as long as `event` refers to ops submitted strictly
    /// before this call (host submission is a total order).
    pub fn stream_wait_cross(&mut self, waiter: usize, source: usize, event: u64) {
        if !self.defer_effects() || waiter == source {
            return;
        }
        self.streams[waiter].push(StreamOp::WaitEvent {
            device: source,
            event,
        });
    }

    /// Block host until all devices are idle (cudaDeviceSynchronize over
    /// every device — the runtime's replacement semantics, §8.4).
    ///
    /// Panics if a stream worker hit a deferred error since the last
    /// sync; use [`Machine::try_sync_all`] to handle it instead.
    pub fn sync_all(&mut self) {
        self.try_sync_all()
            .expect("deferred stream error at sync_all");
    }

    /// [`Machine::sync_all`], surfacing deferred stream-worker errors
    /// (e.g. a kernel interpretation failure inside a queued launch).
    pub fn try_sync_all(&mut self) -> Result<()> {
        self.flush_streams();
        for dev in &self.devices {
            self.host_now = self.host_now.max(dev.busy_until).max(dev.copy_busy_until);
        }
        match self.stream_error.get_mut().take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Read back a whole device buffer (functional machines only; test
    /// helper that bypasses the clock).
    pub fn debug_read(&self, buf: DevBuf) -> Option<Vec<u8>> {
        self.flush_streams();
        match &self.devices[buf.device].mem {
            DeviceMem::Real(store) => Some(store.read().bytes(buf.handle).to_vec()),
            DeviceMem::Virtual(_) => None,
        }
    }

    /// Write a whole device buffer directly (functional test helper).
    pub fn debug_write(&mut self, buf: DevBuf, data: &[u8]) {
        self.flush_streams();
        if let DeviceMem::Real(store) = &mut self.devices[buf.device].mem {
            store.get_mut().bytes_mut(buf.handle)[..data.len()].copy_from_slice(data);
        }
    }
}

/// Average per-thread operation counts of one kernel launch, measured by
/// sampling representative threads in counting mode.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ThreadProfile {
    pub flops_per_thread: f64,
    pub intops_per_thread: f64,
    /// No-reuse per-thread DRAM bytes (every load/store counted).
    pub bytes_per_thread: f64,
}

/// Sample a kernel's per-thread cost profile: execute a few
/// representative threads (first/middle/last blocks × threads) in
/// counting mode and average the counters. Counting mode never
/// dereferences array arguments, so placeholder handles
/// (`KernelArg::Array(0)`) are fine — this is how the partitioning
/// autotuner profiles a kernel without a machine.
pub fn sample_kernel_profile(
    kernel: &Kernel,
    args: &[KernelArg],
    grid_dim: Dim3,
    block_dim: Dim3,
) -> Result<ThreadProfile> {
    let mut probe = BufStore::new();
    let blocks = sample_indices(grid_dim);
    let threads = sample_indices(block_dim);
    let mut agg = ExecStats::default();
    let mut n_samples = 0u64;
    for &b in &blocks {
        for &t in &threads {
            let ctx = ThreadCtx {
                block_idx: b,
                thread_idx: t,
                block_dim,
                grid_dim,
            };
            let s = execute_thread(kernel, args, ctx, &mut probe, ExecMode::CountOnly)?;
            agg.add(&s);
            n_samples += 1;
        }
    }
    if n_samples == 0 {
        return Ok(ThreadProfile::default());
    }
    Ok(ThreadProfile {
        flops_per_thread: agg.flops as f64 / n_samples as f64,
        intops_per_thread: agg.int_ops as f64 / n_samples as f64,
        bytes_per_thread: agg.bytes_total() as f64 / n_samples as f64,
    })
}

/// Up to 3 sample coordinates per axis: first, middle, last.
fn sample_indices(extent: Dim3) -> Vec<Dim3> {
    fn picks(n: u32) -> Vec<u32> {
        match n {
            0 => vec![],
            1 => vec![0],
            2 => vec![0, 1],
            _ => vec![0, n / 2, n - 1],
        }
    }
    let mut out = Vec::new();
    for z in picks(extent.z) {
        for y in picks(extent.y) {
            for x in picks(extent.x) {
                out.push(Dim3::new3(x, y, z));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::MachineSpec;
    use mekong_kernel::builder::*;
    use mekong_kernel::Kernel;

    fn saxpy() -> Kernel {
        Kernel {
            name: "saxpy".into(),
            params: vec![
                scalar("n"),
                array_f32("x", &[ext("n")]),
                array_f32("y", &[ext("n")]),
            ],
            body: vec![
                let_("i", global_x()),
                guard_return(v("i").ge(v("n"))),
                store(
                    "y",
                    vec![v("i")],
                    load("x", vec![v("i")]) * f(2.0) + load("y", vec![v("i")]),
                ),
            ],
        }
    }

    #[test]
    fn functional_roundtrip_h2d_kernel_d2h() {
        let mut m = Machine::new(MachineSpec::kepler_system(2), true);
        let n = 1024usize;
        let x = m.alloc(0, n * 4).unwrap();
        let y = m.alloc(0, n * 4).unwrap();
        let host_x: Vec<u8> = (0..n).flat_map(|i| (i as f32).to_le_bytes()).collect();
        m.copy_h2d(&host_x, x, 0, false).unwrap();
        m.copy_h2d(&vec![0u8; n * 4], y, 0, false).unwrap();
        m.launch(
            0,
            &saxpy(),
            &[
                SimArg::Scalar(Value::I64(n as i64)),
                SimArg::Buf(x),
                SimArg::Buf(y),
            ],
            Dim3::new1(8),
            Dim3::new1(128),
        )
        .unwrap();
        m.sync_all();
        let mut out = vec![0u8; n * 4];
        m.copy_d2h(y, 0, &mut out, false).unwrap();
        let vals: Vec<f32> = out
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(*v, 2.0 * i as f32);
        }
        assert!(m.now() > 0.0);
        let c = m.counters();
        assert_eq!(c.launches, 1);
        assert_eq!(c.h2d_copies, 2);
        assert_eq!(c.d2h_copies, 1);
    }

    #[test]
    fn launches_on_different_devices_overlap() {
        let mut m = Machine::new(MachineSpec::kepler_system(4), false);
        let n = 1 << 22;
        let bufs: Vec<_> = (0..4)
            .map(|d| (m.alloc(d, n * 4).unwrap(), m.alloc(d, n * 4).unwrap()))
            .collect();
        let k = saxpy();
        let grid = Dim3::new1((n / 256) as u32);
        let block = Dim3::new1(256);
        // One device alone:
        m.launch(
            0,
            &k,
            &[
                SimArg::Scalar(Value::I64(n as i64)),
                SimArg::Buf(bufs[0].0),
                SimArg::Buf(bufs[0].1),
            ],
            grid,
            block,
        )
        .unwrap();
        m.sync_all();
        let t1 = m.now();
        // Four devices concurrently, quarter the grid each:
        m.reset_clock();
        let qgrid = Dim3::new1((n / 256 / 4) as u32);
        for (d, b) in bufs.iter().enumerate() {
            m.launch(
                d,
                &k,
                &[
                    SimArg::Scalar(Value::I64(n as i64)),
                    SimArg::Buf(b.0),
                    SimArg::Buf(b.1),
                ],
                qgrid,
                block,
            )
            .unwrap();
        }
        m.sync_all();
        let t4 = m.now();
        assert!(t4 < t1, "4-way split {t4} should beat single {t1}");
        assert!(t4 > t1 / 8.0, "overheads keep it under 8x");
    }

    #[test]
    fn host_staged_peer_copies_serialize_globally() {
        // Two copies on disjoint device pairs: with host staging they
        // serialize on the staging engine; without, they overlap.
        let run = |staged: bool| -> f64 {
            let mut spec = MachineSpec::kepler_system(4);
            spec.link.host_staged = staged;
            let mut m = Machine::new(spec, false);
            let a = m.alloc(0, 1 << 24).unwrap();
            let b = m.alloc(1, 1 << 24).unwrap();
            let c = m.alloc(2, 1 << 24).unwrap();
            let d = m.alloc(3, 1 << 24).unwrap();
            m.copy_d2d(a, 0, b, 0, 1 << 24).unwrap();
            m.copy_d2d(c, 0, d, 0, 1 << 24).unwrap();
            m.sync_all();
            m.now()
        };
        let serialized = run(true);
        let overlapped = run(false);
        assert!(
            serialized > 1.8 * overlapped,
            "serialized {serialized} vs overlapped {overlapped}"
        );
    }

    #[test]
    fn strided_copy_is_one_transaction() {
        // Functional correctness: only the strided runs move.
        let mut m = Machine::new(MachineSpec::kepler_system(2), true);
        let a = m.alloc(0, 64).unwrap();
        let b = m.alloc(1, 64).unwrap();
        m.copy_h2d(&[7u8; 64], a, 0, false).unwrap();
        m.copy_h2d(&[0u8; 64], b, 0, false).unwrap();
        // 3 runs of 4 bytes, 16 apart, starting at offset 4.
        m.copy_d2d_strided(a, b, 4, 4, 16, 3).unwrap();
        let mut out = [0u8; 64];
        m.copy_d2h(b, 0, &mut out, false).unwrap();
        for (i, &v) in out.iter().enumerate() {
            let in_run = (4..40).contains(&i) && (i - 4) % 16 < 4;
            assert_eq!(v, if in_run { 7 } else { 0 }, "byte {i}");
        }
        assert_eq!(m.counters().d2d_copies, 1);
        assert_eq!(m.counters().d2d_bytes, 12);

        // Timing: one latency for the whole lattice of runs, vs one
        // per run for the plain copies.
        let time_of = |strided: bool| -> f64 {
            let mut m = Machine::new(MachineSpec::kepler_system(2), false);
            let a = m.alloc(0, 1 << 20).unwrap();
            let b = m.alloc(1, 1 << 20).unwrap();
            if strided {
                m.copy_d2d_strided(a, b, 0, 64, 4096, 128).unwrap();
            } else {
                for i in 0..128 {
                    m.copy_d2d(a, i * 4096, b, i * 4096, 64).unwrap();
                }
            }
            m.sync_all();
            m.now()
        };
        let lat = MachineSpec::kepler_system(2).link.latency;
        assert!(time_of(false) - time_of(true) > 120.0 * lat);
        // Degenerate shapes are rejected or no-ops.
        let mut m = Machine::new(MachineSpec::kepler_system(2), true);
        let a = m.alloc(0, 64).unwrap();
        let b = m.alloc(1, 64).unwrap();
        assert!(m.copy_d2d_strided(a, b, 0, 8, 4, 2).is_err()); // stride < run
        m.copy_d2d_strided(a, b, 0, 4, 16, 0).unwrap(); // count 0: no-op
        assert_eq!(m.counters().d2d_copies, 0);
    }

    #[test]
    fn beta_config_zeroes_transfer_time() {
        let mut m = Machine::new(MachineSpec::kepler_system(2), false);
        m.set_transfer_timing(false);
        let a = m.alloc(0, 1 << 20).unwrap();
        let b = m.alloc(1, 1 << 20).unwrap();
        m.copy_d2d(a, 0, b, 0, 1 << 20).unwrap();
        m.copy_h2d(&vec![0u8; 1024], a, 0, false).unwrap();
        m.sync_all();
        assert_eq!(m.now(), 0.0);
        // The data still "moves" — counters record it.
        assert_eq!(m.counters().d2d_copies, 1);
    }

    #[test]
    fn gamma_config_zeroes_pattern_time() {
        let mut m = Machine::new(MachineSpec::kepler_system(1), false);
        m.charge_host(1.0, TimeCat::Pattern);
        assert_eq!(m.now(), 1.0);
        m.reset_clock();
        m.set_pattern_timing(false);
        m.charge_host(1.0, TimeCat::Pattern);
        assert_eq!(m.now(), 0.0);
    }

    #[test]
    fn copy_bounds_are_checked() {
        let mut m = Machine::new(MachineSpec::kepler_system(1), true);
        let a = m.alloc(0, 16).unwrap();
        let err = m.copy_h2d(&[0u8; 32], a, 0, false).unwrap_err();
        assert!(matches!(err, SimError::CopyOutOfRange { .. }));
        let err = m
            .launch(
                0,
                &saxpy(),
                &[
                    SimArg::Scalar(Value::I64(1)),
                    SimArg::Buf(DevBuf {
                        device: 1,
                        handle: 0,
                        len: 4,
                    }),
                    SimArg::Buf(a),
                ],
                Dim3::new1(1),
                Dim3::new1(1),
            )
            .unwrap_err();
        assert!(matches!(err, SimError::BadBuffer { .. }));
    }

    #[test]
    fn mem_bound_kernel_time_tracks_bytes() {
        // saxpy moves 12 bytes/thread; time ≈ threads*12/mem_bw.
        let m = Machine::new(MachineSpec::kepler_system(1), false);
        let k = saxpy();
        let n: u64 = 1 << 24;
        let grid = Dim3::new1((n / 256) as u32);
        let block = Dim3::new1(256);
        let args = [
            KernelArg::Scalar(Value::I64(n as i64)),
            KernelArg::Array(0),
            KernelArg::Array(1),
        ];
        let t = m.kernel_time(0, &k, &args, grid, block, None).unwrap();
        let expect = (n as f64) * 12.0 / m.spec().device.mem_bw;
        assert!((t / expect - 1.0).abs() < 0.2, "t={t}, expect={expect}");
    }

    #[test]
    fn debug_read_none_in_perf_mode() {
        let mut m = Machine::new(MachineSpec::kepler_system(1), false);
        let a = m.alloc(0, 64).unwrap();
        assert!(m.debug_read(a).is_none());
    }

    /// Run saxpy across `n_dev` devices followed by a ring of peer
    /// copies, then gather everything; returns (bytes per device, clock,
    /// counters).
    fn ring_workload(streamed: bool) -> (Vec<Vec<u8>>, SimTime, OpCounters) {
        let n_dev = 4;
        let n = 256usize;
        let mut m = Machine::new(MachineSpec::kepler_system(n_dev), true);
        m.set_streamed(streamed);
        let k = saxpy();
        let bufs: Vec<_> = (0..n_dev)
            .map(|d| (m.alloc(d, n * 4).unwrap(), m.alloc(d, n * 4).unwrap()))
            .collect();
        for (d, (x, y)) in bufs.iter().enumerate() {
            let host: Vec<u8> = (0..n)
                .flat_map(|i| ((d * n + i) as f32).to_le_bytes())
                .collect();
            m.copy_h2d(&host, *x, 0, true).unwrap();
            m.copy_h2d(&vec![0u8; n * 4], *y, 0, true).unwrap();
            m.launch(
                d,
                &k,
                &[
                    SimArg::Scalar(Value::I64(n as i64)),
                    SimArg::Buf(*x),
                    SimArg::Buf(*y),
                ],
                Dim3::new1(2),
                Dim3::new1(128),
            )
            .unwrap();
        }
        // Ring: each device's second half becomes its neighbor's first
        // half — every copy depends on the source device's kernel.
        for d in 0..n_dev {
            let next = (d + 1) % n_dev;
            m.copy_d2d(bufs[d].1, n * 2, bufs[next].1, 0, n * 2)
                .unwrap();
        }
        m.sync_all();
        let out = bufs
            .iter()
            .map(|(_, y)| m.debug_read(*y).unwrap())
            .collect();
        (out, m.now(), m.counters())
    }

    #[test]
    fn streamed_and_serial_execution_agree() {
        let (serial_mem, serial_t, serial_c) = ring_workload(false);
        let (streamed_mem, streamed_t, streamed_c) = ring_workload(true);
        // Byte-for-byte identical memory, identical simulated clock and
        // counters: streams change wall-clock scheduling only.
        assert_eq!(serial_mem, streamed_mem);
        assert_eq!(serial_t, streamed_t);
        assert_eq!(serial_c, streamed_c);
        // Sanity: the ring actually moved kernel output around.
        let vals: Vec<f32> = streamed_mem[1][..8]
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        // Device 1's first half came from device 0's second half:
        // y[i] = 2*x[i] with x[i] = i, second half starts at i = 128.
        assert_eq!(vals[0], 2.0 * 128.0);
    }

    #[test]
    fn peer_copy_waits_for_source_kernel_event() {
        // Submit kernel on device 0 and immediately a D2D to device 1;
        // under streams the copy's worker must block on device 0's event
        // or it would read zeros.
        let n = 512usize;
        let mut m = Machine::new(MachineSpec::kepler_system(2), true);
        assert!(m.is_streamed(), "streams are on by default");
        let x = m.alloc(0, n * 4).unwrap();
        let y = m.alloc(0, n * 4).unwrap();
        let z = m.alloc(1, n * 4).unwrap();
        let host: Vec<u8> = (0..n).flat_map(|i| (i as f32).to_le_bytes()).collect();
        m.copy_h2d(&host, x, 0, true).unwrap();
        m.copy_h2d(&vec![0u8; n * 4], y, 0, true).unwrap();
        m.launch(
            0,
            &saxpy(),
            &[
                SimArg::Scalar(Value::I64(n as i64)),
                SimArg::Buf(x),
                SimArg::Buf(y),
            ],
            Dim3::new1(4),
            Dim3::new1(128),
        )
        .unwrap();
        m.copy_d2d(y, 0, z, 0, n * 4).unwrap();
        m.sync_all();
        let out = m.debug_read(z).unwrap();
        for (i, c) in out.chunks_exact(4).enumerate() {
            let v = f32::from_le_bytes(c.try_into().unwrap());
            assert_eq!(v, 2.0 * i as f32, "element {i}");
        }
    }

    #[test]
    fn deferred_kernel_error_surfaces_at_sync() {
        // An out-of-bounds store only fails when the deferred kernel op
        // actually runs; try_sync_all must hand the error back.
        let bad = Kernel {
            name: "oob".into(),
            params: vec![scalar("n"), array_f32("y", &[ext("n")])],
            body: vec![store("y", vec![i(1 << 20)], f(1.0))],
        };
        let mut m = Machine::new(MachineSpec::kepler_system(1), true);
        let y = m.alloc(0, 64).unwrap();
        m.launch(
            0,
            &bad,
            &[SimArg::Scalar(Value::I64(16)), SimArg::Buf(y)],
            Dim3::new1(1),
            Dim3::new1(1),
        )
        .unwrap();
        let err = m.try_sync_all().unwrap_err();
        assert!(matches!(err, SimError::Kernel(_)), "{err}");
        // The error is consumed: the machine is usable again.
        m.try_sync_all().unwrap();
    }

    #[test]
    fn set_streamed_false_falls_back_to_serial() {
        let mut m = Machine::new(MachineSpec::kepler_system(2), true);
        m.set_streamed(false);
        let a = m.alloc(0, 16).unwrap();
        m.copy_h2d(&[7u8; 16], a, 0, false).unwrap();
        // Serial engine applies effects at submission: visible without
        // any sync (debug_read flushes, but there is nothing queued).
        assert_eq!(m.debug_read(a).unwrap(), vec![7u8; 16]);
    }

    #[test]
    fn pipelined_copy_overlaps_compute_clock() {
        // A pipelined peer copy runs on the copy engines: it must not
        // push either endpoint's compute clock, and a subsequent launch
        // gated only on the compute clock starts as if no copy happened.
        let mut m = Machine::new(MachineSpec::kepler_system(2), false);
        let n = 1 << 20;
        let a0 = m.alloc(0, n * 4).unwrap();
        let a1 = m.alloc(1, n * 4).unwrap();
        let y0 = m.alloc(0, n * 4).unwrap();
        let k = saxpy();
        let grid = Dim3::new1((n / 256) as u32);
        let block = Dim3::new1(256);
        let args = [
            SimArg::Scalar(Value::I64(n as i64)),
            SimArg::Buf(a0),
            SimArg::Buf(y0),
        ];
        // Baseline: two launches back to back.
        m.launch(0, &k, &args, grid, block).unwrap();
        m.launch(0, &k, &args, grid, block).unwrap();
        m.sync_all();
        let t_serial_launches = m.now();
        // Same two launches with a large peer copy pipelined between
        // them: the copy overlaps, so the compute-critical path is
        // unchanged and sync time is the max of the two engines.
        m.reset_clock();
        m.launch(0, &k, &args, grid, block).unwrap();
        let copy_end = m.copy_d2d_pipelined(a0, 0, a1, 0, n * 4, &[]).unwrap();
        m.launch(0, &k, &args, grid, block).unwrap();
        m.sync_all();
        let t_pipe = m.now();
        assert!(copy_end > 0.0);
        assert!(
            t_pipe <= t_serial_launches.max(copy_end) + 1e-12,
            "pipelined copy must overlap: {t_pipe} vs launches {t_serial_launches} copy {copy_end}"
        );
        // The eager copy path serializes on the device clock instead.
        m.reset_clock();
        m.launch(0, &k, &args, grid, block).unwrap();
        m.copy_d2d(a0, 0, a1, 0, n * 4).unwrap();
        m.launch(0, &k, &args, grid, block).unwrap();
        m.sync_all();
        let t_eager = m.now();
        assert!(
            t_pipe < t_eager,
            "overlap should beat serialization: {t_pipe} vs {t_eager}"
        );
    }

    #[test]
    fn pipelined_launch_waits_for_dep_edges() {
        let mut m = Machine::new(MachineSpec::kepler_system(1), false);
        let n = 4096usize;
        let x = m.alloc(0, n * 4).unwrap();
        let y = m.alloc(0, n * 4).unwrap();
        let k = saxpy();
        let args = [
            SimArg::Scalar(Value::I64(n as i64)),
            SimArg::Buf(x),
            SimArg::Buf(y),
        ];
        let dep = 5.0; // far in the simulated future
        let end = m
            .launch_pipelined(0, &k, &args, Dim3::new1(16), Dim3::new1(256), None, &[dep])
            .unwrap();
        assert!(end > dep, "launch must start after its event edge");
        m.sync_all();
        assert!(m.now() >= end);
    }

    #[test]
    fn cross_stream_wait_orders_writer_after_inflight_reader() {
        // Device 1 snapshots x from device 0 (peer copy), then device 0
        // overwrites x. Without the cross-stream wait the overwrite could
        // race the snapshot during the flush; with it, device 0's kernel
        // stalls until the copy completed, so device 1 always sees the
        // pre-overwrite bytes.
        for _ in 0..64 {
            let mut m = Machine::new(MachineSpec::kepler_system(2), true);
            let n = 1024usize;
            let x0 = m.alloc(0, n * 4).unwrap();
            let y0 = m.alloc(0, n * 4).unwrap();
            let x1 = m.alloc(1, n * 4).unwrap();
            let host: Vec<u8> = (0..n).flat_map(|i| (i as f32).to_le_bytes()).collect();
            m.copy_h2d(&host, x0, 0, false).unwrap();
            m.copy_h2d(&vec![0u8; n * 4], y0, 0, false).unwrap();
            // Reader: snapshot x0 into device 1.
            m.copy_d2d(x0, 0, x1, 0, n * 4).unwrap();
            let token = m.stream_mark(1);
            // Writer: saxpy writes y0 but ALSO overwrite x0 afterwards to
            // model an in-place producer (swap roles: y=2x+y writes y; we
            // overwrite x0 via h2d-deferred write below the wait).
            m.stream_wait_cross(0, 1, token);
            m.copy_h2d(&vec![0xFFu8; n * 4], x0, 0, true).unwrap();
            m.sync_all();
            let got = m.debug_read(x1).unwrap();
            assert_eq!(got, host, "reader must observe pre-overwrite bytes");
        }
    }
}
