//! The simulated multi-GPU machine: device memories + clocks.

use crate::shadow::{run_grid_parallel, BufStore};
use crate::spec::MachineSpec;
use crate::{Result, SimError};
use mekong_kernel::interp::{ExecMode, KernelArg};
use mekong_kernel::{execute_thread, Dim3, ExecStats, Kernel, ThreadCtx, Value};

/// Simulated time, in seconds.
pub type SimTime = f64;

/// What a charged time interval was spent on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeCat {
    /// Kernel execution (and launch overhead) — present in the
    /// single-device baseline too.
    Application,
    /// Inter-device / host-device data movement.
    Transfer,
    /// Host-side metadata work: enumerator runs, tracker queries and
    /// updates ("Patterns" in Figure 7).
    Pattern,
}

/// Accumulated simulated time per category (informational; the Figure 7
/// breakdown is *measured* via α/β/γ configurations like the paper does).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TimeBreakdown {
    pub app: SimTime,
    pub transfer: SimTime,
    pub pattern: SimTime,
}

/// A buffer living on one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DevBuf {
    pub device: usize,
    pub handle: usize,
    pub len: usize,
}

enum DeviceMem {
    /// Functional mode: real bytes.
    Real(BufStore),
    /// Performance mode: sizes only.
    Virtual(Vec<usize>),
}

struct Device {
    mem: DeviceMem,
    busy_until: SimTime,
}

/// Operation counters (inspected by tests and the benchmark harness).
#[derive(Debug, Clone, Copy, Default)]
pub struct OpCounters {
    pub launches: u64,
    pub h2d_copies: u64,
    pub d2h_copies: u64,
    pub d2d_copies: u64,
    pub h2d_bytes: u64,
    pub d2h_bytes: u64,
    pub d2d_bytes: u64,
}

/// A kernel launch argument at the machine level.
#[derive(Debug, Clone, Copy)]
pub enum SimArg {
    Scalar(Value),
    Buf(DevBuf),
}

/// The simulated machine.
pub struct Machine {
    spec: MachineSpec,
    functional: bool,
    devices: Vec<Device>,
    host_now: SimTime,
    breakdown: TimeBreakdown,
    counters: OpCounters,
    /// β configuration: transfers execute (functionally) but cost no time.
    transfer_timing: bool,
    /// γ configuration: pattern charges cost no time.
    pattern_timing: bool,
    /// The host staging engine: when `link.host_staged`, peer copies
    /// serialize on this shared resource.
    link_busy_until: SimTime,
    /// Memoized roofline kernel times. The estimate depends only on the
    /// kernel, the launch geometry and the scalar arguments — iterative
    /// workloads relaunch identical configurations thousands of times.
    kernel_time_cache: std::collections::HashMap<KernelTimeKey, SimTime>,
}

/// Cache key for the roofline estimate.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct KernelTimeKey {
    kernel: String,
    grid: Dim3,
    block: Dim3,
    scalars: Vec<i64>,
    traffic: Option<u64>,
}

impl Machine {
    /// Create a machine. `functional = true` materializes device memory
    /// and executes kernels on real data; `false` is performance mode
    /// (metadata and timing only).
    pub fn new(spec: MachineSpec, functional: bool) -> Machine {
        let devices = (0..spec.n_devices)
            .map(|_| Device {
                mem: if functional {
                    DeviceMem::Real(BufStore::new())
                } else {
                    DeviceMem::Virtual(Vec::new())
                },
                busy_until: 0.0,
            })
            .collect();
        Machine {
            spec,
            functional,
            devices,
            host_now: 0.0,
            breakdown: TimeBreakdown::default(),
            counters: OpCounters::default(),
            transfer_timing: true,
            pattern_timing: true,
            link_busy_until: 0.0,
            kernel_time_cache: std::collections::HashMap::new(),
        }
    }

    /// The machine specification.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// Number of devices.
    pub fn n_devices(&self) -> usize {
        self.spec.n_devices
    }

    /// Is this a functional (data-materializing) machine?
    pub fn is_functional(&self) -> bool {
        self.functional
    }

    /// Disable/enable transfer timing (the paper's β measurement: "execution
    /// with disabled transfers, but dependency resolution and tracker
    /// updates are performed").
    pub fn set_transfer_timing(&mut self, on: bool) {
        self.transfer_timing = on;
    }

    /// Disable/enable pattern timing (γ: "disabled dependency resolution
    /// and tracker updates").
    pub fn set_pattern_timing(&mut self, on: bool) {
        self.pattern_timing = on;
    }

    /// Current host clock.
    pub fn now(&self) -> SimTime {
        self.host_now
    }

    /// Informational time breakdown.
    pub fn breakdown(&self) -> TimeBreakdown {
        self.breakdown
    }

    /// Operation counters.
    pub fn counters(&self) -> OpCounters {
        self.counters
    }

    /// Reset clocks, breakdown and counters (memory contents stay).
    pub fn reset_clock(&mut self) {
        self.host_now = 0.0;
        self.breakdown = TimeBreakdown::default();
        self.counters = OpCounters::default();
        self.link_busy_until = 0.0;
        for d in &mut self.devices {
            d.busy_until = 0.0;
        }
    }

    fn device(&mut self, d: usize) -> Result<&mut Device> {
        let n = self.devices.len();
        self.devices
            .get_mut(d)
            .ok_or(SimError::NoSuchDevice {
                device: d,
                n_devices: n,
            })
    }

    /// Allocate `bytes` on device `d`.
    pub fn alloc(&mut self, d: usize, bytes: usize) -> Result<DevBuf> {
        let dev = self.device(d)?;
        let handle = match &mut dev.mem {
            DeviceMem::Real(store) => store.alloc(bytes),
            DeviceMem::Virtual(sizes) => {
                sizes.push(bytes);
                sizes.len() - 1
            }
        };
        Ok(DevBuf {
            device: d,
            handle,
            len: bytes,
        })
    }

    fn check_range(buf: &DevBuf, offset: usize, len: usize) -> Result<()> {
        if offset + len > buf.len {
            return Err(SimError::CopyOutOfRange {
                buffer_len: buf.len,
                offset,
                len,
            });
        }
        Ok(())
    }

    /// Charge host-side work of the given category (advances the host
    /// clock; devices keep running).
    pub fn charge_host(&mut self, seconds: SimTime, cat: TimeCat) {
        let seconds = match cat {
            TimeCat::Pattern if !self.pattern_timing => 0.0,
            TimeCat::Transfer if !self.transfer_timing => 0.0,
            _ => seconds,
        };
        self.host_now += seconds;
        match cat {
            TimeCat::Application => self.breakdown.app += seconds,
            TimeCat::Transfer => self.breakdown.transfer += seconds,
            TimeCat::Pattern => self.breakdown.pattern += seconds,
        }
    }

    /// Host → device copy. Synchronous unless `async_`.
    pub fn copy_h2d(
        &mut self,
        src: &[u8],
        dst: DevBuf,
        dst_offset: usize,
        async_: bool,
    ) -> Result<()> {
        Self::check_range(&dst, dst_offset, src.len())?;
        self.counters.h2d_copies += 1;
        self.counters.h2d_bytes += src.len() as u64;
        let t = if self.transfer_timing {
            self.spec.h2d_latency + src.len() as f64 / self.spec.h2d_bandwidth
        } else {
            0.0
        };
        self.device(dst.device)?;
        let host_now = self.host_now;
        let dev = &mut self.devices[dst.device];
        if let DeviceMem::Real(store) = &mut dev.mem {
            store.bytes_mut(dst.handle)[dst_offset..dst_offset + src.len()].copy_from_slice(src);
        }
        let start = host_now.max(dev.busy_until);
        dev.busy_until = start + t;
        let busy = dev.busy_until;
        self.breakdown.transfer += t;
        if !async_ {
            self.host_now = busy;
        }
        Ok(())
    }

    /// Device → host copy. Synchronous unless `async_`.
    pub fn copy_d2h(
        &mut self,
        src: DevBuf,
        src_offset: usize,
        dst: &mut [u8],
        async_: bool,
    ) -> Result<()> {
        Self::check_range(&src, src_offset, dst.len())?;
        self.counters.d2h_copies += 1;
        self.counters.d2h_bytes += dst.len() as u64;
        let t = if self.transfer_timing {
            self.spec.h2d_latency + dst.len() as f64 / self.spec.h2d_bandwidth
        } else {
            0.0
        };
        self.device(src.device)?;
        let host_now = self.host_now;
        let dev = &mut self.devices[src.device];
        if let DeviceMem::Real(store) = &dev.mem {
            dst.copy_from_slice(&store.bytes(src.handle)[src_offset..src_offset + dst.len()]);
        }
        let start = host_now.max(dev.busy_until);
        dev.busy_until = start + t;
        let busy = dev.busy_until;
        self.breakdown.transfer += t;
        if !async_ {
            self.host_now = busy;
        }
        Ok(())
    }

    /// Host → device copy without host data: timing and counters only.
    /// For performance-mode harnesses where no host payload exists.
    pub fn copy_h2d_timed(&mut self, dst: DevBuf, dst_offset: usize, len: usize, async_: bool) -> Result<()> {
        Self::check_range(&dst, dst_offset, len)?;
        self.counters.h2d_copies += 1;
        self.counters.h2d_bytes += len as u64;
        let t = if self.transfer_timing {
            self.spec.h2d_latency + len as f64 / self.spec.h2d_bandwidth
        } else {
            0.0
        };
        self.device(dst.device)?;
        let host_now = self.host_now;
        let dev = &mut self.devices[dst.device];
        let start = host_now.max(dev.busy_until);
        dev.busy_until = start + t;
        let busy = dev.busy_until;
        self.breakdown.transfer += t;
        if !async_ {
            self.host_now = busy;
        }
        Ok(())
    }

    /// Device → host copy without a host destination: timing and counters
    /// only (performance mode).
    pub fn copy_d2h_timed(&mut self, src: DevBuf, src_offset: usize, len: usize, async_: bool) -> Result<()> {
        Self::check_range(&src, src_offset, len)?;
        self.counters.d2h_copies += 1;
        self.counters.d2h_bytes += len as u64;
        let t = if self.transfer_timing {
            self.spec.h2d_latency + len as f64 / self.spec.h2d_bandwidth
        } else {
            0.0
        };
        self.device(src.device)?;
        let host_now = self.host_now;
        let dev = &mut self.devices[src.device];
        let start = host_now.max(dev.busy_until);
        dev.busy_until = start + t;
        let busy = dev.busy_until;
        self.breakdown.transfer += t;
        if !async_ {
            self.host_now = busy;
        }
        Ok(())
    }

    /// Device → device copy (peer). On a host-staged interconnect the
    /// bytes cross PCIe twice. Asynchronous (the runtime's buffer sync
    /// issues these in bulk, paper §8.3).
    pub fn copy_d2d(
        &mut self,
        src: DevBuf,
        src_offset: usize,
        dst: DevBuf,
        dst_offset: usize,
        len: usize,
    ) -> Result<()> {
        Self::check_range(&src, src_offset, len)?;
        Self::check_range(&dst, dst_offset, len)?;
        self.counters.d2d_copies += 1;
        self.counters.d2d_bytes += len as u64;
        let t = if self.transfer_timing {
            self.spec.link.latency + len as f64 / self.spec.link.bandwidth
        } else {
            0.0
        };
        // Move the bytes.
        if self.functional && len > 0 {
            let data: Vec<u8> = {
                let sdev = &self.devices[src.device];
                match &sdev.mem {
                    DeviceMem::Real(store) => {
                        store.bytes(src.handle)[src_offset..src_offset + len].to_vec()
                    }
                    DeviceMem::Virtual(_) => Vec::new(),
                }
            };
            let ddev = self.device(dst.device)?;
            if let DeviceMem::Real(store) = &mut ddev.mem {
                store.bytes_mut(dst.handle)[dst_offset..dst_offset + len].copy_from_slice(&data);
            }
        }
        // Clock: engages both endpoints and, on a host-staged system, the
        // shared staging engine — peer copies then serialize globally.
        let mut start = self
            .host_now
            .max(self.devices[src.device].busy_until)
            .max(self.devices[dst.device].busy_until);
        if self.spec.link.host_staged {
            start = start.max(self.link_busy_until);
        }
        let end = start + t;
        self.devices[src.device].busy_until = end;
        self.devices[dst.device].busy_until = end;
        if self.spec.link.host_staged {
            self.link_busy_until = end;
        }
        self.breakdown.transfer += t;
        Ok(())
    }

    /// Launch a kernel asynchronously on device `d`.
    ///
    /// Functional machines execute the grid (rayon-parallel over blocks);
    /// all machines charge the roofline time model, calibrated by sampling
    /// threads in counting mode.
    pub fn launch(
        &mut self,
        d: usize,
        kernel: &Kernel,
        args: &[SimArg],
        grid_dim: Dim3,
        block_dim: Dim3,
    ) -> Result<()> {
        self.launch_with_traffic(d, kernel, args, grid_dim, block_dim, None)
    }

    /// [`Machine::launch`] with an explicit memory-traffic estimate.
    ///
    /// `traffic` is the number of unique bytes the launch touches — for
    /// partitioned kernels the **polyhedral footprint** of the partition
    /// (sum of the read/write enumerator ranges). It feeds the roofline's
    /// bandwidth term and models on-chip reuse: per-thread byte counts
    /// treat every load as a DRAM access, wildly overestimating traffic
    /// for broadcast patterns (N-Body) and tiled reuse (Matmul). Without
    /// a hint the sampled per-thread bytes are used (no-reuse worst case).
    pub fn launch_with_traffic(
        &mut self,
        d: usize,
        kernel: &Kernel,
        args: &[SimArg],
        grid_dim: Dim3,
        block_dim: Dim3,
        traffic: Option<u64>,
    ) -> Result<()> {
        self.counters.launches += 1;
        // Resolve args to interpreter args; validate buffer residency.
        let mut kargs = Vec::with_capacity(args.len());
        for a in args {
            match a {
                SimArg::Scalar(v) => kargs.push(KernelArg::Scalar(*v)),
                SimArg::Buf(b) => {
                    if b.device != d {
                        return Err(SimError::BadBuffer {
                            device: d,
                            handle: b.handle,
                        });
                    }
                    kargs.push(KernelArg::Array(b.handle));
                }
            }
        }
        // Cost model: sample threads (memoized per geometry + scalars).
        let key = KernelTimeKey {
            kernel: kernel.name.clone(),
            grid: grid_dim,
            block: block_dim,
            scalars: kargs
                .iter()
                .filter_map(|a| match a {
                    KernelArg::Scalar(v) => Some(v.as_f64() as i64),
                    _ => None,
                })
                .collect(),
            traffic,
        };
        let t_kernel = match self.kernel_time_cache.get(&key) {
            Some(&t) => t,
            None => {
                let t = self.kernel_time(kernel, &kargs, grid_dim, block_dim, traffic)?;
                self.kernel_time_cache.insert(key, t);
                t
            }
        };
        // Host dispatch cost (sequential, like a real cudaLaunchKernel).
        self.charge_host(self.spec.host_per_launch, TimeCat::Application);
        // Functional execution.
        if self.functional {
            let dev = &mut self.devices[d];
            if let DeviceMem::Real(store) = &mut dev.mem {
                run_grid_parallel(kernel, &kargs, grid_dim, block_dim, store)?;
            }
        }
        let dev = &mut self.devices[d];
        let start = self.host_now.max(dev.busy_until);
        let t = self.spec.device.launch_overhead + t_kernel;
        dev.busy_until = start + t;
        self.breakdown.app += t;
        Ok(())
    }

    /// Launch a kernel on device `d` and record its **observed write
    /// set** per buffer handle (element ranges, merged). The paper's §11
    /// instrumentation path for statically unmodelable write patterns.
    /// Functional machines only; the recorded launch is charged an
    /// instrumentation penalty on top of the roofline time (the paper's
    /// related work reports "significant runtime overhead" for this
    /// technique, cf. VAST).
    pub fn launch_recording(
        &mut self,
        d: usize,
        kernel: &Kernel,
        args: &[SimArg],
        grid_dim: Dim3,
        block_dim: Dim3,
    ) -> Result<std::collections::HashMap<usize, Vec<(u64, u64)>>> {
        const INSTRUMENTATION_FACTOR: f64 = 2.0;
        if !self.functional {
            return Err(SimError::BadBuffer {
                device: d,
                handle: usize::MAX,
            });
        }
        self.counters.launches += 1;
        let mut kargs = Vec::with_capacity(args.len());
        for a in args {
            match a {
                SimArg::Scalar(v) => kargs.push(KernelArg::Scalar(*v)),
                SimArg::Buf(b) => {
                    if b.device != d {
                        return Err(SimError::BadBuffer {
                            device: d,
                            handle: b.handle,
                        });
                    }
                    kargs.push(KernelArg::Array(b.handle));
                }
            }
        }
        let t_kernel = self.kernel_time(kernel, &kargs, grid_dim, block_dim, None)?;
        self.charge_host(self.spec.host_per_launch, TimeCat::Application);
        let observed = {
            let dev = &mut self.devices[d];
            match &mut dev.mem {
                DeviceMem::Real(store) => {
                    let (_, obs) = crate::shadow::run_grid_recording(
                        kernel, &kargs, grid_dim, block_dim, store,
                    )?;
                    obs
                }
                DeviceMem::Virtual(_) => unreachable!("checked functional above"),
            }
        };
        let dev = &mut self.devices[d];
        let start = self.host_now.max(dev.busy_until);
        let t = self.spec.device.launch_overhead + t_kernel * INSTRUMENTATION_FACTOR;
        dev.busy_until = start + t;
        self.breakdown.app += t;
        Ok(observed)
    }

    /// Roofline kernel-time estimate from sampled per-thread statistics.
    fn kernel_time(
        &self,
        kernel: &Kernel,
        args: &[KernelArg],
        grid_dim: Dim3,
        block_dim: Dim3,
        traffic: Option<u64>,
    ) -> Result<SimTime> {
        let total_threads = grid_dim.count() * block_dim.count();
        if total_threads == 0 {
            return Ok(0.0);
        }
        // Sample a few blocks (first, interior, last) and a few threads in
        // each; average the counters.
        let mut probe = BufStore::new();
        let blocks = sample_indices(grid_dim);
        let threads = sample_indices(block_dim);
        let mut agg = ExecStats::default();
        let mut n_samples = 0u64;
        for &b in &blocks {
            for &t in &threads {
                let ctx = ThreadCtx {
                    block_idx: b,
                    thread_idx: t,
                    block_dim,
                    grid_dim,
                };
                let s = execute_thread(kernel, args, ctx, &mut probe, ExecMode::CountOnly)?;
                agg.add(&s);
                n_samples += 1;
            }
        }
        let scale = total_threads as f64 / n_samples as f64;
        let flops = agg.flops as f64 * scale;
        let intops = agg.int_ops as f64 * scale;
        // Memory traffic: the polyhedral footprint when provided (models
        // on-chip reuse), else the no-reuse per-thread total.
        let bytes = match traffic {
            Some(t) => t as f64,
            None => agg.bytes_total() as f64 * scale,
        };
        let t = (flops / self.spec.device.flops)
            .max(intops / self.spec.device.int_ops)
            .max(bytes / self.spec.device.mem_bw);
        Ok(t)
    }

    /// Block host until device `d` is idle (cudaStreamSynchronize-like).
    pub fn sync_device(&mut self, d: usize) -> Result<()> {
        let busy = self.device(d)?.busy_until;
        self.host_now = self.host_now.max(busy);
        Ok(())
    }

    /// Block host until all devices are idle (cudaDeviceSynchronize over
    /// every device — the runtime's replacement semantics, §8.4).
    pub fn sync_all(&mut self) {
        for dev in &self.devices {
            self.host_now = self.host_now.max(dev.busy_until);
        }
    }

    /// Read back a whole device buffer (functional machines only; test
    /// helper that bypasses the clock).
    pub fn debug_read(&self, buf: DevBuf) -> Option<Vec<u8>> {
        match &self.devices[buf.device].mem {
            DeviceMem::Real(store) => Some(store.bytes(buf.handle).to_vec()),
            DeviceMem::Virtual(_) => None,
        }
    }

    /// Write a whole device buffer directly (functional test helper).
    pub fn debug_write(&mut self, buf: DevBuf, data: &[u8]) {
        if let DeviceMem::Real(store) = &mut self.devices[buf.device].mem {
            store.bytes_mut(buf.handle)[..data.len()].copy_from_slice(data);
        }
    }
}

/// Up to 3 sample coordinates per axis: first, middle, last.
fn sample_indices(extent: Dim3) -> Vec<Dim3> {
    fn picks(n: u32) -> Vec<u32> {
        match n {
            0 => vec![],
            1 => vec![0],
            2 => vec![0, 1],
            _ => vec![0, n / 2, n - 1],
        }
    }
    let mut out = Vec::new();
    for z in picks(extent.z) {
        for y in picks(extent.y) {
            for x in picks(extent.x) {
                out.push(Dim3::new3(x, y, z));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::MachineSpec;
    use mekong_kernel::builder::*;
    use mekong_kernel::Kernel;

    fn saxpy() -> Kernel {
        Kernel {
            name: "saxpy".into(),
            params: vec![
                scalar("n"),
                array_f32("x", &[ext("n")]),
                array_f32("y", &[ext("n")]),
            ],
            body: vec![
                let_("i", global_x()),
                guard_return(v("i").ge(v("n"))),
                store(
                    "y",
                    vec![v("i")],
                    load("x", vec![v("i")]) * f(2.0) + load("y", vec![v("i")]),
                ),
            ],
        }
    }

    #[test]
    fn functional_roundtrip_h2d_kernel_d2h() {
        let mut m = Machine::new(MachineSpec::kepler_system(2), true);
        let n = 1024usize;
        let x = m.alloc(0, n * 4).unwrap();
        let y = m.alloc(0, n * 4).unwrap();
        let host_x: Vec<u8> = (0..n)
            .flat_map(|i| (i as f32).to_le_bytes())
            .collect();
        m.copy_h2d(&host_x, x, 0, false).unwrap();
        m.copy_h2d(&vec![0u8; n * 4], y, 0, false).unwrap();
        m.launch(
            0,
            &saxpy(),
            &[
                SimArg::Scalar(Value::I64(n as i64)),
                SimArg::Buf(x),
                SimArg::Buf(y),
            ],
            Dim3::new1(8),
            Dim3::new1(128),
        )
        .unwrap();
        m.sync_all();
        let mut out = vec![0u8; n * 4];
        m.copy_d2h(y, 0, &mut out, false).unwrap();
        let vals: Vec<f32> = out
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(*v, 2.0 * i as f32);
        }
        assert!(m.now() > 0.0);
        let c = m.counters();
        assert_eq!(c.launches, 1);
        assert_eq!(c.h2d_copies, 2);
        assert_eq!(c.d2h_copies, 1);
    }

    #[test]
    fn launches_on_different_devices_overlap() {
        let mut m = Machine::new(MachineSpec::kepler_system(4), false);
        let n = 1 << 22;
        let bufs: Vec<_> = (0..4)
            .map(|d| {
                (
                    m.alloc(d, n * 4).unwrap(),
                    m.alloc(d, n * 4).unwrap(),
                )
            })
            .collect();
        let k = saxpy();
        let grid = Dim3::new1((n / 256) as u32);
        let block = Dim3::new1(256);
        // One device alone:
        m.launch(
            0,
            &k,
            &[
                SimArg::Scalar(Value::I64(n as i64)),
                SimArg::Buf(bufs[0].0),
                SimArg::Buf(bufs[0].1),
            ],
            grid,
            block,
        )
        .unwrap();
        m.sync_all();
        let t1 = m.now();
        // Four devices concurrently, quarter the grid each:
        m.reset_clock();
        let qgrid = Dim3::new1((n / 256 / 4) as u32);
        for d in 0..4 {
            m.launch(
                d,
                &k,
                &[
                    SimArg::Scalar(Value::I64(n as i64)),
                    SimArg::Buf(bufs[d].0),
                    SimArg::Buf(bufs[d].1),
                ],
                qgrid,
                block,
            )
            .unwrap();
        }
        m.sync_all();
        let t4 = m.now();
        assert!(t4 < t1, "4-way split {t4} should beat single {t1}");
        assert!(t4 > t1 / 8.0, "overheads keep it under 8x");
    }

    #[test]
    fn host_staged_peer_copies_serialize_globally() {
        // Two copies on disjoint device pairs: with host staging they
        // serialize on the staging engine; without, they overlap.
        let run = |staged: bool| -> f64 {
            let mut spec = MachineSpec::kepler_system(4);
            spec.link.host_staged = staged;
            let mut m = Machine::new(spec, false);
            let a = m.alloc(0, 1 << 24).unwrap();
            let b = m.alloc(1, 1 << 24).unwrap();
            let c = m.alloc(2, 1 << 24).unwrap();
            let d = m.alloc(3, 1 << 24).unwrap();
            m.copy_d2d(a, 0, b, 0, 1 << 24).unwrap();
            m.copy_d2d(c, 0, d, 0, 1 << 24).unwrap();
            m.sync_all();
            m.now()
        };
        let serialized = run(true);
        let overlapped = run(false);
        assert!(
            serialized > 1.8 * overlapped,
            "serialized {serialized} vs overlapped {overlapped}"
        );
    }

    #[test]
    fn beta_config_zeroes_transfer_time() {
        let mut m = Machine::new(MachineSpec::kepler_system(2), false);
        m.set_transfer_timing(false);
        let a = m.alloc(0, 1 << 20).unwrap();
        let b = m.alloc(1, 1 << 20).unwrap();
        m.copy_d2d(a, 0, b, 0, 1 << 20).unwrap();
        m.copy_h2d(&vec![0u8; 1024], a, 0, false).unwrap();
        m.sync_all();
        assert_eq!(m.now(), 0.0);
        // The data still "moves" — counters record it.
        assert_eq!(m.counters().d2d_copies, 1);
    }

    #[test]
    fn gamma_config_zeroes_pattern_time() {
        let mut m = Machine::new(MachineSpec::kepler_system(1), false);
        m.charge_host(1.0, TimeCat::Pattern);
        assert_eq!(m.now(), 1.0);
        m.reset_clock();
        m.set_pattern_timing(false);
        m.charge_host(1.0, TimeCat::Pattern);
        assert_eq!(m.now(), 0.0);
    }

    #[test]
    fn copy_bounds_are_checked() {
        let mut m = Machine::new(MachineSpec::kepler_system(1), true);
        let a = m.alloc(0, 16).unwrap();
        let err = m.copy_h2d(&[0u8; 32], a, 0, false).unwrap_err();
        assert!(matches!(err, SimError::CopyOutOfRange { .. }));
        let err = m
            .launch(
                0,
                &saxpy(),
                &[
                    SimArg::Scalar(Value::I64(1)),
                    SimArg::Buf(DevBuf {
                        device: 1,
                        handle: 0,
                        len: 4,
                    }),
                    SimArg::Buf(a),
                ],
                Dim3::new1(1),
                Dim3::new1(1),
            )
            .unwrap_err();
        assert!(matches!(err, SimError::BadBuffer { .. }));
    }

    #[test]
    fn mem_bound_kernel_time_tracks_bytes() {
        // saxpy moves 12 bytes/thread; time ≈ threads*12/mem_bw.
        let m = Machine::new(MachineSpec::kepler_system(1), false);
        let k = saxpy();
        let n: u64 = 1 << 24;
        let grid = Dim3::new1((n / 256) as u32);
        let block = Dim3::new1(256);
        let args = [
            KernelArg::Scalar(Value::I64(n as i64)),
            KernelArg::Array(0),
            KernelArg::Array(1),
        ];
        let t = m.kernel_time(&k, &args, grid, block, None).unwrap();
        let expect = (n as f64) * 12.0 / m.spec().device.mem_bw;
        assert!((t / expect - 1.0).abs() < 0.2, "t={t}, expect={expect}");
    }

    #[test]
    fn debug_read_none_in_perf_mode() {
        let mut m = Machine::new(MachineSpec::kepler_system(1), false);
        let a = m.alloc(0, 64).unwrap();
        assert!(m.debug_read(a).is_none());
    }
}
