//! Property tests for the plan-cache snapshot format: arbitrary
//! `(PlanKey, LaunchPlan)` pairs — strided copies, float scalar bit
//! patterns, tracker-signature fields — survive a JSON round trip
//! losslessly, and a version-mismatched snapshot is rejected cleanly
//! without half-loading the cache.

use std::sync::Arc;

use mekong_gpusim::{DevBuf, SimArg};
use mekong_kernel::{Dim3, Value};
use mekong_runtime::persist::round_trip_entry;
use mekong_runtime::{
    load_snapshot_json, snapshot_to_json, ArgKey, LaunchPlan, PlanCopy, PlanKey, PlanLaunch,
    PlanUpdate, ShardedPlanCache, VBufId, SNAPSHOT_VERSION,
};
use proptest::prelude::*;

fn dim3_strategy() -> impl Strategy<Value = Dim3> {
    (1u32..64, 1u32..64, 1u32..4).prop_map(|(x, y, z)| Dim3 { x, y, z })
}

fn value_strategy() -> impl Strategy<Value = Value> {
    // Finite floats only (built from integer grids): NaN bit patterns
    // round-trip, but NaN != NaN would fail the equality assertion for
    // the wrong reason.
    prop_oneof![
        (i64::MIN..i64::MAX).prop_map(Value::I64),
        (-(1i64 << 40)..(1i64 << 40)).prop_map(|x| Value::F32(x as f32 * 1.25e-3)),
        (i64::MIN..i64::MAX).prop_map(|x| Value::F64(x as f64 * 1.25e-7)),
    ]
}

fn arg_key_strategy() -> impl Strategy<Value = ArgKey> {
    prop_oneof![
        (0u8..3, 0u64..u64::MAX).prop_map(|(tag, bits)| ArgKey::Scalar(tag, bits)),
        (0usize..64, 0u64..u64::MAX).prop_map(|(i, sig)| ArgKey::Buf {
            id: VBufId::with_namespace(0, i),
            sig,
        }),
    ]
}

fn plan_key_strategy() -> impl Strategy<Value = PlanKey> {
    (
        (0u8..26, 0u32..10_000).prop_map(|(a, n)| format!("k{}_{n}", (b'a' + a) as char)),
        0u32..u32::MAX,
        dim3_strategy(),
        dim3_strategy(),
        proptest::collection::vec(i64::MIN..i64::MAX, 0..12),
        proptest::collection::vec(arg_key_strategy(), 0..8),
    )
        .prop_map(|(kernel, strategy, grid, block, bounds, args)| PlanKey {
            kernel,
            strategy,
            grid,
            block,
            bounds,
            args,
        })
}

fn copy_strategy() -> impl Strategy<Value = PlanCopy> {
    (
        0usize..64,
        0usize..8,
        0usize..8,
        0u32..u32::MAX,
        0u32..u32::MAX,
        // Contiguous (stride 0 / count 1) and strided row-block copies.
        prop_oneof![Just((0u64, 1u64)), (1u64..1 << 20, 2u64..64)],
    )
        .prop_map(
            |(vb, dst_gpu, src_dev, start, len, (stride, count))| PlanCopy {
                vb: VBufId::with_namespace(0, vb),
                dst_gpu,
                src_dev,
                start: start as u64,
                end: start as u64 + len as u64 + 1,
                stride,
                count,
            },
        )
}

fn sim_arg_strategy() -> impl Strategy<Value = SimArg> {
    prop_oneof![
        value_strategy().prop_map(SimArg::Scalar),
        (0usize..8, 0usize..64, 1usize..1 << 24).prop_map(|(device, handle, len)| {
            SimArg::Buf(DevBuf {
                device,
                handle,
                len,
            })
        }),
    ]
}

fn launch_strategy() -> impl Strategy<Value = PlanLaunch> {
    (
        0usize..8,
        proptest::collection::vec(sim_arg_strategy(), 0..8),
        dim3_strategy(),
        0u64..u64::MAX,
    )
        .prop_map(|(gpu, sim_args, grid, traffic)| PlanLaunch {
            gpu,
            sim_args,
            grid,
            traffic,
        })
}

fn update_strategy() -> impl Strategy<Value = PlanUpdate> {
    (0usize..64, 0usize..8, 0u32..u32::MAX, 0u32..u32::MAX).prop_map(|(vb, gpu, start, len)| {
        PlanUpdate {
            vb: VBufId::with_namespace(0, vb),
            gpu,
            start: start as u64,
            end: start as u64 + len as u64 + 1,
        }
    })
}

fn plan_strategy() -> impl Strategy<Value = LaunchPlan> {
    (
        proptest::collection::vec(copy_strategy(), 0..8),
        proptest::collection::vec(launch_strategy(), 0..6),
        proptest::collection::vec(update_strategy(), 0..8),
        proptest::collection::vec(0usize..64, 0..6),
        proptest::collection::vec(0usize..64, 0..6),
        (0u64..u64::MAX, 0u64..u64::MAX),
        (0u64..u64::MAX, 0u64..u64::MAX),
    )
        .prop_map(
            |(
                copies,
                launches,
                updates,
                reads,
                writes,
                (replica_hits, replica_saved_bytes),
                (mayread_fetch_bytes, mayread_overfetch_bytes),
            )| {
                LaunchPlan {
                    copies,
                    launches,
                    updates,
                    read_bufs: reads
                        .into_iter()
                        .map(|i| VBufId::with_namespace(0, i))
                        .collect(),
                    write_bufs: writes
                        .into_iter()
                        .map(|i| VBufId::with_namespace(0, i))
                        .collect(),
                    replica_hits,
                    replica_saved_bytes,
                    mayread_fetch_bytes,
                    mayread_overfetch_bytes,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn entries_round_trip_losslessly(
        key in plan_key_strategy(),
        plan in plan_strategy(),
    ) {
        let (key2, plan2) = round_trip_entry(&key, &plan).expect("round trip");
        prop_assert_eq!(key, key2);
        prop_assert_eq!(plan, plan2);
    }

    #[test]
    fn cache_snapshots_round_trip_and_stay_deterministic(
        entries in proptest::collection::vec(
            (plan_key_strategy(), plan_strategy(), 0u32..4), 0..6),
    ) {
        let cache = ShardedPlanCache::new(0);
        for (key, plan, ns) in &entries {
            cache.insert(key.clone(), Arc::new(plan.clone()), *ns);
        }
        let json = snapshot_to_json(&cache);

        let restored = ShardedPlanCache::new(0);
        let loaded = load_snapshot_json(&restored, &json).expect("load");
        prop_assert_eq!(loaded, cache.len());
        // Loaded entries must prove their worth: before any hit, a
        // compacting snapshot of the restored cache drops all of them.
        prop_assert_eq!(restored.compactable(), restored.len());
        // Replay every entry once; re-rendering then reproduces the
        // snapshot byte for byte, regardless of insertion order.
        for (key, _, _) in &entries {
            prop_assert!(restored.get(key).is_some());
        }
        prop_assert_eq!(restored.compactable(), 0);
        prop_assert_eq!(snapshot_to_json(&restored), json);
    }

    #[test]
    fn version_bump_rejects_without_half_loading(
        key in plan_key_strategy(),
        plan in plan_strategy(),
    ) {
        let cache = ShardedPlanCache::new(0);
        cache.insert(key, Arc::new(plan), 0);
        let good = snapshot_to_json(&cache);
        let bumped = good.replacen(
            &format!("\"version\": {SNAPSHOT_VERSION}"),
            &format!("\"version\": {}", SNAPSHOT_VERSION + 1),
            1,
        );
        prop_assert!(bumped != good, "snapshot must carry its version");

        let target = ShardedPlanCache::new(0);
        prop_assert!(load_snapshot_json(&target, &bumped).is_err());
        prop_assert_eq!(target.len(), 0, "rejected snapshot must not half-load");
        // The genuine snapshot still loads afterwards.
        prop_assert_eq!(load_snapshot_json(&target, &good).expect("load"), 1);
    }
}
