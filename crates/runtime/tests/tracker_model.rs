//! Property-based verification of the segment tracker against a naive
//! byte-level reference model: after any sequence of updates, queries
//! over any range must report exactly the per-byte ownership the naive
//! model holds, and the structural invariants must survive.

use mekong_runtime::{Owner, Tracker};
use proptest::prelude::*;

const LEN: u64 = 256;

fn arb_owner() -> impl Strategy<Value = Owner> {
    prop_oneof![Just(Owner::Host), (0usize..4).prop_map(Owner::Device),]
}

fn arb_ops() -> impl Strategy<Value = Vec<(u64, u64, Owner)>> {
    proptest::collection::vec((0u64..LEN, 0u64..=LEN + 16, arb_owner()), 1..40)
}

/// Expand a tracker query into a per-byte ownership vector.
fn bytes_of(t: &Tracker) -> Vec<Owner> {
    let mut out = vec![Owner::Uninit; LEN as usize];
    t.query(0, LEN, &mut |s, e, o| {
        for slot in &mut out[s as usize..e as usize] {
            *slot = o;
        }
    });
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Tracker ownership equals the naive model after arbitrary updates.
    #[test]
    fn matches_naive_byte_model(ops in arb_ops()) {
        let mut t = Tracker::new(LEN);
        let mut naive = vec![Owner::Uninit; LEN as usize];
        for (start, end, owner) in ops {
            t.update(start, end, owner);
            prop_assert!(t.check_invariants(), "invariants broken after update({start},{end})");
            let end = end.min(LEN);
            if start < end {
                for slot in &mut naive[start as usize..end as usize] {
                    *slot = owner;
                }
            }
        }
        prop_assert_eq!(bytes_of(&t), naive);
    }

    /// Partial queries report exactly the clipped intersection.
    #[test]
    fn partial_queries_clip(ops in arb_ops(), qs in 0u64..LEN, qlen in 0u64..LEN) {
        let mut t = Tracker::new(LEN);
        let mut naive = vec![Owner::Uninit; LEN as usize];
        for (start, end, owner) in ops {
            t.update(start, end, owner);
            let end = end.min(LEN);
            if start < end {
                for slot in &mut naive[start as usize..end as usize] {
                    *slot = owner;
                }
            }
        }
        let qe = (qs + qlen).min(LEN);
        let mut segs: Vec<(u64, u64, Owner)> = Vec::new();
        t.query(qs, qe, &mut |s, e, o| segs.push((s, e, o)));
        let mut covered = 0u64;
        let mut cursor = qs;
        for (s, e, o) in segs {
            prop_assert!(s >= qs && e <= qe && s < e, "segment [{s},{e}) escapes [{qs},{qe})");
            prop_assert_eq!(s, cursor, "gap in query tiling");
            cursor = e;
            covered += e - s;
            for i in s..e {
                prop_assert_eq!(naive[i as usize], o, "byte {} owner mismatch", i);
            }
        }
        if qs < qe {
            prop_assert_eq!(covered, qe - qs, "query must tile the range");
        }
    }

    /// `query_coalesced` over arbitrary (overlapping, adjacent, unsorted)
    /// ranges visits exactly the bytes of the ranges' union, with the
    /// naive model's ownership, in sorted disjoint maximal segments.
    #[test]
    fn coalesced_queries_match_union_of_ranges(
        ops in arb_ops(),
        ranges in proptest::collection::vec((0u64..LEN, 0u64..=LEN + 16), 0..12),
    ) {
        let mut t = Tracker::new(LEN);
        let mut naive = vec![Owner::Uninit; LEN as usize];
        for (start, end, owner) in ops {
            t.update(start, end, owner);
            let end = end.min(LEN);
            if start < end {
                for slot in &mut naive[start as usize..end as usize] {
                    *slot = owner;
                }
            }
        }
        let range_list: Vec<(u64, u64)> = ranges.clone();
        let mut in_union = vec![false; LEN as usize];
        for &(s, e) in &range_list {
            let e = e.min(LEN);
            if s < e {
                for slot in &mut in_union[s as usize..e as usize] {
                    *slot = true;
                }
            }
        }
        let mut segs: Vec<(u64, u64, Owner)> = Vec::new();
        let (n_merged, n_emitted) =
            t.query_coalesced(&range_list, &mut |s, e, o| segs.push((s, e, o)));
        prop_assert_eq!(n_emitted, segs.len());
        prop_assert!(n_merged <= range_list.len(), "merging cannot add ranges");
        // Visited bytes = union, with correct owners; segments sorted,
        // disjoint, non-empty.
        let mut visited = vec![false; LEN as usize];
        let mut prev_end = 0u64;
        for &(s, e, o) in &segs {
            prop_assert!(s < e && e <= LEN, "bad segment [{s},{e})");
            prop_assert!(s >= prev_end, "segments out of order or overlapping");
            prev_end = e;
            for i in s..e {
                prop_assert!(!visited[i as usize], "byte {} visited twice", i);
                visited[i as usize] = true;
                prop_assert_eq!(naive[i as usize], o, "byte {} owner mismatch", i);
            }
        }
        prop_assert_eq!(visited, in_union);
    }

    /// Segment count never exceeds the number of distinct ownership runs.
    #[test]
    fn segments_are_maximal_runs(ops in arb_ops()) {
        let mut t = Tracker::new(LEN);
        for (start, end, owner) in ops {
            t.update(start, end, owner);
        }
        let naive = bytes_of(&t);
        let runs = 1 + naive.windows(2).filter(|w| w[0] != w[1]).count();
        prop_assert_eq!(t.segment_count(), runs, "unmerged or split segments");
    }

    /// Structural hashing: trackers with equal segment lists hash equal,
    /// regardless of the update history that produced them. The witness
    /// tracker is rebuilt by replaying the *final* ownership runs of the
    /// original — a different (usually much shorter) history.
    #[test]
    fn equal_segment_lists_hash_equal(ops in arb_ops()) {
        let mut t = Tracker::new(LEN);
        for (start, end, owner) in ops {
            t.update(start, end, owner);
        }
        let naive = bytes_of(&t);
        let mut rebuilt = Tracker::new(LEN);
        let mut run_start = 0usize;
        for i in 1..=naive.len() {
            if i == naive.len() || naive[i] != naive[run_start] {
                if naive[run_start] != Owner::Uninit {
                    rebuilt.update(run_start as u64, i as u64, naive[run_start]);
                }
                run_start = i;
            }
        }
        prop_assert_eq!(bytes_of(&rebuilt), naive, "rebuild mismatch");
        prop_assert_eq!(t.signature(), rebuilt.signature(),
            "same segments, different hash");
    }

    /// Any update that changes the segment list changes the hash (the
    /// plan cache's correctness hinges on this: a stale signature would
    /// replay a plan against a different coherence state). Updates that
    /// leave the list unchanged must leave the hash unchanged.
    #[test]
    fn updates_changing_segments_change_hash(
        ops in arb_ops(),
        extra in (0u64..LEN, 0u64..=LEN + 16, arb_owner()),
    ) {
        let mut t = Tracker::new(LEN);
        for (start, end, owner) in ops {
            t.update(start, end, owner);
        }
        let before_bytes = bytes_of(&t);
        let before_sig = t.signature();
        let (s, e, o) = extra;
        t.update(s, e, o);
        prop_assert!(t.check_invariants());
        if bytes_of(&t) == before_bytes {
            prop_assert_eq!(t.signature(), before_sig,
                "no-op update changed the hash");
        } else {
            prop_assert!(t.signature() != before_sig, "segment change kept the hash");
        }
    }
}
