//! Property-based verification of the segment tracker against a naive
//! byte-level reference model: after any sequence of writes and replica
//! additions, queries over any range must report exactly the per-byte
//! validity state (freshest owner *and* holder set) the naive model
//! holds, and the structural invariants must survive. Segment merging is
//! exercised implicitly — every property compares the (merged) segment
//! view against the unmerged per-byte oracle, so a merge that changed
//! the byte-level view would fail immediately.

use mekong_runtime::{DeviceSet, Owner, Tracker, Validity};
use proptest::prelude::*;

const LEN: u64 = 256;
const N_DEV: usize = 4;

/// One tracker mutation: a write (host or device) or a replica addition.
#[derive(Debug, Clone, Copy)]
enum Op {
    Write(u64, u64, Owner),
    AddHolder(u64, u64, usize),
}

fn arb_owner() -> impl Strategy<Value = Owner> {
    prop_oneof![Just(Owner::Host), (0usize..N_DEV).prop_map(Owner::Device)]
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..LEN, 0u64..=LEN + 16, arb_owner()).prop_map(|(s, e, o)| Op::Write(s, e, o)),
        (0u64..LEN, 0u64..=LEN + 16, 0usize..N_DEV).prop_map(|(s, e, d)| Op::AddHolder(s, e, d)),
    ]
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(arb_op(), 1..40)
}

/// Apply one op to the tracker and to the naive per-byte model.
fn apply(t: &mut Tracker, naive: &mut [Validity], op: Op) {
    match op {
        Op::Write(start, end, owner) => {
            t.update(start, end, owner);
            let end = end.min(LEN);
            if start < end {
                for slot in &mut naive[start as usize..end as usize] {
                    *slot = Validity::written(owner);
                }
            }
        }
        Op::AddHolder(start, end, d) => {
            t.add_holder(start, end, d);
            let end = end.min(LEN);
            if start < end {
                for slot in &mut naive[start as usize..end as usize] {
                    if slot.freshest != Owner::Uninit {
                        slot.holders.insert(d);
                    }
                }
            }
        }
    }
}

/// Expand a tracker query into a per-byte validity vector.
fn bytes_of(t: &Tracker) -> Vec<Validity> {
    let mut out = vec![Validity::uninit(); LEN as usize];
    t.query(0, LEN, &mut |s, e, v| {
        for slot in &mut out[s as usize..e as usize] {
            *slot = v;
        }
    });
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Tracker validity equals the naive model after arbitrary writes and
    /// replica additions, and the freshest device is always a holder.
    #[test]
    fn matches_naive_byte_model(ops in arb_ops()) {
        let mut t = Tracker::new(LEN);
        let mut naive = vec![Validity::uninit(); LEN as usize];
        for op in ops {
            apply(&mut t, &mut naive, op);
            prop_assert!(t.check_invariants(), "invariants broken after {op:?}");
        }
        let got = bytes_of(&t);
        prop_assert_eq!(&got, &naive);
        for (i, v) in got.iter().enumerate() {
            if let Owner::Device(d) = v.freshest {
                prop_assert!(v.holders.contains(d),
                    "byte {}: freshest device {} not among holders {:?}", i, d, v.holders);
            }
            if v.freshest == Owner::Uninit {
                prop_assert!(v.holders.is_empty(),
                    "byte {}: uninit bytes cannot have holders", i);
            }
        }
    }

    /// Partial queries report exactly the clipped intersection.
    #[test]
    fn partial_queries_clip(ops in arb_ops(), qs in 0u64..LEN, qlen in 0u64..LEN) {
        let mut t = Tracker::new(LEN);
        let mut naive = vec![Validity::uninit(); LEN as usize];
        for op in ops {
            apply(&mut t, &mut naive, op);
        }
        let qe = (qs + qlen).min(LEN);
        let mut segs: Vec<(u64, u64, Validity)> = Vec::new();
        t.query(qs, qe, &mut |s, e, v| segs.push((s, e, v)));
        let mut covered = 0u64;
        let mut cursor = qs;
        for (s, e, v) in segs {
            prop_assert!(s >= qs && e <= qe && s < e, "segment [{s},{e}) escapes [{qs},{qe})");
            prop_assert_eq!(s, cursor, "gap in query tiling");
            cursor = e;
            covered += e - s;
            for i in s..e {
                prop_assert_eq!(naive[i as usize], v, "byte {} validity mismatch", i);
            }
        }
        if qs < qe {
            prop_assert_eq!(covered, qe - qs, "query must tile the range");
        }
    }

    /// `query_coalesced` over arbitrary (overlapping, adjacent, unsorted)
    /// ranges visits exactly the bytes of the ranges' union, with the
    /// naive model's validity, in sorted disjoint maximal segments.
    #[test]
    fn coalesced_queries_match_union_of_ranges(
        ops in arb_ops(),
        ranges in proptest::collection::vec((0u64..LEN, 0u64..=LEN + 16), 0..12),
    ) {
        let mut t = Tracker::new(LEN);
        let mut naive = vec![Validity::uninit(); LEN as usize];
        for op in ops {
            apply(&mut t, &mut naive, op);
        }
        let range_list: Vec<(u64, u64)> = ranges.clone();
        let mut in_union = vec![false; LEN as usize];
        for &(s, e) in &range_list {
            let e = e.min(LEN);
            if s < e {
                for slot in &mut in_union[s as usize..e as usize] {
                    *slot = true;
                }
            }
        }
        let mut segs: Vec<(u64, u64, Validity)> = Vec::new();
        let (n_merged, n_emitted) =
            t.query_coalesced(&range_list, &mut |s, e, v| segs.push((s, e, v)));
        prop_assert_eq!(n_emitted, segs.len());
        prop_assert!(n_merged <= range_list.len(), "merging cannot add ranges");
        // Visited bytes = union, with correct validity; segments sorted,
        // disjoint, non-empty.
        let mut visited = vec![false; LEN as usize];
        let mut prev_end = 0u64;
        for &(s, e, v) in &segs {
            prop_assert!(s < e && e <= LEN, "bad segment [{s},{e})");
            prop_assert!(s >= prev_end, "segments out of order or overlapping");
            prev_end = e;
            for i in s..e {
                prop_assert!(!visited[i as usize], "byte {} visited twice", i);
                visited[i as usize] = true;
                prop_assert_eq!(naive[i as usize], v, "byte {} validity mismatch", i);
            }
        }
        prop_assert_eq!(visited, in_union);
    }

    /// Segment count never exceeds the number of distinct validity runs —
    /// merging collapses equal neighbours and never merges unequal ones.
    #[test]
    fn segments_are_maximal_runs(ops in arb_ops()) {
        let mut t = Tracker::new(LEN);
        let mut naive = vec![Validity::uninit(); LEN as usize];
        for op in ops {
            apply(&mut t, &mut naive, op);
        }
        let view = bytes_of(&t);
        let runs = 1 + view.windows(2).filter(|w| w[0] != w[1]).count();
        prop_assert_eq!(t.segment_count(), runs, "unmerged or split segments");
    }

    /// Structural hashing: trackers with equal segment lists hash equal,
    /// regardless of the update history that produced them. The witness
    /// tracker is rebuilt by replaying the *final* validity runs of the
    /// original — writes first, then replica additions — a different
    /// (usually much shorter) history.
    #[test]
    fn equal_segment_lists_hash_equal(ops in arb_ops()) {
        let mut t = Tracker::new(LEN);
        let mut naive = vec![Validity::uninit(); LEN as usize];
        for op in ops {
            apply(&mut t, &mut naive, op);
        }
        let view = bytes_of(&t);
        let mut rebuilt = Tracker::new(LEN);
        let mut run_start = 0usize;
        for i in 1..=view.len() {
            if i == view.len() || view[i] != view[run_start] {
                let v = view[run_start];
                if v.freshest != Owner::Uninit {
                    rebuilt.update(run_start as u64, i as u64, v.freshest);
                    let writer = DeviceSet::from_bits(match v.freshest {
                        Owner::Device(d) => 1u64 << d,
                        _ => 0,
                    });
                    for d in v.holders.iter() {
                        if !writer.contains(d) {
                            rebuilt.add_holder(run_start as u64, i as u64, d);
                        }
                    }
                }
                run_start = i;
            }
        }
        prop_assert_eq!(bytes_of(&rebuilt), view, "rebuild mismatch");
        prop_assert_eq!(t.signature(), rebuilt.signature(),
            "same segments, different hash");
    }

    /// Any mutation that changes the segment list changes the hash (the
    /// plan cache's correctness hinges on this: a stale signature would
    /// replay a plan against a different coherence state). Mutations that
    /// leave the list unchanged — including repeated replica additions —
    /// must leave the hash unchanged.
    #[test]
    fn ops_changing_segments_change_hash(ops in arb_ops(), extra in arb_op()) {
        let mut t = Tracker::new(LEN);
        let mut naive = vec![Validity::uninit(); LEN as usize];
        for op in ops {
            apply(&mut t, &mut naive, op);
        }
        let before_bytes = bytes_of(&t);
        let before_sig = t.signature();
        apply(&mut t, &mut naive, extra);
        prop_assert!(t.check_invariants());
        if bytes_of(&t) == before_bytes {
            prop_assert_eq!(t.signature(), before_sig,
                "no-op mutation changed the hash");
        } else {
            prop_assert!(t.signature() != before_sig, "segment change kept the hash");
        }
    }
}
