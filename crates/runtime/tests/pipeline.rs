//! Differential verification of launch-ahead pipelined scheduling
//! (see `mekong_runtime::pipeline`) against the shadow-memory oracle.
//!
//! Two properties anchor correctness:
//!
//! * ping-pong stencil runs at `launch_ahead ∈ {0, 2, 4}` produce
//!   **byte-identical** outputs, all matching a host-side reference;
//! * random interleavings of D2H reads, H2D uploads and cold-cache
//!   (uncaptured) launches at arbitrary points inside a launch-ahead
//!   window — every pipeline-flush boundary — preserve exact agreement
//!   with the synchronous runtime *and* the host oracle at every
//!   observation point, not just at the end.

use mekong_gpusim::{Machine, MachineSpec};
use mekong_kernel::builder::*;
use mekong_kernel::{Dim3, Kernel, Value};
use mekong_runtime::{CompiledKernel, LaunchArg, MgpuRuntime, RuntimeConfig};
use proptest::prelude::*;

const N: usize = 256;
const N_DEV: usize = 4;

fn stencil_kernel() -> Kernel {
    Kernel {
        name: "stencil".into(),
        params: vec![
            scalar("n"),
            array_f32("input", &[ext("n")]),
            array_f32("output", &[ext("n")]),
        ],
        body: vec![
            let_("i", global_x()),
            guard_return(v("i").ge(v("n"))),
            if_(
                v("i").eq_(i(0)).or(v("i").eq_(v("n") - i(1))),
                vec![store("output", vec![v("i")], load("input", vec![v("i")]))],
                vec![store(
                    "output",
                    vec![v("i")],
                    (load("input", vec![v("i") - i(1)])
                        + load("input", vec![v("i")])
                        + load("input", vec![v("i") + i(1)]))
                        / f(3.0),
                )],
            ),
        ],
    }
}

fn scale_kernel() -> Kernel {
    Kernel {
        name: "scale".into(),
        params: vec![
            scalar("n"),
            array_f32("a", &[ext("n")]),
            array_f32("b", &[ext("n")]),
        ],
        body: vec![
            let_("i", global_x()),
            guard_return(v("i").ge(v("n"))),
            store("b", vec![v("i")], load("a", vec![v("i")]) * f(3.0)),
        ],
    }
}

fn stencil_step(cur: &[f32]) -> Vec<f32> {
    let n = cur.len();
    let mut next = cur.to_vec();
    for i in 1..n - 1 {
        next[i] = (cur[i - 1] + cur[i] + cur[i + 1]) / 3.0;
    }
    next
}

fn bytes_of(vals: &[f32]) -> Vec<u8> {
    vals.iter().flat_map(|v| v.to_le_bytes()).collect()
}

fn data_from_seed(seed: u32) -> Vec<f32> {
    (0..N)
        .map(|i| ((i as u32).wrapping_mul(37).wrapping_add(seed * 101) % 251) as f32)
        .collect()
}

/// One step of the interleaved workload. `Stencil` replays from the plan
/// cache after warm-up (the pipelined path); the others all cross a
/// pipeline-flush boundary.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// Captured ping-pong stencil launch (pipelines on a cache hit).
    Stencil,
    /// Scale src into dst without swapping. Its first occurrence per
    /// tracker state is a cold cache miss — an uncaptured launch inside
    /// the window.
    Scale,
    /// Gather src to the host and compare against oracle + baseline.
    ReadBack,
    /// Re-upload fresh host data into src (tracker redistribution).
    Upload(u32),
}

fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    // Repeated arms stand in for weights: bias toward the pipelined
    // stencil so windows actually build up between flush events.
    let step = prop_oneof![
        Just(Step::Stencil),
        Just(Step::Stencil),
        Just(Step::Stencil),
        Just(Step::Stencil),
        Just(Step::Scale),
        Just(Step::ReadBack),
        (0u32..8).prop_map(Step::Upload),
    ];
    proptest::collection::vec(step, 1..24)
}

struct Run {
    rt: MgpuRuntime,
    stencil: CompiledKernel,
    scale: CompiledKernel,
    src: mekong_runtime::VBufId,
    dst: mekong_runtime::VBufId,
}

impl Run {
    fn new(launch_ahead: u32, init: &[f32]) -> Run {
        let mut rt = MgpuRuntime::new(Machine::new(MachineSpec::kepler_system(N_DEV), true));
        rt.set_config(RuntimeConfig {
            capture_plans: true,
            launch_ahead,
            ..RuntimeConfig::default()
        });
        let src = rt.malloc(N * 4, 4).unwrap();
        let dst = rt.malloc(N * 4, 4).unwrap();
        rt.memcpy_h2d(src, &bytes_of(init)).unwrap();
        rt.memcpy_h2d(dst, &bytes_of(init)).unwrap();
        Run {
            rt,
            stencil: CompiledKernel::compile(&stencil_kernel()).unwrap(),
            scale: CompiledKernel::compile(&scale_kernel()).unwrap(),
            src,
            dst,
        }
    }

    fn launch(&mut self, ck: usize) {
        let k = if ck == 0 { &self.stencil } else { &self.scale };
        self.rt
            .launch(
                k,
                Dim3::new1((N / 64) as u32),
                Dim3::new1(64),
                &[
                    LaunchArg::Scalar(Value::I64(N as i64)),
                    LaunchArg::Buf(self.src),
                    LaunchArg::Buf(self.dst),
                ],
            )
            .unwrap();
    }

    fn read_src(&mut self) -> Vec<u8> {
        let mut out = vec![0u8; N * 4];
        self.rt.memcpy_d2h(self.src, &mut out).unwrap();
        out
    }
}

/// Drive one step on a runtime and the host oracle in lock-step.
fn apply(run: &mut Run, oracle: (&mut Vec<f32>, &mut Vec<f32>), step: Step) -> Option<Vec<u8>> {
    let (src_h, dst_h) = oracle;
    match step {
        Step::Stencil => {
            run.launch(0);
            std::mem::swap(&mut run.src, &mut run.dst);
            *dst_h = stencil_step(src_h);
            std::mem::swap(src_h, dst_h);
            None
        }
        Step::Scale => {
            run.launch(1);
            *dst_h = src_h.iter().map(|x| x * 3.0).collect();
            None
        }
        Step::ReadBack => Some(run.read_src()),
        Step::Upload(seed) => {
            let data = data_from_seed(seed);
            run.rt.memcpy_h2d(run.src, &bytes_of(&data)).unwrap();
            *src_h = data;
            None
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Tier-1 differential: `launch_ahead ∈ {0, 2}` (plus 4 for depth
    /// coverage) on a pure ping-pong stencil — byte-identical outputs,
    /// all equal to the shadow oracle.
    #[test]
    fn ping_pong_outputs_identical_across_launch_ahead(
        iters in 1usize..10,
        seed in 0u32..16,
    ) {
        let init = data_from_seed(seed);
        let mut reference = init.clone();
        for _ in 0..iters {
            reference = stencil_step(&reference);
        }
        let mut outs = Vec::new();
        for ahead in [0u32, 2, 4] {
            let mut run = Run::new(ahead, &init);
            for _ in 0..iters {
                run.launch(0);
                std::mem::swap(&mut run.src, &mut run.dst);
            }
            outs.push(run.read_src());
        }
        prop_assert_eq!(&outs[0], &outs[1], "launch_ahead 2 diverged from 0");
        prop_assert_eq!(&outs[0], &outs[2], "launch_ahead 4 diverged from 0");
        prop_assert_eq!(&outs[0], &bytes_of(&reference), "diverged from oracle");
    }

    /// Flush boundaries: D2H reads, H2D uploads and cold-cache launches
    /// interleaved at random points in the window. Every observation
    /// must agree across `launch_ahead ∈ {0, 2, 4}` and with the oracle.
    #[test]
    fn random_flush_boundaries_preserve_exact_agreement(
        steps in arb_steps(),
        seed in 0u32..8,
    ) {
        let init = data_from_seed(seed);
        let mut runs: Vec<Run> = [0u32, 2, 4]
            .iter()
            .map(|&a| Run::new(a, &init))
            .collect();
        let mut oracles: Vec<(Vec<f32>, Vec<f32>)> = (0..runs.len())
            .map(|_| (init.clone(), init.clone()))
            .collect();
        for &step in &steps {
            let mut seen: Option<Vec<u8>> = None;
            for (run, (src_h, dst_h)) in runs.iter_mut().zip(oracles.iter_mut()) {
                let got = apply(run, (src_h, dst_h), step);
                if let Some(bytes) = got {
                    prop_assert_eq!(
                        &bytes,
                        &bytes_of(src_h),
                        "readback diverged from oracle at {:?}",
                        step
                    );
                    match &seen {
                        None => seen = Some(bytes),
                        Some(prev) => prop_assert_eq!(prev, &bytes, "runtimes diverged"),
                    }
                }
            }
        }
        // Final gather always agrees, whatever the interleaving did.
        let finals: Vec<Vec<u8>> = runs.iter_mut().map(|r| r.read_src()).collect();
        prop_assert_eq!(&finals[0], &finals[1]);
        prop_assert_eq!(&finals[0], &finals[2]);
        prop_assert_eq!(&finals[0], &bytes_of(&oracles[0].0));
    }
}
