//! The partitioned kernel-launch sequence (paper §5, Figure 4):
//!
//! 1. partition the execution grid for the available GPUs,
//! 2. synchronize all buffers that are read from,
//! 3. launch each partition of the kernel on its device,
//! 4. update the buffer trackers for all writes.

use crate::compiled::CompiledKernel;
use crate::tracker::Owner;
use crate::vbuf::{MgpuRuntime, VBufId};
use crate::{Result, RuntimeError};
use mekong_analysis::ArgModel;
use mekong_gpusim::machine::SimArg;
use mekong_gpusim::TimeCat;
use mekong_kernel::{Dim3, Extent, Value};
use mekong_partition::{partition_grid, Partition};

/// An argument of a rewritten kernel launch.
#[derive(Debug, Clone, Copy)]
pub enum LaunchArg {
    Scalar(Value),
    Buf(VBufId),
}

/// A tracker-walk accumulator that turns remote-owned segments into a
/// minimal list of D2D copies (§8.3's transfer-coalescing pass).
///
/// With a non-zero `max_gap`, a segment from the same source device
/// extends the previous planned copy when every byte in between is
/// [`Owner::Uninit`] — undefined content may be overwritten freely — and
/// the gap is small enough that re-copying it is cheaper than paying a
/// second transfer latency. Fragmented trackers (e.g. from instrumented
/// strided writes) collapse from one copy per element run into one copy
/// per device this way.
struct TransferPlan {
    gpu: usize,
    max_gap: u64,
    copies: Vec<(usize, u64, u64)>,
    /// End of the last visited segment; a jump means the walk moved to a
    /// disjoint query range, which must not be bridged.
    cursor: u64,
    /// True while every byte since the last planned copy's end is known
    /// to be Uninit and contiguous with it.
    bridge: bool,
}

impl TransferPlan {
    fn new(gpu: usize, max_gap: u64) -> TransferPlan {
        TransferPlan {
            gpu,
            max_gap,
            copies: Vec::new(),
            cursor: 0,
            bridge: false,
        }
    }

    /// Break-even gap for a machine: bytes whose copy time equals one
    /// link latency.
    fn break_even_gap(machine: &mekong_gpusim::Machine) -> u64 {
        (machine.spec().link.latency * machine.spec().link.bandwidth) as u64
    }

    fn visit(&mut self, s: u64, e: u64, o: Owner) {
        if s != self.cursor {
            self.bridge = false;
        }
        self.cursor = e;
        match o {
            Owner::Device(d) if d != self.gpu => {
                match self.copies.last_mut() {
                    Some((ld, _, le)) if *ld == d && self.bridge && s - *le <= self.max_gap => {
                        *le = e;
                    }
                    _ => self.copies.push((d, s, e)),
                }
                self.bridge = true;
            }
            // Undefined bytes: a bridged copy may overwrite them.
            Owner::Uninit => {}
            // Local or host-owned bytes must survive: stop bridging.
            _ => self.bridge = false,
        }
    }
}

impl MgpuRuntime {
    /// The kernel-launch replacement: run `ck` over `grid × block` across
    /// all devices (Figure 4). Errors if the kernel failed the §4 checks.
    pub fn launch(
        &mut self,
        ck: &CompiledKernel,
        grid: Dim3,
        block: Dim3,
        args: &[LaunchArg],
    ) -> Result<()> {
        if !ck.is_partitionable() {
            return Err(RuntimeError::NotPartitionable(format!(
                "{}: {:?}",
                ck.model.kernel_name, ck.model.verdict
            )));
        }
        let scalars = self.validate_args(ck, args)?;
        let parts = partition_grid(grid, self.n_devices(), ck.model.partitioning);

        // ---- (2) synchronize read buffers --------------------------------
        if self.resolve_dependencies {
            for (gpu, part) in parts.iter().enumerate() {
                if part.is_empty() {
                    continue;
                }
                for (arg_idx, renum) in &ck.enums.reads {
                    let vb_id = match args[*arg_idx] {
                        LaunchArg::Buf(b) => b,
                        _ => unreachable!("validated"),
                    };
                    self.sync_buffer_for_partition(
                        vb_id,
                        renum,
                        part,
                        block,
                        grid,
                        &ck.enums.scalar_names,
                        &scalars,
                        gpu,
                    )?;
                }
            }
            // Figure 4, line 8: all_devs_synchronize().
            self.machine.sync_all();
        }

        // ---- (3) launch the partitions ------------------------------------
        for (gpu, part) in parts.iter().enumerate() {
            if part.is_empty() {
                continue;
            }
            let mut sim_args: Vec<SimArg> = Vec::with_capacity(args.len() + 6);
            for (idx, a) in args.iter().enumerate() {
                match a {
                    LaunchArg::Scalar(v) => sim_args.push(SimArg::Scalar(*v)),
                    LaunchArg::Buf(b) => {
                        let inst = self.buffers[b.0].instances[gpu];
                        let _ = idx;
                        sim_args.push(SimArg::Buf(inst));
                    }
                }
            }
            for &m in part.lo.iter().chain(part.hi.iter()) {
                sim_args.push(SimArg::Scalar(Value::I64(m)));
            }
            let traffic = ck.footprint_bytes(part, block, grid, &scalars);
            self.machine.launch_with_traffic(
                gpu,
                &ck.partitioned,
                &sim_args,
                part.launch_grid(),
                block,
                Some(traffic),
            )?;
        }

        // ---- (4) update trackers (concurrent to the async kernels) --------
        if self.resolve_dependencies {
            for (gpu, part) in parts.iter().enumerate() {
                if part.is_empty() {
                    continue;
                }
                for (arg_idx, wenum) in &ck.enums.writes {
                    let vb_id = match args[*arg_idx] {
                        LaunchArg::Buf(b) => b,
                        _ => unreachable!("validated"),
                    };
                    let elem = self.buffers[vb_id.0].elem_size as u64;
                    let mut updates: Vec<(u64, u64)> = Vec::new();
                    wenum.for_each_range(
                        part,
                        block,
                        grid,
                        &ck.enums.scalar_names,
                        &scalars,
                        &mut |r| {
                            updates.push((r.start * elem, r.end * elem));
                        },
                    );
                    let n_ranges = updates.len();
                    // Segment maintenance costs what the update actually
                    // walked, same accounting as the read path's query —
                    // not one flat segment per range.
                    let mut touched = 0usize;
                    for (s, e) in updates {
                        touched += self.buffers[vb_id.0]
                            .tracker
                            .update(s, e, Owner::Device(gpu));
                    }
                    let cost = self.machine.spec().host_per_range * n_ranges as f64
                        + self.machine.spec().host_per_segment * touched as f64;
                    self.machine.charge_host(cost, TimeCat::Pattern);
                    debug_assert!(self.buffers[vb_id.0].tracker.check_invariants());
                }
            }
        }
        Ok(())
    }

    /// Synchronize one virtual buffer for one partition (§8.3): enumerate
    /// the partition's read set, query the tracker for each range, and
    /// copy stale data from its most recent writer.
    #[allow(clippy::too_many_arguments)]
    fn sync_buffer_for_partition(
        &mut self,
        vb_id: VBufId,
        renum: &mekong_enumgen::AccessEnumerator,
        part: &Partition,
        block: Dim3,
        grid: Dim3,
        scalar_names: &[String],
        scalars: &[i64],
        gpu: usize,
    ) -> Result<()> {
        let vb = &self.buffers[vb_id.0];
        let elem = vb.elem_size as u64;
        let instances = vb.instances.clone();
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        renum.for_each_range(part, block, grid, scalar_names, scalars, &mut |r| {
            ranges.push((r.start * elem, r.end * elem));
        });
        let n_ranges = ranges.len();
        let max_gap = if self.config.coalesce_transfers {
            TransferPlan::break_even_gap(&self.machine)
        } else {
            0
        };
        let mut plan = TransferPlan::new(gpu, max_gap);
        let n_segments = if self.config.coalesce_transfers {
            // Merge adjacent/overlapping read ranges (e.g. consecutive
            // rows of a 2-D halo) so each owner run costs one segment —
            // and below, one D2D copy — instead of one per row.
            let (_, emitted) = vb
                .tracker
                .query_coalesced(&ranges, &mut |s, e, o| plan.visit(s, e, o));
            emitted
        } else {
            let mut emitted = 0usize;
            for &(s, e) in &ranges {
                vb.tracker.query(s, e, &mut |s, e, o| {
                    emitted += 1;
                    plan.visit(s, e, o);
                });
            }
            emitted
        };
        let cost = self.machine.spec().host_per_range * n_ranges as f64
            + self.machine.spec().host_per_segment * n_segments as f64;
        self.machine.charge_host(cost, TimeCat::Pattern);
        for (d, s, e) in plan.copies {
            self.machine.copy_d2d(
                instances[d],
                s as usize,
                instances[gpu],
                s as usize,
                (e - s) as usize,
            )?;
        }
        Ok(())
    }

    /// Single-device fallback path for kernels that failed the §4 checks
    /// (and the overhead baseline of §9.2): synchronize every argument
    /// buffer *fully* onto `device`, run the original kernel there, then
    /// claim the written buffers for `device`.
    pub fn launch_unpartitioned(
        &mut self,
        ck: &CompiledKernel,
        grid: Dim3,
        block: Dim3,
        args: &[LaunchArg],
        device: usize,
    ) -> Result<()> {
        let scalars = self.validate_args(ck, args)?;
        // Pull every array argument fully local.
        for a in args {
            if let LaunchArg::Buf(b) = a {
                self.sync_whole_buffer(*b, device)?;
            }
        }
        self.machine.sync_all();
        let mut sim_args: Vec<SimArg> = Vec::with_capacity(args.len());
        for a in args {
            match a {
                LaunchArg::Scalar(v) => sim_args.push(SimArg::Scalar(*v)),
                LaunchArg::Buf(b) => {
                    sim_args.push(SimArg::Buf(self.buffers[b.0].instances[device]))
                }
            }
        }
        let whole = Partition::whole(grid);
        let traffic = ck.footprint_bytes(&whole, block, grid, &scalars);
        self.machine.launch_with_traffic(
            device,
            &ck.original,
            &sim_args,
            grid,
            block,
            Some(traffic),
        )?;
        // Claim written buffers: after the full sync above, `device` holds
        // the freshest copy of everything it did not overwrite, so a full
        // claim is sound.
        for (idx, arg_model) in ck.model.args.iter().enumerate() {
            if arg_model.is_written_array() {
                if let LaunchArg::Buf(b) = args[idx] {
                    let len = self.buffers[b.0].len as u64;
                    self.buffers[b.0]
                        .tracker
                        .update(0, len, Owner::Device(device));
                }
            }
        }
        Ok(())
    }

    /// Multi-device launch for kernels whose **write patterns cannot be
    /// modeled statically** — the instrumentation path the paper's
    /// conclusion proposes (§11: "using instrumentation to collect write
    /// patterns"). Functional machines only.
    ///
    /// Reads are over-approximated to whole buffers (always legal); the
    /// partitions execute with write recording, and the observed write
    /// sets drive the tracker updates. If two partitions wrote the same
    /// element the kernel has a cross-partition WAW hazard and the launch
    /// fails *after the fact* — the caller should re-run unpartitioned.
    pub fn launch_instrumented(
        &mut self,
        ck: &CompiledKernel,
        grid: Dim3,
        block: Dim3,
        args: &[LaunchArg],
    ) -> Result<()> {
        let _scalars = self.validate_args(ck, args)?;
        if !self.machine.is_functional() {
            return Err(RuntimeError::Unsupported(
                "instrumented launches need a functional machine",
            ));
        }
        let parts = partition_grid(grid, self.n_devices(), ck.model.partitioning);

        // (1) Reads unknown: synchronize every argument buffer fully.
        for a in args {
            if let LaunchArg::Buf(b) = a {
                for gpu in 0..self.n_devices() {
                    self.sync_whole_buffer(*b, gpu)?;
                }
            }
        }
        self.machine.sync_all();

        // (2) Launch each partition with write recording.
        let mut observed_per_gpu: Vec<std::collections::HashMap<usize, Vec<(u64, u64)>>> =
            Vec::new();
        for (gpu, part) in parts.iter().enumerate() {
            if part.is_empty() {
                observed_per_gpu.push(Default::default());
                continue;
            }
            let mut sim_args: Vec<SimArg> = Vec::with_capacity(args.len() + 6);
            for a in args {
                match a {
                    LaunchArg::Scalar(v) => sim_args.push(SimArg::Scalar(*v)),
                    LaunchArg::Buf(b) => {
                        sim_args.push(SimArg::Buf(self.buffers[b.0].instances[gpu]))
                    }
                }
            }
            for &m in part.lo.iter().chain(part.hi.iter()) {
                sim_args.push(SimArg::Scalar(Value::I64(m)));
            }
            let obs = self.machine.launch_recording(
                gpu,
                &ck.partitioned,
                &sim_args,
                part.launch_grid(),
                block,
            )?;
            observed_per_gpu.push(obs);
        }

        // (3) Check cross-partition write disjointness, then update
        // trackers from the observed ranges.
        for (idx, a) in args.iter().enumerate() {
            let b = match a {
                LaunchArg::Buf(b) => *b,
                _ => continue,
            };
            let elem = self.buffers[b.0].elem_size as u64;
            // Collect (gpu, range) pairs for this buffer.
            let mut claims: Vec<(usize, u64, u64)> = Vec::new();
            for (gpu, obs) in observed_per_gpu.iter().enumerate() {
                let handle = self.buffers[b.0].instances[gpu].handle;
                if let Some(ranges) = obs.get(&handle) {
                    for &(s, e) in ranges {
                        claims.push((gpu, s * elem, e * elem));
                    }
                }
            }
            claims.sort_by_key(|&(_, s, _)| s);
            for w in claims.windows(2) {
                let (g0, _, e0) = w[0];
                let (g1, s1, _) = w[1];
                if g0 != g1 && s1 < e0 {
                    return Err(RuntimeError::NotPartitionable(format!(
                        "instrumentation observed a cross-partition write collision \
                         on argument {} (devices {g0} and {g1})",
                        ck.model.args[idx].name()
                    )));
                }
            }
            let n_claims = claims.len() as f64;
            for (gpu, s, e) in claims {
                self.buffers[b.0].tracker.update(s, e, Owner::Device(gpu));
            }
            let cost = (self.machine.spec().host_per_range + self.machine.spec().host_per_segment)
                * n_claims;
            self.machine.charge_host(cost, TimeCat::Pattern);
        }
        Ok(())
    }

    /// Pull every stale byte of one buffer onto `gpu`. A full-range
    /// query emits maximal same-owner segments already; the transfer
    /// plan additionally bridges same-source copies across small Uninit
    /// gaps, which collapses fragmented trackers.
    fn sync_whole_buffer(&mut self, b: VBufId, gpu: usize) -> Result<()> {
        let vb = &self.buffers[b.0];
        let instances = vb.instances.clone();
        let max_gap = if self.config.coalesce_transfers {
            TransferPlan::break_even_gap(&self.machine)
        } else {
            0
        };
        let mut plan = TransferPlan::new(gpu, max_gap);
        let mut n_segments = 0u64;
        vb.tracker.query(0, vb.len as u64, &mut |s, e, o| {
            n_segments += 1;
            plan.visit(s, e, o);
        });
        let cost = self.machine.spec().host_per_segment * n_segments as f64;
        self.machine.charge_host(cost, TimeCat::Pattern);
        for (d, s, e) in plan.copies {
            self.machine.copy_d2d(
                instances[d],
                s as usize,
                instances[gpu],
                s as usize,
                (e - s) as usize,
            )?;
        }
        Ok(())
    }

    /// Validate launch arguments against the model; returns the scalar
    /// values (as i64, floats as 0) in scalar-parameter order for the
    /// enumerators (§6.2: "the scalar arguments are simply copied into an
    /// array from the kernel launch they belong to").
    fn validate_args(&self, ck: &CompiledKernel, args: &[LaunchArg]) -> Result<Vec<i64>> {
        if args.len() != ck.model.args.len() {
            return Err(RuntimeError::BadArgument(format!(
                "expected {} arguments, got {}",
                ck.model.args.len(),
                args.len()
            )));
        }
        let mut scalars = Vec::new();
        for (model_arg, arg) in ck.model.args.iter().zip(args) {
            match (model_arg, arg) {
                (ArgModel::Scalar { .. }, LaunchArg::Scalar(v)) => {
                    scalars.push(v.as_i64().unwrap_or(0));
                }
                (ArgModel::Array { .. }, LaunchArg::Buf(_)) => {}
                (m, a) => {
                    return Err(RuntimeError::BadArgument(format!(
                        "argument {:?} does not match parameter {}",
                        a,
                        m.name()
                    )))
                }
            }
        }
        // Check array sizes against extents.
        for (model_arg, arg) in ck.model.args.iter().zip(args) {
            if let (ArgModel::Array { elem, extents, .. }, LaunchArg::Buf(b)) = (model_arg, arg) {
                let mut elems: i64 = 1;
                for e in extents {
                    elems *= match e {
                        Extent::Const(c) => *c,
                        Extent::Param(p) => {
                            let idx = ck
                                .model
                                .scalar_params
                                .iter()
                                .position(|n| n == p)
                                .expect("extent param exists");
                            scalars[idx]
                        }
                    };
                }
                let expected = elems as usize * elem.size_bytes();
                let got = self.buffers[b.0].len;
                if expected != got {
                    return Err(RuntimeError::SizeMismatch { expected, got });
                }
            }
        }
        Ok(scalars)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vbuf::RuntimeConfig;
    use mekong_gpusim::{Machine, MachineSpec};
    use mekong_kernel::builder::*;
    use mekong_kernel::Kernel;

    fn runtime(n: usize) -> MgpuRuntime {
        MgpuRuntime::new(Machine::new(MachineSpec::kepler_system(n), true))
    }

    fn f32s(bytes: &[u8]) -> Vec<f32> {
        bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    fn scale_kernel() -> Kernel {
        Kernel {
            name: "scale".into(),
            params: vec![
                scalar("n"),
                array_f32("a", &[ext("n")]),
                array_f32("b", &[ext("n")]),
            ],
            body: vec![
                let_("i", global_x()),
                guard_return(v("i").ge(v("n"))),
                store("b", vec![v("i")], load("a", vec![v("i")]) * f(3.0)),
            ],
        }
    }

    #[test]
    fn partitioned_scale_matches_expected() {
        let ck = CompiledKernel::compile(&scale_kernel()).unwrap();
        let mut rt = runtime(4);
        let n = 1000usize;
        let a = rt.malloc(n * 4, 4).unwrap();
        let b = rt.malloc(n * 4, 4).unwrap();
        let data: Vec<u8> = (0..n).flat_map(|i| (i as f32).to_le_bytes()).collect();
        rt.memcpy_h2d(a, &data).unwrap();
        rt.launch(
            &ck,
            Dim3::new1(8), // 8 blocks x 128 = 1024 threads
            Dim3::new1(128),
            &[
                LaunchArg::Scalar(Value::I64(n as i64)),
                LaunchArg::Buf(a),
                LaunchArg::Buf(b),
            ],
        )
        .unwrap();
        rt.synchronize();
        let mut out = vec![0u8; n * 4];
        rt.memcpy_d2h(b, &mut out).unwrap();
        for (i, v) in f32s(&out).iter().enumerate() {
            assert_eq!(*v, 3.0 * i as f32, "element {i}");
        }
        assert!(rt.elapsed() > 0.0);
    }

    /// Iterative 1-D stencil: the real coherence test. Each iteration
    /// reads the halo written by neighboring devices in the previous one.
    #[test]
    fn iterative_stencil_stays_coherent_across_devices() {
        let stencil = Kernel {
            name: "stencil".into(),
            params: vec![
                scalar("n"),
                array_f32("input", &[ext("n")]),
                array_f32("output", &[ext("n")]),
            ],
            body: vec![
                let_("i", global_x()),
                guard_return(v("i").ge(v("n"))),
                if_(
                    v("i").eq_(i(0)).or(v("i").eq_(v("n") - i(1))),
                    vec![store("output", vec![v("i")], load("input", vec![v("i")]))],
                    vec![store(
                        "output",
                        vec![v("i")],
                        (load("input", vec![v("i") - i(1)])
                            + load("input", vec![v("i")])
                            + load("input", vec![v("i") + i(1)]))
                            / f(3.0),
                    )],
                ),
            ],
        };
        let ck = CompiledKernel::compile(&stencil).unwrap();
        assert!(ck.is_partitionable(), "verdict: {:?}", ck.model.verdict);

        let n = 512usize;
        let iters = 6;
        let grid = Dim3::new1(4);
        let block = Dim3::new1(128);
        let init: Vec<f32> = (0..n).map(|i| ((i * 37) % 101) as f32).collect();
        let init_bytes: Vec<u8> = init.iter().flat_map(|v| v.to_le_bytes()).collect();

        // CPU reference.
        let mut cur = init.clone();
        for _ in 0..iters {
            let mut next = cur.clone();
            for i in 1..n - 1 {
                next[i] = (cur[i - 1] + cur[i] + cur[i + 1]) / 3.0;
            }
            cur = next;
        }

        // Multi-device run with ping-pong buffers.
        let mut rt = runtime(4);
        let a = rt.malloc(n * 4, 4).unwrap();
        let b = rt.malloc(n * 4, 4).unwrap();
        rt.memcpy_h2d(a, &init_bytes).unwrap();
        rt.memcpy_h2d(b, &init_bytes).unwrap();
        let (mut src, mut dst) = (a, b);
        for _ in 0..iters {
            rt.launch(
                &ck,
                grid,
                block,
                &[
                    LaunchArg::Scalar(Value::I64(n as i64)),
                    LaunchArg::Buf(src),
                    LaunchArg::Buf(dst),
                ],
            )
            .unwrap();
            std::mem::swap(&mut src, &mut dst);
        }
        rt.synchronize();
        let mut out = vec![0u8; n * 4];
        rt.memcpy_d2h(src, &mut out).unwrap();
        let got = f32s(&out);
        for i in 0..n {
            assert!(
                (got[i] - cur[i]).abs() < 1e-4,
                "element {i}: {} vs {}",
                got[i],
                cur[i]
            );
        }
    }

    /// §11 extension: a data-dependent scatter becomes multi-GPU runnable
    /// through instrumented write collection, as long as partitions write
    /// disjoint elements.
    #[test]
    fn instrumented_launch_runs_unmodelable_scatter() {
        // out[perm[i]] = a[i] where perm maps each partition's indices
        // into its own range (i -> i^1 within pairs stays partition-local
        // for even partition boundaries). Here: perm[i] = i ^ 1 via
        // arithmetic: i + 1 - 2*(i % 2).
        let scatter = Kernel {
            name: "scatter".into(),
            params: vec![
                scalar("n"),
                array_f32("idx", &[ext("n")]),
                array_f32("a", &[ext("n")]),
                array_f32("out", &[ext("n")]),
            ],
            body: vec![
                let_("i", global_x()),
                guard_return(v("i").ge(v("n"))),
                store(
                    "out",
                    vec![to_i64(load("idx", vec![v("i")]))],
                    load("a", vec![v("i")]),
                ),
            ],
        };
        let ck = CompiledKernel::compile(&scatter).unwrap();
        assert!(!ck.is_partitionable(), "scatter must fail static checks");

        let n = 256usize;
        let mut rt = runtime(4);
        let idx = rt.malloc(n * 4, 4).unwrap();
        let a = rt.malloc(n * 4, 4).unwrap();
        let out = rt.malloc(n * 4, 4).unwrap();
        // Pairwise swap permutation.
        let perm: Vec<usize> = (0..n).map(|i| i ^ 1).collect();
        let idx_host: Vec<u8> = perm
            .iter()
            .flat_map(|&p| (p as f32).to_le_bytes())
            .collect();
        let a_host: Vec<u8> = (0..n).flat_map(|i| (i as f32).to_le_bytes()).collect();
        rt.memcpy_h2d(idx, &idx_host).unwrap();
        rt.memcpy_h2d(a, &a_host).unwrap();
        let args = [
            LaunchArg::Scalar(Value::I64(n as i64)),
            LaunchArg::Buf(idx),
            LaunchArg::Buf(a),
            LaunchArg::Buf(out),
        ];
        let grid = Dim3::new1(4);
        let block = Dim3::new1(64);
        // Static path refuses...
        assert!(rt.launch(&ck, grid, block, &args).is_err());
        // ...instrumented path succeeds and is correct.
        rt.launch_instrumented(&ck, grid, block, &args).unwrap();
        rt.synchronize();
        let mut host = vec![0u8; n * 4];
        rt.memcpy_d2h(out, &mut host).unwrap();
        let got = f32s(&host);
        for i in 0..n {
            assert_eq!(got[perm[i]], i as f32, "element {i}");
        }
    }

    #[test]
    fn instrumented_launch_detects_cross_partition_collisions() {
        // Every thread writes element 0: partitions collide; the
        // instrumentation must detect it after the fact.
        let bad = Kernel {
            name: "collide".into(),
            params: vec![
                scalar("n"),
                array_f32("idx", &[ext("n")]),
                array_f32("out", &[ext("n")]),
            ],
            body: vec![
                let_("i", global_x()),
                guard_return(v("i").ge(v("n"))),
                store("out", vec![to_i64(load("idx", vec![v("i")]))], f(1.0)),
            ],
        };
        let ck = CompiledKernel::compile(&bad).unwrap();
        let n = 128usize;
        let mut rt = runtime(4);
        let idx = rt.malloc(n * 4, 4).unwrap();
        let out = rt.malloc(n * 4, 4).unwrap();
        rt.memcpy_h2d(idx, &vec![0u8; n * 4]).unwrap(); // all zeros
        let args = [
            LaunchArg::Scalar(Value::I64(n as i64)),
            LaunchArg::Buf(idx),
            LaunchArg::Buf(out),
        ];
        let err = rt
            .launch_instrumented(&ck, Dim3::new1(4), Dim3::new1(32), &args)
            .unwrap_err();
        assert!(matches!(err, RuntimeError::NotPartitionable(_)), "{err}");
    }

    #[test]
    fn unpartitionable_kernel_is_rejected_then_fallback_works() {
        let bad = Kernel {
            name: "allzero".into(),
            params: vec![scalar("n"), array_f32("out", &[ext("n")])],
            body: vec![store("out", vec![i(0)], f(1.0))],
        };
        let ck = CompiledKernel::compile(&bad).unwrap();
        let mut rt = runtime(2);
        let n = 64usize;
        let out = rt.malloc(n * 4, 4).unwrap();
        let err = rt
            .launch(
                &ck,
                Dim3::new1(1),
                Dim3::new1(64),
                &[LaunchArg::Scalar(Value::I64(n as i64)), LaunchArg::Buf(out)],
            )
            .unwrap_err();
        assert!(matches!(err, RuntimeError::NotPartitionable(_)));
        // The single-device fallback executes it correctly.
        rt.launch_unpartitioned(
            &ck,
            Dim3::new1(1),
            Dim3::new1(64),
            &[LaunchArg::Scalar(Value::I64(n as i64)), LaunchArg::Buf(out)],
            0,
        )
        .unwrap();
        rt.synchronize();
        let mut host = vec![0u8; n * 4];
        rt.memcpy_d2h(out, &mut host).unwrap();
        assert_eq!(f32s(&host)[0], 1.0);
    }

    #[test]
    fn argument_validation_catches_mismatches() {
        let ck = CompiledKernel::compile(&scale_kernel()).unwrap();
        let mut rt = runtime(2);
        let a = rt.malloc(100 * 4, 4).unwrap();
        let b = rt.malloc(100 * 4, 4).unwrap();
        // Wrong count.
        assert!(rt
            .launch(&ck, Dim3::new1(1), Dim3::new1(32), &[LaunchArg::Buf(a)])
            .is_err());
        // Scalar where array expected.
        assert!(rt
            .launch(
                &ck,
                Dim3::new1(1),
                Dim3::new1(32),
                &[
                    LaunchArg::Scalar(Value::I64(100)),
                    LaunchArg::Scalar(Value::I64(1)),
                    LaunchArg::Buf(b),
                ],
            )
            .is_err());
        // Buffer sized for n=100 but launched with n=200.
        assert!(matches!(
            rt.launch(
                &ck,
                Dim3::new1(1),
                Dim3::new1(32),
                &[
                    LaunchArg::Scalar(Value::I64(200)),
                    LaunchArg::Buf(a),
                    LaunchArg::Buf(b),
                ],
            ),
            Err(RuntimeError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn beta_and_gamma_reduce_elapsed_time() {
        let ck = CompiledKernel::compile(&scale_kernel()).unwrap();
        let n = 1 << 16;
        let run = |cfg: RuntimeConfig| -> f64 {
            let mut rt = MgpuRuntime::new(Machine::new(MachineSpec::kepler_system(4), false));
            rt.set_config(cfg);
            let a = rt.malloc(n * 4, 4).unwrap();
            let b = rt.malloc(n * 4, 4).unwrap();
            let data = vec![0u8; n * 4];
            rt.memcpy_h2d(a, &data).unwrap();
            for _ in 0..10 {
                rt.launch(
                    &ck,
                    Dim3::new1((n / 256) as u32),
                    Dim3::new1(256),
                    &[
                        LaunchArg::Scalar(Value::I64(n as i64)),
                        LaunchArg::Buf(a),
                        LaunchArg::Buf(b),
                    ],
                )
                .unwrap();
            }
            rt.synchronize();
            rt.elapsed()
        };
        let alpha = run(RuntimeConfig::alpha());
        let beta = run(RuntimeConfig::beta());
        let gamma = run(RuntimeConfig::gamma());
        assert!(alpha >= beta, "alpha {alpha} >= beta {beta}");
        assert!(beta >= gamma, "beta {beta} >= gamma {gamma}");
        assert!(gamma > 0.0);
    }

    #[test]
    fn transfer_plan_bridges_uninit_gaps_only() {
        use crate::tracker::Tracker;
        let mut t = Tracker::new(100);
        t.update(0, 10, Owner::Device(1));
        t.update(20, 30, Owner::Device(1));
        t.update(30, 40, Owner::Device(0));
        t.update(40, 50, Owner::Device(1));
        let walk = |plan: &mut TransferPlan| {
            t.query(0, 100, &mut |s, e, o| plan.visit(s, e, o));
        };
        // Generous gap budget: [0,10) and [20,30) bridge across the
        // Uninit hole, but never across the locally-owned [30,40).
        let mut plan = TransferPlan::new(0, 100);
        walk(&mut plan);
        assert_eq!(plan.copies, vec![(1, 0, 30), (1, 40, 50)]);
        // Gap budget smaller than the hole: no bridging.
        let mut plan = TransferPlan::new(0, 5);
        walk(&mut plan);
        assert_eq!(plan.copies, vec![(1, 0, 10), (1, 20, 30), (1, 40, 50)]);
        // From device 1's perspective only [30,40) is remote.
        let mut plan = TransferPlan::new(1, 100);
        walk(&mut plan);
        assert_eq!(plan.copies, vec![(0, 30, 40)]);
    }

    /// Fragmented-tracker coalescing end to end: instrumented strided
    /// writes leave `out` as alternating Device/Uninit single-element
    /// segments; pulling it onto one device then needs one bridged copy
    /// per source instead of one per element.
    #[test]
    fn coalescing_collapses_fragmented_tracker_transfers() {
        let scatter = Kernel {
            name: "stride_scatter".into(),
            params: vec![
                scalar("n"),
                array_f32("idx", &[ext("n")]),
                array_f32("a", &[ext("n")]),
                array_f32("out", &[ext("n")]),
            ],
            body: vec![
                let_("i", global_x()),
                guard_return(v("i").ge(v("n") / i(2))),
                store(
                    "out",
                    vec![to_i64(load("idx", vec![v("i")]))],
                    load("a", vec![v("i")]),
                ),
            ],
        };
        let ck = CompiledKernel::compile(&scatter).unwrap();
        let reader = CompiledKernel::compile(&scale_kernel()).unwrap();
        let n = 2048usize;
        let run = |coalesce: bool| -> (u64, f64) {
            let mut rt = runtime(4);
            rt.set_config(RuntimeConfig {
                coalesce_transfers: coalesce,
                ..RuntimeConfig::alpha()
            });
            let idx = rt.malloc(n * 4, 4).unwrap();
            let a = rt.malloc(n * 4, 4).unwrap();
            let out = rt.malloc(n * 4, 4).unwrap();
            let idx_host: Vec<u8> = (0..n)
                .flat_map(|i| ((2 * i) as f32).to_le_bytes())
                .collect();
            rt.memcpy_h2d(idx, &idx_host).unwrap();
            rt.memcpy_h2d(a, &vec![0u8; n * 4]).unwrap();
            rt.launch_instrumented(
                &ck,
                Dim3::new1(8),
                Dim3::new1(128),
                &[
                    LaunchArg::Scalar(Value::I64(n as i64)),
                    LaunchArg::Buf(idx),
                    LaunchArg::Buf(a),
                    LaunchArg::Buf(out),
                ],
            )
            .unwrap();
            assert!(rt.segment_count(out) > n / 2, "tracker must be fragmented");
            let res = rt.malloc(n * 4, 4).unwrap();
            let before = rt.machine().counters().d2d_copies;
            let t0 = rt.elapsed();
            rt.launch_unpartitioned(
                &reader,
                Dim3::new1(8),
                Dim3::new1(256),
                &[
                    LaunchArg::Scalar(Value::I64(n as i64)),
                    LaunchArg::Buf(out),
                    LaunchArg::Buf(res),
                ],
                0,
            )
            .unwrap();
            rt.synchronize();
            (
                rt.machine().counters().d2d_copies - before,
                rt.elapsed() - t0,
            )
        };
        let (copies_plain, time_plain) = run(false);
        let (copies_coalesced, time_coalesced) = run(true);
        // 3 remote devices hold ~n/8 single-element segments each.
        assert!(
            copies_plain > 500,
            "expected fragmentation, got {copies_plain}"
        );
        assert_eq!(copies_coalesced, 3, "one bridged copy per remote device");
        assert!(
            time_coalesced < time_plain,
            "saved latencies must show up: {time_coalesced} vs {time_plain}"
        );
    }

    #[test]
    fn tracker_reflects_partition_writes() {
        let ck = CompiledKernel::compile(&scale_kernel()).unwrap();
        let mut rt = runtime(4);
        let n = 1024usize;
        let a = rt.malloc(n * 4, 4).unwrap();
        let b = rt.malloc(n * 4, 4).unwrap();
        rt.memcpy_h2d(a, &vec![0u8; n * 4]).unwrap();
        rt.launch(
            &ck,
            Dim3::new1(8),
            Dim3::new1(128),
            &[
                LaunchArg::Scalar(Value::I64(n as i64)),
                LaunchArg::Buf(a),
                LaunchArg::Buf(b),
            ],
        )
        .unwrap();
        // 1:1 write pattern -> exactly one segment per device (§8.1).
        assert_eq!(rt.segment_count(b), 4);
    }
}
