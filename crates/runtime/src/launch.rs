//! The partitioned kernel-launch sequence (paper §5, Figure 4):
//!
//! 1. partition the execution grid for the available GPUs,
//! 2. synchronize all buffers that are read from,
//! 3. launch each partition of the kernel on its device,
//! 4. update the buffer trackers for all writes.

use crate::compiled::CompiledKernel;
use crate::plan::{ArgKey, LaunchPlan, PlanCopy, PlanKey, PlanLaunch, PlanUpdate};
use crate::tracker::{Owner, Validity};
use crate::vbuf::{MgpuRuntime, VBufId, VirtualBuffer};
use crate::{Result, RuntimeError};
use mekong_analysis::ArgModel;
use mekong_enumgen::AccessEnumerator;
use mekong_gpusim::machine::SimArg;
use mekong_gpusim::{sample_kernel_profile, TimeCat};
use mekong_kernel::{Dim3, Extent, KernelArg, Value};
use mekong_partition::{partition_grid, Partition};
use mekong_tuner::{
    rank_candidates_opts, strided_groups, Candidate, OwnedSegment, Ownership, PartitionStrategy,
    ReadModel, TuneKey, TunerInput, WriteModel,
};
use rayon::prelude::*;
use std::sync::Arc;

/// An argument of a rewritten kernel launch.
#[derive(Debug, Clone, Copy)]
pub enum LaunchArg {
    Scalar(Value),
    Buf(VBufId),
}

/// A tracker-walk accumulator that turns remote-fresh segments into a
/// minimal list of D2D copies (§8.3's transfer-coalescing pass, extended
/// with replica awareness).
///
/// With a non-zero `max_gap`, a segment from the same source device
/// extends the previous planned copy when every byte in between is
/// [`Owner::Uninit`] — undefined content may be overwritten freely — and
/// the gap is small enough that re-copying it is cheaper than paying a
/// second transfer latency. Fragmented trackers (e.g. from instrumented
/// strided writes) collapse from one copy per element run into one copy
/// per device this way.
///
/// With `replica` set, the destination's own validity is consulted:
/// segments the destination already holds are *skipped* (the replica
/// serves the read — counted as a hit when the freshest copy is remote),
/// and the source of each needed copy is picked among all valid holders,
/// preferring the previous copy's source (coalescing) and then the
/// nearest link ([`mekong_gpusim::MachineSpec::link_hops`]). Without it,
/// only the freshest owner is eligible, as in the paper.
struct TransferPlan {
    gpu: usize,
    max_gap: u64,
    replica: bool,
    copies: Vec<(usize, u64, u64)>,
    /// End of the last visited segment; a jump means the walk moved to a
    /// disjoint query range, which must not be bridged.
    cursor: u64,
    /// True while every byte since the last planned copy's end is known
    /// to be Uninit and contiguous with it.
    bridge: bool,
    /// Remote-fresh segment runs a local replica served (no copy needed).
    replica_hits: u64,
    /// Bytes those skips saved versus single-owner tracking.
    saved_bytes: u64,
}

impl TransferPlan {
    fn new(gpu: usize, max_gap: u64, replica: bool) -> TransferPlan {
        TransferPlan {
            gpu,
            max_gap,
            replica,
            copies: Vec::new(),
            cursor: 0,
            bridge: false,
            replica_hits: 0,
            saved_bytes: 0,
        }
    }

    /// Break-even gap for a machine: bytes whose copy time equals one
    /// link latency.
    fn break_even_gap(machine: &dyn mekong_gpusim::Backend) -> u64 {
        (machine.spec().link.latency * machine.spec().link.bandwidth) as u64
    }

    fn visit(&mut self, s: u64, e: u64, v: Validity) {
        if s != self.cursor {
            self.bridge = false;
        }
        self.cursor = e;
        let d = match v.freshest {
            Owner::Device(d) => d,
            // Undefined bytes: a bridged copy may overwrite them.
            Owner::Uninit => return,
            // Host-fresh bytes a device replica serves need no copy; with
            // no local replica they must survive untouched either way.
            Owner::Host => {
                self.bridge = false;
                return;
            }
        };
        if self.replica && v.holders.contains(self.gpu) {
            // The destination already holds these bytes. Single-owner
            // tracking would have re-fetched them whenever the freshest
            // copy is remote — count that saved transfer.
            if d != self.gpu {
                self.replica_hits += 1;
                self.saved_bytes += e - s;
            }
            self.bridge = false;
            return;
        }
        if d == self.gpu {
            // Local bytes must survive: stop bridging.
            self.bridge = false;
            return;
        }
        // A copy is needed. Among the valid holders (the freshest owner
        // is always one), prefer extending the previous planned copy,
        // then the nearest link, then the lowest index — a deterministic
        // function of tracker state, so captured plans stay replayable.
        let src = if self.replica {
            match self.copies.last() {
                Some(&(ld, _, le))
                    if self.bridge && s - le <= self.max_gap && v.holders.contains(ld) =>
                {
                    ld
                }
                _ => v
                    .holders
                    .iter()
                    .filter(|&h| h != self.gpu)
                    .min_by_key(|&h| (mekong_gpusim::MachineSpec::link_hops(h, self.gpu), h))
                    .unwrap_or(d),
            }
        } else {
            d
        };
        match self.copies.last_mut() {
            Some((ld, _, le)) if *ld == src && self.bridge && s - *le <= self.max_gap => {
                *le = e;
            }
            _ => self.copies.push((src, s, e)),
        }
        self.bridge = true;
    }
}

/// The precomputed synchronization of one `(gpu, read-argument)` pair:
/// the enumerator walk and tracker query reduced to cost terms plus the
/// coalesced D2D copy list. Planning is a read-only function of the
/// buffer state, so a capturing miss plans every pair in parallel;
/// applying the plans (charging costs, issuing copies) stays serial and
/// in the §5 order.
struct SyncPlan {
    vb: VBufId,
    gpu: usize,
    n_ranges: usize,
    n_segments: usize,
    /// `(source device, start, end)` in bytes.
    copies: Vec<(usize, u64, u64)>,
    /// Remote-fresh segment runs served by a local replica (no copy).
    replica_hits: u64,
    /// Bytes those replica hits avoided re-fetching.
    saved_bytes: u64,
    /// Bytes of this partition's read footprint when the enumerator is
    /// an *inexact* interval box (bounded may-read); 0 for exact maps.
    fetch_bytes: u64,
}

/// Total length in bytes of a set of possibly-overlapping ranges.
fn merged_len(ranges: &[(u64, u64)]) -> u64 {
    let mut sorted = ranges.to_vec();
    sorted.sort_unstable();
    let mut total = 0u64;
    let mut cur: Option<(u64, u64)> = None;
    for (s, e) in sorted {
        match &mut cur {
            Some((_, ce)) if s <= *ce => *ce = (*ce).max(e),
            _ => {
                if let Some((cs, ce)) = cur {
                    total += ce - cs;
                }
                cur = Some((s, e));
            }
        }
    }
    if let Some((cs, ce)) = cur {
        total += ce - cs;
    }
    total
}

/// Plan the synchronization of `vb` for one partition (§8.3): enumerate
/// the partition's read set, query the tracker for each range, and turn
/// remote-owned segments into a minimal copy list. Mutates nothing.
#[allow(clippy::too_many_arguments)]
fn plan_sync(
    vb: &VirtualBuffer,
    vb_id: VBufId,
    renum: &AccessEnumerator,
    part: &Partition,
    block: Dim3,
    grid: Dim3,
    scalar_names: &[String],
    scalars: &[i64],
    gpu: usize,
    max_gap: u64,
    coalesce: bool,
    replica: bool,
) -> SyncPlan {
    let elem = vb.elem_size as u64;
    let mut ranges: Vec<(u64, u64)> = Vec::new();
    renum.for_each_range(part, block, grid, scalar_names, scalars, &mut |r| {
        ranges.push((r.start * elem, r.end * elem));
    });
    let n_ranges = ranges.len();
    // Inexact enumerators are interval boxes from the abstract
    // interpreter: everything they enumerate is may-read over-fetch
    // territory, so meter it (the whole-grid baseline is subtracted by
    // the caller).
    let fetch_bytes = if renum.is_exact() {
        0
    } else {
        merged_len(&ranges)
    };
    let mut plan = TransferPlan::new(gpu, max_gap, replica);
    let n_segments = if coalesce {
        // Merge adjacent/overlapping read ranges (e.g. consecutive rows
        // of a 2-D halo) so each validity run costs one segment — and one
        // D2D copy — instead of one per row.
        let (_, emitted) = vb
            .tracker
            .query_coalesced(&ranges, &mut |s, e, v| plan.visit(s, e, v));
        emitted
    } else {
        let mut emitted = 0usize;
        for &(s, e) in &ranges {
            vb.tracker.query(s, e, &mut |s, e, v| {
                emitted += 1;
                plan.visit(s, e, v);
            });
        }
        emitted
    };
    SyncPlan {
        vb: vb_id,
        gpu,
        n_ranges,
        n_segments,
        copies: plan.copies,
        replica_hits: plan.replica_hits,
        saved_bytes: plan.saved_bytes,
        fetch_bytes,
    }
}

/// Find a pair of *different* devices whose observed write ranges
/// overlap, if any (`claims` holds `(device, start, end)` triples and is
/// sorted by start as a side effect). Returns the two devices.
///
/// A single running max-end is not enough once a device may contribute
/// nested ranges: after sorting, `(A,0,100), (A,10,20), (B,50,60)` has
/// no *adjacent* conflicting pair. Instead keep the furthest-reaching
/// end seen so far plus the furthest end among claims of any *other*
/// device: for a claim of device `g`, an overlap with an earlier claim
/// of another device exists iff `start < max{end of earlier claims not
/// from g}` — which is the leader's end when the leader is another
/// device, else the runner-up's.
fn cross_device_overlap(claims: &mut [(usize, u64, u64)]) -> Option<(usize, usize)> {
    claims.sort_by_key(|&(_, s, _)| s);
    // Furthest-reaching earlier claim (end, device)…
    let mut max_end = 0u64;
    let mut max_dev = usize::MAX;
    // …and the furthest among earlier claims of devices != max_dev.
    let mut other_end = 0u64;
    let mut other_dev = usize::MAX;
    for &(g, s, e) in claims.iter() {
        if s >= e {
            continue; // empty claims cover nothing
        }
        if max_dev != usize::MAX {
            if g == max_dev {
                if s < other_end {
                    return Some((other_dev, g));
                }
            } else if s < max_end {
                return Some((max_dev, g));
            }
        }
        if max_dev == usize::MAX || g == max_dev {
            max_dev = g;
            max_end = max_end.max(e);
        } else if e > max_end {
            other_end = max_end;
            other_dev = max_dev;
            max_end = e;
            max_dev = g;
        } else if e > other_end {
            other_end = e;
            other_dev = g;
        }
    }
    None
}

impl MgpuRuntime {
    /// The kernel-launch replacement: run `ck` over `grid × block` across
    /// all devices (Figure 4). Errors if the kernel failed the §4 checks.
    ///
    /// With [`crate::RuntimeConfig::capture_plans`] on, the complete
    /// command sequence is captured into the plan cache on a miss and
    /// replayed directly on a hit (see [`crate::plan`]).
    pub fn launch(
        &mut self,
        ck: &CompiledKernel,
        grid: Dim3,
        block: Dim3,
        args: &[LaunchArg],
    ) -> Result<()> {
        if !ck.is_partitionable() {
            return Err(RuntimeError::NotPartitionable(format!(
                "{}: {:?}",
                ck.model.kernel_name, ck.model.verdict
            )));
        }
        let scalars = self.validate_args(ck, args)?;
        let strategy = self.strategy_for(ck, grid, block, args, &scalars)?;
        let parts = match &strategy {
            Some(s) => s.partitions(grid),
            None => partition_grid(grid, self.n_devices(), ck.model.partitioning),
        };
        // Partition-safety gate: a launch that actually splits the grid
        // must run along axes the static checker proved write-disjoint
        // (mekong-check) — for a rectangular tiling, *every* split axis
        // needs its own proof. With enforcement off the launch proceeds
        // but is counted, so experiments can quantify how often they ran
        // unproven.
        if parts.iter().filter(|p| !p.is_empty()).count() > 1 {
            let axes = strategy
                .as_ref()
                .map(|s| s.split_axes())
                .unwrap_or_else(|| vec![ck.model.partitioning]);
            match axes.iter().find(|a| !ck.safe_axes.allows(**a)) {
                None => self.machine.note_check_safe(),
                Some(axis) => {
                    self.machine.note_check_rejected();
                    if self.config.enforce_partition_safety {
                        return Err(RuntimeError::NotPartitionable(format!(
                            "{}: split along axis {} has no static write-disjointness proof \
                             (proven axes {})",
                            ck.model.kernel_name, axis, ck.safe_axes
                        )));
                    }
                }
            }
        }
        // Peer-traffic delta around the launch feeds online refinement —
        // but not while a forced override is active: those launches run
        // a strategy the tuner did not choose, and mixing their bytes
        // into its measurement windows would corrupt the averages.
        let d2d_before = (self.config.autotune && !self.forced.contains_key(&ck.model.kernel_name))
            .then(|| self.machine.counters().d2d_bytes);
        let capture = self.config.capture_plans && self.resolve_dependencies;
        if capture {
            let key = self.plan_key(ck, grid, block, args, strategy.as_ref(), &parts);
            if let Some((plan, captured_by)) = self.plan_cache.get(&key) {
                if captured_by != self.namespace {
                    // Another tenant (or a loaded snapshot) captured this
                    // plan — the cross-tenant sharing the serving layer
                    // exists for.
                    self.machine.note_plan_shared_hit();
                }
                self.replay_plan(ck, block, args, &plan)?;
            } else {
                // A cold launch walks trackers and observes device
                // clocks directly: drain the launch-ahead window first.
                self.pipeline_flush();
                self.machine.note_plan_miss();
                let plan = self.launch_full(ck, grid, block, args, &scalars, &parts, true)?;
                let evicted = self.plan_cache.insert(
                    key,
                    Arc::new(plan.expect("capturing launch returns a plan")),
                    self.namespace,
                );
                if evicted > 0 {
                    self.machine.note_plan_evictions(evicted);
                }
            }
        } else {
            self.pipeline_flush();
            if self.resolve_dependencies {
                self.machine.note_plan_miss();
            }
            self.launch_full(ck, grid, block, args, &scalars, &parts, false)?;
        }
        if let Some(before) = d2d_before {
            let moved = self.machine.counters().d2d_bytes - before;
            let key = TuneKey {
                kernel: ck.model.kernel_name.clone(),
                grid,
                block,
                scalars,
            };
            let outcome = self.tuner.record(&key, moved);
            if let Some(avg) = outcome.window_avg {
                self.machine.note_tuner_measured(avg);
            }
            if outcome.switched {
                // The next launch re-captures under the new bounds; the
                // counters reflect the refreshed decision.
                if let Some(e) = self.tuner.entry(&key) {
                    self.machine
                        .note_tuner_choice(e.strategy().encode(), e.predicted().transfer_bytes);
                }
            }
        }
        Ok(())
    }

    /// Resolve the partitioning strategy of this launch: a forced
    /// override first, then (with [`crate::RuntimeConfig::autotune`] on)
    /// the autotuner's cached or freshly ranked decision, else `None` —
    /// the compiler's fixed even split.
    fn strategy_for(
        &mut self,
        ck: &CompiledKernel,
        grid: Dim3,
        block: Dim3,
        args: &[LaunchArg],
        scalars: &[i64],
    ) -> Result<Option<PartitionStrategy>> {
        if let Some(s) = self.forced.get(&ck.model.kernel_name) {
            return Ok(Some(s.clone()));
        }
        if !self.config.autotune {
            return Ok(None);
        }
        let key = TuneKey {
            kernel: ck.model.kernel_name.clone(),
            grid,
            block,
            scalars: scalars.to_vec(),
        };
        if let Some(s) = self.tuner.strategy(&key) {
            return Ok(Some(s.clone()));
        }
        let candidates = self.rank_strategies(ck, grid, block, args, scalars)?;
        let (bandwidth, latency) = {
            let link = &self.machine.spec().link;
            (link.bandwidth, link.latency)
        };
        let entry = self.tuner.decide(key, candidates, bandwidth, latency);
        let chosen = entry.strategy().clone();
        let predict = entry.predicted().transfer_bytes;
        self.machine.note_tuner_choice(chosen.encode(), predict);
        Ok(Some(chosen))
    }

    /// Build the cost model's view of this launch site and rank every
    /// candidate strategy (cheapest predicted time first).
    fn rank_strategies(
        &self,
        ck: &CompiledKernel,
        grid: Dim3,
        block: Dim3,
        args: &[LaunchArg],
        scalars: &[i64],
    ) -> Result<Vec<Candidate>> {
        // Per-thread cost profile: counting mode never dereferences
        // arrays, so placeholder handles suffice.
        let kargs: Vec<KernelArg> = ck
            .model
            .args
            .iter()
            .zip(args)
            .map(|(m, a)| match (m, a) {
                (ArgModel::Scalar { .. }, LaunchArg::Scalar(v)) => KernelArg::Scalar(*v),
                _ => KernelArg::Array(0),
            })
            .collect();
        let profile = sample_kernel_profile(&ck.original, &kargs, grid, block)?;
        let shape_of = |idx: usize| match &ck.model.args[idx] {
            ArgModel::Array { elem, extents, .. } => Some((*elem, extents)),
            ArgModel::Scalar { .. } => None,
        };
        let mut writes = Vec::new();
        let mut write_shapes = Vec::new();
        for (arg_idx, wenum) in &ck.enums.writes {
            let vb = match args[*arg_idx] {
                LaunchArg::Buf(b) => b,
                _ => unreachable!("validated"),
            };
            writes.push(WriteModel {
                enumerator: wenum,
                elem_size: self.buffers[vb.index()].elem_size as u64,
            });
            write_shapes.push(shape_of(*arg_idx));
        }
        let mut reads = Vec::new();
        for (arg_idx, renum) in &ck.enums.reads {
            let vb = match args[*arg_idx] {
                LaunchArg::Buf(b) => b,
                _ => unreachable!("validated"),
            };
            let vbuf = &self.buffers[vb.index()];
            let shape = shape_of(*arg_idx);
            // Steady-state ownership. An array this launch also writes is
            // trivially redistributed along the candidate's own
            // partitioning (in-place update). A *kernel-written* array
            // read next to a same-shaped write arg is the partner of a
            // ping-pong chain: the previous launch laid it out along the
            // same partitioning. Anything else — notably read-only,
            // host-uploaded arrays — keeps whatever layout its tracker
            // holds, and since reads never move ownership the runtime
            // refetches those remote bytes on every launch; the model
            // must keep charging for them.
            let self_write = ck
                .enums
                .writes
                .iter()
                .position(|(w_idx, _)| w_idx == arg_idx)
                .or_else(|| {
                    if vbuf.kernel_written {
                        write_shapes.iter().position(|w| w.is_some() && *w == shape)
                    } else {
                        None
                    }
                });
            let ownership = match self_write {
                Some(w) => Ownership::SelfWrites(w),
                // With replica coherence every read leaves a valid copy on
                // the reading device, so an array that *cannot* be a
                // ping-pong partner — no same-shaped write arg exists —
                // pays peer traffic only on its first touch: zero in
                // steady state. Same-shaped arrays may be written by the
                // alternate launch of this chain (invalidating replicas
                // every iteration), so they keep concrete tracker
                // segments; their holder masks still zero out whatever
                // truly is replicated.
                None if self.config.replica_coherence
                    && !write_shapes.iter().any(|w| w.is_some() && *w == shape) =>
                {
                    Ownership::Replicated
                }
                None => {
                    let mut segs = Vec::new();
                    vbuf.tracker
                        .query(0, vbuf.len as u64, &mut |s, e, v: Validity| {
                            segs.push(OwnedSegment {
                                start: s,
                                end: e,
                                device: v.freshest.device(),
                                holders: v.holders.bits(),
                            });
                        });
                    Ownership::Segments(segs)
                }
            };
            reads.push(ReadModel {
                enumerator: renum,
                elem_size: vbuf.elem_size as u64,
                ownership,
            });
        }
        let input = TunerInput {
            spec: self.machine.spec(),
            grid,
            block,
            scalar_names: &ck.enums.scalar_names,
            scalars,
            reads,
            writes,
            profile,
            // Under plan capture, steady-state launches replay the
            // pattern walk for a flat fee — price candidates the way
            // they will actually run.
            pattern_amortized: self.config.capture_plans,
        };
        // Candidates along axes without a disjointness proof are never
        // enumerated — the tuner cannot pick an unsound strategy, and a
        // rectangular tiling needs proofs on *both* of its axes.
        Ok(rank_candidates_opts(
            &input,
            ck.safe_axes,
            self.config.enumerate_tilings,
        ))
    }

    /// Rank the tuner's candidate strategies for a launch site without
    /// recording a decision — the per-candidate prediction table of the
    /// A7 ablation.
    pub fn tuner_candidates(
        &self,
        ck: &CompiledKernel,
        grid: Dim3,
        block: Dim3,
        args: &[LaunchArg],
    ) -> Result<Vec<Candidate>> {
        let scalars = self.validate_args(ck, args)?;
        self.rank_strategies(ck, grid, block, args, &scalars)
    }

    /// The content-addressed cache key of one launch: kernel identity,
    /// geometry, scalar values, and per-buffer `(id, tracker signature)`
    /// pairs. Any tracker mutation since capture changes a signature and
    /// turns the lookup into a miss — no explicit invalidation exists.
    fn plan_key(
        &self,
        ck: &CompiledKernel,
        grid: Dim3,
        block: Dim3,
        args: &[LaunchArg],
        strategy: Option<&PartitionStrategy>,
        parts: &[Partition],
    ) -> PlanKey {
        // The full strategy encoding (axes, factors, weighted/tiled
        // bits) — the compiler's fixed even split when no tuner/forced
        // strategy is active. A 2-D tiling and a 1-D slab can never
        // alias, even if they happened to produce the same bounds list.
        let strategy = strategy.map(|s| s.encode()).unwrap_or_else(|| {
            PartitionStrategy::even(ck.model.partitioning, self.n_devices()).encode()
        });
        let bounds = parts
            .iter()
            .flat_map(|p| p.lo.iter().chain(p.hi.iter()).copied())
            .collect();
        let args = args
            .iter()
            .map(|a| match a {
                LaunchArg::Scalar(v) => ArgKey::scalar(*v),
                // Namespace-stripped: identical workloads in different
                // tenant namespaces must produce identical keys, so
                // tenants can hit each other's captured plans.
                LaunchArg::Buf(b) => ArgKey::Buf {
                    id: b.local(),
                    sig: self.buffers[b.index()].tracker.signature(),
                },
            })
            .collect();
        PlanKey {
            kernel: ck.model.kernel_name.clone(),
            strategy,
            grid,
            block,
            bounds,
            args,
        }
    }

    /// Materialize one captured partition launch's argument vector for
    /// this runtime: captured scalars (including the trailing six
    /// partition-bound scalars) pass through verbatim, while buffer
    /// positions are re-resolved from the live `args` to this runtime's
    /// own device instances. Within one runtime the result is identical
    /// to the captured vector; across tenants — or across processes,
    /// after a snapshot reload — it is the step that makes plans
    /// portable.
    pub(crate) fn resolve_sim_args(&self, l: &PlanLaunch, args: &[LaunchArg]) -> Vec<SimArg> {
        let mut sim_args = l.sim_args.clone();
        for (i, a) in args.iter().enumerate() {
            if let LaunchArg::Buf(b) = a {
                sim_args[i] = SimArg::Buf(self.buffers[b.index()].instances[l.gpu]);
            }
        }
        sim_args
    }

    /// Replay a captured launch: enqueue the recorded copies and
    /// launches, apply the recorded tracker updates. The tracker state
    /// matches the capture byte for byte (the key embeds its signature),
    /// so the sequence is exact — only the pattern cost differs: one
    /// flat `host_per_replay` instead of the per-range/per-segment walk.
    ///
    /// Buffer references inside the plan are namespace-local ids; the
    /// live `args` re-resolve them against *this* runtime's instances
    /// (see [`MgpuRuntime::resolve_sim_args`]), so a plan captured by
    /// another tenant — or loaded from a snapshot taken in another
    /// process — replays correctly here.
    fn replay_plan(
        &mut self,
        ck: &CompiledKernel,
        block: Dim3,
        args: &[LaunchArg],
        plan: &LaunchPlan,
    ) -> Result<()> {
        if self.config.launch_ahead > 0 {
            // Launch-ahead pipelining: record event edges into the
            // in-flight window instead of executing eagerly (see
            // [`crate::pipeline`]).
            return self.replay_plan_pipelined(ck, block, args, plan);
        }
        self.machine.note_plan_hit();
        if plan.replica_hits > 0 {
            // Replay skips the planning walk that detects replica-served
            // reads; re-note what the capture observed.
            self.machine
                .note_replica_hits(plan.replica_hits, plan.replica_saved_bytes);
        }
        if plan.mayread_fetch_bytes > 0 {
            // Same: replay skips the enumerator walk that meters
            // bounded may-read boxes.
            self.machine
                .note_mayread(plan.mayread_fetch_bytes, plan.mayread_overfetch_bytes);
        }
        let cost = self.machine.spec().host_per_replay;
        self.machine.charge_host(cost, TimeCat::Pattern);
        let replica = self.config.replica_coherence;
        for c in &plan.copies {
            let src = self.buffers[c.vb.index()].instances[c.src_dev];
            let dst = self.buffers[c.vb.index()].instances[c.dst_gpu];
            let off = crate::to_usize(c.start, "copy offset")?;
            let run = crate::to_usize(c.end - c.start, "copy length")?;
            if c.count <= 1 {
                self.machine.copy_d2d(src, off, dst, off, run)?;
            } else {
                self.machine.copy_d2d_strided(
                    src,
                    dst,
                    off,
                    run,
                    crate::to_usize(c.stride, "copy stride")?,
                    crate::to_usize(c.count, "copy count")?,
                )?;
            }
            self.buffers[c.vb.index()].d2d_in_bytes += (c.end - c.start) * c.count;
            if replica {
                // Re-derive the holder additions the captured run made, so
                // the tracker reaches the same state as the capture did.
                for r in 0..c.count {
                    let s = c.start + r * c.stride;
                    self.buffers[c.vb.index()].tracker.add_holder(
                        s,
                        s + (c.end - c.start),
                        c.dst_gpu,
                    );
                }
            }
        }
        // Figure 4, line 8 — same barrier as the captured run.
        self.machine.sync_all();
        for l in &plan.launches {
            let sim_args = self.resolve_sim_args(l, args);
            self.machine.launch_with_traffic(
                l.gpu,
                &ck.partitioned,
                &sim_args,
                l.grid,
                block,
                Some(l.traffic),
            )?;
        }
        let mut invalidated = 0usize;
        for u in &plan.updates {
            self.buffers[u.vb.index()].kernel_written = true;
            invalidated += self.buffers[u.vb.index()]
                .tracker
                .update(u.start, u.end, Owner::Device(u.gpu))
                .invalidated;
            debug_assert!(self.buffers[u.vb.index()].tracker.check_invariants());
        }
        self.machine.note_replica_invalidations(invalidated as u64);
        Ok(())
    }

    /// The full Figure 4 sequence: synchronize reads, launch partitions,
    /// update trackers. With `capture` set, additionally records every
    /// issued command into the returned [`LaunchPlan`] (and plans the
    /// read synchronizations in parallel — they are read-only walks).
    #[allow(clippy::too_many_arguments)]
    fn launch_full(
        &mut self,
        ck: &CompiledKernel,
        grid: Dim3,
        block: Dim3,
        args: &[LaunchArg],
        scalars: &[i64],
        parts: &[Partition],
        capture: bool,
    ) -> Result<Option<LaunchPlan>> {
        let mut captured = capture.then(LaunchPlan::default);
        if let Some(cap) = &mut captured {
            // Whole-buffer read/write sets for the launch-ahead
            // pipeline's event edges (deduplicated; an argument bound to
            // two parameters appears once).
            // Captured buffer ids are namespace-stripped (local indices)
            // so the plan is portable across tenants and processes;
            // replay paths index buffers by `.index()`, which agrees.
            for (arg_idx, _) in &ck.enums.reads {
                if let LaunchArg::Buf(b) = args[*arg_idx] {
                    if !cap.read_bufs.contains(&b.local()) {
                        cap.read_bufs.push(b.local());
                    }
                }
            }
            for (arg_idx, _) in &ck.enums.writes {
                if let LaunchArg::Buf(b) = args[*arg_idx] {
                    if !cap.write_bufs.contains(&b.local()) {
                        cap.write_bufs.push(b.local());
                    }
                }
            }
        }

        // ---- (2) synchronize read buffers --------------------------------
        if self.resolve_dependencies {
            let mut tasks: Vec<(usize, &Partition, usize, &AccessEnumerator)> = Vec::new();
            for (gpu, part) in parts.iter().enumerate() {
                if part.is_empty() {
                    continue;
                }
                for (arg_idx, renum) in &ck.enums.reads {
                    tasks.push((gpu, part, *arg_idx, renum));
                }
            }
            let coalesce = self.config.coalesce_transfers;
            let replica = self.config.replica_coherence;
            let max_gap = if coalesce {
                TransferPlan::break_even_gap(&*self.machine)
            } else {
                0
            };
            let buffers = &self.buffers;
            let names = &ck.enums.scalar_names;
            let run = |&(gpu, part, arg_idx, renum): &(
                usize,
                &Partition,
                usize,
                &AccessEnumerator,
            )|
             -> SyncPlan {
                let vb_id = match args[arg_idx] {
                    LaunchArg::Buf(b) => b,
                    _ => unreachable!("validated"),
                };
                plan_sync(
                    &buffers[vb_id.index()],
                    vb_id,
                    renum,
                    part,
                    block,
                    grid,
                    names,
                    scalars,
                    gpu,
                    max_gap,
                    coalesce,
                    replica,
                )
            };
            // Parallel planning pays off exactly when the result will be
            // reused — the capture path. Everyday launches with capture
            // off keep the serial walk; the plans are identical either
            // way, and applying them below preserves the serial
            // (gpu-major, declaration-order) charge→copy sequence.
            let sync_plans: Vec<SyncPlan> = if capture && tasks.len() > 1 {
                tasks.par_iter().map(run).collect()
            } else {
                tasks.iter().map(run).collect()
            };
            let mut mayread_fetch = 0u64;
            for p in sync_plans {
                mayread_fetch += p.fetch_bytes;
                let cost = self.machine.spec().host_per_range * p.n_ranges as f64
                    + self.machine.spec().host_per_segment * p.n_segments as f64;
                self.machine.charge_host(cost, TimeCat::Pattern);
                if p.replica_hits > 0 {
                    self.machine
                        .note_replica_hits(p.replica_hits, p.saved_bytes);
                }
                if let Some(cap) = &mut captured {
                    cap.replica_hits += p.replica_hits;
                    cap.replica_saved_bytes += p.saved_bytes;
                }
                // Group consecutive same-source copies into strided
                // transactions (the column-halo shape of a rectangular
                // tiling): equal-length runs at a constant stride move
                // as one cudaMemcpy2D-style DMA, matching the cost
                // model's transaction pricing. 1-D slab halos are
                // single runs and pass through unchanged.
                let mut i = 0usize;
                while i < p.copies.len() {
                    let d = p.copies[i].0;
                    let mut j = i;
                    while j < p.copies.len() && p.copies[j].0 == d {
                        j += 1;
                    }
                    let segs: Vec<(u64, u64)> =
                        p.copies[i..j].iter().map(|&(_, s, e)| (s, e)).collect();
                    for g in strided_groups(&segs) {
                        let src = self.buffers[p.vb.index()].instances[d];
                        let dst = self.buffers[p.vb.index()].instances[p.gpu];
                        let off = crate::to_usize(g.start, "copy offset")?;
                        let run = crate::to_usize(g.run, "copy length")?;
                        if g.count <= 1 {
                            self.machine.copy_d2d(src, off, dst, off, run)?;
                        } else {
                            self.machine.copy_d2d_strided(
                                src,
                                dst,
                                off,
                                run,
                                crate::to_usize(g.stride, "copy stride")?,
                                crate::to_usize(g.count, "copy count")?,
                            )?;
                        }
                        self.buffers[p.vb.index()].d2d_in_bytes += g.run * g.count;
                        if replica {
                            // The destination now holds a valid copy of
                            // the freshest bytes in each copied run
                            // (Uninit bridge gaps are skipped inside).
                            for r in 0..g.count {
                                let s = g.start + r * g.stride;
                                self.buffers[p.vb.index()]
                                    .tracker
                                    .add_holder(s, s + g.run, p.gpu);
                            }
                        }
                        if let Some(cap) = &mut captured {
                            cap.copies.push(PlanCopy {
                                vb: p.vb.local(),
                                dst_gpu: p.gpu,
                                src_dev: d,
                                start: g.start,
                                end: g.start + g.run,
                                stride: g.stride,
                                count: g.count,
                            });
                        }
                    }
                    i = j;
                }
            }
            if mayread_fetch > 0 {
                // Over-fetch = what the partitions fetch for their boxes
                // beyond the single-device footprint of the same launch
                // (the whole-grid box). With one partition the two sums
                // coincide and the over-fetch is zero by construction.
                let whole = Partition::whole(grid);
                let mut baseline = 0u64;
                for (arg_idx, renum) in &ck.enums.reads {
                    if renum.is_exact() {
                        continue;
                    }
                    let vb_id = match args[*arg_idx] {
                        LaunchArg::Buf(b) => b,
                        _ => unreachable!("validated"),
                    };
                    let elem = self.buffers[vb_id.index()].elem_size as u64;
                    let mut ranges: Vec<(u64, u64)> = Vec::new();
                    renum.for_each_range(&whole, block, grid, names, scalars, &mut |r| {
                        ranges.push((r.start * elem, r.end * elem));
                    });
                    baseline += merged_len(&ranges);
                }
                let over = mayread_fetch.saturating_sub(baseline);
                self.machine.note_mayread(mayread_fetch, over);
                if let Some(cap) = &mut captured {
                    cap.mayread_fetch_bytes = mayread_fetch;
                    cap.mayread_overfetch_bytes = over;
                }
            }
            // Figure 4, line 8: all_devs_synchronize().
            self.machine.sync_all();
        }

        // ---- (3) launch the partitions ------------------------------------
        for (gpu, part) in parts.iter().enumerate() {
            if part.is_empty() {
                continue;
            }
            let mut sim_args: Vec<SimArg> = Vec::with_capacity(args.len() + 6);
            for a in args {
                match a {
                    LaunchArg::Scalar(v) => sim_args.push(SimArg::Scalar(*v)),
                    LaunchArg::Buf(b) => {
                        sim_args.push(SimArg::Buf(self.buffers[b.index()].instances[gpu]))
                    }
                }
            }
            for &m in part.lo.iter().chain(part.hi.iter()) {
                sim_args.push(SimArg::Scalar(Value::I64(m)));
            }
            let traffic = ck.footprint_bytes(part, block, grid, scalars);
            self.machine.launch_with_traffic(
                gpu,
                &ck.partitioned,
                &sim_args,
                part.launch_grid(),
                block,
                Some(traffic),
            )?;
            if let Some(cap) = &mut captured {
                cap.launches.push(PlanLaunch {
                    gpu,
                    sim_args,
                    grid: part.launch_grid(),
                    traffic,
                });
            }
        }

        // ---- (4) update trackers (concurrent to the async kernels) --------
        if self.resolve_dependencies {
            // One scratch Vec for every (gpu, write-arg) pair.
            let mut updates: Vec<(u64, u64)> = Vec::new();
            for (gpu, part) in parts.iter().enumerate() {
                if part.is_empty() {
                    continue;
                }
                for (arg_idx, wenum) in &ck.enums.writes {
                    let vb_id = match args[*arg_idx] {
                        LaunchArg::Buf(b) => b,
                        _ => unreachable!("validated"),
                    };
                    let elem = self.buffers[vb_id.index()].elem_size as u64;
                    updates.clear();
                    wenum.for_each_range(
                        part,
                        block,
                        grid,
                        &ck.enums.scalar_names,
                        scalars,
                        &mut |r| {
                            updates.push((r.start * elem, r.end * elem));
                        },
                    );
                    let n_ranges = updates.len();
                    if n_ranges > 0 {
                        self.buffers[vb_id.index()].kernel_written = true;
                    }
                    // Segment maintenance costs what the update actually
                    // walked, same accounting as the read path's query —
                    // not one flat segment per range.
                    let mut touched = 0usize;
                    let mut invalidated = 0usize;
                    for &(s, e) in &updates {
                        let stats =
                            self.buffers[vb_id.index()]
                                .tracker
                                .update(s, e, Owner::Device(gpu));
                        touched += stats.touched;
                        invalidated += stats.invalidated;
                        if let Some(cap) = &mut captured {
                            cap.updates.push(PlanUpdate {
                                vb: vb_id.local(),
                                gpu,
                                start: s,
                                end: e,
                            });
                        }
                    }
                    self.machine.note_replica_invalidations(invalidated as u64);
                    let cost = self.machine.spec().host_per_range * n_ranges as f64
                        + self.machine.spec().host_per_segment * touched as f64;
                    self.machine.charge_host(cost, TimeCat::Pattern);
                    debug_assert!(self.buffers[vb_id.index()].tracker.check_invariants());
                }
            }
        }
        Ok(captured)
    }

    /// Single-device fallback path for kernels that failed the §4 checks
    /// (and the overhead baseline of §9.2): synchronize every argument
    /// buffer *fully* onto `device`, run the original kernel there, then
    /// claim the written buffers for `device`.
    pub fn launch_unpartitioned(
        &mut self,
        ck: &CompiledKernel,
        grid: Dim3,
        block: Dim3,
        args: &[LaunchArg],
        device: usize,
    ) -> Result<()> {
        let scalars = self.validate_args(ck, args)?;
        // Uncaptured path: walks trackers and device clocks directly.
        self.pipeline_flush();
        // Pull every array argument fully local.
        for a in args {
            if let LaunchArg::Buf(b) = a {
                self.sync_whole_buffer(*b, device)?;
            }
        }
        self.machine.sync_all();
        let mut sim_args: Vec<SimArg> = Vec::with_capacity(args.len());
        for a in args {
            match a {
                LaunchArg::Scalar(v) => sim_args.push(SimArg::Scalar(*v)),
                LaunchArg::Buf(b) => {
                    sim_args.push(SimArg::Buf(self.buffers[b.index()].instances[device]))
                }
            }
        }
        let whole = Partition::whole(grid);
        let traffic = ck.footprint_bytes(&whole, block, grid, &scalars);
        self.machine.launch_with_traffic(
            device,
            &ck.original,
            &sim_args,
            grid,
            block,
            Some(traffic),
        )?;
        // Claim written buffers: after the full sync above, `device` holds
        // the freshest copy of everything it did not overwrite, so a full
        // claim is sound.
        for (idx, arg_model) in ck.model.args.iter().enumerate() {
            if arg_model.is_written_array() {
                if let LaunchArg::Buf(b) = args[idx] {
                    let len = self.buffers[b.index()].len as u64;
                    self.buffers[b.index()].kernel_written = true;
                    let stats =
                        self.buffers[b.index()]
                            .tracker
                            .update(0, len, Owner::Device(device));
                    self.machine
                        .note_replica_invalidations(stats.invalidated as u64);
                }
            }
        }
        Ok(())
    }

    /// Multi-device launch for kernels whose **write patterns cannot be
    /// modeled statically** — the instrumentation path the paper's
    /// conclusion proposes (§11: "using instrumentation to collect write
    /// patterns"). Functional machines only.
    ///
    /// Reads are over-approximated to whole buffers (always legal); the
    /// partitions execute with write recording, and the observed write
    /// sets drive the tracker updates. If two partitions wrote the same
    /// element the kernel has a cross-partition WAW hazard and the launch
    /// fails *after the fact* — the caller should re-run unpartitioned.
    pub fn launch_instrumented(
        &mut self,
        ck: &CompiledKernel,
        grid: Dim3,
        block: Dim3,
        args: &[LaunchArg],
    ) -> Result<()> {
        let _scalars = self.validate_args(ck, args)?;
        if !self.machine.is_functional() {
            return Err(RuntimeError::Unsupported(
                "instrumented launches need a functional machine",
            ));
        }
        // Uncaptured path: walks trackers and device clocks directly.
        self.pipeline_flush();
        let parts = partition_grid(grid, self.n_devices(), ck.model.partitioning);

        // (1) Reads unknown: synchronize every argument buffer fully.
        for a in args {
            if let LaunchArg::Buf(b) = a {
                for gpu in 0..self.n_devices() {
                    self.sync_whole_buffer(*b, gpu)?;
                }
            }
        }
        self.machine.sync_all();

        // (2) Launch each partition with write recording.
        let mut observed_per_gpu: Vec<std::collections::HashMap<usize, Vec<(u64, u64)>>> =
            Vec::new();
        for (gpu, part) in parts.iter().enumerate() {
            if part.is_empty() {
                observed_per_gpu.push(Default::default());
                continue;
            }
            let mut sim_args: Vec<SimArg> = Vec::with_capacity(args.len() + 6);
            for a in args {
                match a {
                    LaunchArg::Scalar(v) => sim_args.push(SimArg::Scalar(*v)),
                    LaunchArg::Buf(b) => {
                        sim_args.push(SimArg::Buf(self.buffers[b.index()].instances[gpu]))
                    }
                }
            }
            for &m in part.lo.iter().chain(part.hi.iter()) {
                sim_args.push(SimArg::Scalar(Value::I64(m)));
            }
            let obs = self.machine.launch_recording(
                gpu,
                &ck.partitioned,
                &sim_args,
                part.launch_grid(),
                block,
            )?;
            observed_per_gpu.push(obs);
        }

        // (3) Check cross-partition write disjointness, then update
        // trackers from the observed ranges.
        for (idx, a) in args.iter().enumerate() {
            let b = match a {
                LaunchArg::Buf(b) => *b,
                _ => continue,
            };
            let elem = self.buffers[b.index()].elem_size as u64;
            // Collect (gpu, range) pairs for this buffer.
            let mut claims: Vec<(usize, u64, u64)> = Vec::new();
            for (gpu, obs) in observed_per_gpu.iter().enumerate() {
                let handle = self.buffers[b.index()].instances[gpu].handle;
                if let Some(ranges) = obs.get(&handle) {
                    for &(s, e) in ranges {
                        claims.push((gpu, s * elem, e * elem));
                    }
                }
            }
            if let Some((g0, g1)) = cross_device_overlap(&mut claims) {
                return Err(RuntimeError::NotPartitionable(format!(
                    "instrumentation observed a cross-partition write collision \
                     on argument {} (devices {g0} and {g1})",
                    ck.model.args[idx].name()
                )));
            }
            let n_claims = claims.len() as f64;
            if !claims.is_empty() {
                self.buffers[b.index()].kernel_written = true;
            }
            let mut invalidated = 0usize;
            for (gpu, s, e) in claims {
                invalidated += self.buffers[b.index()]
                    .tracker
                    .update(s, e, Owner::Device(gpu))
                    .invalidated;
            }
            self.machine.note_replica_invalidations(invalidated as u64);
            let cost = (self.machine.spec().host_per_range + self.machine.spec().host_per_segment)
                * n_claims;
            self.machine.charge_host(cost, TimeCat::Pattern);
        }
        Ok(())
    }

    /// Pull every stale byte of one buffer onto `gpu`. A full-range
    /// query emits maximal same-owner segments already; the transfer
    /// plan additionally bridges same-source copies across small Uninit
    /// gaps, which collapses fragmented trackers.
    fn sync_whole_buffer(&mut self, b: VBufId, gpu: usize) -> Result<()> {
        let vb = &self.buffers[b.index()];
        let instances = vb.instances.clone();
        let max_gap = if self.config.coalesce_transfers {
            TransferPlan::break_even_gap(&*self.machine)
        } else {
            0
        };
        let replica = self.config.replica_coherence;
        let mut plan = TransferPlan::new(gpu, max_gap, replica);
        let mut n_segments = 0u64;
        vb.tracker.query(0, vb.len as u64, &mut |s, e, v| {
            n_segments += 1;
            plan.visit(s, e, v);
        });
        let cost = self.machine.spec().host_per_segment * n_segments as f64;
        self.machine.charge_host(cost, TimeCat::Pattern);
        if plan.replica_hits > 0 {
            self.machine
                .note_replica_hits(plan.replica_hits, plan.saved_bytes);
        }
        for (d, s, e) in plan.copies {
            let off = crate::to_usize(s, "copy offset")?;
            let len = crate::to_usize(e - s, "copy length")?;
            self.machine
                .copy_d2d(instances[d], off, instances[gpu], off, len)?;
            self.buffers[b.index()].d2d_in_bytes += e - s;
            if replica {
                self.buffers[b.index()].tracker.add_holder(s, e, gpu);
            }
        }
        Ok(())
    }

    /// Validate launch arguments against the model; returns the scalar
    /// values (as i64, floats as 0) in scalar-parameter order for the
    /// enumerators (§6.2: "the scalar arguments are simply copied into an
    /// array from the kernel launch they belong to").
    fn validate_args(&self, ck: &CompiledKernel, args: &[LaunchArg]) -> Result<Vec<i64>> {
        if args.len() != ck.model.args.len() {
            return Err(RuntimeError::BadArgument(format!(
                "expected {} arguments, got {}",
                ck.model.args.len(),
                args.len()
            )));
        }
        let mut scalars = Vec::new();
        for (model_arg, arg) in ck.model.args.iter().zip(args) {
            match (model_arg, arg) {
                (ArgModel::Scalar { .. }, LaunchArg::Scalar(v)) => {
                    scalars.push(v.as_i64().unwrap_or(0));
                }
                (ArgModel::Array { .. }, LaunchArg::Buf(_)) => {}
                (m, a) => {
                    return Err(RuntimeError::BadArgument(format!(
                        "argument {:?} does not match parameter {}",
                        a,
                        m.name()
                    )))
                }
            }
        }
        // Check array sizes against extents.
        for (model_arg, arg) in ck.model.args.iter().zip(args) {
            if let (ArgModel::Array { elem, extents, .. }, LaunchArg::Buf(b)) = (model_arg, arg) {
                // Liveness *and* namespace check: a handle minted by
                // another tenant's runtime must not reach this one's
                // buffer table, even if its local index is in range.
                self.check_live(*b)?;
                let mut elems: i64 = 1;
                for e in extents {
                    elems *= match e {
                        Extent::Const(c) => *c,
                        Extent::Param(p) => {
                            let idx = ck
                                .model
                                .scalar_params
                                .iter()
                                .position(|n| n == p)
                                .expect("extent param exists");
                            scalars[idx]
                        }
                    };
                }
                let expected = elems as usize * elem.size_bytes();
                let got = self.buffers[b.index()].len;
                if expected != got {
                    return Err(RuntimeError::SizeMismatch { expected, got });
                }
            }
        }
        Ok(scalars)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vbuf::RuntimeConfig;
    use mekong_analysis::SplitAxis;
    use mekong_gpusim::{Machine, MachineSpec};
    use mekong_kernel::builder::*;
    use mekong_kernel::Kernel;

    fn runtime(n: usize) -> MgpuRuntime {
        MgpuRuntime::new(Machine::new(MachineSpec::kepler_system(n), true))
    }

    fn f32s(bytes: &[u8]) -> Vec<f32> {
        bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    fn scale_kernel() -> Kernel {
        Kernel {
            name: "scale".into(),
            params: vec![
                scalar("n"),
                array_f32("a", &[ext("n")]),
                array_f32("b", &[ext("n")]),
            ],
            body: vec![
                let_("i", global_x()),
                guard_return(v("i").ge(v("n"))),
                store("b", vec![v("i")], load("a", vec![v("i")]) * f(3.0)),
            ],
        }
    }

    #[test]
    fn partitioned_scale_matches_expected() {
        let ck = CompiledKernel::compile(&scale_kernel()).unwrap();
        let mut rt = runtime(4);
        let n = 1000usize;
        let a = rt.malloc(n * 4, 4).unwrap();
        let b = rt.malloc(n * 4, 4).unwrap();
        let data: Vec<u8> = (0..n).flat_map(|i| (i as f32).to_le_bytes()).collect();
        rt.memcpy_h2d(a, &data).unwrap();
        rt.launch(
            &ck,
            Dim3::new1(8), // 8 blocks x 128 = 1024 threads
            Dim3::new1(128),
            &[
                LaunchArg::Scalar(Value::I64(n as i64)),
                LaunchArg::Buf(a),
                LaunchArg::Buf(b),
            ],
        )
        .unwrap();
        rt.synchronize();
        let mut out = vec![0u8; n * 4];
        rt.memcpy_d2h(b, &mut out).unwrap();
        for (i, v) in f32s(&out).iter().enumerate() {
            assert_eq!(*v, 3.0 * i as f32, "element {i}");
        }
        assert!(rt.elapsed() > 0.0);
    }

    /// A 2-D kernel writing a 1-D array by column: every block row
    /// writes the same elements, so only the x axis carries a
    /// write-disjointness proof.
    fn colwrite_kernel() -> Kernel {
        Kernel {
            name: "colwrite".into(),
            params: vec![scalar("n"), array_f32("out", &[ext("n")])],
            body: vec![
                let_("x", global_x()),
                let_("y", global_y()),
                guard_return(v("x").ge(v("n")).or(v("y").ge(v("n")))),
                store("out", vec![v("x")], f(1.0)),
            ],
        }
    }

    #[test]
    fn launch_gate_refuses_unproven_forced_axis() {
        use mekong_analysis::SplitAxis;
        let ck = CompiledKernel::compile(&colwrite_kernel()).unwrap();
        assert!(ck.is_partitionable(), "verdict: {:?}", ck.model.verdict);
        assert!(ck.safe_axes.allows(SplitAxis::X));
        assert!(!ck.safe_axes.allows(SplitAxis::Y));
        let mut rt = runtime(2);
        let n = 16usize;
        let out = rt.malloc(n * 4, 4).unwrap();
        let args = [LaunchArg::Scalar(Value::I64(n as i64)), LaunchArg::Buf(out)];
        let (grid, block) = (Dim3::new2(4, 4), Dim3::new2(4, 4));
        // The suggested (proven) x split launches and is counted safe.
        rt.launch(&ck, grid, block, &args).unwrap();
        assert_eq!(rt.machine().counters().checked_safe, 1);
        assert_eq!(rt.machine().counters().checked_rejected, 0);
        // Forcing the unproven y split is refused by default...
        rt.force_strategy("colwrite", PartitionStrategy::even(SplitAxis::Y, 2));
        let err = rt.launch(&ck, grid, block, &args).unwrap_err();
        assert!(
            matches!(err, RuntimeError::NotPartitionable(_)),
            "unexpected error: {err:?}"
        );
        assert_eq!(rt.machine().counters().checked_rejected, 1);
        // ...and merely counted when enforcement is off.
        rt.set_config(RuntimeConfig {
            enforce_partition_safety: false,
            ..RuntimeConfig::default()
        });
        rt.launch(&ck, grid, block, &args).unwrap();
        rt.synchronize();
        assert_eq!(rt.machine().counters().checked_rejected, 2);
        assert_eq!(rt.machine().counters().checked_safe, 1);
    }

    /// A kernel race-free on x but not y blocks every tiling involving
    /// y — in the masked enumeration (no tiled candidate is ranked) and
    /// at the launch gate (a forced tiling is refused) — while plain x
    /// splits stay enumerable.
    #[test]
    fn tilings_blocked_without_proofs_on_both_axes() {
        let ck = CompiledKernel::compile(&colwrite_kernel()).unwrap();
        assert!(ck.safe_axes.allows(SplitAxis::X));
        assert!(!ck.safe_axes.allows(SplitAxis::Y));
        // Enumeration side: the checker mask reaches the tuner.
        let strategies = mekong_tuner::enumerate_strategies_masked(
            &MachineSpec::kepler_system(4),
            Dim3::new2(4, 4),
            mekong_gpusim::ThreadProfile::default(),
            ck.safe_axes,
        );
        assert!(strategies
            .iter()
            .any(|s| s.axis == SplitAxis::X && s.n_parts() > 1));
        assert!(strategies.iter().all(|s| !s.is_tiled()));
        // Ranking side: the runtime's own candidate table agrees.
        let mut rt = runtime(4);
        let n = 16usize;
        let out = rt.malloc(n * 4, 4).unwrap();
        let args = [LaunchArg::Scalar(Value::I64(n as i64)), LaunchArg::Buf(out)];
        let (grid, block) = (Dim3::new2(4, 4), Dim3::new2(4, 4));
        let cands = rt.tuner_candidates(&ck, grid, block, &args).unwrap();
        assert!(!cands.is_empty());
        assert!(cands.iter().all(|c| !c.strategy.is_tiled()));
        // Gate side: forcing an x×y tiling is refused outright — x alone
        // is proven, but the tiling also splits y.
        rt.force_strategy(
            "colwrite",
            PartitionStrategy::tiled(SplitAxis::X, 2, SplitAxis::Y, 2),
        );
        let err = rt.launch(&ck, grid, block, &args).unwrap_err();
        assert!(
            matches!(err, RuntimeError::NotPartitionable(_)),
            "unexpected error: {err:?}"
        );
        assert_eq!(rt.machine().counters().checked_rejected, 1);
    }

    /// A 2-D 5-point stencil over an `n`×`n` array, write-disjoint on
    /// both grid axes (each thread writes its own element).
    fn stencil2d_kernel() -> Kernel {
        Kernel {
            name: "stencil2d".into(),
            params: vec![
                scalar("n"),
                array_f32("src", &[ext("n"), ext("n")]),
                array_f32("dst", &[ext("n"), ext("n")]),
            ],
            body: vec![
                let_("x", global_x()),
                let_("y", global_y()),
                guard_return(v("x").ge(v("n")).or(v("y").ge(v("n")))),
                if_(
                    v("x")
                        .eq_(i(0))
                        .or(v("x").eq_(v("n") - i(1)))
                        .or(v("y").eq_(i(0)))
                        .or(v("y").eq_(v("n") - i(1))),
                    vec![store(
                        "dst",
                        vec![v("y"), v("x")],
                        load("src", vec![v("y"), v("x")]),
                    )],
                    vec![store(
                        "dst",
                        vec![v("y"), v("x")],
                        (load("src", vec![v("y"), v("x") - i(1)])
                            + load("src", vec![v("y"), v("x") + i(1)])
                            + load("src", vec![v("y") - i(1), v("x")])
                            + load("src", vec![v("y") + i(1), v("x")]))
                            / f(4.0),
                    )],
                ),
            ],
        }
    }

    /// A forced 2×2 rectangular tiling runs functionally: four devices
    /// compute byte-identical results to one, and the column halos of
    /// each tile move as strided transactions instead of one copy per
    /// row.
    #[test]
    fn forced_rect_tiling_matches_unpartitioned() {
        let ck = CompiledKernel::compile(&stencil2d_kernel()).unwrap();
        assert!(ck.safe_axes.allows(SplitAxis::X) && ck.safe_axes.allows(SplitAxis::Y));
        let n = 16usize;
        let data: Vec<u8> = (0..n * n)
            .flat_map(|i| ((i as f32).sin()).to_le_bytes())
            .collect();
        let (grid, block) = (Dim3::new2(4, 4), Dim3::new2(4, 4));
        let iters = 4usize;
        let run = |rt: &mut MgpuRuntime| -> Vec<u8> {
            let a = rt.malloc(n * n * 4, 4).unwrap();
            let b = rt.malloc(n * n * 4, 4).unwrap();
            rt.memcpy_h2d(a, &data).unwrap();
            let bufs = [a, b];
            for it in 0..iters {
                rt.launch(
                    &ck,
                    grid,
                    block,
                    &[
                        LaunchArg::Scalar(Value::I64(n as i64)),
                        LaunchArg::Buf(bufs[it % 2]),
                        LaunchArg::Buf(bufs[(it + 1) % 2]),
                    ],
                )
                .unwrap();
            }
            rt.synchronize();
            let mut out = vec![0u8; n * n * 4];
            rt.memcpy_d2h(bufs[iters % 2], &mut out).unwrap();
            out
        };
        let mut rt1 = runtime(1);
        let expected = run(&mut rt1);
        let mut rt4 = runtime(4);
        rt4.force_strategy(
            "stencil2d",
            PartitionStrategy::tiled(SplitAxis::Y, 2, SplitAxis::X, 2),
        );
        let got = run(&mut rt4);
        assert_eq!(got, expected, "2×2 tiling diverged from single-device run");
        let c = rt4.machine().counters();
        assert!(c.d2d_bytes > 0, "halo exchange must actually move bytes");
        // Each tile's column face batches into one strided DMA: per
        // halo-paying iteration, 4 tiles × (column face + row face +
        // corner) = 12 transactions. Row-by-row column halos would be
        // 8 copies per face — the counter blowing past this bound means
        // the strided grouping regressed.
        assert!(
            c.d2d_copies <= 12 * (iters as u64 - 1),
            "column halos must batch into strided transactions, got {} copies",
            c.d2d_copies
        );
    }

    fn stencil_kernel() -> Kernel {
        Kernel {
            name: "stencil".into(),
            params: vec![
                scalar("n"),
                array_f32("input", &[ext("n")]),
                array_f32("output", &[ext("n")]),
            ],
            body: vec![
                let_("i", global_x()),
                guard_return(v("i").ge(v("n"))),
                if_(
                    v("i").eq_(i(0)).or(v("i").eq_(v("n") - i(1))),
                    vec![store("output", vec![v("i")], load("input", vec![v("i")]))],
                    vec![store(
                        "output",
                        vec![v("i")],
                        (load("input", vec![v("i") - i(1)])
                            + load("input", vec![v("i")])
                            + load("input", vec![v("i") + i(1)]))
                            / f(3.0),
                    )],
                ),
            ],
        }
    }

    /// CPU reference for [`stencil_kernel`].
    fn stencil_reference(init: &[f32], iters: usize) -> Vec<f32> {
        let n = init.len();
        let mut cur = init.to_vec();
        for _ in 0..iters {
            let mut next = cur.clone();
            for i in 1..n - 1 {
                next[i] = (cur[i - 1] + cur[i] + cur[i + 1]) / 3.0;
            }
            cur = next;
        }
        cur
    }

    /// Iterative 1-D stencil: the real coherence test. Each iteration
    /// reads the halo written by neighboring devices in the previous one.
    #[test]
    fn iterative_stencil_stays_coherent_across_devices() {
        let ck = CompiledKernel::compile(&stencil_kernel()).unwrap();
        assert!(ck.is_partitionable(), "verdict: {:?}", ck.model.verdict);

        let n = 512usize;
        let iters = 6;
        let grid = Dim3::new1(4);
        let block = Dim3::new1(128);
        let init: Vec<f32> = (0..n).map(|i| ((i * 37) % 101) as f32).collect();
        let init_bytes: Vec<u8> = init.iter().flat_map(|v| v.to_le_bytes()).collect();
        let cur = stencil_reference(&init, iters);

        // Multi-device run with ping-pong buffers.
        let mut rt = runtime(4);
        let a = rt.malloc(n * 4, 4).unwrap();
        let b = rt.malloc(n * 4, 4).unwrap();
        rt.memcpy_h2d(a, &init_bytes).unwrap();
        rt.memcpy_h2d(b, &init_bytes).unwrap();
        let (mut src, mut dst) = (a, b);
        for _ in 0..iters {
            rt.launch(
                &ck,
                grid,
                block,
                &[
                    LaunchArg::Scalar(Value::I64(n as i64)),
                    LaunchArg::Buf(src),
                    LaunchArg::Buf(dst),
                ],
            )
            .unwrap();
            std::mem::swap(&mut src, &mut dst);
        }
        rt.synchronize();
        let mut out = vec![0u8; n * 4];
        rt.memcpy_d2h(src, &mut out).unwrap();
        let got = f32s(&out);
        for i in 0..n {
            assert!(
                (got[i] - cur[i]).abs() < 1e-4,
                "element {i}: {} vs {}",
                got[i],
                cur[i]
            );
        }
        // Iterations 2..6 re-enumerate the exact parameter vectors of
        // iterations 0/1 — the enumerator range memo must be hitting.
        let (hits, misses) = ck.enums.range_cache_stats();
        assert!(hits > 0, "range memo never hit (misses: {misses})");
    }

    /// §11 extension: a data-dependent scatter becomes multi-GPU runnable
    /// through instrumented write collection, as long as partitions write
    /// disjoint elements.
    #[test]
    fn instrumented_launch_runs_unmodelable_scatter() {
        // out[perm[i]] = a[i] where perm maps each partition's indices
        // into its own range (i -> i^1 within pairs stays partition-local
        // for even partition boundaries). Here: perm[i] = i ^ 1 via
        // arithmetic: i + 1 - 2*(i % 2).
        let scatter = Kernel {
            name: "scatter".into(),
            params: vec![
                scalar("n"),
                array_f32("idx", &[ext("n")]),
                array_f32("a", &[ext("n")]),
                array_f32("out", &[ext("n")]),
            ],
            body: vec![
                let_("i", global_x()),
                guard_return(v("i").ge(v("n"))),
                store(
                    "out",
                    vec![to_i64(load("idx", vec![v("i")]))],
                    load("a", vec![v("i")]),
                ),
            ],
        };
        let ck = CompiledKernel::compile(&scatter).unwrap();
        assert!(!ck.is_partitionable(), "scatter must fail static checks");

        let n = 256usize;
        let mut rt = runtime(4);
        let idx = rt.malloc(n * 4, 4).unwrap();
        let a = rt.malloc(n * 4, 4).unwrap();
        let out = rt.malloc(n * 4, 4).unwrap();
        // Pairwise swap permutation.
        let perm: Vec<usize> = (0..n).map(|i| i ^ 1).collect();
        let idx_host: Vec<u8> = perm
            .iter()
            .flat_map(|&p| (p as f32).to_le_bytes())
            .collect();
        let a_host: Vec<u8> = (0..n).flat_map(|i| (i as f32).to_le_bytes()).collect();
        rt.memcpy_h2d(idx, &idx_host).unwrap();
        rt.memcpy_h2d(a, &a_host).unwrap();
        let args = [
            LaunchArg::Scalar(Value::I64(n as i64)),
            LaunchArg::Buf(idx),
            LaunchArg::Buf(a),
            LaunchArg::Buf(out),
        ];
        let grid = Dim3::new1(4);
        let block = Dim3::new1(64);
        // Static path refuses...
        assert!(rt.launch(&ck, grid, block, &args).is_err());
        // ...instrumented path succeeds and is correct.
        rt.launch_instrumented(&ck, grid, block, &args).unwrap();
        rt.synchronize();
        let mut host = vec![0u8; n * 4];
        rt.memcpy_d2h(out, &mut host).unwrap();
        let got = f32s(&host);
        for i in 0..n {
            assert_eq!(got[perm[i]], i as f32, "element {i}");
        }
    }

    #[test]
    fn instrumented_launch_detects_cross_partition_collisions() {
        // Every thread writes element 0: partitions collide; the
        // instrumentation must detect it after the fact.
        let bad = Kernel {
            name: "collide".into(),
            params: vec![
                scalar("n"),
                array_f32("idx", &[ext("n")]),
                array_f32("out", &[ext("n")]),
            ],
            body: vec![
                let_("i", global_x()),
                guard_return(v("i").ge(v("n"))),
                store("out", vec![to_i64(load("idx", vec![v("i")]))], f(1.0)),
            ],
        };
        let ck = CompiledKernel::compile(&bad).unwrap();
        let n = 128usize;
        let mut rt = runtime(4);
        let idx = rt.malloc(n * 4, 4).unwrap();
        let out = rt.malloc(n * 4, 4).unwrap();
        rt.memcpy_h2d(idx, &vec![0u8; n * 4]).unwrap(); // all zeros
        let args = [
            LaunchArg::Scalar(Value::I64(n as i64)),
            LaunchArg::Buf(idx),
            LaunchArg::Buf(out),
        ];
        let err = rt
            .launch_instrumented(&ck, Dim3::new1(4), Dim3::new1(32), &args)
            .unwrap_err();
        assert!(matches!(err, RuntimeError::NotPartitionable(_)), "{err}");
    }

    #[test]
    fn unpartitionable_kernel_is_rejected_then_fallback_works() {
        let bad = Kernel {
            name: "allzero".into(),
            params: vec![scalar("n"), array_f32("out", &[ext("n")])],
            body: vec![store("out", vec![i(0)], f(1.0))],
        };
        let ck = CompiledKernel::compile(&bad).unwrap();
        let mut rt = runtime(2);
        let n = 64usize;
        let out = rt.malloc(n * 4, 4).unwrap();
        let err = rt
            .launch(
                &ck,
                Dim3::new1(1),
                Dim3::new1(64),
                &[LaunchArg::Scalar(Value::I64(n as i64)), LaunchArg::Buf(out)],
            )
            .unwrap_err();
        assert!(matches!(err, RuntimeError::NotPartitionable(_)));
        // The single-device fallback executes it correctly.
        rt.launch_unpartitioned(
            &ck,
            Dim3::new1(1),
            Dim3::new1(64),
            &[LaunchArg::Scalar(Value::I64(n as i64)), LaunchArg::Buf(out)],
            0,
        )
        .unwrap();
        rt.synchronize();
        let mut host = vec![0u8; n * 4];
        rt.memcpy_d2h(out, &mut host).unwrap();
        assert_eq!(f32s(&host)[0], 1.0);
    }

    #[test]
    fn argument_validation_catches_mismatches() {
        let ck = CompiledKernel::compile(&scale_kernel()).unwrap();
        let mut rt = runtime(2);
        let a = rt.malloc(100 * 4, 4).unwrap();
        let b = rt.malloc(100 * 4, 4).unwrap();
        // Wrong count.
        assert!(rt
            .launch(&ck, Dim3::new1(1), Dim3::new1(32), &[LaunchArg::Buf(a)])
            .is_err());
        // Scalar where array expected.
        assert!(rt
            .launch(
                &ck,
                Dim3::new1(1),
                Dim3::new1(32),
                &[
                    LaunchArg::Scalar(Value::I64(100)),
                    LaunchArg::Scalar(Value::I64(1)),
                    LaunchArg::Buf(b),
                ],
            )
            .is_err());
        // Buffer sized for n=100 but launched with n=200.
        assert!(matches!(
            rt.launch(
                &ck,
                Dim3::new1(1),
                Dim3::new1(32),
                &[
                    LaunchArg::Scalar(Value::I64(200)),
                    LaunchArg::Buf(a),
                    LaunchArg::Buf(b),
                ],
            ),
            Err(RuntimeError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn beta_and_gamma_reduce_elapsed_time() {
        let ck = CompiledKernel::compile(&scale_kernel()).unwrap();
        let n = 1 << 16;
        let run = |cfg: RuntimeConfig| -> f64 {
            let mut rt = MgpuRuntime::new(Machine::new(MachineSpec::kepler_system(4), false));
            rt.set_config(cfg);
            let a = rt.malloc(n * 4, 4).unwrap();
            let b = rt.malloc(n * 4, 4).unwrap();
            let data = vec![0u8; n * 4];
            rt.memcpy_h2d(a, &data).unwrap();
            for _ in 0..10 {
                rt.launch(
                    &ck,
                    Dim3::new1((n / 256) as u32),
                    Dim3::new1(256),
                    &[
                        LaunchArg::Scalar(Value::I64(n as i64)),
                        LaunchArg::Buf(a),
                        LaunchArg::Buf(b),
                    ],
                )
                .unwrap();
            }
            rt.synchronize();
            rt.elapsed()
        };
        let alpha = run(RuntimeConfig::alpha());
        let beta = run(RuntimeConfig::beta());
        let gamma = run(RuntimeConfig::gamma());
        assert!(alpha >= beta, "alpha {alpha} >= beta {beta}");
        assert!(beta >= gamma, "beta {beta} >= gamma {gamma}");
        assert!(gamma > 0.0);
    }

    #[test]
    fn transfer_plan_bridges_uninit_gaps_only() {
        use crate::tracker::Tracker;
        let mut t = Tracker::new(100);
        t.update(0, 10, Owner::Device(1));
        t.update(20, 30, Owner::Device(1));
        t.update(30, 40, Owner::Device(0));
        t.update(40, 50, Owner::Device(1));
        let walk = |plan: &mut TransferPlan| {
            t.query(0, 100, &mut |s, e, o| plan.visit(s, e, o));
        };
        // Generous gap budget: [0,10) and [20,30) bridge across the
        // Uninit hole, but never across the locally-owned [30,40).
        let mut plan = TransferPlan::new(0, 100, true);
        walk(&mut plan);
        assert_eq!(plan.copies, vec![(1, 0, 30), (1, 40, 50)]);
        // Gap budget smaller than the hole: no bridging.
        let mut plan = TransferPlan::new(0, 5, true);
        walk(&mut plan);
        assert_eq!(plan.copies, vec![(1, 0, 10), (1, 20, 30), (1, 40, 50)]);
        // From device 1's perspective only [30,40) is remote.
        let mut plan = TransferPlan::new(1, 100, true);
        walk(&mut plan);
        assert_eq!(plan.copies, vec![(0, 30, 40)]);
    }

    /// Replica-aware planning: segments the destination already holds are
    /// skipped (and counted as hits when the freshest copy is remote),
    /// and needed copies pull from the nearest valid holder rather than
    /// necessarily the freshest owner.
    #[test]
    fn transfer_plan_prefers_local_replica_and_nearest_holder() {
        use crate::tracker::Tracker;
        let mut t = Tracker::new(100);
        t.update(0, 40, Owner::Device(2));
        t.update(40, 80, Owner::Device(3));
        // Device 0 replicated the first half; devices 1 and 3 hold the
        // second half alongside its owner.
        t.add_holder(0, 40, 0);
        t.add_holder(40, 80, 1);
        let mut plan = TransferPlan::new(0, 0, true);
        t.query(0, 100, &mut |s, e, v| plan.visit(s, e, v));
        // [0,40) is served by device 0's replica — one hit, 40 bytes
        // saved. [40,80) needs a copy; holders {1,3} rank by link_hops
        // from 0: device 1 is the board partner (hops 1) and wins over
        // the freshest owner 3 (hops 2).
        assert_eq!(plan.replica_hits, 1);
        assert_eq!(plan.saved_bytes, 40);
        assert_eq!(plan.copies, vec![(1, 40, 80)]);
        // Replica mode off: the freshest owners are the only sources and
        // device 0's replica of [0,40) is invisible.
        let mut legacy = TransferPlan::new(0, 0, false);
        t.query(0, 100, &mut |s, e, v| legacy.visit(s, e, v));
        assert_eq!(legacy.replica_hits, 0);
        assert_eq!(legacy.copies, vec![(2, 0, 40), (3, 40, 80)]);
    }

    /// The headline effect of replica-aware coherence: a host-uploaded
    /// array a kernel only ever *reads* is fetched across the peer link
    /// exactly once per device. Single-owner tracking re-fetched the
    /// remote part of every read set on every launch.
    #[test]
    fn replicas_eliminate_steady_state_refetch_for_read_only_arrays() {
        let ck = CompiledKernel::compile(&stencil_kernel()).unwrap();
        let n = 512usize;
        // 4 blocks over 3 devices: partition boundaries (block-granular)
        // misalign with the linear 3-way H2D distribution, so every
        // device reads bytes another device received from the host.
        let grid = Dim3::new1(4);
        let block = Dim3::new1(128);
        let iters = 5;
        let run = |replica: bool| -> (Vec<u64>, u64, u64) {
            let mut rt = MgpuRuntime::new(Machine::new(MachineSpec::kepler_system(3), false));
            rt.set_config(RuntimeConfig {
                replica_coherence: replica,
                ..RuntimeConfig::alpha()
            });
            let a = rt.malloc(n * 4, 4).unwrap();
            let b = rt.malloc(n * 4, 4).unwrap();
            rt.memcpy_h2d_sim(a).unwrap();
            let args = [
                LaunchArg::Scalar(Value::I64(n as i64)),
                LaunchArg::Buf(a),
                LaunchArg::Buf(b),
            ];
            let mut into_a = Vec::new();
            for _ in 0..iters {
                rt.launch(&ck, grid, block, &args).unwrap();
                into_a.push(rt.d2d_bytes_into(a));
            }
            let c = rt.machine().counters();
            (into_a, c.replica_hits, c.refetch_bytes_saved)
        };
        let (with, hits, saved) = run(true);
        let (without, legacy_hits, legacy_saved) = run(false);
        assert!(with[0] > 0, "first launch must distribute the halo reads");
        assert_eq!(
            with[iters - 1],
            with[0],
            "replicas must freeze remote refetch after the first launch: {with:?}"
        );
        assert!(hits > 0, "steady-state reads must be replica-served");
        assert!(saved > 0);
        assert_eq!(legacy_hits, 0, "no replicas without the config flag");
        assert_eq!(legacy_saved, 0);
        for w in without.windows(2) {
            assert!(
                w[1] - w[0] == without[0],
                "single-owner tracking re-fetches the same bytes every launch: {without:?}"
            );
        }
        assert_eq!(with[0], without[0], "first-launch traffic is identical");
    }

    /// Fragmented-tracker coalescing end to end: instrumented strided
    /// writes leave `out` as alternating Device/Uninit single-element
    /// segments; pulling it onto one device then needs one bridged copy
    /// per source instead of one per element.
    #[test]
    fn coalescing_collapses_fragmented_tracker_transfers() {
        let scatter = Kernel {
            name: "stride_scatter".into(),
            params: vec![
                scalar("n"),
                array_f32("idx", &[ext("n")]),
                array_f32("a", &[ext("n")]),
                array_f32("out", &[ext("n")]),
            ],
            body: vec![
                let_("i", global_x()),
                guard_return(v("i").ge(v("n") / i(2))),
                store(
                    "out",
                    vec![to_i64(load("idx", vec![v("i")]))],
                    load("a", vec![v("i")]),
                ),
            ],
        };
        let ck = CompiledKernel::compile(&scatter).unwrap();
        let reader = CompiledKernel::compile(&scale_kernel()).unwrap();
        let n = 2048usize;
        let run = |coalesce: bool| -> (u64, f64) {
            let mut rt = runtime(4);
            rt.set_config(RuntimeConfig {
                coalesce_transfers: coalesce,
                ..RuntimeConfig::alpha()
            });
            let idx = rt.malloc(n * 4, 4).unwrap();
            let a = rt.malloc(n * 4, 4).unwrap();
            let out = rt.malloc(n * 4, 4).unwrap();
            let idx_host: Vec<u8> = (0..n)
                .flat_map(|i| ((2 * i) as f32).to_le_bytes())
                .collect();
            rt.memcpy_h2d(idx, &idx_host).unwrap();
            rt.memcpy_h2d(a, &vec![0u8; n * 4]).unwrap();
            rt.launch_instrumented(
                &ck,
                Dim3::new1(8),
                Dim3::new1(128),
                &[
                    LaunchArg::Scalar(Value::I64(n as i64)),
                    LaunchArg::Buf(idx),
                    LaunchArg::Buf(a),
                    LaunchArg::Buf(out),
                ],
            )
            .unwrap();
            assert!(rt.segment_count(out) > n / 2, "tracker must be fragmented");
            let res = rt.malloc(n * 4, 4).unwrap();
            let before = rt.machine().counters().d2d_copies;
            let t0 = rt.elapsed();
            rt.launch_unpartitioned(
                &reader,
                Dim3::new1(8),
                Dim3::new1(256),
                &[
                    LaunchArg::Scalar(Value::I64(n as i64)),
                    LaunchArg::Buf(out),
                    LaunchArg::Buf(res),
                ],
                0,
            )
            .unwrap();
            rt.synchronize();
            (
                rt.machine().counters().d2d_copies - before,
                rt.elapsed() - t0,
            )
        };
        let (copies_plain, time_plain) = run(false);
        let (copies_coalesced, time_coalesced) = run(true);
        // 3 remote devices hold ~n/8 single-element segments each.
        assert!(
            copies_plain > 500,
            "expected fragmentation, got {copies_plain}"
        );
        assert_eq!(copies_coalesced, 3, "one bridged copy per remote device");
        assert!(
            time_coalesced < time_plain,
            "saved latencies must show up: {time_coalesced} vs {time_plain}"
        );
    }

    /// Regression for the `windows(2)` collision check: a long range
    /// from device A followed by a short same-device range hid a later
    /// overlap with device B.
    #[test]
    fn cross_device_overlap_sees_past_adjacent_pairs() {
        // The exact pathological shape: (A,0,100), (A,10,20), (B,50,60).
        let mut claims = vec![(0usize, 0u64, 100u64), (0, 10, 20), (1, 50, 60)];
        assert_eq!(cross_device_overlap(&mut claims), Some((0, 1)));
        // Runner-up end matters too: the leader may be the same device
        // as the claim under test.
        let mut claims = vec![
            (0usize, 0u64, 300u64),
            (1, 350, 500),
            (1, 360, 370),
            (0, 400, 410),
        ];
        assert_eq!(cross_device_overlap(&mut claims), Some((1, 0)));
        // Same-device overlap is not a cross-partition hazard.
        let mut claims = vec![(0usize, 0u64, 100u64), (0, 10, 20), (1, 100, 160)];
        assert_eq!(cross_device_overlap(&mut claims), None);
        // Disjoint per-device bands (the normal partitioned shape).
        let mut claims = vec![(0usize, 0u64, 50u64), (1, 50, 100), (2, 100, 150)];
        assert_eq!(cross_device_overlap(&mut claims), None);
        // Touching endpoints do not overlap; empty claims never do.
        let mut claims = vec![(0usize, 0u64, 50u64), (1, 50, 50), (1, 30, 30)];
        assert_eq!(cross_device_overlap(&mut claims), None);
    }

    /// End-to-end: an instrumented scatter where device 1's writes land
    /// strictly *inside* device 0's long claimed run (a partial overlap,
    /// not the everyone-writes-element-0 shape of the test above) is
    /// rejected as a cross-partition collision.
    #[test]
    fn instrumented_launch_detects_nested_range_collision() {
        let scatter = Kernel {
            name: "nested_scatter".into(),
            params: vec![
                scalar("n"),
                array_f32("idx", &[ext("n")]),
                array_f32("out", &[ext("n")]),
            ],
            body: vec![
                let_("i", global_x()),
                guard_return(v("i").ge(v("n"))),
                store("out", vec![to_i64(load("idx", vec![v("i")]))], f(1.0)),
            ],
        };
        let ck = CompiledKernel::compile(&scatter).unwrap();
        let n = 128usize;
        let mut rt = runtime(2);
        let idx = rt.malloc(n * 4, 4).unwrap();
        let out = rt.malloc(n * 4, 4).unwrap();
        // Device 0 runs threads 0..64 and writes elements 0..64 (one
        // long run). Device 1 runs threads 64..128 and writes 32..48
        // via (i-64)/4 + 32 — strictly inside device 0's run.
        let perm: Vec<usize> = (0..n)
            .map(|i| if i < 64 { i } else { (i - 64) / 4 + 32 })
            .collect();
        let idx_host: Vec<u8> = perm
            .iter()
            .flat_map(|&p| (p as f32).to_le_bytes())
            .collect();
        rt.memcpy_h2d(idx, &idx_host).unwrap();
        let err = rt
            .launch_instrumented(
                &ck,
                Dim3::new1(2),
                Dim3::new1(64),
                &[
                    LaunchArg::Scalar(Value::I64(n as i64)),
                    LaunchArg::Buf(idx),
                    LaunchArg::Buf(out),
                ],
            )
            .unwrap_err();
        assert!(matches!(err, RuntimeError::NotPartitionable(_)), "{err}");
    }

    /// Capture/replay on the ping-pong stencil: after the trackers reach
    /// their periodic fixed point (two keys per phase), every further
    /// launch replays. Simulated transfer bytes and launch counts must
    /// be identical with capture on and off; host pattern time and
    /// elapsed time must strictly drop.
    #[test]
    fn plan_cache_replays_steady_state_launches() {
        let ck = CompiledKernel::compile(&stencil_kernel()).unwrap();
        let n = 512usize;
        let iters = 10;
        let run = |capture: bool| {
            let mut rt = MgpuRuntime::new(Machine::new(MachineSpec::kepler_system(3), false));
            rt.set_config(RuntimeConfig {
                capture_plans: capture,
                ..RuntimeConfig::beta()
            });
            let a = rt.malloc(n * 4, 4).unwrap();
            let b = rt.malloc(n * 4, 4).unwrap();
            rt.memcpy_h2d_sim(a).unwrap();
            rt.memcpy_h2d_sim(b).unwrap();
            let (mut src, mut dst) = (a, b);
            for _ in 0..iters {
                rt.launch(
                    &ck,
                    Dim3::new1(4),
                    Dim3::new1(128),
                    &[
                        LaunchArg::Scalar(Value::I64(n as i64)),
                        LaunchArg::Buf(src),
                        LaunchArg::Buf(dst),
                    ],
                )
                .unwrap();
                std::mem::swap(&mut src, &mut dst);
            }
            rt.synchronize();
            (
                rt.elapsed(),
                rt.machine().breakdown(),
                rt.machine().counters(),
            )
        };
        let (t_off, bd_off, c_off) = run(false);
        let (t_on, bd_on, c_on) = run(true);
        // Phases: (a→b, b fresh), (b→a, a fresh), (a→b, steady),
        // (b→a, steady) — 4 misses, then hits only.
        assert_eq!(c_on.plan_misses, 4, "{c_on:?}");
        assert_eq!(c_on.plan_hits as usize, iters - 4, "{c_on:?}");
        assert_eq!(c_off.plan_hits, 0);
        // Identical simulated work.
        assert_eq!(c_on.launches, c_off.launches);
        assert_eq!(c_on.d2d_copies, c_off.d2d_copies);
        assert_eq!(c_on.d2d_bytes, c_off.d2d_bytes);
        // Replay must be strictly cheaper on the host.
        assert!(
            bd_on.pattern < bd_off.pattern,
            "pattern {} !< {}",
            bd_on.pattern,
            bd_off.pattern
        );
        // Elapsed never regresses (the device-side critical path may hide
        // the host savings entirely — here the kernels dominate).
        assert!(t_on <= t_off, "elapsed {t_on} > {t_off}");
        assert_eq!(bd_on.app, bd_off.app);
    }

    /// The cache key embeds tracker signatures, so dirtying a read
    /// buffer with an H2D between iterations changes the key and forces
    /// a re-capture — content-addressed invalidation, no epochs to wire.
    #[test]
    fn plan_cache_invalidates_when_h2d_dirties_read_buffer() {
        let ck = CompiledKernel::compile(&stencil_kernel()).unwrap();
        let n = 512usize;
        // 3 devices: the linear H2D layout (171/171/170 elements) differs
        // from the write-partition layout (256/128/128), so the memcpy
        // really changes the tracker structure.
        let mut rt = MgpuRuntime::new(Machine::new(MachineSpec::kepler_system(3), false));
        rt.set_config(RuntimeConfig::beta());
        let a = rt.malloc(n * 4, 4).unwrap();
        let b = rt.malloc(n * 4, 4).unwrap();
        rt.memcpy_h2d_sim(a).unwrap();
        rt.memcpy_h2d_sim(b).unwrap();
        let launch = |rt: &mut MgpuRuntime, src: VBufId, dst: VBufId| {
            rt.launch(
                &ck,
                Dim3::new1(4),
                Dim3::new1(128),
                &[
                    LaunchArg::Scalar(Value::I64(n as i64)),
                    LaunchArg::Buf(src),
                    LaunchArg::Buf(dst),
                ],
            )
            .unwrap();
        };
        let (mut src, mut dst) = (a, b);
        for _ in 0..10 {
            launch(&mut rt, src, dst);
            std::mem::swap(&mut src, &mut dst);
        }
        let before = rt.machine().counters();
        assert!(before.plan_hits > 0);
        // Dirty the buffer the next launch reads.
        rt.memcpy_h2d_sim(src).unwrap();
        launch(&mut rt, src, dst);
        let after = rt.machine().counters();
        assert_eq!(
            after.plan_misses,
            before.plan_misses + 1,
            "H2D must force a re-capture"
        );
        assert_eq!(after.plan_hits, before.plan_hits);
    }

    /// Functional equivalence: with capture on, the replayed copies and
    /// launches must produce byte-identical results to the uncached
    /// sequence (and to the CPU reference).
    #[test]
    fn capture_replay_preserves_functional_results() {
        let ck = CompiledKernel::compile(&stencil_kernel()).unwrap();
        let n = 384usize;
        let iters = 9;
        let init: Vec<f32> = (0..n).map(|i| ((i * 53) % 89) as f32).collect();
        let init_bytes: Vec<u8> = init.iter().flat_map(|v| v.to_le_bytes()).collect();
        let run = |capture: bool| -> Vec<u8> {
            let mut rt = runtime(4);
            rt.set_config(RuntimeConfig {
                capture_plans: capture,
                ..RuntimeConfig::alpha()
            });
            let a = rt.malloc(n * 4, 4).unwrap();
            let b = rt.malloc(n * 4, 4).unwrap();
            rt.memcpy_h2d(a, &init_bytes).unwrap();
            rt.memcpy_h2d(b, &init_bytes).unwrap();
            let (mut src, mut dst) = (a, b);
            for _ in 0..iters {
                rt.launch(
                    &ck,
                    Dim3::new1(6),
                    Dim3::new1(64),
                    &[
                        LaunchArg::Scalar(Value::I64(n as i64)),
                        LaunchArg::Buf(src),
                        LaunchArg::Buf(dst),
                    ],
                )
                .unwrap();
                std::mem::swap(&mut src, &mut dst);
            }
            rt.synchronize();
            if capture {
                let c = rt.machine().counters();
                assert!(c.plan_hits > 0, "expected replays, got {c:?}");
            }
            let mut out = vec![0u8; n * 4];
            rt.memcpy_d2h(src, &mut out).unwrap();
            out
        };
        let plain = run(false);
        let replayed = run(true);
        assert_eq!(plain, replayed, "replay diverged from the full path");
        let want = stencil_reference(&init, iters);
        let got = f32s(&replayed);
        for i in 0..n {
            assert!((got[i] - want[i]).abs() < 1e-4, "element {i}");
        }
    }

    #[test]
    fn set_config_flushes_captured_plans() {
        let ck = CompiledKernel::compile(&scale_kernel()).unwrap();
        let mut rt = MgpuRuntime::new(Machine::new(MachineSpec::kepler_system(2), false));
        rt.set_config(RuntimeConfig::beta());
        let n = 1024usize;
        let a = rt.malloc(n * 4, 4).unwrap();
        let b = rt.malloc(n * 4, 4).unwrap();
        rt.memcpy_h2d_sim(a).unwrap();
        let args = [
            LaunchArg::Scalar(Value::I64(n as i64)),
            LaunchArg::Buf(a),
            LaunchArg::Buf(b),
        ];
        for _ in 0..3 {
            rt.launch(&ck, Dim3::new1(8), Dim3::new1(128), &args)
                .unwrap();
        }
        assert!(rt.plan_cache_len() > 0);
        assert!(rt.machine().counters().plan_hits > 0);
        rt.set_config(RuntimeConfig::alpha());
        assert_eq!(rt.plan_cache_len(), 0, "config change must flush plans");
    }

    /// `plan_cache_capacity` bounds the cache with LRU eviction: the
    /// stencil ping-pong alternates between 2 steady-state plans, so a
    /// capacity of 1 keeps evicting the plan about to be replayed and
    /// every launch misses, while the counters record each eviction.
    /// Unbounded (0) and generous capacities never evict.
    #[test]
    fn plan_cache_capacity_evicts_lru_and_counts() {
        let ck = CompiledKernel::compile(&stencil_kernel()).unwrap();
        let n = 512usize;
        let iters = 10;
        let run = |capacity: usize| {
            let mut rt = MgpuRuntime::new(Machine::new(MachineSpec::kepler_system(3), false));
            rt.set_config(RuntimeConfig {
                plan_cache_capacity: capacity,
                ..RuntimeConfig::beta()
            });
            let a = rt.malloc(n * 4, 4).unwrap();
            let b = rt.malloc(n * 4, 4).unwrap();
            rt.memcpy_h2d_sim(a).unwrap();
            rt.memcpy_h2d_sim(b).unwrap();
            let (mut src, mut dst) = (a, b);
            for _ in 0..iters {
                rt.launch(
                    &ck,
                    Dim3::new1(4),
                    Dim3::new1(128),
                    &[
                        LaunchArg::Scalar(Value::I64(n as i64)),
                        LaunchArg::Buf(src),
                        LaunchArg::Buf(dst),
                    ],
                )
                .unwrap();
                std::mem::swap(&mut src, &mut dst);
            }
            rt.synchronize();
            (rt.machine().counters(), rt.plan_cache_len())
        };
        let (tight, len_tight) = run(1);
        assert!(len_tight <= 1, "cache exceeded its capacity: {len_tight}");
        assert!(tight.plan_evictions > 0, "{tight:?}");
        assert_eq!(tight.plan_hits, 0, "thrashing cache cannot hit: {tight:?}");
        assert_eq!(tight.plan_misses as usize, iters);

        let (unbounded, _) = run(0);
        assert_eq!(unbounded.plan_evictions, 0, "{unbounded:?}");
        let (generous, len_generous) = run(1024);
        assert_eq!(generous.plan_evictions, 0, "{generous:?}");
        assert_eq!(len_generous, 4, "steady state holds 4 plans");
        assert_eq!(generous.plan_hits, unbounded.plan_hits);
    }

    /// Autotuned launches must stay functionally identical to the fixed
    /// heuristic: same stencil, same reference results — only the grid
    /// slicing is chosen by the cost model.
    #[test]
    fn autotuned_stencil_stays_coherent_and_records_a_choice() {
        let ck = CompiledKernel::compile(&stencil_kernel()).unwrap();
        let n = 512usize;
        let iters = 8;
        let init: Vec<f32> = (0..n).map(|i| ((i * 13) % 97) as f32).collect();
        let init_bytes: Vec<u8> = init.iter().flat_map(|v| v.to_le_bytes()).collect();
        let mut rt = runtime(4);
        rt.set_config(RuntimeConfig::tuned());
        let a = rt.malloc(n * 4, 4).unwrap();
        let b = rt.malloc(n * 4, 4).unwrap();
        rt.memcpy_h2d(a, &init_bytes).unwrap();
        rt.memcpy_h2d(b, &init_bytes).unwrap();
        let (mut src, mut dst) = (a, b);
        for _ in 0..iters {
            rt.launch(
                &ck,
                Dim3::new1(4),
                Dim3::new1(128),
                &[
                    LaunchArg::Scalar(Value::I64(n as i64)),
                    LaunchArg::Buf(src),
                    LaunchArg::Buf(dst),
                ],
            )
            .unwrap();
            std::mem::swap(&mut src, &mut dst);
        }
        rt.synchronize();
        let mut out = vec![0u8; n * 4];
        rt.memcpy_d2h(src, &mut out).unwrap();
        let want = stencil_reference(&init, iters);
        let got = f32s(&out);
        for i in 0..n {
            assert!((got[i] - want[i]).abs() < 1e-4, "element {i}");
        }
        // A decision was recorded and surfaced through the counters…
        let c = rt.machine().counters();
        assert_ne!(c.strategy_chosen, 0, "no tuner decision in {c:?}");
        // …and the report shows one entry per ping-pong phase direction
        // (same kernel+geometry+scalars: exactly one key).
        let report = rt.tuner_report();
        assert_eq!(report.len(), 1, "{report:?}");
        assert_eq!(report[0].kernel, "stencil");
        assert!(report[0].launches >= iters as u64 - 1);
        // The counters round-trip the decision (a 512-element stencil is
        // overhead-bound, so the tuner may legitimately keep one device —
        // the *choice* is the model's to make, coherence is ours).
        assert_eq!(
            mekong_tuner::decode_strategy(c.strategy_chosen).as_deref(),
            Some(report[0].strategy.as_str())
        );
    }

    /// A forced strategy bypasses both the heuristic and the tuner; the
    /// written buffer's tracker shows exactly that many slices.
    #[test]
    fn forced_strategy_pins_the_partitioning() {
        let ck = CompiledKernel::compile(&scale_kernel()).unwrap();
        let mut rt = runtime(4);
        rt.force_strategy("scale", PartitionStrategy::even(SplitAxis::X, 2));
        let n = 1024usize;
        let a = rt.malloc(n * 4, 4).unwrap();
        let b = rt.malloc(n * 4, 4).unwrap();
        rt.memcpy_h2d(a, &vec![0u8; n * 4]).unwrap();
        let args = [
            LaunchArg::Scalar(Value::I64(n as i64)),
            LaunchArg::Buf(a),
            LaunchArg::Buf(b),
        ];
        rt.launch(&ck, Dim3::new1(8), Dim3::new1(128), &args)
            .unwrap();
        // Only 2 of 4 devices wrote: two tracker segments.
        assert_eq!(rt.segment_count(b), 2);
        rt.clear_forced_strategy("scale");
        rt.launch(&ck, Dim3::new1(8), Dim3::new1(128), &args)
            .unwrap();
        assert_eq!(rt.segment_count(b), 4, "heuristic restored after clear");
    }

    /// Measured traffic flows back into the tuner: after a completed
    /// window the report carries measured bytes, and for the stencil the
    /// static prediction must be close to what actually moved.
    #[test]
    fn autotune_measurement_window_reports_bytes() {
        let ck = CompiledKernel::compile(&stencil_kernel()).unwrap();
        // Large enough that splitting beats one device despite the
        // host-staged link's per-copy latency.
        let n = 1usize << 22;
        let mut rt = MgpuRuntime::new(Machine::new(MachineSpec::kepler_system(4), false));
        rt.set_config(RuntimeConfig::tuned());
        let a = rt.malloc(n * 4, 4).unwrap();
        let b = rt.malloc(n * 4, 4).unwrap();
        rt.memcpy_h2d_sim(a).unwrap();
        rt.memcpy_h2d_sim(b).unwrap();
        let (mut src, mut dst) = (a, b);
        for _ in 0..12 {
            rt.launch(
                &ck,
                Dim3::new1((n / 256) as u32),
                Dim3::new1(256),
                &[
                    LaunchArg::Scalar(Value::I64(n as i64)),
                    LaunchArg::Buf(src),
                    LaunchArg::Buf(dst),
                ],
            )
            .unwrap();
            std::mem::swap(&mut src, &mut dst);
        }
        let report = rt.tuner_report();
        assert_eq!(report.len(), 1);
        let r = &report[0];
        assert!(
            !r.strategy.ends_with(":1"),
            "a 4M-element stencil must be split: {r:?}"
        );
        let measured = r.measured_bytes.expect("window must have completed");
        assert_eq!(rt.machine().counters().tuner_measured_bytes, measured);
        // Steady state: each interior partition pulls a 1-element halo
        // from each neighbour. Prediction and measurement agree within
        // the refinement tolerance (no switch recorded).
        assert_eq!(r.switches, 0, "{r:?}");
        assert!(measured > 0, "halo exchange must be visible");
        let (p, m) = (r.predicted_bytes as f64, measured as f64);
        assert!(
            (p - m).abs() <= 0.10 * m.max(1.0),
            "prediction {p} vs measured {m}"
        );
    }

    #[test]
    fn tracker_reflects_partition_writes() {
        let ck = CompiledKernel::compile(&scale_kernel()).unwrap();
        let mut rt = runtime(4);
        let n = 1024usize;
        let a = rt.malloc(n * 4, 4).unwrap();
        let b = rt.malloc(n * 4, 4).unwrap();
        rt.memcpy_h2d(a, &vec![0u8; n * 4]).unwrap();
        rt.launch(
            &ck,
            Dim3::new1(8),
            Dim3::new1(128),
            &[
                LaunchArg::Scalar(Value::I64(n as i64)),
                LaunchArg::Buf(a),
                LaunchArg::Buf(b),
            ],
        )
        .unwrap();
        // 1:1 write pattern -> exactly one segment per device (§8.1).
        assert_eq!(rt.segment_count(b), 4);
    }

    /// Regression guard for the replica-awareness of `sync_whole_buffer`
    /// (suspected to predate replica coherence; it does not — it runs
    /// through the same replica-aware [`TransferPlan`] as the read-sync
    /// path). Held segments must be skipped and counted as hits, not
    /// re-copied from `freshest`.
    #[test]
    fn sync_whole_buffer_serves_held_segments_from_replicas() {
        let mut rt = runtime(2);
        let n = 100usize;
        let b = rt.malloc(n * 4, 4).unwrap();
        let data: Vec<u8> = (0..n).flat_map(|i| (i as f32).to_le_bytes()).collect();
        rt.memcpy_h2d(b, &data).unwrap();
        // Linear split: device 0 owns [0,200), device 1 [200,400).
        // Replicate device 1's half onto device 0 and record the holder.
        let (i0, i1) = (
            rt.buffers[b.index()].instances[0],
            rt.buffers[b.index()].instances[1],
        );
        rt.machine.copy_d2d(i1, 200, i0, 200, 200).unwrap();
        rt.machine.sync_all();
        rt.buffers[b.index()].tracker.add_holder(200, 400, 0);
        let before = rt.machine().counters();
        let hits_before = before.replica_hits;
        let copies_before = before.d2d_copies;
        // Device 0 already holds everything: a full sync must move no
        // bytes and count the remote-fresh half as a replica hit.
        rt.sync_whole_buffer(b, 0).unwrap();
        let after = rt.machine().counters();
        assert_eq!(
            after.d2d_copies, copies_before,
            "held segments must not be re-copied"
        );
        assert_eq!(after.replica_hits, hits_before + 1);
        assert_eq!(after.refetch_bytes_saved - before.refetch_bytes_saved, 200);
        // And with replica coherence off, the same sync re-fetches.
        rt.set_config(RuntimeConfig {
            replica_coherence: false,
            ..RuntimeConfig::default()
        });
        rt.sync_whole_buffer(b, 0).unwrap();
        assert_eq!(rt.machine().counters().d2d_copies, copies_before + 1);
    }

    /// Forced-strategy launches must not feed the autotuner's measurement
    /// windows (they run a strategy the tuner did not choose), and
    /// forcing/clearing resets any half-filled window.
    #[test]
    fn forced_launches_do_not_pollute_tuner_windows() {
        let ck = CompiledKernel::compile(&scale_kernel()).unwrap();
        let mut rt = runtime(2);
        rt.set_config(RuntimeConfig::tuned());
        let n = 1024usize;
        let a = rt.malloc(n * 4, 4).unwrap();
        let b = rt.malloc(n * 4, 4).unwrap();
        rt.memcpy_h2d(a, &vec![0u8; n * 4]).unwrap();
        let args = [
            LaunchArg::Scalar(Value::I64(n as i64)),
            LaunchArg::Buf(a),
            LaunchArg::Buf(b),
        ];
        let (grid, block) = (Dim3::new1(8), Dim3::new1(128));
        // One tuned launch creates the entry (and burns the settle).
        rt.launch(&ck, grid, block, &args).unwrap();
        let key = TuneKey {
            kernel: "scale".into(),
            grid,
            block,
            scalars: vec![n as i64],
        };
        let launches_before = rt.tuner().entry(&key).unwrap().launches;
        // Pin a strategy and launch enough times to complete a window if
        // these were recorded.
        use mekong_analysis::SplitAxis;
        rt.force_strategy("scale", PartitionStrategy::even(SplitAxis::X, 2));
        for _ in 0..6 {
            rt.launch(&ck, grid, block, &args).unwrap();
        }
        let e = rt.tuner().entry(&key).unwrap();
        assert_eq!(
            e.launches, launches_before,
            "forced launches must not be recorded against the tuner entry"
        );
        assert_eq!(e.measured_bytes(), None, "no window may complete");
        // Lifting the override resumes clean recording.
        rt.clear_forced_strategy("scale");
        for _ in 0..6 {
            rt.launch(&ck, grid, block, &args).unwrap();
        }
        assert!(rt.tuner().entry(&key).unwrap().launches > launches_before);
    }

    /// The launch-ahead pipeline hides halo-exchange latency behind
    /// compute: steady-state replays of a ping-pong stencil finish
    /// faster with a window than fully synchronous, with identical
    /// counters and plan hit rates.
    #[test]
    fn launch_ahead_overlaps_replayed_halo_exchange() {
        let ck = CompiledKernel::compile(&stencil_kernel()).unwrap();
        let n = 1 << 20;
        let iters = 12;
        let grid = Dim3::new1((n as u32) / 256);
        let block = Dim3::new1(256);
        let run = |ahead: u32| {
            let mut rt = MgpuRuntime::new(Machine::new(MachineSpec::kepler_system(4), false));
            rt.set_config(RuntimeConfig {
                capture_plans: true,
                launch_ahead: ahead,
                ..RuntimeConfig::default()
            });
            let a = rt.malloc(n * 4, 4).unwrap();
            let b = rt.malloc(n * 4, 4).unwrap();
            rt.memcpy_h2d_sim(a).unwrap();
            rt.memcpy_h2d_sim(b).unwrap();
            rt.machine_mut().reset_clock();
            let (mut src, mut dst) = (a, b);
            for _ in 0..iters {
                rt.launch(
                    &ck,
                    grid,
                    block,
                    &[
                        LaunchArg::Scalar(Value::I64(n as i64)),
                        LaunchArg::Buf(src),
                        LaunchArg::Buf(dst),
                    ],
                )
                .unwrap();
                std::mem::swap(&mut src, &mut dst);
            }
            rt.synchronize();
            (rt.elapsed(), rt.machine().counters())
        };
        let (t_sync, c_sync) = run(0);
        let (t_pipe, c_pipe) = run(2);
        assert_eq!(c_sync, c_pipe, "pipelining must not change any counter");
        assert!(
            t_pipe < t_sync,
            "launch-ahead must hide transfer latency: {t_pipe} vs {t_sync}"
        );
    }

    /// A D2H gather of a buffer nothing in flight writes must not drain
    /// the launch-ahead window: the spectator's bytes come back exactly
    /// as uploaded and the in-flight depth is preserved, while
    /// gathering the ping-pong buffer itself still forces the
    /// conservative full flush.
    #[test]
    fn cold_buffer_gather_keeps_the_window_in_flight() {
        let ck = CompiledKernel::compile(&stencil_kernel()).unwrap();
        let mut rt = runtime(4);
        rt.set_config(RuntimeConfig {
            capture_plans: true,
            launch_ahead: 2,
            ..RuntimeConfig::default()
        });
        let n = 4096usize;
        let grid = Dim3::new1((n as u32) / 256);
        let block = Dim3::new1(256);
        let a = rt.malloc(n * 4, 4).unwrap();
        let b = rt.malloc(n * 4, 4).unwrap();
        let spectator = rt.malloc(n * 4, 4).unwrap();
        let data: Vec<u8> = (0..n).flat_map(|i| (i as f32).to_le_bytes()).collect();
        let marker: Vec<u8> = (0..n)
            .flat_map(|i| (0.5 * i as f32).to_le_bytes())
            .collect();
        rt.memcpy_h2d(a, &data).unwrap();
        rt.memcpy_h2d(b, &data).unwrap();
        rt.memcpy_h2d(spectator, &marker).unwrap();
        let (mut src, mut dst) = (a, b);
        for _ in 0..8 {
            rt.launch(
                &ck,
                grid,
                block,
                &[
                    LaunchArg::Scalar(Value::I64(n as i64)),
                    LaunchArg::Buf(src),
                    LaunchArg::Buf(dst),
                ],
            )
            .unwrap();
            std::mem::swap(&mut src, &mut dst);
        }
        let depth = rt.pipeline_depth();
        assert!(depth > 0, "steady-state replays must be in flight");
        let mut out = vec![0u8; n * 4];
        rt.memcpy_d2h(spectator, &mut out).unwrap();
        assert_eq!(out, marker, "cold gather must be byte-identical");
        assert_eq!(
            rt.pipeline_depth(),
            depth,
            "cold gather must not drain the window"
        );
        // Both ping-pong buffers have in-flight writers: gathering one
        // takes the conservative flush and empties the window.
        rt.memcpy_d2h(src, &mut out).unwrap();
        assert_eq!(rt.pipeline_depth(), 0, "hot gather must flush");
    }
}
