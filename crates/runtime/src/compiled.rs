//! The per-kernel artifact the two-pass pipeline produces: model +
//! partitioned clone + compiled enumerators.

use crate::{Result, RuntimeError};
use mekong_analysis::{analyze_kernel, KernelModel};
use mekong_check::AxisMask;
use mekong_enumgen::KernelEnumerators;
use mekong_kernel::Kernel;
use mekong_partition::partition_kernel;

/// Everything the runtime needs to run one kernel on multiple devices:
/// the §4 application model, the §7 partitioned clone, and the §6
/// enumerators.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    /// The unmodified kernel (single-device fallback path).
    pub original: Kernel,
    /// The partition-aware clone (six extra scalar parameters).
    pub partitioned: Kernel,
    /// The application-model record.
    pub model: KernelModel,
    /// Compiled read/write enumerators per array argument.
    pub enums: KernelEnumerators,
    /// Split axes with a static write-disjointness proof (mekong-check).
    /// The launch path refuses — or, with enforcement off, warns and
    /// counts — partitionings along a cleared axis, and the autotuner
    /// never enumerates candidates along one.
    pub safe_axes: AxisMask,
}

impl CompiledKernel {
    /// Run the device-side pipeline for one kernel: polyhedral analysis,
    /// partition transform, enumerator generation.
    ///
    /// Succeeds even for kernels that fail the §4 soundness checks — the
    /// verdict lives in `model.verdict`, and the runtime refuses
    /// multi-device launches for those (single-device execution remains
    /// available).
    pub fn compile(kernel: &Kernel) -> Result<CompiledKernel> {
        let model = analyze_kernel(kernel)
            .map_err(|e| RuntimeError::BadArgument(format!("analysis failed: {e}")))?;
        Self::from_model(kernel, model)
    }

    /// Build the artifacts from an existing model record — the pass-2
    /// path, where the model comes from the disk file pass 1 wrote
    /// (possibly adjusted by programmer annotations, §11).
    pub fn from_model(kernel: &Kernel, model: KernelModel) -> Result<CompiledKernel> {
        debug_assert_eq!(model.kernel_name, kernel.name);
        let enums = KernelEnumerators::build(&model)?;
        let safe_axes = mekong_check::safe_axes(&model).map_err(|e| {
            RuntimeError::BadArgument(format!("partition-safety check failed: {e}"))
        })?;
        Ok(CompiledKernel {
            original: kernel.clone(),
            partitioned: partition_kernel(kernel),
            model,
            enums,
            safe_axes,
        })
    }

    /// Is multi-device execution allowed for this kernel?
    pub fn is_partitionable(&self) -> bool {
        self.model.verdict.is_partitionable()
    }

    /// Cumulative `(hits, misses)` of the enumerator range memo across
    /// all read/write enumerators of this kernel. Every
    /// [`footprint_bytes`](Self::footprint_bytes) call and every
    /// cache-missing launch queries the memo; iterative workloads should
    /// show hits ≫ misses.
    pub fn range_cache_stats(&self) -> (u64, u64) {
        self.enums.range_cache_stats()
    }

    /// The polyhedral memory footprint of one partition, in bytes: the
    /// unique array elements the partition reads or writes, per the access
    /// maps. Used as the bandwidth term of the simulator's roofline (a
    /// perfect-reuse traffic estimate).
    pub fn footprint_bytes(
        &self,
        part: &mekong_partition::Partition,
        block: mekong_kernel::Dim3,
        grid: mekong_kernel::Dim3,
        scalars: &[i64],
    ) -> u64 {
        let mut total = 0u64;
        let names = &self.enums.scalar_names;
        let elem_size = |idx: usize| -> u64 {
            match &self.model.args[idx] {
                mekong_analysis::ArgModel::Array { elem, .. } => elem.size_bytes() as u64,
                _ => 0,
            }
        };
        for (idx, e) in self.enums.reads.iter().chain(self.enums.writes.iter()) {
            let es = elem_size(*idx);
            e.for_each_range(part, block, grid, names, scalars, &mut |r| {
                total += r.len() * es;
            });
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mekong_kernel::builder::*;

    #[test]
    fn compile_produces_all_artifacts() {
        let k = Kernel {
            name: "scale".into(),
            params: vec![
                scalar("n"),
                array_f32("a", &[ext("n")]),
                array_f32("b", &[ext("n")]),
            ],
            body: vec![
                let_("i", global_x()),
                guard_return(v("i").ge(v("n"))),
                store("b", vec![v("i")], load("a", vec![v("i")]) * f(3.0)),
            ],
        };
        let ck = CompiledKernel::compile(&k).unwrap();
        assert!(ck.is_partitionable());
        // The identity write is proven disjoint along its suggested axis.
        assert!(ck.safe_axes.allows(ck.model.partitioning));
        assert_eq!(ck.partitioned.params.len(), k.params.len() + 6);
        assert!(ck.enums.read_of(1).is_some());
        assert!(ck.enums.write_of(2).is_some());
        assert!(ck.enums.write_of(1).is_none());
    }

    #[test]
    fn footprint_queries_feed_the_range_memo() {
        use mekong_kernel::Dim3;
        use mekong_partition::Partition;
        let k = Kernel {
            name: "scale".into(),
            params: vec![
                scalar("n"),
                array_f32("a", &[ext("n")]),
                array_f32("b", &[ext("n")]),
            ],
            body: vec![
                let_("i", global_x()),
                guard_return(v("i").ge(v("n"))),
                store("b", vec![v("i")], load("a", vec![v("i")]) * f(3.0)),
            ],
        };
        let ck = CompiledKernel::compile(&k).unwrap();
        let (grid, block) = (Dim3::new1(4), Dim3::new1(64));
        let part = Partition::whole(grid);
        let f1 = ck.footprint_bytes(&part, block, grid, &[256]);
        let (h0, m0) = ck.range_cache_stats();
        assert_eq!(h0, 0, "first walk cannot hit");
        assert!(m0 > 0, "first walk must populate the memo");
        let f2 = ck.footprint_bytes(&part, block, grid, &[256]);
        assert_eq!(f1, f2);
        let (h1, m1) = ck.range_cache_stats();
        assert_eq!(m1, m0, "second identical walk must not miss");
        assert!(h1 > 0, "second identical walk must hit");
    }

    #[test]
    fn unpartitionable_kernel_still_compiles() {
        let k = Kernel {
            name: "allzero".into(),
            params: vec![scalar("n"), array_f32("out", &[ext("n")])],
            body: vec![store("out", vec![i(0)], f(1.0))],
        };
        let ck = CompiledKernel::compile(&k).unwrap();
        assert!(!ck.is_partitionable());
        assert_eq!(ck.safe_axes, AxisMask::none());
    }
}
