//! Sharded, shareable launch-plan cache.
//!
//! PR 2's plan cache was a private `HashMap` inside one `MgpuRuntime` —
//! fine for a single app, wrong for a serving fleet where dozens of
//! tenant runtimes capture the *same* plans for the same kernels. The
//! keys are already content-addressed (kernel × geometry × scalars ×
//! tracker signatures, with buffer ids namespace-stripped to their local
//! indices), so identical workloads from different tenants produce
//! identical keys; this cache makes the storage shareable:
//!
//! * **Sharded** by an FNV-1a hash of the kernel name, so concurrent
//!   tenants replaying different kernels never contend on one lock, and
//!   every plan of one kernel lives in one shard (a kernel's working set
//!   is scanned together during eviction and persistence).
//! * **Shared** via `Arc`: [`crate::MgpuRuntime::set_plan_cache`] points
//!   any number of runtimes at one cache. Each entry remembers the
//!   namespace that captured it, so a hit from a *different* namespace is
//!   observable as a cross-tenant hit
//!   ([`mekong_gpusim::OpCounters::plan_shared_hits`]).
//! * **Bounded**: a capacity (plans, not bytes; `0` = unbounded) with
//!   exact global LRU eviction — tenant churn must not leak memory. The
//!   recency clock is a single atomic tick bumped on every touch.

use crate::plan::{LaunchPlan, PlanKey};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Number of shards. A power of two so the hash folds evenly; small
/// enough that the exact-LRU eviction scan stays trivial.
pub const PLAN_CACHE_SHARDS: usize = 8;

/// FNV-1a over the kernel name — the shard selector. Deliberately *not*
/// the full `PlanKey` hash: all plans of one kernel share a shard.
fn shard_of(kernel: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in kernel.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h as usize) % PLAN_CACHE_SHARDS
}

struct Entry {
    plan: Arc<LaunchPlan>,
    /// Namespace of the runtime that captured (or loaded) this plan.
    namespace: u32,
    /// Recency tick of the last touch (insert or hit).
    last_used: u64,
    /// Installed from a snapshot (true) vs captured live (false).
    loaded: bool,
    /// Lookup hits since the entry was installed or captured.
    hits: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<PlanKey, Entry>,
}

/// The sharded LRU plan cache. All methods take `&self` (interior
/// mutability) so the cache can be shared behind an `Arc` without an
/// outer lock.
pub struct ShardedPlanCache {
    shards: Vec<Mutex<Shard>>,
    /// Maximum number of cached plans; `0` = unbounded.
    capacity: AtomicUsize,
    /// Monotonic recency clock.
    tick: AtomicU64,
}

impl ShardedPlanCache {
    /// An empty cache holding at most `capacity` plans (`0` = unbounded).
    pub fn new(capacity: usize) -> ShardedPlanCache {
        ShardedPlanCache {
            shards: (0..PLAN_CACHE_SHARDS).map(|_| Mutex::default()).collect(),
            capacity: AtomicUsize::new(capacity),
            tick: AtomicU64::new(0),
        }
    }

    fn bump(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Look up a plan; a hit refreshes its LRU position. Returns the plan
    /// and the namespace that captured it (so callers can tell a
    /// cross-tenant hit from their own).
    pub fn get(&self, key: &PlanKey) -> Option<(Arc<LaunchPlan>, u32)> {
        let mut shard = self.shards[shard_of(&key.kernel)].lock();
        let tick = self.bump();
        shard.map.get_mut(key).map(|e| {
            e.last_used = tick;
            e.hits += 1;
            (e.plan.clone(), e.namespace)
        })
    }

    /// Insert a freshly captured plan under `namespace`. Returns how many
    /// plans the capacity bound evicted to make room (0 when unbounded or
    /// not yet full).
    pub fn insert(&self, key: PlanKey, plan: Arc<LaunchPlan>, namespace: u32) -> u64 {
        let tick = self.bump();
        self.shards[shard_of(&key.kernel)].lock().map.insert(
            key,
            Entry {
                plan,
                namespace,
                last_used: tick,
                loaded: false,
                hits: 0,
            },
        );
        self.enforce_capacity()
    }

    /// Evict least-recently-used entries until the capacity holds.
    /// Exact global LRU: scan every shard for the minimum recency tick.
    /// Caches are small (thousands of plans at most) and eviction only
    /// runs past the bound, so the scan is not a hot path.
    fn enforce_capacity(&self) -> u64 {
        let cap = self.capacity.load(Ordering::Relaxed);
        if cap == 0 {
            return 0;
        }
        let mut evicted = 0u64;
        while self.len() > cap {
            let mut oldest: Option<(usize, PlanKey, u64)> = None;
            for (i, shard) in self.shards.iter().enumerate() {
                let shard = shard.lock();
                for (k, e) in &shard.map {
                    if oldest.as_ref().is_none_or(|(_, _, t)| e.last_used < *t) {
                        oldest = Some((i, k.clone(), e.last_used));
                    }
                }
            }
            match oldest {
                Some((i, key, _)) => {
                    if self.shards[i].lock().map.remove(&key).is_some() {
                        evicted += 1;
                    } else {
                        break; // raced away — nothing left to do
                    }
                }
                None => break,
            }
        }
        evicted
    }

    /// Total cached plans across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// True when no plan is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached plan.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().map.clear();
        }
    }

    /// Change the capacity bound (`0` = unbounded) and immediately
    /// enforce it. Returns the evictions that took.
    pub fn set_capacity(&self, capacity: usize) -> u64 {
        self.capacity.store(capacity, Ordering::Relaxed);
        self.enforce_capacity()
    }

    /// The current capacity bound (`0` = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity.load(Ordering::Relaxed)
    }

    /// Every entry as `(key, plan, namespace)` — the persistence
    /// snapshot's raw material.
    pub fn export(&self) -> Vec<(PlanKey, Arc<LaunchPlan>, u32)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock();
            for (k, e) in &shard.map {
                out.push((k.clone(), e.plan.clone(), e.namespace));
            }
        }
        out
    }

    /// [`ShardedPlanCache::export`] minus the dead weight: every entry
    /// captured live in this process survives, but an entry *loaded*
    /// from a snapshot survives only if it was hit at least once since
    /// loading. Snapshotting through this method is the cache's
    /// generational compaction — plans nobody replayed any more would
    /// otherwise ride every snapshot/restore cycle forever.
    pub fn export_live(&self) -> Vec<(PlanKey, Arc<LaunchPlan>, u32)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock();
            for (k, e) in &shard.map {
                if !e.loaded || e.hits > 0 {
                    out.push((k.clone(), e.plan.clone(), e.namespace));
                }
            }
        }
        out
    }

    /// Number of loaded-but-never-hit entries a compacting snapshot
    /// would drop right now.
    pub fn compactable(&self) -> usize {
        self.len() - self.export_live().len()
    }

    /// Install entries (from a snapshot) as most-recently-used, then
    /// enforce the capacity bound. Existing entries with the same key are
    /// replaced. Imported entries are marked *loaded* with zero hits:
    /// they must prove their worth before the next compacting snapshot
    /// carries them forward (see [`ShardedPlanCache::export_live`]).
    pub fn import(&self, entries: Vec<(PlanKey, Arc<LaunchPlan>, u32)>) -> u64 {
        for (key, plan, namespace) in entries {
            let tick = self.bump();
            self.shards[shard_of(&key.kernel)].lock().map.insert(
                key,
                Entry {
                    plan,
                    namespace,
                    last_used: tick,
                    loaded: true,
                    hits: 0,
                },
            );
        }
        self.enforce_capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mekong_kernel::Dim3;

    fn key(kernel: &str, n: i64) -> PlanKey {
        PlanKey {
            kernel: kernel.to_string(),
            strategy: 0,
            grid: Dim3::new1(1),
            block: Dim3::new1(1),
            bounds: vec![n],
            args: Vec::new(),
        }
    }

    fn plan() -> Arc<LaunchPlan> {
        Arc::new(LaunchPlan::default())
    }

    #[test]
    fn get_returns_capturing_namespace() {
        let c = ShardedPlanCache::new(0);
        assert_eq!(c.insert(key("k", 0), plan(), 7), 0);
        let (_, ns) = c.get(&key("k", 0)).unwrap();
        assert_eq!(ns, 7);
        assert!(c.get(&key("k", 1)).is_none());
    }

    #[test]
    fn lru_evicts_oldest_across_shards() {
        let c = ShardedPlanCache::new(2);
        // Different kernel names land in different shards; eviction must
        // still find the global oldest.
        c.insert(key("a", 0), plan(), 0);
        c.insert(key("b", 0), plan(), 0);
        // Touch "a" so "b" is the LRU entry.
        assert!(c.get(&key("a", 0)).is_some());
        let evicted = c.insert(key("c", 0), plan(), 0);
        assert_eq!(evicted, 1);
        assert_eq!(c.len(), 2);
        assert!(c.get(&key("a", 0)).is_some());
        assert!(c.get(&key("b", 0)).is_none(), "LRU entry must be gone");
        assert!(c.get(&key("c", 0)).is_some());
    }

    #[test]
    fn zero_capacity_is_unbounded() {
        let c = ShardedPlanCache::new(0);
        for i in 0..100 {
            assert_eq!(c.insert(key("k", i), plan(), 0), 0);
        }
        assert_eq!(c.len(), 100);
    }

    #[test]
    fn shrinking_capacity_evicts_immediately() {
        let c = ShardedPlanCache::new(0);
        for i in 0..10 {
            c.insert(key("k", i), plan(), 0);
        }
        assert_eq!(c.set_capacity(3), 7);
        assert_eq!(c.len(), 3);
        // The three most recently inserted survive.
        for i in 7..10 {
            assert!(c.get(&key("k", i)).is_some());
        }
    }

    #[test]
    fn export_live_drops_only_unhit_loaded_entries() {
        let c = ShardedPlanCache::new(0);
        c.insert(key("captured", 0), plan(), 1);
        c.import(vec![
            (key("hit", 0), plan(), 2),
            (key("cold", 0), plan(), 2),
        ]);
        // One loaded entry proves its worth, the other never replays.
        assert!(c.get(&key("hit", 0)).is_some());
        assert_eq!(c.compactable(), 1);
        let live = c.export_live();
        let kernels: Vec<&str> = live.iter().map(|(k, _, _)| k.kernel.as_str()).collect();
        assert!(kernels.contains(&"captured"));
        assert!(kernels.contains(&"hit"));
        assert!(!kernels.contains(&"cold"), "{kernels:?}");
        // The full export still sees everything.
        assert_eq!(c.export().len(), 3);
        // A live capture is kept even with zero hits.
        assert_eq!(live.len(), 2);
    }

    #[test]
    fn export_import_round_trips() {
        let c = ShardedPlanCache::new(0);
        c.insert(key("a", 1), plan(), 1);
        c.insert(key("b", 2), plan(), 2);
        let entries = c.export();
        assert_eq!(entries.len(), 2);
        let c2 = ShardedPlanCache::new(0);
        c2.import(entries);
        assert_eq!(c2.len(), 2);
        assert_eq!(c2.get(&key("a", 1)).unwrap().1, 1);
        assert_eq!(c2.get(&key("b", 2)).unwrap().1, 2);
    }
}
