//! The buffer tracker: a sorted list of non-overlapping segments, each
//! naming the owner of the most recently written copy (paper §8.1).
//!
//! "The segment list is based on a B-Tree map using the start of each
//! segment as the key and the 'owner' of the most recent version as the
//! value."

use parking_lot::Mutex;
use std::collections::BTreeMap;

/// Who holds the freshest copy of a byte range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Owner {
    /// Never written since allocation (reads see zeros / undefined, like
    /// fresh `cudaMalloc` memory).
    Uninit,
    /// The host buffer (after host-side writes; not used by kernels).
    Host,
    /// Device-local instance `i`.
    Device(usize),
}

/// Non-overlapping, fully covering segment list over `[0, len)`.
pub struct Tracker {
    len: u64,
    /// start → (end, owner); segments tile `[0, len)`.
    segments: BTreeMap<u64, (u64, Owner)>,
    /// Mutation counter: bumped by every [`Tracker::update`] that covers
    /// at least one byte. Lets callers detect "nothing changed since I
    /// last looked" without walking the segment list.
    epoch: u64,
    /// Memoized `(epoch, structural hash)` pair backing
    /// [`Tracker::signature`]; interior mutability so read-only consumers
    /// (the launch-plan cache key) can fill it.
    sig_memo: Mutex<Option<(u64, u64)>>,
}

impl Clone for Tracker {
    fn clone(&self) -> Tracker {
        Tracker {
            len: self.len,
            segments: self.segments.clone(),
            epoch: self.epoch,
            sig_memo: Mutex::new(*self.sig_memo.lock()),
        }
    }
}

impl std::fmt::Debug for Tracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracker")
            .field("len", &self.len)
            .field("segments", &self.segments)
            .field("epoch", &self.epoch)
            .finish()
    }
}

impl Tracker {
    /// A tracker covering `len` bytes, all [`Owner::Uninit`].
    pub fn new(len: u64) -> Tracker {
        let mut segments = BTreeMap::new();
        if len > 0 {
            segments.insert(0, (len, Owner::Uninit));
        }
        Tracker {
            len,
            segments,
            epoch: 0,
            sig_memo: Mutex::new(None),
        }
    }

    /// Mutation epoch: increases on every update that covers ≥ 1 byte.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Structural hash of the segment list (FNV-1a over `(start, end,
    /// owner)` triples plus the length). Two trackers with identical
    /// segment lists hash equal regardless of the update history that
    /// produced them, so steady-state iterative workloads (ping-pong
    /// stencils) reach a periodic fixed point of signatures. Memoized per
    /// [`Tracker::epoch`]: the hot launch path pays one hash-map-sized
    /// walk only after an actual mutation.
    pub fn signature(&self) -> u64 {
        let mut memo = self.sig_memo.lock();
        if let Some((epoch, hash)) = *memo {
            if epoch == self.epoch {
                return hash;
            }
        }
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(FNV_PRIME);
        };
        mix(self.len);
        for (&s, &(e, o)) in &self.segments {
            mix(s);
            mix(e);
            mix(match o {
                Owner::Uninit => u64::MAX,
                Owner::Host => u64::MAX - 1,
                Owner::Device(d) => d as u64,
            });
        }
        *memo = Some((self.epoch, h));
        h
    }

    /// Tracked length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if the tracker covers zero bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of segments (fragmentation metric; §8.1 discusses why
    /// regular kernels keep this at one segment per partition).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Record that `owner` wrote `[start, end)`.
    ///
    /// Returns the number of pre-update segments the range touched (what a
    /// `query` over the same range would have visited) — the metadata work
    /// the update actually performed, which the runtime charges as
    /// host-side tracker-maintenance time.
    pub fn update(&mut self, start: u64, end: u64, owner: Owner) -> usize {
        let end = end.min(self.len);
        if start >= end {
            return 0;
        }
        self.epoch += 1;
        // Split the segment containing `start` if it begins earlier.
        if let Some((&s, &(e, o))) = self.segments.range(..=start).next_back() {
            if s < start && start < e {
                self.segments.insert(s, (start, o));
                self.segments.insert(start, (e, o));
            }
        }
        // Split the segment containing `end` if it extends past it.
        if let Some((&s, &(e, o))) = self.segments.range(..end).next_back() {
            if s < end && end < e {
                self.segments.insert(s, (end, o));
                self.segments.insert(end, (e, o));
            }
        }
        // Remove all segments now fully inside [start, end). After the
        // boundary splits, each pre-update segment overlapping the range
        // maps to exactly one entry here, so the count is the touched
        // segment count.
        let inside: Vec<u64> = self.segments.range(start..end).map(|(&s, _)| s).collect();
        let touched = inside.len();
        for s in inside {
            self.segments.remove(&s);
        }
        self.segments.insert(start, (end, owner));
        // Merge with neighbors of the same owner.
        self.merge_around(start);
        touched
    }

    fn merge_around(&mut self, start: u64) {
        let (end, owner) = self.segments[&start];
        // Merge right.
        if let Some((&rs, &(re, ro))) = self.segments.range(end..).next() {
            if rs == end && ro == owner {
                self.segments.remove(&rs);
                self.segments.insert(start, (re, owner));
            }
        }
        // Merge left.
        let (end, owner) = self.segments[&start];
        if let Some((&ls, &(le, lo))) = self.segments.range(..start).next_back() {
            if le == start && lo == owner {
                self.segments.remove(&start);
                self.segments.insert(ls, (end, owner));
            }
        }
    }

    /// Visit the segments overlapping `[start, end)`, clipped to it.
    pub fn query(&self, start: u64, end: u64, f: &mut dyn FnMut(u64, u64, Owner)) {
        let end = end.min(self.len);
        if start >= end {
            return;
        }
        // First candidate: the segment starting at or before `start`.
        let first = self
            .segments
            .range(..=start)
            .next_back()
            .map(|(&s, _)| s)
            .unwrap_or(start);
        for (&s, &(e, o)) in self.segments.range(first..end) {
            let cs = s.max(start);
            let ce = e.min(end);
            if cs < ce {
                f(cs, ce, o);
            }
        }
    }

    /// Visit the segments overlapping a *set* of ranges, after merging
    /// overlapping and adjacent input ranges.
    ///
    /// Access patterns from 2-D/3-D enumerators arrive as one range per
    /// row; in row-major layout neighbouring rows are byte-adjacent, so
    /// merging first means one tracker walk (and one emitted segment per
    /// owner run) instead of one per row. Overlapping halo ranges are
    /// deduplicated for free. The tracker tiles `[0, len)` with maximal
    /// segments, so segments inside one merged range never need a second
    /// merge pass.
    ///
    /// Returns `(merged_range_count, emitted_segment_count)`.
    pub fn query_coalesced(
        &self,
        ranges: &[(u64, u64)],
        f: &mut dyn FnMut(u64, u64, Owner),
    ) -> (usize, usize) {
        let mut sorted: Vec<(u64, u64)> = ranges
            .iter()
            .map(|&(s, e)| (s, e.min(self.len)))
            .filter(|&(s, e)| s < e)
            .collect();
        sorted.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(sorted.len());
        for (s, e) in sorted {
            match merged.last_mut() {
                // `s <= last.1` merges adjacent ranges too, not just
                // overlapping ones — that is where the win comes from.
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        let mut emitted = 0;
        for &(s, e) in &merged {
            self.query(s, e, &mut |cs, ce, o| {
                emitted += 1;
                f(cs, ce, o);
            });
        }
        (merged.len(), emitted)
    }

    /// Collected segments over a range (convenience for tests).
    pub fn segments_in(&self, start: u64, end: u64) -> Vec<(u64, u64, Owner)> {
        let mut out = Vec::new();
        self.query(start, end, &mut |s, e, o| out.push((s, e, o)));
        out
    }

    /// Check internal invariants (used by tests and debug assertions):
    /// segments tile `[0, len)` without gaps or overlaps, and no two
    /// adjacent segments share an owner.
    pub fn check_invariants(&self) -> bool {
        if self.len == 0 {
            return self.segments.is_empty();
        }
        let mut expect = 0u64;
        let mut prev_owner: Option<Owner> = None;
        for (&s, &(e, o)) in &self.segments {
            if s != expect || e <= s {
                return false;
            }
            if prev_owner == Some(o) {
                return false; // unmerged neighbors
            }
            expect = e;
            prev_owner = Some(o);
        }
        expect == self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_tracker_is_one_uninit_segment() {
        let t = Tracker::new(100);
        assert_eq!(t.segment_count(), 1);
        assert_eq!(t.segments_in(0, 100), vec![(0, 100, Owner::Uninit)]);
        assert!(t.check_invariants());
    }

    #[test]
    fn update_splits_and_merges() {
        let mut t = Tracker::new(100);
        t.update(10, 20, Owner::Device(0));
        assert!(t.check_invariants());
        assert_eq!(
            t.segments_in(0, 100),
            vec![
                (0, 10, Owner::Uninit),
                (10, 20, Owner::Device(0)),
                (20, 100, Owner::Uninit),
            ]
        );
        // Adjacent same-owner updates merge.
        t.update(20, 30, Owner::Device(0));
        assert!(t.check_invariants());
        assert_eq!(t.segments_in(5, 35).len(), 3);
        assert_eq!(t.segments_in(10, 30), vec![(10, 30, Owner::Device(0))]);
    }

    #[test]
    fn overwrite_replaces_owners() {
        let mut t = Tracker::new(64);
        t.update(0, 32, Owner::Device(0));
        t.update(32, 64, Owner::Device(1));
        t.update(16, 48, Owner::Device(2));
        assert!(t.check_invariants());
        assert_eq!(
            t.segments_in(0, 64),
            vec![
                (0, 16, Owner::Device(0)),
                (16, 48, Owner::Device(2)),
                (48, 64, Owner::Device(1)),
            ]
        );
    }

    #[test]
    fn full_overwrite_collapses_to_one_segment() {
        let mut t = Tracker::new(64);
        for i in 0..8 {
            t.update(i * 8, (i + 1) * 8, Owner::Device(i as usize % 3));
        }
        t.update(0, 64, Owner::Device(7));
        assert!(t.check_invariants());
        assert_eq!(t.segment_count(), 1);
    }

    #[test]
    fn query_clips_to_range() {
        let mut t = Tracker::new(100);
        t.update(0, 50, Owner::Device(0));
        t.update(50, 100, Owner::Device(1));
        assert_eq!(
            t.segments_in(40, 60),
            vec![(40, 50, Owner::Device(0)), (50, 60, Owner::Device(1))]
        );
    }

    #[test]
    fn update_beyond_len_is_clipped() {
        let mut t = Tracker::new(10);
        t.update(5, 100, Owner::Device(0));
        assert!(t.check_invariants());
        assert_eq!(
            t.segments_in(0, 10),
            vec![(0, 5, Owner::Uninit), (5, 10, Owner::Device(0))]
        );
    }

    #[test]
    fn empty_ranges_are_noops() {
        let mut t = Tracker::new(10);
        t.update(5, 5, Owner::Device(0));
        t.update(7, 3, Owner::Device(0));
        assert_eq!(t.segment_count(), 1);
        assert!(t.segments_in(3, 3).is_empty());
    }

    #[test]
    fn update_reports_touched_segment_count() {
        let mut t = Tracker::new(100);
        // Fresh tracker: one Uninit segment touched.
        assert_eq!(t.update(10, 20, Owner::Device(0)), 1);
        // [0,10) Uninit | [10,20) D0 | [20,100) Uninit.
        // Overwriting [5, 25) touches all three.
        assert_eq!(t.update(5, 25, Owner::Device(1)), 3);
        // Rewriting exactly the same range touches only its own segment.
        assert_eq!(t.update(5, 25, Owner::Device(1)), 1);
        // Clipped/empty ranges touch nothing.
        assert_eq!(t.update(200, 300, Owner::Device(0)), 0);
        assert_eq!(t.update(7, 7, Owner::Device(0)), 0);
        assert!(t.check_invariants());
    }

    #[test]
    fn query_coalesced_merges_adjacent_and_overlapping_ranges() {
        let mut t = Tracker::new(100);
        t.update(0, 50, Owner::Device(0));
        t.update(50, 100, Owner::Device(1));
        // Four adjacent "rows" + one overlapping halo → one merged range.
        let ranges = [(30, 40), (40, 50), (50, 60), (60, 70), (35, 55)];
        let mut got = Vec::new();
        let (n_ranges, n_segments) = t.query_coalesced(&ranges, &mut |s, e, o| got.push((s, e, o)));
        assert_eq!(n_ranges, 1);
        assert_eq!(n_segments, 2);
        assert_eq!(
            got,
            vec![(30, 50, Owner::Device(0)), (50, 70, Owner::Device(1))]
        );
        // Disjoint ranges stay separate and keep sorted order.
        let mut got = Vec::new();
        let (n_ranges, n_segments) =
            t.query_coalesced(&[(80, 90), (0, 10)], &mut |s, e, o| got.push((s, e, o)));
        assert_eq!((n_ranges, n_segments), (2, 2));
        assert_eq!(
            got,
            vec![(0, 10, Owner::Device(0)), (80, 90, Owner::Device(1))]
        );
    }

    #[test]
    fn epoch_counts_effective_updates_only() {
        let mut t = Tracker::new(100);
        assert_eq!(t.epoch(), 0);
        t.update(0, 10, Owner::Device(0));
        assert_eq!(t.epoch(), 1);
        // Clipped-empty and reversed ranges do not bump the epoch.
        t.update(200, 300, Owner::Device(1));
        t.update(7, 3, Owner::Device(1));
        assert_eq!(t.epoch(), 1);
        // A structurally no-op rewrite still counts as a mutation (the
        // signature memo recomputes and lands on the same hash).
        let sig = t.signature();
        t.update(0, 10, Owner::Device(0));
        assert_eq!(t.epoch(), 2);
        assert_eq!(t.signature(), sig);
    }

    #[test]
    fn signature_is_structural_not_historical() {
        // Two different update histories, same final segment list.
        let mut a = Tracker::new(64);
        a.update(0, 32, Owner::Device(0));
        a.update(32, 64, Owner::Device(1));
        let mut b = Tracker::new(64);
        b.update(0, 64, Owner::Device(7));
        b.update(32, 64, Owner::Device(1));
        b.update(0, 32, Owner::Device(0));
        assert_eq!(a.signature(), b.signature());
        assert_ne!(a.epoch(), b.epoch());
        // Changing the segment list changes the signature.
        let before = a.signature();
        a.update(10, 20, Owner::Device(2));
        assert_ne!(a.signature(), before);
        // Different lengths hash apart even when both are fully Uninit.
        assert_ne!(Tracker::new(10).signature(), Tracker::new(20).signature());
    }

    #[test]
    fn signature_memo_survives_clone() {
        let mut t = Tracker::new(100);
        t.update(0, 50, Owner::Device(1));
        let sig = t.signature();
        let c = t.clone();
        assert_eq!(c.signature(), sig);
        assert_eq!(c.epoch(), t.epoch());
    }

    #[test]
    fn single_writer_pattern_stays_one_segment_per_device() {
        // The §8.1 observation: contiguous per-partition writes produce
        // one segment per partition.
        let mut t = Tracker::new(1600);
        for g in 0..16u64 {
            t.update(g * 100, (g + 1) * 100, Owner::Device(g as usize));
        }
        assert!(t.check_invariants());
        assert_eq!(t.segment_count(), 16);
        // Iterative relaunch with identical pattern: still 16.
        for g in 0..16u64 {
            t.update(g * 100, (g + 1) * 100, Owner::Device(g as usize));
        }
        assert_eq!(t.segment_count(), 16);
    }
}
