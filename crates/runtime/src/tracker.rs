//! The buffer tracker: a sorted list of non-overlapping segments, each
//! carrying an MSI-style *validity set* — which devices hold a usable
//! copy of the bytes — alongside the owner of the freshest copy
//! (paper §8.1, extended with replica tracking).
//!
//! "The segment list is based on a B-Tree map using the start of each
//! segment as the key and the 'owner' of the most recent version as the
//! value."
//!
//! The paper's tracker records only the freshest owner, so a read-sync
//! copy leaves no trace and the same remote bytes are re-fetched on
//! every launch. Here each segment carries a [`Validity`]: the freshest
//! [`Owner`] plus a [`DeviceSet`] of devices holding an identical copy.
//! Reads *add* the destination to the holder set ([`Tracker::add_holder`]);
//! writes and H2D uploads *invalidate* every other copy
//! ([`Tracker::update`]). Steady-state reads of host-uploaded read-only
//! arrays then cost nothing after the first launch: every reader is
//! already a valid holder.

use parking_lot::Mutex;
use std::collections::BTreeMap;

/// Who holds the freshest copy of a byte range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Owner {
    /// Never written since allocation (reads see zeros / undefined, like
    /// fresh `cudaMalloc` memory).
    Uninit,
    /// The host buffer (after host-side writes; not used by kernels).
    Host,
    /// Device-local instance `i`.
    Device(usize),
}

impl Owner {
    /// The device index, if the freshest copy lives on a device.
    pub fn device(self) -> Option<usize> {
        match self {
            Owner::Device(d) => Some(d),
            _ => None,
        }
    }
}

/// A set of device indices, packed as a 64-bit mask.
///
/// The runtime never simulates more than a handful of devices, so one
/// machine word per segment keeps the validity set `Copy` and the
/// B-Tree value small.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct DeviceSet(u64);

impl DeviceSet {
    /// The empty set.
    pub const EMPTY: DeviceSet = DeviceSet(0);

    /// Maximum representable device index + 1.
    pub const CAPACITY: usize = 64;

    /// The singleton `{d}`.
    pub fn single(d: usize) -> DeviceSet {
        assert!(
            d < Self::CAPACITY,
            "device index {d} out of DeviceSet range"
        );
        DeviceSet(1u64 << d)
    }

    /// Is `d` in the set?
    pub fn contains(self, d: usize) -> bool {
        d < Self::CAPACITY && self.0 & (1u64 << d) != 0
    }

    /// Add `d` to the set.
    pub fn insert(&mut self, d: usize) {
        assert!(
            d < Self::CAPACITY,
            "device index {d} out of DeviceSet range"
        );
        self.0 |= 1u64 << d;
    }

    /// Remove `d` from the set (no-op if absent).
    pub fn remove(&mut self, d: usize) {
        if d < Self::CAPACITY {
            self.0 &= !(1u64 << d);
        }
    }

    /// True if no device holds a copy.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of devices in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// The raw bit mask (bit `d` set ⇔ device `d` is a holder). Stable
    /// encoding used by structural signatures and by the tuner's cost
    /// model, which cannot depend on this crate.
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Rebuild from a raw mask produced by [`DeviceSet::bits`].
    pub fn from_bits(bits: u64) -> DeviceSet {
        DeviceSet(bits)
    }

    /// Iterate the member device indices in ascending order.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        let bits = self.0;
        (0..Self::CAPACITY).filter(move |&d| bits & (1u64 << d) != 0)
    }
}

impl std::fmt::Debug for DeviceSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, d) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "}}")
    }
}

/// Per-segment coherence state: the freshest copy's owner plus every
/// device holding an identical replica.
///
/// Invariants (checked by [`Tracker::check_invariants`]):
/// * `freshest == Owner::Device(d)` ⇒ `holders.contains(d)`;
/// * `freshest == Owner::Uninit` ⇒ `holders` is empty.
///
/// `freshest == Owner::Host` with non-empty `holders` is the replica
/// steady state for host-uploaded read-only data: the host wrote the
/// bytes last, and one or more devices fetched copies since.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Validity {
    /// Owner of the most recently written copy.
    pub freshest: Owner,
    /// Devices holding a valid (identical) copy.
    pub holders: DeviceSet,
}

impl Validity {
    /// The state of never-written bytes.
    pub fn uninit() -> Validity {
        Validity {
            freshest: Owner::Uninit,
            holders: DeviceSet::EMPTY,
        }
    }

    /// The state right after `owner` wrote the bytes: every other copy
    /// is invalidated, so the writer (if a device) is the sole holder.
    pub fn written(owner: Owner) -> Validity {
        let holders = match owner {
            Owner::Device(d) => DeviceSet::single(d),
            _ => DeviceSet::EMPTY,
        };
        Validity {
            freshest: owner,
            holders,
        }
    }

    /// Does `device` hold a valid copy of these bytes?
    pub fn valid_on(self, device: usize) -> bool {
        self.holders.contains(device)
    }
}

/// Metadata-work accounting returned by [`Tracker::update`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct UpdateStats {
    /// Pre-update segments the written range overlapped (what a `query`
    /// over the same range would have visited) — the tracker-maintenance
    /// work the runtime charges as host time.
    pub touched: usize,
    /// Replica copies evicted by the write: for each overlapped segment,
    /// the holder devices other than the writer itself. Feeds the
    /// `replica_invalidations` observability counter.
    pub invalidated: usize,
}

/// Non-overlapping, fully covering segment list over `[0, len)`.
pub struct Tracker {
    len: u64,
    /// start → (end, validity); segments tile `[0, len)`.
    segments: BTreeMap<u64, (u64, Validity)>,
    /// Mutation counter: bumped by every [`Tracker::update`] that covers
    /// at least one byte and by every [`Tracker::add_holder`] that
    /// changes at least one segment. Lets callers detect "nothing
    /// changed since I last looked" without walking the segment list.
    epoch: u64,
    /// Memoized `(epoch, structural hash)` pair backing
    /// [`Tracker::signature`]; interior mutability so read-only consumers
    /// (the launch-plan cache key) can fill it.
    sig_memo: Mutex<Option<(u64, u64)>>,
}

impl Clone for Tracker {
    fn clone(&self) -> Tracker {
        Tracker {
            len: self.len,
            segments: self.segments.clone(),
            epoch: self.epoch,
            sig_memo: Mutex::new(*self.sig_memo.lock()),
        }
    }
}

impl std::fmt::Debug for Tracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracker")
            .field("len", &self.len)
            .field("segments", &self.segments)
            .field("epoch", &self.epoch)
            .finish()
    }
}

impl Tracker {
    /// A tracker covering `len` bytes, all [`Owner::Uninit`].
    pub fn new(len: u64) -> Tracker {
        let mut segments = BTreeMap::new();
        if len > 0 {
            segments.insert(0, (len, Validity::uninit()));
        }
        Tracker {
            len,
            segments,
            epoch: 0,
            sig_memo: Mutex::new(None),
        }
    }

    /// Mutation epoch: increases on every effective mutation (a write
    /// update covering ≥ 1 byte, or a holder addition that changed at
    /// least one segment).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Structural hash of the segment list (FNV-1a over `(start, end,
    /// freshest, holders)` tuples plus the length). Two trackers with
    /// identical segment lists hash equal regardless of the update
    /// history that produced them, so steady-state iterative workloads
    /// (ping-pong stencils) reach a periodic fixed point of signatures.
    /// Holder sets are part of the hash: a replayed plan must never
    /// serve a copy the validity state says is redundant, or skip one
    /// it says is needed. Memoized per [`Tracker::epoch`]: the hot
    /// launch path pays one hash-map-sized walk only after an actual
    /// mutation.
    pub fn signature(&self) -> u64 {
        let mut memo = self.sig_memo.lock();
        if let Some((epoch, hash)) = *memo {
            if epoch == self.epoch {
                return hash;
            }
        }
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(FNV_PRIME);
        };
        mix(self.len);
        for (&s, &(e, v)) in &self.segments {
            mix(s);
            mix(e);
            mix(match v.freshest {
                Owner::Uninit => u64::MAX,
                Owner::Host => u64::MAX - 1,
                Owner::Device(d) => d as u64,
            });
            mix(v.holders.bits());
        }
        *memo = Some((self.epoch, h));
        h
    }

    /// Tracked length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if the tracker covers zero bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of segments (fragmentation metric; §8.1 discusses why
    /// regular kernels keep this at one segment per partition).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Record that `owner` wrote `[start, end)`: the writer becomes the
    /// freshest copy and every other holder is invalidated.
    ///
    /// Returns [`UpdateStats`]: the pre-update segments touched (charged
    /// as host-side tracker-maintenance time) and the replica copies the
    /// write evicted.
    pub fn update(&mut self, start: u64, end: u64, owner: Owner) -> UpdateStats {
        let end = end.min(self.len);
        if start >= end {
            return UpdateStats::default();
        }
        self.epoch += 1;
        let mut stats = UpdateStats::default();
        let writer = owner.device();
        self.query(start, end, &mut |_, _, v| {
            stats.touched += 1;
            let mut others = v.holders;
            if let Some(d) = writer {
                others.remove(d);
            }
            stats.invalidated += others.len();
        });
        self.set_range(start, end, Validity::written(owner));
        stats
    }

    /// Record that `device` fetched a valid copy of the freshest bytes
    /// in `[start, end)` (a read-sync replica fetch): `device` joins the
    /// holder set, and the freshest owner is unchanged.
    ///
    /// [`Owner::Uninit`] segments are skipped — a bridged-gap copy over
    /// never-written bytes carries no meaning, and marking it would
    /// fragment the tracker. Returns the number of bytes newly made
    /// valid on `device`; `0` means nothing changed, in which case the
    /// epoch is *not* bumped (steady-state signature stability depends
    /// on repeat reads being structural no-ops).
    pub fn add_holder(&mut self, start: u64, end: u64, device: usize) -> u64 {
        let end = end.min(self.len);
        if start >= end {
            return 0;
        }
        let mut changes: Vec<(u64, u64, Validity)> = Vec::new();
        self.query(start, end, &mut |s, e, v| {
            if v.freshest != Owner::Uninit && !v.holders.contains(device) {
                let mut nv = v;
                nv.holders.insert(device);
                changes.push((s, e, nv));
            }
        });
        if changes.is_empty() {
            return 0;
        }
        self.epoch += 1;
        let mut bytes = 0;
        for (s, e, nv) in changes {
            bytes += e - s;
            self.set_range(s, e, nv);
        }
        bytes
    }

    /// Replace the validity of `[start, end)` with `v`, splitting the
    /// boundary segments and re-merging neighbours. Callers own the
    /// epoch bump and any clipping.
    fn set_range(&mut self, start: u64, end: u64, v: Validity) {
        // Split the segment containing `start` if it begins earlier.
        if let Some((&s, &(e, o))) = self.segments.range(..=start).next_back() {
            if s < start && start < e {
                self.segments.insert(s, (start, o));
                self.segments.insert(start, (e, o));
            }
        }
        // Split the segment containing `end` if it extends past it.
        if let Some((&s, &(e, o))) = self.segments.range(..end).next_back() {
            if s < end && end < e {
                self.segments.insert(s, (end, o));
                self.segments.insert(end, (e, o));
            }
        }
        // Remove all segments now fully inside [start, end).
        let inside: Vec<u64> = self.segments.range(start..end).map(|(&s, _)| s).collect();
        for s in inside {
            self.segments.remove(&s);
        }
        self.segments.insert(start, (end, v));
        // Merge with neighbors of identical validity.
        self.merge_around(start);
    }

    fn merge_around(&mut self, start: u64) {
        let (end, v) = self.segments[&start];
        // Merge right.
        if let Some((&rs, &(re, rv))) = self.segments.range(end..).next() {
            if rs == end && rv == v {
                self.segments.remove(&rs);
                self.segments.insert(start, (re, v));
            }
        }
        // Merge left.
        let (end, v) = self.segments[&start];
        if let Some((&ls, &(le, lv))) = self.segments.range(..start).next_back() {
            if le == start && lv == v {
                self.segments.remove(&start);
                self.segments.insert(ls, (end, v));
            }
        }
    }

    /// Visit the segments overlapping `[start, end)`, clipped to it.
    pub fn query(&self, start: u64, end: u64, f: &mut dyn FnMut(u64, u64, Validity)) {
        let end = end.min(self.len);
        if start >= end {
            return;
        }
        // First candidate: the segment starting at or before `start`.
        let first = self
            .segments
            .range(..=start)
            .next_back()
            .map(|(&s, _)| s)
            .unwrap_or(start);
        for (&s, &(e, v)) in self.segments.range(first..end) {
            let cs = s.max(start);
            let ce = e.min(end);
            if cs < ce {
                f(cs, ce, v);
            }
        }
    }

    /// Visit the segments overlapping a *set* of ranges, after merging
    /// overlapping and adjacent input ranges.
    ///
    /// Access patterns from 2-D/3-D enumerators arrive as one range per
    /// row; in row-major layout neighbouring rows are byte-adjacent, so
    /// merging first means one tracker walk (and one emitted segment per
    /// validity run) instead of one per row. Overlapping halo ranges are
    /// deduplicated for free. The tracker tiles `[0, len)` with maximal
    /// segments, so segments inside one merged range never need a second
    /// merge pass.
    ///
    /// Returns `(merged_range_count, emitted_segment_count)`.
    pub fn query_coalesced(
        &self,
        ranges: &[(u64, u64)],
        f: &mut dyn FnMut(u64, u64, Validity),
    ) -> (usize, usize) {
        let mut sorted: Vec<(u64, u64)> = ranges
            .iter()
            .map(|&(s, e)| (s, e.min(self.len)))
            .filter(|&(s, e)| s < e)
            .collect();
        sorted.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(sorted.len());
        for (s, e) in sorted {
            match merged.last_mut() {
                // `s <= last.1` merges adjacent ranges too, not just
                // overlapping ones — that is where the win comes from.
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        let mut emitted = 0;
        for &(s, e) in &merged {
            self.query(s, e, &mut |cs, ce, v| {
                emitted += 1;
                f(cs, ce, v);
            });
        }
        (merged.len(), emitted)
    }

    /// Collected segments over a range (convenience for tests).
    pub fn segments_in(&self, start: u64, end: u64) -> Vec<(u64, u64, Validity)> {
        let mut out = Vec::new();
        self.query(start, end, &mut |s, e, v| out.push((s, e, v)));
        out
    }

    /// Check internal invariants (used by tests and debug assertions):
    /// segments tile `[0, len)` without gaps or overlaps, no two
    /// adjacent segments share a validity, a device-fresh segment's
    /// writer is always a holder, and uninit segments have no holders.
    pub fn check_invariants(&self) -> bool {
        if self.len == 0 {
            return self.segments.is_empty();
        }
        let mut expect = 0u64;
        let mut prev: Option<Validity> = None;
        for (&s, &(e, v)) in &self.segments {
            if s != expect || e <= s {
                return false;
            }
            if prev == Some(v) {
                return false; // unmerged neighbors
            }
            match v.freshest {
                Owner::Device(d) if !v.holders.contains(d) => return false,
                Owner::Uninit if !v.holders.is_empty() => return false,
                _ => {}
            }
            expect = e;
            prev = Some(v);
        }
        expect == self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shorthand: the validity right after `o` wrote the bytes.
    fn w(o: Owner) -> Validity {
        Validity::written(o)
    }

    #[test]
    fn fresh_tracker_is_one_uninit_segment() {
        let t = Tracker::new(100);
        assert_eq!(t.segment_count(), 1);
        assert_eq!(t.segments_in(0, 100), vec![(0, 100, Validity::uninit())]);
        assert!(t.check_invariants());
    }

    #[test]
    fn update_splits_and_merges() {
        let mut t = Tracker::new(100);
        t.update(10, 20, Owner::Device(0));
        assert!(t.check_invariants());
        assert_eq!(
            t.segments_in(0, 100),
            vec![
                (0, 10, Validity::uninit()),
                (10, 20, w(Owner::Device(0))),
                (20, 100, Validity::uninit()),
            ]
        );
        // Adjacent same-validity updates merge.
        t.update(20, 30, Owner::Device(0));
        assert!(t.check_invariants());
        assert_eq!(t.segments_in(5, 35).len(), 3);
        assert_eq!(t.segments_in(10, 30), vec![(10, 30, w(Owner::Device(0)))]);
    }

    #[test]
    fn overwrite_replaces_owners() {
        let mut t = Tracker::new(64);
        t.update(0, 32, Owner::Device(0));
        t.update(32, 64, Owner::Device(1));
        t.update(16, 48, Owner::Device(2));
        assert!(t.check_invariants());
        assert_eq!(
            t.segments_in(0, 64),
            vec![
                (0, 16, w(Owner::Device(0))),
                (16, 48, w(Owner::Device(2))),
                (48, 64, w(Owner::Device(1))),
            ]
        );
    }

    #[test]
    fn full_overwrite_collapses_to_one_segment() {
        let mut t = Tracker::new(64);
        for i in 0..8 {
            t.update(i * 8, (i + 1) * 8, Owner::Device(i as usize % 3));
        }
        t.update(0, 64, Owner::Device(7));
        assert!(t.check_invariants());
        assert_eq!(t.segment_count(), 1);
    }

    #[test]
    fn query_clips_to_range() {
        let mut t = Tracker::new(100);
        t.update(0, 50, Owner::Device(0));
        t.update(50, 100, Owner::Device(1));
        assert_eq!(
            t.segments_in(40, 60),
            vec![(40, 50, w(Owner::Device(0))), (50, 60, w(Owner::Device(1)))]
        );
    }

    #[test]
    fn update_beyond_len_is_clipped() {
        let mut t = Tracker::new(10);
        t.update(5, 100, Owner::Device(0));
        assert!(t.check_invariants());
        assert_eq!(
            t.segments_in(0, 10),
            vec![(0, 5, Validity::uninit()), (5, 10, w(Owner::Device(0)))]
        );
    }

    #[test]
    fn empty_ranges_are_noops() {
        let mut t = Tracker::new(10);
        t.update(5, 5, Owner::Device(0));
        t.update(7, 3, Owner::Device(0));
        assert_eq!(t.segment_count(), 1);
        assert!(t.segments_in(3, 3).is_empty());
    }

    #[test]
    fn update_reports_touched_segment_count() {
        let mut t = Tracker::new(100);
        // Fresh tracker: one Uninit segment touched.
        assert_eq!(t.update(10, 20, Owner::Device(0)).touched, 1);
        // [0,10) Uninit | [10,20) D0 | [20,100) Uninit.
        // Overwriting [5, 25) touches all three.
        assert_eq!(t.update(5, 25, Owner::Device(1)).touched, 3);
        // Rewriting exactly the same range touches only its own segment.
        assert_eq!(t.update(5, 25, Owner::Device(1)).touched, 1);
        // Clipped/empty ranges touch nothing.
        assert_eq!(t.update(200, 300, Owner::Device(0)).touched, 0);
        assert_eq!(t.update(7, 7, Owner::Device(0)).touched, 0);
        assert!(t.check_invariants());
    }

    #[test]
    fn query_coalesced_merges_adjacent_and_overlapping_ranges() {
        let mut t = Tracker::new(100);
        t.update(0, 50, Owner::Device(0));
        t.update(50, 100, Owner::Device(1));
        // Four adjacent "rows" + one overlapping halo → one merged range.
        let ranges = [(30, 40), (40, 50), (50, 60), (60, 70), (35, 55)];
        let mut got = Vec::new();
        let (n_ranges, n_segments) = t.query_coalesced(&ranges, &mut |s, e, v| got.push((s, e, v)));
        assert_eq!(n_ranges, 1);
        assert_eq!(n_segments, 2);
        assert_eq!(
            got,
            vec![(30, 50, w(Owner::Device(0))), (50, 70, w(Owner::Device(1)))]
        );
        // Disjoint ranges stay separate and keep sorted order.
        let mut got = Vec::new();
        let (n_ranges, n_segments) =
            t.query_coalesced(&[(80, 90), (0, 10)], &mut |s, e, v| got.push((s, e, v)));
        assert_eq!((n_ranges, n_segments), (2, 2));
        assert_eq!(
            got,
            vec![(0, 10, w(Owner::Device(0))), (80, 90, w(Owner::Device(1)))]
        );
    }

    #[test]
    fn epoch_counts_effective_updates_only() {
        let mut t = Tracker::new(100);
        assert_eq!(t.epoch(), 0);
        t.update(0, 10, Owner::Device(0));
        assert_eq!(t.epoch(), 1);
        // Clipped-empty and reversed ranges do not bump the epoch.
        t.update(200, 300, Owner::Device(1));
        t.update(7, 3, Owner::Device(1));
        assert_eq!(t.epoch(), 1);
        // A structurally no-op rewrite still counts as a mutation (the
        // signature memo recomputes and lands on the same hash).
        let sig = t.signature();
        t.update(0, 10, Owner::Device(0));
        assert_eq!(t.epoch(), 2);
        assert_eq!(t.signature(), sig);
    }

    #[test]
    fn signature_is_structural_not_historical() {
        // Two different update histories, same final segment list.
        let mut a = Tracker::new(64);
        a.update(0, 32, Owner::Device(0));
        a.update(32, 64, Owner::Device(1));
        let mut b = Tracker::new(64);
        b.update(0, 64, Owner::Device(7));
        b.update(32, 64, Owner::Device(1));
        b.update(0, 32, Owner::Device(0));
        assert_eq!(a.signature(), b.signature());
        assert_ne!(a.epoch(), b.epoch());
        // Changing the segment list changes the signature.
        let before = a.signature();
        a.update(10, 20, Owner::Device(2));
        assert_ne!(a.signature(), before);
        // Different lengths hash apart even when both are fully Uninit.
        assert_ne!(Tracker::new(10).signature(), Tracker::new(20).signature());
    }

    #[test]
    fn signature_memo_survives_clone() {
        let mut t = Tracker::new(100);
        t.update(0, 50, Owner::Device(1));
        let sig = t.signature();
        let c = t.clone();
        assert_eq!(c.signature(), sig);
        assert_eq!(c.epoch(), t.epoch());
    }

    #[test]
    fn single_writer_pattern_stays_one_segment_per_device() {
        // The §8.1 observation: contiguous per-partition writes produce
        // one segment per partition.
        let mut t = Tracker::new(1600);
        for g in 0..16u64 {
            t.update(g * 100, (g + 1) * 100, Owner::Device(g as usize));
        }
        assert!(t.check_invariants());
        assert_eq!(t.segment_count(), 16);
        // Iterative relaunch with identical pattern: still 16.
        for g in 0..16u64 {
            t.update(g * 100, (g + 1) * 100, Owner::Device(g as usize));
        }
        assert_eq!(t.segment_count(), 16);
    }

    #[test]
    fn add_holder_replicates_without_moving_ownership() {
        let mut t = Tracker::new(100);
        t.update(0, 100, Owner::Device(0));
        assert_eq!(t.add_holder(20, 60, 1), 40);
        assert!(t.check_invariants());
        let mut d0_plus_1 = w(Owner::Device(0));
        d0_plus_1.holders.insert(1);
        assert_eq!(
            t.segments_in(0, 100),
            vec![
                (0, 20, w(Owner::Device(0))),
                (20, 60, d0_plus_1),
                (60, 100, w(Owner::Device(0))),
            ]
        );
        // The freshest owner is unchanged everywhere.
        for (_, _, v) in t.segments_in(0, 100) {
            assert_eq!(v.freshest, Owner::Device(0));
        }
    }

    #[test]
    fn add_holder_skips_uninit_bytes() {
        let mut t = Tracker::new(100);
        t.update(40, 60, Owner::Device(0));
        // The copy bridged an Uninit gap: only the written bytes are
        // marked, the Uninit neighbourhood stays pristine (and the
        // tracker does not fragment).
        assert_eq!(t.add_holder(0, 100, 1), 20);
        assert!(t.check_invariants());
        assert_eq!(t.segment_count(), 3);
        assert_eq!(t.segments_in(0, 40), vec![(0, 40, Validity::uninit())]);
        assert_eq!(t.segments_in(60, 100), vec![(60, 100, Validity::uninit())]);
        // Fully-Uninit tracker: nothing to hold, no epoch bump.
        let mut u = Tracker::new(50);
        let epoch = u.epoch();
        assert_eq!(u.add_holder(0, 50, 2), 0);
        assert_eq!(u.epoch(), epoch);
    }

    #[test]
    fn repeat_add_holder_is_a_structural_noop() {
        let mut t = Tracker::new(100);
        t.update(0, 100, Owner::Host);
        assert_eq!(t.add_holder(0, 100, 3), 100);
        let epoch = t.epoch();
        let sig = t.signature();
        // Steady state: the reader already holds the bytes — no epoch
        // bump, so plan-cache signatures stay stable across launches.
        assert_eq!(t.add_holder(0, 100, 3), 0);
        assert_eq!(t.epoch(), epoch);
        assert_eq!(t.signature(), sig);
        assert!(t.check_invariants());
    }

    #[test]
    fn writes_invalidate_other_holders() {
        let mut t = Tracker::new(100);
        t.update(0, 100, Owner::Device(0));
        t.add_holder(0, 100, 1);
        t.add_holder(0, 100, 2);
        // D1 writes the middle: D0 and D2 copies there are evicted.
        let stats = t.update(25, 75, Owner::Device(1));
        assert_eq!(stats.touched, 1);
        assert_eq!(stats.invalidated, 2);
        assert!(t.check_invariants());
        assert_eq!(t.segments_in(25, 75), vec![(25, 75, w(Owner::Device(1)))]);
        // The flanks still carry the replica set.
        let flank = t.segments_in(0, 25)[0].2;
        assert_eq!(flank.freshest, Owner::Device(0));
        assert!(
            flank.holders.contains(0) && flank.holders.contains(1) && flank.holders.contains(2)
        );
        // A host upload evicts every device copy.
        let stats = t.update(0, 100, Owner::Host);
        assert_eq!(stats.invalidated, 3 + 1 + 3); // flanks hold {0,1,2}, middle holds {1}
        assert_eq!(t.segments_in(0, 100), vec![(0, 100, w(Owner::Host))]);
    }

    #[test]
    fn signature_tracks_holder_changes() {
        let mut t = Tracker::new(64);
        t.update(0, 64, Owner::Device(0));
        let before = t.signature();
        t.add_holder(0, 64, 1);
        let with_replica = t.signature();
        assert_ne!(before, with_replica, "holder sets must be part of the hash");
        // Invalidation restores the original structure and hash.
        t.update(0, 64, Owner::Device(0));
        assert_eq!(t.signature(), before);
    }

    #[test]
    fn merges_require_equal_holder_sets() {
        let mut t = Tracker::new(100);
        t.update(0, 100, Owner::Device(0));
        t.add_holder(0, 50, 1);
        // Same freshest owner on both sides, different holder sets: the
        // boundary must survive.
        assert_eq!(t.segment_count(), 2);
        // Equalizing the holder sets re-merges into one segment.
        t.add_holder(50, 100, 1);
        assert_eq!(t.segment_count(), 1);
        assert!(t.check_invariants());
    }

    #[test]
    fn device_set_basics() {
        let mut s = DeviceSet::EMPTY;
        assert!(s.is_empty());
        s.insert(3);
        s.insert(0);
        s.insert(3);
        assert_eq!(s.len(), 2);
        assert!(s.contains(0) && s.contains(3) && !s.contains(1));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 3]);
        s.remove(0);
        assert_eq!(s, DeviceSet::single(3));
        assert_eq!(DeviceSet::from_bits(s.bits()), s);
        assert_eq!(format!("{:?}", s), "{3}");
    }
}
