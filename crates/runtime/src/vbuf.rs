//! Virtual buffers and the CUDA-replacement runtime object.

use crate::cache::ShardedPlanCache;
use crate::tracker::{Owner, Tracker, Validity};
use crate::{Result, RuntimeError};
use mekong_gpusim::{Backend, DevBuf, TimeCat};
use mekong_kernel::Dim3;
use mekong_tuner::{Autotuner, PartitionStrategy};
use serde::Serialize;
use std::collections::HashMap;
use std::sync::Arc;

/// Handle to a virtual buffer — the value the rewritten application holds
/// where the original held a device pointer.
///
/// The raw id packs a 32-bit **namespace** (high bits) over a 32-bit
/// buffer index (low bits). A standalone runtime lives in namespace 0,
/// where handle and index coincide — `VBufId(3)` is buffer 3, exactly as
/// before. A multi-tenant server gives every tenant runtime its own
/// namespace ([`MgpuRuntime::set_namespace`]); handles then carry their
/// tenant's prefix and a foreign handle fails the liveness check instead
/// of silently aliasing another tenant's tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VBufId(pub usize);

impl VBufId {
    /// Assemble a handle from a namespace and a buffer index.
    pub fn with_namespace(ns: u32, index: usize) -> VBufId {
        debug_assert!(index <= u32::MAX as usize, "buffer index exceeds 32 bits");
        VBufId((((ns as u64) << 32) | index as u64) as usize)
    }

    /// The namespace prefix (0 for standalone runtimes).
    pub fn namespace(self) -> u32 {
        ((self.0 as u64) >> 32) as u32
    }

    /// The namespace-local buffer index — the position in the owning
    /// runtime's buffer table.
    pub fn index(self) -> usize {
        ((self.0 as u64) & 0xffff_ffff) as usize
    }

    /// The namespace-stripped form of this handle. Captured plans store
    /// local ids so a plan is portable across tenants: identical
    /// workloads in different namespaces produce identical keys and
    /// command lists.
    pub(crate) fn local(self) -> VBufId {
        VBufId(self.index())
    }
}

/// A virtual buffer: one instance per device + the coherence tracker
/// (paper §8.1).
pub(crate) struct VirtualBuffer {
    pub len: usize,
    pub elem_size: usize,
    pub instances: Vec<DevBuf>,
    pub tracker: Tracker,
    pub freed: bool,
    /// Provenance for the tuner's cost model: `true` once a kernel
    /// launch has written any part of the buffer, reset by H2D (the
    /// whole buffer is then host data again). A kernel-written buffer
    /// read by a kernel writing an identically shaped array is treated
    /// as the ping-pong partner of that array (steady-state
    /// `SelfWrites` ownership); a host-provenance buffer keeps its
    /// tracker layout — the runtime refetches its remote bytes every
    /// launch, and the model must charge for that.
    pub kernel_written: bool,
    /// Total peer-copy bytes this buffer *received* over its lifetime
    /// (read-sync and whole-buffer sync copies into any instance).
    /// Observability for the A8 replica ablation: a host-uploaded
    /// read-only array's incoming bytes stop growing once every reader
    /// is a valid holder.
    pub d2d_in_bytes: u64,
}

/// α/β/γ measurement configuration (paper §9.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Count transfer time (α, β: off).
    pub transfer_timing: bool,
    /// Count dependency-resolution / tracker time (α, β on; γ: off).
    pub pattern_timing: bool,
    /// Merge adjacent/overlapping access ranges before querying the
    /// tracker during buffer synchronization, so one D2D copy moves what
    /// would otherwise be several per-row copies. On in every measurement
    /// configuration; off exists for the ablation benchmark.
    pub coalesce_transfers: bool,
    /// Capture & replay launch plans (CUDA-Graphs-style, see
    /// [`crate::plan`]): when a launch's key — kernel, geometry, scalar
    /// values, buffer ids and tracker signatures — matches a previously
    /// captured launch, replay its command sequence directly and charge
    /// the flat `host_per_replay` cost instead of walking trackers. Off
    /// in α (which measures the full overhead), on in β/γ.
    pub capture_plans: bool,
    /// Consult the partitioning autotuner ([`mekong_tuner`]) instead of
    /// the compiler's fixed split: at the first launch of each
    /// (kernel, geometry, scalars) combination, enumerate candidate
    /// strategies, rank them with the static cost model, and cache the
    /// decision. Measured transfer traffic feeds back for online
    /// refinement. Off by default — the paper's fixed heuristic.
    pub autotune: bool,
    /// Refuse multi-partition launches whose effective split axis lacks
    /// a static write-disjointness proof (mekong-check). On by default —
    /// the sound behaviour. Off downgrades the refusal to a counted
    /// warning (`OpCounters::checked_rejected`), for experiments that
    /// knowingly run unproven partitionings.
    pub enforce_partition_safety: bool,
    /// Replica-aware coherence (MSI-style validity sets, see
    /// [`crate::tracker`]): read-sync copies record the destination as a
    /// valid holder, later reads served by a local replica skip the
    /// transfer, and gathers/syncs pick the cheapest-link source among
    /// all holders. On in every measurement configuration; off restores
    /// the paper's single-owner behaviour (every launch re-fetches
    /// remote read bytes) for the A8 ablation.
    pub replica_coherence: bool,
    /// Depth of the launch-ahead pipeline window (see
    /// [`crate::pipeline`]): how many replayed launches may be in flight
    /// before the host blocks on the oldest. `0` restores the fully
    /// synchronous Figure 4 behaviour (every replay barriers between its
    /// sync and launch phases). Only plan-cache *hits* pipeline; misses,
    /// uncaptured launches and H2D/D2H always flush the window first.
    pub launch_ahead: u32,
    /// Let the autotuner consider 2-D rectangular grid tilings (X×Y
    /// device lattices with perimeter-priced halos) in addition to 1-D
    /// slab splits. A tiling is only enumerable when *both* of its axes
    /// carry a static write-disjointness proof. On by default; off
    /// restores the slab-only search space for the A10 ablation.
    pub enumerate_tilings: bool,
    /// Maximum number of captured launch plans the plan cache holds
    /// before least-recently-used eviction kicks in (`0` = unbounded).
    /// The default is generous — a single app's working set is a handful
    /// of plans per kernel — but bounded, so tenant churn in a serving
    /// fleet cannot leak memory. Evictions are counted in
    /// [`mekong_gpusim::OpCounters::plan_evictions`].
    pub plan_cache_capacity: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            transfer_timing: true,
            pattern_timing: true,
            coalesce_transfers: true,
            capture_plans: false,
            autotune: false,
            enforce_partition_safety: true,
            replica_coherence: true,
            launch_ahead: 2,
            enumerate_tilings: true,
            plan_cache_capacity: 1024,
        }
    }
}

impl RuntimeConfig {
    /// Regular execution.
    pub fn alpha() -> Self {
        Self::default()
    }

    /// Disabled transfers, dependency resolution still performed.
    pub fn beta() -> Self {
        RuntimeConfig {
            transfer_timing: false,
            capture_plans: true,
            ..Self::default()
        }
    }

    /// Disabled dependency resolution (which also disables transfers).
    pub fn gamma() -> Self {
        RuntimeConfig {
            transfer_timing: false,
            pattern_timing: false,
            capture_plans: true,
            ..Self::default()
        }
    }

    /// Full measurement (α) plus the cost-model autotuner and plan
    /// capture — the "tuned" configuration of the A7 ablation.
    pub fn tuned() -> Self {
        RuntimeConfig {
            autotune: true,
            capture_plans: true,
            ..Self::default()
        }
    }
}

/// One autotuner decision in reportable form (see
/// [`MgpuRuntime::tuner_report`]).
#[derive(Debug, Clone, Serialize)]
pub struct TunerReport {
    pub kernel: String,
    pub grid: Dim3,
    pub block: Dim3,
    /// [`PartitionStrategy::describe`] of the current choice.
    pub strategy: String,
    /// Static prediction: peer-transfer bytes per steady-state launch.
    pub predicted_bytes: u64,
    /// Measured window average, once one completed.
    pub measured_bytes: Option<u64>,
    /// Launches recorded against this decision.
    pub launches: u64,
    /// Online-refinement strategy switches.
    pub switches: u32,
}

/// The multi-GPU runtime: owns the machine and all virtual buffers, and
/// provides the CUDA Runtime API replacements (§8.4).
pub struct MgpuRuntime {
    /// The executor behind the runtime: the simulated multi-GPU machine,
    /// the host CPU backend, or any other [`Backend`]. Every copy and
    /// launch — eager and pipelined — dispatches through the trait;
    /// trackers, validity sets and plan capture/replay above this line
    /// are backend-agnostic.
    pub(crate) machine: Box<dyn Backend>,
    pub(crate) buffers: Vec<VirtualBuffer>,
    pub(crate) config: RuntimeConfig,
    /// When γ disables dependency resolution, transfers are skipped
    /// entirely (they depend on resolution), like the paper's γ run.
    pub(crate) resolve_dependencies: bool,
    /// Captured launch plans, keyed by the content-addressed
    /// [`crate::PlanKey`] (see [`crate::plan`]). Sharded and behind an
    /// `Arc` so a serving fleet can point many tenant runtimes at one
    /// cache ([`MgpuRuntime::set_plan_cache`]); a standalone runtime
    /// simply owns the only handle.
    pub(crate) plan_cache: Arc<ShardedPlanCache>,
    /// Namespace prefix stamped into every [`VBufId`] this runtime hands
    /// out (0 = standalone). See [`VBufId::namespace`].
    pub(crate) namespace: u32,
    /// Partitioning autotuner state: one decision per
    /// (kernel, geometry, scalars), fed back with measured traffic.
    pub(crate) tuner: Autotuner,
    /// Per-kernel strategy overrides (benchmarks pin a candidate to
    /// measure it); these bypass both the heuristic and the tuner.
    pub(crate) forced: HashMap<String, PartitionStrategy>,
    /// Launch-ahead window state (see [`crate::pipeline`]): in-flight
    /// replayed launches and their event-edge dependency times.
    pub(crate) pipeline: crate::pipeline::Pipeline,
}

impl MgpuRuntime {
    /// Wrap a machine-level executor — [`mekong_gpusim::Machine`] for
    /// simulated (or mixed CPU+GPU) devices, [`mekong_gpusim::CpuBackend`]
    /// for pure-host execution.
    pub fn new(machine: impl Backend + 'static) -> MgpuRuntime {
        MgpuRuntime::from_boxed(Box::new(machine))
    }

    /// [`MgpuRuntime::new`] for an already-boxed backend — lets callers
    /// pick the executor at runtime (e.g. the cross-backend
    /// differential tests).
    pub fn from_boxed(machine: Box<dyn Backend>) -> MgpuRuntime {
        MgpuRuntime {
            machine,
            buffers: Vec::new(),
            config: RuntimeConfig::default(),
            resolve_dependencies: true,
            plan_cache: Arc::new(ShardedPlanCache::new(
                RuntimeConfig::default().plan_cache_capacity,
            )),
            namespace: 0,
            tuner: Autotuner::new(),
            forced: HashMap::new(),
            pipeline: crate::pipeline::Pipeline::default(),
        }
    }

    /// Apply a measurement configuration.
    pub fn set_config(&mut self, cfg: RuntimeConfig) {
        self.pipeline_flush();
        self.config = cfg;
        self.machine.set_transfer_timing(cfg.transfer_timing);
        self.machine.set_pattern_timing(cfg.pattern_timing);
        // γ semantics: with pattern work disabled, transfers cannot be
        // computed either. Functional machines keep resolving so results
        // stay correct; performance machines skip the work entirely.
        self.resolve_dependencies = cfg.pattern_timing || self.machine.is_functional();
        // Plans captured under another configuration must not replay:
        // the keys deliberately exclude config flags, so flush instead.
        // (Serving fleets share one config across tenants and attach the
        // shared cache *after* configuring, so this only ever clears the
        // runtime's private cache.)
        self.plan_cache.clear();
        self.plan_cache.set_capacity(cfg.plan_cache_capacity);
    }

    /// Launch-plan cache size (captured plans currently held).
    pub fn plan_cache_len(&self) -> usize {
        self.plan_cache.len()
    }

    /// A handle to the plan cache — share it with another runtime via
    /// [`MgpuRuntime::set_plan_cache`], or snapshot it with
    /// [`crate::persist::snapshot_to_json`].
    pub fn plan_cache_handle(&self) -> Arc<ShardedPlanCache> {
        self.plan_cache.clone()
    }

    /// Attach a (possibly shared) plan cache. Plan keys strip the buffer
    /// namespace, so tenants with identical workloads hit each other's
    /// captured plans; replay re-resolves buffer arguments against this
    /// runtime's own instances. Call *after* [`MgpuRuntime::set_config`]
    /// — configuring clears the attached cache.
    pub fn set_plan_cache(&mut self, cache: Arc<ShardedPlanCache>) {
        self.pipeline_flush();
        self.plan_cache = cache;
    }

    /// Assign this runtime's virtual-buffer namespace. Every handle
    /// minted by [`MgpuRuntime::malloc`] carries the prefix, and handles
    /// from any other namespace are rejected by the liveness check —
    /// tenants cannot alias each other's trackers. Only callable before
    /// the first allocation: existing handles must not be re-interpreted.
    pub fn set_namespace(&mut self, ns: u32) -> Result<()> {
        if !self.buffers.is_empty() {
            return Err(RuntimeError::BadArgument(format!(
                "cannot change namespace to {ns} after {} allocations",
                self.buffers.len()
            )));
        }
        self.namespace = ns;
        Ok(())
    }

    /// This runtime's virtual-buffer namespace (0 = standalone).
    pub fn namespace(&self) -> u32 {
        self.namespace
    }

    /// Pin the partitioning strategy of one kernel, bypassing both the
    /// compiler heuristic and the autotuner (the A7 ablation measures
    /// every candidate this way). Flushes captured plans — they encode
    /// the old partition bounds — and resets the autotuner's measurement
    /// windows for this kernel: a half-filled window must not average
    /// bytes from two different strategies.
    pub fn force_strategy(&mut self, kernel: &str, strategy: PartitionStrategy) {
        self.pipeline_flush();
        self.forced.insert(kernel.to_string(), strategy);
        self.plan_cache.clear();
        self.tuner.reset_windows(kernel);
    }

    /// Remove a [`MgpuRuntime::force_strategy`] override. Like
    /// [`MgpuRuntime::force_strategy`], this is a strategy change:
    /// captured plans flush and the kernel's tuner windows reset.
    pub fn clear_forced_strategy(&mut self, kernel: &str) {
        self.pipeline_flush();
        self.forced.remove(kernel);
        self.plan_cache.clear();
        self.tuner.reset_windows(kernel);
    }

    /// The autotuner state (decisions, measurements, switches).
    pub fn tuner(&self) -> &Autotuner {
        &self.tuner
    }

    /// Every autotuner decision in reportable form, sorted by kernel
    /// name for deterministic output.
    pub fn tuner_report(&self) -> Vec<TunerReport> {
        let mut out: Vec<TunerReport> = self
            .tuner
            .entries()
            .map(|(k, e)| TunerReport {
                kernel: k.kernel.clone(),
                grid: k.grid,
                block: k.block,
                strategy: e.strategy().describe(),
                predicted_bytes: e.predicted().transfer_bytes,
                measured_bytes: e.measured_bytes(),
                launches: e.launches,
                switches: e.switches,
            })
            .collect();
        out.sort_by(|a, b| a.kernel.cmp(&b.kernel));
        out
    }

    /// The wrapped backend.
    pub fn machine(&self) -> &dyn Backend {
        &*self.machine
    }

    /// Mutable access to the backend (benchmarks reset clocks etc.).
    /// Flushes the launch-ahead window first: direct machine access must
    /// not observe clocks mid-window.
    pub fn machine_mut(&mut self) -> &mut dyn Backend {
        self.pipeline_flush();
        &mut *self.machine
    }

    /// Real device count.
    pub fn n_devices(&self) -> usize {
        self.machine.n_devices()
    }

    /// The `cudaGetDeviceCount` replacement: always 1 — the application
    /// continues to believe it programs a single GPU (§8.4).
    pub fn visible_device_count(&self) -> usize {
        1
    }

    /// `cudaMalloc` replacement: allocate one instance per device and a
    /// tracker (§8.1).
    pub fn malloc(&mut self, bytes: usize, elem_size: usize) -> Result<VBufId> {
        assert!(elem_size > 0 && bytes.is_multiple_of(elem_size));
        let mut instances = Vec::with_capacity(self.n_devices());
        for d in 0..self.n_devices() {
            instances.push(self.machine.alloc(d, bytes)?);
        }
        self.buffers.push(VirtualBuffer {
            len: bytes,
            elem_size,
            instances,
            tracker: Tracker::new(bytes as u64),
            freed: false,
            kernel_written: false,
            d2d_in_bytes: 0,
        });
        Ok(VBufId::with_namespace(
            self.namespace,
            self.buffers.len() - 1,
        ))
    }

    /// `cudaFree` replacement. The simulator does not reclaim device
    /// memory (allocation is virtual in performance mode anyway); freeing
    /// marks the handle so later use is caught as an error.
    pub fn free(&mut self, b: VBufId) -> Result<()> {
        if b.namespace() != self.namespace {
            return Err(RuntimeError::BadArgument(format!(
                "buffer {b:?} belongs to namespace {}, not {}",
                b.namespace(),
                self.namespace
            )));
        }
        let vb = self
            .buffers
            .get_mut(b.index())
            .ok_or(RuntimeError::BadArgument(format!("unknown buffer {b:?}")))?;
        if vb.freed {
            return Err(RuntimeError::BadArgument(format!(
                "double free of buffer {b:?}"
            )));
        }
        vb.freed = true;
        Ok(())
    }

    pub(crate) fn check_live(&self, b: VBufId) -> Result<()> {
        // A handle from another namespace is *someone else's* buffer —
        // its index may well be in range here, which is exactly the
        // cross-tenant aliasing this check exists to refuse.
        if b.namespace() != self.namespace {
            return Err(RuntimeError::BadArgument(format!(
                "buffer {b:?} belongs to namespace {}, not {}",
                b.namespace(),
                self.namespace
            )));
        }
        match self.buffers.get(b.index()) {
            Some(vb) if !vb.freed => Ok(()),
            Some(_) => Err(RuntimeError::BadArgument(format!(
                "use of freed buffer {b:?}"
            ))),
            None => Err(RuntimeError::BadArgument(format!("unknown buffer {b:?}"))),
        }
    }

    /// `cudaMemcpy(…, HostToDevice)` replacement: a 1:n movement. The
    /// host data is distributed in the predefined **linear pattern**
    /// across all devices (§8.2); mismatches against later kernels' read
    /// patterns are corrected by buffer synchronization before launch.
    pub fn memcpy_h2d(&mut self, dst: VBufId, src: &[u8]) -> Result<()> {
        self.check_live(dst)?;
        self.pipeline_flush();
        let vb = &self.buffers[dst.index()];
        if src.len() != vb.len {
            return Err(RuntimeError::SizeMismatch {
                expected: vb.len,
                got: src.len(),
            });
        }
        let n = self.n_devices();
        let elem = vb.elem_size;
        let total_elems = vb.len / elem;
        let base = total_elems / n;
        let rem = total_elems % n;
        let mut start_elem = 0usize;
        let instances = vb.instances.clone();
        for (d, &inst) in instances.iter().enumerate() {
            let len_elems = base + usize::from(d < rem);
            let (s, e) = (start_elem * elem, (start_elem + len_elems) * elem);
            start_elem += len_elems;
            if s == e {
                continue;
            }
            self.machine.copy_h2d(&src[s..e], inst, s, false)?;
            let stats =
                self.buffers[dst.index()]
                    .tracker
                    .update(s as u64, e as u64, Owner::Device(d));
            self.machine
                .note_replica_invalidations(stats.invalidated as u64);
            let seg_cost = self.machine.spec().host_per_segment;
            self.machine.charge_host(seg_cost, TimeCat::Pattern);
        }
        self.buffers[dst.index()].kernel_written = false;
        debug_assert!(self.buffers[dst.index()].tracker.check_invariants());
        Ok(())
    }

    /// `cudaMemcpy(…, DeviceToHost)` replacement: an n:1 gather driven by
    /// the tracker (§8.2).
    pub fn memcpy_d2h(&mut self, src: VBufId, dst: &mut [u8]) -> Result<()> {
        self.check_live(src)?;
        let vb = &self.buffers[src.index()];
        if dst.len() != vb.len {
            return Err(RuntimeError::SizeMismatch {
                expected: vb.len,
                got: dst.len(),
            });
        }
        // A gather of a buffer no in-flight launch or halo copy still
        // writes need not drain the launch-ahead window: trackers
        // advance at submit (so the gather plan is current) and the
        // simulator drains deferred byte effects on every D2H read.
        // Only a *hot* buffer forces the conservative full flush.
        if self.pipeline.writes_in_flight(src) {
            self.pipeline_flush();
        }
        let vb = &self.buffers[src.index()];
        let plan = Self::d2h_gather_plan(vb, self.config.replica_coherence);
        let instances = vb.instances.clone();
        let seg_cost = self.machine.spec().host_per_segment * plan.len() as f64;
        self.machine.charge_host(seg_cost, TimeCat::Pattern);
        for (d, s, e) in plan {
            let s_us = crate::to_usize(s, "gather offset")?;
            let e_us = crate::to_usize(e, "gather end")?;
            self.machine
                .copy_d2h(instances[d], s_us, &mut dst[s_us..e_us], false)?;
        }
        Ok(())
    }

    /// Tracker-driven D2H gather plan: one `(device, start, end)` copy
    /// per emitted run. With replica coherence on, the source of each
    /// segment is picked among its *valid holders*, preferring the
    /// device of the previous run so adjacent segments with different
    /// freshest owners but a shared holder collapse into one copy (and
    /// one `host_per_segment` charge); without it, the freshest owner is
    /// the only choice, as in the paper.
    fn d2h_gather_plan(vb: &VirtualBuffer, replica: bool) -> Vec<(usize, u64, u64)> {
        let mut plan: Vec<(usize, u64, u64)> = Vec::new();
        vb.tracker
            .query(0, vb.len as u64, &mut |s, e, v: Validity| {
                let Owner::Device(freshest) = v.freshest else {
                    // Host-fresh and Uninit bytes need no device gather.
                    return;
                };
                let src = match plan.last() {
                    Some(&(pd, _, pe)) if replica && pe == s && v.holders.contains(pd) => pd,
                    _ => freshest,
                };
                match plan.last_mut() {
                    Some(last) if last.0 == src && last.2 == s => last.2 = e,
                    _ => plan.push((src, s, e)),
                }
            });
        plan
    }

    /// Performance-mode H2D: same linear distribution, tracker updates and
    /// timing as [`MgpuRuntime::memcpy_h2d`], but without host payload
    /// (paper-scale buffers need not exist in host memory).
    pub fn memcpy_h2d_sim(&mut self, dst: VBufId) -> Result<()> {
        self.check_live(dst)?;
        self.pipeline_flush();
        let vb = &self.buffers[dst.index()];
        let n = self.n_devices();
        let elem = vb.elem_size;
        let total_elems = vb.len / elem;
        let base = total_elems / n;
        let rem = total_elems % n;
        let mut start_elem = 0usize;
        let instances = vb.instances.clone();
        for (d, &inst) in instances.iter().enumerate() {
            let len_elems = base + usize::from(d < rem);
            let (s, e) = (start_elem * elem, (start_elem + len_elems) * elem);
            start_elem += len_elems;
            if s == e {
                continue;
            }
            self.machine.copy_h2d_timed(inst, s, e - s, false)?;
            let stats =
                self.buffers[dst.index()]
                    .tracker
                    .update(s as u64, e as u64, Owner::Device(d));
            self.machine
                .note_replica_invalidations(stats.invalidated as u64);
            let seg_cost = self.machine.spec().host_per_segment;
            self.machine.charge_host(seg_cost, TimeCat::Pattern);
        }
        self.buffers[dst.index()].kernel_written = false;
        Ok(())
    }

    /// Performance-mode D2H: tracker-driven gather without a host
    /// destination.
    pub fn memcpy_d2h_sim(&mut self, src: VBufId) -> Result<()> {
        self.check_live(src)?;
        // Same cold-buffer bypass as `memcpy_d2h`.
        if self.pipeline.writes_in_flight(src) {
            self.pipeline_flush();
        }
        let vb = &self.buffers[src.index()];
        let plan = Self::d2h_gather_plan(vb, self.config.replica_coherence);
        let instances = vb.instances.clone();
        let seg_cost = self.machine.spec().host_per_segment * plan.len() as f64;
        self.machine.charge_host(seg_cost, TimeCat::Pattern);
        for (d, s, e) in plan {
            let s_us = crate::to_usize(s, "gather offset")?;
            let len = crate::to_usize(e - s, "gather length")?;
            self.machine
                .copy_d2h_timed(instances[d], s_us, len, false)?;
        }
        Ok(())
    }

    /// `cudaMemcpy(…, DeviceToDevice)` replacement: unsupported, as in
    /// the paper (§8.2).
    pub fn memcpy_d2d(&mut self, _src: VBufId, _dst: VBufId) -> Result<()> {
        Err(RuntimeError::Unsupported(
            "device-to-device memcpy (paper §8.2)",
        ))
    }

    /// `cudaMemcpyAsync(…, HostToDevice)` replacement. Our H2D already
    /// issues per-device copies back-to-back; the async variant simply
    /// does not join the host clock to the last device — callers must
    /// synchronize before reusing the host buffer, exactly like CUDA.
    pub fn memcpy_h2d_async(&mut self, dst: VBufId, src: &[u8]) -> Result<()> {
        self.check_live(dst)?;
        self.pipeline_flush();
        let vb = &self.buffers[dst.index()];
        if src.len() != vb.len {
            return Err(RuntimeError::SizeMismatch {
                expected: vb.len,
                got: src.len(),
            });
        }
        let n = self.n_devices();
        let elem = vb.elem_size;
        let total_elems = vb.len / elem;
        let base = total_elems / n;
        let rem = total_elems % n;
        let mut start_elem = 0usize;
        let instances = vb.instances.clone();
        for (d, &inst) in instances.iter().enumerate() {
            let len_elems = base + usize::from(d < rem);
            let (s, e) = (start_elem * elem, (start_elem + len_elems) * elem);
            start_elem += len_elems;
            if s == e {
                continue;
            }
            self.machine.copy_h2d(&src[s..e], inst, s, true)?;
            let stats =
                self.buffers[dst.index()]
                    .tracker
                    .update(s as u64, e as u64, Owner::Device(d));
            self.machine
                .note_replica_invalidations(stats.invalidated as u64);
            let seg_cost = self.machine.spec().host_per_segment;
            self.machine.charge_host(seg_cost, TimeCat::Pattern);
        }
        self.buffers[dst.index()].kernel_written = false;
        Ok(())
    }

    /// `cudaDeviceSynchronize` replacement: synchronizes **all** devices
    /// (§8.4).
    pub fn synchronize(&mut self) {
        self.pipeline_flush();
        self.machine.sync_all();
    }

    /// Tracker segment count of a buffer (fragmentation metric).
    pub fn segment_count(&self, b: VBufId) -> usize {
        self.buffers[b.index()].tracker.segment_count()
    }

    /// Total peer-copy bytes ever received by a buffer's device
    /// instances (read-sync and whole-buffer sync copies). The A8
    /// replica ablation samples this per launch: for a host-uploaded
    /// read-only array it stops growing after the first launch once
    /// replica coherence marks every reader a valid holder.
    pub fn d2d_bytes_into(&self, b: VBufId) -> u64 {
        self.buffers[b.index()].d2d_in_bytes
    }

    /// Byte length of a buffer.
    pub fn buffer_len(&self, b: VBufId) -> usize {
        self.buffers[b.index()].len
    }

    /// Elapsed simulated time on the host clock.
    pub fn elapsed(&self) -> f64 {
        self.machine.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mekong_gpusim::{Machine, MachineSpec};

    fn runtime(n: usize) -> MgpuRuntime {
        MgpuRuntime::new(Machine::new(MachineSpec::kepler_system(n), true))
    }

    #[test]
    fn h2d_distributes_linearly_and_d2h_gathers() {
        let mut rt = runtime(4);
        let n = 100usize; // elements
        let b = rt.malloc(n * 4, 4).unwrap();
        let data: Vec<u8> = (0..n).flat_map(|i| (i as f32).to_le_bytes()).collect();
        rt.memcpy_h2d(b, &data).unwrap();
        // 4 devices, 100 elements -> 25 each; tracker has 4 segments.
        assert_eq!(rt.segment_count(b), 4);
        let mut out = vec![0u8; n * 4];
        rt.memcpy_d2h(b, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn uneven_distribution_covers_everything() {
        let mut rt = runtime(3);
        let n = 10usize;
        let b = rt.malloc(n * 8, 8).unwrap();
        let data: Vec<u8> = (0..n as u64).flat_map(|i| i.to_le_bytes()).collect();
        rt.memcpy_h2d(b, &data).unwrap();
        let mut out = vec![0u8; n * 8];
        rt.memcpy_d2h(b, &mut out).unwrap();
        assert_eq!(out, data);
        // 4 + 3 + 3 elements.
        assert_eq!(rt.segment_count(b), 3);
    }

    /// D2H gathering consults replica holders: adjacent segments with
    /// different freshest owners but a shared holder collapse into one
    /// copy from that holder — and the gathered bytes are still correct,
    /// because a holder's instance is identical to the freshest copy.
    #[test]
    fn d2h_gather_coalesces_through_replica_holders() {
        let mut rt = runtime(2);
        let n = 100usize;
        let b = rt.malloc(n * 4, 4).unwrap();
        let data: Vec<u8> = (0..n).flat_map(|i| (i as f32).to_le_bytes()).collect();
        rt.memcpy_h2d(b, &data).unwrap();
        // Linear split: device 0 received [0,200), device 1 [200,400).
        // Replicate device 1's half onto device 0 (a real copy on the
        // functional machine, then the tracker records the holder).
        let (i0, i1) = (
            rt.buffers[b.index()].instances[0],
            rt.buffers[b.index()].instances[1],
        );
        rt.machine.copy_d2d(i1, 200, i0, 200, 200).unwrap();
        rt.machine.sync_all();
        rt.buffers[b.index()].tracker.add_holder(200, 400, 0);
        // Replica-aware gather: one copy, sourced entirely from device 0.
        let plan = MgpuRuntime::d2h_gather_plan(&rt.buffers[b.index()], true);
        assert_eq!(plan, vec![(0, 0, 400)]);
        // Legacy gather: one copy per freshest owner.
        let legacy = MgpuRuntime::d2h_gather_plan(&rt.buffers[b.index()], false);
        assert_eq!(legacy, vec![(0, 0, 200), (1, 200, 400)]);
        let mut out = vec![0u8; n * 4];
        rt.memcpy_d2h(b, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn size_mismatch_is_reported() {
        let mut rt = runtime(2);
        let b = rt.malloc(64, 4).unwrap();
        assert!(matches!(
            rt.memcpy_h2d(b, &[0u8; 32]),
            Err(RuntimeError::SizeMismatch { .. })
        ));
        let mut small = vec![0u8; 32];
        assert!(matches!(
            rt.memcpy_d2h(b, &mut small),
            Err(RuntimeError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn d2d_memcpy_unsupported() {
        let mut rt = runtime(2);
        let a = rt.malloc(64, 4).unwrap();
        let b = rt.malloc(64, 4).unwrap();
        assert!(matches!(
            rt.memcpy_d2d(a, b),
            Err(RuntimeError::Unsupported(_))
        ));
    }

    #[test]
    fn visible_device_count_is_one() {
        let rt = runtime(8);
        assert_eq!(rt.visible_device_count(), 1);
        assert_eq!(rt.n_devices(), 8);
    }

    #[test]
    fn free_blocks_reuse_and_double_free() {
        let mut rt = runtime(2);
        let b = rt.malloc(64, 4).unwrap();
        rt.free(b).unwrap();
        assert!(matches!(rt.free(b), Err(RuntimeError::BadArgument(_))));
        assert!(matches!(
            rt.memcpy_h2d(b, &[0u8; 64]),
            Err(RuntimeError::BadArgument(_))
        ));
        let mut out = vec![0u8; 64];
        assert!(matches!(
            rt.memcpy_d2h(b, &mut out),
            Err(RuntimeError::BadArgument(_))
        ));
    }

    #[test]
    fn sim_memcpys_reject_freed_and_unknown_buffers() {
        // Regression: the performance-mode copies used to skip the
        // liveness check and indexed `buffers` directly, so a freed
        // handle silently revived and an unknown one panicked.
        let mut rt = MgpuRuntime::new(Machine::new(MachineSpec::kepler_system(2), false));
        let b = rt.malloc(64, 4).unwrap();
        rt.free(b).unwrap();
        assert!(matches!(
            rt.memcpy_h2d_sim(b),
            Err(RuntimeError::BadArgument(_))
        ));
        assert!(matches!(
            rt.memcpy_d2h_sim(b),
            Err(RuntimeError::BadArgument(_))
        ));
        let bogus = VBufId(99);
        assert!(matches!(
            rt.memcpy_h2d_sim(bogus),
            Err(RuntimeError::BadArgument(_))
        ));
        assert!(matches!(
            rt.memcpy_d2h_sim(bogus),
            Err(RuntimeError::BadArgument(_))
        ));
    }

    #[test]
    fn async_h2d_moves_data_without_blocking_host() {
        let mut rt = runtime(2);
        let n = 64usize;
        let b = rt.malloc(n * 4, 4).unwrap();
        let data: Vec<u8> = (0..n).flat_map(|i| (i as f32).to_le_bytes()).collect();
        rt.memcpy_h2d_async(b, &data).unwrap();
        let host_before_sync = rt.elapsed();
        rt.synchronize();
        assert!(rt.elapsed() > host_before_sync, "sync must join the copies");
        let mut out = vec![0u8; n * 4];
        rt.memcpy_d2h(b, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn gamma_disables_resolution_only_in_perf_mode() {
        let mut rt = runtime(2);
        rt.set_config(RuntimeConfig::gamma());
        assert!(
            rt.resolve_dependencies,
            "functional machines keep resolving"
        );
        let mut rt2 = MgpuRuntime::new(Machine::new(MachineSpec::kepler_system(2), false));
        rt2.set_config(RuntimeConfig::gamma());
        assert!(!rt2.resolve_dependencies);
    }
}
