//! # mekong-runtime — the multi-GPU runtime library (paper §8)
//!
//! The static runtime every partitioned application links against:
//!
//! * [`Tracker`] — the per-buffer segment list mapping byte ranges to
//!   their coherence state (§8.1), extended from the paper's single-owner
//!   scheme to a compact validity set per segment: the device (or host)
//!   holding the most recently written copy *plus* the set of devices
//!   holding valid replicas. Backed by a B-tree keyed on segment start.
//! * virtual buffers — one device-local instance per device plus a
//!   tracker, replacing the single CUDA allocation (§8.1).
//! * [`MgpuRuntime`] — the CUDA Runtime API replacement (§8.4):
//!   `mgpu_malloc`, `mgpu_memcpy_*` (1:n scatter, n:1 gather, §8.2),
//!   `mgpu_synchronize`, and the partitioned kernel launch sequence of
//!   Figure 4: synchronize read buffers → launch partitions → update
//!   trackers.
//!
//! The α/β/γ measurement configurations of §9.2 are exposed through
//! [`RuntimeConfig`]: β disables transfer *timing* (data still moves so
//! functional checks keep passing), γ additionally disables
//! dependency-resolution timing.
//!
//! Iterative applications relaunch identical configurations thousands of
//! times; the [`plan`] module caches the whole rewritten launch sequence
//! (CUDA-Graphs-style capture & replay) keyed by the structural state of
//! every argument buffer's tracker. See [`RuntimeConfig::capture_plans`].

pub mod cache;
pub mod compiled;
pub mod launch;
pub mod persist;
pub mod pipeline;
pub mod plan;
pub mod tracker;
pub mod vbuf;

pub use cache::ShardedPlanCache;
pub use compiled::CompiledKernel;
pub use launch::LaunchArg;
pub use mekong_tuner::{decode_strategy, Autotuner, Candidate, PartitionStrategy};
pub use persist::{load_snapshot_json, snapshot_to_json, SNAPSHOT_VERSION};
pub use plan::{ArgKey, LaunchPlan, PlanCopy, PlanKey, PlanLaunch, PlanUpdate};
pub use tracker::{DeviceSet, Owner, Tracker, UpdateStats, Validity};
pub use vbuf::{MgpuRuntime, RuntimeConfig, TunerReport, VBufId};

/// Errors from the runtime.
#[derive(Debug)]
pub enum RuntimeError {
    /// Device-to-device user memcpy (unsupported, §8.2).
    Unsupported(&'static str),
    /// Host buffer length does not match the virtual buffer.
    SizeMismatch { expected: usize, got: usize },
    /// Argument mismatch at launch.
    BadArgument(String),
    /// The kernel was not cleared for partitioning (§4 checks).
    NotPartitionable(String),
    /// A 64-bit byte offset or length does not fit the host's `usize`
    /// (copy/gather paths refuse to truncate on 32-bit hosts).
    Overflow { value: u64, what: &'static str },
    /// Simulator failure.
    Sim(mekong_gpusim::SimError),
    /// Polyhedral failure.
    Poly(mekong_poly::PolyError),
    /// A plan-cache snapshot could not be loaded (version mismatch or
    /// malformed document). The cache is untouched when this is raised.
    Snapshot(String),
}

impl From<mekong_gpusim::SimError> for RuntimeError {
    fn from(e: mekong_gpusim::SimError) -> Self {
        RuntimeError::Sim(e)
    }
}

impl From<mekong_poly::PolyError> for RuntimeError {
    fn from(e: mekong_poly::PolyError) -> Self {
        RuntimeError::Poly(e)
    }
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Unsupported(w) => write!(f, "unsupported operation: {w}"),
            RuntimeError::SizeMismatch { expected, got } => {
                write!(f, "buffer size mismatch: expected {expected}, got {got}")
            }
            RuntimeError::BadArgument(m) => write!(f, "bad launch argument: {m}"),
            RuntimeError::NotPartitionable(m) => write!(f, "kernel not partitionable: {m}"),
            RuntimeError::Overflow { value, what } => {
                write!(f, "{what} {value} does not fit this host's usize")
            }
            RuntimeError::Sim(e) => write!(f, "simulator: {e}"),
            RuntimeError::Poly(e) => write!(f, "polyhedral: {e}"),
            RuntimeError::Snapshot(m) => write!(f, "plan snapshot: {m}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Result alias.
pub type Result<T> = std::result::Result<T, RuntimeError>;

/// Checked `u64 → usize` narrowing for copy/gather byte offsets and
/// lengths. Tracker coordinates are 64-bit; host slices are `usize`-
/// indexed. On 64-bit hosts this never fails, but on a 32-bit host a
/// silent `as usize` would truncate and copy the wrong bytes — surface
/// a [`RuntimeError::Overflow`] instead.
pub(crate) fn to_usize(value: u64, what: &'static str) -> Result<usize> {
    usize::try_from(value).map_err(|_| RuntimeError::Overflow { value, what })
}

#[cfg(test)]
mod error_tests {
    use super::*;

    #[test]
    fn to_usize_accepts_values_that_fit() {
        assert_eq!(to_usize(0, "offset").unwrap(), 0);
        assert_eq!(to_usize(123_456, "offset").unwrap(), 123_456);
    }

    #[test]
    #[cfg(target_pointer_width = "32")]
    fn to_usize_rejects_oversized_values() {
        let err = to_usize(u64::from(u32::MAX) + 1, "copy length").unwrap_err();
        assert!(matches!(err, RuntimeError::Overflow { .. }));
    }

    #[test]
    fn overflow_error_names_the_field() {
        let e = RuntimeError::Overflow {
            value: 42,
            what: "copy offset",
        };
        assert_eq!(
            e.to_string(),
            "copy offset 42 does not fit this host's usize"
        );
    }
}
