//! Launch-plan capture & replay: CUDA-Graphs-style caching of the §5
//! launch sequence.
//!
//! The paper's workloads are iterative — Hotspot issues 1500 launches
//! with identical geometry (§9) — and the Figure 4 rewrite expands every
//! launch into synchronize-reads → launch-partitions → update-trackers.
//! After warm-up, ping-pong trackers reach a periodic fixed point: the
//! tracker state at launch *k* is structurally identical to the state at
//! launch *k − 2*, so the entire command sequence the rewrite derives
//! from it is identical too. The runtime therefore captures that
//! sequence once and replays it on subsequent launches.
//!
//! The cache is **content-addressed**: the key embeds a structural
//! signature of every argument buffer's tracker ([`crate::Tracker::signature`]).
//! There is no explicit invalidation — any tracker mutation (a kernel
//! write update, a `memcpy_h2d` re-distribution) changes the signature
//! and the next launch simply misses and re-captures.

use crate::vbuf::VBufId;
use mekong_gpusim::machine::SimArg;
use mekong_kernel::{Dim3, Value};

/// One launch argument reduced to its cache-key form.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ArgKey {
    /// Scalar value as a `(type tag, bit pattern)` pair. Floats key by
    /// their bit pattern (`Value` itself is not `Eq`); the tag keeps
    /// `I64(1)` and `F32` with the same bits from colliding.
    Scalar(u8, u64),
    /// Buffer identity plus the structural signature of its tracker at
    /// launch time. `VBufId`s are never reused, so `id` pins the exact
    /// allocation and `sig` pins its coherence state.
    Buf { id: VBufId, sig: u64 },
}

impl ArgKey {
    /// Key form of a scalar launch argument.
    pub fn scalar(v: Value) -> ArgKey {
        match v {
            Value::I64(x) => ArgKey::Scalar(0, x as u64),
            Value::F32(x) => ArgKey::Scalar(1, x.to_bits() as u64),
            Value::F64(x) => ArgKey::Scalar(2, x.to_bits()),
        }
    }
}

/// Cache key of one captured launch: everything the §5 rewrite's command
/// sequence is a deterministic function of.
///
/// Kernels are keyed by *name* (same convention as the simulator's
/// roofline memo): two distinct kernels sharing a name would alias. The
/// split axis is included so a recompiled kernel whose partitioning
/// strategy changed cannot replay a stale plan, and the concrete
/// partition bounds pin the autotuner's decision: when online refinement
/// switches strategies, the next launch misses and re-captures instead
/// of replaying a plan built for the old grid slicing.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    pub kernel: String,
    /// The launch's partitioning strategy
    /// ([`mekong_tuner::PartitionStrategy::encode`]): axes, device
    /// factors, and the weighted/tiled bits. Distinguishes a 2-D
    /// rectangular tiling from any 1-D slab split even when their
    /// flattened bounds coincide.
    pub strategy: u32,
    pub grid: Dim3,
    pub block: Dim3,
    /// Flattened `lo`/`hi` bounds of every partition the launch runs.
    pub bounds: Vec<i64>,
    pub args: Vec<ArgKey>,
}

/// One captured D2D transaction: pull `count` runs of `end - start`
/// bytes of `vb`'s instance on `src_dev` into the instance on
/// `dst_gpu`, the first at `start` and each subsequent one `stride`
/// bytes later (same offsets both sides). `count == 1` is a plain
/// contiguous copy; `count > 1` is a `cudaMemcpy2D`-style strided DMA —
/// the column-halo shape of a rectangular tiling — replayed as **one**
/// link transaction ([`mekong_gpusim::Machine::copy_d2d_strided`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanCopy {
    pub vb: VBufId,
    pub dst_gpu: usize,
    pub src_dev: usize,
    pub start: u64,
    pub end: u64,
    /// Distance between run starts; `end - start` for a single run.
    pub stride: u64,
    /// Number of runs (≥ 1).
    pub count: u64,
}

/// One captured partition launch. The kernel body is *not* stored — the
/// caller passes the same [`crate::CompiledKernel`] at replay — only the
/// fully resolved argument vector (device-local buffer instances plus
/// the six partition-bound scalars) and the roofline traffic estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanLaunch {
    pub gpu: usize,
    pub sim_args: Vec<SimArg>,
    /// The partition's launch grid (not the global grid).
    pub grid: Dim3,
    pub traffic: u64,
}

/// One captured tracker write-update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanUpdate {
    pub vb: VBufId,
    pub gpu: usize,
    pub start: u64,
    pub end: u64,
}

/// The complete captured command sequence of one partitioned launch,
/// in issue order: copies (synchronize-reads), launches, tracker
/// updates. Replay applies them directly and charges a single flat
/// `host_per_replay` cost instead of the per-range/per-segment pattern
/// costs the capture paid.
///
/// The validity-set state the plan was captured against is pinned by the
/// key's tracker signatures (holder sets are hashed), so a replayed plan
/// never serves a copy the replica state makes redundant, nor skips one
/// it makes necessary. Replay re-derives holder additions from `copies`
/// and re-notes the replica observability stats below.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LaunchPlan {
    pub copies: Vec<PlanCopy>,
    pub launches: Vec<PlanLaunch>,
    pub updates: Vec<PlanUpdate>,
    /// Virtual buffers the kernel reads — the launch-ahead pipeline's
    /// event edges gate each partition launch on the halo copies into
    /// these buffers (see [`crate::pipeline`]).
    pub read_bufs: Vec<VBufId>,
    /// Virtual buffers the kernel writes; a pipelined launch waits for
    /// in-flight readers of these (write-after-read edges).
    pub write_bufs: Vec<VBufId>,
    /// Read-sync segment runs a local replica served at capture time
    /// (re-noted into `OpCounters::replica_hits` on every replay, since
    /// replays skip the planning walk that detects them).
    pub replica_hits: u64,
    /// Peer-transfer bytes those replica hits avoided re-fetching.
    pub replica_saved_bytes: u64,
    /// Bytes the capture enumerated from bounded may-read boxes
    /// (interval-footprint reads), re-noted on every replay.
    pub mayread_fetch_bytes: u64,
    /// The portion of those bytes beyond the whole-grid (single-device)
    /// box of the same launch.
    pub mayread_overfetch_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_keys_distinguish_types_and_values() {
        assert_ne!(
            ArgKey::scalar(Value::I64(1)),
            ArgKey::scalar(Value::F64(1.0))
        );
        assert_ne!(
            ArgKey::scalar(Value::F32(1.0)),
            ArgKey::scalar(Value::F64(1.0))
        );
        assert_ne!(ArgKey::scalar(Value::I64(1)), ArgKey::scalar(Value::I64(2)));
        assert_eq!(
            ArgKey::scalar(Value::F32(0.125)),
            ArgKey::scalar(Value::F32(0.125))
        );
        // Negative zero and zero differ bitwise — a conservative miss,
        // never a false hit.
        assert_ne!(
            ArgKey::scalar(Value::F32(0.0)),
            ArgKey::scalar(Value::F32(-0.0))
        );
    }
}
