//! Plan-cache persistence: versioned JSON snapshots of captured launch
//! plans, so a restarted server warm-starts with zero capture cost.
//!
//! Plans are fully content-addressed and — since replay re-resolves
//! buffer arguments against the live runtime — contain no
//! process-specific state that matters: `DevBuf` handles inside captured
//! `sim_args` are placeholders overwritten at replay, buffer ids are
//! namespace-stripped local indices, and everything else (copy lists,
//! tracker updates, traffic estimates) is a deterministic function of
//! the workload. A snapshot taken after a fleet run therefore replays
//! bit-identically in a fresh process running the same workload: the
//! second process reports **zero plan captures**.
//!
//! The format is a versioned JSON document:
//!
//! ```json
//! { "version": 1, "entries": [ { "key": {…}, "namespace": 1, "plan": {…} } ] }
//! ```
//!
//! Loading is all-or-nothing: the whole document is parsed and converted
//! into runtime types *before* the cache is touched, and a version
//! mismatch (or any malformed entry) rejects cleanly with
//! [`crate::RuntimeError::Snapshot`] — a half-loaded cache can never
//! exist. The vendored serde stub cannot derive tuple structs
//! ([`VBufId`]) or non-`Eq` types ([`Value`]), so the snapshot uses
//! mirror types with named fields; floats round-trip through their bit
//! patterns (same convention as [`ArgKey::scalar`]).

use crate::cache::ShardedPlanCache;
use crate::plan::{ArgKey, LaunchPlan, PlanCopy, PlanKey, PlanLaunch, PlanUpdate};
use crate::vbuf::VBufId;
use crate::{Result, RuntimeError};
use mekong_gpusim::machine::SimArg;
use mekong_gpusim::DevBuf;
use mekong_kernel::{Dim3, Value};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Current snapshot format version. Bump on any incompatible change to
/// the mirror types below; old snapshots are then rejected (and
/// re-captured), never misread.
pub const SNAPSHOT_VERSION: u32 = 2;

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SnapshotFile {
    version: u32,
    entries: Vec<EntrySnap>,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct EntrySnap {
    key: KeySnap,
    namespace: u32,
    plan: PlanSnap,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct KeySnap {
    kernel: String,
    strategy: u32,
    grid: Dim3,
    block: Dim3,
    bounds: Vec<i64>,
    args: Vec<ArgSnap>,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum ArgSnap {
    Scalar { tag: u8, bits: u64 },
    Buf { id: usize, sig: u64 },
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct PlanSnap {
    copies: Vec<CopySnap>,
    launches: Vec<LaunchSnap>,
    updates: Vec<UpdateSnap>,
    read_bufs: Vec<usize>,
    write_bufs: Vec<usize>,
    replica_hits: u64,
    replica_saved_bytes: u64,
    mayread_fetch_bytes: u64,
    mayread_overfetch_bytes: u64,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CopySnap {
    vb: usize,
    dst_gpu: usize,
    src_dev: usize,
    start: u64,
    end: u64,
    stride: u64,
    count: u64,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct LaunchSnap {
    gpu: usize,
    sim_args: Vec<SimArgSnap>,
    grid: Dim3,
    traffic: u64,
}

/// Captured launch arguments. Scalars keep the `(type tag, bit pattern)`
/// convention of [`ArgKey::scalar`]; buffer placeholders keep the
/// captured instance's coordinates (replay overwrites buffer positions
/// anyway, but a faithful round-trip keeps the proptests honest).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum SimArgSnap {
    Scalar {
        tag: u8,
        bits: u64,
    },
    Buf {
        device: usize,
        handle: usize,
        len: usize,
    },
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct UpdateSnap {
    vb: usize,
    gpu: usize,
    start: u64,
    end: u64,
}

fn value_to_bits(v: &Value) -> (u8, u64) {
    match v {
        Value::I64(x) => (0, *x as u64),
        Value::F32(x) => (1, x.to_bits() as u64),
        Value::F64(x) => (2, x.to_bits()),
    }
}

fn value_from_bits(tag: u8, bits: u64) -> Result<Value> {
    match tag {
        0 => Ok(Value::I64(bits as i64)),
        1 => Ok(Value::F32(f32::from_bits(bits as u32))),
        2 => Ok(Value::F64(f64::from_bits(bits))),
        t => Err(RuntimeError::Snapshot(format!("unknown scalar tag {t}"))),
    }
}

fn snap_key(k: &PlanKey) -> KeySnap {
    KeySnap {
        kernel: k.kernel.clone(),
        strategy: k.strategy,
        grid: k.grid,
        block: k.block,
        bounds: k.bounds.clone(),
        args: k
            .args
            .iter()
            .map(|a| match a {
                ArgKey::Scalar(tag, bits) => ArgSnap::Scalar {
                    tag: *tag,
                    bits: *bits,
                },
                ArgKey::Buf { id, sig } => ArgSnap::Buf {
                    id: id.0,
                    sig: *sig,
                },
            })
            .collect(),
    }
}

fn unsnap_key(k: &KeySnap) -> PlanKey {
    PlanKey {
        kernel: k.kernel.clone(),
        strategy: k.strategy,
        grid: k.grid,
        block: k.block,
        bounds: k.bounds.clone(),
        args: k
            .args
            .iter()
            .map(|a| match a {
                ArgSnap::Scalar { tag, bits } => ArgKey::Scalar(*tag, *bits),
                ArgSnap::Buf { id, sig } => ArgKey::Buf {
                    id: VBufId(*id),
                    sig: *sig,
                },
            })
            .collect(),
    }
}

fn snap_plan(p: &LaunchPlan) -> PlanSnap {
    PlanSnap {
        copies: p
            .copies
            .iter()
            .map(|c| CopySnap {
                vb: c.vb.0,
                dst_gpu: c.dst_gpu,
                src_dev: c.src_dev,
                start: c.start,
                end: c.end,
                stride: c.stride,
                count: c.count,
            })
            .collect(),
        launches: p
            .launches
            .iter()
            .map(|l| LaunchSnap {
                gpu: l.gpu,
                sim_args: l
                    .sim_args
                    .iter()
                    .map(|a| match a {
                        SimArg::Scalar(v) => {
                            let (tag, bits) = value_to_bits(v);
                            SimArgSnap::Scalar { tag, bits }
                        }
                        SimArg::Buf(b) => SimArgSnap::Buf {
                            device: b.device,
                            handle: b.handle,
                            len: b.len,
                        },
                    })
                    .collect(),
                grid: l.grid,
                traffic: l.traffic,
            })
            .collect(),
        updates: p
            .updates
            .iter()
            .map(|u| UpdateSnap {
                vb: u.vb.0,
                gpu: u.gpu,
                start: u.start,
                end: u.end,
            })
            .collect(),
        read_bufs: p.read_bufs.iter().map(|b| b.0).collect(),
        write_bufs: p.write_bufs.iter().map(|b| b.0).collect(),
        replica_hits: p.replica_hits,
        replica_saved_bytes: p.replica_saved_bytes,
        mayread_fetch_bytes: p.mayread_fetch_bytes,
        mayread_overfetch_bytes: p.mayread_overfetch_bytes,
    }
}

fn unsnap_plan(p: &PlanSnap) -> Result<LaunchPlan> {
    let mut launches = Vec::with_capacity(p.launches.len());
    for l in &p.launches {
        let mut sim_args = Vec::with_capacity(l.sim_args.len());
        for a in &l.sim_args {
            sim_args.push(match a {
                SimArgSnap::Scalar { tag, bits } => SimArg::Scalar(value_from_bits(*tag, *bits)?),
                SimArgSnap::Buf {
                    device,
                    handle,
                    len,
                } => SimArg::Buf(DevBuf {
                    device: *device,
                    handle: *handle,
                    len: *len,
                }),
            });
        }
        launches.push(PlanLaunch {
            gpu: l.gpu,
            sim_args,
            grid: l.grid,
            traffic: l.traffic,
        });
    }
    Ok(LaunchPlan {
        copies: p
            .copies
            .iter()
            .map(|c| PlanCopy {
                vb: VBufId(c.vb),
                dst_gpu: c.dst_gpu,
                src_dev: c.src_dev,
                start: c.start,
                end: c.end,
                stride: c.stride,
                count: c.count,
            })
            .collect(),
        launches,
        updates: p
            .updates
            .iter()
            .map(|u| PlanUpdate {
                vb: VBufId(u.vb),
                gpu: u.gpu,
                start: u.start,
                end: u.end,
            })
            .collect(),
        read_bufs: p.read_bufs.iter().map(|&b| VBufId(b)).collect(),
        write_bufs: p.write_bufs.iter().map(|&b| VBufId(b)).collect(),
        replica_hits: p.replica_hits,
        replica_saved_bytes: p.replica_saved_bytes,
        mayread_fetch_bytes: p.mayread_fetch_bytes,
        mayread_overfetch_bytes: p.mayread_overfetch_bytes,
    })
}

/// Serialize one `(key, plan)` pair and parse it back — the round-trip
/// primitive the persistence proptests drive directly.
pub fn round_trip_entry(key: &PlanKey, plan: &LaunchPlan) -> Result<(PlanKey, LaunchPlan)> {
    let snap = EntrySnap {
        key: snap_key(key),
        namespace: 0,
        plan: snap_plan(plan),
    };
    let json = serde_json::to_string_pretty(&snap)
        .map_err(|e| RuntimeError::Snapshot(format!("render: {e}")))?;
    let parsed: EntrySnap = serde_json::from_str(&json)
        .map_err(|e| RuntimeError::Snapshot(format!("round trip: {e}")))?;
    Ok((unsnap_key(&parsed.key), unsnap_plan(&parsed.plan)?))
}

/// Render the cache into a versioned JSON snapshot. Entries are sorted
/// by their rendered form so the document is deterministic regardless
/// of hash-map iteration order — two snapshots of the same cache state
/// are byte-identical.
///
/// The snapshot **compacts**: entries that were themselves loaded from
/// a snapshot and never hit since are dropped
/// ([`ShardedPlanCache::export_live`]), so stale plans age out across
/// snapshot/restore generations instead of accreting forever. Entries
/// captured live are always persisted.
pub fn snapshot_to_json(cache: &ShardedPlanCache) -> String {
    let mut entries: Vec<EntrySnap> = cache
        .export_live()
        .into_iter()
        .map(|(key, plan, namespace)| EntrySnap {
            key: snap_key(&key),
            namespace,
            plan: snap_plan(&plan),
        })
        .collect();
    let mut rendered: Vec<(String, EntrySnap)> = entries
        .drain(..)
        .map(|e| {
            let json = serde_json::to_string_pretty(&e).expect("snapshot entry serializes");
            (json, e)
        })
        .collect();
    rendered.sort_by(|a, b| a.0.cmp(&b.0));
    let file = SnapshotFile {
        version: SNAPSHOT_VERSION,
        entries: rendered.into_iter().map(|(_, e)| e).collect(),
    };
    serde_json::to_string_pretty(&file).expect("snapshot serializes")
}

/// Parse a snapshot and install its plans into `cache` as
/// most-recently-used. All-or-nothing: a version mismatch or malformed
/// entry returns [`RuntimeError::Snapshot`] without touching the cache.
/// Returns the number of plans loaded.
pub fn load_snapshot_json(cache: &ShardedPlanCache, json: &str) -> Result<usize> {
    let file: SnapshotFile = serde_json::from_str(json)
        .map_err(|e| RuntimeError::Snapshot(format!("malformed snapshot: {e}")))?;
    if file.version != SNAPSHOT_VERSION {
        return Err(RuntimeError::Snapshot(format!(
            "snapshot version {} does not match supported version {}",
            file.version, SNAPSHOT_VERSION
        )));
    }
    // Convert *everything* before touching the cache.
    let mut staged = Vec::with_capacity(file.entries.len());
    for e in &file.entries {
        staged.push((
            unsnap_key(&e.key),
            Arc::new(unsnap_plan(&e.plan)?),
            e.namespace,
        ));
    }
    let n = staged.len();
    cache.import(staged);
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cache_snapshot_round_trips() {
        let c = ShardedPlanCache::new(0);
        let json = snapshot_to_json(&c);
        let c2 = ShardedPlanCache::new(0);
        assert_eq!(load_snapshot_json(&c2, &json).unwrap(), 0);
        assert!(c2.is_empty());
    }

    #[test]
    fn version_mismatch_rejected_without_loading() {
        let c = ShardedPlanCache::new(0);
        let json = snapshot_to_json(&c).replace(
            &format!("\"version\": {SNAPSHOT_VERSION}"),
            "\"version\": 999",
        );
        let c2 = ShardedPlanCache::new(0);
        c2.insert(
            PlanKey {
                kernel: "keep".into(),
                strategy: 0,
                grid: Dim3::new1(1),
                block: Dim3::new1(1),
                bounds: vec![],
                args: vec![],
            },
            Arc::new(LaunchPlan::default()),
            0,
        );
        let err = load_snapshot_json(&c2, &json).unwrap_err();
        assert!(matches!(err, RuntimeError::Snapshot(_)), "{err:?}");
        assert_eq!(c2.len(), 1, "cache untouched on rejection");
    }

    #[test]
    fn snapshot_compacts_unhit_loaded_entries_and_round_trips() {
        let mk = |name: &str| PlanKey {
            kernel: name.into(),
            strategy: 0,
            grid: Dim3::new1(1),
            block: Dim3::new1(1),
            bounds: vec![],
            args: vec![],
        };
        // Generation 1: two plans captured live; both persist.
        let g1 = ShardedPlanCache::new(0);
        g1.insert(mk("used"), Arc::new(LaunchPlan::default()), 1);
        g1.insert(mk("stale"), Arc::new(LaunchPlan::default()), 1);
        let snap1 = snapshot_to_json(&g1);

        // Generation 2: warm-start, but only "used" replays.
        let g2 = ShardedPlanCache::new(0);
        assert_eq!(load_snapshot_json(&g2, &snap1).unwrap(), 2);
        assert!(g2.get(&mk("used")).is_some());
        let snap2 = snapshot_to_json(&g2);

        // Generation 3 carries the hit entry and sheds the stale one —
        // and the compacted snapshot loads cleanly.
        let g3 = ShardedPlanCache::new(0);
        assert_eq!(load_snapshot_json(&g3, &snap2).unwrap(), 1);
        assert!(g3.get(&mk("used")).is_some());
        assert!(g3.get(&mk("stale")).is_none());

        // An all-hit warm start round-trips byte-identically: nothing
        // to compact means the snapshot is reproduced exactly.
        let g4 = ShardedPlanCache::new(0);
        load_snapshot_json(&g4, &snap2).unwrap();
        assert!(g4.get(&mk("used")).is_some());
        assert_eq!(snapshot_to_json(&g4), snap2);
    }

    #[test]
    fn garbage_rejected() {
        let c = ShardedPlanCache::new(0);
        assert!(load_snapshot_json(&c, "not json").is_err());
        assert!(load_snapshot_json(&c, "{\"version\": 1}").is_err());
    }
}
