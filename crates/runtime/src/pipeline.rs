//! Launch-ahead pipelined scheduling: a dependency DAG across replayed
//! launches.
//!
//! The Figure 4 sequence is fully synchronous — `sync-reads → launch →
//! update-trackers` with a global barrier between the sync and launch
//! phases — so peer-copy latency sits on the critical path of every
//! iteration. But a captured plan already *is* the static dependence
//! structure of one launch: which copies feed which partitions, and which
//! buffers each partition reads and writes. When such a plan replays with
//! [`crate::RuntimeConfig::launch_ahead`] > 0, the runtime records its
//! per-device command segments with **event edges** instead of barriers:
//!
//! * a read-sync copy of buffer `b` from device `s` to device `g` waits
//!   for `b`'s producer launch on `s` (`ready_at[b,s]`, read-after-write)
//!   and for prior readers of `b` on `g` (`read_until[b,g]`,
//!   write-after-read);
//! * a partition launch on `g` waits for the incoming copies of every
//!   buffer it reads (`ready_at[r,g]`) and for in-flight readers of every
//!   buffer it writes (`read_until[w,g]`).
//!
//! Copies are charged to per-device **copy-engine clocks**
//! ([`mekong_gpusim::Machine::copy_d2d_pipelined`]), so iteration *i+1*'s
//! halo exchange streams while iteration *i*'s compute still occupies the
//! SM clocks. There is deliberately **no write-after-write edge between a
//! halo copy and the destination's own partition launch**: the partition
//! invariant guarantees disjointness (a device's kernel writes its own
//! partition; the plan only copies in segments whose freshest copy is
//! remote, i.e. bytes the destination did *not* just write), and the plan
//! was captured against exactly the tracker state the key's signatures
//! pin.
//!
//! **Deferred tracker commit:** trackers (and the plan-cache signatures
//! derived from them) advance at *submit* time, exactly as in the eager
//! path — the tracker models the submitted state of the machine, not the
//! drained state. That keeps plan keys, hit rates and counters identical
//! to `launch_ahead = 0`. The flip side is that any operation observing
//! real bytes or host-side clocks mid-window — D2H/H2D, an uncaptured
//! launch, a config change, direct machine access — must first flush
//! the window (`MgpuRuntime::pipeline_flush`). One exception is carved
//! out: a D2H gather of a buffer with **no in-flight writer** (no
//! queued halo copy into it, no queued launch writing it — see
//! `Pipeline::writes_in_flight`) skips the flush, so periodic
//! result downloads of a spectator buffer do not stall the window.
//!
//! Functional ordering across streams is handled with the same event
//! tokens the streamed engine already uses: each pipelined copy records
//! itself as an in-flight *reader* of its source instance, and a later
//! kernel writing that buffer on the source device submits a
//! [`mekong_gpusim::stream::StreamOp::WaitEvent`] first, so the copy's
//! snapshot always precedes the overwrite. Waits only ever reference
//! strictly-earlier submissions, so the wait graph stays a DAG.

use crate::plan::LaunchPlan;
use crate::tracker::Owner;
use crate::vbuf::{MgpuRuntime, VBufId};
use crate::{to_usize, CompiledKernel, Result};
use mekong_gpusim::TimeCat;
use mekong_kernel::Dim3;
use std::collections::{HashMap, VecDeque};

/// Key of one whole-buffer × device dependency slot.
type Slot = (usize, usize);

/// In-flight window state of the launch-ahead scheduler. All times are
/// simulated completion times ([`mekong_gpusim::SimTime`]).
#[derive(Debug, Default)]
pub(crate) struct Pipeline {
    /// Completion time of each in-flight launch, oldest first. The
    /// window is depth-limited: exceeding `launch_ahead` joins the host
    /// clock to the oldest entry (the host blocks, as on a full CUDA
    /// stream).
    in_flight: VecDeque<f64>,
    /// When `(buffer, device)` last became fully valid (producer kernel
    /// or incoming halo copies) — read-after-write edges.
    ready_at: HashMap<Slot, f64>,
    /// Until when `(buffer, device)` is being read (kernel reads, peer
    /// copies sourcing from it) — write-after-read edges.
    read_until: HashMap<Slot, f64>,
    /// In-flight functional readers of `(buffer, source device)`: the
    /// destination device and its stream event token after the copy was
    /// queued. A later kernel writing the buffer on the source device
    /// must cross-stream-wait on these.
    readers: HashMap<Slot, Vec<(usize, u64)>>,
}

impl Pipeline {
    /// Number of in-flight launches.
    pub(crate) fn depth(&self) -> usize {
        self.in_flight.len()
    }

    fn ready_at(&self, vb: VBufId, device: usize) -> f64 {
        self.ready_at
            .get(&(vb.index(), device))
            .copied()
            .unwrap_or(0.0)
    }

    fn read_until(&self, vb: VBufId, device: usize) -> f64 {
        self.read_until
            .get(&(vb.index(), device))
            .copied()
            .unwrap_or(0.0)
    }

    fn raise(map: &mut HashMap<Slot, f64>, slot: Slot, t: f64) {
        let e = map.entry(slot).or_insert(0.0);
        if t > *e {
            *e = t;
        }
    }

    /// Record a completed-at-`end` copy of `vb` from `src` into `dst`.
    fn note_copy(&mut self, vb: VBufId, src: usize, dst: usize, end: f64) {
        Self::raise(&mut self.ready_at, (vb.index(), dst), end);
        Self::raise(&mut self.read_until, (vb.index(), src), end);
    }

    /// Record a kernel on `device` finishing at `end` that read `vb`.
    fn note_kernel_read(&mut self, vb: VBufId, device: usize, end: f64) {
        Self::raise(&mut self.read_until, (vb.index(), device), end);
    }

    /// Record a kernel on `device` finishing at `end` that wrote `vb`.
    fn note_kernel_write(&mut self, vb: VBufId, device: usize, end: f64) {
        Self::raise(&mut self.ready_at, (vb.index(), device), end);
    }

    fn record_reader(&mut self, vb: VBufId, src: usize, dst: usize, token: u64) {
        self.readers
            .entry((vb.index(), src))
            .or_default()
            .push((dst, token));
    }

    fn take_readers(&mut self, vb: VBufId, device: usize) -> Vec<(usize, u64)> {
        self.readers
            .remove(&(vb.index(), device))
            .unwrap_or_default()
    }

    /// True when an in-flight operation may still be writing `vb` on
    /// some device — an incoming halo copy or a partition launch that
    /// writes it. Buffers only *read* inside the window never enter
    /// `ready_at`, so they stay cold. Conservative across retired
    /// launches: entries persist until the next drain.
    pub(crate) fn writes_in_flight(&self, vb: VBufId) -> bool {
        !self.in_flight.is_empty() && self.ready_at.keys().any(|&(b, _)| b == vb.index())
    }

    /// Drop all window state, returning the latest in-flight completion
    /// time (if any) for the caller to join the host clock to.
    fn drain(&mut self) -> Option<f64> {
        let latest = self
            .in_flight
            .iter()
            .copied()
            .fold(None, |acc: Option<f64>, t| {
                Some(acc.map_or(t, |a| a.max(t)))
            });
        self.in_flight.clear();
        self.ready_at.clear();
        self.read_until.clear();
        self.readers.clear();
        latest
    }
}

impl MgpuRuntime {
    /// Flush the launch-ahead window: the host clock joins the latest
    /// in-flight completion and all event-edge state is dropped. Called
    /// before any operation that observes real bytes or host-side clocks
    /// (D2H/H2D, uncaptured launches, synchronize, config changes,
    /// direct machine access). Cheap no-op when nothing is in flight.
    pub(crate) fn pipeline_flush(&mut self) {
        if let Some(t) = self.pipeline.drain() {
            self.machine.join_host(t);
        }
    }

    /// Current launch-ahead window depth: how many replayed launches
    /// are in flight right now. Read-only — unlike
    /// [`MgpuRuntime::machine_mut`], observing the depth does not flush.
    pub fn pipeline_depth(&self) -> usize {
        self.pipeline.depth()
    }

    /// Replay a captured plan through the launch-ahead pipeline instead
    /// of eagerly: copies go to the copy-engine clocks with event-edge
    /// dependencies, launches wait only on *their* incoming data, and
    /// the whole launch joins the in-flight window. Counters, tracker
    /// updates and host charges are identical to the eager
    /// `replay_plan` — only the device-clock schedule differs.
    pub(crate) fn replay_plan_pipelined(
        &mut self,
        ck: &CompiledKernel,
        block: Dim3,
        args: &[crate::LaunchArg],
        plan: &LaunchPlan,
    ) -> Result<()> {
        self.machine.note_plan_hit();
        if plan.replica_hits > 0 {
            self.machine
                .note_replica_hits(plan.replica_hits, plan.replica_saved_bytes);
        }
        if plan.mayread_fetch_bytes > 0 {
            self.machine
                .note_mayread(plan.mayread_fetch_bytes, plan.mayread_overfetch_bytes);
        }
        let cost = self.machine.spec().host_per_replay;
        self.machine.charge_host(cost, TimeCat::Pattern);
        let replica = self.config.replica_coherence;
        // Functional WAR ordering only matters when byte effects are
        // deferred to the streams; serial/perf machines need no tokens.
        let track_events = self.machine.is_functional() && self.machine.is_streamed();

        // ---- read-sync copies, on the copy engines -----------------------
        for c in &plan.copies {
            let src = self.buffers[c.vb.index()].instances[c.src_dev];
            let dst = self.buffers[c.vb.index()].instances[c.dst_gpu];
            let off = to_usize(c.start, "copy offset")?;
            let run = to_usize(c.end - c.start, "copy length")?;
            let deps = [
                // RAW: the producer launch of these bytes on the source.
                self.pipeline.ready_at(c.vb, c.src_dev),
                // WAR: in-flight readers of the destination's instance.
                self.pipeline.read_until(c.vb, c.dst_gpu),
            ];
            let end = if c.count <= 1 {
                self.machine
                    .copy_d2d_pipelined(src, off, dst, off, run, &deps)?
            } else {
                // A captured strided group (column halo of a rectangular
                // tile): one DMA transaction on the copy engine.
                self.machine.copy_d2d_strided_pipelined(
                    src,
                    dst,
                    off,
                    run,
                    to_usize(c.stride, "copy stride")?,
                    to_usize(c.count, "copy count")?,
                    &deps,
                )?
            };
            if track_events {
                let token = self.machine.stream_mark(c.dst_gpu);
                self.pipeline
                    .record_reader(c.vb, c.src_dev, c.dst_gpu, token);
            }
            self.pipeline.note_copy(c.vb, c.src_dev, c.dst_gpu, end);
            self.buffers[c.vb.index()].d2d_in_bytes += (c.end - c.start) * c.count;
            if replica {
                for r in 0..c.count {
                    let s = c.start + r * c.stride;
                    self.buffers[c.vb.index()].tracker.add_holder(
                        s,
                        s + (c.end - c.start),
                        c.dst_gpu,
                    );
                }
            }
        }

        // ---- partition launches, gated on their event edges ---------------
        let mut completion: f64 = 0.0;
        let mut has_work = !plan.copies.is_empty();
        let mut deps: Vec<f64> = Vec::new();
        for l in &plan.launches {
            deps.clear();
            for b in &plan.read_bufs {
                deps.push(self.pipeline.ready_at(*b, l.gpu));
            }
            for b in &plan.write_bufs {
                deps.push(self.pipeline.read_until(*b, l.gpu));
                if track_events {
                    for (reader, token) in self.pipeline.take_readers(*b, l.gpu) {
                        self.machine.stream_wait_cross(l.gpu, reader, token);
                    }
                }
            }
            // Buffer positions re-resolved from the live args — plans
            // are namespace-local and portable across tenant runtimes.
            let sim_args = self.resolve_sim_args(l, args);
            let end = self.machine.launch_pipelined(
                l.gpu,
                &ck.partitioned,
                &sim_args,
                l.grid,
                block,
                Some(l.traffic),
                &deps,
            )?;
            for b in &plan.write_bufs {
                self.pipeline.note_kernel_write(*b, l.gpu, end);
            }
            for b in &plan.read_bufs {
                self.pipeline.note_kernel_read(*b, l.gpu, end);
            }
            completion = completion.max(end);
            has_work = true;
        }
        // Copies with no kernel after them must still be covered by the
        // window join.
        for c in &plan.copies {
            completion = completion.max(self.pipeline.ready_at(c.vb, c.dst_gpu));
        }

        // ---- deferred tracker commit: advance at submit -------------------
        let mut invalidated = 0usize;
        for u in &plan.updates {
            self.buffers[u.vb.index()].kernel_written = true;
            invalidated += self.buffers[u.vb.index()]
                .tracker
                .update(u.start, u.end, Owner::Device(u.gpu))
                .invalidated;
            debug_assert!(self.buffers[u.vb.index()].tracker.check_invariants());
        }
        self.machine.note_replica_invalidations(invalidated as u64);

        // ---- depth-limited window -----------------------------------------
        if has_work {
            self.pipeline.in_flight.push_back(completion);
            while self.pipeline.depth() > self.config.launch_ahead as usize {
                if let Some(t) = self.pipeline.in_flight.pop_front() {
                    self.machine.join_host(t);
                }
            }
        }
        Ok(())
    }
}
