//! Recursive-descent parser: mini-CUDA source → kernel IR + host text.

use crate::lexer::{lex, Token, TokenKind};
use crate::{ParseError, Result};
use mekong_kernel::{BinOp, Expr, Extent, GridVar, Kernel, KernelParam, ScalarTy, Stmt, UnOp};

/// A parsed translation unit: the device kernels and the host source with
/// kernel definitions removed (what the rewriter operates on).
#[derive(Debug, Clone)]
pub struct Program {
    pub kernels: Vec<Kernel>,
    pub host_source: String,
}

impl Program {
    /// Look up a kernel by name.
    pub fn kernel(&self, name: &str) -> Option<&Kernel> {
        self.kernels.iter().find(|k| k.name == name)
    }
}

/// Parse a mini-CUDA translation unit.
pub fn parse_program(src: &str) -> Result<Program> {
    let tokens = lex(src)?;
    let mut kernels = Vec::new();
    let mut host_source = String::new();
    let mut host_cursor = 0usize; // byte offset into src
    let mut i = 0usize;
    while i < tokens.len() {
        if matches!(&tokens[i].kind, TokenKind::Ident(s) if s == "__global__") {
            // Copy the host text before the kernel.
            host_source.push_str(&src[host_cursor..tokens[i].start]);
            let mut p = Parser {
                toks: &tokens,
                pos: i,
            };
            let kernel = p.kernel()?;
            kernels.push(kernel);
            // Skip past the kernel body in the host text.
            host_cursor = if p.pos < tokens.len() {
                tokens[p.pos].start
            } else {
                src.len()
            };
            i = p.pos;
        } else {
            i += 1;
        }
    }
    host_source.push_str(&src[host_cursor..]);
    Ok(Program {
        kernels,
        host_source,
    })
}

struct Parser<'t> {
    toks: &'t [Token],
    pos: usize,
}

impl<'t> Parser<'t> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        let line = self
            .toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(0);
        Err(ParseError {
            line,
            message: message.into(),
        })
    }

    fn peek(&self) -> Option<&TokenKind> {
        self.toks.get(self.pos).map(|t| &t.kind)
    }

    fn next(&mut self) -> Result<&'t TokenKind> {
        match self.toks.get(self.pos) {
            Some(t) => {
                self.pos += 1;
                Ok(&t.kind)
            }
            None => Err(ParseError {
                line: self.toks.last().map(|t| t.line).unwrap_or(0),
                message: "unexpected end of input".into(),
            }),
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<()> {
        let line = self.toks.get(self.pos).map(|t| t.line).unwrap_or(0);
        let got = self.next()?;
        if got == kind {
            Ok(())
        } else {
            Err(ParseError {
                line,
                message: format!("expected {kind:?}, found {got:?}"),
            })
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == Some(kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next()? {
            TokenKind::Ident(s) => Ok(s.clone()),
            other => {
                self.pos -= 1;
                self.err(format!("expected identifier, found {other:?}"))
            }
        }
    }

    fn scalar_type(&mut self) -> Result<ScalarTy> {
        let name = self.ident()?;
        match name.as_str() {
            "int" | "long" | "size_t" | "unsigned" => Ok(ScalarTy::I64),
            "float" => Ok(ScalarTy::F32),
            "double" => Ok(ScalarTy::F64),
            other => {
                self.pos -= 1;
                self.err(format!("unknown type {other:?}"))
            }
        }
    }

    fn is_type_name(&self) -> bool {
        matches!(self.peek(), Some(TokenKind::Ident(s))
            if matches!(s.as_str(), "int" | "long" | "size_t" | "unsigned" | "float" | "double"))
    }

    // __global__ void name(params) { body }
    fn kernel(&mut self) -> Result<Kernel> {
        let kw = self.ident()?;
        debug_assert_eq!(kw, "__global__");
        let void = self.ident()?;
        if void != "void" {
            return self.err("kernels must return void");
        }
        let name = self.ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                params.push(self.param()?);
                match self.next()? {
                    TokenKind::Comma => continue,
                    TokenKind::RParen => break,
                    other => {
                        self.pos -= 1;
                        return self.err(format!("expected ',' or ')', found {other:?}"));
                    }
                }
            }
        }
        self.expect(&TokenKind::LBrace)?;
        let body = self.block()?;
        Ok(Kernel { name, params, body })
    }

    // type name   |   type name[extent]...   |   type* name (opaque 1-D)
    fn param(&mut self) -> Result<KernelParam> {
        let ty = self.scalar_type()?;
        // `float* a` is rejected with guidance: the dialect needs extents.
        if self.eat(&TokenKind::Star) {
            return self
                .err("pointer parameters are not supported: declare extents, e.g. `float a[n]`");
        }
        let name = self.ident()?;
        let mut extents = Vec::new();
        while self.eat(&TokenKind::LBracket) {
            let e = match self.next()? {
                TokenKind::IntLit(v) => Extent::Const(*v),
                TokenKind::Ident(s) => Extent::Param(s.clone()),
                other => {
                    self.pos -= 1;
                    return self.err(format!("expected extent, found {other:?}"));
                }
            };
            self.expect(&TokenKind::RBracket)?;
            extents.push(e);
        }
        if extents.is_empty() {
            Ok(KernelParam::Scalar { name, ty })
        } else {
            Ok(KernelParam::Array {
                name,
                elem: ty,
                extents,
            })
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>> {
        let mut out = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            if self.peek().is_none() {
                return self.err("unterminated block");
            }
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    fn stmt_or_block(&mut self) -> Result<Vec<Stmt>> {
        if self.eat(&TokenKind::LBrace) {
            self.block()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    fn stmt(&mut self) -> Result<Stmt> {
        // declarations: `int i = ...;` / `float acc = ...;` / `auto x = ...;`
        // (`auto` appears in pretty-printed IR; the initializer determines
        // the type either way).
        let is_auto = matches!(self.peek(), Some(TokenKind::Ident(s)) if s == "auto");
        if self.is_type_name() || is_auto {
            if is_auto {
                self.pos += 1;
            } else {
                let _ty = self.scalar_type()?;
            }
            let var = self.ident()?;
            self.expect(&TokenKind::Assign)?;
            let value = self.expr()?;
            self.expect(&TokenKind::Semi)?;
            return Ok(Stmt::Let { var, value });
        }
        match self.peek() {
            Some(TokenKind::Ident(s)) if s == "if" => {
                self.pos += 1;
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let then_ = self.stmt_or_block()?;
                let else_ = if matches!(self.peek(), Some(TokenKind::Ident(s)) if s == "else") {
                    self.pos += 1;
                    self.stmt_or_block()?
                } else {
                    vec![]
                };
                Ok(Stmt::If { cond, then_, else_ })
            }
            Some(TokenKind::Ident(s)) if s == "for" => self.for_stmt(),
            Some(TokenKind::Ident(s)) if s == "return" => {
                self.pos += 1;
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Return)
            }
            Some(TokenKind::Ident(s)) if s == "__syncthreads" => {
                self.pos += 1;
                self.expect(&TokenKind::LParen)?;
                self.expect(&TokenKind::RParen)?;
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::SyncThreads)
            }
            Some(TokenKind::Ident(_)) => {
                // assignment or store: name ([idx])* = expr ;
                let name = self.ident()?;
                if self.peek() == Some(&TokenKind::LBracket) {
                    let mut indices = Vec::new();
                    while self.eat(&TokenKind::LBracket) {
                        indices.push(self.expr()?);
                        self.expect(&TokenKind::RBracket)?;
                    }
                    self.expect(&TokenKind::Assign)?;
                    let value = self.expr()?;
                    self.expect(&TokenKind::Semi)?;
                    Ok(Stmt::Store {
                        array: name,
                        indices,
                        value,
                    })
                } else if self.eat(&TokenKind::PlusAssign) {
                    let rhs = self.expr()?;
                    self.expect(&TokenKind::Semi)?;
                    Ok(Stmt::Assign {
                        var: name.clone(),
                        value: Expr::bin(BinOp::Add, Expr::Var(name), rhs),
                    })
                } else {
                    self.expect(&TokenKind::Assign)?;
                    let value = self.expr()?;
                    self.expect(&TokenKind::Semi)?;
                    Ok(Stmt::Assign { var: name, value })
                }
            }
            other => self.err(format!("unexpected statement start: {other:?}")),
        }
    }

    // for (int i = lo; i < hi; i++|i += step) body
    fn for_stmt(&mut self) -> Result<Stmt> {
        self.pos += 1; // 'for'
        self.expect(&TokenKind::LParen)?;
        if !self.is_type_name() {
            return self.err("for-loops must declare their iterator (`for (int i = ...`)");
        }
        let _ty = self.scalar_type()?;
        let var = self.ident()?;
        self.expect(&TokenKind::Assign)?;
        let lo = self.expr()?;
        self.expect(&TokenKind::Semi)?;
        let cond_var = self.ident()?;
        if cond_var != var {
            return self.err("for-loop condition must test the iterator");
        }
        self.expect(&TokenKind::Lt)?;
        let hi = self.expr()?;
        self.expect(&TokenKind::Semi)?;
        let inc_var = self.ident()?;
        if inc_var != var {
            return self.err("for-loop increment must update the iterator");
        }
        let step = if self.eat(&TokenKind::PlusPlus) {
            1
        } else if self.eat(&TokenKind::PlusAssign) {
            match self.next()? {
                TokenKind::IntLit(v) if *v > 0 => *v,
                other => {
                    self.pos -= 1;
                    return self.err(format!("expected positive step, found {other:?}"));
                }
            }
        } else {
            return self.err("expected `++` or `+= <step>`");
        };
        self.expect(&TokenKind::RParen)?;
        let body = self.stmt_or_block()?;
        Ok(Stmt::For {
            var,
            lo,
            hi,
            step,
            body,
        })
    }

    // ---- expressions (precedence climbing) -------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr> {
        let cond = self.or_expr()?;
        if self.eat(&TokenKind::Question) {
            let a = self.expr()?;
            self.expect(&TokenKind::Colon)?;
            let b = self.expr()?;
            Ok(Expr::Select(Box::new(cond), Box::new(a), Box::new(b)))
        } else {
            Ok(cond)
        }
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut e = self.and_expr()?;
        while self.eat(&TokenKind::OrOr) {
            e = Expr::bin(BinOp::Or, e, self.and_expr()?);
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut e = self.cmp_expr()?;
        while self.eat(&TokenKind::AndAnd) {
            e = Expr::bin(BinOp::And, e, self.cmp_expr()?);
        }
        Ok(e)
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let mut e = self.add_expr()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Lt) => BinOp::Lt,
                Some(TokenKind::Le) => BinOp::Le,
                Some(TokenKind::Gt) => BinOp::Gt,
                Some(TokenKind::Ge) => BinOp::Ge,
                Some(TokenKind::EqEq) => BinOp::EqEq,
                Some(TokenKind::Ne) => BinOp::Ne,
                _ => break,
            };
            self.pos += 1;
            e = Expr::bin(op, e, self.add_expr()?);
        }
        Ok(e)
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut e = self.mul_expr()?;
        loop {
            if self.eat(&TokenKind::Plus) {
                e = Expr::bin(BinOp::Add, e, self.mul_expr()?);
            } else if self.eat(&TokenKind::Minus) {
                e = Expr::bin(BinOp::Sub, e, self.mul_expr()?);
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut e = self.unary_expr()?;
        loop {
            if self.eat(&TokenKind::Star) {
                e = Expr::bin(BinOp::Mul, e, self.unary_expr()?);
            } else if self.eat(&TokenKind::Slash) {
                e = Expr::bin(BinOp::Div, e, self.unary_expr()?);
            } else if self.eat(&TokenKind::Percent) {
                e = Expr::bin(BinOp::Rem, e, self.unary_expr()?);
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        if self.eat(&TokenKind::Minus) {
            return Ok(Expr::un(UnOp::Neg, self.unary_expr()?));
        }
        if self.eat(&TokenKind::Not) {
            return Ok(Expr::un(UnOp::Not, self.unary_expr()?));
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr> {
        // cast: (float)(...)
        if self.peek() == Some(&TokenKind::LParen) {
            // Lookahead: `( typename )`.
            if let Some(Token {
                kind: TokenKind::Ident(ty),
                ..
            }) = self.toks.get(self.pos + 1)
            {
                let is_cast = matches!(
                    ty.as_str(),
                    "int" | "long" | "float" | "double" | "size_t" | "unsigned"
                ) && self.toks.get(self.pos + 2).map(|t| &t.kind)
                    == Some(&TokenKind::RParen);
                if is_cast {
                    self.pos += 1;
                    let ty = self.scalar_type()?;
                    self.expect(&TokenKind::RParen)?;
                    let inner = self.unary_expr()?;
                    return Ok(Expr::Cast(ty, Box::new(inner)));
                }
            }
            self.pos += 1;
            let e = self.expr()?;
            self.expect(&TokenKind::RParen)?;
            return Ok(e);
        }
        match self.next()? {
            TokenKind::IntLit(v) => Ok(Expr::Int(*v)),
            TokenKind::FloatLit(v) => Ok(Expr::Float(*v)),
            TokenKind::Ident(name) => {
                let name = name.clone();
                // grid intrinsics: blockIdx.x etc.
                if matches!(
                    name.as_str(),
                    "threadIdx" | "blockIdx" | "blockDim" | "gridDim"
                ) {
                    self.expect(&TokenKind::Dot)?;
                    let comp = self.ident()?;
                    let axis = match comp.as_str() {
                        "x" => mekong_kernel::Axis::X,
                        "y" => mekong_kernel::Axis::Y,
                        "z" => mekong_kernel::Axis::Z,
                        other => return self.err(format!("unknown grid component {other:?}")),
                    };
                    let gv = match name.as_str() {
                        "threadIdx" => GridVar::ThreadIdx(axis),
                        "blockIdx" => GridVar::BlockIdx(axis),
                        "blockDim" => GridVar::BlockDim(axis),
                        _ => GridVar::GridDim(axis),
                    };
                    return Ok(Expr::Grid(gv));
                }
                // calls: sqrtf(x), min(a,b), ...
                if self.peek() == Some(&TokenKind::LParen) {
                    self.pos += 1;
                    let mut args = Vec::new();
                    if !self.eat(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            match self.next()? {
                                TokenKind::Comma => continue,
                                TokenKind::RParen => break,
                                other => {
                                    self.pos -= 1;
                                    return self
                                        .err(format!("expected ',' or ')', found {other:?}"));
                                }
                            }
                        }
                    }
                    return self.call(&name, args);
                }
                // array load: name[идx]...
                if self.peek() == Some(&TokenKind::LBracket) {
                    let mut indices = Vec::new();
                    while self.eat(&TokenKind::LBracket) {
                        indices.push(self.expr()?);
                        self.expect(&TokenKind::RBracket)?;
                    }
                    return Ok(Expr::Load {
                        array: name,
                        indices,
                    });
                }
                Ok(Expr::Var(name))
            }
            other => {
                self.pos -= 1;
                self.err(format!("expected expression, found {other:?}"))
            }
        }
    }

    fn call(&mut self, name: &str, mut args: Vec<Expr>) -> Result<Expr> {
        let argc = args.len();
        let one = |args: &mut Vec<Expr>| args.pop().unwrap();
        match (name, argc) {
            ("sqrtf" | "sqrt", 1) => Ok(Expr::un(UnOp::Sqrt, one(&mut args))),
            ("fabsf" | "fabs" | "abs", 1) => Ok(Expr::un(UnOp::Abs, one(&mut args))),
            ("expf" | "exp", 1) => Ok(Expr::un(UnOp::Exp, one(&mut args))),
            ("logf" | "log", 1) => Ok(Expr::un(UnOp::Log, one(&mut args))),
            ("min" | "fminf" | "fmin", 2) => {
                let b = args.pop().unwrap();
                let a = args.pop().unwrap();
                Ok(Expr::bin(BinOp::Min, a, b))
            }
            ("max" | "fmaxf" | "fmax", 2) => {
                let b = args.pop().unwrap();
                let a = args.pop().unwrap();
                Ok(Expr::bin(BinOp::Max, a, b))
            }
            ("rsqrtf" | "rsqrt", 1) => Ok(Expr::bin(
                BinOp::Div,
                Expr::Float(1.0),
                Expr::un(UnOp::Sqrt, one(&mut args)),
            )),
            _ => self.err(format!("unknown function {name:?} with {argc} arguments")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mekong_kernel::pretty::kernel_to_string;

    const VADD: &str = r#"
// vector addition
__global__ void vadd(int n, float a[n], float b[n], float c[n]) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= n) return;
    c[i] = a[i] + b[i];
}

int main() {
    // host code stays verbatim
    vadd<<<grid, block>>>(n, a, b, c);
    return 0;
}
"#;

    #[test]
    fn parses_vadd_and_preserves_host() {
        let prog = parse_program(VADD).unwrap();
        assert_eq!(prog.kernels.len(), 1);
        let k = prog.kernel("vadd").unwrap();
        k.validate().unwrap();
        assert_eq!(k.params.len(), 4);
        assert!(prog.host_source.contains("int main()"));
        assert!(prog.host_source.contains("vadd<<<grid, block>>>"));
        assert!(!prog.host_source.contains("__global__"));
    }

    #[test]
    fn parsed_kernel_executes() {
        use mekong_kernel::{execute_grid, Dim3, ExecMode, KernelArg, ScalarTy, Value, VecMem};
        let prog = parse_program(VADD).unwrap();
        let k = prog.kernel("vadd").unwrap();
        let n = 100usize;
        let mut mem = VecMem::new();
        let a = mem.alloc_from(&(0..n).map(|i| Value::F32(i as f32)).collect::<Vec<_>>());
        let b = mem.alloc_from(
            &(0..n)
                .map(|i| Value::F32(1.0 + i as f32))
                .collect::<Vec<_>>(),
        );
        let c = mem.alloc(n * 4);
        let args = [
            KernelArg::Scalar(Value::I64(n as i64)),
            KernelArg::Array(a),
            KernelArg::Array(b),
            KernelArg::Array(c),
        ];
        execute_grid(
            k,
            &args,
            Dim3::new1(4),
            Dim3::new1(32),
            &mut mem,
            ExecMode::Functional,
        )
        .unwrap();
        let out = mem.read_all(c, ScalarTy::F32);
        assert_eq!(out[10], Value::F32(21.0));
    }

    #[test]
    fn parses_2d_kernel_with_loops() {
        let src = r#"
__global__ void matmul(int n, float A[n][n], float B[n][n], float C[n][n]) {
    int row = blockIdx.y * blockDim.y + threadIdx.y;
    int col = blockIdx.x * blockDim.x + threadIdx.x;
    if (row >= n || col >= n) return;
    float acc = 0.0f;
    for (int k = 0; k < n; k++) {
        acc += A[row][k] * B[k][col];
    }
    C[row][col] = acc;
}
"#;
        let prog = parse_program(src).unwrap();
        let k = prog.kernel("matmul").unwrap();
        k.validate().unwrap();
        let text = kernel_to_string(k);
        assert!(text.contains("for (int k = 0; k < n; k++)"));
        assert!(text.contains("C[row][col]"));
    }

    #[test]
    fn parses_calls_casts_ternary() {
        let src = r#"
__global__ void funcs(int n, float a[n], float o[n]) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= n) return;
    float x = sqrtf(fabsf(a[i]));
    float y = min(x, 1.0f);
    float z = (float)(i % 3);
    o[i] = i > 0 ? y + z : 0.0f;
}
"#;
        let prog = parse_program(src).unwrap();
        prog.kernel("funcs").unwrap().validate().unwrap();
    }

    #[test]
    fn strided_loop_and_else_branch() {
        let src = r#"
__global__ void oddeven(int n, float a[n]) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= n) return;
    if (i % 2 == 0) {
        a[i] = 1.0f;
    } else {
        a[i] = 2.0f;
    }
    for (int j = 0; j < n; j += 4) {
        a[i] = a[i] + 0.0f;
    }
}
"#;
        let prog = parse_program(src).unwrap();
        let k = prog.kernel("oddeven").unwrap();
        k.validate().unwrap();
        let has_step4 = {
            let mut found = false;
            for s in &k.body {
                s.visit(
                    &mut |st| {
                        if let Stmt::For { step, .. } = st {
                            if *step == 4 {
                                found = true;
                            }
                        }
                    },
                    &mut |_| {},
                );
            }
            found
        };
        assert!(has_step4);
    }

    #[test]
    fn multiple_kernels_and_host_interleaved() {
        let src = r#"
int setup() { return 1; }
__global__ void k1(int n, float a[n]) { a[0] = 1.0f; }
void middle() { }
__global__ void k2(int n, float a[n]) { a[1] = 2.0f; }
int main() { return 0; }
"#;
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.kernels.len(), 2);
        assert!(prog.host_source.contains("int setup()"));
        assert!(prog.host_source.contains("void middle()"));
        assert!(prog.host_source.contains("int main()"));
    }

    #[test]
    fn pointer_params_get_helpful_error() {
        let src = "__global__ void f(float* a) { }";
        let err = parse_program(src).unwrap_err();
        assert!(err.message.contains("extents"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let src = "\n\n__global__ void f(int n) {\n    garbage ??? ;\n}";
        let err = parse_program(src).unwrap_err();
        assert!(err.line >= 3, "line was {}", err.line);
    }
}
