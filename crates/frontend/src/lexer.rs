//! Tokenizer for the mini-CUDA dialect.

use crate::{ParseError, Result};

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    Ident(String),
    IntLit(i64),
    FloatLit(f64),
    // punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Dot,
    // operators
    Assign, // =
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
    AndAnd,
    OrOr,
    Not,
    PlusPlus,
    PlusAssign, // +=
    Question,
    Colon,
    Amp, // & (host code pointer-out args)
    // CUDA launch chevrons
    LaunchOpen,  // <<<
    LaunchClose, // >>>
}

/// A token with its source line (1-based) and byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: usize,
    pub start: usize,
}

/// Tokenize `src`. Line comments (`//`) and block comments are skipped.
pub fn lex(src: &str) -> Result<Vec<Token>> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    macro_rules! push {
        ($kind:expr, $n:expr) => {{
            out.push(Token {
                kind: $kind,
                line,
                start: i,
            });
            i += $n;
        }};
    }
    while i < b.len() {
        let c = b[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                i += 2;
                while i + 1 < b.len() && !(b[i] == b'*' && b[i + 1] == b'/') {
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
                i = (i + 2).min(b.len());
            }
            '(' => push!(TokenKind::LParen, 1),
            ')' => push!(TokenKind::RParen, 1),
            '{' => push!(TokenKind::LBrace, 1),
            '}' => push!(TokenKind::RBrace, 1),
            '[' => push!(TokenKind::LBracket, 1),
            ']' => push!(TokenKind::RBracket, 1),
            ',' => push!(TokenKind::Comma, 1),
            ';' => push!(TokenKind::Semi, 1),
            '.' => push!(TokenKind::Dot, 1),
            '?' => push!(TokenKind::Question, 1),
            ':' => push!(TokenKind::Colon, 1),
            '&' => {
                if i + 1 < b.len() && b[i + 1] == b'&' {
                    push!(TokenKind::AndAnd, 2);
                } else {
                    push!(TokenKind::Amp, 1);
                }
            }
            '|' => {
                if i + 1 < b.len() && b[i + 1] == b'|' {
                    push!(TokenKind::OrOr, 2);
                } else {
                    return Err(ParseError {
                        line,
                        message: "single '|' is not supported".into(),
                    });
                }
            }
            '+' => {
                if i + 1 < b.len() && b[i + 1] == b'+' {
                    push!(TokenKind::PlusPlus, 2);
                } else if i + 1 < b.len() && b[i + 1] == b'=' {
                    push!(TokenKind::PlusAssign, 2);
                } else {
                    push!(TokenKind::Plus, 1);
                }
            }
            '-' => push!(TokenKind::Minus, 1),
            '*' => push!(TokenKind::Star, 1),
            '/' => push!(TokenKind::Slash, 1),
            '%' => push!(TokenKind::Percent, 1),
            '!' => {
                if i + 1 < b.len() && b[i + 1] == b'=' {
                    push!(TokenKind::Ne, 2);
                } else {
                    push!(TokenKind::Not, 1);
                }
            }
            '=' => {
                if i + 1 < b.len() && b[i + 1] == b'=' {
                    push!(TokenKind::EqEq, 2);
                } else {
                    push!(TokenKind::Assign, 1);
                }
            }
            '<' => {
                if i + 2 < b.len() && b[i + 1] == b'<' && b[i + 2] == b'<' {
                    push!(TokenKind::LaunchOpen, 3);
                } else if i + 1 < b.len() && b[i + 1] == b'=' {
                    push!(TokenKind::Le, 2);
                } else {
                    push!(TokenKind::Lt, 1);
                }
            }
            '>' => {
                if i + 2 < b.len() && b[i + 1] == b'>' && b[i + 2] == b'>' {
                    push!(TokenKind::LaunchClose, 3);
                } else if i + 1 < b.len() && b[i + 1] == b'=' {
                    push!(TokenKind::Ge, 2);
                } else {
                    push!(TokenKind::Gt, 1);
                }
            }
            '0'..='9' => {
                let start = i;
                let mut is_float = false;
                while i < b.len() && (b[i].is_ascii_digit()) {
                    i += 1;
                }
                if i < b.len() && b[i] == b'.' && i + 1 < b.len() && b[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                } else if i < b.len() && b[i] == b'.' {
                    is_float = true;
                    i += 1;
                }
                if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
                    is_float = true;
                    i += 1;
                    if i < b.len() && (b[i] == b'+' || b[i] == b'-') {
                        i += 1;
                    }
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &src[start..i];
                if i < b.len() && (b[i] == b'f' || b[i] == b'F') {
                    i += 1;
                    is_float = true;
                }
                if is_float {
                    let v: f64 = text.parse().map_err(|_| ParseError {
                        line,
                        message: format!("bad float literal {text:?}"),
                    })?;
                    out.push(Token {
                        kind: TokenKind::FloatLit(v),
                        line,
                        start,
                    });
                } else {
                    let v: i64 = text.parse().map_err(|_| ParseError {
                        line,
                        message: format!("bad integer literal {text:?}"),
                    })?;
                    out.push(Token {
                        kind: TokenKind::IntLit(v),
                        line,
                        start,
                    });
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() && ((b[i] as char).is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push(Token {
                    kind: TokenKind::Ident(src[start..i].to_string()),
                    line,
                    start,
                });
            }
            other => {
                return Err(ParseError {
                    line,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_kernel_header() {
        let toks = lex("__global__ void f(int n, float a[n]) { }").unwrap();
        assert!(matches!(&toks[0].kind, TokenKind::Ident(s) if s == "__global__"));
        assert!(toks.iter().any(|t| t.kind == TokenKind::LBracket));
    }

    #[test]
    fn lexes_launch_chevrons() {
        let toks = lex("k<<<grid, block>>>(a);").unwrap();
        assert!(toks.iter().any(|t| t.kind == TokenKind::LaunchOpen));
        assert!(toks.iter().any(|t| t.kind == TokenKind::LaunchClose));
    }

    #[test]
    fn distinguishes_comparisons_from_chevrons() {
        let toks = lex("a << b").err();
        // "<<" lexes as Lt Lt? Actually '<<' hits the Lt branch twice.
        assert!(toks.is_none());
        let toks = lex("a < b >= c <= d").unwrap();
        assert!(toks.iter().any(|t| t.kind == TokenKind::Ge));
        assert!(toks.iter().any(|t| t.kind == TokenKind::Le));
    }

    #[test]
    fn float_literals_with_suffix() {
        let toks = lex("0.5f 2f 1e-3 7").unwrap();
        assert_eq!(toks[0].kind, TokenKind::FloatLit(0.5));
        assert_eq!(toks[1].kind, TokenKind::FloatLit(2.0));
        assert_eq!(toks[2].kind, TokenKind::FloatLit(1e-3));
        assert_eq!(toks[3].kind, TokenKind::IntLit(7));
    }

    #[test]
    fn comments_are_skipped_and_lines_tracked() {
        let toks = lex("a // comment\n/* multi\nline */ b").unwrap();
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 3);
    }

    #[test]
    fn increment_and_compound_assign() {
        let toks = lex("i++ i += 2").unwrap();
        assert!(toks.iter().any(|t| t.kind == TokenKind::PlusPlus));
        assert!(toks.iter().any(|t| t.kind == TokenKind::PlusAssign));
    }
}
