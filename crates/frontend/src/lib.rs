//! # mekong-frontend — a mini-CUDA front-end
//!
//! The gpucc/Clang substitute: a lexer and recursive-descent parser for a
//! CUDA dialect rich enough to express the paper's benchmarks and the
//! class of regular data-parallel kernels it targets.
//!
//! * `__global__` kernels parse into `mekong-kernel` IR,
//! * everything else (host code) is preserved verbatim for the
//!   source-to-source rewriter (`mekong-rewriter`) — matching the paper's
//!   split: device code goes through the compiler, host code through text
//!   substitution (§3, §5).
//!
//! ## Dialect
//!
//! ```cuda
//! __global__ void vadd(int n, float a[n], float b[n], float c[n]) {
//!     int i = blockIdx.x * blockDim.x + threadIdx.x;
//!     if (i >= n) return;
//!     c[i] = a[i] + b[i];
//! }
//! ```
//!
//! Array parameters carry their extents in the signature (`float a[n][n]`)
//! — the dialect's substitute for the delinearization analysis a
//! production LLVM pass would perform on flat pointers.

pub mod lexer;
pub mod parser;

pub use lexer::{lex, Token, TokenKind};
pub use parser::{parse_program, Program};

/// Frontend errors with source positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Result alias.
pub type Result<T> = std::result::Result<T, ParseError>;
