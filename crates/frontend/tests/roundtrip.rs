//! Round-trip: kernel IR → CUDA-like text (pretty printer) → parser →
//! kernel IR. The printed form of every parsed kernel must re-parse to a
//! semantically identical kernel (verified by interpretation, since
//! pretty-printing normalizes some syntax).

use mekong_frontend::parse_program;
use mekong_kernel::pretty::kernel_to_string;
use mekong_kernel::{
    execute_grid, interp::KernelArg, Dim3, ExecMode, Kernel, ScalarTy, Value, VecMem,
};

/// Run a 1-array-in/1-array-out kernel and return the output buffer.
fn run(k: &Kernel, n: usize, extra_scalar: Option<Value>) -> Vec<Value> {
    let mut mem = VecMem::new();
    let a = mem.alloc_from(
        &(0..n)
            .map(|i| Value::F32(((i * 7) % 23) as f32 * 0.5))
            .collect::<Vec<_>>(),
    );
    let out = mem.alloc(n * 4);
    let mut args = vec![KernelArg::Scalar(Value::I64(n as i64))];
    if let Some(v) = extra_scalar {
        args.push(KernelArg::Scalar(v));
    }
    args.push(KernelArg::Array(a));
    args.push(KernelArg::Array(out));
    execute_grid(
        k,
        &args,
        Dim3::new1((n as u32).div_ceil(32)),
        Dim3::new1(32),
        &mut mem,
        ExecMode::Functional,
    )
    .unwrap();
    mem.read_all(out, ScalarTy::F32)
}

fn roundtrip_and_compare(src: &str, kernel_name: &str, extra_scalar: Option<Value>) {
    let prog = parse_program(src).unwrap();
    let k1 = prog.kernel(kernel_name).unwrap();
    k1.validate().unwrap();
    let printed = kernel_to_string(k1);
    let prog2 = parse_program(&printed)
        .unwrap_or_else(|e| panic!("re-parse of printed kernel failed: {e}\n{printed}"));
    let k2 = prog2.kernel(kernel_name).unwrap();
    k2.validate().unwrap();
    let n = 200;
    assert_eq!(
        run(k1, n, extra_scalar),
        run(k2, n, extra_scalar),
        "printed kernel behaves differently:\n{printed}"
    );
}

#[test]
fn roundtrip_guarded_map() {
    roundtrip_and_compare(
        r#"
__global__ void f(int n, float a[n], float out[n]) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= n) return;
    out[i] = 2.0f * a[i] + 1.0f;
}
"#,
        "f",
        None,
    );
}

#[test]
fn roundtrip_select_and_calls() {
    roundtrip_and_compare(
        r#"
__global__ void f(int n, float a[n], float out[n]) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= n) return;
    float x = sqrtf(fabsf(a[i]));
    out[i] = i % 2 == 0 ? min(x, 1.5f) : max(x, 0.5f);
}
"#,
        "f",
        None,
    );
}

#[test]
fn roundtrip_loops_and_scalar_param() {
    roundtrip_and_compare(
        r#"
__global__ void f(int n, float alpha, float a[n], float out[n]) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= n) return;
    float acc = 0.0f;
    for (int j = 0; j < 4; j++) {
        acc += alpha * a[i] + (float)(j);
    }
    out[i] = acc;
}
"#,
        "f",
        Some(Value::F32(0.75)),
    );
}

#[test]
fn roundtrip_nested_branches() {
    roundtrip_and_compare(
        r#"
__global__ void f(int n, float a[n], float out[n]) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= n) return;
    if (i < n / 2) {
        if (i % 3 == 0) {
            out[i] = a[i];
        } else {
            out[i] = -a[i];
        }
    } else {
        out[i] = 0.0f;
    }
}
"#,
        "f",
        None,
    );
}

#[test]
fn workload_kernels_roundtrip() {
    // The printed form of each benchmark kernel re-parses and validates.
    for src in [
        mekong_workloads::hotspot::SOURCE,
        mekong_workloads::nbody::SOURCE,
        mekong_workloads::matmul::SOURCE,
    ] {
        let prog = parse_program(src).unwrap();
        for k in &prog.kernels {
            let printed = kernel_to_string(k);
            let back =
                parse_program(&printed).unwrap_or_else(|e| panic!("{}: {e}\n{printed}", k.name));
            back.kernel(&k.name).unwrap().validate().unwrap();
        }
    }
}
