//! Robustness: the lexer/parser must never panic — any byte soup either
//! parses or returns a positioned error.

use mekong_frontend::{lex, parse_program};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn lexer_never_panics(src in "\\PC{0,200}") {
        let _ = lex(&src);
    }

    #[test]
    fn parser_never_panics(src in "\\PC{0,200}") {
        let _ = parse_program(&src);
    }

    /// Token-soup built from the dialect's own vocabulary: denser
    /// coverage of parser paths than raw unicode.
    #[test]
    fn parser_survives_vocabulary_soup(words in proptest::collection::vec(
        prop_oneof![
            Just("__global__"), Just("void"), Just("int"), Just("float"),
            Just("if"), Just("else"), Just("for"), Just("return"),
            Just("("), Just(")"), Just("{"), Just("}"), Just("["), Just("]"),
            Just(";"), Just(","), Just("="), Just("=="), Just("<"), Just("+"),
            Just("*"), Just("blockIdx"), Just("."), Just("x"), Just("n"),
            Just("a"), Just("0"), Just("1.5f"), Just("<<<"), Just(">>>"),
            Just("threadIdx"), Just("blockDim"), Just("sqrtf"), Just("?"),
            Just(":"), Just("&&"), Just("auto"),
        ],
        0..60,
    )) {
        let src = words.join(" ");
        let _ = parse_program(&src);
    }

    /// Every successfully parsed kernel must also validate or fail with a
    /// typed error — never panic.
    #[test]
    fn parsed_kernels_validate_without_panicking(words in proptest::collection::vec(
        prop_oneof![
            Just("__global__ void k(int n, float a[n]) {"),
            Just("int i = blockIdx.x * blockDim.x + threadIdx.x;"),
            Just("if (i >= n) return;"),
            Just("a[i] = 1.0f;"),
            Just("for (int j = 0; j < n; j++) { a[j] = 0.0f; }"),
            Just("}"),
        ],
        0..12,
    )) {
        let src = words.join("\n");
        if let Ok(prog) = parse_program(&src) {
            for k in &prog.kernels {
                let _ = k.validate();
            }
        }
    }
}
