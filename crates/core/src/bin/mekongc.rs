//! `mekongc` — the toolchain driver as a command-line compiler.
//!
//! ```text
//! mekongc <input.cu> [--out-dir DIR] [--gpus N] [--run] [--verbose]
//! ```
//!
//! Mirrors the paper's Figure 2 pipeline on a file: runs the two passes,
//! writes the application model (`<stem>.model.json`) and the rewritten
//! host source (`<stem>.mgpu.cu`) next to the input (or into `--out-dir`),
//! and prints a per-kernel report. With `--run`, kernels that take only
//! `(int n, arrays…)` are smoke-executed on a simulated machine.

use mekong_analysis::ArgModel;
use mekong_core::prelude::*;
use std::path::PathBuf;
use std::process::ExitCode;

struct Cli {
    input: PathBuf,
    out_dir: Option<PathBuf>,
    gpus: usize,
    run: bool,
    verbose: bool,
}

fn parse_cli() -> Result<Cli, String> {
    let mut input = None;
    let mut out_dir = None;
    let mut gpus = 4usize;
    let mut run = false;
    let mut verbose = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out-dir" => {
                out_dir = Some(PathBuf::from(args.next().ok_or("--out-dir needs a value")?))
            }
            "--gpus" => {
                gpus = args
                    .next()
                    .ok_or("--gpus needs a value")?
                    .parse()
                    .map_err(|e| format!("--gpus: {e}"))?;
                if gpus == 0 {
                    return Err("--gpus must be at least 1".into());
                }
            }
            "--run" => run = true,
            "--verbose" | "-v" => verbose = true,
            "--help" | "-h" => {
                return Err(
                    "usage: mekongc <input.cu> [--out-dir DIR] [--gpus N] [--run] [-v]".to_string(),
                )
            }
            other if input.is_none() && !other.starts_with('-') => {
                input = Some(PathBuf::from(other))
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(Cli {
        input: input.ok_or("missing input file (try --help)")?,
        out_dir,
        gpus,
        run,
        verbose,
    })
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(c) => c,
        Err(m) => {
            eprintln!("{m}");
            return ExitCode::FAILURE;
        }
    };
    let src = match std::fs::read_to_string(&cli.input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mekongc: cannot read {}: {e}", cli.input.display());
            return ExitCode::FAILURE;
        }
    };
    let program = match compile_source(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("mekongc: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Output artifacts.
    let stem = cli
        .input
        .file_stem()
        .map(|s| s.to_string_lossy().to_string())
        .unwrap_or_else(|| "out".into());
    let dir = cli.out_dir.clone().unwrap_or_else(|| {
        cli.input
            .parent()
            .unwrap_or(std::path::Path::new("."))
            .into()
    });
    let model_path = dir.join(format!("{stem}.model.json"));
    let host_path = dir.join(format!("{stem}.mgpu.cu"));
    if let Err(e) = std::fs::create_dir_all(&dir)
        .and_then(|_| std::fs::write(&model_path, &program.model_json))
        .and_then(|_| std::fs::write(&host_path, &program.rewritten_host))
    {
        eprintln!("mekongc: cannot write outputs: {e}");
        return ExitCode::FAILURE;
    }

    println!(
        "mekongc: {} kernel(s), {} launch site(s) rewritten",
        program.kernels.len(),
        program.launch_sites.len()
    );
    println!("  model: {}", model_path.display());
    println!("  host:  {}", host_path.display());
    println!(
        "  pipeline: pass1 {:.1?}  rewrite {:.1?}  pass2 {:.1?}  ({:.2}x over one pass)",
        program.stats.pass1,
        program.stats.rewrite,
        program.stats.pass2,
        program.stats.total().as_secs_f64() / program.stats.pass2.as_secs_f64().max(1e-9),
    );
    println!();
    let mut all_ok = true;
    for ck in &program.kernels {
        let verdict = if ck.is_partitionable() {
            "partitionable".to_string()
        } else {
            all_ok = false;
            format!("single-device only ({:?})", ck.model.verdict)
        };
        println!(
            "kernel {:<20} split axis {}  {}",
            ck.original.name, ck.model.partitioning, verdict
        );
        if cli.verbose {
            for arg in &ck.model.args {
                if let ArgModel::Array {
                    name, read, write, ..
                } = arg
                {
                    let dir = match (read.is_some(), write.is_some()) {
                        (true, true) => "read+write",
                        (true, false) => "read",
                        (false, true) => "write",
                        (false, false) => "unused",
                    };
                    println!("    array {name:<12} {dir}");
                    if let Some(r) = read {
                        println!("      read  {}", r.map.relation());
                    }
                    if let Some(w) = write {
                        println!("      write {}", w.map.relation());
                    }
                }
            }
        }
    }

    if cli.run {
        println!();
        for ck in &program.kernels {
            if !ck.is_partitionable() {
                continue;
            }
            match smoke_run(ck, cli.gpus) {
                Ok(Some(t)) => println!(
                    "smoke-ran {} on {} simulated GPUs: {:.3} ms",
                    ck.original.name,
                    cli.gpus,
                    t * 1e3
                ),
                Ok(None) => println!(
                    "skipped {} (signature not (int n, arrays…))",
                    ck.original.name
                ),
                Err(e) => {
                    eprintln!("smoke run of {} failed: {e}", ck.original.name);
                    all_ok = false;
                }
            }
        }
    }
    if all_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Execute a kernel of the shape `(int n, float A[n]…, …)` on a small
/// functional machine, just to prove the artifact runs.
fn smoke_run(
    ck: &mekong_runtime::CompiledKernel,
    gpus: usize,
) -> Result<Option<f64>, Box<dyn std::error::Error>> {
    // Signature check: leading int scalar named anything, all other
    // params arrays whose extents only use that scalar.
    let n: i64 = 1024;
    let mut args: Vec<LaunchArg> = Vec::new();
    let mut rt = MgpuRuntime::new(Machine::new(MachineSpec::kepler_system(gpus), true));
    let mut first_scalar = true;
    for arg in &ck.model.args {
        match arg {
            ArgModel::Scalar { ty, .. } => {
                if first_scalar {
                    args.push(LaunchArg::Scalar(Value::I64(n)));
                    first_scalar = false;
                } else {
                    args.push(LaunchArg::Scalar(match ty {
                        mekong_kernel::ScalarTy::I64 => Value::I64(1),
                        mekong_kernel::ScalarTy::F32 => Value::F32(1.0),
                        mekong_kernel::ScalarTy::F64 => Value::F64(1.0),
                    }));
                }
            }
            ArgModel::Array { elem, extents, .. } => {
                let mut elems: i64 = 1;
                for e in extents {
                    elems *= match e {
                        mekong_kernel::Extent::Const(c) => *c,
                        mekong_kernel::Extent::Param(_) => n,
                    };
                }
                let bytes = elems as usize * elem.size_bytes();
                let b = rt.malloc(bytes, elem.size_bytes())?;
                rt.memcpy_h2d(b, &vec![0u8; bytes])?;
                args.push(LaunchArg::Buf(b));
            }
        }
    }
    if first_scalar {
        return Ok(None); // no size scalar to drive a launch
    }
    let block = Dim3::new1(128);
    let grid = Dim3::new1((n as u32).div_ceil(128));
    rt.launch(ck, grid, block, &args)?;
    rt.synchronize();
    Ok(Some(rt.elapsed()))
}
