//! # mekong-core — the Mekong toolchain driver
//!
//! The public facade of the reproduction: everything a user needs to turn
//! a single-GPU mini-CUDA program into a multi-GPU application and run it
//! on the simulated machine.
//!
//! ```
//! use mekong_core::prelude::*;
//!
//! let src = r#"
//! __global__ void scale(int n, float a[n], float b[n]) {
//!     int i = blockIdx.x * blockDim.x + threadIdx.x;
//!     if (i >= n) return;
//!     b[i] = a[i] * 2.0f;
//! }
//! "#;
//! // Two-pass compile (analysis → rewrite → partition/codegen):
//! let program = compile_source(src).unwrap();
//! assert!(program.kernel("scale").unwrap().is_partitionable());
//!
//! // Run on a simulated 4-GPU machine, functionally:
//! let machine = Machine::new(MachineSpec::kepler_system(4), true);
//! let mut rt = MgpuRuntime::new(machine);
//! let n = 1000usize;
//! let a = rt.malloc(n * 4, 4).unwrap();
//! let b = rt.malloc(n * 4, 4).unwrap();
//! let ones: Vec<u8> = std::iter::repeat(1.0f32.to_le_bytes()).take(n).flatten().collect();
//! rt.memcpy_h2d(a, &ones).unwrap();
//! rt.launch(
//!     program.kernel("scale").unwrap(),
//!     Dim3::new1(8), Dim3::new1(128),
//!     &[LaunchArg::Scalar(Value::I64(n as i64)), LaunchArg::Buf(a), LaunchArg::Buf(b)],
//! ).unwrap();
//! rt.synchronize();
//! let mut out = vec![0u8; n * 4];
//! rt.memcpy_d2h(b, &mut out).unwrap();
//! assert_eq!(f32::from_le_bytes(out[..4].try_into().unwrap()), 2.0);
//! ```

pub mod pipeline;
pub mod reference;

pub use pipeline::{compile_source, CompileStats, CompiledProgram};
pub use reference::SingleGpuRunner;

/// Everything commonly needed, re-exported.
pub mod prelude {
    pub use crate::pipeline::{compile_source, CompileStats, CompiledProgram};
    pub use crate::reference::SingleGpuRunner;
    pub use mekong_analysis::{analyze_kernel, AppModel, KernelModel, SplitAxis, Verdict};
    pub use mekong_enumgen::{AccessEnumerator, KernelEnumerators};
    pub use mekong_frontend::parse_program;
    pub use mekong_gpusim::{
        Backend, CpuBackend, DeviceClass, Machine, MachineSpec, SimArg, TimeCat,
    };
    pub use mekong_kernel::builder;
    pub use mekong_kernel::{Dim3, Kernel, ScalarTy, Value};
    pub use mekong_partition::{partition_grid, partition_kernel, Partition};
    pub use mekong_rewriter::rewrite_host;
    pub use mekong_runtime::{CompiledKernel, LaunchArg, MgpuRuntime, RuntimeConfig, VBufId};
}

/// Toolchain errors (aggregation of the stage errors).
#[derive(Debug)]
pub enum MekongError {
    Parse(mekong_frontend::ParseError),
    Runtime(mekong_runtime::RuntimeError),
    Analysis(mekong_analysis::AnalysisError),
}

impl From<mekong_frontend::ParseError> for MekongError {
    fn from(e: mekong_frontend::ParseError) -> Self {
        MekongError::Parse(e)
    }
}

impl From<mekong_runtime::RuntimeError> for MekongError {
    fn from(e: mekong_runtime::RuntimeError) -> Self {
        MekongError::Runtime(e)
    }
}

impl From<mekong_analysis::AnalysisError> for MekongError {
    fn from(e: mekong_analysis::AnalysisError) -> Self {
        MekongError::Analysis(e)
    }
}

impl std::fmt::Display for MekongError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MekongError::Parse(e) => write!(f, "parse: {e}"),
            MekongError::Runtime(e) => write!(f, "runtime: {e}"),
            MekongError::Analysis(e) => write!(f, "analysis: {e}"),
        }
    }
}

impl std::error::Error for MekongError {}

/// Result alias.
pub type Result<T> = std::result::Result<T, MekongError>;
