//! The single-GPU reference path — the "NVCC binary" baseline of §9.
//!
//! Runs the *original* (untransformed) kernel on a one-device machine
//! with plain allocations and copies: no virtual buffers, no tracker, no
//! enumerators. Speedups in Figure 6 are measured against this.

use mekong_gpusim::{DevBuf, Machine, MachineSpec, SimArg};
use mekong_kernel::{Dim3, Kernel, Value};

/// A minimal single-device runner.
pub struct SingleGpuRunner {
    machine: Machine,
}

impl SingleGpuRunner {
    /// A functional (data-materializing) single-GPU machine.
    pub fn functional() -> SingleGpuRunner {
        SingleGpuRunner {
            machine: Machine::new(MachineSpec::kepler_single(), true),
        }
    }

    /// A performance-mode single-GPU machine (timing only).
    pub fn performance() -> SingleGpuRunner {
        SingleGpuRunner {
            machine: Machine::new(MachineSpec::kepler_single(), false),
        }
    }

    /// Access the underlying machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable access (clock resets etc.).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// `cudaMalloc`.
    pub fn malloc(&mut self, bytes: usize) -> DevBuf {
        self.machine.alloc(0, bytes).expect("device 0 exists")
    }

    /// `cudaMemcpy(HostToDevice)`.
    pub fn h2d(&mut self, dst: DevBuf, data: &[u8]) {
        self.machine
            .copy_h2d(data, dst, 0, false)
            .expect("h2d within bounds");
    }

    /// `cudaMemcpy(DeviceToHost)`.
    pub fn d2h(&mut self, src: DevBuf, out: &mut [u8]) {
        self.machine
            .copy_d2h(src, 0, out, false)
            .expect("d2h within bounds");
    }

    /// Launch the kernel over the full grid on device 0.
    pub fn launch(&mut self, kernel: &Kernel, args: &[SimArg], grid: Dim3, block: Dim3) {
        self.machine
            .launch(0, kernel, args, grid, block)
            .expect("reference launch");
    }

    /// Launch with an explicit memory-traffic estimate (the whole-grid
    /// polyhedral footprint) so baseline and partitioned runs share the
    /// same roofline assumptions.
    pub fn launch_with_traffic(
        &mut self,
        kernel: &Kernel,
        args: &[SimArg],
        grid: Dim3,
        block: Dim3,
        traffic: u64,
    ) {
        self.machine
            .launch_with_traffic(0, kernel, args, grid, block, Some(traffic))
            .expect("reference launch");
    }

    /// `cudaDeviceSynchronize`.
    pub fn synchronize(&mut self) {
        self.machine.sync_all();
    }

    /// Elapsed simulated time.
    pub fn elapsed(&self) -> f64 {
        self.machine.now()
    }

    /// Scalar argument helper.
    pub fn scalar(v: i64) -> SimArg {
        SimArg::Scalar(Value::I64(v))
    }

    /// Buffer argument helper.
    pub fn buf(b: DevBuf) -> SimArg {
        SimArg::Buf(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mekong_kernel::builder::*;
    use mekong_kernel::Kernel;

    #[test]
    fn reference_run_computes_and_times() {
        let k = Kernel {
            name: "twice".into(),
            params: vec![
                scalar("n"),
                array_f32("a", &[ext("n")]),
                array_f32("b", &[ext("n")]),
            ],
            body: vec![
                let_("i", global_x()),
                guard_return(v("i").ge(v("n"))),
                store("b", vec![v("i")], load("a", vec![v("i")]) * f(2.0)),
            ],
        };
        let n = 256usize;
        let mut r = SingleGpuRunner::functional();
        let a = r.malloc(n * 4);
        let b = r.malloc(n * 4);
        let data: Vec<u8> = (0..n).flat_map(|i| (i as f32).to_le_bytes()).collect();
        r.h2d(a, &data);
        r.launch(
            &k,
            &[
                SingleGpuRunner::scalar(n as i64),
                SingleGpuRunner::buf(a),
                SingleGpuRunner::buf(b),
            ],
            Dim3::new1(2),
            Dim3::new1(128),
        );
        r.synchronize();
        let mut out = vec![0u8; n * 4];
        r.d2h(b, &mut out);
        let v: Vec<f32> = out
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(v[100], 200.0);
        assert!(r.elapsed() > 0.0);
    }
}
