//! The two-pass compilation pipeline (paper §3, Figure 2).
//!
//! ```text
//! pass 1 (gpucc):  parse  →  polyhedral analysis  →  model to disk
//! rewriter:        host code source-to-source transformation
//! pass 2 (gpucc):  parse again  →  partition kernels  →  polyhedral
//!                  codegen (enumerators)  →  link runtime
//! ```
//!
//! The first pass exists only to obtain the memory-behavior models; its
//! other results are discarded, and the second invocation repeats the
//! front-end work — the paper reports a resulting 1.9×–2.2× compile-time
//! increase, which [`CompileStats`] lets the benchmark harness measure on
//! our pipeline.

use crate::{MekongError, Result};
use mekong_analysis::{analyze_kernel_with, AppModel, ValueRanges};
use mekong_frontend::parse_program;
use mekong_rewriter::{rewrite_host, LaunchSite};
use mekong_runtime::CompiledKernel;
use std::time::{Duration, Instant};

/// Wall-clock timings of the pipeline stages.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileStats {
    /// Pass 1: parse + analysis + model serialization.
    pub pass1: Duration,
    /// Source-to-source rewriting.
    pub rewrite: Duration,
    /// Pass 2: re-parse + partitioning + enumerator generation.
    pub pass2: Duration,
    /// A plain single-pass compile of the same source (parse + validate),
    /// the "NVCC-equivalent" baseline for the compile-time ratio.
    pub single_pass_baseline: Duration,
}

impl CompileStats {
    /// Total toolchain time.
    pub fn total(&self) -> Duration {
        self.pass1 + self.rewrite + self.pass2
    }

    /// Compile-time increase over the single-pass baseline (§3 reports
    /// 1.9×–2.2× for the paper's toolchain).
    pub fn overhead_ratio(&self) -> f64 {
        self.total().as_secs_f64() / self.single_pass_baseline.as_secs_f64().max(1e-12)
    }
}

/// A fully compiled multi-GPU program.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// The application model (what pass 1 wrote to disk).
    pub model: AppModel,
    /// The serialized form of the model (the actual on-disk artifact).
    pub model_json: String,
    /// Per-kernel artifacts for the runtime.
    pub kernels: Vec<CompiledKernel>,
    /// The rewritten host source.
    pub rewritten_host: String,
    /// Launch sites the rewriter expanded.
    pub launch_sites: Vec<LaunchSite>,
    /// Stage timings.
    pub stats: CompileStats,
}

impl CompiledProgram {
    /// Find a compiled kernel by name.
    pub fn kernel(&self, name: &str) -> Option<&CompiledKernel> {
        self.kernels.iter().find(|k| k.original.name == name)
    }
}

/// Run the full two-pass pipeline on a mini-CUDA translation unit.
pub fn compile_source(src: &str) -> Result<CompiledProgram> {
    // Baseline: what a plain compiler does (parse + validate).
    let t0 = Instant::now();
    {
        let prog = parse_program(src)?;
        for k in &prog.kernels {
            k.validate().map_err(|e| {
                MekongError::Parse(mekong_frontend::ParseError {
                    line: 0,
                    message: format!("kernel {}: {e}", k.name),
                })
            })?;
        }
    }
    let single_pass_baseline = t0.elapsed();

    // ---- pass 1: analysis only; all other results discarded (§3) ------
    let t1 = Instant::now();
    let model_json = {
        let prog = parse_program(src)?;
        // Programmer annotations (§11) adjust models the analysis could
        // not establish on its own.
        let annotations = mekong_analysis::scan_annotations(src).map_err(|m| {
            MekongError::Parse(mekong_frontend::ParseError {
                line: 0,
                message: m,
            })
        })?;
        // Value-range annotations feed the interval abstract interpreter
        // *during* analysis (bounding indirect loads); map annotations
        // replace finished access maps afterwards.
        let ranges = mekong_analysis::value_ranges(&annotations).map_err(|m| {
            MekongError::Parse(mekong_frontend::ParseError {
                line: 0,
                message: m,
            })
        })?;
        let empty = ValueRanges::new();
        let mut model = AppModel::default();
        for k in &prog.kernels {
            let mut km = analyze_kernel_with(k, ranges.get(&k.name).unwrap_or(&empty))?;
            mekong_analysis::apply_annotations(&mut km, &annotations)?;
            model.kernels.push(km);
        }
        // "the application model is saved to disk" (§4): serialize.
        model.to_json()
    };
    let pass1 = t1.elapsed();

    // ---- rewriter ------------------------------------------------------
    let t2 = Instant::now();
    let prog1 = parse_program(src)?;
    let rewritten = rewrite_host(&prog1.host_source)?;
    let rewrite = t2.elapsed();

    // ---- pass 2: repeat the front-end, partition, generate enumerators -
    let t3 = Instant::now();
    let prog2 = parse_program(src)?;
    let model = AppModel::from_json(&model_json).map_err(|e| {
        MekongError::Parse(mekong_frontend::ParseError {
            line: 0,
            message: format!("model deserialization failed: {e}"),
        })
    })?;
    let mut kernels = Vec::with_capacity(prog2.kernels.len());
    for k in &prog2.kernels {
        // Pass 2 consumes the model pass 1 wrote to disk (including any
        // annotation adjustments) instead of re-analyzing.
        let km = model.kernel(&k.name).cloned().ok_or_else(|| {
            MekongError::Parse(mekong_frontend::ParseError {
                line: 0,
                message: format!("model file lacks kernel {}", k.name),
            })
        })?;
        kernels.push(CompiledKernel::from_model(k, km)?);
    }
    let pass2 = t3.elapsed();

    Ok(CompiledProgram {
        model,
        model_json,
        kernels,
        rewritten_host: rewritten.source,
        launch_sites: rewritten.launches,
        stats: CompileStats {
            pass1,
            rewrite,
            pass2,
            single_pass_baseline,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
__global__ void vadd(int n, float a[n], float b[n], float c[n]) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= n) return;
    c[i] = a[i] + b[i];
}

int main() {
    float *a, *b, *c;
    cudaMalloc(&a, n * sizeof(float));
    vadd<<<(n + 255) / 256, 256>>>(n, a, b, c);
    cudaDeviceSynchronize();
    return 0;
}
"#;

    #[test]
    fn pipeline_produces_all_artifacts() {
        let p = compile_source(SRC).unwrap();
        assert_eq!(p.kernels.len(), 1);
        assert!(p.kernel("vadd").unwrap().is_partitionable());
        assert!(p.model_json.contains("\"vadd\""));
        assert_eq!(p.model.kernels.len(), 1);
        assert!(p.rewritten_host.contains("mekongMalloc"));
        assert!(p.rewritten_host.contains("mekongLaunchPartition"));
        assert_eq!(p.launch_sites.len(), 1);
    }

    #[test]
    fn model_roundtrips_between_passes() {
        let p = compile_source(SRC).unwrap();
        let k = p.model.kernel("vadd").unwrap();
        assert!(k.verdict.is_partitionable());
        // The deserialized model matches the freshly analyzed one.
        let again = AppModel::from_json(&p.model_json).unwrap();
        assert_eq!(again.kernel("vadd").unwrap().scalar_params, k.scalar_params);
    }

    #[test]
    fn compile_time_overhead_exceeds_baseline() {
        let p = compile_source(SRC).unwrap();
        // Two front-end passes + analysis + codegen: must cost more than
        // one plain parse. (The paper: 1.9×–2.2×; ours is higher since the
        // baseline does no code generation at all.)
        assert!(p.stats.overhead_ratio() > 1.0);
        assert!(p.stats.total() >= p.stats.pass1);
    }

    #[test]
    fn multi_kernel_program() {
        let src = r#"
__global__ void k1(int n, float a[n]) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= n) return;
    a[i] = 1.0f;
}
__global__ void k2(int n, float a[n], float b[n]) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= n) return;
    b[i] = a[i] * 2.0f;
}
"#;
        let p = compile_source(src).unwrap();
        assert_eq!(p.kernels.len(), 2);
        assert!(p.kernel("k1").unwrap().is_partitionable());
        assert!(p.kernel("k2").unwrap().is_partitionable());
    }
}
