//! Property-based tests for the polyhedral library.
//!
//! Strategy: generate random bounded convex polyhedra (a bounding box plus
//! random affine cuts) and check the algebraic laws that the toolchain
//! relies on — soundness of projection, exactness of enumeration,
//! consistency of union/intersection, and membership coherence.

use mekong_poly::{Constraint, Enumerator, LinExpr, Polyhedron, Set, Space};
use proptest::prelude::*;

const BOX: i64 = 6;

/// A random affine constraint over `n` dims with small coefficients.
fn arb_cut(n: usize) -> impl Strategy<Value = Constraint> {
    (
        proptest::collection::vec(-2i64..=2, n),
        -(2 * BOX)..=(2 * BOX),
    )
        .prop_map(move |(coeffs, k)| Constraint::ge0(LinExpr { coeffs, konst: k }))
}

/// A random bounded convex polyhedron: `0 <= d_i <= BOX` plus up to 3 cuts.
fn arb_poly(n: usize) -> impl Strategy<Value = Polyhedron> {
    proptest::collection::vec(arb_cut(n), 0..=3).prop_map(move |cuts| {
        let mut p = Polyhedron::universe(n, 0);
        for d in 0..n {
            let v = LinExpr::var(n, d);
            p.add_constraint(Constraint::ge0(v.clone()));
            p.add_constraint(Constraint::le(&v, &LinExpr::constant(n, BOX)).unwrap());
        }
        for c in cuts {
            p.add_constraint(c);
        }
        p
    })
}

fn arb_set(n: usize) -> impl Strategy<Value = Set> {
    proptest::collection::vec(arb_poly(n), 1..=2)
        .prop_map(move |pieces| Set::from_pieces(Space::anonymous(n, 0), pieces))
}

fn points(s: &Set) -> Vec<Vec<i64>> {
    s.points_sorted(&[])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Projection must contain the projection of every point (soundness).
    #[test]
    fn projection_is_sound(p in arb_poly(3)) {
        let space = Space::anonymous(3, 0);
        let s = Set::from_polyhedron(space, p);
        let proj = s.project_out_dims(2..3).unwrap();
        let mut ok = true;
        s.for_each_point(&[], &mut |pt| {
            if !proj.contains(&pt[..2], &[]) {
                ok = false;
            }
        }).unwrap();
        prop_assert!(ok, "projection lost a point");
    }

    /// When the projection reports exactness, it contains exactly the
    /// projected points.
    #[test]
    fn exact_projection_is_tight(p in arb_poly(2)) {
        let space = Space::anonymous(2, 0);
        let s = Set::from_polyhedron(space, p);
        let proj = s.project_out_dims(1..2).unwrap();
        if proj.is_exact() {
            let mut shadow: Vec<i64> = Vec::new();
            s.for_each_point(&[], &mut |pt| shadow.push(pt[0])).unwrap();
            shadow.sort();
            shadow.dedup();
            let got: Vec<i64> = proj.points_sorted(&[]).into_iter().map(|p| p[0]).collect();
            prop_assert_eq!(got, shadow);
        }
    }

    /// Union contains both operands; intersection is contained in both.
    #[test]
    fn union_intersection_lattice(a in arb_set(2), b in arb_set(2)) {
        let u = a.union(&b).unwrap();
        let i = a.intersect(&b).unwrap();
        for pt in points(&a) {
            prop_assert!(u.contains(&pt, &[]));
        }
        for pt in points(&b) {
            prop_assert!(u.contains(&pt, &[]));
        }
        for pt in points(&i) {
            prop_assert!(a.contains(&pt, &[]) && b.contains(&pt, &[]));
        }
        // inclusion-exclusion on counts
        prop_assert_eq!(
            u.count_points(&[]) + i.count_points(&[]),
            a.count_points(&[]) + b.count_points(&[])
        );
    }

    /// The enumerator emits exactly the points of the set.
    #[test]
    fn enumerator_matches_bruteforce(s in arb_set(2)) {
        let e = Enumerator::build(&s).unwrap();
        let mut got = Vec::new();
        for r in e.rows_merged(&[]) {
            for x in r.lo..=r.hi {
                let mut pt = r.prefix.clone();
                pt.push(x);
                got.push(pt);
            }
        }
        got.sort();
        got.dedup();
        prop_assert_eq!(got, points(&s));
    }

    /// Enumerator row ranges never overlap after merging (per prefix).
    #[test]
    fn merged_rows_are_disjoint(s in arb_set(2)) {
        let e = Enumerator::build(&s).unwrap();
        let rows = e.rows_merged(&[]);
        for w in rows.windows(2) {
            if w[0].prefix == w[1].prefix {
                prop_assert!(w[0].hi + 1 < w[1].lo, "rows {:?} and {:?} touch", w[0], w[1]);
            }
        }
    }

    /// `contains` agrees with enumeration over the bounding box.
    #[test]
    fn contains_agrees_with_enumeration(p in arb_poly(2)) {
        let space = Space::anonymous(2, 0);
        let s = Set::from_polyhedron(space, p);
        let pts = points(&s);
        for d0 in -1..=BOX + 1 {
            for d1 in -1..=BOX + 1 {
                let inside = s.contains(&[d0, d1], &[]);
                prop_assert_eq!(inside, pts.contains(&vec![d0, d1]));
            }
        }
    }

    /// Emptiness check agrees with point enumeration.
    #[test]
    fn emptiness_agrees(p in arb_poly(3)) {
        let empty = p.is_empty_concrete(&[]).unwrap();
        let n = {
            let mut n = 0u64;
            p.for_each_point(&[], &mut |_| n += 1).unwrap();
            n
        };
        if empty {
            prop_assert_eq!(n, 0, "claimed empty but has points");
        }
        // `!empty` may be conservative only when FM was inexact; with
        // coefficients in [-2, 2] a false "non-empty" can occur, so we only
        // check the sound direction above.
    }

    /// fix_dim slices the set like point filtering does.
    #[test]
    fn fix_dim_is_slice(s in arb_set(2), v in 0..=BOX) {
        let sliced = s.fix_dim(0, v).unwrap();
        let expected: Vec<Vec<i64>> = points(&s)
            .into_iter()
            .filter(|p| p[0] == v)
            .collect();
        prop_assert_eq!(points(&sliced), expected);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Subtraction is exact: A \ B contains exactly the points of A not
    /// in B, and the pieces of the result are pairwise disjoint with B.
    #[test]
    fn subtraction_matches_pointwise(a in arb_set(2), b in arb_set(2)) {
        let d = a.subtract(&b).unwrap();
        let expected: Vec<Vec<i64>> = points(&a)
            .into_iter()
            .filter(|p| !b.contains(p, &[]))
            .collect();
        prop_assert_eq!(points(&d), expected);
    }

    /// (A \ B) ∪ (A ∩ B) == A.
    #[test]
    fn subtract_and_intersect_partition(a in arb_set(2), b in arb_set(2)) {
        let d = a.subtract(&b).unwrap();
        let i = a.intersect(&b).unwrap();
        let u = d.union(&i).unwrap();
        prop_assert_eq!(points(&u), points(&a));
    }

    /// Coalescing never changes the point set.
    #[test]
    fn coalesce_preserves_points(s in arb_set(2)) {
        let ctx = Polyhedron::universe(0, 0);
        let c = s.coalesce(&ctx).unwrap();
        prop_assert!(c.pieces().len() <= s.pieces().len());
        prop_assert_eq!(points(&c), points(&s));
    }

    /// reverse(reverse(m)) relates the same pairs as m.
    #[test]
    fn reverse_is_involutive(s in arb_set(2)) {
        // Build a map from the set: { [x] -> [y] : (x, y) in s }.
        let m = mekong_poly::Map::from_relation(1, s.clone());
        let rr = m.reverse().reverse();
        let mut pairs_a = Vec::new();
        m.for_each_pair(&[], &mut |i, o| pairs_a.push((i.to_vec(), o.to_vec()))).unwrap();
        let mut pairs_b = Vec::new();
        rr.for_each_pair(&[], &mut |i, o| pairs_b.push((i.to_vec(), o.to_vec()))).unwrap();
        pairs_a.sort();
        pairs_b.sort();
        prop_assert_eq!(pairs_a, pairs_b);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Translating a set by (a, b) preserves its cardinality (Figure 1).
    #[test]
    fn translation_preserves_count(s in arb_set(2), a in -3i64..=3, b in -3i64..=3) {
        let m = mekong_poly::Map::parse(&format!(
            "{{ [y, x] -> [y1, x1] : y1 = y + {a} and x1 = x + {b} }}"
        )).unwrap();
        // Rename: our arb_set uses anonymous names, parse uses y/x; shapes
        // are compatible (names are documentation only).
        let img = m.image(&s).unwrap();
        prop_assert_eq!(img.count_points(&[]), s.count_points(&[]));
    }
}
