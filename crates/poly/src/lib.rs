//! # mekong-poly — an integer set library for polyhedral compilation
//!
//! A from-scratch replacement for the subset of [isl] that the Mekong
//! toolchain needs (see the paper, §2.4 and §6). It provides:
//!
//! * [`LinExpr`] — affine expressions over named dimensions and parameters,
//! * [`Constraint`] — equalities and inequalities in Presburger-style form,
//! * [`Polyhedron`] — a single convex Z-polyhedron (conjunction of
//!   constraints),
//! * [`Set`] — a union of convex Z-polyhedra over a common [`Space`],
//! * [`Map`] — an integer relation `Z^n → Z^d`, stored as a set over the
//!   concatenated input/output space,
//! * Fourier–Motzkin elimination ([`fm`]) with integer tightening and
//!   exactness tracking,
//! * emptiness and injectivity tests,
//! * an isl-style **code generator** ([`codegen`]) that turns a set into an
//!   AST of loops, guards and closed-form affine expressions which scans the
//!   set row by row — the "enumerator" of the paper's §6.
//!
//! ## Exactness
//!
//! Fourier–Motzkin elimination over the rationals may over-approximate the
//! integer projection. Every operation that can lose integer precision
//! records this in the result's [`Set::is_exact`] flag. The toolchain uses
//! this the same way the paper does: read sets may be over-approximated,
//! write sets must be exact (§4).
//!
//! ## Example
//!
//! The sets from Figure 1 of the paper:
//!
//! ```
//! use mekong_poly::{Set, Map};
//! // S1 = { [y, x] : 0 <= y <= x and 0 <= x <= 4 }
//! let s1 = Set::parse("{ [y, x] : 0 <= y and y <= x and 0 <= x and x <= 4 }").unwrap();
//! // M = { [y, x] -> [y + 1, x + 3] }
//! let m = Map::parse("{ [y, x] -> [y1, x1] : y1 = y + 1 and x1 = x + 3 }").unwrap();
//! let s2 = m.image(&s1).unwrap();
//! assert_eq!(s1.count_points(&[]), 15);
//! assert_eq!(s2.count_points(&[]), 15);
//! let u = s1.union(&s2).unwrap();
//! // |S1 ∪ S2| = |S1| + |S2| - |S1 ∩ S2|
//! assert_eq!(u.count_points(&[]), s1.count_points(&[]) + s2.count_points(&[])
//!     - s1.intersect(&s2).unwrap().count_points(&[]));
//! ```
//!
//! [isl]: https://libisl.sourceforge.io/

pub mod algebra;
pub mod codegen;
pub mod constraint;
pub mod expr;
pub mod fm;
pub mod map;
pub mod parse;
pub mod polyhedron;
pub mod set;
pub mod space;

pub use codegen::{AstExpr, Enumerator, LoopSpec, PieceNest, RowRange};
pub use constraint::{Constraint, ConstraintKind};
pub use expr::LinExpr;
pub use map::Map;
pub use polyhedron::Polyhedron;
pub use set::Set;
pub use space::Space;

/// Errors produced by polyhedral operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolyError {
    /// Two operands live in incompatible spaces.
    SpaceMismatch {
        expected: (usize, usize),
        got: (usize, usize),
    },
    /// Integer overflow while combining constraints.
    Overflow,
    /// Parse error with message.
    Parse(String),
    /// A dimension index was out of range.
    DimOutOfRange { index: usize, n_dims: usize },
    /// A set dimension has no finite lower or upper bound, so the set
    /// cannot be scanned by generated code.
    Unbounded { dim: usize },
}

impl std::fmt::Display for PolyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolyError::SpaceMismatch { expected, got } => write!(
                f,
                "space mismatch: expected {}d/{}p, got {}d/{}p",
                expected.0, expected.1, got.0, got.1
            ),
            PolyError::Overflow => write!(f, "integer overflow in constraint arithmetic"),
            PolyError::Parse(m) => write!(f, "parse error: {m}"),
            PolyError::DimOutOfRange { index, n_dims } => {
                write!(f, "dimension {index} out of range (set has {n_dims} dims)")
            }
            PolyError::Unbounded { dim } => {
                write!(
                    f,
                    "set dimension {dim} is unbounded; cannot generate a scan"
                )
            }
        }
    }
}

impl std::error::Error for PolyError {}

/// Result alias for fallible polyhedral operations.
pub type Result<T> = std::result::Result<T, PolyError>;
