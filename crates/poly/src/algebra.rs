//! Higher-level set/map algebra: subtraction, composition, reversal,
//! single-valuedness, and piece coalescing — the remainder of the isl
//! operation surface the toolchain's clients (and downstream users of
//! this library) expect.

use crate::constraint::{Constraint, ConstraintKind};
use crate::expr::LinExpr;
use crate::map::Map;
use crate::polyhedron::Polyhedron;
use crate::set::Set;
use crate::space::Space;
use crate::Result;

/// The negation of a single constraint, as a disjunction of constraints
/// (one for `>=`, two for `==`).
fn negate(c: &Constraint) -> Vec<Constraint> {
    match c.kind {
        // ¬(e >= 0)  ≡  e <= -1  ≡  -e - 1 >= 0
        ConstraintKind::GeZero => {
            let mut e = c.expr.neg();
            e.konst -= 1;
            vec![Constraint::ge0(e)]
        }
        // ¬(e == 0)  ≡  e <= -1  ∨  e >= 1
        ConstraintKind::Eq => {
            let mut below = c.expr.neg();
            below.konst -= 1;
            let mut above = c.expr.clone();
            above.konst -= 1;
            vec![Constraint::ge0(below), Constraint::ge0(above)]
        }
    }
}

/// `piece \ cut` for convex `cut`: the classic disjoint decomposition
/// `∪_i (piece ∧ c_1 ∧ … ∧ c_{i-1} ∧ ¬c_i)`.
fn subtract_piece(piece: &Polyhedron, cut: &Polyhedron) -> Vec<Polyhedron> {
    let mut out = Vec::new();
    let mut prefix = piece.clone();
    for c in cut.constraints() {
        for neg in negate(c) {
            let q = prefix.clone().with_constraint(neg);
            if !q.is_marked_empty() {
                out.push(q);
            }
        }
        prefix.add_constraint(c.clone());
        if prefix.is_marked_empty() {
            break;
        }
    }
    out
}

impl Set {
    /// Set difference `self \ other`.
    ///
    /// Exact (up to the over-approximation flags already carried by the
    /// operands); the result's piece count can grow with the product of
    /// constraint counts, which is fine at toolchain sizes.
    pub fn subtract(&self, other: &Set) -> Result<Set> {
        if !self.space().compatible(other.space()) {
            return Err(crate::PolyError::SpaceMismatch {
                expected: (self.n_dims(), self.n_params()),
                got: (other.n_dims(), other.n_params()),
            });
        }
        let mut pieces: Vec<Polyhedron> = self.pieces().to_vec();
        for cut in other.pieces() {
            let mut next = Vec::new();
            for p in &pieces {
                next.extend(subtract_piece(p, cut));
            }
            pieces = next;
            if pieces.is_empty() {
                break;
            }
        }
        let mut out = Set::from_pieces(self.space().clone(), pieces);
        if !self.is_exact() || !other.is_exact() {
            out.set_inexact();
        }
        Ok(out)
    }

    /// Remove pieces that are provably contained in another piece (under
    /// the parameter context `ctx`, a polyhedron with zero set dims).
    /// Purely an optimization: the resulting union covers the same points.
    pub fn coalesce(&self, ctx: &Polyhedron) -> Result<Set> {
        let pieces = self.pieces();
        let mut keep = vec![true; pieces.len()];
        for i in 0..pieces.len() {
            if !keep[i] {
                continue;
            }
            for j in 0..pieces.len() {
                if i == j || !keep[j] {
                    continue;
                }
                // piece[j] ⊆ piece[i]  ⇔  piece[j] ∧ ¬c is empty for every
                // constraint c of piece[i].
                if piece_subset_of(&pieces[j], &pieces[i], ctx)? {
                    keep[j] = false;
                }
            }
        }
        let kept: Vec<Polyhedron> = pieces
            .iter()
            .zip(&keep)
            .filter(|(_, k)| **k)
            .map(|(p, _)| p.clone())
            .collect();
        let mut out = Set::from_pieces(self.space().clone(), kept);
        if !self.is_exact() {
            out.set_inexact();
        }
        Ok(out)
    }

    /// Provable subset test under a parameter context: `self ⊆ other`.
    /// Conservative (`false` = could not prove).
    pub fn is_subset_symbolic(&self, other: &Set, ctx: &Polyhedron) -> Result<bool> {
        // self ⊆ ∪ other.pieces  ⇐  (self \ other) empty.
        let diff = self.subtract(other)?;
        diff.is_empty_symbolic(ctx)
    }
}

fn piece_subset_of(a: &Polyhedron, b: &Polyhedron, ctx: &Polyhedron) -> Result<bool> {
    for c in b.constraints() {
        for neg in negate(c) {
            let q = a.clone().with_constraint(neg);
            if !q.is_empty_symbolic(ctx)? {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

impl Map {
    /// The reversed relation `{ y -> x : x -> y ∈ self }`.
    pub fn reverse(&self) -> Map {
        let n = self.n_in();
        let d = self.n_out();
        let np = self.n_params();
        let rel = self.relation();
        let old_names = rel.space().dim_names();
        let mut names: Vec<String> = old_names[n..].to_vec();
        names.extend(old_names[..n].iter().cloned());
        let space = Space::from_names(names, rel.space().param_names().to_vec());
        let permute = |e: &LinExpr| -> LinExpr {
            let mut coeffs = vec![0i64; d + n + np];
            coeffs[..d].copy_from_slice(&e.coeffs[n..n + d]);
            coeffs[d..d + n].copy_from_slice(&e.coeffs[..n]);
            coeffs[d + n..].copy_from_slice(&e.coeffs[n + d..]);
            LinExpr {
                coeffs,
                konst: e.konst,
            }
        };
        let pieces: Vec<Polyhedron> = rel
            .pieces()
            .iter()
            .map(|p| {
                let mut q = Polyhedron::universe(d + n, np);
                for c in p.constraints() {
                    q.add_constraint(Constraint {
                        kind: c.kind,
                        expr: permute(&c.expr),
                    });
                }
                q
            })
            .collect();
        let mut set = Set::from_pieces(space, pieces);
        if !rel.is_exact() {
            set.set_inexact();
        }
        Map::from_relation(d, set)
    }

    /// Relation composition `other ∘ self`: `{ x -> z : ∃y. x -> y ∈ self
    /// ∧ y -> z ∈ other }`. Exactness degrades if the existential
    /// projection loses integer precision.
    pub fn compose(&self, other: &Map) -> Result<Map> {
        let n = self.n_in();
        let m = self.n_out();
        assert_eq!(
            m,
            other.n_in(),
            "compose: intermediate dimensions must agree"
        );
        let k = other.n_out();
        let np = self.n_params();
        assert_eq!(np, other.n_params());

        // Combined space [x(n), y(m), z(k)].
        let total = n + m + k;
        let widen_self = |e: &LinExpr| -> LinExpr {
            // self constraints live over [x, y, params] -> insert z.
            e.insert_vars(n + m, k)
        };
        let widen_other = |e: &LinExpr| -> LinExpr {
            // other constraints live over [y, z, params] -> prepend x.
            e.insert_vars(0, n)
        };
        let mut pieces = Vec::new();
        for a in self.relation().pieces() {
            for b in other.relation().pieces() {
                let mut q = Polyhedron::universe(total, np);
                for c in a.constraints() {
                    q.add_constraint(Constraint {
                        kind: c.kind,
                        expr: widen_self(&c.expr),
                    });
                }
                for c in b.constraints() {
                    q.add_constraint(Constraint {
                        kind: c.kind,
                        expr: widen_other(&c.expr),
                    });
                }
                if !q.is_marked_empty() {
                    pieces.push(q);
                }
            }
        }
        let mut dim_names: Vec<String> = self.relation().space().dim_names()[..n].to_vec();
        // Fresh middle names to avoid collisions, then output names.
        for i in 0..m {
            dim_names.push(format!("__mid{i}"));
        }
        for name in &other.relation().space().dim_names()[other.n_in()..] {
            // Avoid duplicate names with inputs.
            let candidate = if dim_names.contains(name) {
                format!("{name}__out")
            } else {
                name.clone()
            };
            dim_names.push(candidate);
        }
        let space = Space::from_names(dim_names, self.relation().space().param_names().to_vec());
        let combined = Set::from_pieces(space, pieces);
        // Project out the middle block.
        let projected = combined.project_out_dims(n..n + m)?;
        let mut rel = projected;
        if !self.is_exact() || !other.is_exact() {
            rel.set_inexact();
        }
        Ok(Map::from_relation(n, rel))
    }

    /// Is the map single-valued (a partial function)? Proves that no input
    /// relates to two distinct outputs, under the parameter context.
    /// Conservative: `false` = could not prove.
    pub fn is_single_valued(&self, ctx: &Polyhedron) -> Result<bool> {
        let n = self.n_in();
        let d = self.n_out();
        let np = self.n_params();
        // Space [x(n), y(d), y'(d)].
        let width = n + 2 * d + np;
        for a in self.relation().pieces() {
            for b in self.relation().pieces() {
                let mut sys = Polyhedron::universe(n + 2 * d, np);
                for c in a.constraints() {
                    // over [x, y, params] -> insert y' after y
                    sys.add_constraint(Constraint {
                        kind: c.kind,
                        expr: c.expr.insert_vars(n + d, d),
                    });
                }
                for c in b.constraints() {
                    // over [x, y', params]: insert y between x and y'.
                    sys.add_constraint(Constraint {
                        kind: c.kind,
                        expr: c.expr.insert_vars(n, d),
                    });
                }
                if sys.is_marked_empty() {
                    continue;
                }
                // y != y' in some coordinate and direction.
                for j in 0..d {
                    for &less in &[true, false] {
                        let y = LinExpr::var(width, n + j);
                        let y2 = LinExpr::var(width, n + d + j);
                        let cons = if less {
                            Constraint::lt(&y, &y2)?
                        } else {
                            Constraint::lt(&y2, &y)?
                        };
                        let s = sys.clone().with_constraint(cons);
                        if !s.is_empty_symbolic(ctx)? {
                            return Ok(false);
                        }
                    }
                }
            }
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::Map;
    use crate::set::Set;

    #[test]
    fn subtract_interval() {
        let a = Set::parse("{ [x] : 0 <= x <= 9 }").unwrap();
        let b = Set::parse("{ [x] : 3 <= x <= 5 }").unwrap();
        let d = a.subtract(&b).unwrap();
        assert_eq!(
            d.points_sorted(&[]),
            vec![
                vec![0],
                vec![1],
                vec![2],
                vec![6],
                vec![7],
                vec![8],
                vec![9]
            ]
        );
        // Subtracting everything leaves nothing.
        let e = a.subtract(&a).unwrap();
        assert_eq!(e.count_points(&[]), 0);
    }

    #[test]
    fn subtract_2d_hole() {
        let a = Set::parse("{ [y, x] : 0 <= y <= 4 and 0 <= x <= 4 }").unwrap();
        let hole = Set::parse("{ [y, x] : y = 2 and x = 2 }").unwrap();
        let d = a.subtract(&hole).unwrap();
        assert_eq!(d.count_points(&[]), 24);
        assert!(!d.contains(&[2, 2], &[]));
        assert!(d.contains(&[2, 3], &[]));
    }

    #[test]
    fn subtract_union_cut() {
        let a = Set::parse("{ [x] : 0 <= x <= 9 }").unwrap();
        let b = Set::parse("{ [x] : 0 <= x <= 2 or 7 <= x <= 9 }").unwrap();
        let d = a.subtract(&b).unwrap();
        assert_eq!(
            d.points_sorted(&[]),
            vec![vec![3], vec![4], vec![5], vec![6]]
        );
    }

    #[test]
    fn reverse_roundtrips() {
        let m = Map::parse("[n] -> { [i] -> [a, b] : a = i + 1 and b = 2i and 0 <= i and i < n }")
            .unwrap();
        let r = m.reverse();
        assert_eq!(r.n_in(), 2);
        assert_eq!(r.n_out(), 1);
        // (i=3) -> (4, 6); reversed: (4, 6) -> 3.
        assert_eq!(r.apply_point(&[4, 6], &[10]).unwrap(), vec![vec![3]]);
        let rr = r.reverse();
        assert_eq!(rr.apply_point(&[3], &[10]).unwrap(), vec![vec![4, 6]]);
    }

    #[test]
    fn compose_translations() {
        let f = Map::parse("{ [x] -> [y] : y = x + 2 }").unwrap();
        let g = Map::parse("{ [x] -> [y] : y = 3x }").unwrap();
        // g ∘ f: x -> 3(x + 2)
        let gf = f.compose(&g).unwrap();
        assert_eq!(gf.apply_point(&[4], &[]).unwrap(), vec![vec![18]]);
        // f ∘ g: x -> 3x + 2
        let fg = g.compose(&f).unwrap();
        assert_eq!(fg.apply_point(&[4], &[]).unwrap(), vec![vec![14]]);
    }

    #[test]
    fn compose_with_relation() {
        // f: i -> {i, i+1}; g: j -> j + 3. g∘f: i -> {i+3, i+4}.
        let f = Map::parse("{ [i] -> [j] : i <= j and j <= i + 1 }").unwrap();
        let g = Map::parse("{ [j] -> [k] : k = j + 3 }").unwrap();
        let gf = f.compose(&g).unwrap();
        assert!(gf.is_exact());
        assert_eq!(gf.apply_point(&[5], &[]).unwrap(), vec![vec![8], vec![9]]);
    }

    #[test]
    fn strided_compose_over_approximates_and_is_flagged() {
        // Eliminating the middle dimension of k = 2j needs an existential
        // divisor isl would keep; our FM-based projection produces the
        // interval superset and must flag the result inexact.
        let f = Map::parse("{ [i] -> [j] : i <= j and j <= i + 1 }").unwrap();
        let g = Map::parse("{ [j] -> [k] : k = 2j }").unwrap();
        let gf = f.compose(&g).unwrap();
        assert!(!gf.is_exact(), "strided compose must be flagged");
        let outs = gf.apply_point(&[5], &[]).unwrap();
        // Superset of the true image {10, 12}.
        assert!(outs.contains(&vec![10]) && outs.contains(&vec![12]));
    }

    #[test]
    fn single_valued_detection() {
        let ctx = Polyhedron::universe(0, 1);
        let f = Map::parse("[n] -> { [i] -> [j] : j = 2i + 1 and 0 <= i and i < n }").unwrap();
        assert!(f.is_single_valued(&ctx).unwrap());
        let r = Map::parse("[n] -> { [i] -> [j] : i <= j and j <= i + 1 and 0 <= i and i < n }")
            .unwrap();
        assert!(!r.is_single_valued(&ctx).unwrap());
    }

    #[test]
    fn coalesce_drops_contained_pieces() {
        let s = Set::parse("{ [x] : 0 <= x <= 9 or 2 <= x <= 5 or 4 <= x <= 12 }").unwrap();
        assert_eq!(s.pieces().len(), 3);
        let ctx = Polyhedron::universe(0, 0);
        let c = s.coalesce(&ctx).unwrap();
        assert_eq!(c.pieces().len(), 2); // middle piece is inside the first
        assert_eq!(c.count_points(&[]), s.count_points(&[]));
    }

    #[test]
    fn subset_symbolic() {
        let ctx = Polyhedron::universe(0, 1);
        let small = Set::parse("[n] -> { [x] : 1 <= x and x < n }").unwrap();
        let big = Set::parse("[n] -> { [x] : 0 <= x and x <= n }").unwrap();
        assert!(small.is_subset_symbolic(&big, &ctx).unwrap());
        assert!(!big.is_subset_symbolic(&small, &ctx).unwrap());
    }

    #[test]
    fn compose_respects_domains() {
        // f restricted to [0, 5); g restricted to even-ish outputs via
        // bounds. Composition domain is the preimage that survives both.
        let f = Map::parse("{ [x] -> [y] : y = x + 1 and 0 <= x and x < 5 }").unwrap();
        let g = Map::parse("{ [y] -> [z] : z = y and 2 <= y and y <= 3 }").unwrap();
        let gf = f.compose(&g).unwrap();
        let dom = gf.domain().unwrap();
        assert_eq!(dom.points_sorted(&[]), vec![vec![1], vec![2]]);
    }
}
