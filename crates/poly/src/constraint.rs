//! Equality and inequality constraints.

use crate::expr::{gcd_u64, LinExpr};
use serde::{Deserialize, Serialize};

/// Kind of a [`Constraint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConstraintKind {
    /// `expr == 0`
    Eq,
    /// `expr >= 0`
    GeZero,
}

/// A single affine constraint `expr == 0` or `expr >= 0`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Constraint {
    pub kind: ConstraintKind,
    pub expr: LinExpr,
}

/// Outcome of normalizing a constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Normalized {
    /// The constraint is trivially satisfied (e.g. `3 >= 0`).
    True,
    /// The constraint is unsatisfiable (e.g. `-1 >= 0` or `2x + 1 == 0`
    /// after gcd analysis).
    False,
    /// A canonical constraint.
    Constraint(Constraint),
}

impl Constraint {
    /// `expr == 0`.
    pub fn eq(expr: LinExpr) -> Self {
        Constraint {
            kind: ConstraintKind::Eq,
            expr,
        }
    }

    /// `expr >= 0`.
    pub fn ge0(expr: LinExpr) -> Self {
        Constraint {
            kind: ConstraintKind::GeZero,
            expr,
        }
    }

    /// `lhs >= rhs` as `lhs - rhs >= 0`.
    pub fn ge(lhs: &LinExpr, rhs: &LinExpr) -> crate::Result<Self> {
        Ok(Constraint::ge0(lhs.sub(rhs)?))
    }

    /// `lhs <= rhs` as `rhs - lhs >= 0`.
    pub fn le(lhs: &LinExpr, rhs: &LinExpr) -> crate::Result<Self> {
        Ok(Constraint::ge0(rhs.sub(lhs)?))
    }

    /// `lhs < rhs` as `rhs - lhs - 1 >= 0` (integer strictness).
    pub fn lt(lhs: &LinExpr, rhs: &LinExpr) -> crate::Result<Self> {
        let mut e = rhs.sub(lhs)?;
        e.konst = e.konst.checked_sub(1).ok_or(crate::PolyError::Overflow)?;
        Ok(Constraint::ge0(e))
    }

    /// Does `values` (dims then params) satisfy this constraint?
    pub fn holds(&self, values: &[i64]) -> bool {
        let v = self.expr.eval(values);
        match self.kind {
            ConstraintKind::Eq => v == 0,
            ConstraintKind::GeZero => v >= 0,
        }
    }

    /// Normalize: divide by the gcd of the coefficients, tighten the
    /// constant for inequalities (exact over the integers), and detect
    /// trivially true/false constraints.
    ///
    /// For an equality `g·e + k == 0` with `g = gcd(coeffs)`: if `g` does
    /// not divide `k` the constraint (and hence the polyhedron) has no
    /// integer solutions.
    pub fn normalize(&self) -> Normalized {
        let g = self.expr.coeff_content();
        if g == 0 {
            // Constant constraint.
            let k = self.expr.konst;
            let sat = match self.kind {
                ConstraintKind::Eq => k == 0,
                ConstraintKind::GeZero => k >= 0,
            };
            return if sat {
                Normalized::True
            } else {
                Normalized::False
            };
        }
        if g == 1 {
            return Normalized::Constraint(self.clone());
        }
        let k = self.expr.konst;
        match self.kind {
            ConstraintKind::Eq => {
                if k % g != 0 {
                    return Normalized::False;
                }
                let mut e = self.expr.clone();
                for c in &mut e.coeffs {
                    *c /= g;
                }
                e.konst = k / g;
                Normalized::Constraint(Constraint::eq(e))
            }
            ConstraintKind::GeZero => {
                // g·e' + k >= 0  <=>  e' >= ceil(-k/g)  <=>  e' + floor(k/g) >= 0
                let mut e = self.expr.clone();
                for c in &mut e.coeffs {
                    *c /= g;
                }
                e.konst = k.div_euclid(g);
                Normalized::Constraint(Constraint::ge0(e))
            }
        }
    }

    /// Canonical form for deduplication: normalized and, for equalities,
    /// sign-canonical (first nonzero coefficient positive).
    pub fn canonical(&self) -> Normalized {
        match self.normalize() {
            Normalized::Constraint(mut c) => {
                if c.kind == ConstraintKind::Eq {
                    let lead = c
                        .expr
                        .coeffs
                        .iter()
                        .copied()
                        .find(|&x| x != 0)
                        .unwrap_or(c.expr.konst);
                    if lead < 0 {
                        c.expr = c.expr.neg();
                    }
                }
                Normalized::Constraint(c)
            }
            other => other,
        }
    }

    /// Coefficient content including the constant (for equality gcd tests).
    pub fn gcd_with_konst(&self) -> i64 {
        let g = self.expr.coeff_content().unsigned_abs();
        gcd_u64(g, self.expr.konst.unsigned_abs()) as i64
    }

    /// Render with names.
    pub fn display_with<'a>(&'a self, names: &'a [String]) -> DisplayConstraint<'a> {
        DisplayConstraint { c: self, names }
    }
}

/// Helper rendering `expr >= 0` / `expr == 0` with variable names.
pub struct DisplayConstraint<'a> {
    c: &'a Constraint,
    names: &'a [String],
}

impl std::fmt::Display for DisplayConstraint<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let op = match self.c.kind {
            ConstraintKind::Eq => "=",
            ConstraintKind::GeZero => ">=",
        };
        write!(f, "{} {op} 0", self.c.expr.display_with(self.names))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(coeffs: Vec<i64>, k: i64) -> LinExpr {
        LinExpr { coeffs, konst: k }
    }

    #[test]
    fn trivial_constraints() {
        assert_eq!(
            Constraint::ge0(e(vec![0, 0], 3)).normalize(),
            Normalized::True
        );
        assert_eq!(
            Constraint::ge0(e(vec![0, 0], -1)).normalize(),
            Normalized::False
        );
        assert_eq!(Constraint::eq(e(vec![0], 0)).normalize(), Normalized::True);
        assert_eq!(Constraint::eq(e(vec![0], 7)).normalize(), Normalized::False);
    }

    #[test]
    fn gcd_infeasible_equality() {
        // 2x + 1 == 0 has no integer solution.
        assert_eq!(Constraint::eq(e(vec![2], 1)).normalize(), Normalized::False);
        // 2x + 4 == 0 -> x + 2 == 0.
        match Constraint::eq(e(vec![2], 4)).normalize() {
            Normalized::Constraint(c) => {
                assert_eq!(c.expr.coeffs, vec![1]);
                assert_eq!(c.expr.konst, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn integer_tightening() {
        // 2x - 3 >= 0  <=>  x >= 3/2  <=>  x >= 2  <=>  x - 2 >= 0
        match Constraint::ge0(e(vec![2], -3)).normalize() {
            Normalized::Constraint(c) => {
                assert_eq!(c.expr.coeffs, vec![1]);
                assert_eq!(c.expr.konst, -2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn strict_lt_builder() {
        // x < n  ->  n - x - 1 >= 0
        let x = LinExpr::var(2, 0);
        let n = LinExpr::var(2, 1);
        let c = Constraint::lt(&x, &n).unwrap();
        assert!(c.holds(&[4, 5]));
        assert!(!c.holds(&[5, 5]));
    }

    #[test]
    fn canonical_sign() {
        // -x + 1 == 0 canonicalizes to x - 1 == 0
        match Constraint::eq(e(vec![-1], 1)).canonical() {
            Normalized::Constraint(c) => {
                assert_eq!(c.expr.coeffs, vec![1]);
                assert_eq!(c.expr.konst, -1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
