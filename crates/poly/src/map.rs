//! Integer maps (relations) `Z^n_in → Z^n_out`.

use crate::constraint::{Constraint, ConstraintKind};
use crate::expr::LinExpr;
use crate::polyhedron::Polyhedron;
use crate::set::Set;
use crate::space::Space;
use crate::{PolyError, Result};
use serde::{Deserialize, Serialize};

/// An integer relation between an input space and an output space,
/// represented as a [`Set`] over the concatenated dimensions
/// `[in_0, .., in_{n-1}, out_0, .., out_{d-1}]`.
///
/// This mirrors how the paper models memory accesses: a map from thread
/// grid coordinates (`Z^6`: blockOff and blockIdx per grid dimension) to
/// array element coordinates (`Z^d`), §4.1.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Map {
    n_in: usize,
    rel: Set,
}

impl Map {
    /// Build from a relation set whose first `n_in` dimensions are inputs.
    pub fn from_relation(n_in: usize, rel: Set) -> Self {
        assert!(n_in <= rel.n_dims());
        Map { n_in, rel }
    }

    /// The empty map.
    pub fn empty(in_space: &Space, out_space: &Space) -> Self {
        let space = in_space.product(out_space);
        Map {
            n_in: in_space.n_dims(),
            rel: Set::empty(space),
        }
    }

    /// Parse isl-like notation, e.g.
    /// `"[n] -> { [i] -> [a, b] : a = i and 0 <= b and b < n }"`.
    pub fn parse(text: &str) -> Result<Map> {
        crate::parse::parse_map(text)
    }

    /// Number of input dimensions.
    pub fn n_in(&self) -> usize {
        self.n_in
    }

    /// Number of output dimensions.
    pub fn n_out(&self) -> usize {
        self.rel.n_dims() - self.n_in
    }

    /// Number of parameters.
    pub fn n_params(&self) -> usize {
        self.rel.n_params()
    }

    /// The underlying relation set over `[in ++ out]` dimensions.
    pub fn relation(&self) -> &Set {
        &self.rel
    }

    /// Is the map exact (no over-approximation recorded)?
    pub fn is_exact(&self) -> bool {
        self.rel.is_exact()
    }

    /// Mark as over-approximate (used when "may" accesses are folded in).
    pub fn set_inexact(&mut self) {
        self.rel.set_inexact();
    }

    /// Union of two maps over the same spaces.
    pub fn union(&self, other: &Map) -> Result<Map> {
        if self.n_in != other.n_in {
            return Err(PolyError::SpaceMismatch {
                expected: (self.n_in, 0),
                got: (other.n_in, 0),
            });
        }
        Ok(Map {
            n_in: self.n_in,
            rel: self.rel.union(&other.rel)?,
        })
    }

    /// The domain: all inputs related to at least one output.
    pub fn domain(&self) -> Result<Set> {
        self.rel.project_out_dims(self.n_in..self.rel.n_dims())
    }

    /// The range (image of the whole domain).
    pub fn range(&self) -> Result<Set> {
        self.rel.project_out_dims(0..self.n_in)
    }

    /// Restrict the domain to `dom` (a set over the input space).
    pub fn intersect_domain(&self, dom: &Set) -> Result<Map> {
        if dom.n_dims() != self.n_in || dom.n_params() != self.n_params() {
            return Err(PolyError::SpaceMismatch {
                expected: (self.n_in, self.n_params()),
                got: (dom.n_dims(), dom.n_params()),
            });
        }
        // Embed dom into the relation space by appending the out dims.
        let out_names: Vec<&str> = self.rel.space().dim_names()[self.n_in..]
            .iter()
            .map(|s| s.as_str())
            .collect();
        let lifted = dom.insert_dims(self.n_in, &out_names);
        Ok(Map {
            n_in: self.n_in,
            rel: self.rel.intersect(&lifted)?,
        })
    }

    /// The image of `set` under this map.
    pub fn image(&self, set: &Set) -> Result<Set> {
        let restricted = self.intersect_domain(set)?;
        restricted.range()
    }

    /// Add a constraint over `[in ++ out ++ params]` coefficients.
    pub fn constrain(&self, c: Constraint) -> Map {
        Map {
            n_in: self.n_in,
            rel: self.rel.constrain(c),
        }
    }

    /// Restrict the inputs to the half-open box `lo[i] <= in_i < hi[i]`,
    /// where bounds are expressions over **parameters only**.
    ///
    /// This is how the paper constrains an access map to one grid
    /// partition (§6): the partition box is given by parameters.
    pub fn constrain_inputs_to_box(&self, lo: &[LinExpr], hi: &[LinExpr]) -> Result<Map> {
        assert_eq!(lo.len(), self.n_in);
        assert_eq!(hi.len(), self.n_in);
        let width = self.rel.n_dims() + self.n_params();
        let mut m = self.clone();
        for i in 0..self.n_in {
            // Bounds are param-only exprs of width n_params; widen them.
            let lo_w = widen_param_expr(&lo[i], width, self.rel.n_dims());
            let hi_w = widen_param_expr(&hi[i], width, self.rel.n_dims());
            let v = LinExpr::var(width, i);
            m = m.constrain(Constraint::ge(&v, &lo_w)?);
            m = m.constrain(Constraint::lt(&v, &hi_w)?);
        }
        Ok(m)
    }

    /// Injectivity check: no two distinct inputs map to a common output.
    ///
    /// Builds, for every pair of convex pieces `(A, B)` of the relation and
    /// every input dimension `k` and direction, the system
    ///
    /// ```text
    /// A(t, y)  ∧  B(t', y)  ∧  t_k < t'_k   (resp. >)
    /// ```
    ///
    /// over dims `[t, t', y]`, and checks that each is empty for all
    /// parameters satisfying `context` (param-only polyhedron). Returns
    /// `true` only when injectivity is *proved*; the conservative direction
    /// for write maps (paper §4: non-injective write maps prohibit
    /// partitioning).
    pub fn is_injective(&self, context: &Polyhedron) -> Result<bool> {
        let n = self.n_in;
        let d = self.n_out();
        let np = self.n_params();
        assert_eq!(context.n_dims(), 0);
        assert_eq!(context.n_params(), np);

        // Combined space: t (n) ++ t' (n) ++ y (d), params unchanged.
        let cwidth = 2 * n + d + np;
        for a in self.rel.pieces() {
            for b in self.rel.pieces() {
                // Base system: A over (t, y), B over (t', y).
                let mut base = Polyhedron::universe(2 * n + d, np);
                for c in a.constraints() {
                    base.add_constraint(remap_piece(c, n, d, np, false));
                }
                for c in b.constraints() {
                    base.add_constraint(remap_piece(c, n, d, np, true));
                }
                if base.is_marked_empty() {
                    continue;
                }
                // t != t' as a disjunction over dims and directions.
                for k in 0..n {
                    for &less in &[true, false] {
                        let tk = LinExpr::var(cwidth, k);
                        let tk2 = LinExpr::var(cwidth, n + k);
                        let cons = if less {
                            Constraint::lt(&tk, &tk2)?
                        } else {
                            Constraint::lt(&tk2, &tk)?
                        };
                        let sys = base.clone().with_constraint(cons);
                        if !sys.is_empty_symbolic(context)? {
                            return Ok(false);
                        }
                    }
                }
            }
        }
        Ok(true)
    }

    /// Enumerate `(input, output)` pairs for concrete params (test helper).
    pub fn for_each_pair(&self, params: &[i64], f: &mut dyn FnMut(&[i64], &[i64])) -> Result<()> {
        let n = self.n_in;
        self.rel.for_each_point(params, &mut |pt| {
            f(&pt[..n], &pt[n..]);
        })
    }

    /// Apply to a single concrete input: collect the outputs (test helper).
    pub fn apply_point(&self, input: &[i64], params: &[i64]) -> Result<Vec<Vec<i64>>> {
        assert_eq!(input.len(), self.n_in);
        let mut fixed = self.rel.clone();
        for (i, &v) in input.iter().enumerate() {
            fixed = fixed.fix_dim(i, v)?;
        }
        let outs = fixed.project_out_dims(0..self.n_in)?;
        Ok(outs.points_sorted(params))
    }
}

/// Widen a parameter-only expression (width = n_params) to full relation
/// width by prefixing zero dim coefficients.
fn widen_param_expr(e: &LinExpr, full_width: usize, n_dims: usize) -> LinExpr {
    debug_assert_eq!(e.width() + n_dims, full_width);
    let mut coeffs = vec![0i64; full_width];
    coeffs[n_dims..].copy_from_slice(&e.coeffs);
    LinExpr {
        coeffs,
        konst: e.konst,
    }
}

/// Remap a constraint over `[t (n), y (d), params]` into the combined
/// space `[t (n), t' (n), y (d), params]`; if `primed`, the input block
/// goes to `t'` instead of `t`.
fn remap_piece(c: &Constraint, n: usize, d: usize, np: usize, primed: bool) -> Constraint {
    let mut coeffs = vec![0i64; 2 * n + d + np];
    let src = &c.expr.coeffs;
    debug_assert_eq!(src.len(), n + d + np);
    let in_off = if primed { n } else { 0 };
    coeffs[in_off..in_off + n].copy_from_slice(&src[..n]);
    coeffs[2 * n..2 * n + d].copy_from_slice(&src[n..n + d]);
    coeffs[2 * n + d..].copy_from_slice(&src[n + d..]);
    Constraint {
        kind: c.kind,
        expr: LinExpr {
            coeffs,
            konst: c.expr.konst,
        },
    }
}

/// Shorthand: the identity-like constraint `out == affine(in, params)`,
/// useful for building access maps programmatically. `width` is the full
/// relation width (n_in + n_out + n_params); `out_dim` indexes the output
/// block (so the constrained variable is `n_in + out_dim`).
pub fn output_eq(width: usize, n_in: usize, out_dim: usize, rhs: &LinExpr) -> Result<Constraint> {
    let v = LinExpr::var(width, n_in + out_dim);
    Ok(Constraint {
        kind: ConstraintKind::Eq,
        expr: v.sub(rhs)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_translation() {
        // Figure 1 of the paper: S2 = M(S1) with M translating by (1, 3).
        let s1 = Set::parse("{ [y, x] : 0 <= y and y <= x and 0 <= x and x <= 4 }").unwrap();
        let m = Map::parse("{ [y, x] -> [y1, x1] : y1 = y + 1 and x1 = x + 3 }").unwrap();
        let s2 = m.image(&s1).unwrap();
        // S2 = { [y, x] : 1 <= y <= x - 2 and 3 <= x <= 7 } (eq. 3)
        let expected =
            Set::parse("{ [y, x] : 1 <= y and y <= x - 2 and 3 <= x and x <= 7 }").unwrap();
        assert_eq!(s2.points_sorted(&[]), expected.points_sorted(&[]));
    }

    #[test]
    fn domain_and_range() {
        let m = Map::parse("[n] -> { [i] -> [j] : j = i + 1 and 0 <= i and i < n }").unwrap();
        let dom = m.domain().unwrap();
        let rng = m.range().unwrap();
        assert_eq!(dom.count_points(&[5]), 5);
        assert_eq!(rng.points_sorted(&[3]), vec![vec![1], vec![2], vec![3]]);
    }

    #[test]
    fn apply_point_stencil_reads() {
        // 1D 3-point stencil: i -> {i-1, i, i+1}
        let m = Map::parse("{ [i] -> [a] : i - 1 <= a and a <= i + 1 }").unwrap();
        let outs = m.apply_point(&[5], &[]).unwrap();
        assert_eq!(outs, vec![vec![4], vec![5], vec![6]]);
    }

    #[test]
    fn injective_identity_map() {
        let m = Map::parse("[n] -> { [i] -> [a] : a = i and 0 <= i and i < n }").unwrap();
        let ctx = Polyhedron::universe(0, 1);
        assert!(m.is_injective(&ctx).unwrap());
    }

    #[test]
    fn non_injective_constant_map() {
        // Everything writes element 0: not injective (for n >= 2).
        let m = Map::parse("[n] -> { [i] -> [a] : a = 0 and 0 <= i and i < n }").unwrap();
        let ctx = Polyhedron::universe(0, 1);
        assert!(!m.is_injective(&ctx).unwrap());
    }

    #[test]
    fn non_injective_stencil_reads() {
        // The 3-point read stencil maps distinct i to shared elements.
        let m =
            Map::parse("[n] -> { [i] -> [a] : i - 1 <= a and a <= i + 1 and 0 <= i and i < n }")
                .unwrap();
        let ctx = Polyhedron::universe(0, 1);
        assert!(!m.is_injective(&ctx).unwrap());
    }

    #[test]
    fn injective_strided_map() {
        // i -> 2i is injective even with non-unit coefficient.
        let m = Map::parse("[n] -> { [i] -> [a] : a = 2i and 0 <= i and i < n }").unwrap();
        let ctx = Polyhedron::universe(0, 1);
        assert!(m.is_injective(&ctx).unwrap());
    }

    #[test]
    fn constrain_inputs_to_box() {
        // Identity over i, restricted to the "partition" [p0, p1).
        let m = Map::parse("[p0, p1] -> { [i] -> [a] : a = i }").unwrap();
        let np = 2;
        let lo = LinExpr::var(np, 0);
        let hi = LinExpr::var(np, 1);
        let boxed = m.constrain_inputs_to_box(&[lo], &[hi]).unwrap();
        let img = boxed.range().unwrap();
        assert_eq!(
            img.points_sorted(&[10, 13]),
            vec![vec![10], vec![11], vec![12]]
        );
    }

    #[test]
    fn intersect_domain_restricts_image() {
        let m = Map::parse("{ [i] -> [a] : a = i }").unwrap();
        let dom = Set::parse("{ [i] : 2 <= i and i <= 4 }").unwrap();
        let img = m.image(&dom).unwrap();
        assert_eq!(img.count_points(&[]), 3);
    }
}
