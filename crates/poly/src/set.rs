//! Unions of convex Z-polyhedra over a common space.

use crate::polyhedron::Polyhedron;
use crate::space::Space;
use crate::{Constraint, LinExpr, PolyError, Result};
use serde::{Deserialize, Serialize};

/// A (possibly non-convex) integer set: the union of convex
/// [`Polyhedron`] pieces over a shared [`Space`].
///
/// The `exact` flag records whether any operation along the way had to
/// over-approximate (Fourier–Motzkin with non-unit coefficients). An
/// inexact set is a *superset* of the true result — fine for read sets,
/// rejected for write sets (paper §4).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Set {
    space: Space,
    pieces: Vec<Polyhedron>,
    exact: bool,
}

impl Set {
    /// The empty set.
    pub fn empty(space: Space) -> Self {
        Set {
            space,
            pieces: Vec::new(),
            exact: true,
        }
    }

    /// The universe set.
    pub fn universe(space: Space) -> Self {
        let p = Polyhedron::universe(space.n_dims(), space.n_params());
        Set {
            space,
            pieces: vec![p],
            exact: true,
        }
    }

    /// A set with a single convex piece.
    pub fn from_polyhedron(space: Space, piece: Polyhedron) -> Self {
        assert_eq!(piece.n_dims(), space.n_dims());
        assert_eq!(piece.n_params(), space.n_params());
        let pieces = if piece.is_marked_empty() {
            Vec::new()
        } else {
            vec![piece]
        };
        Set {
            space,
            pieces,
            exact: true,
        }
    }

    /// Build from several convex pieces.
    pub fn from_pieces(space: Space, pieces: Vec<Polyhedron>) -> Self {
        let pieces: Vec<Polyhedron> = pieces
            .into_iter()
            .filter(|p| !p.is_marked_empty())
            .inspect(|p| {
                assert_eq!(p.n_dims(), space.n_dims());
                assert_eq!(p.n_params(), space.n_params());
            })
            .collect();
        Set {
            space,
            pieces,
            exact: true,
        }
    }

    /// Parse isl-like notation, e.g.
    /// `"[n] -> { [y, x] : 0 <= y and y < n or x = 0 }"`.
    pub fn parse(text: &str) -> Result<Set> {
        crate::parse::parse_set(text)
    }

    /// The space this set lives in.
    pub fn space(&self) -> &Space {
        &self.space
    }

    /// The convex pieces of the union.
    pub fn pieces(&self) -> &[Polyhedron] {
        &self.pieces
    }

    /// Number of set dimensions.
    pub fn n_dims(&self) -> usize {
        self.space.n_dims()
    }

    /// Number of parameters.
    pub fn n_params(&self) -> usize {
        self.space.n_params()
    }

    /// Is every operation that produced this set integer-exact?
    pub fn is_exact(&self) -> bool {
        self.exact
    }

    /// Mark the set as over-approximate.
    pub fn set_inexact(&mut self) {
        self.exact = false;
    }

    /// Syntactic emptiness (no pieces). See also
    /// [`Set::is_empty_concrete`].
    pub fn is_trivially_empty(&self) -> bool {
        self.pieces.is_empty()
    }

    fn check_space(&self, other: &Set) -> Result<()> {
        if !self.space.compatible(&other.space) {
            return Err(PolyError::SpaceMismatch {
                expected: (self.n_dims(), self.n_params()),
                got: (other.n_dims(), other.n_params()),
            });
        }
        Ok(())
    }

    /// Set union (piece concatenation).
    pub fn union(&self, other: &Set) -> Result<Set> {
        self.check_space(other)?;
        let mut pieces = self.pieces.clone();
        pieces.extend(other.pieces.iter().cloned());
        Ok(Set {
            space: self.space.clone(),
            pieces,
            exact: self.exact && other.exact,
        })
    }

    /// Set intersection (pairwise piece intersection).
    pub fn intersect(&self, other: &Set) -> Result<Set> {
        self.check_space(other)?;
        let mut pieces = Vec::new();
        for a in &self.pieces {
            for b in &other.pieces {
                let p = a.intersect(b)?;
                if !p.is_marked_empty() {
                    pieces.push(p);
                }
            }
        }
        Ok(Set {
            space: self.space.clone(),
            pieces,
            exact: self.exact && other.exact,
        })
    }

    /// Add a constraint to every piece.
    pub fn constrain(&self, c: Constraint) -> Set {
        let mut pieces = Vec::new();
        for p in &self.pieces {
            let q = p.clone().with_constraint(c.clone());
            if !q.is_marked_empty() {
                pieces.push(q);
            }
        }
        Set {
            space: self.space.clone(),
            pieces,
            exact: self.exact,
        }
    }

    /// Project out the dimensions in `range`, renaming the space
    /// accordingly. Exactness degrades if FM loses integer precision.
    pub fn project_out_dims(&self, range: std::ops::Range<usize>) -> Result<Set> {
        let mut pieces = Vec::new();
        let mut exact = self.exact;
        for p in &self.pieces {
            let (q, e) = p.project_out_dims(range.clone())?;
            exact &= e;
            if !q.is_marked_empty() {
                pieces.push(q);
            }
        }
        let mut dims = self.space.dim_names().to_vec();
        dims.drain(range);
        Ok(Set {
            space: Space::from_names(dims, self.space.param_names().to_vec()),
            pieces,
            exact,
        })
    }

    /// Insert fresh unconstrained dimensions named `names` at `at`.
    pub fn insert_dims(&self, at: usize, names: &[&str]) -> Set {
        let mut dims = self.space.dim_names().to_vec();
        for (i, n) in names.iter().enumerate() {
            dims.insert(at + i, n.to_string());
        }
        Set {
            space: Space::from_names(dims, self.space.param_names().to_vec()),
            pieces: self
                .pieces
                .iter()
                .map(|p| p.insert_dims(at, names.len()))
                .collect(),
            exact: self.exact,
        }
    }

    /// Fix dimension `dim` to `value` in every piece.
    pub fn fix_dim(&self, dim: usize, value: i64) -> Result<Set> {
        let mut pieces = Vec::new();
        for p in &self.pieces {
            let q = p.fix_dim(dim, value)?;
            if !q.is_marked_empty() {
                pieces.push(q);
            }
        }
        Ok(Set {
            space: self.space.clone(),
            pieces,
            exact: self.exact,
        })
    }

    /// Membership test for a concrete point and parameter values.
    pub fn contains(&self, dims: &[i64], params: &[i64]) -> bool {
        self.pieces.iter().any(|p| p.contains(dims, params))
    }

    /// Emptiness for concrete parameter values.
    pub fn is_empty_concrete(&self, params: &[i64]) -> Result<bool> {
        for p in &self.pieces {
            if !p.is_empty_concrete(params)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Provable emptiness for all parameters satisfying `context`
    /// (a polyhedron with zero set dimensions). Conservative: `false`
    /// means "could not prove empty".
    pub fn is_empty_symbolic(&self, context: &Polyhedron) -> Result<bool> {
        for p in &self.pieces {
            if !p.is_empty_symbolic(context)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Enumerate the distinct integer points of the union for concrete
    /// `params` (test helper — deduplicates across pieces).
    pub fn for_each_point(&self, params: &[i64], f: &mut dyn FnMut(&[i64])) -> Result<()> {
        let mut seen = std::collections::HashSet::new();
        for p in &self.pieces {
            p.for_each_point(params, &mut |pt| {
                if seen.insert(pt.to_vec()) {
                    f(pt);
                }
            })?;
        }
        Ok(())
    }

    /// Count distinct integer points (test helper).
    pub fn count_points(&self, params: &[i64]) -> u64 {
        let mut n = 0;
        self.for_each_point(params, &mut |_| n += 1)
            .expect("count_points requires a bounded set");
        n
    }

    /// All distinct points, sorted (test helper).
    pub fn points_sorted(&self, params: &[i64]) -> Vec<Vec<i64>> {
        let mut pts = Vec::new();
        self.for_each_point(params, &mut |p| pts.push(p.to_vec()))
            .expect("points_sorted requires a bounded set");
        pts.sort();
        pts
    }

    /// Is `self` a subset of `other` for the given concrete params?
    /// (Test helper; enumerates `self`.)
    pub fn is_subset_concrete(&self, other: &Set, params: &[i64]) -> Result<bool> {
        let mut ok = true;
        self.for_each_point(params, &mut |p| {
            if !other.contains(p, params) {
                ok = false;
            }
        })?;
        Ok(ok)
    }

    /// Names for rendering (dims then params).
    pub fn all_names(&self) -> Vec<String> {
        let mut v = self.space.dim_names().to_vec();
        v.extend(self.space.param_names().iter().cloned());
        v
    }
}

impl std::fmt::Display for Set {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names = self.all_names();
        if !self.space.param_names().is_empty() {
            write!(f, "[{}] -> ", self.space.param_names().join(", "))?;
        }
        write!(f, "{{ [{}] : ", self.space.dim_names().join(", "))?;
        if self.pieces.is_empty() {
            write!(f, "false")?;
        } else {
            for (i, p) in self.pieces.iter().enumerate() {
                if i > 0 {
                    write!(f, " or ")?;
                }
                if self.pieces.len() > 1 {
                    write!(f, "({})", p.display_with(&names))?;
                } else {
                    write!(f, "{}", p.display_with(&names))?;
                }
            }
        }
        write!(f, " }}")
    }
}

/// Convenience: build `lo <= dim < hi` interval constraints for a space.
pub fn box_constraints(
    width: usize,
    dim: usize,
    lo: &LinExpr,
    hi: &LinExpr,
) -> Result<[Constraint; 2]> {
    let v = LinExpr::var(width, dim);
    Ok([Constraint::ge(&v, lo)?, Constraint::lt(&v, hi)?])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_and_intersection_counts() {
        let a = Set::parse("{ [x] : 0 <= x and x <= 9 }").unwrap();
        let b = Set::parse("{ [x] : 5 <= x and x <= 14 }").unwrap();
        let u = a.union(&b).unwrap();
        let i = a.intersect(&b).unwrap();
        assert_eq!(a.count_points(&[]), 10);
        assert_eq!(b.count_points(&[]), 10);
        assert_eq!(u.count_points(&[]), 15);
        assert_eq!(i.count_points(&[]), 5);
    }

    #[test]
    fn union_deduplicates_points() {
        let a = Set::parse("{ [x] : 0 <= x and x <= 4 }").unwrap();
        let u = a.union(&a).unwrap();
        assert_eq!(u.count_points(&[]), 5);
    }

    #[test]
    fn projection_drops_dim_names() {
        let s = Set::parse("{ [y, x] : 0 <= y and y <= 3 and 0 <= x and x <= y }").unwrap();
        let proj = s.project_out_dims(1..2).unwrap();
        assert_eq!(proj.n_dims(), 1);
        assert_eq!(proj.space().dim_names(), &["y".to_string()]);
        assert_eq!(proj.count_points(&[]), 4);
        assert!(proj.is_exact());
    }

    #[test]
    fn parametric_membership() {
        let s = Set::parse("[n] -> { [x] : 0 <= x and x < n }").unwrap();
        assert!(s.contains(&[3], &[10]));
        assert!(!s.contains(&[3], &[3]));
        assert!(s.is_empty_concrete(&[0]).unwrap());
    }

    #[test]
    fn fix_dim_restricts() {
        let s = Set::parse("{ [y, x] : 0 <= y and y <= 2 and 0 <= x and x <= 2 }").unwrap();
        let row = s.fix_dim(0, 1).unwrap();
        assert_eq!(row.count_points(&[]), 3);
    }

    #[test]
    fn display_roundtrip_shape() {
        let s = Set::parse("[n] -> { [x] : 0 <= x and x < n }").unwrap();
        let text = s.to_string();
        let again = Set::parse(&text).unwrap();
        assert_eq!(again.count_points(&[6]), s.count_points(&[6]));
    }

    #[test]
    fn subset_check() {
        let small = Set::parse("{ [x] : 1 <= x and x <= 3 }").unwrap();
        let big = Set::parse("{ [x] : 0 <= x and x <= 9 }").unwrap();
        assert!(small.is_subset_concrete(&big, &[]).unwrap());
        assert!(!big.is_subset_concrete(&small, &[]).unwrap());
    }
}
