//! Named dimension/parameter spaces.

use serde::{Deserialize, Serialize};

/// A space names the *set dimensions* and the *parameters* that affine
/// expressions and constraints range over.
///
/// Internally all arithmetic is positional: a coefficient vector has one
/// entry per set dimension followed by one entry per parameter. The names
/// exist for construction, pretty-printing and debugging.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Space {
    dims: Vec<String>,
    params: Vec<String>,
}

impl Space {
    /// Create a set space with the given dimension and parameter names.
    ///
    /// # Panics
    /// Panics if any name occurs twice (across dims *and* params); a space
    /// with shadowed names cannot be addressed by name unambiguously.
    pub fn set(dims: &[&str], params: &[&str]) -> Self {
        let space = Space {
            dims: dims.iter().map(|s| s.to_string()).collect(),
            params: params.iter().map(|s| s.to_string()).collect(),
        };
        space.assert_unique_names();
        space
    }

    /// Create a space from owned name vectors.
    pub fn from_names(dims: Vec<String>, params: Vec<String>) -> Self {
        let space = Space { dims, params };
        space.assert_unique_names();
        space
    }

    /// A space with `n` anonymous dimensions (`d0`, `d1`, ...) and `m`
    /// anonymous parameters (`p0`, `p1`, ...).
    pub fn anonymous(n_dims: usize, n_params: usize) -> Self {
        Space {
            dims: (0..n_dims).map(|i| format!("d{i}")).collect(),
            params: (0..n_params).map(|i| format!("p{i}")).collect(),
        }
    }

    fn assert_unique_names(&self) {
        let mut all: Vec<&str> = self
            .dims
            .iter()
            .chain(self.params.iter())
            .map(|s| s.as_str())
            .collect();
        all.sort_unstable();
        for w in all.windows(2) {
            assert_ne!(w[0], w[1], "duplicate name {:?} in space", w[0]);
        }
    }

    /// Number of set dimensions.
    pub fn n_dims(&self) -> usize {
        self.dims.len()
    }

    /// Number of parameters.
    pub fn n_params(&self) -> usize {
        self.params.len()
    }

    /// Total coefficient width (dims + params).
    pub fn width(&self) -> usize {
        self.dims.len() + self.params.len()
    }

    /// Dimension names in order.
    pub fn dim_names(&self) -> &[String] {
        &self.dims
    }

    /// Parameter names in order.
    pub fn param_names(&self) -> &[String] {
        &self.params
    }

    /// Index of the dimension called `name`, if any.
    pub fn dim_index(&self, name: &str) -> Option<usize> {
        self.dims.iter().position(|d| d == name)
    }

    /// Index of the parameter called `name`, if any.
    pub fn param_index(&self, name: &str) -> Option<usize> {
        self.params.iter().position(|p| p == name)
    }

    /// Positional index into a coefficient vector for the dimension or
    /// parameter called `name` (dims first, then params).
    pub fn coeff_index(&self, name: &str) -> Option<usize> {
        self.dim_index(name)
            .or_else(|| self.param_index(name).map(|i| i + self.dims.len()))
    }

    /// The space of a map `[self] -> [other]`: dimensions concatenated,
    /// parameters taken from `self`.
    ///
    /// # Panics
    /// Panics if the parameter lists differ, or if names collide.
    pub fn product(&self, other: &Space) -> Space {
        assert_eq!(
            self.params, other.params,
            "product spaces must agree on parameters"
        );
        let mut dims = self.dims.clone();
        dims.extend(other.dims.iter().cloned());
        Space::from_names(dims, self.params.clone())
    }

    /// Keep only the dimensions in `range`, preserving parameters.
    pub fn select_dims(&self, range: std::ops::Range<usize>) -> Space {
        Space {
            dims: self.dims[range].to_vec(),
            params: self.params.clone(),
        }
    }

    /// Structural compatibility: same dim/param *counts* (names are
    /// documentation; operations only require matching shape).
    pub fn compatible(&self, other: &Space) -> bool {
        self.dims.len() == other.dims.len() && self.params.len() == other.params.len()
    }
}

impl std::fmt::Display for Space {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if !self.params.is_empty() {
            write!(f, "[{}] -> ", self.params.join(", "))?;
        }
        write!(f, "{{ [{}] }}", self.dims.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices() {
        let s = Space::set(&["y", "x"], &["n", "m"]);
        assert_eq!(s.n_dims(), 2);
        assert_eq!(s.n_params(), 2);
        assert_eq!(s.width(), 4);
        assert_eq!(s.dim_index("x"), Some(1));
        assert_eq!(s.param_index("n"), Some(0));
        assert_eq!(s.coeff_index("n"), Some(2));
        assert_eq!(s.coeff_index("zz"), None);
    }

    #[test]
    fn product_concatenates_dims() {
        let a = Space::set(&["i"], &["n"]);
        let b = Space::set(&["j"], &["n"]);
        let p = a.product(&b);
        assert_eq!(p.n_dims(), 2);
        assert_eq!(p.dim_names(), &["i".to_string(), "j".to_string()]);
    }

    #[test]
    #[should_panic(expected = "duplicate name")]
    fn rejects_duplicate_names() {
        Space::set(&["x", "x"], &[]);
    }

    #[test]
    fn display_forms() {
        let s = Space::set(&["y", "x"], &["n"]);
        assert_eq!(s.to_string(), "[n] -> { [y, x] }");
        let t = Space::set(&["i"], &[]);
        assert_eq!(t.to_string(), "{ [i] }");
    }
}
