//! Convex Z-polyhedra: conjunctions of affine constraints.

use crate::constraint::{Constraint, ConstraintKind, Normalized};
use crate::expr::LinExpr;
use crate::fm;
use crate::{PolyError, Result};
use serde::{Deserialize, Serialize};

/// A single convex Z-polyhedron over `n_dims` set dimensions and
/// `n_params` parameters: the integer points satisfying every constraint.
///
/// Constraints are kept normalized and deduplicated. A polyhedron that was
/// *syntactically* detected to be empty (a normalization produced `False`)
/// carries the `empty` marker; semantic emptiness is decided by
/// [`Polyhedron::is_empty_concrete`] / [`Polyhedron::is_empty_symbolic`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Polyhedron {
    n_dims: usize,
    n_params: usize,
    constraints: Vec<Constraint>,
    empty: bool,
}

impl Polyhedron {
    /// The universe polyhedron (no constraints).
    pub fn universe(n_dims: usize, n_params: usize) -> Self {
        Polyhedron {
            n_dims,
            n_params,
            constraints: Vec::new(),
            empty: false,
        }
    }

    /// An explicitly empty polyhedron.
    pub fn empty(n_dims: usize, n_params: usize) -> Self {
        Polyhedron {
            n_dims,
            n_params,
            constraints: Vec::new(),
            empty: true,
        }
    }

    /// Number of set dimensions.
    pub fn n_dims(&self) -> usize {
        self.n_dims
    }

    /// Number of parameters.
    pub fn n_params(&self) -> usize {
        self.n_params
    }

    /// Coefficient width (dims + params).
    pub fn width(&self) -> usize {
        self.n_dims + self.n_params
    }

    /// The constraint list (normalized, deduplicated).
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Was this polyhedron syntactically detected to be empty?
    pub fn is_marked_empty(&self) -> bool {
        self.empty
    }

    /// Add a constraint, normalizing it. Returns `self` for chaining.
    pub fn add_constraint(&mut self, c: Constraint) -> &mut Self {
        debug_assert_eq!(c.expr.width(), self.width(), "constraint width mismatch");
        if self.empty {
            return self;
        }
        match c.canonical() {
            Normalized::True => {}
            Normalized::False => {
                self.constraints.clear();
                self.empty = true;
            }
            Normalized::Constraint(c) => {
                if !self.constraints.contains(&c) {
                    self.constraints.push(c);
                }
            }
        }
        self
    }

    /// Builder-style [`Polyhedron::add_constraint`].
    pub fn with_constraint(mut self, c: Constraint) -> Self {
        self.add_constraint(c);
        self
    }

    /// Conjunction of two polyhedra over the same space.
    pub fn intersect(&self, other: &Polyhedron) -> Result<Polyhedron> {
        if self.n_dims != other.n_dims || self.n_params != other.n_params {
            return Err(PolyError::SpaceMismatch {
                expected: (self.n_dims, self.n_params),
                got: (other.n_dims, other.n_params),
            });
        }
        let mut out = self.clone();
        if other.empty {
            return Ok(Polyhedron::empty(self.n_dims, self.n_params));
        }
        for c in &other.constraints {
            out.add_constraint(c.clone());
        }
        Ok(out)
    }

    /// Does the integer point `dims` (with parameter values `params`)
    /// belong to this polyhedron?
    pub fn contains(&self, dims: &[i64], params: &[i64]) -> bool {
        if self.empty {
            return false;
        }
        debug_assert_eq!(dims.len(), self.n_dims);
        debug_assert_eq!(params.len(), self.n_params);
        let mut values = Vec::with_capacity(self.width());
        values.extend_from_slice(dims);
        values.extend_from_slice(params);
        self.constraints.iter().all(|c| c.holds(&values))
    }

    /// Substitute concrete parameter values, yielding a parameter-free
    /// polyhedron over the same dimensions.
    pub fn bind_params(&self, params: &[i64]) -> Result<Polyhedron> {
        assert_eq!(params.len(), self.n_params);
        let mut out = Polyhedron::universe(self.n_dims, 0);
        out.empty = self.empty;
        for c in &self.constraints {
            let mut konst = c.expr.konst as i128;
            for (i, &p) in params.iter().enumerate() {
                konst += (c.expr.coeffs[self.n_dims + i] as i128) * (p as i128);
            }
            let konst = i64::try_from(konst).map_err(|_| PolyError::Overflow)?;
            let expr = LinExpr {
                coeffs: c.expr.coeffs[..self.n_dims].to_vec(),
                konst,
            };
            out.add_constraint(Constraint { kind: c.kind, expr });
        }
        Ok(out)
    }

    /// Eliminate dimension `dim` (an index `< n_dims`) by Fourier–Motzkin.
    /// Returns the projected polyhedron (one dimension narrower) and a flag
    /// telling whether the projection is exact over the integers.
    pub fn project_out_dim(&self, dim: usize) -> Result<(Polyhedron, bool)> {
        if dim >= self.n_dims {
            return Err(PolyError::DimOutOfRange {
                index: dim,
                n_dims: self.n_dims,
            });
        }
        let (constraints, exact, empty) =
            fm::eliminate(&self.constraints, self.width(), dim, self.empty)?;
        let mut out = Polyhedron {
            n_dims: self.n_dims - 1,
            n_params: self.n_params,
            constraints: Vec::new(),
            empty,
        };
        if !empty {
            for c in constraints {
                out.add_constraint(c);
            }
        }
        Ok((out, exact))
    }

    /// Eliminate a contiguous range of dimensions, highest index first.
    pub fn project_out_dims(&self, range: std::ops::Range<usize>) -> Result<(Polyhedron, bool)> {
        let mut p = self.clone();
        let mut exact = true;
        for d in range.rev() {
            let (q, e) = p.project_out_dim(d)?;
            p = q;
            exact &= e;
        }
        Ok((p, exact))
    }

    /// Keep only dimensions `0..keep`, eliminating the rest.
    pub fn project_onto_prefix(&self, keep: usize) -> Result<(Polyhedron, bool)> {
        self.project_out_dims(keep..self.n_dims)
    }

    /// Insert `count` fresh unconstrained dimensions at position `at`.
    pub fn insert_dims(&self, at: usize, count: usize) -> Polyhedron {
        assert!(at <= self.n_dims);
        Polyhedron {
            n_dims: self.n_dims + count,
            n_params: self.n_params,
            constraints: self
                .constraints
                .iter()
                .map(|c| Constraint {
                    kind: c.kind,
                    expr: c.expr.insert_vars(at, count),
                })
                .collect(),
            empty: self.empty,
        }
    }

    /// Fix dimension `dim` to the affine expression `value` (which must not
    /// reference `dim`): adds the equality `dim == value`.
    pub fn fix_dim_expr(&self, dim: usize, value: &LinExpr) -> Result<Polyhedron> {
        let e = LinExpr::var(self.width(), dim).sub(value)?;
        let mut out = self.clone();
        out.add_constraint(Constraint::eq(e));
        Ok(out)
    }

    /// Fix dimension `dim` to the integer `value`.
    pub fn fix_dim(&self, dim: usize, value: i64) -> Result<Polyhedron> {
        self.fix_dim_expr(dim, &LinExpr::constant(self.width(), value))
    }

    /// Rational + gcd emptiness test with all parameters bound to concrete
    /// values. Decides emptiness exactly for the constraint systems the
    /// toolchain produces (unit coefficients); conservatively says
    /// "non-empty" when FM loses integer exactness.
    pub fn is_empty_concrete(&self, params: &[i64]) -> Result<bool> {
        let bound = self.bind_params(params)?;
        bound.is_empty_all_vars()
    }

    /// Emptiness test treating parameters as universally quantified over the
    /// given `context` (constraints on parameters only, expressed as a
    /// polyhedron with zero dims). Returns `true` only if the polyhedron is
    /// provably empty for **every** parameter assignment satisfying the
    /// context. The conservative direction: "don't know" → `false`.
    pub fn is_empty_symbolic(&self, context: &Polyhedron) -> Result<bool> {
        assert_eq!(context.n_dims, 0);
        assert_eq!(context.n_params, self.n_params);
        if self.empty {
            return Ok(true);
        }
        // Lift the context's param-only constraints into our space.
        let mut p = self.clone();
        for c in &context.constraints {
            let mut coeffs = vec![0i64; self.width()];
            coeffs[self.n_dims..].copy_from_slice(&c.expr.coeffs);
            p.add_constraint(Constraint {
                kind: c.kind,
                expr: LinExpr {
                    coeffs,
                    konst: c.expr.konst,
                },
            });
        }
        // Treat params as ordinary variables and eliminate everything. If
        // the combined system is rationally infeasible, the set is empty for
        // every parameter choice in the context.
        p.is_empty_all_vars()
    }

    /// Eliminate *all* variables (dims and params alike) and check whether a
    /// contradiction appears. `true` means definitely empty (rationally
    /// infeasible or an integer gcd contradiction); `false` means "possibly
    /// non-empty".
    fn is_empty_all_vars(&self) -> Result<bool> {
        if self.empty {
            return Ok(true);
        }
        let mut constraints = self.constraints.clone();
        let mut width = self.width();
        while width > 0 {
            // Heuristic: eliminate the variable with the fewest pair
            // combinations to limit FM blowup.
            let var = fm::cheapest_var(&constraints, width);
            let (next, _exact, empty) = fm::eliminate(&constraints, width, var, false)?;
            if empty {
                return Ok(true);
            }
            constraints = next;
            width -= 1;
        }
        // All remaining constraints are constants; `fm::eliminate` already
        // normalized them away or flagged emptiness.
        Ok(false)
    }

    /// Lower and upper bounds of dimension `dim` in terms of dimensions
    /// `< dim` and the parameters. All dimensions `> dim` must already be
    /// eliminated (i.e. `dim == n_dims - 1`).
    ///
    /// Each bound is `(expr, divisor)`:
    /// * lower bound: `dim >= ceil(expr / divisor)`
    /// * upper bound: `dim <= floor(expr / divisor)`
    pub fn bounds_of_last_dim(&self) -> DimBounds {
        assert!(self.n_dims >= 1);
        let dim = self.n_dims - 1;
        let mut lower = Vec::new();
        let mut upper = Vec::new();
        for c in &self.constraints {
            let a = c.expr.coeffs[dim];
            if a == 0 {
                continue;
            }
            // c: a*x + rest (>= / ==) 0
            let mut rest = c.expr.clone();
            rest.coeffs[dim] = 0;
            match c.kind {
                ConstraintKind::GeZero => {
                    if a > 0 {
                        // x >= ceil(-rest / a)
                        lower.push((rest.neg(), a));
                    } else {
                        // x <= floor(rest / -a)
                        upper.push((rest, -a));
                    }
                }
                ConstraintKind::Eq => {
                    if a > 0 {
                        lower.push((rest.neg(), a));
                        upper.push((rest.neg(), a));
                    } else {
                        lower.push((rest.clone(), -a));
                        upper.push((rest, -a));
                    }
                }
            }
        }
        DimBounds { lower, upper }
    }

    /// Enumerate all integer points for concrete `params`, invoking `f` for
    /// each. Intended for tests and small sets; complexity is the volume of
    /// the bounding box. Returns an error if some dimension is unbounded.
    pub fn for_each_point(&self, params: &[i64], f: &mut dyn FnMut(&[i64])) -> Result<()> {
        let bound = self.bind_params(params)?;
        if bound.empty {
            return Ok(());
        }
        let mut point = vec![0i64; self.n_dims];
        bound.scan_rec(0, &mut point, f)
    }

    fn scan_rec(
        &self,
        depth: usize,
        point: &mut Vec<i64>,
        f: &mut dyn FnMut(&[i64]),
    ) -> Result<()> {
        if depth == self.n_dims {
            f(point);
            return Ok(());
        }
        // Project away dims > depth, then bound dim `depth` given the fixed
        // prefix.
        let mut p = self.clone();
        for (i, &v) in point[..depth].iter().enumerate() {
            p = p.fix_dim(i, v)?;
        }
        let (proj, _) = p.project_out_dims(depth + 1..self.n_dims)?;
        if proj.is_marked_empty() {
            return Ok(());
        }
        let b = proj.bounds_of_last_dim();
        let prefix: Vec<i64> = point[..depth].to_vec();
        let (lo, hi) = match b.concrete_range(&prefix, &[]) {
            Some(r) => r,
            None => {
                return Err(PolyError::Parse(format!(
                    "dimension {depth} is unbounded; cannot enumerate"
                )))
            }
        };
        for v in lo..=hi {
            point[depth] = v;
            self.scan_rec(depth + 1, point, f)?;
        }
        Ok(())
    }

    /// Count integer points for concrete `params` (test helper).
    pub fn count_points(&self, params: &[i64]) -> u64 {
        let mut n = 0u64;
        self.for_each_point(params, &mut |_| n += 1)
            .expect("count_points requires a bounded polyhedron");
        n
    }

    /// Render using the given variable names (dims then params).
    pub fn display_with<'a>(&'a self, names: &'a [String]) -> DisplayPolyhedron<'a> {
        DisplayPolyhedron { p: self, names }
    }
}

/// Symbolic bounds of one dimension: `max(ceil(l/d))  <=  x  <=  min(floor(u/d))`.
#[derive(Debug, Clone)]
pub struct DimBounds {
    /// Lower bounds `(expr, divisor)` meaning `x >= ceil(expr / divisor)`.
    pub lower: Vec<(LinExpr, i64)>,
    /// Upper bounds `(expr, divisor)` meaning `x <= floor(expr / divisor)`.
    pub upper: Vec<(LinExpr, i64)>,
}

impl DimBounds {
    /// Evaluate to a concrete `[lo, hi]` range given values for the earlier
    /// dimensions and the parameters. Returns `None` if a side is
    /// unbounded, `Some((lo, hi))` otherwise (empty if `lo > hi`).
    pub fn concrete_range(&self, dims: &[i64], params: &[i64]) -> Option<(i64, i64)> {
        use crate::expr::{cdiv, fdiv};
        if self.lower.is_empty() || self.upper.is_empty() {
            return None;
        }
        let mut values: Vec<i64> = Vec::with_capacity(dims.len() + 1 + params.len());
        values.extend_from_slice(dims);
        values.push(0); // placeholder for the bounded dim itself
        values.extend_from_slice(params);
        let mut lo = i64::MIN;
        for (e, d) in &self.lower {
            let v = cdiv(e.eval(&values), *d as i128);
            lo = lo.max(i64::try_from(v).ok()?);
        }
        let mut hi = i64::MAX;
        for (e, d) in &self.upper {
            let v = fdiv(e.eval(&values), *d as i128);
            hi = hi.min(i64::try_from(v).ok()?);
        }
        Some((lo, hi))
    }
}

/// Helper rendering a polyhedron in isl-like notation.
pub struct DisplayPolyhedron<'a> {
    p: &'a Polyhedron,
    names: &'a [String],
}

impl std::fmt::Display for DisplayPolyhedron<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.p.is_marked_empty() {
            return write!(f, "false");
        }
        if self.p.constraints().is_empty() {
            return write!(f, "true");
        }
        let mut first = true;
        for c in self.p.constraints() {
            if !first {
                write!(f, " and ")?;
            }
            write!(f, "{}", c.display_with(self.names))?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Constraint;
    use crate::expr::LinExpr;

    /// { [y, x] : 0 <= y <= x and 0 <= x <= 4 } — S1 from Figure 1.
    fn s1() -> Polyhedron {
        let w = 2;
        let y = LinExpr::var(w, 0);
        let x = LinExpr::var(w, 1);
        Polyhedron::universe(2, 0)
            .with_constraint(Constraint::ge0(y.clone()))
            .with_constraint(Constraint::ge(&x, &y).unwrap())
            .with_constraint(Constraint::ge0(x.clone()))
            .with_constraint(Constraint::le(&x, &LinExpr::constant(w, 4)).unwrap())
    }

    #[test]
    fn s1_has_15_points() {
        assert_eq!(s1().count_points(&[]), 15);
    }

    #[test]
    fn contains_matches_enumeration() {
        let p = s1();
        let mut pts = Vec::new();
        p.for_each_point(&[], &mut |pt| pts.push(pt.to_vec()))
            .unwrap();
        for y in -1..6 {
            for x in -1..6 {
                let inside = p.contains(&[y, x], &[]);
                assert_eq!(inside, pts.contains(&vec![y, x]), "point ({y},{x})");
            }
        }
    }

    #[test]
    fn projection_of_triangle() {
        // Projecting S1 onto x gives 0 <= x <= 4 (5 points).
        let p = s1();
        // Eliminate y (dim 0).
        let (proj, exact) = p.project_out_dim(0).unwrap();
        assert!(exact);
        assert_eq!(proj.n_dims(), 1);
        assert_eq!(proj.count_points(&[]), 5);
    }

    #[test]
    fn empty_by_contradiction() {
        let w = 1;
        let x = LinExpr::var(w, 0);
        let p = Polyhedron::universe(1, 0)
            .with_constraint(Constraint::ge(&x, &LinExpr::constant(w, 3)).unwrap())
            .with_constraint(Constraint::le(&x, &LinExpr::constant(w, 2)).unwrap());
        assert!(p.is_empty_concrete(&[]).unwrap());
        assert_eq!(p.count_points(&[]), 0);
    }

    #[test]
    fn empty_by_gcd() {
        // 2x == 1 has no integer solutions; detected at add_constraint time.
        let e = LinExpr {
            coeffs: vec![2],
            konst: -1,
        };
        let p = Polyhedron::universe(1, 0).with_constraint(Constraint::eq(e));
        assert!(p.is_marked_empty());
    }

    #[test]
    fn parametric_interval() {
        // { [x] : 0 <= x < n }, n = 7 -> 7 points.
        let w = 2; // 1 dim + 1 param
        let x = LinExpr::var(w, 0);
        let n = LinExpr::var(w, 1);
        let p = Polyhedron::universe(1, 1)
            .with_constraint(Constraint::ge0(x.clone()))
            .with_constraint(Constraint::lt(&x, &n).unwrap());
        assert_eq!(p.count_points(&[7]), 7);
        assert_eq!(p.count_points(&[0]), 0);
        assert!(p.is_empty_concrete(&[0]).unwrap());
        assert!(!p.is_empty_concrete(&[1]).unwrap());
    }

    #[test]
    fn symbolic_emptiness_with_context() {
        // { [x] : 0 <= x < n and x >= n } is empty for all n.
        let w = 2;
        let x = LinExpr::var(w, 0);
        let n = LinExpr::var(w, 1);
        let p = Polyhedron::universe(1, 1)
            .with_constraint(Constraint::ge0(x.clone()))
            .with_constraint(Constraint::lt(&x, &n).unwrap())
            .with_constraint(Constraint::ge(&x, &n).unwrap());
        let ctx = Polyhedron::universe(0, 1);
        assert!(p.is_empty_symbolic(&ctx).unwrap());

        // { [x] : 0 <= x < n } is NOT empty for n >= 1.
        let q = Polyhedron::universe(1, 1)
            .with_constraint(Constraint::ge0(x.clone()))
            .with_constraint(Constraint::lt(&x, &n).unwrap());
        let ctx1 = {
            let nn = LinExpr::var(1, 0); // param-only space: width 1
            Polyhedron::universe(0, 1)
                .with_constraint(Constraint::ge(&nn, &LinExpr::constant(1, 1)).unwrap())
        };
        assert!(!q.is_empty_symbolic(&ctx1).unwrap());
    }

    #[test]
    fn bounds_of_last_dim_triangle() {
        // For S1 with dims [y, x]: bounds of x given y are y <= x <= 4.
        let b = s1().bounds_of_last_dim();
        let r = b.concrete_range(&[2], &[]).unwrap();
        assert_eq!(r, (2, 4));
    }

    #[test]
    fn fix_dim_slices() {
        let p = s1().fix_dim(1, 3).unwrap(); // x = 3 -> y in 0..=3
        assert_eq!(p.count_points(&[]), 4);
    }

    #[test]
    fn insert_dims_keeps_semantics() {
        let p = s1().insert_dims(1, 1); // [y, z, x] with z free
        assert_eq!(p.n_dims(), 3);
        assert!(p.contains(&[1, 99, 2], &[]));
        assert!(!p.contains(&[3, 0, 2], &[]));
    }
}
