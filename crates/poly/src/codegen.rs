//! Polyhedral code generation: set → loop-nest AST → row-range enumeration.
//!
//! This is the Rust counterpart of the paper's §6: instead of enumerating
//! every element of an access map's image, we generate an AST that scans
//! the image **row by row** (the array's innermost dimension is enumerated
//! as `[lexmin, lexmax]` ranges), exactly once per convex piece.
//!
//! The AST mirrors isl's: `for` loops and guards are the only control
//! flow; every bound is a closed-form expression built from affine forms,
//! floor/ceil division, `min` and `max` (§6.1). Where isl would emit LLVM
//! IR we keep the AST and interpret it — the information content and the
//! callback interface (§6.2, one invocation per element range, no dynamic
//! allocation) are the same.
//!
//! Correctness note: outer loop bounds come from Fourier–Motzkin
//! projections, which may over-approximate; we therefore re-check all
//! constraints not involving the innermost dimension as **guards** before
//! emitting a row range. Emission is thus exact per convex piece even when
//! the projections are not.

use crate::constraint::Constraint;
use crate::expr::{cdiv, fdiv, LinExpr};
use crate::polyhedron::Polyhedron;
use crate::set::Set;
use crate::{PolyError, Result};
use serde::{Deserialize, Serialize};

/// A closed-form bound expression: `max`/`min` over floor/ceil divisions of
/// affine forms, the leaves of isl's expression ASTs that we need.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AstExpr {
    /// An integer constant.
    Const(i64),
    /// `ceil(expr / divisor)` if `ceil`, else `floor(expr / divisor)`.
    /// The affine `expr` ranges over `[dims ++ params]` of the original
    /// set; coefficients on dimensions at or beyond the current loop depth
    /// are zero by construction.
    Div {
        expr: LinExpr,
        divisor: i64,
        ceil: bool,
    },
    /// Maximum of the operands (used for lower bounds).
    Max(Vec<AstExpr>),
    /// Minimum of the operands (used for upper bounds).
    Min(Vec<AstExpr>),
}

impl AstExpr {
    /// Evaluate with a full `[dims ++ params]` assignment.
    pub fn eval(&self, values: &[i64]) -> i64 {
        match self {
            AstExpr::Const(k) => *k,
            AstExpr::Div {
                expr,
                divisor,
                ceil,
            } => {
                let v = expr.eval(values);
                let r = if *ceil {
                    cdiv(v, *divisor as i128)
                } else {
                    fdiv(v, *divisor as i128)
                };
                r as i64
            }
            AstExpr::Max(es) => es.iter().map(|e| e.eval(values)).max().unwrap_or(i64::MIN),
            AstExpr::Min(es) => es.iter().map(|e| e.eval(values)).min().unwrap_or(i64::MAX),
        }
    }

    fn render(&self, names: &[String]) -> String {
        match self {
            AstExpr::Const(k) => k.to_string(),
            AstExpr::Div {
                expr,
                divisor,
                ceil,
            } => {
                let inner = expr.display_with(names).to_string();
                if *divisor == 1 {
                    inner
                } else if *ceil {
                    format!("ceild({inner}, {divisor})")
                } else {
                    format!("floord({inner}, {divisor})")
                }
            }
            AstExpr::Max(es) => {
                if es.len() == 1 {
                    es[0].render(names)
                } else {
                    format!(
                        "max({})",
                        es.iter()
                            .map(|e| e.render(names))
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                }
            }
            AstExpr::Min(es) => {
                if es.len() == 1 {
                    es[0].render(names)
                } else {
                    format!(
                        "min({})",
                        es.iter()
                            .map(|e| e.render(names))
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                }
            }
        }
    }
}

/// One `for` loop of a generated nest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoopSpec {
    /// Dimension index this loop scans.
    pub dim: usize,
    /// Inclusive lower bound.
    pub lb: AstExpr,
    /// Inclusive upper bound.
    pub ub: AstExpr,
}

/// The scan program for one convex piece: a perfect loop nest over all but
/// the innermost dimension, guards, and the innermost row range.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PieceNest {
    /// Loops over dimensions `0 .. n_dims-1` (outermost first).
    pub loops: Vec<LoopSpec>,
    /// Constraints of the piece not involving the innermost dimension;
    /// re-checked before emission so emission is exact per piece.
    pub guards: Vec<Constraint>,
    /// Inclusive bounds of the innermost dimension.
    pub row_lb: AstExpr,
    /// Inclusive upper bound of the innermost dimension.
    pub row_ub: AstExpr,
}

/// A row-range emitted by an [`Enumerator`]: the coordinates of all outer
/// dimensions plus an inclusive `[lo, hi]` range of the innermost one.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct RowRange {
    /// Values of dimensions `0 .. n_dims-1`.
    pub prefix: Vec<i64>,
    /// First element of the row range (inclusive).
    pub lo: i64,
    /// Last element of the row range (inclusive).
    pub hi: i64,
}

/// A compiled enumerator for a set: one loop nest per convex piece.
///
/// This is the runtime-callable artifact of §6.2 — input: parameter values
/// (partition bounds, block dims, scalar kernel arguments); output: one
/// callback invocation per element range. Ranges from different convex
/// pieces may overlap (the consumer tolerates or merges them, see
/// [`merge_rows`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Enumerator {
    n_dims: usize,
    n_params: usize,
    pieces: Vec<PieceNest>,
    exact: bool,
}

impl Enumerator {
    /// Compile a set into an enumerator.
    ///
    /// Fails with [`PolyError::Unbounded`] if some dimension of the set has
    /// no lower or upper bound (such a set cannot be scanned).
    pub fn build(set: &Set) -> Result<Enumerator> {
        let n = set.n_dims();
        assert!(n >= 1, "cannot enumerate a 0-dimensional set");
        let mut pieces = Vec::with_capacity(set.pieces().len());
        for p in set.pieces() {
            pieces.push(Self::build_piece(p, n)?);
        }
        Ok(Enumerator {
            n_dims: n,
            n_params: set.n_params(),
            pieces,
            exact: set.is_exact(),
        })
    }

    fn build_piece(p: &Polyhedron, n: usize) -> Result<PieceNest> {
        // Innermost bounds and guards from the full system.
        let inner = p.bounds_of_last_dim();
        if inner.lower.is_empty() || inner.upper.is_empty() {
            return Err(PolyError::Unbounded { dim: n - 1 });
        }
        let row_lb = bounds_to_expr(&inner.lower, true);
        let row_ub = bounds_to_expr(&inner.upper, false);
        let guards: Vec<Constraint> = p
            .constraints()
            .iter()
            .filter(|c| c.expr.coeffs[n - 1] == 0)
            .cloned()
            .collect();

        // Outer loops from successive projections.
        let mut loops = Vec::with_capacity(n.saturating_sub(1));
        let mut proj = p.clone();
        let mut stack = Vec::new();
        // Build projections from innermost-1 down to 0, then reverse.
        for k in (0..n - 1).rev() {
            let (q, _exact) = proj.project_out_dim(k + 1)?;
            proj = q;
            if proj.is_marked_empty() {
                // The piece is empty; emit an impossible loop.
                stack.push(LoopSpec {
                    dim: k,
                    lb: AstExpr::Const(1),
                    ub: AstExpr::Const(0),
                });
                continue;
            }
            let b = proj.bounds_of_last_dim();
            if b.lower.is_empty() || b.upper.is_empty() {
                return Err(PolyError::Unbounded { dim: k });
            }
            // Bounds come from a projection with dims 0..=k; widen the
            // expressions back to the full [n dims ++ params] width so they
            // can be evaluated against the shared value vector.
            let widen = |bs: &[(LinExpr, i64)]| -> Vec<(LinExpr, i64)> {
                bs.iter()
                    .map(|(e, d)| (e.insert_vars(k + 1, n - (k + 1)), *d))
                    .collect()
            };
            stack.push(LoopSpec {
                dim: k,
                lb: bounds_to_expr(&widen(&b.lower), true),
                ub: bounds_to_expr(&widen(&b.upper), false),
            });
        }
        stack.reverse();
        loops.extend(stack);
        Ok(PieceNest {
            loops,
            guards,
            row_lb,
            row_ub,
        })
    }

    /// Number of set dimensions (array rank).
    pub fn n_dims(&self) -> usize {
        self.n_dims
    }

    /// Number of parameters the enumerator expects.
    pub fn n_params(&self) -> usize {
        self.n_params
    }

    /// Whether the scanned set was exact.
    pub fn is_exact(&self) -> bool {
        self.exact
    }

    /// The per-piece loop nests (for inspection / rendering).
    pub fn pieces(&self) -> &[PieceNest] {
        &self.pieces
    }

    /// Run the enumerator: invoke `f(prefix, lo, hi)` once per row range
    /// (inclusive bounds). No allocation per invocation.
    pub fn for_each_row(&self, params: &[i64], f: &mut dyn FnMut(&[i64], i64, i64)) {
        assert_eq!(params.len(), self.n_params, "parameter count mismatch");
        // values = [dims..., params...]; dims filled during the scan.
        let mut values = vec![0i64; self.n_dims + self.n_params];
        values[self.n_dims..].copy_from_slice(params);
        for piece in &self.pieces {
            scan_piece(piece, self.n_dims, &mut values, 0, f);
        }
    }

    /// Collect all row ranges, merged and deduplicated across pieces
    /// (sorted lexicographically). Convenient for tests and one-shot use;
    /// hot paths should prefer [`Enumerator::for_each_row`].
    pub fn rows_merged(&self, params: &[i64]) -> Vec<RowRange> {
        let mut rows = Vec::new();
        self.for_each_row(params, &mut |prefix, lo, hi| {
            rows.push(RowRange {
                prefix: prefix.to_vec(),
                lo,
                hi,
            });
        });
        merge_rows(rows)
    }

    /// Render the generated program in pseudo-C, isl-AST style.
    pub fn to_pseudo_c(&self, dim_names: &[String], param_names: &[String]) -> String {
        let mut names: Vec<String> = dim_names.to_vec();
        names.extend(param_names.iter().cloned());
        let mut out = String::new();
        for (pi, piece) in self.pieces.iter().enumerate() {
            if self.pieces.len() > 1 {
                out.push_str(&format!("// piece {pi}\n"));
            }
            let mut indent = 0usize;
            for l in &piece.loops {
                let var = &names[l.dim];
                out.push_str(&"  ".repeat(indent));
                out.push_str(&format!(
                    "for (int {var} = {}; {var} <= {}; {var}++)\n",
                    l.lb.render(&names),
                    l.ub.render(&names)
                ));
                indent += 1;
            }
            if !piece.guards.is_empty() {
                out.push_str(&"  ".repeat(indent));
                let conds: Vec<String> = piece
                    .guards
                    .iter()
                    .map(|g| g.display_with(&names).to_string())
                    .collect();
                out.push_str(&format!("if ({})\n", conds.join(" && ")));
                indent += 1;
            }
            out.push_str(&"  ".repeat(indent));
            out.push_str(&format!(
                "emit_row({}..={});\n",
                piece.row_lb.render(&names),
                piece.row_ub.render(&names)
            ));
        }
        out
    }
}

fn scan_piece(
    piece: &PieceNest,
    n_dims: usize,
    values: &mut Vec<i64>,
    level: usize,
    f: &mut dyn FnMut(&[i64], i64, i64),
) {
    if level == piece.loops.len() {
        // Guards re-establish exactness of the emission.
        for g in &piece.guards {
            if !g.holds(values) {
                return;
            }
        }
        let lo = piece.row_lb.eval(values);
        let hi = piece.row_ub.eval(values);
        if lo <= hi {
            f(&values[..n_dims - 1], lo, hi);
        }
        return;
    }
    let l = &piece.loops[level];
    let lb = l.lb.eval(values);
    let ub = l.ub.eval(values);
    for v in lb..=ub {
        values[l.dim] = v;
        scan_piece(piece, n_dims, values, level + 1, f);
    }
}

/// Turn a list of `(expr, divisor)` bounds into a single `Max`/`Min`
/// expression (`lower = true` → ceil divisions under `max`).
fn bounds_to_expr(bounds: &[(LinExpr, i64)], lower: bool) -> AstExpr {
    let mut parts: Vec<AstExpr> = bounds
        .iter()
        .map(|(e, d)| AstExpr::Div {
            expr: e.clone(),
            divisor: *d,
            ceil: lower,
        })
        .collect();
    if parts.len() == 1 {
        parts.pop().unwrap()
    } else if lower {
        AstExpr::Max(parts)
    } else {
        AstExpr::Min(parts)
    }
}

/// Merge row ranges: sort lexicographically by prefix then `lo`, and fuse
/// overlapping or adjacent ranges within the same prefix. The result
/// covers exactly the same elements.
pub fn merge_rows(mut rows: Vec<RowRange>) -> Vec<RowRange> {
    rows.sort();
    let mut out: Vec<RowRange> = Vec::with_capacity(rows.len());
    for r in rows {
        if let Some(last) = out.last_mut() {
            if last.prefix == r.prefix && r.lo <= last.hi + 1 {
                last.hi = last.hi.max(r.hi);
                continue;
            }
        }
        out.push(r);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set::Set;

    /// Check the enumerator against brute-force point enumeration.
    fn check_against_bruteforce(set: &Set, params: &[i64]) {
        let enumerator = Enumerator::build(set).unwrap();
        let mut from_rows = Vec::new();
        for r in enumerator.rows_merged(params) {
            for x in r.lo..=r.hi {
                let mut pt = r.prefix.clone();
                pt.push(x);
                from_rows.push(pt);
            }
        }
        from_rows.sort();
        from_rows.dedup();
        let expected = set.points_sorted(params);
        assert_eq!(from_rows, expected, "enumerator mismatch for {set}");
    }

    #[test]
    fn rectangle_is_one_range_per_row() {
        let s = Set::parse("{ [y, x] : 0 <= y <= 2 and 0 <= x <= 9 }").unwrap();
        let e = Enumerator::build(&s).unwrap();
        let rows = e.rows_merged(&[]);
        assert_eq!(rows.len(), 3);
        assert_eq!(
            rows[0],
            RowRange {
                prefix: vec![0],
                lo: 0,
                hi: 9
            }
        );
        check_against_bruteforce(&s, &[]);
    }

    #[test]
    fn triangle_rows_shrink() {
        let s = Set::parse("{ [y, x] : 0 <= y <= 4 and 0 <= x <= y }").unwrap();
        let e = Enumerator::build(&s).unwrap();
        let rows = e.rows_merged(&[]);
        assert_eq!(rows.len(), 5);
        assert_eq!(
            rows[4],
            RowRange {
                prefix: vec![4],
                lo: 0,
                hi: 4
            }
        );
        check_against_bruteforce(&s, &[]);
    }

    #[test]
    fn parametric_rows() {
        let s = Set::parse("[n] -> { [y, x] : 0 <= y < 2 and 0 <= x < n }").unwrap();
        check_against_bruteforce(&s, &[7]);
        check_against_bruteforce(&s, &[1]);
        let e = Enumerator::build(&s).unwrap();
        assert!(e.rows_merged(&[0]).is_empty());
    }

    #[test]
    fn union_pieces_merge() {
        // Two overlapping boxes on the same row merge into one range.
        let s = Set::parse("{ [y, x] : y = 0 and 0 <= x <= 5 or y = 0 and 4 <= x <= 9 }").unwrap();
        let e = Enumerator::build(&s).unwrap();
        let rows = e.rows_merged(&[]);
        assert_eq!(
            rows,
            vec![RowRange {
                prefix: vec![0],
                lo: 0,
                hi: 9
            }]
        );
        check_against_bruteforce(&s, &[]);
    }

    #[test]
    fn one_dimensional_set() {
        let s = Set::parse("{ [x] : 3 <= x <= 11 }").unwrap();
        let e = Enumerator::build(&s).unwrap();
        let rows = e.rows_merged(&[]);
        assert_eq!(
            rows,
            vec![RowRange {
                prefix: vec![],
                lo: 3,
                hi: 11
            }]
        );
    }

    #[test]
    fn stencil_halo_image() {
        // 5-point stencil read image of a partition [p0, p1) of rows:
        // reads rows p0-1 .. p1, full width plus/minus halo handled by
        // guards at array edges.
        let s = Set::parse(
            "[p0, p1, n] -> { [y, x] : p0 - 1 <= y <= p1 and 0 <= y < n and 0 <= x < n }",
        )
        .unwrap();
        check_against_bruteforce(&s, &[2, 4, 8]);
        check_against_bruteforce(&s, &[0, 2, 8]); // clipped at the top edge
        let e = Enumerator::build(&s).unwrap();
        let rows = e.rows_merged(&[2, 4, 8]);
        // rows 1..=4, each full width 0..=7
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.lo == 0 && r.hi == 7));
    }

    #[test]
    fn guards_keep_emission_exact() {
        // A diagonal strip: constraints couple y and x.
        let s = Set::parse("{ [y, x] : 0 <= y <= 6 and y <= x <= y + 2 and x <= 6 }").unwrap();
        check_against_bruteforce(&s, &[]);
    }

    #[test]
    fn three_dimensional_scan() {
        let s =
            Set::parse("[n] -> { [z, y, x] : 0 <= z < 2 and 0 <= y < 3 and z <= x < n }").unwrap();
        check_against_bruteforce(&s, &[5]);
    }

    #[test]
    fn strided_divisions_render() {
        let s = Set::parse("{ [x] : 0 <= 2x and 2x <= 9 }").unwrap();
        let e = Enumerator::build(&s).unwrap();
        let rows = e.rows_merged(&[]);
        assert_eq!(
            rows,
            vec![RowRange {
                prefix: vec![],
                lo: 0,
                hi: 4
            }]
        );
    }

    #[test]
    fn unbounded_set_reports_error() {
        let s = Set::parse("{ [x] : x >= 0 }").unwrap();
        match Enumerator::build(&s) {
            Err(PolyError::Unbounded { dim: 0 }) => {}
            other => panic!("expected Unbounded, got {other:?}"),
        }
    }

    #[test]
    fn pseudo_c_rendering_mentions_loops() {
        let s = Set::parse("[n] -> { [y, x] : 0 <= y < n and 0 <= x <= y }").unwrap();
        let e = Enumerator::build(&s).unwrap();
        let c = e.to_pseudo_c(&["y".into(), "x".into()], &["n".into()]);
        assert!(c.contains("for (int y"));
        assert!(c.contains("emit_row"));
    }

    #[test]
    fn merge_rows_fuses_adjacent() {
        let rows = vec![
            RowRange {
                prefix: vec![1],
                lo: 5,
                hi: 9,
            },
            RowRange {
                prefix: vec![1],
                lo: 0,
                hi: 4,
            },
            RowRange {
                prefix: vec![2],
                lo: 0,
                hi: 1,
            },
        ];
        let merged = merge_rows(rows);
        assert_eq!(
            merged,
            vec![
                RowRange {
                    prefix: vec![1],
                    lo: 0,
                    hi: 9
                },
                RowRange {
                    prefix: vec![2],
                    lo: 0,
                    hi: 1
                },
            ]
        );
    }
}
