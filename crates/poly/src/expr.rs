//! Affine (linear + constant) integer expressions.

use crate::{PolyError, Result};
use serde::{Deserialize, Serialize};

/// An affine expression `c0*v0 + c1*v1 + ... + k` over the dimensions and
/// parameters of a space (dimensions first, parameters after).
///
/// Coefficients are `i64`; all combining arithmetic goes through `i128`
/// and reports overflow instead of wrapping.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LinExpr {
    /// One coefficient per dimension, then one per parameter.
    pub coeffs: Vec<i64>,
    /// The constant term.
    pub konst: i64,
}

impl LinExpr {
    /// The zero expression of the given width.
    pub fn zero(width: usize) -> Self {
        LinExpr {
            coeffs: vec![0; width],
            konst: 0,
        }
    }

    /// A constant expression.
    pub fn constant(width: usize, k: i64) -> Self {
        LinExpr {
            coeffs: vec![0; width],
            konst: k,
        }
    }

    /// The expression `1 * v_index`.
    pub fn var(width: usize, index: usize) -> Self {
        assert!(index < width, "variable index {index} out of width {width}");
        let mut coeffs = vec![0; width];
        coeffs[index] = 1;
        LinExpr { coeffs, konst: 0 }
    }

    /// Total width (dims + params) this expression ranges over.
    pub fn width(&self) -> usize {
        self.coeffs.len()
    }

    /// Coefficient of variable `i`.
    pub fn coeff(&self, i: usize) -> i64 {
        self.coeffs[i]
    }

    /// Set the coefficient of variable `i` (builder style).
    pub fn with_coeff(mut self, i: usize, c: i64) -> Self {
        self.coeffs[i] = c;
        self
    }

    /// Set the constant term (builder style).
    pub fn with_konst(mut self, k: i64) -> Self {
        self.konst = k;
        self
    }

    /// True if all coefficients are zero.
    pub fn is_constant(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0)
    }

    /// True if the expression is identically zero.
    pub fn is_zero(&self) -> bool {
        self.konst == 0 && self.is_constant()
    }

    /// Pointwise sum. Errors on width mismatch or overflow.
    pub fn add(&self, other: &LinExpr) -> Result<LinExpr> {
        self.combine(other, 1, 1)
    }

    /// Pointwise difference `self - other`.
    pub fn sub(&self, other: &LinExpr) -> Result<LinExpr> {
        self.combine(other, 1, -1)
    }

    /// `a*self + b*other` with overflow checking.
    pub fn combine(&self, other: &LinExpr, a: i64, b: i64) -> Result<LinExpr> {
        if self.width() != other.width() {
            return Err(PolyError::SpaceMismatch {
                expected: (self.width(), 0),
                got: (other.width(), 0),
            });
        }
        let comb = |x: i64, y: i64| -> Result<i64> {
            let v = (a as i128) * (x as i128) + (b as i128) * (y as i128);
            i64::try_from(v).map_err(|_| PolyError::Overflow)
        };
        let coeffs = self
            .coeffs
            .iter()
            .zip(&other.coeffs)
            .map(|(&x, &y)| comb(x, y))
            .collect::<Result<Vec<_>>>()?;
        Ok(LinExpr {
            coeffs,
            konst: comb(self.konst, other.konst)?,
        })
    }

    /// Multiply by a scalar.
    pub fn scale(&self, s: i64) -> Result<LinExpr> {
        let mul = |x: i64| -> Result<i64> {
            i64::try_from((x as i128) * (s as i128)).map_err(|_| PolyError::Overflow)
        };
        Ok(LinExpr {
            coeffs: self.coeffs.iter().map(|&c| mul(c)).collect::<Result<_>>()?,
            konst: mul(self.konst)?,
        })
    }

    /// Negation.
    pub fn neg(&self) -> LinExpr {
        LinExpr {
            coeffs: self.coeffs.iter().map(|&c| -c).collect(),
            konst: -self.konst,
        }
    }

    /// Evaluate at a full assignment `values` of length `width()`
    /// (dimensions first, then parameters). Uses `i128` internally.
    pub fn eval(&self, values: &[i64]) -> i128 {
        debug_assert_eq!(values.len(), self.width());
        let mut acc = self.konst as i128;
        for (c, v) in self.coeffs.iter().zip(values) {
            acc += (*c as i128) * (*v as i128);
        }
        acc
    }

    /// Evaluate with dims and params given separately.
    pub fn eval_split(&self, dims: &[i64], params: &[i64]) -> i128 {
        debug_assert_eq!(dims.len() + params.len(), self.width());
        let mut acc = self.konst as i128;
        for (c, v) in self.coeffs.iter().zip(dims.iter().chain(params)) {
            acc += (*c as i128) * (*v as i128);
        }
        acc
    }

    /// Substitute variable `i` with expression `repl` (whose coefficient on
    /// `i` must be zero), i.e. `self[v_i := repl]`.
    pub fn substitute(&self, i: usize, repl: &LinExpr) -> Result<LinExpr> {
        debug_assert_eq!(repl.coeffs[i], 0, "replacement must not mention v{i}");
        let c = self.coeffs[i];
        if c == 0 {
            return Ok(self.clone());
        }
        let mut without = self.clone();
        without.coeffs[i] = 0;
        without.combine(&repl.scale(c)?, 1, 1)
    }

    /// Insert `count` fresh zero-coefficient variables at position `at`.
    pub fn insert_vars(&self, at: usize, count: usize) -> LinExpr {
        let mut coeffs = Vec::with_capacity(self.coeffs.len() + count);
        coeffs.extend_from_slice(&self.coeffs[..at]);
        coeffs.extend(std::iter::repeat_n(0, count));
        coeffs.extend_from_slice(&self.coeffs[at..]);
        LinExpr {
            coeffs,
            konst: self.konst,
        }
    }

    /// Remove variable `at` (its coefficient must be zero).
    pub fn remove_var(&self, at: usize) -> LinExpr {
        debug_assert_eq!(self.coeffs[at], 0, "cannot drop live variable v{at}");
        let mut coeffs = self.coeffs.clone();
        coeffs.remove(at);
        LinExpr {
            coeffs,
            konst: self.konst,
        }
    }

    /// gcd of all coefficients and the constant (0 if identically zero).
    pub fn content(&self) -> i64 {
        let mut g = self.konst.unsigned_abs();
        for &c in &self.coeffs {
            g = gcd_u64(g, c.unsigned_abs());
        }
        g as i64
    }

    /// gcd of the coefficients only (ignoring the constant).
    pub fn coeff_content(&self) -> i64 {
        let mut g = 0u64;
        for &c in &self.coeffs {
            g = gcd_u64(g, c.unsigned_abs());
        }
        g as i64
    }

    /// Render with the given names (dims then params).
    pub fn display_with<'a>(&'a self, names: &'a [String]) -> DisplayLinExpr<'a> {
        DisplayLinExpr { expr: self, names }
    }
}

/// gcd on u64, `gcd(0, x) = x`.
pub fn gcd_u64(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Floor division `a / b` for `b > 0`.
pub fn fdiv(a: i128, b: i128) -> i128 {
    debug_assert!(b > 0);
    a.div_euclid(b)
}

/// Ceiling division `a / b` for `b > 0`.
pub fn cdiv(a: i128, b: i128) -> i128 {
    debug_assert!(b > 0);
    -((-a).div_euclid(b))
}

/// Helper for rendering a [`LinExpr`] with variable names.
pub struct DisplayLinExpr<'a> {
    expr: &'a LinExpr,
    names: &'a [String],
}

impl std::fmt::Display for DisplayLinExpr<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for (i, &c) in self.expr.coeffs.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let name = self.names.get(i).map(|s| s.as_str()).unwrap_or("?");
            if first {
                match c {
                    1 => write!(f, "{name}")?,
                    -1 => write!(f, "-{name}")?,
                    _ => write!(f, "{c}{name}")?,
                }
                first = false;
            } else if c > 0 {
                if c == 1 {
                    write!(f, " + {name}")?;
                } else {
                    write!(f, " + {c}{name}")?;
                }
            } else if c == -1 {
                write!(f, " - {name}")?;
            } else {
                write!(f, " - {}{name}", -c)?;
            }
        }
        let k = self.expr.konst;
        if first {
            write!(f, "{k}")?;
        } else if k > 0 {
            write!(f, " + {k}")?;
        } else if k < 0 {
            write!(f, " - {}", -k)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_arith() {
        let a = LinExpr::var(3, 0).with_konst(2); // v0 + 2
        let b = LinExpr::var(3, 1).with_coeff(2, 3); // v1 + 3*v2
        let s = a.add(&b).unwrap();
        assert_eq!(s.coeffs, vec![1, 1, 3]);
        assert_eq!(s.konst, 2);
        assert_eq!(s.eval(&[1, 1, 1]), 7);
        let d = s.sub(&b).unwrap();
        assert_eq!(d, a);
    }

    #[test]
    fn substitute_var() {
        // e = 2*v0 + v1; v0 := v1 + 1  =>  3*v1 + 2
        let e = LinExpr::zero(2).with_coeff(0, 2).with_coeff(1, 1);
        let repl = LinExpr::var(2, 1).with_konst(1);
        let r = e.substitute(0, &repl).unwrap();
        assert_eq!(r.coeffs, vec![0, 3]);
        assert_eq!(r.konst, 2);
    }

    #[test]
    fn overflow_detected() {
        let a = LinExpr::constant(1, i64::MAX);
        assert_eq!(a.add(&a), Err(PolyError::Overflow));
        assert_eq!(a.scale(2), Err(PolyError::Overflow));
    }

    #[test]
    fn division_helpers() {
        assert_eq!(fdiv(7, 2), 3);
        assert_eq!(fdiv(-7, 2), -4);
        assert_eq!(cdiv(7, 2), 4);
        assert_eq!(cdiv(-7, 2), -3);
        assert_eq!(gcd_u64(12, 18), 6);
        assert_eq!(gcd_u64(0, 5), 5);
    }

    #[test]
    fn insert_and_remove_vars() {
        let e = LinExpr {
            coeffs: vec![1, 2],
            konst: 5,
        };
        let wide = e.insert_vars(1, 2);
        assert_eq!(wide.coeffs, vec![1, 0, 0, 2]);
        let back = wide.remove_var(1).remove_var(1);
        assert_eq!(back, e);
    }

    #[test]
    fn display() {
        let names: Vec<String> = ["y", "x", "n"].iter().map(|s| s.to_string()).collect();
        let e = LinExpr {
            coeffs: vec![1, -2, 0],
            konst: -3,
        };
        assert_eq!(e.display_with(&names).to_string(), "y - 2x - 3");
        let z = LinExpr::zero(3);
        assert_eq!(z.display_with(&names).to_string(), "0");
    }

    #[test]
    fn content_gcds() {
        let e = LinExpr {
            coeffs: vec![4, 6],
            konst: 10,
        };
        assert_eq!(e.content(), 2);
        assert_eq!(e.coeff_content(), 2);
        let f = LinExpr {
            coeffs: vec![4, 6],
            konst: 3,
        };
        assert_eq!(f.content(), 1);
        assert_eq!(f.coeff_content(), 2);
    }
}
