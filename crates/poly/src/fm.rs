//! Fourier–Motzkin variable elimination with integer-exactness tracking.
//!
//! Eliminating a variable `v` from a conjunction of affine constraints:
//!
//! 1. If an **equality** mentions `v` with coefficient ±1, solve for `v`
//!    and substitute — exact over the integers.
//! 2. If an equality mentions `v` with coefficient `c`, `|c| > 1`, use it
//!    to cancel `v` from every other constraint. This is exact over the
//!    rationals; integer exactness requires a divisibility argument we do
//!    not track, so the result is flagged approximate. (Toolchain access
//!    maps have unit coefficients, so this path is cold.)
//! 3. Otherwise pair every lower bound `a·v + l >= 0` (`a > 0`) with every
//!    upper bound `-b·v + u >= 0` (`b > 0`) to produce `b·l + a·u >= 0`.
//!    The combination is exact over the integers when `a == 1 || b == 1`
//!    (the *real shadow* equals the *dark shadow*, cf. Pugh's Omega test).
//!
//! Results are normalized; trivially false results mark the system empty.

use crate::constraint::{Constraint, ConstraintKind, Normalized};
use crate::Result;

/// Eliminate the variable with coefficient index `var` from `constraints`
/// (each of width `width`). Returns the new constraints (width − 1, the
/// `var` column removed), whether the projection is integer-exact, and
/// whether the system was detected to be empty.
pub fn eliminate(
    constraints: &[Constraint],
    width: usize,
    var: usize,
    already_empty: bool,
) -> Result<(Vec<Constraint>, bool, bool)> {
    if already_empty {
        return Ok((Vec::new(), true, true));
    }
    debug_assert!(var < width);

    // Step 1/2: substitution through an equality.
    if let Some(pos) = constraints
        .iter()
        .position(|c| c.kind == ConstraintKind::Eq && c.expr.coeffs[var].abs() == 1)
    {
        let eq = &constraints[pos];
        let c = eq.expr.coeffs[var];
        // c*v + rest == 0  =>  v == -rest/c; with c = ±1: v = -c*rest.
        let mut rest = eq.expr.clone();
        rest.coeffs[var] = 0;
        let repl = rest.scale(-c)?;
        let mut out = Vec::with_capacity(constraints.len() - 1);
        let mut empty = false;
        for (i, other) in constraints.iter().enumerate() {
            if i == pos {
                continue;
            }
            let e = other.expr.substitute(var, &repl)?;
            push_normalized(
                &mut out,
                Constraint {
                    kind: other.kind,
                    expr: e.remove_var(var),
                },
                &mut empty,
            );
            if empty {
                return Ok((Vec::new(), true, true));
            }
        }
        return Ok((out, true, empty));
    }

    // Non-unit equality: rational cancellation (approximate).
    if let Some(pos) = constraints
        .iter()
        .position(|c| c.kind == ConstraintKind::Eq && c.expr.coeffs[var] != 0)
    {
        let eq = &constraints[pos];
        let c = eq.expr.coeffs[var];
        let mut out = Vec::with_capacity(constraints.len() - 1);
        let mut empty = false;
        for (i, other) in constraints.iter().enumerate() {
            if i == pos {
                continue;
            }
            let d = other.expr.coeffs[var];
            let combined = if d == 0 {
                other.expr.clone()
            } else {
                // |c|*other - sign(c)*d*eq cancels v.
                other.expr.combine(&eq.expr, c.abs(), -(c.signum() * d))?
            };
            debug_assert_eq!(combined.coeffs[var], 0);
            push_normalized(
                &mut out,
                Constraint {
                    kind: other.kind,
                    expr: combined.remove_var(var),
                },
                &mut empty,
            );
            if empty {
                return Ok((Vec::new(), false, true));
            }
        }
        return Ok((out, false, empty));
    }

    // Step 3: inequality combination.
    let mut lowers = Vec::new(); // a*v + l >= 0, a > 0
    let mut uppers = Vec::new(); // -b*v + u >= 0, b > 0
    let mut rest = Vec::new();
    for c in constraints {
        let a = c.expr.coeffs[var];
        if a == 0 {
            rest.push(c.clone());
        } else if a > 0 {
            lowers.push(c.clone());
        } else {
            uppers.push(c.clone());
        }
    }

    let mut exact = true;
    let mut empty = false;
    let mut out: Vec<Constraint> = Vec::with_capacity(rest.len() + lowers.len() * uppers.len());
    for c in rest {
        push_normalized(
            &mut out,
            Constraint {
                kind: c.kind,
                expr: c.expr.remove_var(var),
            },
            &mut empty,
        );
        if empty {
            return Ok((Vec::new(), true, true));
        }
    }
    for lo in &lowers {
        let a = lo.expr.coeffs[var];
        for up in &uppers {
            let b = -up.expr.coeffs[var];
            debug_assert!(a > 0 && b > 0);
            if a != 1 && b != 1 {
                exact = false;
            }
            // b*(a v + l) + a*(-b v + u) = b*l + a*u >= 0
            let combined = lo.expr.combine(&up.expr, b, a)?;
            debug_assert_eq!(combined.coeffs[var], 0);
            push_normalized(
                &mut out,
                Constraint::ge0(combined.remove_var(var)),
                &mut empty,
            );
            if empty {
                return Ok((Vec::new(), exact, true));
            }
        }
    }
    drop_redundant(&mut out);
    Ok((out, exact, empty))
}

/// Normalize and insert a constraint, updating the empty flag and skipping
/// duplicates / trivially true constraints.
fn push_normalized(out: &mut Vec<Constraint>, c: Constraint, empty: &mut bool) {
    match c.canonical() {
        Normalized::True => {}
        Normalized::False => *empty = true,
        Normalized::Constraint(c) => {
            if !out.contains(&c) {
                out.push(c);
            }
        }
    }
}

/// Remove inequalities that are strictly implied by another with identical
/// coefficients: of `e + k1 >= 0` and `e + k2 >= 0`, only the smaller `k`
/// matters.
fn drop_redundant(constraints: &mut Vec<Constraint>) {
    let mut keep = vec![true; constraints.len()];
    for i in 0..constraints.len() {
        if !keep[i] || constraints[i].kind != ConstraintKind::GeZero {
            continue;
        }
        for j in 0..constraints.len() {
            if i == j || !keep[j] || constraints[j].kind != ConstraintKind::GeZero {
                continue;
            }
            if constraints[i].expr.coeffs == constraints[j].expr.coeffs
                && constraints[i].expr.konst <= constraints[j].expr.konst
            {
                keep[j] = false;
            }
        }
    }
    let mut it = keep.iter();
    constraints.retain(|_| *it.next().unwrap());
}

/// Pick the variable whose elimination produces the fewest combined
/// constraints (classic FM heuristic): minimize `lowers * uppers`.
pub fn cheapest_var(constraints: &[Constraint], width: usize) -> usize {
    let mut best = 0usize;
    let mut best_cost = usize::MAX;
    for v in 0..width {
        let mut lo = 0usize;
        let mut hi = 0usize;
        let mut in_eq = false;
        for c in constraints {
            let a = c.expr.coeffs[v];
            if a == 0 {
                continue;
            }
            if c.kind == ConstraintKind::Eq {
                in_eq = true;
                break;
            }
            if a > 0 {
                lo += 1;
            } else {
                hi += 1;
            }
        }
        let cost = if in_eq { 0 } else { lo * hi };
        if cost < best_cost {
            best_cost = cost;
            best = v;
            if cost == 0 {
                break;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;

    fn ge(coeffs: Vec<i64>, k: i64) -> Constraint {
        Constraint::ge0(LinExpr { coeffs, konst: k })
    }
    fn eq(coeffs: Vec<i64>, k: i64) -> Constraint {
        Constraint::eq(LinExpr { coeffs, konst: k })
    }

    #[test]
    fn eliminate_with_unit_equality_is_exact() {
        // v0 == v1 + 2 and 0 <= v0 <= 5  --eliminate v0-->  -2 <= v1 <= 3
        let cs = vec![eq(vec![1, -1], -2), ge(vec![1, 0], 0), ge(vec![-1, 0], 5)];
        let (out, exact, empty) = eliminate(&cs, 2, 0, false).unwrap();
        assert!(exact);
        assert!(!empty);
        // v1 + 2 >= 0 and 3 - v1 >= 0
        assert!(out
            .iter()
            .any(|c| c.expr.coeffs == vec![1] && c.expr.konst == 2));
        assert!(out
            .iter()
            .any(|c| c.expr.coeffs == vec![-1] && c.expr.konst == 3));
    }

    #[test]
    fn eliminate_pairs_bounds() {
        // x >= y and x <= 4 --eliminate x--> y <= 4
        let cs = vec![ge(vec![1, -1], 0), ge(vec![-1, 0], 4)];
        let (out, exact, empty) = eliminate(&cs, 2, 0, false).unwrap();
        assert!(exact);
        assert!(!empty);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].expr.coeffs, vec![-1]);
        assert_eq!(out[0].expr.konst, 4);
    }

    #[test]
    fn detects_empty_after_elimination() {
        // x >= 5 and x <= 2 --eliminate x--> -3 >= 0: empty.
        let cs = vec![ge(vec![1], -5), ge(vec![-1], 2)];
        let (_, _, empty) = eliminate(&cs, 1, 0, false).unwrap();
        assert!(empty);
    }

    #[test]
    fn non_unit_coefficients_flag_inexact() {
        // 2x <= 7 and 3x >= 2: both coefficients non-unit.
        let cs = vec![ge(vec![-2], 7), ge(vec![3], -2)];
        let (_, exact, empty) = eliminate(&cs, 1, 0, false).unwrap();
        assert!(!exact);
        assert!(!empty);
    }

    #[test]
    fn unit_coefficient_on_one_side_stays_exact() {
        // x >= 0 (unit) and 2x <= n (non-unit): exact since one side is unit.
        let cs = vec![ge(vec![1, 0], 0), ge(vec![-2, 1], 0)];
        let (out, exact, _) = eliminate(&cs, 2, 0, false).unwrap();
        assert!(exact);
        // n >= 0 remains.
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn redundant_bounds_dropped() {
        let mut cs = vec![ge(vec![1], -2), ge(vec![1], -5), ge(vec![1], 0)];
        drop_redundant(&mut cs);
        // x - 5 >= 0 implies the others.
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].expr.konst, -5);
    }

    #[test]
    fn cheapest_var_prefers_equalities() {
        let cs = vec![eq(vec![0, 1], 0), ge(vec![1, 0], 0), ge(vec![-1, 0], 5)];
        assert_eq!(cheapest_var(&cs, 2), 1);
    }
}
