//! A small parser for isl-like set/map notation.
//!
//! Supported grammar (whitespace-insensitive):
//!
//! ```text
//! set    :=  params? '{' tuple (':' disj)? '}'
//! map    :=  params? '{' tuple '->' tuple (':' disj)? '}'
//! params :=  '[' ident (',' ident)* ']' '->'
//! tuple  :=  '[' ident (',' ident)* ']'
//! disj   :=  conj ('or' conj)*
//! conj   :=  chain ('and' chain)*
//! chain  :=  expr (relop expr)+          // chains allowed: 0 <= y <= x
//! relop  :=  '<=' | '<' | '>=' | '>' | '=' | '=='
//! expr   :=  ['-'] term (('+'|'-') term)*
//! term   :=  INT ['*'] ident | INT | ident | '(' expr ')'
//! ```
//!
//! Example: `"[n] -> { [y, x] : 0 <= y <= x and x < n }"`.

use crate::constraint::Constraint;
use crate::expr::LinExpr;
use crate::map::Map;
use crate::polyhedron::Polyhedron;
use crate::set::Set;
use crate::space::Space;
use crate::{PolyError, Result};

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    LParen,
    RParen,
    Comma,
    Colon,
    Arrow,
    Plus,
    Minus,
    Star,
    Le,
    Lt,
    Ge,
    Gt,
    Eq,
    And,
    Or,
}

fn lex(text: &str) -> Result<Vec<Tok>> {
    let mut toks = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '{' => {
                toks.push(Tok::LBrace);
                i += 1;
            }
            '}' => {
                toks.push(Tok::RBrace);
                i += 1;
            }
            '[' => {
                toks.push(Tok::LBracket);
                i += 1;
            }
            ']' => {
                toks.push(Tok::RBracket);
                i += 1;
            }
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            ',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            ':' => {
                toks.push(Tok::Colon);
                i += 1;
            }
            '+' => {
                toks.push(Tok::Plus);
                i += 1;
            }
            '*' => {
                toks.push(Tok::Star);
                i += 1;
            }
            '-' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    toks.push(Tok::Arrow);
                    i += 2;
                } else {
                    toks.push(Tok::Minus);
                    i += 1;
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    toks.push(Tok::Le);
                    i += 2;
                } else {
                    toks.push(Tok::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    toks.push(Tok::Ge);
                    i += 2;
                } else {
                    toks.push(Tok::Gt);
                    i += 1;
                }
            }
            '=' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    i += 2;
                } else {
                    i += 1;
                }
                toks.push(Tok::Eq);
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let n: i64 = text[start..i]
                    .parse()
                    .map_err(|_| PolyError::Parse(format!("bad integer at {start}")))?;
                toks.push(Tok::Int(n));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] == b'.')
                {
                    i += 1;
                }
                let word = &text[start..i];
                match word {
                    "and" => toks.push(Tok::And),
                    "or" => toks.push(Tok::Or),
                    _ => toks.push(Tok::Ident(word.to_string())),
                }
            }
            other => {
                return Err(PolyError::Parse(format!(
                    "unexpected character {other:?} at {i}"
                )))
            }
        }
    }
    Ok(toks)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
    names: Vec<String>, // dims then params, set before parsing constraints
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Result<Tok> {
        let t = self
            .toks
            .get(self.pos)
            .cloned()
            .ok_or_else(|| PolyError::Parse("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, t: Tok) -> Result<()> {
        let got = self.next()?;
        if got == t {
            Ok(())
        } else {
            Err(PolyError::Parse(format!("expected {t:?}, got {got:?}")))
        }
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident_list(&mut self) -> Result<Vec<String>> {
        self.expect(Tok::LBracket)?;
        let mut names = Vec::new();
        if self.peek() == Some(&Tok::RBracket) {
            self.pos += 1;
            return Ok(names);
        }
        loop {
            match self.next()? {
                Tok::Ident(s) => names.push(s),
                other => return Err(PolyError::Parse(format!("expected name, got {other:?}"))),
            }
            match self.next()? {
                Tok::Comma => continue,
                Tok::RBracket => break,
                other => {
                    return Err(PolyError::Parse(format!(
                        "expected ',' or ']', got {other:?}"
                    )))
                }
            }
        }
        Ok(names)
    }

    fn width(&self) -> usize {
        self.names.len()
    }

    fn var_index(&self, name: &str) -> Result<usize> {
        self.names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| PolyError::Parse(format!("unknown variable {name:?}")))
    }

    // expr := ['-'] term (('+'|'-') term)*
    fn expr(&mut self) -> Result<LinExpr> {
        let mut acc = if self.eat(&Tok::Minus) {
            self.term()?.neg()
        } else {
            self.term()?
        };
        loop {
            if self.eat(&Tok::Plus) {
                acc = acc.add(&self.term()?)?;
            } else if self.eat(&Tok::Minus) {
                acc = acc.sub(&self.term()?)?;
            } else {
                break;
            }
        }
        Ok(acc)
    }

    // term := '-' term | INT ['*'] ident | INT | ident | '(' expr ')'
    fn term(&mut self) -> Result<LinExpr> {
        match self.next()? {
            Tok::Minus => Ok(self.term()?.neg()),
            Tok::Int(n) => {
                // optional multiplication with an identifier
                let star = self.eat(&Tok::Star);
                if let Some(Tok::Ident(_)) = self.peek() {
                    if let Tok::Ident(name) = self.next()? {
                        let idx = self.var_index(&name)?;
                        return Ok(LinExpr::zero(self.width()).with_coeff(idx, n));
                    }
                    unreachable!()
                } else if star {
                    return Err(PolyError::Parse("expected identifier after '*'".into()));
                }
                Ok(LinExpr::constant(self.width(), n))
            }
            Tok::Ident(name) => {
                let idx = self.var_index(&name)?;
                Ok(LinExpr::var(self.width(), idx))
            }
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            other => Err(PolyError::Parse(format!(
                "expected expression, got {other:?}"
            ))),
        }
    }

    // chain := expr (relop expr)+
    fn chain(&mut self) -> Result<Vec<Constraint>> {
        let mut constraints = Vec::new();
        let mut lhs = self.expr()?;
        let mut any = false;
        while let Some(Tok::Le | Tok::Lt | Tok::Ge | Tok::Gt | Tok::Eq) = self.peek() {
            let op = self.next()?;
            let rhs = self.expr()?;
            let c = match op {
                Tok::Le => Constraint::le(&lhs, &rhs)?,
                Tok::Lt => Constraint::lt(&lhs, &rhs)?,
                Tok::Ge => Constraint::ge(&lhs, &rhs)?,
                Tok::Gt => Constraint::lt(&rhs, &lhs)?,
                Tok::Eq => Constraint::eq(lhs.sub(&rhs)?),
                _ => unreachable!(),
            };
            constraints.push(c);
            lhs = rhs;
            any = true;
        }
        if !any {
            return Err(PolyError::Parse("expected comparison operator".into()));
        }
        Ok(constraints)
    }

    // conj := chain ('and' chain)*
    fn conjunction(&mut self, n_dims: usize, n_params: usize) -> Result<Polyhedron> {
        let mut p = Polyhedron::universe(n_dims, n_params);
        loop {
            for c in self.chain()? {
                p.add_constraint(c);
            }
            if !self.eat(&Tok::And) {
                break;
            }
        }
        Ok(p)
    }

    // disj := conj ('or' conj)*
    fn disjunction(&mut self, n_dims: usize, n_params: usize) -> Result<Vec<Polyhedron>> {
        let mut pieces = vec![self.conjunction(n_dims, n_params)?];
        while self.eat(&Tok::Or) {
            pieces.push(self.conjunction(n_dims, n_params)?);
        }
        Ok(pieces)
    }
}

fn parse_prefix(parser: &mut Parser) -> Result<Vec<String>> {
    // Optional parameter tuple: '[' ... ']' '->' before '{'.
    if parser.peek() == Some(&Tok::LBracket) {
        let params = parser.ident_list()?;
        parser.expect(Tok::Arrow)?;
        Ok(params)
    } else {
        Ok(Vec::new())
    }
}

/// Parse a [`Set`] from isl-like notation.
pub fn parse_set(text: &str) -> Result<Set> {
    let toks = lex(text)?;
    let mut p = Parser {
        toks,
        pos: 0,
        names: Vec::new(),
    };
    let params = parse_prefix(&mut p)?;
    p.expect(Tok::LBrace)?;
    let dims = p.ident_list()?;
    let space = Space::from_names(dims.clone(), params.clone());
    let mut names = dims;
    names.extend(params);
    p.names = names;

    let pieces = if p.eat(&Tok::Colon) {
        p.disjunction(space.n_dims(), space.n_params())?
    } else {
        vec![Polyhedron::universe(space.n_dims(), space.n_params())]
    };
    p.expect(Tok::RBrace)?;
    if p.pos != p.toks.len() {
        return Err(PolyError::Parse("trailing tokens after '}'".into()));
    }
    Ok(Set::from_pieces(space, pieces))
}

/// Parse a [`Map`] from isl-like notation.
pub fn parse_map(text: &str) -> Result<Map> {
    let toks = lex(text)?;
    let mut p = Parser {
        toks,
        pos: 0,
        names: Vec::new(),
    };
    let params = parse_prefix(&mut p)?;
    p.expect(Tok::LBrace)?;
    let in_dims = p.ident_list()?;
    p.expect(Tok::Arrow)?;
    let out_dims = p.ident_list()?;
    let n_in = in_dims.len();
    let mut dims = in_dims;
    dims.extend(out_dims);
    let space = Space::from_names(dims.clone(), params.clone());
    let mut names = dims;
    names.extend(params);
    p.names = names;

    let pieces = if p.eat(&Tok::Colon) {
        p.disjunction(space.n_dims(), space.n_params())?
    } else {
        vec![Polyhedron::universe(space.n_dims(), space.n_params())]
    };
    p.expect(Tok::RBrace)?;
    if p.pos != p.toks.len() {
        return Err(PolyError::Parse("trailing tokens after '}'".into()));
    }
    Ok(Map::from_relation(n_in, Set::from_pieces(space, pieces)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chained_comparisons() {
        let s = parse_set("{ [y, x] : 0 <= y <= x <= 4 }").unwrap();
        assert_eq!(s.count_points(&[]), 15);
    }

    #[test]
    fn disjunction_makes_pieces() {
        let s = parse_set("{ [x] : 0 <= x <= 2 or 10 <= x <= 11 }").unwrap();
        assert_eq!(s.pieces().len(), 2);
        assert_eq!(s.count_points(&[]), 5);
    }

    #[test]
    fn coefficients_and_parens() {
        let s = parse_set("{ [x] : 2x - (x + 1) >= 0 and x <= 5 }").unwrap();
        // x >= 1 and x <= 5
        assert_eq!(s.count_points(&[]), 5);
        let t = parse_set("{ [x] : 2 * x >= 4 and x < 4 }").unwrap();
        assert_eq!(t.count_points(&[]), 2); // x in {2, 3}
    }

    #[test]
    fn params_resolve() {
        let s = parse_set("[n, m] -> { [x] : m <= x and x < n }").unwrap();
        assert_eq!(s.count_points(&[10, 7]), 3);
    }

    #[test]
    fn map_with_equalities() {
        let m = parse_map("{ [i, j] -> [a] : a = 3i + j }").unwrap();
        let out = m.apply_point(&[2, 1], &[]).unwrap();
        assert_eq!(out, vec![vec![7]]);
    }

    #[test]
    fn gt_operator() {
        let s = parse_set("{ [x] : x > 2 and x < 6 }").unwrap();
        assert_eq!(s.points_sorted(&[]), vec![vec![3], vec![4], vec![5]]);
    }

    #[test]
    fn negative_leading_term() {
        let s = parse_set("{ [x] : -x >= -3 and x >= 0 }").unwrap();
        assert_eq!(s.count_points(&[]), 4);
    }

    #[test]
    fn universe_without_constraints() {
        let s = parse_set("[n] -> { [x, y] }").unwrap();
        assert!(s.contains(&[100, -50], &[0]));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_set("{ [x] : x ** 2 }").is_err());
        assert!(parse_set("{ [x] : y >= 0 }").is_err());
        assert!(parse_set("{ [x] : x }").is_err());
        assert!(parse_set("{ [x] : x >= 0 } trailing").is_err());
    }

    #[test]
    fn dotted_names_for_cuda_intrinsics() {
        // Names like "blockIdx.x" are single identifiers in our dialect.
        let s = parse_set("[n] -> { [bo.x, bi.x] : 0 <= bi.x and bi.x < n }").unwrap();
        assert_eq!(s.n_dims(), 2);
    }
}
