//! The kernel intermediate representation.

use crate::types::ScalarTy;
use crate::{KernelError, Result};
use serde::{Deserialize, Serialize};

/// CUDA grid intrinsics, per component. The `w` component is one of the
/// three grid dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GridVar {
    ThreadIdx(Axis),
    BlockIdx(Axis),
    BlockDim(Axis),
    GridDim(Axis),
}

/// A grid axis; `X` is the fastest-varying.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Axis {
    X,
    Y,
    Z,
}

impl Axis {
    /// All axes in `x, y, z` order.
    pub const ALL: [Axis; 3] = [Axis::X, Axis::Y, Axis::Z];

    /// Index in `x, y, z` order (CUDA component order).
    pub fn xyz_index(self) -> usize {
        match self {
            Axis::X => 0,
            Axis::Y => 1,
            Axis::Z => 2,
        }
    }

    /// Index in `z, y, x` order (the paper's tuple order).
    pub fn zyx_index(self) -> usize {
        match self {
            Axis::Z => 0,
            Axis::Y => 1,
            Axis::X => 2,
        }
    }

    /// Lowercase letter.
    pub fn letter(self) -> char {
        match self {
            Axis::X => 'x',
            Axis::Y => 'y',
            Axis::Z => 'z',
        }
    }
}

impl std::fmt::Display for GridVar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridVar::ThreadIdx(a) => write!(f, "threadIdx.{}", a.letter()),
            GridVar::BlockIdx(a) => write!(f, "blockIdx.{}", a.letter()),
            GridVar::BlockDim(a) => write!(f, "blockDim.{}", a.letter()),
            GridVar::GridDim(a) => write!(f, "gridDim.{}", a.letter()),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Min,
    Max,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
    And,
    Or,
}

impl BinOp {
    /// Does this operator yield a boolean (0/1 integer)?
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::EqEq | BinOp::Ne
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    Neg,
    Not,
    Sqrt,
    Abs,
    Exp,
    Log,
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Floating-point literal (carried as f64; narrowed on use).
    Float(f64),
    /// Local variable or scalar parameter reference.
    Var(String),
    /// CUDA grid intrinsic.
    Grid(GridVar),
    /// Array element load: `array[indices...]`, outermost index first.
    Load {
        array: String,
        indices: Vec<Expr>,
    },
    Unary(UnOp, Box<Expr>),
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// C-style cast.
    Cast(ScalarTy, Box<Expr>),
    /// Ternary `cond ? a : b`.
    Select(Box<Expr>, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience: binary op boxing.
    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Binary(op, Box::new(a), Box::new(b))
    }

    /// Convenience: unary op boxing.
    pub fn un(op: UnOp, a: Expr) -> Expr {
        Expr::Unary(op, Box::new(a))
    }

    /// Walk the expression tree, visiting every node.
    pub fn visit(&self, f: &mut dyn FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Load { indices, .. } => {
                for i in indices {
                    i.visit(f);
                }
            }
            Expr::Unary(_, a) => a.visit(f),
            Expr::Binary(_, a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Expr::Cast(_, a) => a.visit(f),
            Expr::Select(c, a, b) => {
                c.visit(f);
                a.visit(f);
                b.visit(f);
            }
            _ => {}
        }
    }

    /// Rewrite the tree bottom-up with `f` applied to every node.
    pub fn rewrite(&self, f: &dyn Fn(Expr) -> Expr) -> Expr {
        let rebuilt = match self {
            Expr::Load { array, indices } => Expr::Load {
                array: array.clone(),
                indices: indices.iter().map(|i| i.rewrite(f)).collect(),
            },
            Expr::Unary(op, a) => Expr::un(*op, a.rewrite(f)),
            Expr::Binary(op, a, b) => Expr::bin(*op, a.rewrite(f), b.rewrite(f)),
            Expr::Cast(ty, a) => Expr::Cast(*ty, Box::new(a.rewrite(f))),
            Expr::Select(c, a, b) => Expr::Select(
                Box::new(c.rewrite(f)),
                Box::new(a.rewrite(f)),
                Box::new(b.rewrite(f)),
            ),
            other => other.clone(),
        };
        f(rebuilt)
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// Declare-and-initialize a local variable.
    Let { var: String, value: Expr },
    /// Assign to an existing local variable.
    Assign { var: String, value: Expr },
    /// `array[indices...] = value`.
    Store {
        array: String,
        indices: Vec<Expr>,
        value: Expr,
    },
    /// `if (cond) { then_ } else { else_ }`.
    If {
        cond: Expr,
        then_: Vec<Stmt>,
        else_: Vec<Stmt>,
    },
    /// `for (var = lo; var < hi; var += step)` — half-open, positive step.
    For {
        var: String,
        lo: Expr,
        hi: Expr,
        step: i64,
        body: Vec<Stmt>,
    },
    /// Early exit from the kernel (the `if (i >= n) return;` guard idiom).
    Return,
    /// `__syncthreads()` — a no-op for our block-sequential interpreter,
    /// kept so source can round-trip.
    SyncThreads,
}

impl Stmt {
    /// Visit every statement (pre-order) and every expression it contains.
    pub fn visit(&self, on_stmt: &mut dyn FnMut(&Stmt), on_expr: &mut dyn FnMut(&Expr)) {
        on_stmt(self);
        match self {
            Stmt::Let { value, .. } | Stmt::Assign { value, .. } => value.visit(on_expr),
            Stmt::Store { indices, value, .. } => {
                for i in indices {
                    i.visit(on_expr);
                }
                value.visit(on_expr);
            }
            Stmt::If { cond, then_, else_ } => {
                cond.visit(on_expr);
                for s in then_ {
                    s.visit(on_stmt, on_expr);
                }
                for s in else_ {
                    s.visit(on_stmt, on_expr);
                }
            }
            Stmt::For { lo, hi, body, .. } => {
                lo.visit(on_expr);
                hi.visit(on_expr);
                for s in body {
                    s.visit(on_stmt, on_expr);
                }
            }
            Stmt::Return | Stmt::SyncThreads => {}
        }
    }

    /// Rewrite every expression in this statement tree.
    pub fn rewrite_exprs(&self, f: &dyn Fn(Expr) -> Expr) -> Stmt {
        match self {
            Stmt::Let { var, value } => Stmt::Let {
                var: var.clone(),
                value: value.rewrite(f),
            },
            Stmt::Assign { var, value } => Stmt::Assign {
                var: var.clone(),
                value: value.rewrite(f),
            },
            Stmt::Store {
                array,
                indices,
                value,
            } => Stmt::Store {
                array: array.clone(),
                indices: indices.iter().map(|i| i.rewrite(f)).collect(),
                value: value.rewrite(f),
            },
            Stmt::If { cond, then_, else_ } => Stmt::If {
                cond: cond.rewrite(f),
                then_: then_.iter().map(|s| s.rewrite_exprs(f)).collect(),
                else_: else_.iter().map(|s| s.rewrite_exprs(f)).collect(),
            },
            Stmt::For {
                var,
                lo,
                hi,
                step,
                body,
            } => Stmt::For {
                var: var.clone(),
                lo: lo.rewrite(f),
                hi: hi.rewrite(f),
                step: *step,
                body: body.iter().map(|s| s.rewrite_exprs(f)).collect(),
            },
            Stmt::Return => Stmt::Return,
            Stmt::SyncThreads => Stmt::SyncThreads,
        }
    }
}

/// Size of one array dimension, known at kernel-analysis time as either a
/// constant or a scalar kernel parameter.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Extent {
    Const(i64),
    Param(String),
}

impl std::fmt::Display for Extent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Extent::Const(c) => write!(f, "{c}"),
            Extent::Param(p) => write!(f, "{p}"),
        }
    }
}

/// A kernel parameter: a scalar or an array with typed element and
/// (symbolically) sized dimensions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum KernelParam {
    Scalar {
        name: String,
        ty: ScalarTy,
    },
    Array {
        name: String,
        elem: ScalarTy,
        /// Outermost dimension first; row-major storage (paper §6.1).
        extents: Vec<Extent>,
    },
}

impl KernelParam {
    /// Parameter name.
    pub fn name(&self) -> &str {
        match self {
            KernelParam::Scalar { name, .. } | KernelParam::Array { name, .. } => name,
        }
    }

    /// Is this an array parameter?
    pub fn is_array(&self) -> bool {
        matches!(self, KernelParam::Array { .. })
    }
}

/// A device kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    pub name: String,
    pub params: Vec<KernelParam>,
    pub body: Vec<Stmt>,
}

impl Kernel {
    /// Find a parameter by name.
    pub fn param(&self, name: &str) -> Option<&KernelParam> {
        self.params.iter().find(|p| p.name() == name)
    }

    /// Position of a parameter.
    pub fn param_index(&self, name: &str) -> Option<usize> {
        self.params.iter().position(|p| p.name() == name)
    }

    /// Names of the scalar parameters, in order.
    pub fn scalar_params(&self) -> Vec<&str> {
        self.params
            .iter()
            .filter_map(|p| match p {
                KernelParam::Scalar { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Names of the array parameters, in order.
    pub fn array_params(&self) -> Vec<&str> {
        self.params
            .iter()
            .filter_map(|p| match p {
                KernelParam::Array { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Structural validation: every referenced variable is a parameter,
    /// a local `Let`/`For` binding, or a grid intrinsic; every array
    /// access has the right rank.
    pub fn validate(&self) -> Result<()> {
        let mut scope: Vec<String> = self
            .params
            .iter()
            .filter(|p| !p.is_array())
            .map(|p| p.name().to_string())
            .collect();
        self.validate_block(&self.body, &mut scope)
    }

    fn validate_block(&self, body: &[Stmt], scope: &mut Vec<String>) -> Result<()> {
        let depth = scope.len();
        for s in body {
            match s {
                Stmt::Let { var, value } => {
                    self.validate_expr(value, scope)?;
                    scope.push(var.clone());
                }
                Stmt::Assign { var, value } => {
                    if !scope.contains(var) {
                        return Err(KernelError::UnknownVar(var.clone()));
                    }
                    self.validate_expr(value, scope)?;
                }
                Stmt::Store {
                    array,
                    indices,
                    value,
                } => {
                    self.validate_access(array, indices, scope)?;
                    self.validate_expr(value, scope)?;
                }
                Stmt::If { cond, then_, else_ } => {
                    self.validate_expr(cond, scope)?;
                    self.validate_block(then_, scope)?;
                    self.validate_block(else_, scope)?;
                }
                Stmt::For {
                    var,
                    lo,
                    hi,
                    step,
                    body,
                } => {
                    if *step <= 0 {
                        return Err(KernelError::TypeMismatch {
                            context: format!("loop step {step} must be positive"),
                        });
                    }
                    self.validate_expr(lo, scope)?;
                    self.validate_expr(hi, scope)?;
                    scope.push(var.clone());
                    self.validate_block(body, scope)?;
                    scope.pop();
                }
                Stmt::Return | Stmt::SyncThreads => {}
            }
        }
        scope.truncate(depth);
        Ok(())
    }

    fn validate_access(&self, array: &str, indices: &[Expr], scope: &[String]) -> Result<()> {
        match self.param(array) {
            Some(KernelParam::Array { extents, .. }) => {
                if extents.len() != indices.len() {
                    return Err(KernelError::TypeMismatch {
                        context: format!(
                            "array {array:?} has rank {} but was indexed with {} indices",
                            extents.len(),
                            indices.len()
                        ),
                    });
                }
            }
            _ => return Err(KernelError::UnknownArray(array.to_string())),
        }
        for i in indices {
            self.validate_expr(i, scope)?;
        }
        Ok(())
    }

    fn validate_expr(&self, e: &Expr, scope: &[String]) -> Result<()> {
        match e {
            Expr::Var(v) => {
                if !scope.contains(v) {
                    return Err(KernelError::UnknownVar(v.clone()));
                }
                Ok(())
            }
            Expr::Load { array, indices } => self.validate_access(array, indices, scope),
            Expr::Unary(_, a) => self.validate_expr(a, scope),
            Expr::Binary(_, a, b) => {
                self.validate_expr(a, scope)?;
                self.validate_expr(b, scope)
            }
            Expr::Cast(_, a) => self.validate_expr(a, scope),
            Expr::Select(c, a, b) => {
                self.validate_expr(c, scope)?;
                self.validate_expr(a, scope)?;
                self.validate_expr(b, scope)
            }
            Expr::Int(_) | Expr::Float(_) | Expr::Grid(_) => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    #[test]
    fn validate_accepts_wellformed() {
        let k = Kernel {
            name: "copy".into(),
            params: vec![
                KernelParam::Scalar {
                    name: "n".into(),
                    ty: ScalarTy::I64,
                },
                KernelParam::Array {
                    name: "a".into(),
                    elem: ScalarTy::F32,
                    extents: vec![Extent::Param("n".into())],
                },
                KernelParam::Array {
                    name: "b".into(),
                    elem: ScalarTy::F32,
                    extents: vec![Extent::Param("n".into())],
                },
            ],
            body: vec![
                let_("i", global_x()),
                if_(
                    v("i").lt(v("n")),
                    vec![store("b", vec![v("i")], load("a", vec![v("i")]))],
                    vec![],
                ),
            ],
        };
        k.validate().unwrap();
    }

    #[test]
    fn validate_rejects_unknown_var() {
        let k = Kernel {
            name: "bad".into(),
            params: vec![],
            body: vec![let_("i", v("ghost"))],
        };
        assert_eq!(k.validate(), Err(KernelError::UnknownVar("ghost".into())));
    }

    #[test]
    fn validate_rejects_rank_mismatch() {
        let k = Kernel {
            name: "bad".into(),
            params: vec![KernelParam::Array {
                name: "a".into(),
                elem: ScalarTy::F32,
                extents: vec![Extent::Const(8), Extent::Const(8)],
            }],
            body: vec![store("a", vec![Expr::Int(0)], Expr::Float(0.0))],
        };
        assert!(matches!(
            k.validate(),
            Err(KernelError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn validate_scopes_loop_vars() {
        let k = Kernel {
            name: "loops".into(),
            params: vec![],
            body: vec![
                for_("j", Expr::Int(0), Expr::Int(4), vec![let_("t", v("j"))]),
                // `j` is out of scope here:
                let_("u", v("j")),
            ],
        };
        assert_eq!(k.validate(), Err(KernelError::UnknownVar("j".into())));
    }

    #[test]
    fn expr_rewrite_replaces_intrinsics() {
        let e = global_x();
        let rewritten = e.rewrite(&|node| match node {
            Expr::Grid(GridVar::BlockIdx(Axis::X)) => Expr::Int(7),
            other => other,
        });
        let mut found = false;
        rewritten.visit(&mut |n| {
            if matches!(n, Expr::Grid(GridVar::BlockIdx(_))) {
                found = true;
            }
        });
        assert!(!found, "blockIdx should have been replaced");
    }
}
