//! Per-thread interpretation of kernel IR.
//!
//! The interpreter serves two purposes:
//!
//! 1. **Functional execution** — runs real data through the kernel for
//!    bit-exact correctness checks of the partitioning pipeline.
//! 2. **Cost measurement** — counts executed operations, loads and stores
//!    per thread; the simulator samples threads in this mode to calibrate
//!    its timing model ([`ExecMode::CountOnly`]).

use crate::ir::{Axis, BinOp, Expr, Extent, GridVar, Kernel, KernelParam, Stmt, UnOp};
use crate::types::{Dim3, ScalarTy, Value};
use crate::{KernelError, Result};

/// Memory interface the interpreter reads/writes through. `array` is the
/// buffer handle from the corresponding [`KernelArg::Array`]; `offset` is a
/// linear element index (row-major).
pub trait MemAccess {
    fn load(&self, array: usize, offset: usize, ty: ScalarTy) -> Value;
    fn store(&mut self, array: usize, offset: usize, value: Value);
}

/// Simple heap-backed memory: one byte vector per buffer handle.
#[derive(Debug, Default, Clone)]
pub struct VecMem {
    buffers: Vec<Vec<u8>>,
}

impl VecMem {
    /// Fresh, empty memory.
    pub fn new() -> VecMem {
        VecMem::default()
    }

    /// Allocate a zero-initialized buffer of `bytes` bytes; returns its
    /// handle.
    pub fn alloc(&mut self, bytes: usize) -> usize {
        self.buffers.push(vec![0u8; bytes]);
        self.buffers.len() - 1
    }

    /// Allocate and fill from typed values.
    pub fn alloc_from(&mut self, values: &[Value]) -> usize {
        let id = self.alloc(values.iter().map(|v| v.ty().size_bytes()).sum());
        let mut off = 0;
        for v in values {
            let sz = v.ty().size_bytes();
            v.to_le_bytes(&mut self.buffers[id][off..off + sz]);
            off += sz;
        }
        id
    }

    /// Raw bytes of a buffer.
    pub fn bytes(&self, id: usize) -> &[u8] {
        &self.buffers[id]
    }

    /// Mutable raw bytes of a buffer.
    pub fn bytes_mut(&mut self, id: usize) -> &mut [u8] {
        &mut self.buffers[id]
    }

    /// Read the whole buffer as a typed vector.
    pub fn read_all(&self, id: usize, ty: ScalarTy) -> Vec<Value> {
        let sz = ty.size_bytes();
        self.buffers[id]
            .chunks_exact(sz)
            .map(|c| Value::from_le_bytes(ty, c))
            .collect()
    }
}

impl MemAccess for VecMem {
    fn load(&self, array: usize, offset: usize, ty: ScalarTy) -> Value {
        let sz = ty.size_bytes();
        let start = offset * sz;
        Value::from_le_bytes(ty, &self.buffers[array][start..start + sz])
    }

    fn store(&mut self, array: usize, offset: usize, value: Value) {
        let sz = value.ty().size_bytes();
        let start = offset * sz;
        value.to_le_bytes(&mut self.buffers[array][start..start + sz]);
    }
}

/// A kernel launch argument.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KernelArg {
    /// Scalar by value.
    Scalar(Value),
    /// Array by buffer handle (meaningful to the [`MemAccess`]).
    Array(usize),
}

/// The position of one thread in the launch grid.
#[derive(Debug, Clone, Copy)]
pub struct ThreadCtx {
    pub block_idx: Dim3,
    pub thread_idx: Dim3,
    pub block_dim: Dim3,
    pub grid_dim: Dim3,
}

impl ThreadCtx {
    fn grid_value(&self, g: GridVar) -> i64 {
        fn comp(d: Dim3, a: Axis) -> i64 {
            match a {
                Axis::X => d.x as i64,
                Axis::Y => d.y as i64,
                Axis::Z => d.z as i64,
            }
        }
        match g {
            GridVar::ThreadIdx(a) => comp(self.thread_idx, a),
            GridVar::BlockIdx(a) => comp(self.block_idx, a),
            GridVar::BlockDim(a) => comp(self.block_dim, a),
            GridVar::GridDim(a) => comp(self.grid_dim, a),
        }
    }
}

/// Execution mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Real loads/stores with bounds checking.
    Functional,
    /// Count operations only: loads return a synthetic value, stores are
    /// dropped, bounds are not checked. Used for cost-model sampling.
    CountOnly,
}

/// Operation counters accumulated while interpreting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Integer ALU operations.
    pub int_ops: u64,
    /// Floating-point operations (transcendental ops count more, see
    /// [`UnOp`] handling).
    pub flops: u64,
    /// Number of array loads.
    pub loads: u64,
    /// Number of array stores.
    pub stores: u64,
    /// Bytes read from arrays.
    pub bytes_loaded: u64,
    /// Bytes written to arrays.
    pub bytes_stored: u64,
    /// Conditional branches executed.
    pub branches: u64,
}

impl ExecStats {
    /// `self = base + (self - base) * factor` — scale the counters
    /// accumulated since `base` (loop-trip extrapolation in counting
    /// mode).
    fn scale_since(&mut self, base: &ExecStats, factor: f64) {
        fn scale(cur: &mut u64, base: u64, f: f64) {
            *cur = base + ((*cur - base) as f64 * f).round() as u64;
        }
        scale(&mut self.int_ops, base.int_ops, factor);
        scale(&mut self.flops, base.flops, factor);
        scale(&mut self.loads, base.loads, factor);
        scale(&mut self.stores, base.stores, factor);
        scale(&mut self.bytes_loaded, base.bytes_loaded, factor);
        scale(&mut self.bytes_stored, base.bytes_stored, factor);
        scale(&mut self.branches, base.branches, factor);
    }

    /// Accumulate another thread's counters.
    pub fn add(&mut self, other: &ExecStats) {
        self.int_ops += other.int_ops;
        self.flops += other.flops;
        self.loads += other.loads;
        self.stores += other.stores;
        self.bytes_loaded += other.bytes_loaded;
        self.bytes_stored += other.bytes_stored;
        self.branches += other.branches;
    }

    /// Total bytes moved.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_loaded + self.bytes_stored
    }
}

enum Flow {
    Normal,
    Return,
}

/// Iteration safety budget per single loop execution.
const LOOP_BUDGET: i64 = 1 << 32;

/// The per-thread interpreter.
pub struct Interp<'a, M: MemAccess + ?Sized> {
    kernel: &'a Kernel,
    args: &'a [KernelArg],
    ctx: ThreadCtx,
    mem: &'a mut M,
    mode: ExecMode,
    stats: ExecStats,
    locals: Vec<(String, Value)>,
}

impl<'a, M: MemAccess + ?Sized> Interp<'a, M> {
    /// Create an interpreter for one thread.
    pub fn new(
        kernel: &'a Kernel,
        args: &'a [KernelArg],
        ctx: ThreadCtx,
        mem: &'a mut M,
        mode: ExecMode,
    ) -> Result<Self> {
        if args.len() != kernel.params.len() {
            return Err(KernelError::BadArguments {
                expected: kernel.params.len(),
                got: args.len(),
            });
        }
        Ok(Interp {
            kernel,
            args,
            ctx,
            mem,
            mode,
            stats: ExecStats::default(),
            locals: Vec::with_capacity(8),
        })
    }

    /// Run the thread to completion; returns its operation counters.
    pub fn run(mut self) -> Result<ExecStats> {
        let body = &self.kernel.body;
        self.exec_block(body)?;
        Ok(self.stats)
    }

    fn lookup(&self, name: &str) -> Result<Value> {
        // Innermost binding wins.
        if let Some((_, v)) = self.locals.iter().rev().find(|(n, _)| n == name) {
            return Ok(*v);
        }
        // Scalar parameter?
        if let Some(idx) = self.kernel.param_index(name) {
            if let KernelArg::Scalar(v) = self.args[idx] {
                return Ok(v);
            }
        }
        Err(KernelError::UnknownVar(name.to_string()))
    }

    fn scalar_i64(&self, name: &str) -> Result<i64> {
        self.lookup(name)?
            .as_i64()
            .ok_or_else(|| KernelError::TypeMismatch {
                context: format!("parameter {name} used as integer extent"),
            })
    }

    /// Resolve an array access: returns (buffer handle, element type,
    /// linear offset), bounds-checked in functional mode.
    fn resolve_access(
        &mut self,
        array: &str,
        indices: &[Expr],
    ) -> Result<(usize, ScalarTy, usize)> {
        let pidx = self
            .kernel
            .param_index(array)
            .ok_or_else(|| KernelError::UnknownArray(array.to_string()))?;
        let (elem, extents) = match &self.kernel.params[pidx] {
            KernelParam::Array { elem, extents, .. } => (*elem, extents.clone()),
            _ => return Err(KernelError::UnknownArray(array.to_string())),
        };
        let handle = match self.args[pidx] {
            KernelArg::Array(h) => h,
            _ => {
                return Err(KernelError::TypeMismatch {
                    context: format!("scalar passed for array parameter {array}"),
                })
            }
        };
        let mut idx_vals = Vec::with_capacity(indices.len());
        for e in indices {
            let val = self.eval(e)?;
            idx_vals.push(val.as_i64().ok_or_else(|| KernelError::TypeMismatch {
                context: format!("non-integer index into {array}"),
            })?);
        }
        let mut ext_vals = Vec::with_capacity(extents.len());
        for ext in &extents {
            ext_vals.push(match ext {
                Extent::Const(c) => *c,
                Extent::Param(p) => self.scalar_i64(p)?,
            });
        }
        if self.mode == ExecMode::Functional {
            for (i, (&iv, &ev)) in idx_vals.iter().zip(&ext_vals).enumerate() {
                if iv < 0 || iv >= ev {
                    let _ = i;
                    return Err(KernelError::OutOfBounds {
                        array: array.to_string(),
                        index: idx_vals.clone(),
                        extents: ext_vals.clone(),
                    });
                }
            }
        }
        // Row-major linearization.
        let mut linear: i64 = 0;
        for (iv, ev) in idx_vals.iter().zip(&ext_vals) {
            linear = linear * ev + iv;
        }
        Ok((handle, elem, linear.max(0) as usize))
    }

    fn eval(&mut self, e: &Expr) -> Result<Value> {
        match e {
            Expr::Int(v) => Ok(Value::I64(*v)),
            Expr::Float(v) => Ok(Value::F32(*v as f32)),
            Expr::Var(name) => self.lookup(name),
            Expr::Grid(g) => Ok(Value::I64(self.ctx.grid_value(*g))),
            Expr::Load { array, indices } => {
                let (handle, elem, off) = self.resolve_access(array, indices)?;
                self.stats.loads += 1;
                self.stats.bytes_loaded += elem.size_bytes() as u64;
                match self.mode {
                    ExecMode::Functional => Ok(self.mem.load(handle, off, elem)),
                    ExecMode::CountOnly => {
                        // Deterministic synthetic value derived from the
                        // offset so data-dependent code stays stable.
                        Ok(match elem {
                            ScalarTy::I64 => Value::I64((off % 7) as i64 + 1),
                            ScalarTy::F32 => Value::F32(1.0 + (off % 7) as f32 * 0.125),
                            ScalarTy::F64 => Value::F64(1.0 + (off % 7) as f64 * 0.125),
                        })
                    }
                }
            }
            Expr::Unary(op, a) => {
                let av = self.eval(a)?;
                self.apply_unary(*op, av)
            }
            Expr::Binary(op, a, b) => {
                let av = self.eval(a)?;
                // Short-circuit logical operators.
                if *op == BinOp::And && !av.is_truthy() {
                    self.stats.int_ops += 1;
                    return Ok(Value::I64(0));
                }
                if *op == BinOp::Or && av.is_truthy() {
                    self.stats.int_ops += 1;
                    return Ok(Value::I64(1));
                }
                let bv = self.eval(b)?;
                self.apply_binary(*op, av, bv)
            }
            Expr::Cast(ty, a) => {
                let av = self.eval(a)?;
                Ok(av.cast(*ty))
            }
            Expr::Select(c, a, b) => {
                let cv = self.eval(c)?;
                self.stats.branches += 1;
                if cv.is_truthy() {
                    self.eval(a)
                } else {
                    self.eval(b)
                }
            }
        }
    }

    fn apply_unary(&mut self, op: UnOp, a: Value) -> Result<Value> {
        match op {
            UnOp::Neg => {
                self.count_arith(a.ty(), 1);
                Ok(match a {
                    Value::I64(v) => Value::I64(-v),
                    Value::F32(v) => Value::F32(-v),
                    Value::F64(v) => Value::F64(-v),
                })
            }
            UnOp::Not => {
                self.stats.int_ops += 1;
                Ok(Value::I64(if a.is_truthy() { 0 } else { 1 }))
            }
            UnOp::Sqrt | UnOp::Exp | UnOp::Log => {
                // Transcendentals cost several FLOP-equivalents.
                self.stats.flops += 8;
                let x = a.as_f64();
                let r = match op {
                    UnOp::Sqrt => x.sqrt(),
                    UnOp::Exp => x.exp(),
                    UnOp::Log => x.ln(),
                    _ => unreachable!(),
                };
                Ok(match a.ty() {
                    ScalarTy::F64 => Value::F64(r),
                    _ => Value::F32(r as f32),
                })
            }
            UnOp::Abs => {
                self.count_arith(a.ty(), 1);
                Ok(match a {
                    Value::I64(v) => Value::I64(v.abs()),
                    Value::F32(v) => Value::F32(v.abs()),
                    Value::F64(v) => Value::F64(v.abs()),
                })
            }
        }
    }

    fn count_arith(&mut self, ty: ScalarTy, n: u64) {
        if ty.is_float() {
            self.stats.flops += n;
        } else {
            self.stats.int_ops += n;
        }
    }

    fn apply_binary(&mut self, op: BinOp, a: Value, b: Value) -> Result<Value> {
        use ScalarTy::*;
        // Numeric promotion: f64 > f32 > i64.
        let ty = match (a.ty(), b.ty()) {
            (F64, _) | (_, F64) => F64,
            (F32, _) | (_, F32) => F32,
            _ => I64,
        };
        if op.is_comparison() {
            self.count_arith(ty, 1);
            let r = match ty {
                I64 => {
                    let (x, y) = (a.as_i64().unwrap(), b.as_i64().unwrap());
                    match op {
                        BinOp::Lt => x < y,
                        BinOp::Le => x <= y,
                        BinOp::Gt => x > y,
                        BinOp::Ge => x >= y,
                        BinOp::EqEq => x == y,
                        BinOp::Ne => x != y,
                        _ => unreachable!(),
                    }
                }
                _ => {
                    let (x, y) = (a.as_f64(), b.as_f64());
                    match op {
                        BinOp::Lt => x < y,
                        BinOp::Le => x <= y,
                        BinOp::Gt => x > y,
                        BinOp::Ge => x >= y,
                        BinOp::EqEq => x == y,
                        BinOp::Ne => x != y,
                        _ => unreachable!(),
                    }
                }
            };
            return Ok(Value::I64(r as i64));
        }
        match op {
            BinOp::And => {
                self.stats.int_ops += 1;
                return Ok(Value::I64((a.is_truthy() && b.is_truthy()) as i64));
            }
            BinOp::Or => {
                self.stats.int_ops += 1;
                return Ok(Value::I64((a.is_truthy() || b.is_truthy()) as i64));
            }
            _ => {}
        }
        self.count_arith(ty, if op == BinOp::Div { 4 } else { 1 });
        let out = match ty {
            I64 => {
                let (x, y) = (a.as_i64().unwrap(), b.as_i64().unwrap());
                Value::I64(match op {
                    BinOp::Add => x.wrapping_add(y),
                    BinOp::Sub => x.wrapping_sub(y),
                    BinOp::Mul => x.wrapping_mul(y),
                    BinOp::Div => {
                        if y == 0 {
                            return Err(KernelError::DivByZero);
                        }
                        x / y
                    }
                    BinOp::Rem => {
                        if y == 0 {
                            return Err(KernelError::DivByZero);
                        }
                        x % y
                    }
                    BinOp::Min => x.min(y),
                    BinOp::Max => x.max(y),
                    _ => unreachable!(),
                })
            }
            F32 => {
                let (x, y) = (a.as_f64() as f32, b.as_f64() as f32);
                Value::F32(match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => x * y,
                    BinOp::Div => x / y,
                    BinOp::Rem => x % y,
                    BinOp::Min => x.min(y),
                    BinOp::Max => x.max(y),
                    _ => unreachable!(),
                })
            }
            F64 => {
                let (x, y) = (a.as_f64(), b.as_f64());
                Value::F64(match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => x * y,
                    BinOp::Div => x / y,
                    BinOp::Rem => x % y,
                    BinOp::Min => x.min(y),
                    BinOp::Max => x.max(y),
                    _ => unreachable!(),
                })
            }
        };
        Ok(out)
    }

    fn exec_block(&mut self, body: &[Stmt]) -> Result<Flow> {
        let depth = self.locals.len();
        for s in body {
            match self.exec_stmt(s)? {
                Flow::Return => {
                    self.locals.truncate(depth);
                    return Ok(Flow::Return);
                }
                Flow::Normal => {}
            }
        }
        self.locals.truncate(depth);
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, s: &Stmt) -> Result<Flow> {
        match s {
            Stmt::Let { var, value } => {
                let v = self.eval(value)?;
                self.locals.push((var.clone(), v));
                Ok(Flow::Normal)
            }
            Stmt::Assign { var, value } => {
                let v = self.eval(value)?;
                if let Some(slot) = self.locals.iter_mut().rev().find(|(n, _)| n == var) {
                    slot.1 = v;
                    Ok(Flow::Normal)
                } else {
                    Err(KernelError::UnknownVar(var.clone()))
                }
            }
            Stmt::Store {
                array,
                indices,
                value,
            } => {
                let val = self.eval(value)?;
                let (handle, elem, off) = self.resolve_access(array, indices)?;
                let val = val.cast(elem);
                self.stats.stores += 1;
                self.stats.bytes_stored += elem.size_bytes() as u64;
                if self.mode == ExecMode::Functional {
                    self.mem.store(handle, off, val);
                }
                Ok(Flow::Normal)
            }
            Stmt::If { cond, then_, else_ } => {
                let c = self.eval(cond)?;
                self.stats.branches += 1;
                if c.is_truthy() {
                    self.exec_block(then_)
                } else {
                    self.exec_block(else_)
                }
            }
            Stmt::For {
                var,
                lo,
                hi,
                step,
                body,
            } => {
                let lo_v = self
                    .eval(lo)?
                    .as_i64()
                    .ok_or_else(|| KernelError::TypeMismatch {
                        context: format!("loop bound of {var}"),
                    })?;
                let hi_v = self
                    .eval(hi)?
                    .as_i64()
                    .ok_or_else(|| KernelError::TypeMismatch {
                        context: format!("loop bound of {var}"),
                    })?;
                let trip = ((hi_v - lo_v).max(0) + step - 1) / (*step).max(1);
                if trip > LOOP_BUDGET {
                    return Err(KernelError::IterationBudget { var: var.clone() });
                }
                // Counting mode extrapolates long loops from a sample of
                // iterations: the per-iteration cost of regular kernels is
                // uniform, and the roofline model only needs totals.
                const SAMPLE_THRESHOLD: i64 = 64;
                const SAMPLE_ITERS: i64 = 16;
                let sampled = self.mode == ExecMode::CountOnly && trip > SAMPLE_THRESHOLD;
                let run_iters = if sampled { SAMPLE_ITERS } else { trip };
                let base = self.stats;
                self.locals.push((var.clone(), Value::I64(lo_v)));
                let slot = self.locals.len() - 1;
                let mut i = lo_v;
                let mut done = 0i64;
                while done < run_iters {
                    self.locals[slot].1 = Value::I64(i);
                    match self.exec_block(body)? {
                        Flow::Return => {
                            self.locals.truncate(slot);
                            return Ok(Flow::Return);
                        }
                        Flow::Normal => {}
                    }
                    i += step;
                    done += 1;
                    self.stats.int_ops += 1;
                }
                if sampled {
                    self.stats
                        .scale_since(&base, trip as f64 / run_iters as f64);
                }
                self.locals.truncate(slot);
                Ok(Flow::Normal)
            }
            Stmt::Return => Ok(Flow::Return),
            Stmt::SyncThreads => Ok(Flow::Normal),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::ir::Kernel;

    fn ctx1d(block: u32, thread: u32, bdim: u32, gdim: u32) -> ThreadCtx {
        ThreadCtx {
            block_idx: Dim3::new1(block),
            thread_idx: Dim3::new1(thread),
            block_dim: Dim3::new1(bdim),
            grid_dim: Dim3::new1(gdim),
        }
    }

    fn vadd_kernel() -> Kernel {
        Kernel {
            name: "vadd".into(),
            params: vec![
                scalar("n"),
                array_f32("a", &[ext("n")]),
                array_f32("b", &[ext("n")]),
                array_f32("c", &[ext("n")]),
            ],
            body: vec![
                let_("i", global_x()),
                guard_return(v("i").ge(v("n"))),
                store(
                    "c",
                    vec![v("i")],
                    load("a", vec![v("i")]) + load("b", vec![v("i")]),
                ),
            ],
        }
    }

    #[test]
    fn vadd_thread_computes() {
        let k = vadd_kernel();
        let mut mem = VecMem::new();
        let a = mem.alloc_from(&(0..8).map(|i| Value::F32(i as f32)).collect::<Vec<_>>());
        let b = mem.alloc_from(
            &(0..8)
                .map(|i| Value::F32(10.0 * i as f32))
                .collect::<Vec<_>>(),
        );
        let c = mem.alloc(8 * 4);
        let args = [
            KernelArg::Scalar(Value::I64(8)),
            KernelArg::Array(a),
            KernelArg::Array(b),
            KernelArg::Array(c),
        ];
        // thread 3 of block 0 (blockDim 8)
        let stats = Interp::new(&k, &args, ctx1d(0, 3, 8, 1), &mut mem, ExecMode::Functional)
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(mem.load(c, 3, ScalarTy::F32), Value::F32(33.0));
        assert_eq!(stats.loads, 2);
        assert_eq!(stats.stores, 1);
        assert_eq!(stats.bytes_loaded, 8);
    }

    #[test]
    fn guard_suppresses_out_of_range_threads() {
        let k = vadd_kernel();
        let mut mem = VecMem::new();
        let a = mem.alloc(4 * 4);
        let b = mem.alloc(4 * 4);
        let c = mem.alloc(4 * 4);
        let args = [
            KernelArg::Scalar(Value::I64(4)),
            KernelArg::Array(a),
            KernelArg::Array(b),
            KernelArg::Array(c),
        ];
        // thread 6 of block 0 with blockDim 8 and n = 4: must return early.
        let stats = Interp::new(&k, &args, ctx1d(0, 6, 8, 1), &mut mem, ExecMode::Functional)
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(stats.stores, 0);
        assert_eq!(stats.loads, 0);
    }

    #[test]
    fn out_of_bounds_detected_functionally() {
        // No guard: thread 6 with n=4 goes out of bounds.
        let mut k = vadd_kernel();
        k.body.remove(1); // drop the guard
        let mut mem = VecMem::new();
        let a = mem.alloc(4 * 4);
        let b = mem.alloc(4 * 4);
        let c = mem.alloc(4 * 4);
        let args = [
            KernelArg::Scalar(Value::I64(4)),
            KernelArg::Array(a),
            KernelArg::Array(b),
            KernelArg::Array(c),
        ];
        let err = Interp::new(&k, &args, ctx1d(0, 6, 8, 1), &mut mem, ExecMode::Functional)
            .unwrap()
            .run()
            .unwrap_err();
        assert!(matches!(err, KernelError::OutOfBounds { .. }));
    }

    #[test]
    fn count_only_mode_skips_memory() {
        let k = vadd_kernel();
        let mut mem = VecMem::new(); // no buffers at all
        let args = [
            KernelArg::Scalar(Value::I64(100)),
            KernelArg::Array(0),
            KernelArg::Array(1),
            KernelArg::Array(2),
        ];
        let stats = Interp::new(&k, &args, ctx1d(2, 1, 8, 16), &mut mem, ExecMode::CountOnly)
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(stats.loads, 2);
        assert_eq!(stats.stores, 1);
        assert_eq!(stats.flops, 1); // one f32 add
    }

    #[test]
    fn for_loop_accumulates() {
        // sum = Σ a[j], j in [0, n)
        let k = Kernel {
            name: "sum_row".into(),
            params: vec![
                scalar("n"),
                array_f32("a", &[ext("n")]),
                array_f32("out", &[ext_c(1)]),
            ],
            body: vec![
                let_("acc", f(0.0)),
                for_(
                    "j",
                    i(0),
                    v("n"),
                    vec![assign("acc", v("acc") + load("a", vec![v("j")]))],
                ),
                store("out", vec![i(0)], v("acc")),
            ],
        };
        let mut mem = VecMem::new();
        let a = mem.alloc_from(&(1..=5).map(|i| Value::F32(i as f32)).collect::<Vec<_>>());
        let out = mem.alloc(4);
        let args = [
            KernelArg::Scalar(Value::I64(5)),
            KernelArg::Array(a),
            KernelArg::Array(out),
        ];
        Interp::new(&k, &args, ctx1d(0, 0, 1, 1), &mut mem, ExecMode::Functional)
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(mem.load(out, 0, ScalarTy::F32), Value::F32(15.0));
    }

    #[test]
    fn multidim_arrays_linearize_row_major() {
        // b[y][x] = a[x][y] (transpose of a 2x3)
        let k = Kernel {
            name: "transpose".into(),
            params: vec![
                array_f32("a", &[ext_c(2), ext_c(3)]),
                array_f32("b", &[ext_c(3), ext_c(2)]),
            ],
            body: vec![for_(
                "y",
                i(0),
                i(3),
                vec![for_(
                    "x",
                    i(0),
                    i(2),
                    vec![store(
                        "b",
                        vec![v("y"), v("x")],
                        load("a", vec![v("x"), v("y")]),
                    )],
                )],
            )],
        };
        let mut mem = VecMem::new();
        let a = mem.alloc_from(&(0..6).map(|i| Value::F32(i as f32)).collect::<Vec<_>>()); // a = [[0,1,2],[3,4,5]]
        let b = mem.alloc(6 * 4);
        let args = [KernelArg::Array(a), KernelArg::Array(b)];
        Interp::new(&k, &args, ctx1d(0, 0, 1, 1), &mut mem, ExecMode::Functional)
            .unwrap()
            .run()
            .unwrap();
        let got = mem.read_all(b, ScalarTy::F32);
        let want: Vec<Value> = [0.0f32, 3.0, 1.0, 4.0, 2.0, 5.0]
            .iter()
            .map(|&v| Value::F32(v))
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn division_by_zero_reported() {
        let k = Kernel {
            name: "div".into(),
            params: vec![scalar("n")],
            body: vec![let_("q", i(1) / v("n"))],
        };
        let mut mem = VecMem::new();
        let args = [KernelArg::Scalar(Value::I64(0))];
        let err = Interp::new(&k, &args, ctx1d(0, 0, 1, 1), &mut mem, ExecMode::Functional)
            .unwrap()
            .run()
            .unwrap_err();
        assert_eq!(err, KernelError::DivByZero);
    }

    #[test]
    fn short_circuit_logic() {
        // i < n && a[i] > 0 must not touch a[] when i >= n.
        let k = Kernel {
            name: "sc".into(),
            params: vec![scalar("n"), array_f32("a", &[ext("n")])],
            body: vec![
                let_("i", i(100)),
                let_(
                    "c",
                    v("i").lt(v("n")).and(load("a", vec![v("i")]).gt(f(0.0))),
                ),
            ],
        };
        let mut mem = VecMem::new();
        let a = mem.alloc(4 * 4);
        let args = [KernelArg::Scalar(Value::I64(4)), KernelArg::Array(a)];
        let stats = Interp::new(&k, &args, ctx1d(0, 0, 1, 1), &mut mem, ExecMode::Functional)
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(stats.loads, 0);
    }
}
