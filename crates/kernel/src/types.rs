//! Value and launch-geometry types.

use serde::{Deserialize, Serialize};

/// Scalar element types of the mini-CUDA dialect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScalarTy {
    /// 64-bit signed integer (the dialect's only integer type; wide enough
    /// for CUDA's `int`, `long` and size arithmetic).
    I64,
    /// IEEE 754 single precision (`float`).
    F32,
    /// IEEE 754 double precision (`double`).
    F64,
}

impl ScalarTy {
    /// Size of one element in bytes.
    pub fn size_bytes(self) -> usize {
        match self {
            ScalarTy::I64 => 8,
            ScalarTy::F32 => 4,
            ScalarTy::F64 => 8,
        }
    }

    /// Is this a floating-point type?
    pub fn is_float(self) -> bool {
        matches!(self, ScalarTy::F32 | ScalarTy::F64)
    }
}

impl std::fmt::Display for ScalarTy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScalarTy::I64 => write!(f, "int"),
            ScalarTy::F32 => write!(f, "float"),
            ScalarTy::F64 => write!(f, "double"),
        }
    }
}

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    I64(i64),
    F32(f32),
    F64(f64),
}

impl Value {
    /// The value's type.
    pub fn ty(self) -> ScalarTy {
        match self {
            Value::I64(_) => ScalarTy::I64,
            Value::F32(_) => ScalarTy::F32,
            Value::F64(_) => ScalarTy::F64,
        }
    }

    /// Interpret as an integer (integers only).
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric value as f64 (lossy for big i64).
    pub fn as_f64(self) -> f64 {
        match self {
            Value::I64(v) => v as f64,
            Value::F32(v) => v as f64,
            Value::F64(v) => v,
        }
    }

    /// Truthiness for conditions: nonzero.
    pub fn is_truthy(self) -> bool {
        match self {
            Value::I64(v) => v != 0,
            Value::F32(v) => v != 0.0,
            Value::F64(v) => v != 0.0,
        }
    }

    /// The zero value of a type.
    pub fn zero(ty: ScalarTy) -> Value {
        match ty {
            ScalarTy::I64 => Value::I64(0),
            ScalarTy::F32 => Value::F32(0.0),
            ScalarTy::F64 => Value::F64(0.0),
        }
    }

    /// Cast to another scalar type with C semantics.
    pub fn cast(self, ty: ScalarTy) -> Value {
        match ty {
            ScalarTy::I64 => Value::I64(match self {
                Value::I64(v) => v,
                Value::F32(v) => v as i64,
                Value::F64(v) => v as i64,
            }),
            ScalarTy::F32 => Value::F32(match self {
                Value::I64(v) => v as f32,
                Value::F32(v) => v,
                Value::F64(v) => v as f32,
            }),
            ScalarTy::F64 => Value::F64(self.as_f64()),
        }
    }

    /// Encode into little-endian bytes (length = `ty().size_bytes()`).
    pub fn to_le_bytes(self, out: &mut [u8]) {
        match self {
            Value::I64(v) => out.copy_from_slice(&v.to_le_bytes()),
            Value::F32(v) => out.copy_from_slice(&v.to_le_bytes()),
            Value::F64(v) => out.copy_from_slice(&v.to_le_bytes()),
        }
    }

    /// Decode from little-endian bytes.
    pub fn from_le_bytes(ty: ScalarTy, bytes: &[u8]) -> Value {
        match ty {
            ScalarTy::I64 => Value::I64(i64::from_le_bytes(bytes.try_into().unwrap())),
            ScalarTy::F32 => Value::F32(f32::from_le_bytes(bytes.try_into().unwrap())),
            ScalarTy::F64 => Value::F64(f64::from_le_bytes(bytes.try_into().unwrap())),
        }
    }
}

/// CUDA-style 3-component extent/index. `x` is the fastest-varying
/// dimension (matches `dim3`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Dim3 {
    pub x: u32,
    pub y: u32,
    pub z: u32,
}

impl Dim3 {
    /// A 1-D extent.
    pub fn new1(x: u32) -> Dim3 {
        Dim3 { x, y: 1, z: 1 }
    }

    /// A 2-D extent.
    pub fn new2(x: u32, y: u32) -> Dim3 {
        Dim3 { x, y, z: 1 }
    }

    /// A 3-D extent.
    pub fn new3(x: u32, y: u32, z: u32) -> Dim3 {
        Dim3 { x, y, z }
    }

    /// Total element count `x*y*z`.
    pub fn count(self) -> u64 {
        self.x as u64 * self.y as u64 * self.z as u64
    }

    /// Components in `[z, y, x]` order — the tuple order the paper uses
    /// for partitions and access-map dimensions.
    pub fn zyx(self) -> [i64; 3] {
        [self.z as i64, self.y as i64, self.x as i64]
    }

    /// Build from `[z, y, x]` order.
    pub fn from_zyx(zyx: [i64; 3]) -> Dim3 {
        Dim3 {
            x: zyx[2] as u32,
            y: zyx[1] as u32,
            z: zyx[0] as u32,
        }
    }
}

impl std::fmt::Display for Dim3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_casts() {
        assert_eq!(Value::F64(2.9).cast(ScalarTy::I64), Value::I64(2));
        assert_eq!(Value::I64(-3).cast(ScalarTy::F32), Value::F32(-3.0));
        assert_eq!(Value::F32(1.5).cast(ScalarTy::F64), Value::F64(1.5));
    }

    #[test]
    fn value_bytes_roundtrip() {
        for v in [Value::I64(-42), Value::F32(3.25), Value::F64(-0.125)] {
            let mut buf = vec![0u8; v.ty().size_bytes()];
            v.to_le_bytes(&mut buf);
            assert_eq!(Value::from_le_bytes(v.ty(), &buf), v);
        }
    }

    #[test]
    fn truthiness() {
        assert!(Value::I64(2).is_truthy());
        assert!(!Value::I64(0).is_truthy());
        assert!(!Value::F32(0.0).is_truthy());
    }

    #[test]
    fn dim3_orders() {
        let d = Dim3::new3(4, 3, 2);
        assert_eq!(d.count(), 24);
        assert_eq!(d.zyx(), [2, 3, 4]);
        assert_eq!(Dim3::from_zyx([2, 3, 4]), d);
    }
}
