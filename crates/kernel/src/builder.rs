//! An ergonomic DSL for constructing kernel IR in Rust.
//!
//! Expressions support operator overloading (`a + b * c`), comparisons via
//! methods (`a.lt(b)`), and helpers mirror the CUDA idioms
//! (`global_x()` = `threadIdx.x + blockIdx.x * blockDim.x`).
//!
//! ```
//! use mekong_kernel::builder::*;
//! use mekong_kernel::{Kernel, KernelParam, ScalarTy, Extent};
//!
//! // vector add: c[i] = a[i] + b[i]
//! let k = Kernel {
//!     name: "vadd".into(),
//!     params: vec![
//!         scalar("n"),
//!         array_f32("a", &[Extent::Param("n".into())]),
//!         array_f32("b", &[Extent::Param("n".into())]),
//!         array_f32("c", &[Extent::Param("n".into())]),
//!     ],
//!     body: vec![
//!         let_("i", global_x()),
//!         if_(v("i").lt(v("n")), vec![
//!             store("c", vec![v("i")], load("a", vec![v("i")]) + load("b", vec![v("i")])),
//!         ], vec![]),
//!     ],
//! };
//! k.validate().unwrap();
//! ```

use crate::ir::{Axis, BinOp, Expr, Extent, GridVar, KernelParam, Stmt, UnOp};
use crate::types::ScalarTy;

/// Integer literal.
pub fn i(value: i64) -> Expr {
    Expr::Int(value)
}

/// Float literal.
pub fn f(value: f64) -> Expr {
    Expr::Float(value)
}

/// Variable reference.
pub fn v(name: &str) -> Expr {
    Expr::Var(name.to_string())
}

/// `threadIdx.{x,y,z}`.
pub fn tid(a: Axis) -> Expr {
    Expr::Grid(GridVar::ThreadIdx(a))
}

/// `blockIdx.{x,y,z}`.
pub fn bid(a: Axis) -> Expr {
    Expr::Grid(GridVar::BlockIdx(a))
}

/// `blockDim.{x,y,z}`.
pub fn bdim(a: Axis) -> Expr {
    Expr::Grid(GridVar::BlockDim(a))
}

/// `gridDim.{x,y,z}`.
pub fn gdim(a: Axis) -> Expr {
    Expr::Grid(GridVar::GridDim(a))
}

/// The canonical global thread position along an axis:
/// `threadIdx.w + blockIdx.w * blockDim.w` (paper eq. 5).
pub fn global(a: Axis) -> Expr {
    tid(a) + bid(a) * bdim(a)
}

/// `global(Axis::X)`.
pub fn global_x() -> Expr {
    global(Axis::X)
}

/// `global(Axis::Y)`.
pub fn global_y() -> Expr {
    global(Axis::Y)
}

/// Array load `array[indices...]`.
pub fn load(array: &str, indices: Vec<Expr>) -> Expr {
    Expr::Load {
        array: array.to_string(),
        indices,
    }
}

/// `sqrt(e)`.
pub fn sqrt(e: Expr) -> Expr {
    Expr::un(UnOp::Sqrt, e)
}

/// `min(a, b)`.
pub fn min(a: Expr, b: Expr) -> Expr {
    Expr::bin(BinOp::Min, a, b)
}

/// `max(a, b)`.
pub fn max(a: Expr, b: Expr) -> Expr {
    Expr::bin(BinOp::Max, a, b)
}

/// Cast to `float`.
pub fn to_f32(e: Expr) -> Expr {
    Expr::Cast(ScalarTy::F32, Box::new(e))
}

/// Cast to `int`.
pub fn to_i64(e: Expr) -> Expr {
    Expr::Cast(ScalarTy::I64, Box::new(e))
}

/// Ternary select `cond ? a : b`.
pub fn select(cond: Expr, a: Expr, b: Expr) -> Expr {
    Expr::Select(Box::new(cond), Box::new(a), Box::new(b))
}

/// `let var = value;`
pub fn let_(var: &str, value: Expr) -> Stmt {
    Stmt::Let {
        var: var.to_string(),
        value,
    }
}

/// `var = value;`
pub fn assign(var: &str, value: Expr) -> Stmt {
    Stmt::Assign {
        var: var.to_string(),
        value,
    }
}

/// `array[indices...] = value;`
pub fn store(array: &str, indices: Vec<Expr>, value: Expr) -> Stmt {
    Stmt::Store {
        array: array.to_string(),
        indices,
        value,
    }
}

/// `if (cond) { then_ } else { else_ }`
pub fn if_(cond: Expr, then_: Vec<Stmt>, else_: Vec<Stmt>) -> Stmt {
    Stmt::If { cond, then_, else_ }
}

/// Guard idiom: `if (cond) return;`
pub fn guard_return(cond: Expr) -> Stmt {
    Stmt::If {
        cond,
        then_: vec![Stmt::Return],
        else_: vec![],
    }
}

/// `for (var = lo; var < hi; var++) { body }`
pub fn for_(var: &str, lo: Expr, hi: Expr, body: Vec<Stmt>) -> Stmt {
    Stmt::For {
        var: var.to_string(),
        lo,
        hi,
        step: 1,
        body,
    }
}

/// `for` with a custom positive step.
pub fn for_step(var: &str, lo: Expr, hi: Expr, step: i64, body: Vec<Stmt>) -> Stmt {
    Stmt::For {
        var: var.to_string(),
        lo,
        hi,
        step,
        body,
    }
}

/// Scalar `int` parameter.
pub fn scalar(name: &str) -> KernelParam {
    KernelParam::Scalar {
        name: name.to_string(),
        ty: ScalarTy::I64,
    }
}

/// Scalar `float` parameter.
pub fn scalar_f32(name: &str) -> KernelParam {
    KernelParam::Scalar {
        name: name.to_string(),
        ty: ScalarTy::F32,
    }
}

/// `float` array parameter with the given extents (outermost first).
pub fn array_f32(name: &str, extents: &[Extent]) -> KernelParam {
    KernelParam::Array {
        name: name.to_string(),
        elem: ScalarTy::F32,
        extents: extents.to_vec(),
    }
}

/// `double` array parameter.
pub fn array_f64(name: &str, extents: &[Extent]) -> KernelParam {
    KernelParam::Array {
        name: name.to_string(),
        elem: ScalarTy::F64,
        extents: extents.to_vec(),
    }
}

/// Extent referencing a scalar parameter.
pub fn ext(name: &str) -> Extent {
    Extent::Param(name.to_string())
}

/// Constant extent.
pub fn ext_c(n: i64) -> Extent {
    Extent::Const(n)
}

// ---- comparison / logic methods ----------------------------------------

impl Expr {
    /// `self < other`
    pub fn lt(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Lt, self, other)
    }
    /// `self <= other`
    pub fn le(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Le, self, other)
    }
    /// `self > other`
    pub fn gt(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Gt, self, other)
    }
    /// `self >= other`
    pub fn ge(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Ge, self, other)
    }
    /// `self == other`
    pub fn eq_(self, other: Expr) -> Expr {
        Expr::bin(BinOp::EqEq, self, other)
    }
    /// `self != other`
    pub fn ne_(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Ne, self, other)
    }
    /// `self && other`
    pub fn and(self, other: Expr) -> Expr {
        Expr::bin(BinOp::And, self, other)
    }
    /// `self || other`
    pub fn or(self, other: Expr) -> Expr {
        Expr::bin(BinOp::Or, self, other)
    }
}

// ---- operator overloading ------------------------------------------------

impl std::ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Add, self, rhs)
    }
}

impl std::ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Sub, self, rhs)
    }
}

impl std::ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Mul, self, rhs)
    }
}

impl std::ops::Div for Expr {
    type Output = Expr;
    fn div(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Div, self, rhs)
    }
}

impl std::ops::Rem for Expr {
    type Output = Expr;
    fn rem(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Rem, self, rhs)
    }
}

impl std::ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::un(UnOp::Neg, self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operators_build_trees() {
        let e = v("a") + v("b") * i(2);
        match e {
            Expr::Binary(BinOp::Add, _, rhs) => match *rhs {
                Expr::Binary(BinOp::Mul, _, _) => {}
                other => panic!("expected Mul, got {other:?}"),
            },
            other => panic!("expected Add, got {other:?}"),
        }
    }

    #[test]
    fn global_is_canonical_form() {
        // threadIdx.x + blockIdx.x * blockDim.x
        let e = global_x();
        let mut saw_tid = false;
        let mut saw_mul = false;
        e.visit(&mut |n| match n {
            Expr::Grid(GridVar::ThreadIdx(Axis::X)) => saw_tid = true,
            Expr::Binary(BinOp::Mul, _, _) => saw_mul = true,
            _ => {}
        });
        assert!(saw_tid && saw_mul);
    }

    #[test]
    fn guard_return_shape() {
        match guard_return(v("i").ge(v("n"))) {
            Stmt::If { then_, else_, .. } => {
                assert_eq!(then_, vec![Stmt::Return]);
                assert!(else_.is_empty());
            }
            other => panic!("expected If, got {other:?}"),
        }
    }
}
