//! Block- and grid-level execution drivers.
//!
//! These run a kernel over (part of) its launch grid against a
//! [`MemAccess`] memory. Device-level parallel execution and timing live
//! in `mekong-gpusim`; these drivers are the sequential building blocks
//! it composes (and what the tests use directly).

use crate::interp::{ExecMode, ExecStats, Interp, KernelArg, MemAccess, ThreadCtx};
use crate::ir::Kernel;
use crate::types::Dim3;
use crate::Result;

/// Execute one thread.
pub fn execute_thread<M: MemAccess + ?Sized>(
    kernel: &Kernel,
    args: &[KernelArg],
    ctx: ThreadCtx,
    mem: &mut M,
    mode: ExecMode,
) -> Result<ExecStats> {
    Interp::new(kernel, args, ctx, mem, mode)?.run()
}

/// Execute every thread of one block (sequentially, `z`-outermost).
///
/// Thread blocks are the atomic unit of the CUDA execution model (paper
/// §2.1); running a block's threads sequentially is a legal schedule for
/// the kernels in scope (no inter-thread communication below block scope).
pub fn execute_block<M: MemAccess + ?Sized>(
    kernel: &Kernel,
    args: &[KernelArg],
    block_idx: Dim3,
    block_dim: Dim3,
    grid_dim: Dim3,
    mem: &mut M,
    mode: ExecMode,
) -> Result<ExecStats> {
    let mut stats = ExecStats::default();
    for tz in 0..block_dim.z {
        for ty in 0..block_dim.y {
            for tx in 0..block_dim.x {
                let ctx = ThreadCtx {
                    block_idx,
                    thread_idx: Dim3::new3(tx, ty, tz),
                    block_dim,
                    grid_dim,
                };
                let s = execute_thread(kernel, args, ctx, mem, mode)?;
                stats.add(&s);
            }
        }
    }
    Ok(stats)
}

/// Execute the whole grid sequentially. Returns aggregate statistics.
pub fn execute_grid<M: MemAccess + ?Sized>(
    kernel: &Kernel,
    args: &[KernelArg],
    grid_dim: Dim3,
    block_dim: Dim3,
    mem: &mut M,
    mode: ExecMode,
) -> Result<ExecStats> {
    let mut stats = ExecStats::default();
    for bz in 0..grid_dim.z {
        for by in 0..grid_dim.y {
            for bx in 0..grid_dim.x {
                let s = execute_block(
                    kernel,
                    args,
                    Dim3::new3(bx, by, bz),
                    block_dim,
                    grid_dim,
                    mem,
                    mode,
                )?;
                stats.add(&s);
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::interp::{KernelArg, VecMem};
    use crate::ir::Kernel;
    use crate::types::{ScalarTy, Value};

    fn saxpy() -> Kernel {
        Kernel {
            name: "saxpy".into(),
            params: vec![
                scalar("n"),
                scalar_f32("alpha"),
                array_f32("x", &[ext("n")]),
                array_f32("y", &[ext("n")]),
            ],
            body: vec![
                let_("i", global_x()),
                guard_return(v("i").ge(v("n"))),
                store(
                    "y",
                    vec![v("i")],
                    v("alpha") * load("x", vec![v("i")]) + load("y", vec![v("i")]),
                ),
            ],
        }
    }

    #[test]
    fn full_grid_saxpy() {
        let k = saxpy();
        let n = 100usize;
        let mut mem = VecMem::new();
        let x = mem.alloc_from(&(0..n).map(|i| Value::F32(i as f32)).collect::<Vec<_>>());
        let y = mem.alloc_from(&(0..n).map(|_| Value::F32(1.0)).collect::<Vec<_>>());
        let args = [
            KernelArg::Scalar(Value::I64(n as i64)),
            KernelArg::Scalar(Value::F32(2.0)),
            KernelArg::Array(x),
            KernelArg::Array(y),
        ];
        // 100 elements, blockDim 32 -> 4 blocks (128 threads, 28 guarded).
        let stats = execute_grid(
            &k,
            &args,
            Dim3::new1(4),
            Dim3::new1(32),
            &mut mem,
            ExecMode::Functional,
        )
        .unwrap();
        let out = mem.read_all(y, ScalarTy::F32);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, Value::F32(2.0 * i as f32 + 1.0));
        }
        assert_eq!(stats.stores, 100);
    }

    #[test]
    fn grid_2d_indexing() {
        // out[y][x] = y * 10 + x
        let k = Kernel {
            name: "coords".into(),
            params: vec![
                scalar("h"),
                scalar("w"),
                array_f32("out", &[ext("h"), ext("w")]),
            ],
            body: vec![
                let_("gx", global_x()),
                let_("gy", global_y()),
                guard_return(v("gx").ge(v("w")).or(v("gy").ge(v("h")))),
                store(
                    "out",
                    vec![v("gy"), v("gx")],
                    to_f32(v("gy") * i(10) + v("gx")),
                ),
            ],
        };
        let (h, w) = (6u32, 8u32);
        let mut mem = VecMem::new();
        let out = mem.alloc((h * w) as usize * 4);
        let args = [
            KernelArg::Scalar(Value::I64(h as i64)),
            KernelArg::Scalar(Value::I64(w as i64)),
            KernelArg::Array(out),
        ];
        execute_grid(
            &k,
            &args,
            Dim3::new2(2, 2), // 2x2 blocks of 4x4 threads -> 8x8 covers 6x8
            Dim3::new2(4, 4),
            &mut mem,
            ExecMode::Functional,
        )
        .unwrap();
        let vals = mem.read_all(out, ScalarTy::F32);
        for y in 0..h as usize {
            for x in 0..w as usize {
                assert_eq!(vals[y * w as usize + x], Value::F32((y * 10 + x) as f32));
            }
        }
    }

    #[test]
    fn stats_scale_with_grid() {
        let k = saxpy();
        let mut mem = VecMem::new();
        let args = [
            KernelArg::Scalar(Value::I64(1 << 20)),
            KernelArg::Scalar(Value::F32(2.0)),
            KernelArg::Array(0),
            KernelArg::Array(1),
        ];
        let one = execute_block(
            &k,
            &args,
            Dim3::new1(0),
            Dim3::new1(64),
            Dim3::new1(1024),
            &mut mem,
            ExecMode::CountOnly,
        )
        .unwrap();
        let two = execute_grid(
            &k,
            &args,
            Dim3::new1(2),
            Dim3::new1(64),
            &mut mem,
            ExecMode::CountOnly,
        )
        .unwrap();
        assert_eq!(two.loads, 2 * one.loads);
        assert_eq!(two.flops, 2 * one.flops);
    }
}
