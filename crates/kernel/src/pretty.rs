//! Render kernel IR back to CUDA-like source text.
//!
//! Used by the host-code rewriter's diagnostics, by tests, and to make the
//! partitioning transform inspectable (the paper's Figure 4 pseudo-code is
//! the host-side counterpart of this).

use crate::ir::{BinOp, Expr, Kernel, KernelParam, Stmt, UnOp};
use std::fmt::Write;

/// Render a kernel as CUDA-like source.
pub fn kernel_to_string(k: &Kernel) -> String {
    let mut out = String::new();
    let params: Vec<String> = k
        .params
        .iter()
        .map(|p| match p {
            KernelParam::Scalar { name, ty } => format!("{ty} {name}"),
            KernelParam::Array {
                name,
                elem,
                extents,
            } => {
                let dims: Vec<String> = extents.iter().map(|e| format!("[{e}]")).collect();
                format!("{elem} {name}{}", dims.join(""))
            }
        })
        .collect();
    let _ = writeln!(out, "__global__ void {}({}) {{", k.name, params.join(", "));
    for s in &k.body {
        stmt_to_string(s, 1, &mut out);
    }
    out.push_str("}\n");
    out
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

/// Render one statement (with indentation) into `out`.
pub fn stmt_to_string(s: &Stmt, level: usize, out: &mut String) {
    match s {
        Stmt::Let { var, value } => {
            indent(level, out);
            let _ = writeln!(out, "auto {var} = {};", expr_to_string(value));
        }
        Stmt::Assign { var, value } => {
            indent(level, out);
            let _ = writeln!(out, "{var} = {};", expr_to_string(value));
        }
        Stmt::Store {
            array,
            indices,
            value,
        } => {
            indent(level, out);
            let idx: Vec<String> = indices
                .iter()
                .map(|i| format!("[{}]", expr_to_string(i)))
                .collect();
            let _ = writeln!(out, "{array}{} = {};", idx.join(""), expr_to_string(value));
        }
        Stmt::If { cond, then_, else_ } => {
            indent(level, out);
            let _ = writeln!(out, "if ({}) {{", expr_to_string(cond));
            for s in then_ {
                stmt_to_string(s, level + 1, out);
            }
            if else_.is_empty() {
                indent(level, out);
                out.push_str("}\n");
            } else {
                indent(level, out);
                out.push_str("} else {\n");
                for s in else_ {
                    stmt_to_string(s, level + 1, out);
                }
                indent(level, out);
                out.push_str("}\n");
            }
        }
        Stmt::For {
            var,
            lo,
            hi,
            step,
            body,
        } => {
            indent(level, out);
            let stepstr = if *step == 1 {
                format!("{var}++")
            } else {
                format!("{var} += {step}")
            };
            let _ = writeln!(
                out,
                "for (int {var} = {}; {var} < {}; {stepstr}) {{",
                expr_to_string(lo),
                expr_to_string(hi)
            );
            for s in body {
                stmt_to_string(s, level + 1, out);
            }
            indent(level, out);
            out.push_str("}\n");
        }
        Stmt::Return => {
            indent(level, out);
            out.push_str("return;\n");
        }
        Stmt::SyncThreads => {
            indent(level, out);
            out.push_str("__syncthreads();\n");
        }
    }
}

fn binop_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::EqEq => "==",
        BinOp::Ne => "!=",
        BinOp::And => "&&",
        BinOp::Or => "||",
        BinOp::Min | BinOp::Max => unreachable!("rendered as calls"),
    }
}

/// Render an expression.
pub fn expr_to_string(e: &Expr) -> String {
    match e {
        Expr::Int(v) => v.to_string(),
        Expr::Float(v) => {
            if v.fract() == 0.0 {
                format!("{v:.1}f")
            } else {
                format!("{v}f")
            }
        }
        Expr::Var(n) => n.clone(),
        Expr::Grid(g) => g.to_string(),
        Expr::Load { array, indices } => {
            let idx: Vec<String> = indices
                .iter()
                .map(|i| format!("[{}]", expr_to_string(i)))
                .collect();
            format!("{array}{}", idx.join(""))
        }
        Expr::Unary(op, a) => match op {
            UnOp::Neg => format!("(-{})", expr_to_string(a)),
            UnOp::Not => format!("(!{})", expr_to_string(a)),
            UnOp::Sqrt => format!("sqrtf({})", expr_to_string(a)),
            UnOp::Abs => format!("fabsf({})", expr_to_string(a)),
            UnOp::Exp => format!("expf({})", expr_to_string(a)),
            UnOp::Log => format!("logf({})", expr_to_string(a)),
        },
        Expr::Binary(op, a, b) => match op {
            BinOp::Min => format!("min({}, {})", expr_to_string(a), expr_to_string(b)),
            BinOp::Max => format!("max({}, {})", expr_to_string(a), expr_to_string(b)),
            _ => format!(
                "({} {} {})",
                expr_to_string(a),
                binop_str(*op),
                expr_to_string(b)
            ),
        },
        Expr::Cast(ty, a) => format!("({ty})({})", expr_to_string(a)),
        Expr::Select(c, a, b) => format!(
            "({} ? {} : {})",
            expr_to_string(c),
            expr_to_string(a),
            expr_to_string(b)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::ir::Kernel;

    #[test]
    fn kernel_renders_as_cuda() {
        let k = Kernel {
            name: "vadd".into(),
            params: vec![
                scalar("n"),
                array_f32("a", &[ext("n")]),
                array_f32("c", &[ext("n")]),
            ],
            body: vec![
                let_("i", global_x()),
                guard_return(v("i").ge(v("n"))),
                store("c", vec![v("i")], load("a", vec![v("i")]) * f(2.0)),
            ],
        };
        let src = kernel_to_string(&k);
        assert!(src.contains("__global__ void vadd(int n, float a[n], float c[n])"));
        assert!(src.contains("threadIdx.x"));
        assert!(src.contains("blockIdx.x"));
        assert!(src.contains("return;"));
        assert!(src.contains("c[i] = (a[i] * 2.0f);"));
    }

    #[test]
    fn loops_and_minmax_render() {
        let s = for_(
            "j",
            i(0),
            v("n"),
            vec![assign("acc", max(v("acc"), load("a", vec![v("j")])))],
        );
        let mut out = String::new();
        stmt_to_string(&s, 0, &mut out);
        assert!(out.contains("for (int j = 0; j < n; j++) {"));
        assert!(out.contains("acc = max(acc, a[j]);"));
    }
}
