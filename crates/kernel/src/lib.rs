//! # mekong-kernel — mini-CUDA kernel IR and thread-grid interpreter
//!
//! The toolchain's device-side program representation: a small, typed IR
//! for data-parallel kernels in the CUDA execution model (paper §2.1).
//! It stands in for the LLVM IR that gpucc would produce — rich enough to
//! express the paper's benchmark kernels (Hotspot, N-Body, Matmul) and the
//! whole class of "regular access pattern" kernels the paper targets,
//! small enough to analyze precisely.
//!
//! Pieces:
//!
//! * [`ir`] — kernels, statements, expressions, parameters,
//! * [`builder`] — an ergonomic DSL with operator overloading for
//!   constructing IR in Rust (used by tests and the workload crate),
//! * [`interp`] — a per-thread interpreter with instruction/byte counting
//!   (functional execution *and* the cost model's measurement device),
//! * [`exec`] — block/grid execution drivers over a [`MemAccess`] memory
//!   interface,
//! * [`pretty`] — renders IR back to CUDA-like source.
//!
//! The grid follows CUDA's hierarchy: a 3-D grid of 3-D thread blocks,
//! addressed by `blockIdx`/`threadIdx` with extents `gridDim`/`blockDim`.

pub mod builder;
pub mod exec;
pub mod interp;
pub mod ir;
pub mod pretty;
pub mod types;

pub use exec::{execute_block, execute_grid, execute_thread};
pub use interp::{ExecMode, ExecStats, KernelArg, MemAccess, ThreadCtx, VecMem};
pub use ir::{Axis, BinOp, Expr, Extent, GridVar, Kernel, KernelParam, Stmt, UnOp};
pub use types::{Dim3, ScalarTy, Value};

/// Errors raised by IR construction, validation or interpretation.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelError {
    /// Reference to an unknown local variable or parameter.
    UnknownVar(String),
    /// Reference to an unknown array parameter.
    UnknownArray(String),
    /// An operation was applied to incompatible value types.
    TypeMismatch { context: String },
    /// Array access outside its extents (functional mode only).
    OutOfBounds {
        array: String,
        index: Vec<i64>,
        extents: Vec<i64>,
    },
    /// Integer division by zero.
    DivByZero,
    /// A `for` loop exceeded the interpreter's iteration budget.
    IterationBudget { var: String },
    /// Kernel argument count/type mismatch at launch.
    BadArguments { expected: usize, got: usize },
}

impl std::fmt::Display for KernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelError::UnknownVar(v) => write!(f, "unknown variable {v:?}"),
            KernelError::UnknownArray(a) => write!(f, "unknown array {a:?}"),
            KernelError::TypeMismatch { context } => write!(f, "type mismatch in {context}"),
            KernelError::OutOfBounds {
                array,
                index,
                extents,
            } => write!(
                f,
                "array {array:?} index {index:?} out of bounds {extents:?}"
            ),
            KernelError::DivByZero => write!(f, "integer division by zero"),
            KernelError::IterationBudget { var } => {
                write!(f, "loop over {var:?} exceeded the iteration budget")
            }
            KernelError::BadArguments { expected, got } => {
                write!(f, "kernel launch with {got} arguments, expected {expected}")
            }
        }
    }
}

impl std::error::Error for KernelError {}

/// Result alias for kernel operations.
pub type Result<T> = std::result::Result<T, KernelError>;
