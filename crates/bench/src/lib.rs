//! # mekong-bench — regenerating the paper's tables and figures
//!
//! One binary per artifact (see DESIGN.md §5 for the index):
//!
//! | Binary                 | Artifact                                  |
//! |------------------------|-------------------------------------------|
//! | `table1`               | Table 1 — benchmark configurations        |
//! | `fig6`                 | Figure 6 — speedup vs #GPUs               |
//! | `fig7`                 | Figure 7 — execution time breakdown       |
//! | `fig8`                 | Figure 8 — non-transfer overhead box plot |
//! | `single_gpu_overhead`  | §9.2 single-GPU slowdown statistics       |
//! | `compile_time`         | §3 compile-time increase                  |
//! | `ablation_distribution`| A1 — default vs free redistribution       |
//! | `ablation_tracker`     | A2 — tracker fragmentation vs sync cost   |
//! | `ablation_split_dim`   | A3 — partition axis choice                |
//! | `ablation_interconnect`| A4 — PCIe-tree vs NVLink-class fabric     |
//! | `ablation_streams`     | A5 — execution engine, transfer coalescing|
//! | `ablation_replay`      | A6 — launch-plan capture & replay         |
//! | `ablation_tuner`       | A7 — cost-model-driven autotuner          |
//! | `ablation_replica`     | A8 — replica-aware coherence              |
//! | `ablation_pipeline`    | A9 — launch-ahead pipelined scheduling    |
//! | `ablation_tiling`      | A10 — 2-D grid tilings vs 1-D slabs       |
//! | `ablation_serve`       | A11 — multi-tenant serving runtime        |
//! | `ablation_interval`    | A12 — interval boxes on irregular kernels |
//! | `ablation_backend`     | A13 — GPU-only vs CPU-only vs mixed       |
//!
//! All binaries accept `--quick` to scale down iteration counts for a fast
//! smoke run; without it, the Table 1 configurations are used.

/// Percentile of a sorted slice (nearest-rank).
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    let rank = (p / 100.0 * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Median convenience.
pub fn median(sorted: &[f64]) -> f64 {
    percentile(sorted, 50.0)
}

/// Format a row of fixed-width cells.
pub fn row(cells: &[String], width: usize) -> String {
    cells
        .iter()
        .map(|c| format!("{c:>width$}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Parsed common benchmark flags.
pub struct BenchArgs {
    pub quick: bool,
    pub iter_scale: f64,
    pub gpus: Vec<usize>,
}

impl BenchArgs {
    /// Parse from `std::env::args`: `--quick`, `--iter-scale X`,
    /// `--gpus 1,2,4`.
    pub fn parse() -> BenchArgs {
        let argv: Vec<String> = std::env::args().collect();
        let quick = argv.iter().any(|a| a == "--quick");
        let mut iter_scale = if quick { 0.02 } else { 1.0 };
        let mut gpus = mekong_workloads::GPU_COUNTS.to_vec();
        let mut it = argv.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--iter-scale" => {
                    if let Some(v) = it.next() {
                        iter_scale = v.parse().expect("--iter-scale takes a number");
                    }
                }
                "--gpus" => {
                    if let Some(v) = it.next() {
                        gpus = v
                            .split(',')
                            .map(|s| s.parse().expect("--gpus takes a comma list"))
                            .collect();
                    }
                }
                _ => {}
            }
        }
        BenchArgs {
            quick,
            iter_scale,
            gpus,
        }
    }

    /// Iteration count for a benchmark, scaled (minimum 1).
    pub fn iters_for(&self, b: &dyn mekong_workloads::Benchmark) -> usize {
        ((b.iterations() as f64 * self.iter_scale).round() as usize).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(median(&v), 3.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 5.0);
        assert_eq!(percentile(&v, 25.0), 2.0);
    }

    #[test]
    fn row_formats_fixed_width() {
        let r = row(&["a".into(), "bb".into()], 4);
        assert_eq!(r, "   a   bb");
    }
}
