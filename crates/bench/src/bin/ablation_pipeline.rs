//! Ablation A9: launch-ahead pipelined scheduling.
//!
//! The Figure 4 replay path is fully synchronous: every iteration pays
//! `halo exchange + compute` because a global barrier sits between the
//! read-sync and launch phases. With `RuntimeConfig::launch_ahead > 0`,
//! captured-plan replays instead record per-device command segments with
//! event edges (see `mekong_runtime::pipeline`), so iteration *i+1*'s
//! halo exchange drains on the copy engines while iteration *i*'s
//! compute still occupies the SM clocks — steady state approaches
//! `max(halo, compute)` per iteration instead of their sum.
//!
//! **Part A (correctness)** runs the ping-pong Hotspot stencil and the
//! separable Blur pipeline on *functional* machines at
//! `launch_ahead ∈ {0, 2, 4}` and asserts byte-identical outputs and
//! identical plan-cache behaviour — pipelining must be invisible to
//! everything but the device clocks. This is the CI gate: `--quick`
//! runs fail loudly on any divergence.
//!
//! **Part B (performance)** repeats both workloads on perf machines at
//! 2 and 4 GPUs and compares simulated wall-clock for
//! `launch_ahead = 2` vs `0`. The sizes put halo time and compute time
//! in the same regime, where overlap pays most; the acceptance bar is a
//! ≥ 15% reduction on at least one ping-pong stencil at 4 GPUs, with
//! every counter (transfers, launches, plan hits) unchanged.
//!
//! Emits `BENCH_pipeline.json`.

use mekong_bench::BenchArgs;
use mekong_core::prelude::*;
use mekong_gpusim::{Machine, OpCounters};
use mekong_workloads::{blur, hotspot};
use serde::Serialize;

fn config(launch_ahead: u32) -> RuntimeConfig {
    RuntimeConfig {
        capture_plans: true,
        launch_ahead,
        ..RuntimeConfig::default()
    }
}

fn hit_rate(c: &OpCounters) -> f64 {
    let total = c.plan_hits + c.plan_misses;
    if total == 0 {
        0.0
    } else {
        c.plan_hits as f64 / total as f64
    }
}

/// One run of a workload at a given launch-ahead depth. On functional
/// machines `output` holds the gathered result bytes; on perf machines
/// it is empty and only the clocks and counters are meaningful.
struct PipeRun {
    elapsed: f64,
    counters: OpCounters,
    output: Vec<u8>,
}

/// Ping-pong Hotspot: `src/dst` swap each iteration, `power` is
/// read-only — the canonical halo-exchange loop.
fn run_hotspot(ahead: u32, gpus: usize, n: usize, iters: usize, functional: bool) -> PipeRun {
    let program = compile_source(hotspot::SOURCE).expect("hotspot compiles");
    let ck = program.kernel("hotspot").unwrap();
    let (grid, block) = hotspot::geometry(n);
    let bytes = n * n * 4;

    let mut rt = MgpuRuntime::new(Machine::new(MachineSpec::kepler_system(gpus), functional));
    rt.set_config(config(ahead));
    let a = rt.malloc(bytes, 4).unwrap();
    let b = rt.malloc(bytes, 4).unwrap();
    let p = rt.malloc(bytes, 4).unwrap();
    if functional {
        let temp: Vec<u8> = (0..n * n)
            .flat_map(|i| (((i * 31) % 173) as f32 * 0.1).to_le_bytes())
            .collect();
        let power: Vec<u8> = (0..n * n)
            .flat_map(|i| (((i * 17) % 97) as f32 * 0.01).to_le_bytes())
            .collect();
        rt.memcpy_h2d(a, &temp).unwrap();
        rt.memcpy_h2d(b, &temp).unwrap();
        rt.memcpy_h2d(p, &power).unwrap();
    } else {
        rt.memcpy_h2d_sim(a).unwrap();
        rt.memcpy_h2d_sim(b).unwrap();
        rt.memcpy_h2d_sim(p).unwrap();
    }
    // Time only the iteration loop, not the uploads.
    rt.machine_mut().reset_clock();
    let (mut src, mut dst) = (a, b);
    for _ in 0..iters {
        rt.launch(
            ck,
            grid,
            block,
            &[
                LaunchArg::Scalar(Value::I64(n as i64)),
                LaunchArg::Scalar(Value::F32(hotspot::CAP)),
                LaunchArg::Buf(src),
                LaunchArg::Buf(p),
                LaunchArg::Buf(dst),
            ],
        )
        .expect("hotspot launch");
        std::mem::swap(&mut src, &mut dst);
    }
    rt.synchronize();
    let elapsed = rt.elapsed();
    let mut output = Vec::new();
    if functional {
        output = vec![0u8; bytes];
        rt.memcpy_d2h(src, &mut output).unwrap();
    }
    PipeRun {
        elapsed,
        counters: rt.machine().counters(),
        output,
    }
}

/// Separable Blur (`row` then `col`, ping-ponging through `tmp`): the
/// column pass reads across the row partitions, so every iteration
/// re-syncs halos of `tmp`.
fn run_blur(ahead: u32, gpus: usize, n: usize, iters: usize, functional: bool) -> PipeRun {
    let program = compile_source(blur::SOURCE).expect("blur compiles");
    let row = program.kernel("blur_row").unwrap();
    let col = program.kernel("blur_col").unwrap();
    let (grid, block) = blur::geometry(n);
    let bytes = n * n * 4;

    let mut rt = MgpuRuntime::new(Machine::new(MachineSpec::kepler_system(gpus), functional));
    rt.set_config(config(ahead));
    let a = rt.malloc(bytes, 4).unwrap();
    let tmp = rt.malloc(bytes, 4).unwrap();
    if functional {
        let img: Vec<u8> = (0..n * n)
            .flat_map(|i| (((i * 41) % 211) as f32).to_le_bytes())
            .collect();
        rt.memcpy_h2d(a, &img).unwrap();
    } else {
        rt.memcpy_h2d_sim(a).unwrap();
    }
    rt.machine_mut().reset_clock();
    let n_arg = LaunchArg::Scalar(Value::I64(n as i64));
    for _ in 0..iters {
        rt.launch(
            row,
            grid,
            block,
            &[n_arg, LaunchArg::Buf(a), LaunchArg::Buf(tmp)],
        )
        .expect("blur_row launch");
        rt.launch(
            col,
            grid,
            block,
            &[n_arg, LaunchArg::Buf(tmp), LaunchArg::Buf(a)],
        )
        .expect("blur_col launch");
    }
    rt.synchronize();
    let elapsed = rt.elapsed();
    let mut output = Vec::new();
    if functional {
        output = vec![0u8; bytes];
        rt.memcpy_d2h(a, &mut output).unwrap();
    }
    PipeRun {
        elapsed,
        counters: rt.machine().counters(),
        output,
    }
}

#[derive(Serialize)]
struct CorrectnessReport {
    workload: &'static str,
    gpus: usize,
    n: usize,
    iters: usize,
    identical_outputs: bool,
    plan_hits: u64,
    plan_misses: u64,
}

#[derive(Serialize)]
struct PerfReport {
    workload: &'static str,
    gpus: usize,
    n: usize,
    iters: usize,
    elapsed_sync_ms: f64,
    elapsed_pipelined_ms: f64,
    reduction_pct: f64,
    hit_rate: f64,
}

#[derive(Serialize)]
struct Report {
    correctness: Vec<CorrectnessReport>,
    perf: Vec<PerfReport>,
}

type WorkloadFn = fn(u32, usize, usize, usize, bool) -> PipeRun;

/// Functional differential at `launch_ahead ∈ {0, 2, 4}`: identical
/// bytes, identical plan-cache behaviour.
fn check_correctness(
    workload: &'static str,
    run: WorkloadFn,
    gpus: usize,
    n: usize,
    iters: usize,
) -> CorrectnessReport {
    let base = run(0, gpus, n, iters, true);
    for ahead in [2u32, 4] {
        let r = run(ahead, gpus, n, iters, true);
        assert_eq!(
            base.output, r.output,
            "{workload}: launch_ahead={ahead} diverged from synchronous output"
        );
        assert_eq!(
            (base.counters.plan_hits, base.counters.plan_misses),
            (r.counters.plan_hits, r.counters.plan_misses),
            "{workload}: launch_ahead={ahead} changed plan-cache behaviour"
        );
        assert_eq!(
            base.counters, r.counters,
            "{workload}: launch_ahead={ahead} changed machine counters"
        );
    }
    println!("{workload:>10} {gpus:>5} {n:>6} {iters:>6}   outputs byte-identical at ahead 0/2/4");
    CorrectnessReport {
        workload,
        gpus,
        n,
        iters,
        identical_outputs: true,
        plan_hits: base.counters.plan_hits,
        plan_misses: base.counters.plan_misses,
    }
}

/// Perf differential at `launch_ahead = 2` vs `0`: identical counters,
/// reduced simulated wall-clock.
fn check_perf(
    workload: &'static str,
    run: WorkloadFn,
    gpus: usize,
    n: usize,
    iters: usize,
) -> PerfReport {
    let sync = run(0, gpus, n, iters, false);
    let pipe = run(2, gpus, n, iters, false);
    assert_eq!(
        sync.counters, pipe.counters,
        "{workload}@{gpus}: pipelining must not change any counter"
    );
    let reduction = 100.0 * (1.0 - pipe.elapsed / sync.elapsed);
    println!(
        "{workload:>10} {gpus:>5} {n:>6} {iters:>6} {:>12.3} {:>12.3} {reduction:>9.1}%",
        sync.elapsed * 1e3,
        pipe.elapsed * 1e3,
    );
    PerfReport {
        workload,
        gpus,
        n,
        iters,
        elapsed_sync_ms: sync.elapsed * 1e3,
        elapsed_pipelined_ms: pipe.elapsed * 1e3,
        reduction_pct: reduction,
        hit_rate: hit_rate(&pipe.counters),
    }
}

fn main() {
    let args = BenchArgs::parse();
    let (fn_iters, perf_iters) = if args.quick { (8, 12) } else { (24, 48) };
    let perf_n = if args.quick { 1024 } else { 2048 };

    println!("Ablation A9: launch-ahead pipelined scheduling");
    println!();
    println!("Part A: functional differential (launch_ahead 0 vs 2 vs 4)");
    println!("{:>10} {:>5} {:>6} {:>6}", "workload", "gpus", "n", "iters");
    let correctness = vec![
        check_correctness("hotspot", run_hotspot, 4, 260, fn_iters),
        check_correctness("blur", run_blur, 3, 200, fn_iters),
        check_correctness("hotspot", run_hotspot, 2, 260, fn_iters),
    ];

    println!();
    println!("Part B: simulated wall-clock, launch_ahead 2 vs 0 (perf machines)");
    println!(
        "{:>10} {:>5} {:>6} {:>6} {:>12} {:>12} {:>10}",
        "workload", "gpus", "n", "iters", "sync [ms]", "pipe [ms]", "saved"
    );
    let mut perf = Vec::new();
    for gpus in [2usize, 4] {
        perf.push(check_perf("hotspot", run_hotspot, gpus, perf_n, perf_iters));
        perf.push(check_perf("blur", run_blur, gpus, perf_n, perf_iters));
    }

    let best = perf
        .iter()
        .filter(|p| p.gpus == 4)
        .map(|p| p.reduction_pct)
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        best >= 15.0,
        "launch-ahead must cut ≥15% wall-clock on a ping-pong stencil at 4 GPUs, best was {best:.1}%"
    );
    for p in &perf {
        assert!(
            p.hit_rate > 0.5,
            "{}@{}: replay must dominate for the overlap to matter",
            p.workload,
            p.gpus
        );
    }

    println!();
    println!(
        "pipelining is invisible to outputs and counters; halo exchange overlaps compute \
         for a {best:.1}% wall-clock cut at 4 GPUs."
    );

    let report = Report { correctness, perf };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_pipeline.json", &json).expect("write BENCH_pipeline.json");
    println!();
    println!("wrote BENCH_pipeline.json");
}
