//! Ablation A13: backend comparison — tuned mixed CPU+GPU shares vs
//! GPU-only vs CPU-only execution.
//!
//! The `Backend` trait lets the same runtime drive the sim-GPU machine,
//! the rayon host-CPU backend, and a mixed machine hosting both device
//! classes. This ablation answers three questions for hotspot and
//! nbody:
//!
//! 1. **Functional equivalence** — the bytes produced on a pure sim-GPU
//!    machine, on `CpuBackend` alone, and on a mixed CPU+GPU machine
//!    must be identical (all backends share the block-parallel
//!    interpreter, so divergence is a backend bug).
//! 2. **Heterogeneous shares** — on the mixed machine the autotuner
//!    must notice the class imbalance. For nbody (compute-bound, and
//!    every partition re-reads all positions, so the transfer bill is
//!    layout-invariant) it must pick *weighted* shares sized by the
//!    per-class rooflines. For hotspot the h2d upload already lands in
//!    even slabs and the stencil reads are layout-local, so the even
//!    split's near-zero redistribution beats the weighted split's
//!    one-time reshuffle in the greedy first-launch ranking — the
//!    chosen shares are recorded either way.
//! 3. **Placement sanity** — CPU-only nbody is slower than GPU-only
//!    (host sockets trail Kepler dies ~8x in flops), quantifying why
//!    mixed placement gives the CPU only a sliver of the grid. For
//!    transfer-dominated sizes of hotspot the CPU-only machine can
//!    *win*: host↔host halo memcpys skip the PCIe hop entirely, which
//!    is exactly what the host-memory cost model is about — the ratio
//!    is reported, not asserted.
//!
//! Emits `BENCH_backend.json`.

use mekong_bench::BenchArgs;
use mekong_core::prelude::*;
use mekong_workloads::harness::RunOutcome;
use mekong_workloads::{hotspot, nbody, Benchmark};
use serde::Serialize;

type StepFn = Box<dyn FnMut(&mut MgpuRuntime)>;

/// A constructed workload instance on some backend: runtime with
/// uploaded buffers plus a closure performing one iteration.
struct Prepared {
    rt: MgpuRuntime,
    step: StepFn,
}

struct Bench {
    name: &'static str,
    n_full: usize,
    n_quick: usize,
    /// Iterations to absorb the initial redistribution before the
    /// steady-state measurement window.
    warmup: usize,
    measure_full: usize,
    measure_quick: usize,
    make: fn(Box<dyn Backend>, RuntimeConfig, usize) -> Prepared,
    workload: fn() -> Box<dyn Benchmark>,
    /// Must the tuner pick weighted shares on the mixed machine?
    /// (Only where the transfer bill is layout-invariant; see the
    /// module docs.)
    expect_weighted: bool,
    /// Must CPU-only lose to GPU-only? (Only for compute-bound
    /// kernels; transfer-bound ones may win on host memcpys.)
    expect_cpu_slower: bool,
}

fn make_hotspot(machine: Box<dyn Backend>, cfg: RuntimeConfig, n: usize) -> Prepared {
    let program = compile_source(hotspot::SOURCE).expect("hotspot compiles");
    let ck = program.kernel("hotspot").unwrap().clone();
    let (grid, block) = hotspot::geometry(n);
    let bytes = n * n * 4;
    let mut rt = MgpuRuntime::from_boxed(machine);
    rt.set_config(cfg);
    let a = rt.malloc(bytes, 4).unwrap();
    let b = rt.malloc(bytes, 4).unwrap();
    let p = rt.malloc(bytes, 4).unwrap();
    for buf in [a, b, p] {
        rt.memcpy_h2d_sim(buf).unwrap();
    }
    let args = move |src, dst| {
        vec![
            LaunchArg::Scalar(Value::I64(n as i64)),
            LaunchArg::Scalar(Value::F32(hotspot::CAP)),
            LaunchArg::Buf(src),
            LaunchArg::Buf(p),
            LaunchArg::Buf(dst),
        ]
    };
    let (mut src, mut dst) = (a, b);
    let step: StepFn = Box::new(move |rt| {
        rt.launch(&ck, grid, block, &args(src, dst))
            .expect("hotspot launch");
        std::mem::swap(&mut src, &mut dst);
    });
    Prepared { rt, step }
}

fn make_nbody(machine: Box<dyn Backend>, cfg: RuntimeConfig, n: usize) -> Prepared {
    let program = compile_source(nbody::SOURCE).expect("nbody compiles");
    let ck = program.kernel("nbody").unwrap().clone();
    let (grid, block) = nbody::geometry(n);
    let bytes = n * 4 * 4;
    let mut rt = MgpuRuntime::from_boxed(machine);
    rt.set_config(cfg);
    let a = rt.malloc(bytes, 4).unwrap();
    let b = rt.malloc(bytes, 4).unwrap();
    let v = rt.malloc(bytes, 4).unwrap();
    rt.memcpy_h2d_sim(a).unwrap();
    rt.memcpy_h2d_sim(v).unwrap();
    let args = move |src, dst| {
        vec![
            LaunchArg::Scalar(Value::I64(n as i64)),
            LaunchArg::Scalar(Value::F32(nbody::DT)),
            LaunchArg::Scalar(Value::F32(nbody::EPS)),
            LaunchArg::Buf(src),
            LaunchArg::Buf(v),
            LaunchArg::Buf(dst),
        ]
    };
    let (mut src, mut dst) = (a, b);
    let step: StepFn = Box::new(move |rt| {
        rt.launch(&ck, grid, block, &args(src, dst))
            .expect("nbody launch");
        std::mem::swap(&mut src, &mut dst);
    });
    Prepared { rt, step }
}

const BENCHES: &[Bench] = &[
    Bench {
        name: "hotspot",
        n_full: 2048,
        n_quick: 512,
        warmup: 3,
        measure_full: 12,
        measure_quick: 4,
        make: make_hotspot,
        workload: || Box::new(mekong_workloads::Hotspot),
        expect_weighted: false,
        expect_cpu_slower: false,
    },
    Bench {
        name: "nbody",
        n_full: 65_536,
        n_quick: 8_192,
        warmup: 2,
        measure_full: 8,
        measure_quick: 3,
        make: make_nbody,
        workload: || Box::new(mekong_workloads::NBody),
        expect_weighted: true,
        expect_cpu_slower: true,
    },
];

#[derive(Serialize)]
struct ExecRow {
    executor: String,
    elapsed: f64,
    strategy: Option<String>,
    /// Per-device grid-share fractions of the chosen strategy.
    chosen_shares: Vec<f64>,
    predict_bytes_per_launch: u64,
    measured_bytes_per_launch: u64,
    prediction_error: f64,
}

#[derive(Serialize)]
struct WorkloadReport {
    name: String,
    n: usize,
    iters: usize,
    byte_identical: bool,
    executors: Vec<ExecRow>,
    mixed_strategy: String,
    cpu_vs_gpu_slowdown: f64,
}

#[derive(Serialize)]
struct Report {
    quick: bool,
    gpus: usize,
    cpu_sockets: usize,
    workloads: Vec<WorkloadReport>,
}

/// Prediction error of the tuner's chosen strategy: |predicted −
/// measured| steady-state peer-transfer bytes, relative to measured.
fn prediction_error(o: &RunOutcome) -> f64 {
    (o.tuner_predict_bytes as f64 - o.tuner_measured_bytes as f64).abs()
        / (o.tuner_measured_bytes as f64).max(1.0)
}

/// Run `iters` iterations, returning the outcome plus the chosen
/// strategy's share vector normalized to fractions (even splits report
/// `1/k` each; weighted splits the proportional weights).
fn run(prep: Prepared, iters: usize) -> (RunOutcome, Vec<f64>) {
    let Prepared { mut rt, mut step } = prep;
    for _ in 0..iters {
        step(&mut rt);
    }
    rt.synchronize();
    let shares = rt
        .tuner()
        .entries()
        .next()
        .map(|(_, e)| {
            let s = &e.strategy().shares;
            let total: f64 = s.iter().sum();
            s.iter().map(|w| w / total).collect()
        })
        .unwrap_or_default();
    (RunOutcome::from_runtime(&rt), shares)
}

fn row(executor: &str, o: &RunOutcome, shares: &[f64]) -> ExecRow {
    let err = prediction_error(o);
    let share_str = shares
        .iter()
        .map(|s| format!("{s:.2}"))
        .collect::<Vec<_>>()
        .join("/");
    println!(
        "{:>12} {:>12.3} {:>9} {:>16} {:>15} {:>15} {:>8.1}%",
        executor,
        o.elapsed * 1e3,
        o.strategy_chosen.as_deref().unwrap_or("-"),
        share_str,
        o.tuner_predict_bytes,
        o.tuner_measured_bytes,
        err * 100.0
    );
    ExecRow {
        executor: executor.to_string(),
        elapsed: o.elapsed,
        strategy: o.strategy_chosen.clone(),
        chosen_shares: shares.to_vec(),
        predict_bytes_per_launch: o.tuner_predict_bytes,
        measured_bytes_per_launch: o.tuner_measured_bytes,
        prediction_error: err,
    }
}

fn main() {
    let args = BenchArgs::parse();
    let (gpus, cpus) = (2usize, 1usize);

    println!("Ablation A13: Backend trait — GPU-only vs CPU-only vs mixed CPU+GPU");
    let mut workloads = Vec::new();
    for bench in BENCHES {
        let n = if args.quick {
            bench.n_quick
        } else {
            bench.n_full
        };
        let measure = if args.quick {
            bench.measure_quick
        } else {
            bench.measure_full
        };
        let iters = bench.warmup + measure;

        // Functional equivalence across backends (small fixed-size
        // instances in functional mode, independent of `n`).
        let w = (bench.workload)();
        let gpu_out = w.verify_output(Box::new(Machine::new(
            MachineSpec::kepler_system(gpus + cpus),
            true,
        )));
        let cpu_out = w.verify_output(Box::new(CpuBackend::system(gpus + cpus, true)));
        let mixed_out = w.verify_output(Box::new(Machine::new(
            MachineSpec::hybrid_system(gpus, cpus),
            true,
        )));
        let byte_identical = gpu_out == cpu_out && gpu_out == mixed_out;
        assert!(
            byte_identical,
            "{}: backends disagree on output bytes",
            bench.name
        );

        // Tuned performance runs on the three executors.
        println!();
        println!("{} (n = {n}, {iters} iterations, tuned)", bench.name);
        println!(
            "{:>12} {:>12} {:>9} {:>16} {:>15} {:>15} {:>9}",
            "executor",
            "elapsed [ms]",
            "strategy",
            "shares",
            "predict [B/l]",
            "measured [B/l]",
            "pred err"
        );
        let (gpu, gpu_shares) = run(
            (bench.make)(
                Box::new(Machine::new(MachineSpec::kepler_system(gpus), false)),
                RuntimeConfig::tuned(),
                n,
            ),
            iters,
        );
        let (cpu, cpu_shares) = run(
            (bench.make)(
                Box::new(CpuBackend::system(2, false)),
                RuntimeConfig::tuned(),
                n,
            ),
            iters,
        );
        let (mixed, mixed_shares) = run(
            (bench.make)(
                Box::new(Machine::new(MachineSpec::hybrid_system(gpus, cpus), false)),
                RuntimeConfig::tuned(),
                n,
            ),
            iters,
        );

        let rows = vec![
            row(&format!("gpu:{gpus}"), &gpu, &gpu_shares),
            row("cpu:2", &cpu, &cpu_shares),
            row(&format!("gpu:{gpus}+cpu:{cpus}"), &mixed, &mixed_shares),
        ];

        // Every executor must have consulted the tuner and recorded a
        // choice — the per-class pricing ran, whatever it picked.
        for (o, who) in [(&gpu, "gpu"), (&cpu, "cpu"), (&mixed, "mixed")] {
            assert!(
                o.strategy_chosen.is_some(),
                "{}: no tuner decision recorded on the {who} executor",
                bench.name
            );
        }
        let mixed_strategy = mixed.strategy_chosen.clone().unwrap_or_default();
        if bench.expect_weighted {
            assert!(
                mixed_strategy.ends_with(":w"),
                "{}: expected weighted shares on the mixed machine, got {mixed_strategy:?}",
                bench.name
            );
            // The host socket (last device) gets a real but strictly
            // smallest sliver of the grid.
            let cpu_share = *mixed_shares.last().unwrap();
            assert!(
                cpu_share > 0.0 && mixed_shares[..gpus].iter().all(|&g| g > cpu_share),
                "{}: CPU share must be the smallest non-zero share: {mixed_shares:?}",
                bench.name
            );
            // Layout-invariant transfers also mean the decision-time
            // prediction must track the measured steady state.
            assert!(
                prediction_error(&mixed) <= 0.10,
                "{}: mixed prediction off by {:.0}%",
                bench.name,
                prediction_error(&mixed) * 100.0
            );
        }
        let slowdown = cpu.elapsed / gpu.elapsed;
        if bench.expect_cpu_slower {
            assert!(
                slowdown > 1.0,
                "{}: CPU-only should be slower than GPU-only ({} vs {})",
                bench.name,
                cpu.elapsed,
                gpu.elapsed
            );
        }
        println!(
            "mixed strategy {mixed_strategy}, CPU-only/GPU-only elapsed ratio {slowdown:.2}x, \
             outputs byte-identical"
        );

        workloads.push(WorkloadReport {
            name: bench.name.to_string(),
            n,
            iters,
            byte_identical,
            executors: rows,
            mixed_strategy,
            cpu_vs_gpu_slowdown: slowdown,
        });
    }

    let report = Report {
        quick: args.quick,
        gpus,
        cpu_sockets: 2,
        workloads,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_backend.json", &json).expect("write BENCH_backend.json");
    println!();
    println!("wrote BENCH_backend.json");
}
