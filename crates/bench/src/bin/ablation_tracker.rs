//! Ablation A2: tracker fragmentation vs synchronization cost (§8.1).
//!
//! Two measurements:
//!
//! 1. Steady-state tracker segment counts of the Hotspot temperature
//!    buffer per device count — the paper's claim: regular 1:1 kernels
//!    produce exactly one segment per partition.
//! 2. A synthetic scaling study of the tracker data structure itself:
//!    wall-clock cost of `update` + `query` at increasing fragmentation.

use mekong_runtime::{Owner, Tracker};
use std::time::Instant;

fn main() {
    println!("Ablation A2a: Hotspot tracker fragmentation at steady state.");
    println!();
    println!("{:>5} {:>22}", "GPUs", "segments (temp buffer)");
    for gpus in [1usize, 2, 4, 8, 16] {
        // Reproduce the tracker state analytically the way the runtime
        // produces it: linear H2D then per-partition row writes.
        let n = 4096u64;
        let mut t = Tracker::new(n * n * 4);
        // initial linear distribution
        let chunk = n * n * 4 / gpus as u64;
        for g in 0..gpus as u64 {
            t.update(g * chunk, (g + 1) * chunk, Owner::Device(g as usize));
        }
        // a few iterations of contiguous per-partition writes
        let rows_per = n / gpus as u64;
        for _ in 0..5 {
            for g in 0..gpus as u64 {
                let s = g * rows_per * n * 4;
                let e = if g as usize == gpus - 1 {
                    n * n * 4
                } else {
                    (g + 1) * rows_per * n * 4
                };
                t.update(s, e, Owner::Device(g as usize));
            }
        }
        assert!(t.check_invariants());
        println!("{:>5} {:>22}", gpus, t.segment_count());
    }

    println!();
    println!("Ablation A2b: tracker operation cost vs fragmentation (wall clock).");
    println!();
    println!(
        "{:>10} {:>14} {:>14}",
        "segments", "update [ns]", "query [ns]"
    );
    for frag in [1usize, 16, 256, 4096, 65536] {
        let len = 1u64 << 26;
        let mut t = Tracker::new(len);
        let piece = len / frag as u64;
        for i in 0..frag as u64 {
            t.update(i * piece, (i + 1) * piece, Owner::Device((i % 7) as usize));
        }
        let reps = 20_000;
        // update cost: overwrite a random-ish small window
        let t0 = Instant::now();
        let mut x = 12345u64;
        for _ in 0..reps {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let s = x % (len - 1024);
            t.update(s, s + 1024, Owner::Device((x % 5) as usize));
        }
        let upd = t0.elapsed().as_nanos() as f64 / reps as f64;
        // query cost
        let t0 = Instant::now();
        let mut sink = 0u64;
        for _ in 0..reps {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let s = x % (len - 4096);
            t.query(s, s + 4096, &mut |a, b, _| sink += b - a);
        }
        let qry = t0.elapsed().as_nanos() as f64 / reps as f64;
        std::hint::black_box(sink);
        println!("{:>10} {:>14.0} {:>14.0}", frag, upd, qry);
    }
    println!();
    println!("B-tree-backed segments keep both operations effectively O(log segments)");
    println!("(paper §8.1), so regular kernels see constant per-launch tracker cost.");
}
