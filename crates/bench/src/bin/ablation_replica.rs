//! Ablation A8: replica-aware coherence.
//!
//! `memcpy_h2d` distributes host data linearly across devices, and the
//! paper's single-owner tracker keeps those bytes owned by wherever the
//! upload put them: every partition whose read set crosses an upload
//! slice (or a halo) re-fetches the same remote bytes on *every* launch,
//! because reads never change ownership. Replica-aware coherence
//! (validity sets, `RuntimeConfig::replica_coherence`) records read-sync
//! destinations as valid holders, so a host-uploaded read-only array is
//! fetched once and then served locally forever.
//!
//! **Part A** runs the ping-pong Hotspot stencil on 4 functional GPUs
//! and samples the per-launch D2D bytes flowing *into* the read-only
//! `power` array: with replicas the refetch must drop to zero after the
//! first launch, without them it recurs identically every launch. Both
//! runs must produce byte-identical temperature output.
//!
//! **Part B** repeats the experiment with a non-ping-pong Blur pipeline
//! (`img → tmp → out`, `img` never written) on 3 GPUs, where the 3-way
//! linear upload of `img` misaligns with the block-granular row
//! partitions — steady-state refetch again must vanish with replicas.
//!
//! Both parts run with plan capture on, and the plan-cache hit rate with
//! replicas enabled must stay at the A6 (`ablation_replay`) level:
//! holder sets are part of the tracker signature, so ping-pong launches
//! still reach a periodic fixed point.
//!
//! Emits `BENCH_replica.json`.

use mekong_bench::BenchArgs;
use mekong_core::prelude::*;
use mekong_gpusim::{Machine, OpCounters};
use mekong_workloads::{blur, hotspot};
use serde::Serialize;

/// One functional run with per-launch transfer sampling on one buffer.
struct ReplicaRun {
    output: Vec<u8>,
    /// D2D bytes copied into the sampled read-only buffer, per iteration.
    refetch_per_iter: Vec<u64>,
    counters: OpCounters,
}

fn config(replica: bool) -> RuntimeConfig {
    RuntimeConfig {
        replica_coherence: replica,
        capture_plans: true,
        ..RuntimeConfig::beta()
    }
}

fn hit_rate(c: &OpCounters) -> f64 {
    let total = c.plan_hits + c.plan_misses;
    if total == 0 {
        0.0
    } else {
        c.plan_hits as f64 / total as f64
    }
}

/// Hotspot on 4 functional GPUs, sampling refetch into `power`.
fn run_hotspot(replica: bool, n: usize, iters: usize) -> ReplicaRun {
    let program = compile_source(hotspot::SOURCE).expect("hotspot compiles");
    let ck = program.kernel("hotspot").unwrap();
    let (grid, block) = hotspot::geometry(n);
    let bytes = n * n * 4;

    let mut rt = MgpuRuntime::new(Machine::new(MachineSpec::kepler_system(4), true));
    rt.set_config(config(replica));
    let a = rt.malloc(bytes, 4).unwrap();
    let b = rt.malloc(bytes, 4).unwrap();
    let p = rt.malloc(bytes, 4).unwrap();
    let temp: Vec<u8> = (0..n * n)
        .flat_map(|i| (((i * 31) % 173) as f32 * 0.1).to_le_bytes())
        .collect();
    let power: Vec<u8> = (0..n * n)
        .flat_map(|i| (((i * 17) % 97) as f32 * 0.01).to_le_bytes())
        .collect();
    rt.memcpy_h2d(a, &temp).unwrap();
    rt.memcpy_h2d(b, &temp).unwrap();
    rt.memcpy_h2d(p, &power).unwrap();
    let (mut src, mut dst) = (a, b);
    let mut refetch = Vec::with_capacity(iters);
    let mut last = rt.d2d_bytes_into(p);
    for _ in 0..iters {
        rt.launch(
            ck,
            grid,
            block,
            &[
                LaunchArg::Scalar(Value::I64(n as i64)),
                LaunchArg::Scalar(Value::F32(hotspot::CAP)),
                LaunchArg::Buf(src),
                LaunchArg::Buf(p),
                LaunchArg::Buf(dst),
            ],
        )
        .expect("hotspot launch");
        let now = rt.d2d_bytes_into(p);
        refetch.push(now - last);
        last = now;
        std::mem::swap(&mut src, &mut dst);
    }
    rt.synchronize();
    let mut out = vec![0u8; bytes];
    rt.memcpy_d2h(src, &mut out).unwrap();
    ReplicaRun {
        output: out,
        refetch_per_iter: refetch,
        counters: rt.machine().counters(),
    }
}

/// Blur as a non-ping-pong pipeline `img → tmp → out` on 3 functional
/// GPUs: `img` is uploaded once, read by every row pass, never written.
/// `n` is chosen indivisible by 3 so the element-linear upload slices
/// misalign with the block-granular row partitions.
fn run_blur(replica: bool, n: usize, iters: usize) -> ReplicaRun {
    let program = compile_source(blur::SOURCE).expect("blur compiles");
    let row = program.kernel("blur_row").unwrap();
    let col = program.kernel("blur_col").unwrap();
    let (grid, block) = blur::geometry(n);
    let bytes = n * n * 4;

    let mut rt = MgpuRuntime::new(Machine::new(MachineSpec::kepler_system(3), true));
    rt.set_config(config(replica));
    let img = rt.malloc(bytes, 4).unwrap();
    let tmp = rt.malloc(bytes, 4).unwrap();
    let out = rt.malloc(bytes, 4).unwrap();
    let img_h: Vec<u8> = (0..n * n)
        .flat_map(|i| (((i * 41) % 211) as f32).to_le_bytes())
        .collect();
    rt.memcpy_h2d(img, &img_h).unwrap();
    let n_arg = LaunchArg::Scalar(Value::I64(n as i64));
    let mut refetch = Vec::with_capacity(iters);
    let mut last = rt.d2d_bytes_into(img);
    for _ in 0..iters {
        rt.launch(
            row,
            grid,
            block,
            &[n_arg, LaunchArg::Buf(img), LaunchArg::Buf(tmp)],
        )
        .expect("blur_row launch");
        rt.launch(
            col,
            grid,
            block,
            &[n_arg, LaunchArg::Buf(tmp), LaunchArg::Buf(out)],
        )
        .expect("blur_col launch");
        let now = rt.d2d_bytes_into(img);
        refetch.push(now - last);
        last = now;
    }
    rt.synchronize();
    let mut o = vec![0u8; bytes];
    rt.memcpy_d2h(out, &mut o).unwrap();
    ReplicaRun {
        output: o,
        refetch_per_iter: refetch,
        counters: rt.machine().counters(),
    }
}

#[derive(Serialize)]
struct SectionReport {
    n: usize,
    iters: usize,
    gpus: usize,
    first_launch_refetch_on: u64,
    steady_refetch_on: u64,
    steady_refetch_off: u64,
    replica_hits: u64,
    refetch_bytes_saved: u64,
    replica_invalidations: u64,
    hit_rate_on: f64,
    hit_rate_off: f64,
}

#[derive(Serialize)]
struct Report {
    hotspot: SectionReport,
    blur: SectionReport,
}

/// Check one workload's on/off pair and build its report section.
fn check(
    name: &str,
    gpus: usize,
    n: usize,
    iters: usize,
    on: ReplicaRun,
    off: ReplicaRun,
) -> SectionReport {
    assert_eq!(
        on.output, off.output,
        "{name}: replica coherence must not change results"
    );
    assert!(
        on.refetch_per_iter[0] > 0,
        "{name}: the first launch must fetch the misaligned upload slices"
    );
    let steady_on: u64 = on.refetch_per_iter[1..].iter().sum();
    assert_eq!(
        steady_on,
        0,
        "{name}: replicas must eliminate steady-state refetch, got {:?}",
        &on.refetch_per_iter[1..]
    );
    let off0 = off.refetch_per_iter[0];
    assert!(off0 > 0, "{name}: single-owner must fetch on launch 1 too");
    assert!(
        off.refetch_per_iter.iter().all(|&d| d == off0),
        "{name}: single-owner refetch must recur identically every launch: {:?}",
        off.refetch_per_iter
    );
    assert!(
        on.counters.replica_hits > 0 && on.counters.refetch_bytes_saved > 0,
        "{name}: replica hits must be counted"
    );
    assert_eq!(off.counters.replica_hits, 0, "{name}: off cannot hit");
    assert_eq!(off.counters.refetch_bytes_saved, 0);
    let (hr_on, hr_off) = (hit_rate(&on.counters), hit_rate(&off.counters));
    // Holder sets are hashed into the tracker signature, so the launch
    // states must still reach a periodic fixed point: only the warm-up
    // launches miss, independent of the iteration count. At full scale
    // that is the A6 ≥ 90% hit-rate bar; `--quick` truncates the run so
    // the constant warm-up is checked directly.
    assert!(
        on.counters.plan_misses <= 6,
        "{name}: replicas must not break plan-cache convergence: {} misses",
        on.counters.plan_misses
    );
    if on.counters.plan_hits + on.counters.plan_misses >= 50 {
        assert!(
            hr_on >= 0.90,
            "{name}: hit rate with replicas must stay at the A6 level: {hr_on}"
        );
    }
    println!(
        "{:>10} {:>6} {:>12} {:>14} {:>14} {:>10} {:>9.1}% {:>9.1}%",
        name,
        gpus,
        on.refetch_per_iter[0],
        steady_on / (iters as u64 - 1).max(1),
        off0,
        on.counters.replica_hits,
        hr_on * 100.0,
        hr_off * 100.0,
    );
    SectionReport {
        n,
        iters,
        gpus,
        first_launch_refetch_on: on.refetch_per_iter[0],
        steady_refetch_on: steady_on,
        steady_refetch_off: off0,
        replica_hits: on.counters.replica_hits,
        refetch_bytes_saved: on.counters.refetch_bytes_saved,
        replica_invalidations: on.counters.replica_invalidations,
        hit_rate_on: hr_on,
        hit_rate_off: hr_off,
    }
}

fn main() {
    let args = BenchArgs::parse();
    let (hs_iters, bl_iters) = if args.quick { (20, 5) } else { (100, 30) };
    // Both side lengths make the element-linear upload slices misalign
    // with the block-granular row partitions (4- and 3-way): without the
    // misalignment the pointwise `power`/`img` reads would be partition-
    // local from the start and there would be nothing to re-fetch.
    let (hs_n, bl_n) = (260usize, 200usize);

    println!("Ablation A8: replica-aware coherence (per-launch refetch into the read-only array)");
    println!();
    println!(
        "{:>10} {:>6} {:>12} {:>14} {:>14} {:>10} {:>10} {:>10}",
        "workload",
        "gpus",
        "launch1 [B]",
        "steady on [B]",
        "steady off [B]",
        "hits",
        "hit% on",
        "hit% off"
    );

    let hs_on = run_hotspot(true, hs_n, hs_iters);
    let hs_off = run_hotspot(false, hs_n, hs_iters);
    let hotspot = check("hotspot", 4, hs_n, hs_iters, hs_on, hs_off);

    let bl_on = run_blur(true, bl_n, bl_iters);
    let bl_off = run_blur(false, bl_n, bl_iters);
    let blur = check("blur", 3, bl_n, bl_iters, bl_on, bl_off);

    println!();
    println!(
        "host-uploaded read-only arrays are fetched once and then served from replicas; \
         identical outputs on both workloads."
    );

    let report = Report { hotspot, blur };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_replica.json", &json).expect("write BENCH_replica.json");
    println!();
    println!("wrote BENCH_replica.json");
}
