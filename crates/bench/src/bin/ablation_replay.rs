//! Ablation A6: launch-plan capture & replay.
//!
//! **Part A** runs the 100-iteration ping-pong Hotspot stencil on a
//! functional 4-GPU machine with `capture_plans` on and off. Replay is a
//! pure host-side shortcut: both runs must produce byte-identical output
//! (checked against the CPU reference as well) and identical simulated
//! kernel/transfer work, while the capturing run hits the plan cache on
//! ≥ 90% of launches — ping-pong trackers reach a periodic fixed point
//! after warm-up, so only the first occurrence of each (buffer order,
//! tracker signature) key walks the trackers.
//!
//! **Part B** repeats the comparison in performance mode and measures
//! what replay buys: simulated host (Pattern) time per launch drops —
//! the flat `host_per_replay` charge replaces the per-range/per-segment
//! pattern cost — and the measured wall-clock of the bench loop drops
//! with it, because a hit skips the tracker walks, enumerator queries
//! and transfer planning entirely.
//!
//! Emits `BENCH_replay.json` for the perf trajectory.

use mekong_bench::BenchArgs;
use mekong_core::prelude::*;
use mekong_gpusim::{Machine, OpCounters};
use mekong_workloads::harness::Benchmark;
use mekong_workloads::hotspot::{self, Hotspot};
use serde::Serialize;
use std::time::Instant;

/// One functional run: output bytes + counters + hit rate.
struct FuncRun {
    output: Vec<f32>,
    counters: OpCounters,
}

fn run_functional(capture: bool, n: usize, iters: usize) -> FuncRun {
    let program = compile_source(hotspot::SOURCE).expect("hotspot compiles");
    let ck = program.kernel("hotspot").unwrap();
    let (grid, block) = hotspot::geometry(n);
    let bytes = n * n * 4;

    let mut rt = MgpuRuntime::new(Machine::new(MachineSpec::kepler_system(4), true));
    rt.set_config(RuntimeConfig {
        capture_plans: capture,
        ..RuntimeConfig::beta()
    });
    let a = rt.malloc(bytes, 4).unwrap();
    let b = rt.malloc(bytes, 4).unwrap();
    let p = rt.malloc(bytes, 4).unwrap();
    let temp: Vec<u8> = (0..n * n)
        .flat_map(|i| (((i * 31) % 173) as f32 * 0.1).to_le_bytes())
        .collect();
    let power: Vec<u8> = (0..n * n)
        .flat_map(|i| (((i * 17) % 97) as f32 * 0.01).to_le_bytes())
        .collect();
    rt.memcpy_h2d(a, &temp).unwrap();
    rt.memcpy_h2d(b, &temp).unwrap();
    rt.memcpy_h2d(p, &power).unwrap();
    let (mut src, mut dst) = (a, b);
    for _ in 0..iters {
        rt.launch(
            ck,
            grid,
            block,
            &[
                LaunchArg::Scalar(Value::I64(n as i64)),
                LaunchArg::Scalar(Value::F32(hotspot::CAP)),
                LaunchArg::Buf(src),
                LaunchArg::Buf(p),
                LaunchArg::Buf(dst),
            ],
        )
        .expect("hotspot launch");
        std::mem::swap(&mut src, &mut dst);
    }
    rt.synchronize();
    let mut out = vec![0u8; bytes];
    rt.memcpy_d2h(src, &mut out).unwrap();
    FuncRun {
        output: out
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect(),
        counters: rt.machine().counters(),
    }
}

fn hit_rate(c: &OpCounters) -> f64 {
    let total = c.plan_hits + c.plan_misses;
    if total == 0 {
        0.0
    } else {
        c.plan_hits as f64 / total as f64
    }
}

/// Best-of-`reps` wall-clock (ms) and the outcome of one perf-mode run.
fn run_perf(
    capture: bool,
    n: usize,
    iters: usize,
    reps: usize,
) -> (f64, mekong_workloads::harness::RunOutcome) {
    let cfg = RuntimeConfig {
        capture_plans: capture,
        ..RuntimeConfig::beta()
    };
    let mut best_ms = f64::INFINITY;
    let mut outcome = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let out = Hotspot.mgpu_run_spec(MachineSpec::kepler_system(4), n, iters, cfg);
        best_ms = best_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        outcome = Some(out);
    }
    (best_ms, outcome.unwrap())
}

#[derive(Serialize)]
struct FunctionalReport {
    n: usize,
    iters: usize,
    hit_rate: f64,
    plan_hits: u64,
    plan_misses: u64,
    launches: u64,
    d2d_copies: u64,
    d2d_bytes: u64,
}

#[derive(Serialize)]
struct PerfReport {
    n: usize,
    iters: usize,
    hit_rate_on: f64,
    wall_ms_on: f64,
    wall_ms_off: f64,
    pattern_per_launch_on: f64,
    pattern_per_launch_off: f64,
    sim_elapsed_on: f64,
    sim_elapsed_off: f64,
}

#[derive(Serialize)]
struct Report {
    functional: FunctionalReport,
    perf: PerfReport,
}

fn main() {
    let args = BenchArgs::parse();

    // Part A: functional equivalence + hit rate, 100-iteration ping-pong.
    let n_func = 256usize;
    let iters_func = 100usize;
    println!("Ablation A6a: capture/replay equivalence (hotspot {n_func}x{n_func}, {iters_func} iters, 4 functional GPUs)");
    println!();
    let on = run_functional(true, n_func, iters_func);
    let off = run_functional(false, n_func, iters_func);
    let temp: Vec<f32> = (0..n_func * n_func)
        .map(|i| ((i * 31) % 173) as f32 * 0.1)
        .collect();
    let power: Vec<f32> = (0..n_func * n_func)
        .map(|i| ((i * 17) % 97) as f32 * 0.01)
        .collect();
    let want = hotspot::cpu_reference(n_func, &temp, &power, iters_func);
    assert_eq!(on.output, off.output, "replay must not change results");
    assert!(
        on.output
            .iter()
            .zip(&want)
            .all(|(g, w)| (g - w).abs() <= 1e-3 * w.abs().max(1.0)),
        "replayed run diverges from the CPU reference"
    );
    assert_eq!(on.counters.launches, off.counters.launches);
    assert_eq!(
        on.counters.d2d_copies, off.counters.d2d_copies,
        "replay must issue the same transfers"
    );
    assert_eq!(on.counters.d2d_bytes, off.counters.d2d_bytes);
    assert_eq!(off.counters.plan_hits, 0, "capture off cannot hit");
    let rate = hit_rate(&on.counters);
    println!(
        "{:>14} {:>10} {:>10} {:>10} {:>12}",
        "capture_plans", "hits", "misses", "d2d", "d2d bytes"
    );
    println!(
        "{:>14} {:>10} {:>10} {:>10} {:>12}",
        "on",
        on.counters.plan_hits,
        on.counters.plan_misses,
        on.counters.d2d_copies,
        on.counters.d2d_bytes
    );
    println!(
        "{:>14} {:>10} {:>10} {:>10} {:>12}",
        "off",
        off.counters.plan_hits,
        off.counters.plan_misses,
        off.counters.d2d_copies,
        off.counters.d2d_bytes
    );
    println!();
    println!(
        "identical outputs (and == CPU reference); hit rate {:.1}%",
        rate * 100.0
    );
    assert!(
        rate >= 0.90,
        "ping-pong steady state must hit ≥ 90%: {rate}"
    );

    // Part B: what replay buys, in simulated Pattern time and wall-clock.
    let n_perf = 2048usize;
    let iters_perf = ((300.0 * args.iter_scale.max(0.02)) as usize).max(20);
    let reps = 3;
    println!();
    println!("Ablation A6b: per-launch overhead (hotspot {n_perf}x{n_perf}, {iters_perf} iters, 4 perf GPUs, best of {reps})");
    println!();
    let (wall_on, out_on) = run_perf(true, n_perf, iters_perf, reps);
    let (wall_off, out_off) = run_perf(false, n_perf, iters_perf, reps);
    let launches = out_on.counters.launches as f64;
    let ppl_on = out_on.breakdown.pattern / launches;
    let ppl_off = out_off.breakdown.pattern / out_off.counters.launches as f64;
    println!(
        "{:>14} {:>12} {:>18} {:>12}",
        "capture_plans", "wall [ms]", "pattern/launch [s]", "hit rate"
    );
    println!(
        "{:>14} {:>12.1} {:>18.3e} {:>11.1}%",
        "on",
        wall_on,
        ppl_on,
        out_on.plan_hit_rate() * 100.0
    );
    println!(
        "{:>14} {:>12.1} {:>18.3e} {:>11.1}%",
        "off",
        wall_off,
        ppl_off,
        out_off.plan_hit_rate() * 100.0
    );
    assert_eq!(out_on.counters.launches, out_off.counters.launches);
    assert_eq!(out_on.counters.d2d_bytes, out_off.counters.d2d_bytes);
    assert!(
        ppl_on < ppl_off,
        "replay must charge strictly less Pattern time per launch: {ppl_on} vs {ppl_off}"
    );
    assert!(
        wall_on < wall_off,
        "replay must lower the measured wall-clock: {wall_on}ms vs {wall_off}ms"
    );
    println!();
    println!(
        "replay cuts simulated host overhead x{:.3} per launch and wall-clock x{:.3}.",
        ppl_on / ppl_off,
        wall_on / wall_off
    );

    let report = Report {
        functional: FunctionalReport {
            n: n_func,
            iters: iters_func,
            hit_rate: rate,
            plan_hits: on.counters.plan_hits,
            plan_misses: on.counters.plan_misses,
            launches: on.counters.launches,
            d2d_copies: on.counters.d2d_copies,
            d2d_bytes: on.counters.d2d_bytes,
        },
        perf: PerfReport {
            n: n_perf,
            iters: iters_perf,
            hit_rate_on: out_on.plan_hit_rate(),
            wall_ms_on: wall_on,
            wall_ms_off: wall_off,
            pattern_per_launch_on: ppl_on,
            pattern_per_launch_off: ppl_off,
            sim_elapsed_on: out_on.elapsed,
            sim_elapsed_off: out_off.elapsed,
        },
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_replay.json", &json).expect("write BENCH_replay.json");
    println!();
    println!("wrote BENCH_replay.json");
}
