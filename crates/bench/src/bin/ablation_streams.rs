//! Ablation A5: execution engine and transfer coalescing.
//!
//! **Part A** runs the separable blur pipeline on a functional 4-GPU
//! machine (§5, Figure 4) under three engines:
//!
//! 1. **serial** — byte effects applied on the host thread at submission
//!    (the pre-stream engine);
//! 2. **streamed** — per-device command streams drain on worker threads,
//!    so partition kernels and peer copies overlap in wall-clock time;
//! 3. **streamed + coalesced** — read ranges are merged before the
//!    tracker query and same-source transfers bridge small Uninit gaps.
//!
//! Invariants demonstrated: all three produce identical output bytes,
//! and streaming leaves the *simulated* clock and counters untouched
//! (timing is charged at enqueue). Blur's trackers are regular — one
//! maximal segment per halo — so coalescing is neutral here.
//!
//! **Part B** shows where coalescing pays: an instrumented strided
//! scatter leaves its output tracker as thousands of single-element
//! Device/Uninit segments; gathering that buffer onto one device then
//! costs one transfer latency per *element* without coalescing, and one
//! per *source device* with it.

use mekong_core::prelude::*;
use mekong_gpusim::{Machine, OpCounters};
use mekong_kernel::builder::*;
use mekong_kernel::Kernel;
use mekong_workloads::blur::{geometry, SOURCE};
use std::time::Instant;

struct Run {
    label: &'static str,
    wall_ms: f64,
    elapsed: f64,
    counters: OpCounters,
    output: Vec<u8>,
}

fn run_blur(label: &'static str, streamed: bool, coalesce: bool) -> Run {
    let n = 512usize;
    let iters = 3;
    let program = compile_source(SOURCE).expect("blur compiles");
    let row = program.kernel("blur_row").unwrap();
    let col = program.kernel("blur_col").unwrap();
    let (grid, block) = geometry(n);
    let bytes = n * n * 4;

    let mut machine = Machine::new(MachineSpec::kepler_system(4), true);
    machine.set_streamed(streamed);
    let mut rt = MgpuRuntime::new(machine);
    rt.set_config(RuntimeConfig {
        coalesce_transfers: coalesce,
        ..RuntimeConfig::alpha()
    });

    let a = rt.malloc(bytes, 4).unwrap();
    let tmp = rt.malloc(bytes, 4).unwrap();
    let img: Vec<u8> = (0..n * n)
        .flat_map(|i| (((i * 41) % 211) as f32).to_le_bytes())
        .collect();
    let t0 = Instant::now();
    rt.memcpy_h2d(a, &img).unwrap();
    let n_arg = LaunchArg::Scalar(Value::I64(n as i64));
    for _ in 0..iters {
        rt.launch(
            row,
            grid,
            block,
            &[n_arg, LaunchArg::Buf(a), LaunchArg::Buf(tmp)],
        )
        .expect("blur_row launch");
        rt.launch(
            col,
            grid,
            block,
            &[n_arg, LaunchArg::Buf(tmp), LaunchArg::Buf(a)],
        )
        .expect("blur_col launch");
    }
    rt.synchronize();
    let mut output = vec![0u8; bytes];
    rt.memcpy_d2h(a, &mut output).unwrap();
    Run {
        label,
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        elapsed: rt.elapsed(),
        counters: rt.machine().counters(),
        output,
    }
}

/// Strided scatter + whole-buffer gather: (d2d copies, sync seconds) of
/// the gather phase.
fn run_fragmented(coalesce: bool) -> (u64, f64) {
    let scatter = Kernel {
        name: "stride_scatter".into(),
        params: vec![
            scalar("n"),
            array_f32("idx", &[ext("n")]),
            array_f32("a", &[ext("n")]),
            array_f32("out", &[ext("n")]),
        ],
        body: vec![
            let_("i", global_x()),
            guard_return(v("i").ge(v("n") / i(2))),
            store(
                "out",
                vec![to_i64(load("idx", vec![v("i")]))],
                load("a", vec![v("i")]),
            ),
        ],
    };
    let reader = Kernel {
        name: "scale".into(),
        params: vec![
            scalar("n"),
            array_f32("x", &[ext("n")]),
            array_f32("y", &[ext("n")]),
        ],
        body: vec![
            let_("i", global_x()),
            guard_return(v("i").ge(v("n"))),
            store("y", vec![v("i")], load("x", vec![v("i")]) * f(3.0)),
        ],
    };
    let ck = CompiledKernel::compile(&scatter).unwrap();
    let rk = CompiledKernel::compile(&reader).unwrap();
    let n = 8192usize;
    let mut rt = MgpuRuntime::new(Machine::new(MachineSpec::kepler_system(4), true));
    rt.set_config(RuntimeConfig {
        coalesce_transfers: coalesce,
        ..RuntimeConfig::alpha()
    });
    let idx = rt.malloc(n * 4, 4).unwrap();
    let a = rt.malloc(n * 4, 4).unwrap();
    let out = rt.malloc(n * 4, 4).unwrap();
    let idx_host: Vec<u8> = (0..n)
        .flat_map(|i| ((2 * i) as f32).to_le_bytes())
        .collect();
    rt.memcpy_h2d(idx, &idx_host).unwrap();
    rt.memcpy_h2d(a, &vec![0u8; n * 4]).unwrap();
    rt.launch_instrumented(
        &ck,
        Dim3::new1((n / 2 / 128) as u32),
        Dim3::new1(128),
        &[
            LaunchArg::Scalar(Value::I64(n as i64)),
            LaunchArg::Buf(idx),
            LaunchArg::Buf(a),
            LaunchArg::Buf(out),
        ],
    )
    .expect("instrumented scatter");
    let fragments = rt.segment_count(out);
    let res = rt.malloc(n * 4, 4).unwrap();
    let before = rt.machine().counters().d2d_copies;
    let t0 = rt.elapsed();
    rt.launch_unpartitioned(
        &rk,
        Dim3::new1((n / 256) as u32),
        Dim3::new1(256),
        &[
            LaunchArg::Scalar(Value::I64(n as i64)),
            LaunchArg::Buf(out),
            LaunchArg::Buf(res),
        ],
        0,
    )
    .expect("gather launch");
    rt.synchronize();
    assert!(fragments > n / 2, "tracker must be fragmented: {fragments}");
    (
        rt.machine().counters().d2d_copies - before,
        rt.elapsed() - t0,
    )
}

fn main() {
    println!("Ablation A5a: execution engine (blur 512x512, 3 iters, 4 functional GPUs)");
    println!();
    let runs = [
        run_blur("serial", false, false),
        run_blur("streamed", true, false),
        run_blur("streamed+coalesced", true, true),
    ];
    println!(
        "{:>20} {:>12} {:>14} {:>10} {:>10}",
        "engine", "wall [ms]", "sim [ms]", "d2d", "launches"
    );
    for r in &runs {
        println!(
            "{:>20} {:>12.1} {:>14.3} {:>10} {:>10}",
            r.label,
            r.wall_ms,
            r.elapsed * 1e3,
            r.counters.d2d_copies,
            r.counters.launches
        );
    }
    let [serial, streamed, coalesced] = &runs;
    assert_eq!(
        serial.output, streamed.output,
        "streaming must not change results"
    );
    assert_eq!(
        serial.output, coalesced.output,
        "coalescing must not change results"
    );
    assert_eq!(
        serial.elapsed, streamed.elapsed,
        "timing is charged at enqueue: streams must not move the simulated clock"
    );
    assert_eq!(serial.counters, streamed.counters);
    assert!(
        coalesced.elapsed <= serial.elapsed,
        "coalescing can only remove latency terms: {} vs {}",
        coalesced.elapsed,
        serial.elapsed
    );
    println!();
    println!("blur's halos are already maximal segments: coalescing is neutral,");
    println!("streaming changes wall-clock scheduling only.");

    println!();
    println!("Ablation A5b: fragmented-tracker gather (strided scatter, n=8192, 4 GPUs)");
    println!();
    let (copies_plain, time_plain) = run_fragmented(false);
    let (copies_coalesced, time_coalesced) = run_fragmented(true);
    println!(
        "{:>20} {:>12} {:>14}",
        "transfers", "d2d copies", "sync [ms]"
    );
    println!(
        "{:>20} {:>12} {:>14.3}",
        "per-segment",
        copies_plain,
        time_plain * 1e3
    );
    println!(
        "{:>20} {:>12} {:>14.3}",
        "coalesced",
        copies_coalesced,
        time_coalesced * 1e3
    );
    assert!(
        copies_coalesced < copies_plain,
        "coalescing must reduce the copy count"
    );
    assert!(
        time_coalesced <= time_plain,
        "fewer latencies cannot be slower"
    );
    println!();
    println!(
        "coalescing bridges same-source copies across Uninit gaps: {} copies -> {},",
        copies_plain, copies_coalesced
    );
    println!(
        "sync time x{:.4} (one link latency per device instead of per element).",
        time_coalesced / time_plain
    );
}
