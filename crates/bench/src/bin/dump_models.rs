//! Dump the §4 application-model records of every workload to disk so
//! `mekong-check` can verify them offline — the CI partition-safety gate
//! runs `mekong-check --json` over these files.
//!
//! Usage: `dump_models [out_dir]` (default `target/models`).

use mekong_workloads::{benchmarks, extra_benchmarks};
use std::path::PathBuf;

fn main() {
    let out_dir: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/models".into())
        .into();
    std::fs::create_dir_all(&out_dir).expect("create output directory");
    for b in benchmarks().iter().chain(extra_benchmarks().iter()) {
        let prog = mekong_core::compile_source(b.source())
            .unwrap_or_else(|e| panic!("{}: compile failed: {e:?}", b.name()));
        let path = out_dir.join(format!("{}.model.json", b.name()));
        std::fs::write(&path, &prog.model_json).expect("write model file");
        println!("{}", path.display());
    }
}
