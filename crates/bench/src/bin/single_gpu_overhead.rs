//! §9.2: "The lower bound of these overheads can be measured by executing
//! the partitioned application on a single GPU: across all single-GPU
//! experiments, the slow-down has a median of 2.1%, with a 25th and 75th
//! percentile of 0.13% and 3.1%."

use mekong_bench::{median, percentile, BenchArgs};
use mekong_runtime::RuntimeConfig;
use mekong_workloads::{benchmarks, SizeClass};

fn main() {
    let args = BenchArgs::parse();
    println!("Single-GPU overhead: partitioned binary on one GPU vs reference binary.");
    println!("(iteration scale {:.3})", args.iter_scale);
    println!();
    println!(
        "{:<10} {:>10} {:>14} {:>14} {:>10}",
        "Benchmark", "size", "t_ref [s]", "t_part [s]", "slowdown"
    );
    let mut slowdowns = Vec::new();
    for b in benchmarks() {
        let iters = args.iters_for(b.as_ref());
        for class in SizeClass::ALL {
            let n = b.sizes()[class.index()];
            let t_ref = b.reference_time(n, iters);
            let t_part = b.mgpu_run(n, iters, 1, RuntimeConfig::alpha()).elapsed;
            let slow = t_part / t_ref - 1.0;
            slowdowns.push(slow);
            println!(
                "{:<10} {:>10} {:>14.4} {:>14.4} {:>9.2}%",
                b.name(),
                n,
                t_ref,
                t_part,
                100.0 * slow
            );
        }
    }
    slowdowns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!();
    println!(
        "p25 = {:.2}%, median = {:.2}%, p75 = {:.2}%",
        100.0 * percentile(&slowdowns, 25.0),
        100.0 * median(&slowdowns),
        100.0 * percentile(&slowdowns, 75.0)
    );
    println!("Paper: p25 = 0.13%, median = 2.1%, p75 = 3.1%.");
}
