//! Ablation A1: cost of the default linear H2D distribution (§8.2)
//! against an oracle with free redistribution.
//!
//! Matmul's B operand is read column-wise by every row partition but is
//! distributed linearly, so the runtime redistributes it before the
//! kernel (§9.1: "This mismatched data distribution is corrected by the
//! runtime before the kernel starts"). The β configuration (transfers
//! cost nothing) is exactly the free-redistribution oracle, so α−β
//! isolates what the distribution mismatch costs.

use mekong_bench::BenchArgs;
use mekong_runtime::RuntimeConfig;
use mekong_workloads::{Benchmark, Matmul};

fn main() {
    let args = BenchArgs::parse();
    println!("Ablation A1: Matmul — default linear distribution vs free-redistribution oracle.");
    println!();
    println!(
        "{:>5} {:>12} {:>12} {:>14} {:>18}",
        "GPUs", "alpha [s]", "oracle [s]", "redistribution", "share of runtime"
    );
    let n = Matmul.sizes()[1]; // medium
    for &g in &args.gpus {
        if g < 2 {
            continue;
        }
        let alpha = Matmul.mgpu_run(n, 1, g, RuntimeConfig::alpha()).elapsed;
        let beta = Matmul.mgpu_run(n, 1, g, RuntimeConfig::beta()).elapsed;
        println!(
            "{:>5} {:>12.4} {:>12.4} {:>13.4}s {:>17.1}%",
            g,
            alpha,
            beta,
            alpha - beta,
            100.0 * (alpha - beta) / alpha
        );
    }
    println!();
    println!("The redistribution share grows with the device count and is what caps");
    println!("Matmul's scalability (paper: max 6.3x at 14 GPUs).");
}
