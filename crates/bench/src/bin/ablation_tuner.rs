//! Ablation A7: the cost-model-driven partitioning autotuner.
//!
//! **Part A** validates the static cost model candidate by candidate:
//! for each workload every enumerated strategy is *forced* in turn and
//! the steady-state measured peer-transfer bytes per iteration (after a
//! warm-up that absorbs the initial redistribution) are compared against
//! the model's prediction. The chosen (cheapest-predicted) strategy must
//! land within 10 % of the measurement on every workload. Non-chosen
//! candidates are reported too — e.g. forced X splits refetch read-only
//! arrays every launch, which the steady-state ownership model knowingly
//! underestimates; the table quantifies that gap.
//!
//! **Part B** runs each workload end-to-end with the autotuner on
//! ([`RuntimeConfig::tuned`]) against a fixed even X split, the "always
//! split the innermost dimension" strategy a naive runtime hardcodes.
//! Tuned must never lose, and must win by > 5 % on at least one
//! workload.
//!
//! **Part C** demonstrates weighted shares: on a heterogeneous 2-GPU
//! machine (device 1 at half rate) the tuner shifts work toward the
//! faster device instead of splitting evenly.
//!
//! Emits `BENCH_tuner.json`.

use mekong_bench::BenchArgs;
use mekong_core::prelude::*;
use mekong_gpusim::DeviceSpec;
use mekong_runtime::PartitionStrategy;
use mekong_workloads::harness::RunOutcome;
use mekong_workloads::{blur, hotspot, matmul, nbody};
use serde::Serialize;

type StepFn = Box<dyn FnMut(&mut MgpuRuntime)>;

/// One launch site of a workload, as the tuner sees it.
struct Site {
    ck: CompiledKernel,
    grid: Dim3,
    block: Dim3,
    args: Vec<LaunchArg>,
}

/// A constructed workload instance: runtime with uploaded buffers, a
/// closure performing one iteration, and the launch sites for candidate
/// enumeration.
struct Prepared {
    rt: MgpuRuntime,
    step: StepFn,
    sites: Vec<Site>,
}

struct Bench {
    name: &'static str,
    /// Kernel names to pin when forcing a strategy.
    kernels: &'static [&'static str],
    n_full: usize,
    n_quick: usize,
    /// Iterations to absorb the initial redistribution.
    warmup: usize,
    measure_full: usize,
    measure_quick: usize,
    make: fn(MachineSpec, RuntimeConfig, usize) -> Prepared,
}

fn make_hotspot(spec: MachineSpec, cfg: RuntimeConfig, n: usize) -> Prepared {
    let program = compile_source(hotspot::SOURCE).expect("hotspot compiles");
    let ck = program.kernel("hotspot").unwrap().clone();
    let (grid, block) = hotspot::geometry(n);
    let bytes = n * n * 4;
    let mut rt = MgpuRuntime::new(Machine::new(spec, false));
    rt.set_config(cfg);
    let a = rt.malloc(bytes, 4).unwrap();
    let b = rt.malloc(bytes, 4).unwrap();
    let p = rt.malloc(bytes, 4).unwrap();
    for buf in [a, b, p] {
        rt.memcpy_h2d_sim(buf).unwrap();
    }
    let args = move |src, dst| {
        vec![
            LaunchArg::Scalar(Value::I64(n as i64)),
            LaunchArg::Scalar(Value::F32(hotspot::CAP)),
            LaunchArg::Buf(src),
            LaunchArg::Buf(p),
            LaunchArg::Buf(dst),
        ]
    };
    let sites = vec![Site {
        ck: ck.clone(),
        grid,
        block,
        args: args(a, b),
    }];
    let (mut src, mut dst) = (a, b);
    let step: StepFn = Box::new(move |rt| {
        rt.launch(&ck, grid, block, &args(src, dst))
            .expect("hotspot launch");
        std::mem::swap(&mut src, &mut dst);
    });
    Prepared { rt, step, sites }
}

fn make_blur(spec: MachineSpec, cfg: RuntimeConfig, n: usize) -> Prepared {
    let program = compile_source(blur::SOURCE).expect("blur compiles");
    let row = program.kernel("blur_row").unwrap().clone();
    let col = program.kernel("blur_col").unwrap().clone();
    let (grid, block) = blur::geometry(n);
    let bytes = n * n * 4;
    let mut rt = MgpuRuntime::new(Machine::new(spec, false));
    rt.set_config(cfg);
    let a = rt.malloc(bytes, 4).unwrap();
    let tmp = rt.malloc(bytes, 4).unwrap();
    rt.memcpy_h2d_sim(a).unwrap();
    let n_arg = LaunchArg::Scalar(Value::I64(n as i64));
    let sites = vec![
        Site {
            ck: row.clone(),
            grid,
            block,
            args: vec![n_arg, LaunchArg::Buf(a), LaunchArg::Buf(tmp)],
        },
        Site {
            ck: col.clone(),
            grid,
            block,
            args: vec![n_arg, LaunchArg::Buf(tmp), LaunchArg::Buf(a)],
        },
    ];
    let step: StepFn = Box::new(move |rt| {
        rt.launch(
            &row,
            grid,
            block,
            &[n_arg, LaunchArg::Buf(a), LaunchArg::Buf(tmp)],
        )
        .expect("blur_row launch");
        rt.launch(
            &col,
            grid,
            block,
            &[n_arg, LaunchArg::Buf(tmp), LaunchArg::Buf(a)],
        )
        .expect("blur_col launch");
    });
    Prepared { rt, step, sites }
}

fn make_matmul(spec: MachineSpec, cfg: RuntimeConfig, n: usize) -> Prepared {
    let program = compile_source(matmul::SOURCE).expect("matmul compiles");
    let ck = program.kernel("matmul").unwrap().clone();
    let (grid, block) = matmul::geometry(n);
    let bytes = n * n * 4;
    let mut rt = MgpuRuntime::new(Machine::new(spec, false));
    rt.set_config(cfg);
    let a = rt.malloc(bytes, 4).unwrap();
    let b = rt.malloc(bytes, 4).unwrap();
    let c = rt.malloc(bytes, 4).unwrap();
    rt.memcpy_h2d_sim(a).unwrap();
    rt.memcpy_h2d_sim(b).unwrap();
    let args = vec![
        LaunchArg::Scalar(Value::I64(n as i64)),
        LaunchArg::Buf(a),
        LaunchArg::Buf(b),
        LaunchArg::Buf(c),
    ];
    let sites = vec![Site {
        ck: ck.clone(),
        grid,
        block,
        args: args.clone(),
    }];
    let step: StepFn = Box::new(move |rt| {
        rt.launch(&ck, grid, block, &args).expect("matmul launch");
    });
    Prepared { rt, step, sites }
}

fn make_nbody(spec: MachineSpec, cfg: RuntimeConfig, n: usize) -> Prepared {
    let program = compile_source(nbody::SOURCE).expect("nbody compiles");
    let ck = program.kernel("nbody").unwrap().clone();
    let (grid, block) = nbody::geometry(n);
    let bytes = n * 4 * 4;
    let mut rt = MgpuRuntime::new(Machine::new(spec, false));
    rt.set_config(cfg);
    let a = rt.malloc(bytes, 4).unwrap();
    let b = rt.malloc(bytes, 4).unwrap();
    let v = rt.malloc(bytes, 4).unwrap();
    rt.memcpy_h2d_sim(a).unwrap();
    rt.memcpy_h2d_sim(v).unwrap();
    let args = move |src, dst| {
        vec![
            LaunchArg::Scalar(Value::I64(n as i64)),
            LaunchArg::Scalar(Value::F32(nbody::DT)),
            LaunchArg::Scalar(Value::F32(nbody::EPS)),
            LaunchArg::Buf(src),
            LaunchArg::Buf(v),
            LaunchArg::Buf(dst),
        ]
    };
    let sites = vec![Site {
        ck: ck.clone(),
        grid,
        block,
        args: args(a, b),
    }];
    let (mut src, mut dst) = (a, b);
    let step: StepFn = Box::new(move |rt| {
        rt.launch(&ck, grid, block, &args(src, dst))
            .expect("nbody launch");
        std::mem::swap(&mut src, &mut dst);
    });
    Prepared { rt, step, sites }
}

const BENCHES: &[Bench] = &[
    Bench {
        name: "blur",
        kernels: &["blur_row", "blur_col"],
        n_full: 2048,
        n_quick: 512,
        warmup: 3,
        measure_full: 12,
        measure_quick: 4,
        make: make_blur,
    },
    Bench {
        name: "hotspot",
        kernels: &["hotspot"],
        n_full: 2048,
        n_quick: 1024,
        warmup: 3,
        measure_full: 12,
        measure_quick: 4,
        make: make_hotspot,
    },
    Bench {
        name: "matmul",
        kernels: &["matmul"],
        n_full: 1024,
        n_quick: 256,
        warmup: 0,
        measure_full: 1,
        measure_quick: 1,
        make: make_matmul,
    },
    Bench {
        name: "nbody",
        kernels: &["nbody"],
        n_full: 65_536,
        n_quick: 8_192,
        warmup: 2,
        measure_full: 8,
        measure_quick: 3,
        make: make_nbody,
    },
];

#[derive(Serialize)]
struct CandidateRow {
    strategy: String,
    predicted_bytes_per_iter: u64,
    measured_bytes_per_iter: u64,
    predicted_time: f64,
}

#[derive(Serialize)]
struct WorkloadReport {
    name: String,
    n: usize,
    measured_iters: usize,
    candidates: Vec<CandidateRow>,
    chosen: String,
    prediction_error: f64,
    tuned_strategies: Vec<String>,
    tuned_elapsed: f64,
    fixed_x_elapsed: f64,
    improvement: f64,
}

#[derive(Serialize)]
struct HetReport {
    machine: String,
    n: usize,
    strategy: String,
    weighted_elapsed: f64,
    even_elapsed: f64,
    improvement: f64,
}

#[derive(Serialize)]
struct Report {
    gpus: usize,
    quick: bool,
    workloads: Vec<WorkloadReport>,
    heterogeneous: HetReport,
}

/// Run `iters` iterations, then return `(outcome, per-iteration d2d
/// bytes over the last `iters - warmup` iterations)`.
fn run_iters(prep: Prepared, warmup: usize, measure: usize) -> (RunOutcome, Vec<String>, u64) {
    let Prepared {
        mut rt, mut step, ..
    } = prep;
    for _ in 0..warmup {
        step(&mut rt);
    }
    let before = rt.machine().counters().d2d_bytes;
    for _ in 0..measure {
        step(&mut rt);
    }
    rt.synchronize();
    let moved = rt.machine().counters().d2d_bytes - before;
    let strategies = rt
        .tuner_report()
        .iter()
        .map(|r| r.strategy.clone())
        .collect();
    (
        RunOutcome::from_runtime(&rt),
        strategies,
        moved / measure.max(1) as u64,
    )
}

fn main() {
    let args = BenchArgs::parse();
    let gpus = 4usize;
    let spec = || MachineSpec::kepler_system(gpus);
    let cfg_fixed = RuntimeConfig {
        capture_plans: true,
        ..RuntimeConfig::alpha()
    };

    println!("Ablation A7: cost-model-driven partitioning autotuner ({gpus} perf GPUs)");
    let mut workloads = Vec::new();
    let mut best_improvement = 0.0f64;
    for bench in BENCHES {
        let n = if args.quick {
            bench.n_quick
        } else {
            bench.n_full
        };
        let measure = if args.quick {
            bench.measure_quick
        } else {
            bench.measure_full
        };

        // Model predictions per candidate (summed over launch sites for
        // multi-kernel pipelines), queried after the same warm-up the
        // measurement runs get: ping-pong arrays then carry the
        // kernel-written provenance that selects steady-state
        // `SelfWrites` ownership, while read-only uploads keep their
        // tracker layout — exactly the state the decision is about.
        let Prepared {
            mut rt,
            mut step,
            sites,
        } = (bench.make)(spec(), cfg_fixed, n);
        for _ in 0..bench.warmup {
            step(&mut rt);
        }
        rt.synchronize();
        let mut per_strategy: Vec<(PartitionStrategy, u64, f64)> = Vec::new();
        for site in &sites {
            let cands = rt
                .tuner_candidates(&site.ck, site.grid, site.block, &site.args)
                .expect("candidate enumeration");
            for c in cands {
                match per_strategy.iter_mut().find(|(s, _, _)| *s == c.strategy) {
                    Some(e) => {
                        e.1 += c.predict.transfer_bytes;
                        e.2 += c.predict.total_time();
                    }
                    None => per_strategy.push((
                        c.strategy,
                        c.predict.transfer_bytes,
                        c.predict.total_time(),
                    )),
                }
            }
        }
        drop(rt);

        // Part A: force each candidate, measure steady-state traffic.
        println!();
        println!("{} (n = {n}, {measure} measured iterations)", bench.name);
        println!(
            "{:>10} {:>18} {:>18} {:>14}",
            "strategy", "predicted [B/it]", "measured [B/it]", "pred time [ms]"
        );
        let mut rows = Vec::new();
        for (strategy, pred_bytes, pred_time) in &per_strategy {
            let mut p = (bench.make)(spec(), cfg_fixed, n);
            for k in bench.kernels {
                p.rt.force_strategy(k, strategy.clone());
            }
            let (_, _, measured) = run_iters(p, bench.warmup, measure);
            println!(
                "{:>10} {:>18} {:>18} {:>14.3}",
                strategy.describe(),
                pred_bytes,
                measured,
                pred_time * 1e3
            );
            rows.push(CandidateRow {
                strategy: strategy.describe(),
                predicted_bytes_per_iter: *pred_bytes,
                measured_bytes_per_iter: measured,
                predicted_time: *pred_time,
            });
        }
        let chosen_idx = per_strategy
            .iter()
            .enumerate()
            .min_by(|a, b| a.1 .2.total_cmp(&b.1 .2))
            .map(|(i, _)| i)
            .unwrap();
        let chosen = rows[chosen_idx].strategy.clone();
        let (pred, meas) = (
            rows[chosen_idx].predicted_bytes_per_iter,
            rows[chosen_idx].measured_bytes_per_iter,
        );
        let err = (pred as f64 - meas as f64).abs() / (meas as f64).max(1.0);
        println!("chosen {chosen}: prediction off by {:.1}%", err * 100.0);
        assert!(
            err <= 0.10,
            "{}: chosen strategy {chosen} predicted {pred} B/it but measured {meas} B/it",
            bench.name
        );

        // Part B: autotuned end-to-end vs the fixed even X split.
        let iters = bench.warmup + measure;
        let tuned_prep = (bench.make)(spec(), RuntimeConfig::tuned(), n);
        let (tuned_out, tuned_strategies, _) = run_iters(tuned_prep, 0, iters);
        let mut fixed_prep = (bench.make)(spec(), cfg_fixed, n);
        for k in bench.kernels {
            fixed_prep
                .rt
                .force_strategy(k, PartitionStrategy::even(SplitAxis::X, gpus));
        }
        let (fixed_out, _, _) = run_iters(fixed_prep, 0, iters);
        let improvement = 1.0 - tuned_out.elapsed / fixed_out.elapsed;
        best_improvement = best_improvement.max(improvement);
        println!(
            "tuned {:?} {:.3} ms vs fixed x:{gpus} {:.3} ms ({:+.1}%)",
            tuned_strategies,
            tuned_out.elapsed * 1e3,
            fixed_out.elapsed * 1e3,
            improvement * 100.0
        );
        assert!(
            tuned_out.elapsed <= fixed_out.elapsed * 1.0001,
            "{}: tuned run slower than the fixed X split: {} vs {}",
            bench.name,
            tuned_out.elapsed,
            fixed_out.elapsed
        );

        workloads.push(WorkloadReport {
            name: bench.name.to_string(),
            n,
            measured_iters: measure,
            candidates: rows,
            chosen,
            prediction_error: err,
            tuned_strategies,
            tuned_elapsed: tuned_out.elapsed,
            fixed_x_elapsed: fixed_out.elapsed,
            improvement,
        });
    }
    assert!(
        best_improvement > 0.05,
        "tuning must beat the fixed X split by > 5% somewhere: best {:.1}%",
        best_improvement * 100.0
    );

    // Part C: heterogeneous machine — the tuner shifts work toward the
    // faster device via proportional shares.
    let base = MachineSpec::kepler_system(2);
    let slow = DeviceSpec {
        flops: base.device.flops / 2.0,
        int_ops: base.device.int_ops / 2.0,
        mem_bw: base.device.mem_bw / 2.0,
        ..base.device.clone()
    };
    let het = base.with_device_override(1, slow);
    // N-Body: every partition reads all positions, so the transfer bill is
    // the same for every share split and the compute-balanced weighted
    // split wins outright — the cleanest heterogeneity demonstration.
    let n_het = if args.quick { 8192 } else { 65536 };
    let iters_het = if args.quick { 8 } else { 16 };
    let (tuned_out, tuned_strategies, _) = run_iters(
        make_nbody(het.clone(), RuntimeConfig::tuned(), n_het),
        0,
        iters_het,
    );
    let mut even_prep = make_nbody(het.clone(), cfg_fixed, n_het);
    even_prep
        .rt
        .force_strategy("nbody", PartitionStrategy::even(SplitAxis::X, 2));
    let (even_out, _, _) = run_iters(even_prep, 0, iters_het);
    let het_strategy = tuned_strategies.first().cloned().unwrap_or_default();
    let het_improvement = 1.0 - tuned_out.elapsed / even_out.elapsed;
    println!();
    println!(
        "heterogeneous 2-GPU (device 1 half rate), nbody n = {n_het}: tuned {} \
         {:.3} ms vs even x:2 {:.3} ms ({:+.1}%)",
        het_strategy,
        tuned_out.elapsed * 1e3,
        even_out.elapsed * 1e3,
        het_improvement * 100.0
    );
    assert!(
        het_strategy.ends_with(":w"),
        "expected a weighted split on the heterogeneous machine, got {het_strategy}"
    );
    assert!(
        tuned_out.elapsed <= even_out.elapsed * 1.0001,
        "weighted split must not lose to the even split: {} vs {}",
        tuned_out.elapsed,
        even_out.elapsed
    );

    let report = Report {
        gpus,
        quick: args.quick,
        workloads,
        heterogeneous: HetReport {
            machine: "2x Kepler, device 1 at half rate".to_string(),
            n: n_het,
            strategy: het_strategy,
            weighted_elapsed: tuned_out.elapsed,
            even_elapsed: even_out.elapsed,
            improvement: het_improvement,
        },
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_tuner.json", &json).expect("write BENCH_tuner.json");
    println!();
    println!("wrote BENCH_tuner.json");
}
