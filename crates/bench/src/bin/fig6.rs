//! Figure 6: speedup of the benchmarks for up to 16 GPUs, three problem
//! sizes each, relative to the single-GPU reference binary.
//!
//! Usage: `fig6 [--quick] [--iter-scale X] [--gpus 1,2,4,...]`

use mekong_bench::{row, BenchArgs};
use mekong_workloads::{benchmarks, SizeClass};

fn main() {
    let args = BenchArgs::parse();
    println!("Figure 6: Speedup of the benchmarks for up to 16 GPUs.");
    println!(
        "(iteration scale {:.3}; speedup = t_reference / t_partitioned)",
        args.iter_scale
    );
    for b in benchmarks() {
        let iters = args.iters_for(b.as_ref());
        println!("\n== {} ({} iterations) ==", b.name(), iters);
        let mut header = vec!["GPUs".to_string()];
        header.extend(args.gpus.iter().map(|g| g.to_string()));
        println!("{}", row(&header, 8));
        for class in SizeClass::ALL {
            let n = b.sizes()[class.index()];
            let t_ref = b.reference_time(n, iters);
            let mut cells = vec![format!("{} {}", class.name(), n)];
            let mut peak = (0usize, 0.0f64);
            for &g in &args.gpus {
                let t = b
                    .mgpu_run(n, iters, g, mekong_runtime::RuntimeConfig::alpha())
                    .elapsed;
                let s = t_ref / t;
                if s > peak.1 {
                    peak = (g, s);
                }
                cells.push(format!("{s:.2}"));
            }
            println!(
                "{}   <- peak {:.2}x @ {} GPUs",
                row(&cells, 8),
                peak.1,
                peak.0
            );
        }
    }
    println!(
        "\nPaper reference points: Hotspot ~7.1x @ 14, N-Body ~12.4x @ 16, Matmul ~6.3x @ 14."
    );
}
