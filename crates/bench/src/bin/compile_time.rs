//! §3: "This repeated invocation of gpucc introduces redundant work,
//! resulting in a compile time increase from 1.9x - 2.2x for the tested
//! applications."
//!
//! We measure our two-pass pipeline against the single-pass baseline
//! (parse + validate) for each workload.

use mekong_workloads::benchmarks;

fn main() {
    println!("Compile-time overhead of the two-pass pipeline (vs single-pass baseline).");
    println!();
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12} {:>8} {:>10}",
        "Benchmark", "baseline", "pass 1", "pass 2", "total", "ratio", "vs 1-pass"
    );
    const REPS: usize = 20;
    for b in benchmarks() {
        // Warm up and take the best-of runs to de-noise.
        let mut best: Option<mekong_core::CompileStats> = None;
        for _ in 0..REPS {
            let p = mekong_core::compile_source(b.source()).expect("workload compiles");
            let better = match &best {
                Some(cur) => p.stats.total() < cur.total(),
                None => true,
            };
            if better {
                best = Some(p.stats);
            }
        }
        let s = best.unwrap();
        // The paper's ratio compares the double-gpucc pipeline against one
        // full gpucc invocation. Our closest equivalent of "one full
        // compile" is pass 2 (parse + partition + codegen), so
        // total/pass2 is the apples-to-apples number.
        let vs_one_pass = s.total().as_secs_f64() / s.pass2.as_secs_f64();
        println!(
            "{:<10} {:>10.1}us {:>10.1}us {:>10.1}us {:>10.1}us {:>7.2}x {:>9.2}x",
            b.name(),
            s.single_pass_baseline.as_secs_f64() * 1e6,
            s.pass1.as_secs_f64() * 1e6,
            s.pass2.as_secs_f64() * 1e6,
            s.total().as_secs_f64() * 1e6,
            s.overhead_ratio(),
            vs_one_pass,
        );
    }
    println!();
    println!("Paper: 1.9x - 2.2x over one full gpucc invocation. Our `vs 1-pass` column");
    println!("is the comparable ratio (total pipeline over one full pass); the `ratio`");
    println!("column uses a parse-only baseline and is expected to run much higher.");
}
