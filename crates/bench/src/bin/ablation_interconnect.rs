//! Ablation A4: interconnect sensitivity.
//!
//! The paper's §1 motivates automatic partitioning with the expectation
//! that GPU systems become NUMA ("multi-chip modules, hierarchical
//! memory systems"). This ablation reruns the medium-size benchmarks on
//! the same device silicon behind two interconnects:
//!
//! * **PCIe tree** (the paper's testbed): host-staged peer copies that
//!   serialize on one staging engine, 15 GB/s effective,
//! * **NVLink-class**: direct peer links, pairwise-overlapping transfers,
//!   40 GB/s per link.
//!
//! If the scaling limits of Figure 6 are the interconnect (not the
//! partitioning approach), the NVLink rows should push the saturation
//! points out — which is exactly what happens.

use mekong_bench::BenchArgs;
use mekong_gpusim::MachineSpec;
use mekong_runtime::RuntimeConfig;
use mekong_workloads::benchmarks;

fn main() {
    let args = BenchArgs::parse();
    println!("Ablation A4: PCIe-tree vs NVLink-class interconnect (medium problems).");
    println!(
        "(speedups over the same single-GPU reference; iteration scale {:.3})",
        args.iter_scale
    );
    for b in benchmarks() {
        let n = b.sizes()[1];
        let iters = args.iters_for(b.as_ref());
        let t_ref = b.reference_time(n, iters);
        println!("\n== {} (n = {n}) ==", b.name());
        println!(
            "{:>12} {}",
            "GPUs",
            args.gpus
                .iter()
                .map(|g| format!("{g:>7}"))
                .collect::<String>()
        );
        for (label, mk) in [
            (
                "PCIe tree",
                MachineSpec::kepler_system as fn(usize) -> MachineSpec,
            ),
            (
                "NVLink",
                MachineSpec::nvlink_system as fn(usize) -> MachineSpec,
            ),
        ] {
            let mut line = format!("{label:>12}");
            for &g in &args.gpus {
                let t = b
                    .mgpu_run_spec(mk(g), n, iters, RuntimeConfig::alpha())
                    .elapsed;
                line.push_str(&format!("{:>7.2}", t_ref / t));
            }
            println!("{line}");
        }
    }
    println!("\nSame silicon, same toolchain — only the interconnect changes. The gap");
    println!("quantifies how much of Figure 6's saturation is the PCIe-era fabric.");
}
