//! Figure 7: breakdown of the execution time of transformed applications
//! ("medium" problems), measured exactly as the paper does (§9.2):
//!
//! * α: regular execution,
//! * β: disabled transfers, dependency resolution still performed,
//! * γ: disabled dependency resolution (which also disables transfers),
//!
//! giving `T_app = γ/α`, `T_transfers = (α−β)/α`, `T_patterns = (β−γ)/α`.

use mekong_bench::BenchArgs;
use mekong_runtime::RuntimeConfig;
use mekong_workloads::benchmarks;

fn main() {
    let args = BenchArgs::parse();
    println!("Figure 7: Breakdown of the execution time of transformed applications.");
    println!(
        "(medium problem size; iteration scale {:.3})",
        args.iter_scale
    );
    println!();
    for b in benchmarks() {
        let n = b.sizes()[1]; // medium
        let iters = args.iters_for(b.as_ref());
        println!("== {} (n = {n}, {iters} iterations) ==", b.name());
        println!(
            "{:>5} {:>12} {:>12} {:>12} {:>12}",
            "GPUs", "alpha [s]", "Application", "Transfers", "Patterns"
        );
        for &g in &args.gpus {
            if g < 2 {
                continue;
            }
            let alpha = b.mgpu_run(n, iters, g, RuntimeConfig::alpha()).elapsed;
            let beta = b.mgpu_run(n, iters, g, RuntimeConfig::beta()).elapsed;
            let gamma = b.mgpu_run(n, iters, g, RuntimeConfig::gamma()).elapsed;
            let t_app = gamma / alpha;
            let t_transfers = (alpha - beta) / alpha;
            let t_patterns = (beta - gamma) / alpha;
            println!(
                "{:>5} {:>12.4} {:>11.1}% {:>11.1}% {:>11.2}%",
                g,
                alpha,
                100.0 * t_app,
                100.0 * t_transfers,
                100.0 * t_patterns
            );
        }
        println!();
    }
    println!("Paper: overhead grows with GPU count; transfers dominate it; non-transfer");
    println!("overheads (Patterns) stay below 6.8% across all measurements.");
}
