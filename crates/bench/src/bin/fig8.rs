//! Figure 8: overhead of the runtime system — the non-transfer overhead
//! `T_patterns = (β−γ)/α` as a fraction of total runtime, over **all**
//! benchmarks and problem sizes, summarized per GPU count (the paper
//! shows a box plot; we print the quartiles).

use mekong_bench::{median, percentile, BenchArgs};
use mekong_runtime::RuntimeConfig;
use mekong_workloads::{benchmarks, SizeClass};

fn main() {
    let args = BenchArgs::parse();
    println!("Figure 8: Overhead of the runtime system (non-transfer overhead fraction).");
    println!(
        "(all benchmarks x sizes; iteration scale {:.3})",
        args.iter_scale
    );
    println!();
    println!(
        "{:>5} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "GPUs", "min", "p25", "median", "p75", "max"
    );
    let mut all: Vec<f64> = Vec::new();
    for &g in &args.gpus {
        let mut fractions = Vec::new();
        for b in benchmarks() {
            let iters = args.iters_for(b.as_ref());
            for class in SizeClass::ALL {
                let n = b.sizes()[class.index()];
                let alpha = b.mgpu_run(n, iters, g, RuntimeConfig::alpha()).elapsed;
                let beta = b.mgpu_run(n, iters, g, RuntimeConfig::beta()).elapsed;
                let gamma = b.mgpu_run(n, iters, g, RuntimeConfig::gamma()).elapsed;
                fractions.push(((beta - gamma) / alpha).max(0.0));
            }
        }
        fractions.sort_by(|a, b| a.partial_cmp(b).unwrap());
        all.extend(&fractions);
        println!(
            "{:>5} {:>8.3}% {:>8.3}% {:>8.3}% {:>8.3}% {:>8.3}%",
            g,
            100.0 * fractions[0],
            100.0 * percentile(&fractions, 25.0),
            100.0 * median(&fractions),
            100.0 * percentile(&fractions, 75.0),
            100.0 * fractions[fractions.len() - 1],
        );
    }
    all.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!();
    println!(
        "Overall: p25 = {:.3}%, median = {:.3}%, p75 = {:.3}%",
        100.0 * percentile(&all, 25.0),
        100.0 * median(&all),
        100.0 * percentile(&all, 75.0)
    );
    println!("Paper: p25 = 0.001%, median = 0.51%, p75 = 3.5%.");
}
