//! Ablation A10: 2-D rectangular grid tilings vs 1-D slab splits.
//!
//! A slab split pays halo traffic proportional to the *full* grid edge
//! on every internal interface; a rectangular X×Y tiling pays the tile
//! *perimeter*, which is smaller — but its column faces are strided, so
//! the win only materializes on fabrics whose per-transaction latency
//! is low enough that perimeter bytes dominate transaction count. On
//! the paper's host-staged PCIe tree (15 µs per staged copy) slabs stay
//! optimal and A7 shows the tuner keeping them; this ablation runs the
//! same workloads on a hypothetical switched fabric (direct peer links,
//! 25 GB/s, 50 ns setup) where the perimeter term wins.
//!
//! **Part A** evaluates every candidate strategy *self-consistently*:
//! each candidate is forced, warmed into its steady state (so the
//! one-time redistribution is not billed to the per-iteration cost),
//! then the cost model is queried from exactly that tracker state and
//! the next iterations are measured. This is the fixed point the
//! autotuner's drift-retuning converges to. Asserted on hotspot:
//!
//! * the cheapest-predicted candidate is a 2-D tiling;
//! * its measured per-iteration D2D bytes are strictly below the best
//!   1-D slab's;
//! * its prediction lands within ±15 % of the measured bytes.
//!
//! Blur rides along unasserted: its row/col kernels each have a
//! halo-free 1-D axis, so slabs remain competitive and the table simply
//! records how close the tilings come.
//!
//! **Part B** replays the chosen tiling on a functional machine: a 2×2
//! device lattice must produce byte-identical results to a single
//! device across a multi-iteration ping-pong run.
//!
//! Emits `BENCH_tiling.json`.

use mekong_bench::BenchArgs;
use mekong_core::prelude::*;
use mekong_gpusim::LinkSpec;
use mekong_runtime::PartitionStrategy;
use mekong_workloads::{blur, hotspot};
use serde::Serialize;

/// Direct-peer switched fabric: same device silicon as the Kepler
/// testbed, but links that make strided column halos cheap.
fn switched_fabric(n: usize) -> MachineSpec {
    let mut spec = MachineSpec::kepler_system(n);
    spec.link = LinkSpec {
        bandwidth: 25.0e9,
        latency: 0.05e-6,
        host_staged: false,
    };
    spec
}

type StepFn = Box<dyn FnMut(&mut MgpuRuntime)>;

struct Site {
    ck: CompiledKernel,
    grid: Dim3,
    block: Dim3,
    args: Vec<LaunchArg>,
}

struct Prepared {
    rt: MgpuRuntime,
    step: StepFn,
    sites: Vec<Site>,
}

fn make_hotspot(spec: MachineSpec, cfg: RuntimeConfig, n: usize) -> Prepared {
    let program = compile_source(hotspot::SOURCE).expect("hotspot compiles");
    let ck = program.kernel("hotspot").unwrap().clone();
    let (grid, block) = hotspot::geometry(n);
    let bytes = n * n * 4;
    let mut rt = MgpuRuntime::new(Machine::new(spec, false));
    rt.set_config(cfg);
    let a = rt.malloc(bytes, 4).unwrap();
    let b = rt.malloc(bytes, 4).unwrap();
    let p = rt.malloc(bytes, 4).unwrap();
    for buf in [a, b, p] {
        rt.memcpy_h2d_sim(buf).unwrap();
    }
    let args = move |src, dst| {
        vec![
            LaunchArg::Scalar(Value::I64(n as i64)),
            LaunchArg::Scalar(Value::F32(hotspot::CAP)),
            LaunchArg::Buf(src),
            LaunchArg::Buf(p),
            LaunchArg::Buf(dst),
        ]
    };
    let sites = vec![Site {
        ck: ck.clone(),
        grid,
        block,
        args: args(a, b),
    }];
    let (mut src, mut dst) = (a, b);
    let step: StepFn = Box::new(move |rt| {
        rt.launch(&ck, grid, block, &args(src, dst))
            .expect("hotspot launch");
        std::mem::swap(&mut src, &mut dst);
    });
    Prepared { rt, step, sites }
}

fn make_blur(spec: MachineSpec, cfg: RuntimeConfig, n: usize) -> Prepared {
    let program = compile_source(blur::SOURCE).expect("blur compiles");
    let row = program.kernel("blur_row").unwrap().clone();
    let col = program.kernel("blur_col").unwrap().clone();
    let (grid, block) = blur::geometry(n);
    let bytes = n * n * 4;
    let mut rt = MgpuRuntime::new(Machine::new(spec, false));
    rt.set_config(cfg);
    let a = rt.malloc(bytes, 4).unwrap();
    let tmp = rt.malloc(bytes, 4).unwrap();
    rt.memcpy_h2d_sim(a).unwrap();
    let n_arg = LaunchArg::Scalar(Value::I64(n as i64));
    let sites = vec![
        Site {
            ck: row.clone(),
            grid,
            block,
            args: vec![n_arg, LaunchArg::Buf(a), LaunchArg::Buf(tmp)],
        },
        Site {
            ck: col.clone(),
            grid,
            block,
            args: vec![n_arg, LaunchArg::Buf(tmp), LaunchArg::Buf(a)],
        },
    ];
    let step: StepFn = Box::new(move |rt| {
        rt.launch(
            &row,
            grid,
            block,
            &[n_arg, LaunchArg::Buf(a), LaunchArg::Buf(tmp)],
        )
        .expect("blur_row launch");
        rt.launch(
            &col,
            grid,
            block,
            &[n_arg, LaunchArg::Buf(tmp), LaunchArg::Buf(a)],
        )
        .expect("blur_col launch");
    });
    Prepared { rt, step, sites }
}

struct Bench {
    name: &'static str,
    kernels: &'static [&'static str],
    n_full: usize,
    n_quick: usize,
    warmup: usize,
    measure_full: usize,
    measure_quick: usize,
    make: fn(MachineSpec, RuntimeConfig, usize) -> Prepared,
}

const BENCHES: &[Bench] = &[
    Bench {
        name: "hotspot",
        kernels: &["hotspot"],
        n_full: 2048,
        n_quick: 512,
        warmup: 4,
        measure_full: 12,
        measure_quick: 4,
        make: make_hotspot,
    },
    Bench {
        name: "blur",
        kernels: &["blur_row", "blur_col"],
        n_full: 2048,
        n_quick: 512,
        warmup: 4,
        measure_full: 12,
        measure_quick: 4,
        make: make_blur,
    },
];

#[derive(Serialize)]
struct CandidateRow {
    strategy: String,
    tiled: bool,
    predicted_bytes_per_iter: u64,
    measured_bytes_per_iter: u64,
    predicted_time: f64,
    elapsed_per_iter: f64,
}

#[derive(Serialize)]
struct WorkloadReport {
    name: String,
    n: usize,
    measured_iters: usize,
    candidates: Vec<CandidateRow>,
    chosen: String,
    chosen_is_tiled: bool,
    best_slab: String,
    tiled_vs_slab_bytes: f64,
    prediction_error: f64,
}

#[derive(Serialize)]
struct FunctionalReport {
    n: usize,
    iters: usize,
    strategy: String,
    identical: bool,
}

#[derive(Serialize)]
struct Report {
    gpus: usize,
    quick: bool,
    fabric_bandwidth: f64,
    fabric_latency: f64,
    fabric_host_staged: bool,
    workloads: Vec<WorkloadReport>,
    functional: FunctionalReport,
}

/// Force `strategy` on every kernel of a fresh instance, warm it into
/// steady state, query the cost model *from that state*, then measure.
/// Returns `(predicted bytes/iter, predicted time, measured bytes/iter,
/// elapsed secs/iter)`.
fn evaluate(
    bench: &Bench,
    spec: &MachineSpec,
    cfg: &RuntimeConfig,
    n: usize,
    measure: usize,
    strategy: &PartitionStrategy,
) -> (u64, f64, u64, f64) {
    let Prepared {
        mut rt,
        mut step,
        sites,
    } = (bench.make)(spec.clone(), *cfg, n);
    for k in bench.kernels {
        rt.force_strategy(k, strategy.clone());
    }
    for _ in 0..bench.warmup {
        step(&mut rt);
    }
    rt.synchronize();
    let (mut pred_bytes, mut pred_time) = (0u64, 0.0f64);
    for site in &sites {
        let cands = rt
            .tuner_candidates(&site.ck, site.grid, site.block, &site.args)
            .expect("candidate enumeration");
        let own = cands
            .iter()
            .find(|c| c.strategy == *strategy)
            .expect("forced strategy is an enumerated candidate");
        pred_bytes += own.predict.transfer_bytes;
        pred_time += own.predict.total_time();
    }
    let bytes0 = rt.machine().counters().d2d_bytes;
    let t0 = rt.elapsed();
    for _ in 0..measure {
        step(&mut rt);
    }
    rt.synchronize();
    let moved = (rt.machine().counters().d2d_bytes - bytes0) / measure.max(1) as u64;
    let per_iter = (rt.elapsed() - t0) / measure.max(1) as f64;
    (pred_bytes, pred_time, moved, per_iter)
}

/// Functional differential: hotspot on a 2×2 device lattice under the
/// chosen tiling must be byte-identical to a single device.
fn functional_differential(n: usize, iters: usize, strategy: &PartitionStrategy) -> bool {
    let run = |devices: usize, force: Option<&PartitionStrategy>| -> Vec<u8> {
        let program = compile_source(hotspot::SOURCE).expect("hotspot compiles");
        let ck = program.kernel("hotspot").unwrap().clone();
        let (grid, block) = hotspot::geometry(n);
        let bytes = n * n * 4;
        let mut rt = MgpuRuntime::new(Machine::new(switched_fabric(devices), true));
        rt.set_config(RuntimeConfig {
            capture_plans: true,
            ..RuntimeConfig::default()
        });
        let a = rt.malloc(bytes, 4).unwrap();
        let b = rt.malloc(bytes, 4).unwrap();
        let p = rt.malloc(bytes, 4).unwrap();
        let temp: Vec<u8> = (0..n * n)
            .flat_map(|i| (300.0 + (i as f32 * 0.37).sin()).to_le_bytes())
            .collect();
        let power: Vec<u8> = (0..n * n)
            .flat_map(|i| (0.1 * (i as f32 * 0.11).cos().abs()).to_le_bytes())
            .collect();
        rt.memcpy_h2d(a, &temp).unwrap();
        rt.memcpy_h2d(b, &temp).unwrap();
        rt.memcpy_h2d(p, &power).unwrap();
        if let Some(s) = force {
            rt.force_strategy("hotspot", s.clone());
        }
        let (mut src, mut dst) = (a, b);
        for _ in 0..iters {
            rt.launch(
                &ck,
                grid,
                block,
                &[
                    LaunchArg::Scalar(Value::I64(n as i64)),
                    LaunchArg::Scalar(Value::F32(hotspot::CAP)),
                    LaunchArg::Buf(src),
                    LaunchArg::Buf(p),
                    LaunchArg::Buf(dst),
                ],
            )
            .expect("hotspot launch");
            std::mem::swap(&mut src, &mut dst);
        }
        rt.synchronize();
        let mut out = vec![0u8; bytes];
        rt.memcpy_d2h(src, &mut out).unwrap();
        out
    };
    run(1, None) == run(4, Some(strategy))
}

fn main() {
    let args = BenchArgs::parse();
    let gpus = 4usize;
    let spec = switched_fabric(gpus);
    let cfg = RuntimeConfig {
        capture_plans: true,
        ..RuntimeConfig::alpha()
    };

    println!(
        "Ablation A10: rectangular tilings vs slabs ({gpus} perf GPUs, switched fabric \
         {:.0} GB/s, {:.0} ns, direct)",
        spec.link.bandwidth / 1e9,
        spec.link.latency * 1e9
    );

    let mut workloads = Vec::new();
    let mut hotspot_tiled: Option<PartitionStrategy> = None;
    for bench in BENCHES {
        let n = if args.quick {
            bench.n_quick
        } else {
            bench.n_full
        };
        let measure = if args.quick {
            bench.measure_quick
        } else {
            bench.measure_full
        };

        // The candidate set does not depend on tracker state — grab it
        // from a fresh instance.
        let fresh = (bench.make)(spec.clone(), cfg, n);
        let strategies: Vec<PartitionStrategy> = {
            let site = &fresh.sites[0];
            fresh
                .rt
                .tuner_candidates(&site.ck, site.grid, site.block, &site.args)
                .expect("candidate enumeration")
                .into_iter()
                .map(|c| c.strategy)
                .collect()
        };
        drop(fresh);

        println!();
        println!("{} (n = {n}, {measure} measured iterations)", bench.name);
        println!(
            "{:>10} {:>18} {:>18} {:>14} {:>14}",
            "strategy", "predicted [B/it]", "measured [B/it]", "pred time [ms]", "meas time [ms]"
        );
        let mut rows = Vec::new();
        for strategy in &strategies {
            let (pb, pt, mb, mt) = evaluate(bench, &spec, &cfg, n, measure, strategy);
            println!(
                "{:>10} {:>18} {:>18} {:>14.4} {:>14.4}",
                strategy.describe(),
                pb,
                mb,
                pt * 1e3,
                mt * 1e3
            );
            rows.push(CandidateRow {
                strategy: strategy.describe(),
                tiled: strategy.is_tiled(),
                predicted_bytes_per_iter: pb,
                measured_bytes_per_iter: mb,
                predicted_time: pt,
                elapsed_per_iter: mt,
            });
        }

        let chosen_idx = (0..rows.len())
            .min_by(|&a, &b| rows[a].predicted_time.total_cmp(&rows[b].predicted_time))
            .unwrap();
        let slab_idx = (0..rows.len())
            .filter(|&i| !rows[i].tiled)
            .min_by(|&a, &b| rows[a].predicted_time.total_cmp(&rows[b].predicted_time))
            .unwrap();
        let chosen = &rows[chosen_idx];
        let slab = &rows[slab_idx];
        let err = (chosen.predicted_bytes_per_iter as f64 - chosen.measured_bytes_per_iter as f64)
            .abs()
            / (chosen.measured_bytes_per_iter as f64).max(1.0);
        let bytes_ratio =
            chosen.measured_bytes_per_iter as f64 / (slab.measured_bytes_per_iter as f64).max(1.0);
        println!(
            "chosen {} (best slab {}): {:.0}% of the slab's halo bytes, prediction off by {:.1}%",
            chosen.strategy,
            slab.strategy,
            bytes_ratio * 100.0,
            err * 100.0
        );

        if bench.name == "hotspot" {
            assert!(
                chosen.tiled,
                "hotspot on the switched fabric must choose a 2-D tiling, got {}",
                chosen.strategy
            );
            assert!(
                chosen.measured_bytes_per_iter < slab.measured_bytes_per_iter,
                "tiling must move fewer halo bytes than the best slab: {} vs {}",
                chosen.measured_bytes_per_iter,
                slab.measured_bytes_per_iter
            );
            assert!(
                err <= 0.15,
                "perimeter prediction out of the ±15% band: predicted {} measured {}",
                chosen.predicted_bytes_per_iter,
                chosen.measured_bytes_per_iter
            );
            hotspot_tiled = Some(strategies[chosen_idx].clone());
        }

        workloads.push(WorkloadReport {
            name: bench.name.to_string(),
            n,
            measured_iters: measure,
            chosen: chosen.strategy.clone(),
            chosen_is_tiled: chosen.tiled,
            best_slab: slab.strategy.clone(),
            tiled_vs_slab_bytes: bytes_ratio,
            prediction_error: err,
            candidates: rows,
        });
    }

    // Part B: byte-identical functional replay under the chosen tiling.
    let tiled = hotspot_tiled.expect("hotspot ran");
    let n_fn = if args.quick { 192 } else { 384 };
    let iters_fn = if args.quick { 6 } else { 10 };
    let identical = functional_differential(n_fn, iters_fn, &tiled);
    println!();
    println!(
        "functional hotspot n = {n_fn}, {iters_fn} iters, 2x2 lattice {}: byte-identical = \
         {identical}",
        tiled.describe()
    );
    assert!(
        identical,
        "2-D tiling must be byte-identical to the single-device run"
    );

    let report = Report {
        gpus,
        quick: args.quick,
        fabric_bandwidth: spec.link.bandwidth,
        fabric_latency: spec.link.latency,
        fabric_host_staged: spec.link.host_staged,
        workloads,
        functional: FunctionalReport {
            n: n_fn,
            iters: iters_fn,
            strategy: tiled.describe(),
            identical,
        },
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_tiling.json", &json).expect("write BENCH_tiling.json");
    println!();
    println!("wrote BENCH_tiling.json");
}
