//! Ablation A3: partitioning-axis choice (§4's "suggested partitioning
//! strategy").
//!
//! Hotspot writes rows; splitting the grid's Y axis yields contiguous
//! per-partition write sets (one tracker segment each), while splitting X
//! fragments every buffer into per-row strips — more ranges, more
//! segments, more transfers. This ablation forces both and compares.

use mekong_analysis::SplitAxis;
use mekong_core::prelude::*;
use mekong_gpusim::Machine;
use mekong_workloads::hotspot;

fn run(split: SplitAxis, n: usize, iters: usize, gpus: usize) -> (f64, u64, u64) {
    let program = mekong_core::compile_source(hotspot::SOURCE).unwrap();
    let mut ck = program.kernel("hotspot").unwrap().clone();
    ck.model.partitioning = split;
    let (grid, block) = hotspot::geometry(n);
    let bytes = n * n * 4;
    let mut rt = MgpuRuntime::new(Machine::new(MachineSpec::kepler_system(gpus), false));
    let a = rt.malloc(bytes, 4).unwrap();
    let b = rt.malloc(bytes, 4).unwrap();
    let p = rt.malloc(bytes, 4).unwrap();
    for buf in [a, b, p] {
        rt.memcpy_h2d_sim(buf).unwrap();
    }
    let (mut src, mut dst) = (a, b);
    for _ in 0..iters {
        rt.launch(
            &ck,
            grid,
            block,
            &[
                LaunchArg::Scalar(Value::I64(n as i64)),
                LaunchArg::Scalar(Value::F32(hotspot::CAP)),
                LaunchArg::Buf(src),
                LaunchArg::Buf(p),
                LaunchArg::Buf(dst),
            ],
        )
        .unwrap();
        std::mem::swap(&mut src, &mut dst);
    }
    rt.synchronize();
    let segs = rt.segment_count(src) as u64;
    (rt.elapsed(), rt.machine().counters().d2d_copies, segs)
}

fn main() {
    println!("Ablation A3: Hotspot partitioned along the suggested axis (Y) vs forced X.");
    println!("(n = 2048, 30 iterations)");
    println!();
    println!(
        "{:>5} {:>14} {:>14} {:>12} {:>12} {:>10} {:>10}",
        "GPUs", "Y-split [s]", "X-split [s]", "Y copies", "X copies", "Y segs", "X segs"
    );
    for gpus in [2usize, 4, 8] {
        let (ty, cy, sy) = run(SplitAxis::Y, 2048, 30, gpus);
        let (tx, cx, sx) = run(SplitAxis::X, 2048, 30, gpus);
        println!(
            "{:>5} {:>14.4} {:>14.4} {:>12} {:>12} {:>10} {:>10}",
            gpus, ty, tx, cy, cx, sy, sx
        );
    }
    println!();
    println!("Splitting the row axis keeps one write segment per partition (paper §8.1);");
    println!("splitting X fragments the buffers and multiplies transfers and tracker work.");
}
