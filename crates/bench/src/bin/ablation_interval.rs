//! Ablation A12: interval abstract interpretation for non-affine
//! kernels.
//!
//! The polyhedral domain alone cannot model data-dependent reads —
//! histogram's `val[k]` with `k ∈ [off[b], off[b+1])` and SpMV's
//! gather `x[cols[r][j]]` — so without the interval interpreter those
//! workloads would be unpartitionable (or priced as whole-array reads).
//! With `@mekong … range` annotations the interpreter derives **bounded
//! may-read boxes**, and the runtime fetches the box instead of exact
//! ranges.
//!
//! Three claims, all load-bearing for §4 soundness:
//!
//! * **Correctness.** Histogram and SpMV partitioned across 2 and 4
//!   functional devices produce output byte-identical to the 1-device
//!   run (and to the CPU reference) — over-approximated reads never
//!   change results.
//! * **Bounded over-fetch.** `mayread_overfetch_bytes` (box bytes
//!   beyond the single-device baseline) is zero on 1 device by
//!   construction, strictly positive on multi-device runs (the seam
//!   halos), and a small fraction of `mayread_fetch_bytes` — the box is
//!   banded, not the whole array.
//! * **Writes stay exact.** A scatter kernel whose *write* index is
//!   data-dependent — even with a range annotation bounding it — is
//!   rejected at every layer: analysis verdict, `mekong-check` error
//!   diagnostic, and the runtime launch gate.
//!
//! Emits `BENCH_interval.json`.

use mekong_bench::BenchArgs;
use mekong_check::{check_kernel, codes, Severity};
use mekong_core::prelude::*;
use mekong_gpusim::{Machine, OpCounters};
use mekong_workloads::{histogram, spmv};
use serde::Serialize;

/// One functional partitioned run of an irregular workload.
struct IrregularRun {
    output: Vec<u8>,
    counters: OpCounters,
}

fn config() -> RuntimeConfig {
    RuntimeConfig {
        capture_plans: true,
        ..RuntimeConfig::beta()
    }
}

/// Histogram on `gpus` functional devices, `iters` identical launches
/// (so captured plans replay and re-note the may-read counters).
fn run_histogram(gpus: usize, nbins: usize, iters: usize) -> IrregularRun {
    let program = compile_source(histogram::SOURCE).expect("histogram compiles");
    let ck = program.kernel("histogram").unwrap();
    let (grid, block) = histogram::geometry(nbins);
    let off = histogram::offsets(nbins);
    let val = histogram::values(nbins);

    let mut rt = MgpuRuntime::new(Machine::new(MachineSpec::kepler_system(gpus), true));
    rt.set_config(config());
    let off_b = rt.malloc((nbins + 1) * 8, 8).unwrap();
    let val_b = rt.malloc(val.len() * 4, 4).unwrap();
    let hist_b = rt.malloc(nbins * 4, 4).unwrap();
    let off_h: Vec<u8> = off.iter().flat_map(|v| v.to_le_bytes()).collect();
    let val_h: Vec<u8> = val.iter().flat_map(|v| v.to_le_bytes()).collect();
    rt.memcpy_h2d(off_b, &off_h).unwrap();
    rt.memcpy_h2d(val_b, &val_h).unwrap();
    for _ in 0..iters {
        rt.launch(
            ck,
            grid,
            block,
            &[
                LaunchArg::Scalar(Value::I64(nbins as i64)),
                LaunchArg::Scalar(Value::I64(nbins as i64 + 1)),
                LaunchArg::Scalar(Value::I64(val.len() as i64)),
                LaunchArg::Buf(off_b),
                LaunchArg::Buf(val_b),
                LaunchArg::Buf(hist_b),
            ],
        )
        .expect("histogram launch");
    }
    rt.synchronize();
    let mut out = vec![0u8; nbins * 4];
    rt.memcpy_d2h(hist_b, &mut out).unwrap();
    IrregularRun {
        output: out,
        counters: rt.machine().counters(),
    }
}

/// SpMV on `gpus` functional devices.
fn run_spmv(gpus: usize, n: usize, iters: usize) -> IrregularRun {
    let program = compile_source(spmv::SOURCE).expect("spmv compiles");
    let ck = program.kernel("spmv").unwrap();
    let (grid, block) = spmv::geometry(n);
    let m = spmv::M;
    let cols = spmv::columns(n);
    let vals = spmv::matrix_values(n);
    let x = spmv::vector(n);

    let mut rt = MgpuRuntime::new(Machine::new(MachineSpec::kepler_system(gpus), true));
    rt.set_config(config());
    let cols_b = rt.malloc(n * m * 8, 8).unwrap();
    let vals_b = rt.malloc(n * m * 4, 4).unwrap();
    let x_b = rt.malloc(n * 4, 4).unwrap();
    let y_b = rt.malloc(n * 4, 4).unwrap();
    let cols_h: Vec<u8> = cols.iter().flat_map(|v| v.to_le_bytes()).collect();
    let vals_h: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
    let x_h: Vec<u8> = x.iter().flat_map(|v| v.to_le_bytes()).collect();
    rt.memcpy_h2d(cols_b, &cols_h).unwrap();
    rt.memcpy_h2d(vals_b, &vals_h).unwrap();
    rt.memcpy_h2d(x_b, &x_h).unwrap();
    for _ in 0..iters {
        rt.launch(
            ck,
            grid,
            block,
            &[
                LaunchArg::Scalar(Value::I64(n as i64)),
                LaunchArg::Scalar(Value::I64(m as i64)),
                LaunchArg::Scalar(Value::I64(spmv::W)),
                LaunchArg::Buf(cols_b),
                LaunchArg::Buf(vals_b),
                LaunchArg::Buf(x_b),
                LaunchArg::Buf(y_b),
            ],
        )
        .expect("spmv launch");
    }
    rt.synchronize();
    let mut out = vec![0u8; n * 4];
    rt.memcpy_d2h(y_b, &mut out).unwrap();
    IrregularRun {
        output: out,
        counters: rt.machine().counters(),
    }
}

#[derive(Serialize)]
struct GpuPoint {
    gpus: usize,
    mayread_fetch_bytes: u64,
    mayread_overfetch_bytes: u64,
    /// Over-fetch as a fraction of the box fetch.
    overfetch_ratio: f64,
}

#[derive(Serialize)]
struct SectionReport {
    n: usize,
    iters: usize,
    byte_identical: bool,
    matches_cpu_reference: bool,
    points: Vec<GpuPoint>,
}

#[derive(Serialize)]
struct Report {
    histogram: SectionReport,
    spmv: SectionReport,
    inexact_write_rejected: bool,
}

/// Run one workload over the device counts and check the A12 claims.
fn section(
    name: &str,
    n: usize,
    iters: usize,
    reference: &[u8],
    run: impl Fn(usize) -> IrregularRun,
) -> SectionReport {
    let runs: Vec<(usize, IrregularRun)> = [1usize, 2, 4].iter().map(|&g| (g, run(g))).collect();
    let base = &runs[0].1;
    assert_eq!(
        base.output, reference,
        "{name}: 1-device run must match the CPU reference"
    );
    assert_eq!(
        base.counters.mayread_overfetch_bytes, 0,
        "{name}: one device fetches exactly the whole-grid box"
    );
    let mut points = Vec::new();
    for (gpus, r) in &runs {
        assert_eq!(
            r.output, base.output,
            "{name}: {gpus}-device output must be byte-identical to 1 device"
        );
        assert!(
            r.counters.mayread_fetch_bytes > 0,
            "{name}: boxed reads must be fetched through the may-read path"
        );
        if *gpus > 1 {
            assert!(
                r.counters.mayread_overfetch_bytes > 0,
                "{name}: partition seams must over-fetch on {gpus} devices"
            );
            assert!(
                r.counters.mayread_overfetch_bytes * 4 < r.counters.mayread_fetch_bytes,
                "{name}: over-fetch must stay bounded: {} of {}",
                r.counters.mayread_overfetch_bytes,
                r.counters.mayread_fetch_bytes
            );
        }
        let ratio =
            r.counters.mayread_overfetch_bytes as f64 / r.counters.mayread_fetch_bytes as f64;
        println!(
            "{:>10} {:>6} {:>16} {:>16} {:>9.2}%",
            name,
            gpus,
            r.counters.mayread_fetch_bytes,
            r.counters.mayread_overfetch_bytes,
            ratio * 100.0,
        );
        points.push(GpuPoint {
            gpus: *gpus,
            mayread_fetch_bytes: r.counters.mayread_fetch_bytes,
            mayread_overfetch_bytes: r.counters.mayread_overfetch_bytes,
            overfetch_ratio: ratio,
        });
    }
    SectionReport {
        n,
        iters,
        byte_identical: true,
        matches_cpu_reference: true,
        points,
    }
}

/// A data-dependent *write* must be rejected even when annotated: range
/// annotations widen reads soundly, but §4 requires writes exact.
fn check_scatter_rejected() -> bool {
    const SCATTER: &str = r#"
// @mekong scatter range idx : $0 - 1 .. $0 + 1
__global__ void scatter(int n, int idx[n], float out[n]) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= n) return;
    int j = idx[i];
    out[j] = 1.0f;
}

int main() {
    scatter<<<grid, block>>>(n, idx, out);
    return 0;
}
"#;
    let program = compile_source(SCATTER).expect("scatter compiles (analysis may still reject)");
    let ck = program.kernel("scatter").unwrap();
    assert!(
        !ck.is_partitionable(),
        "scatter verdict must reject: {:?}",
        ck.model.verdict
    );
    let kc = check_kernel(&ck.model).expect("check runs");
    assert!(
        kc.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error && d.code == codes::INEXACT_WRITE),
        "mekong-check must flag the inexact write: {:?}",
        kc.diagnostics
    );
    // And the runtime launch gate refuses it on a multi-device machine.
    let n = 64usize;
    let mut rt = MgpuRuntime::new(Machine::new(MachineSpec::kepler_system(2), true));
    let idx = rt.malloc(n * 8, 8).unwrap();
    let out = rt.malloc(n * 4, 4).unwrap();
    let idx_h: Vec<u8> = (0..n as i64).flat_map(|v| v.to_le_bytes()).collect();
    rt.memcpy_h2d(idx, &idx_h).unwrap();
    let res = rt.launch(
        ck,
        Dim3::new1(n as u32 / 8),
        Dim3::new1(8),
        &[
            LaunchArg::Scalar(Value::I64(n as i64)),
            LaunchArg::Buf(idx),
            LaunchArg::Buf(out),
        ],
    );
    assert!(res.is_err(), "launch gate must refuse the inexact write");
    true
}

fn main() {
    let args = BenchArgs::parse();
    let (hist_nbins, spmv_n, iters) = if args.quick {
        (2_048usize, 8_192usize, 3usize)
    } else {
        (16_384, 65_536, 10)
    };

    println!("Ablation A12: interval abstract interpretation (bounded may-read boxes)");
    println!();
    println!(
        "{:>10} {:>6} {:>16} {:>16} {:>10}",
        "workload", "gpus", "fetch [B]", "over-fetch [B]", "over%"
    );

    let off = histogram::offsets(hist_nbins);
    let val = histogram::values(hist_nbins);
    let hist_ref: Vec<u8> = histogram::cpu_reference(hist_nbins, &off, &val)
        .iter()
        .flat_map(|v| v.to_le_bytes())
        .collect();
    let hist = section("histogram", hist_nbins, iters, &hist_ref, |g| {
        run_histogram(g, hist_nbins, iters)
    });

    let cols = spmv::columns(spmv_n);
    let vals = spmv::matrix_values(spmv_n);
    let x = spmv::vector(spmv_n);
    let spmv_ref: Vec<u8> = spmv::cpu_reference(spmv_n, &cols, &vals, &x)
        .iter()
        .flat_map(|v| v.to_le_bytes())
        .collect();
    let spmv_sec = section("spmv", spmv_n, iters, &spmv_ref, |g| {
        run_spmv(g, spmv_n, iters)
    });

    let rejected = check_scatter_rejected();
    println!();
    println!(
        "irregular workloads partition byte-identically with bounded over-fetch; \
         annotated *writes* remain rejected at analysis, check, and launch."
    );

    let report = Report {
        histogram: hist,
        spmv: spmv_sec,
        inexact_write_rejected: rejected,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_interval.json", &json).expect("write BENCH_interval.json");
    println!();
    println!("wrote BENCH_interval.json");
}
