//! Table 1: configurations of the benchmark applications.

use mekong_workloads::benchmarks;

fn main() {
    println!("Table 1: Configurations of the benchmark applications.");
    println!();
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>11}",
        "Benchmark", "Small", "Medium", "Large", "Iterations"
    );
    for b in benchmarks() {
        let s = b.sizes();
        let iters = if b.iterations() > 1 {
            format!("{}", b.iterations())
        } else {
            "N/A".to_string()
        };
        println!(
            "{:<10} {:>10} {:>10} {:>10} {:>11}",
            b.name(),
            s[0],
            s[1],
            s[2],
            iters
        );
    }
}
