//! Ablation A11: the multi-tenant serving runtime.
//!
//! Three pairs of tenants — hotspot, blur, n-body, identical geometry
//! within each pair but different input data — run interleaved through
//! one [`mekong_serve::FleetServer`] on 4 functional devices, with the
//! tuned runtime configuration (autotuner, plan capture, replica
//! coherence, launch-ahead) and the shared sharded plan cache. Checked:
//!
//! 1. **Cross-tenant sharing** — the second tenant of each pair replays
//!    plans its partner captured (`plan_shared_hits > 0` fleet-wide);
//!    plan keys are data-independent, so differing inputs still share.
//! 2. **Isolation** — every tenant's read-backs are byte-identical to
//!    the same workload run alone on an idle fleet (sequential
//!    baseline).
//! 3. **Warm start** — the shared cache is snapshotted to JSON, loaded
//!    into a fresh server, and the whole tenant mix re-runs with *zero*
//!    plan captures (`plan_misses == 0`) and identical outputs — the
//!    CI determinism gate.
//!
//! Emits `BENCH_serve.json`.

use mekong_bench::BenchArgs;
use mekong_core::prelude::*;
use mekong_serve::{FleetConfig, FleetServer, Probe, ProbeArg, TenantId, Ticket};
use mekong_workloads::{blur, hotspot, nbody};
use serde::Serialize;

/// One tenant's workload description.
#[derive(Clone)]
enum Workload {
    Hotspot { n: usize, iters: usize, seed: u32 },
    Blur { n: usize, iters: usize, seed: u32 },
    NBody { n: usize, iters: usize, seed: u32 },
}

impl Workload {
    fn label(&self) -> &'static str {
        match self {
            Workload::Hotspot { .. } => "hotspot",
            Workload::Blur { .. } => "blur",
            Workload::NBody { .. } => "nbody",
        }
    }
}

fn pattern(len: usize, seed: u32, modulus: u32, scale: f32) -> Vec<u8> {
    (0..len)
        .flat_map(|i| {
            (((i as u32).wrapping_mul(31).wrapping_add(seed) % modulus) as f32 * scale)
                .to_le_bytes()
        })
        .collect()
}

/// Register the tenant and queue its whole run; returns the read-back
/// tickets (final result buffers).
fn submit(server: &mut FleetServer, name: &str, w: &Workload) -> (TenantId, Vec<Ticket>) {
    match *w {
        Workload::Hotspot { n, iters, seed } => {
            let (grid, block) = hotspot::geometry(n);
            let bytes = n * n * 4;
            let buf = ProbeArg::Buf {
                bytes,
                elem_size: 4,
            };
            let probe = Probe {
                kernel: "hotspot".into(),
                grid,
                block,
                args: vec![
                    ProbeArg::Scalar(Value::I64(n as i64)),
                    ProbeArg::Scalar(Value::F32(hotspot::CAP)),
                    buf.clone(),
                    buf.clone(),
                    buf,
                ],
            };
            let t = server
                .register_tenant(name, hotspot::SOURCE, &probe)
                .expect("register hotspot");
            let a = server.malloc(t, bytes, 4).unwrap();
            let b = server.malloc(t, bytes, 4).unwrap();
            let p = server.malloc(t, bytes, 4).unwrap();
            let temp = pattern(n * n, seed, 173, 0.1);
            server.submit_h2d(t, a, temp.clone()).unwrap();
            server.submit_h2d(t, b, temp).unwrap();
            server
                .submit_h2d(t, p, pattern(n * n, seed ^ 5, 97, 0.01))
                .unwrap();
            let (mut src, mut dst) = (a, b);
            for _ in 0..iters {
                server
                    .submit_launch(
                        t,
                        "hotspot",
                        grid,
                        block,
                        vec![
                            LaunchArg::Scalar(Value::I64(n as i64)),
                            LaunchArg::Scalar(Value::F32(hotspot::CAP)),
                            LaunchArg::Buf(src),
                            LaunchArg::Buf(p),
                            LaunchArg::Buf(dst),
                        ],
                    )
                    .unwrap();
                std::mem::swap(&mut src, &mut dst);
            }
            server.submit_sync(t).unwrap();
            let ticket = server.submit_d2h(t, src).unwrap();
            (t, vec![ticket])
        }
        Workload::Blur { n, iters, seed } => {
            let (grid, block) = blur::geometry(n);
            let bytes = n * n * 4;
            let buf = ProbeArg::Buf {
                bytes,
                elem_size: 4,
            };
            let probe = Probe {
                kernel: "blur_row".into(),
                grid,
                block,
                args: vec![ProbeArg::Scalar(Value::I64(n as i64)), buf.clone(), buf],
            };
            let t = server
                .register_tenant(name, blur::SOURCE, &probe)
                .expect("register blur");
            let img = server.malloc(t, bytes, 4).unwrap();
            let tmp = server.malloc(t, bytes, 4).unwrap();
            let start = pattern(n * n, seed, 211, 0.05);
            server.submit_h2d(t, img, start.clone()).unwrap();
            server.submit_h2d(t, tmp, start).unwrap();
            for _ in 0..iters {
                for (kernel, a, b) in [("blur_row", img, tmp), ("blur_col", tmp, img)] {
                    server
                        .submit_launch(
                            t,
                            kernel,
                            grid,
                            block,
                            vec![
                                LaunchArg::Scalar(Value::I64(n as i64)),
                                LaunchArg::Buf(a),
                                LaunchArg::Buf(b),
                            ],
                        )
                        .unwrap();
                }
            }
            server.submit_sync(t).unwrap();
            let ticket = server.submit_d2h(t, img).unwrap();
            (t, vec![ticket])
        }
        Workload::NBody { n, iters, seed } => {
            let (grid, block) = nbody::geometry(n);
            let bytes = n * 4 * 4;
            let buf = ProbeArg::Buf {
                bytes,
                elem_size: 4,
            };
            let probe = Probe {
                kernel: "nbody".into(),
                grid,
                block,
                args: vec![
                    ProbeArg::Scalar(Value::I64(n as i64)),
                    ProbeArg::Scalar(Value::F32(nbody::DT)),
                    ProbeArg::Scalar(Value::F32(nbody::EPS)),
                    buf.clone(),
                    buf.clone(),
                    buf,
                ],
            };
            let t = server
                .register_tenant(name, nbody::SOURCE, &probe)
                .expect("register nbody");
            let posm = server.malloc(t, bytes, 4).unwrap();
            let out = server.malloc(t, bytes, 4).unwrap();
            let vel = server.malloc(t, bytes, 4).unwrap();
            server
                .submit_h2d(t, posm, pattern(n * 4, seed, 157, 0.01))
                .unwrap();
            server
                .submit_h2d(t, vel, pattern(n * 4, seed ^ 9, 113, 0.001))
                .unwrap();
            let (mut src, mut dst) = (posm, out);
            for _ in 0..iters {
                server
                    .submit_launch(
                        t,
                        "nbody",
                        grid,
                        block,
                        vec![
                            LaunchArg::Scalar(Value::I64(n as i64)),
                            LaunchArg::Scalar(Value::F32(nbody::DT)),
                            LaunchArg::Scalar(Value::F32(nbody::EPS)),
                            LaunchArg::Buf(src),
                            LaunchArg::Buf(vel),
                            LaunchArg::Buf(dst),
                        ],
                    )
                    .unwrap();
                std::mem::swap(&mut src, &mut dst);
            }
            server.submit_sync(t).unwrap();
            let tickets = vec![
                server.submit_d2h(t, src).unwrap(),
                server.submit_d2h(t, vel).unwrap(),
            ];
            (t, tickets)
        }
    }
}

fn fleet_config() -> FleetConfig {
    FleetConfig::functional_fleet(4)
}

/// Run the whole tenant mix through one server; returns per-tenant
/// outputs and the server for stats/snapshot inspection.
fn run_fleet(
    mix: &[(String, Workload)],
    snapshot: Option<&str>,
) -> (FleetServer, Vec<Vec<Vec<u8>>>) {
    let mut server = FleetServer::new(fleet_config());
    if let Some(json) = snapshot {
        let loaded = server.load_plans(json).expect("snapshot loads");
        assert!(loaded > 0, "warm start requires a non-empty snapshot");
    }
    let placed: Vec<(TenantId, Vec<Ticket>)> = mix
        .iter()
        .map(|(name, w)| submit(&mut server, name, w))
        .collect();
    server.drain().expect("drain");
    let outputs = placed
        .iter()
        .map(|(t, tickets)| {
            tickets
                .iter()
                .map(|&k| server.take_output(*t, k).unwrap().expect("executed"))
                .collect()
        })
        .collect();
    (server, outputs)
}

#[derive(Serialize)]
struct TenantReport {
    name: String,
    workload: &'static str,
    devices: Vec<usize>,
    wall_time_s: f64,
    plan_hits: u64,
    plan_misses: u64,
    plan_shared_hits: u64,
    plan_evictions: u64,
    bytes_h2d: u64,
    bytes_d2h: u64,
}

#[derive(Serialize)]
struct Report {
    gpus: usize,
    tenants: Vec<TenantReport>,
    fleet_shared_hits: u64,
    plan_cache_entries: usize,
    snapshot_bytes: usize,
    sequential_outputs_identical: bool,
    warm_start_plan_misses: u64,
    warm_start_outputs_identical: bool,
}

fn main() {
    let args = BenchArgs::parse();
    let (hs, bl, nb) = if args.quick {
        ((128usize, 6usize), (128usize, 4usize), (256usize, 2usize))
    } else {
        ((256, 24), (256, 12), (512, 4))
    };
    // Pairs: identical geometry within a pair, different input seeds —
    // plan keys are data-independent, so partners share plans.
    let mix: Vec<(String, Workload)> = vec![
        (
            "hotspot-a",
            Workload::Hotspot {
                n: hs.0,
                iters: hs.1,
                seed: 1,
            },
        ),
        (
            "hotspot-b",
            Workload::Hotspot {
                n: hs.0,
                iters: hs.1,
                seed: 2,
            },
        ),
        (
            "blur-a",
            Workload::Blur {
                n: bl.0,
                iters: bl.1,
                seed: 3,
            },
        ),
        (
            "blur-b",
            Workload::Blur {
                n: bl.0,
                iters: bl.1,
                seed: 4,
            },
        ),
        (
            "nbody-a",
            Workload::NBody {
                n: nb.0,
                iters: nb.1,
                seed: 5,
            },
        ),
        (
            "nbody-b",
            Workload::NBody {
                n: nb.0,
                iters: nb.1,
                seed: 6,
            },
        ),
    ]
    .into_iter()
    .map(|(n, w)| (n.to_string(), w))
    .collect();

    println!("Ablation A11: multi-tenant serving (4 functional GPUs, shared sharded plan cache)");
    println!();

    // (1) Interleaved fleet run.
    let (server, fleet_outputs) = run_fleet(&mix, None);
    let stats = server.fleet_stats();
    let fleet_shared: u64 = stats.iter().map(|s| s.plan_shared_hits).sum();
    assert!(
        fleet_shared > 0,
        "tenant pairs must replay each other's plans"
    );

    println!(
        "{:>10} {:>9} {:>12} {:>8} {:>8} {:>8} {:>12}",
        "tenant", "workload", "devices", "hits", "misses", "shared", "elapsed [ms]"
    );
    let tenants: Vec<TenantReport> = mix
        .iter()
        .zip(&stats)
        .map(|((name, w), s)| {
            println!(
                "{:>10} {:>9} {:>12} {:>8} {:>8} {:>8} {:>12.3}",
                name,
                w.label(),
                format!("{:?}", s.devices),
                s.plan_hits,
                s.plan_misses,
                s.plan_shared_hits,
                s.wall_time * 1e3,
            );
            TenantReport {
                name: name.clone(),
                workload: w.label(),
                devices: s.devices.clone(),
                wall_time_s: s.wall_time,
                plan_hits: s.plan_hits,
                plan_misses: s.plan_misses,
                plan_shared_hits: s.plan_shared_hits,
                plan_evictions: s.plan_evictions,
                bytes_h2d: s.bytes_h2d,
                bytes_d2h: s.bytes_d2h,
            }
        })
        .collect();

    // (2) Sequential baselines: each tenant alone must agree byte for
    // byte with its interleaved outputs.
    let mut sequential_identical = true;
    for (i, (name, w)) in mix.iter().enumerate() {
        let (_, solo) = run_fleet(std::slice::from_ref(&(name.clone(), w.clone())), None);
        assert_eq!(
            solo[0], fleet_outputs[i],
            "{name}: interleaved serving diverged from the solo run"
        );
        sequential_identical &= solo[0] == fleet_outputs[i];
    }
    println!();
    println!(
        "sequential baselines: all {} tenants byte-identical",
        mix.len()
    );

    // (3) Warm start: snapshot, fresh server, zero captures.
    let snapshot = server.snapshot_plans();
    let (warm_server, warm_outputs) = run_fleet(&mix, Some(&snapshot));
    let warm_misses: u64 = warm_server
        .fleet_stats()
        .iter()
        .map(|s| s.plan_misses)
        .sum();
    assert_eq!(
        warm_misses, 0,
        "warm-started server must replay every launch from the snapshot"
    );
    assert_eq!(
        warm_outputs, fleet_outputs,
        "warm start must reproduce the cold run byte for byte"
    );
    println!(
        "warm start: {} plans loaded ({} KiB snapshot), 0 captures, identical outputs",
        server.plan_cache().len(),
        snapshot.len() / 1024,
    );

    let report = Report {
        gpus: 4,
        tenants,
        fleet_shared_hits: fleet_shared,
        plan_cache_entries: server.plan_cache().len(),
        snapshot_bytes: snapshot.len(),
        sequential_outputs_identical: sequential_identical,
        warm_start_plan_misses: warm_misses,
        warm_start_outputs_identical: true,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!();
    println!("wrote BENCH_serve.json");
}
