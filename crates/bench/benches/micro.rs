//! Criterion micro-benchmarks for the toolchain's hot components:
//! polyhedral operations, tracker operations, enumerator evaluation,
//! kernel analysis and the full compile pipeline.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mekong_core::prelude::*;
use mekong_poly::{Enumerator, Map, Polyhedron, Set};
use mekong_runtime::{Owner, Tracker};
use std::hint::black_box;

fn bench_poly_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("poly");
    let s1 = Set::parse("[n] -> { [y, x] : 0 <= y and y < n and y <= x and x < n }").unwrap();
    let s2 = Set::parse("[n] -> { [y, x] : 0 <= y and y < n and 0 <= x and x <= y }").unwrap();
    g.bench_function("intersect", |b| {
        b.iter(|| black_box(s1.intersect(&s2).unwrap()))
    });
    g.bench_function("project_out_dim", |b| {
        b.iter(|| black_box(s1.project_out_dims(1..2).unwrap()))
    });
    let m = Map::parse(
        "[n] -> { [i] -> [a] : i - 1 <= a and a <= i + 1 and 0 <= i and i < n and 0 <= a and a < n }",
    )
    .unwrap();
    let ctx = Polyhedron::universe(0, 1);
    g.bench_function("injectivity_check", |b| {
        b.iter(|| black_box(m.is_injective(&ctx).unwrap()))
    });
    g.bench_function("enumerator_build", |b| {
        b.iter(|| black_box(Enumerator::build(&s1).unwrap()))
    });
    let e = Enumerator::build(&s1).unwrap();
    g.bench_function("enumerator_scan_n100", |b| {
        b.iter(|| {
            let mut count = 0u64;
            e.for_each_row(&[100], &mut |_, lo, hi| count += (hi - lo + 1) as u64);
            black_box(count)
        })
    });
    g.finish();
}

fn bench_tracker(c: &mut Criterion) {
    let mut g = c.benchmark_group("tracker");
    for segs in [16u64, 1024, 65536] {
        let len = 1u64 << 26;
        let piece = len / segs;
        let make = || {
            let mut t = Tracker::new(len);
            for i in 0..segs {
                t.update(i * piece, (i + 1) * piece, Owner::Device((i % 7) as usize));
            }
            t
        };
        let t = make();
        g.bench_function(format!("query_{segs}_segments"), |b| {
            let mut x = 9u64;
            b.iter(|| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let s = x % (len - 4096);
                let mut acc = 0u64;
                t.query(s, s + 4096, &mut |a, b, _| acc += b - a);
                black_box(acc)
            })
        });
        g.bench_function(format!("update_{segs}_segments"), |b| {
            b.iter_batched(
                make,
                |mut t| {
                    t.update(len / 3, len / 3 + 4096, Owner::Device(3));
                    black_box(t.segment_count())
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let mut g = c.benchmark_group("analysis");
    g.sample_size(20);
    for b in mekong_workloads::benchmarks() {
        let src = b.source();
        let program = compile_source(src).unwrap();
        let kernel = program.kernels[0].original.clone();
        g.bench_function(format!("analyze_{}", b.name()), |bch| {
            bch.iter(|| black_box(analyze_kernel(&kernel).unwrap()))
        });
        g.bench_function(format!("compile_pipeline_{}", b.name()), |bch| {
            bch.iter(|| black_box(compile_source(src).unwrap()))
        });
    }
    g.finish();
}

fn bench_enumerator_runtime(c: &mut Criterion) {
    let mut g = c.benchmark_group("enumerators");
    let program = compile_source(mekong_workloads::hotspot::SOURCE).unwrap();
    let ck = program.kernel("hotspot").unwrap();
    let n = 4096usize;
    let (grid, block) = mekong_workloads::hotspot::geometry(n);
    let parts = partition_grid(grid, 8, ck.model.partitioning);
    let names = ck.enums.scalar_names.clone();
    let scalars = [n as i64, 0];
    let rd = ck.enums.reads[0].1.clone();
    g.bench_function("hotspot_read_ranges_cold", |b| {
        b.iter_batched(
            || rd.clone(),
            |e| {
                let mut acc = 0u64;
                e.for_each_range(&parts[3], block, grid, &names, &scalars, &mut |r| {
                    acc += r.len()
                });
                black_box(acc)
            },
            BatchSize::SmallInput,
        )
    });
    // Warm cache (the iterative-application fast path).
    let mut acc = 0u64;
    rd.for_each_range(&parts[3], block, grid, &names, &scalars, &mut |r| {
        acc += r.len()
    });
    black_box(acc);
    g.bench_function("hotspot_read_ranges_cached", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            rd.for_each_range(&parts[3], block, grid, &names, &scalars, &mut |r| {
                acc += r.len()
            });
            black_box(acc)
        })
    });
    g.finish();
}

/// The launch hot path in performance mode: one steady-state ping-pong
/// Hotspot launch per iteration, with the plan cache on (replay: hash
/// the trackers, enqueue the captured sequence) and off (full tracker
/// walk + transfer planning every time). The gap between the two is the
/// wall-clock win A6 measures end-to-end.
fn bench_launch_replay(c: &mut Criterion) {
    use mekong_gpusim::Machine;
    let mut g = c.benchmark_group("launch");
    let program = compile_source(mekong_workloads::hotspot::SOURCE).unwrap();
    let ck = program.kernel("hotspot").unwrap();
    let n = 2048usize;
    let (grid, block) = mekong_workloads::hotspot::geometry(n);
    for (label, capture) in [("replay_on", true), ("replay_off", false)] {
        let mut rt = MgpuRuntime::new(Machine::new(MachineSpec::kepler_system(4), false));
        rt.set_config(RuntimeConfig {
            capture_plans: capture,
            ..RuntimeConfig::beta()
        });
        let a = rt.malloc(n * n * 4, 4).unwrap();
        let b = rt.malloc(n * n * 4, 4).unwrap();
        let p = rt.malloc(n * n * 4, 4).unwrap();
        for buf in [a, b, p] {
            rt.memcpy_h2d_sim(buf).unwrap();
        }
        let (mut src, mut dst) = (a, b);
        // Warm up past the two ping-pong phases so `replay_on` measures
        // pure hits.
        for _ in 0..4 {
            rt.launch(
                ck,
                grid,
                block,
                &[
                    LaunchArg::Scalar(Value::I64(n as i64)),
                    LaunchArg::Scalar(Value::F32(mekong_workloads::hotspot::CAP)),
                    LaunchArg::Buf(src),
                    LaunchArg::Buf(p),
                    LaunchArg::Buf(dst),
                ],
            )
            .unwrap();
            std::mem::swap(&mut src, &mut dst);
        }
        g.bench_function(format!("hotspot_steady_state_{label}"), |bch| {
            bch.iter(|| {
                rt.launch(
                    ck,
                    grid,
                    block,
                    &[
                        LaunchArg::Scalar(Value::I64(n as i64)),
                        LaunchArg::Scalar(Value::F32(mekong_workloads::hotspot::CAP)),
                        LaunchArg::Buf(src),
                        LaunchArg::Buf(p),
                        LaunchArg::Buf(dst),
                    ],
                )
                .unwrap();
                std::mem::swap(&mut src, &mut dst);
                black_box(src)
            })
        });
    }
    g.finish();
}

fn bench_interpreter(c: &mut Criterion) {
    use mekong_kernel::{
        execute_grid, interp::KernelArg, Dim3 as KDim3, ExecMode, Value as KValue, VecMem,
    };
    let mut g = c.benchmark_group("interpreter");
    let program = compile_source(mekong_workloads::matmul::SOURCE).unwrap();
    let k = program.kernel("matmul").unwrap().original.clone();
    let n = 64usize;
    g.bench_function("matmul64_functional_grid", |b| {
        b.iter_batched(
            || {
                let mut mem = VecMem::new();
                let a = mem.alloc(n * n * 4);
                let bb = mem.alloc(n * n * 4);
                let cc = mem.alloc(n * n * 4);
                (mem, a, bb, cc)
            },
            |(mut mem, a, bb, cc)| {
                let args = [
                    KernelArg::Scalar(KValue::I64(n as i64)),
                    KernelArg::Array(a),
                    KernelArg::Array(bb),
                    KernelArg::Array(cc),
                ];
                execute_grid(
                    &k,
                    &args,
                    KDim3::new2(4, 4),
                    KDim3::new2(16, 16),
                    &mut mem,
                    ExecMode::Functional,
                )
                .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_poly_ops,
    bench_tracker,
    bench_analysis,
    bench_enumerator_runtime,
    bench_launch_replay,
    bench_interpreter
);
criterion_main!(benches);
